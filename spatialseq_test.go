package spatialseq_test

import (
	"context"
	"testing"
	"time"

	"spatialseq"
)

// The root package is a façade of type aliases; this test exercises the
// complete public workflow end-to-end the way README's quickstart does.
func TestPublicAPIWorkflow(t *testing.T) {
	ds, err := spatialseq.Generate(spatialseq.GaodeLike(2000, 9))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2000 {
		t.Fatalf("Len = %d", ds.Len())
	}

	// round trip through CSV
	path := t.TempDir() + "/city.csv"
	if err := spatialseq.WriteDatasetFile(path, ds); err != nil {
		t.Fatal(err)
	}
	loaded, err := spatialseq.ReadDatasetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != ds.Len() {
		t.Fatalf("round trip lost objects: %d", loaded.Len())
	}

	eng := spatialseq.NewEngine(loaded)
	a, b, c := loaded.Object(0), loaded.Object(10), loaded.Object(20)
	q := &spatialseq.Query{
		Variant: spatialseq.CSEQ,
		Example: spatialseq.Example{
			Categories: []spatialseq.CategoryID{a.Category, b.Category, c.Category},
			Locations:  []spatialseq.Point{a.Loc, b.Loc, c.Loc},
			Attrs:      [][]float64{a.Attr, b.Attr, c.Attr},
		},
		Params: spatialseq.DefaultParams(),
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, algo := range []spatialseq.Algorithm{spatialseq.HSP, spatialseq.LORA, spatialseq.DFSPrune} {
		qq := *q
		res, err := eng.Search(ctx, &qq, algo, spatialseq.Options{})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(res.Tuples) == 0 {
			t.Fatalf("%v: no results", algo)
		}
		// the example was built from real dataset objects, so a perfect
		// match exists and must rank first
		if res.Tuples[0].Sim < 0.9999 {
			t.Errorf("%v: top result sim = %g, expected the example itself (~1)", algo, res.Tuples[0].Sim)
		}
	}
}

func TestParseAlgorithmFacade(t *testing.T) {
	a, err := spatialseq.ParseAlgorithm("lora")
	if err != nil || a != spatialseq.LORA {
		t.Fatalf("ParseAlgorithm = %v, %v", a, err)
	}
}

func TestMustGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGenerate should panic on an invalid config")
		}
	}()
	spatialseq.MustGenerate(spatialseq.SynthConfig{})
}
