// Package spatialseq is a from-scratch Go implementation of example-based
// spatial search at scale (Zhang et al., ICDE 2022).
//
// The user provides an *example*: a small tuple of map objects — say an
// apartment, a daycare and a takeaway with particular ratings and relative
// locations — and the engine returns the k object tuples from a POI
// dataset that best match the example's geometry (spatial similarity of
// pairwise-distance vectors) and attributes (cosine similarity of
// attribute vectors), optionally under a beta-norm constraint bounding how
// much larger or smaller a result's footprint may be (the CSEQ problem).
//
// Three algorithms are provided:
//
//   - DFSPrune — the CIKM'17 state-of-the-art baseline (exact, slow);
//   - HSP — exact search with hierarchical space partitioning;
//   - LORA — approximate search with cell grouping, query-dependent
//     sampling and rank-graph enumeration; orders of magnitude faster with
//     near-exact accuracy.
//
// Quickstart:
//
//	ds := spatialseq.MustGenerate(spatialseq.GaodeLike(50000, 1))
//	eng := spatialseq.NewEngine(ds)
//	q := &spatialseq.Query{Example: ex, Params: spatialseq.DefaultParams()}
//	res, err := eng.Search(context.Background(), q, spatialseq.LORA, spatialseq.Options{})
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package spatialseq

import (
	"spatialseq/internal/core"
	"spatialseq/internal/dataset"
	"spatialseq/internal/geo"
	"spatialseq/internal/query"
	"spatialseq/internal/roadnet"
	"spatialseq/internal/stats"
	"spatialseq/internal/synth"
)

// Geometry primitives.
type (
	// Point is a planar location.
	Point = geo.Point
	// Rect is an axis-aligned rectangle.
	Rect = geo.Rect
)

// Data model.
type (
	// Object is a point of interest with category and attributes.
	Object = dataset.Object
	// Dataset is an immutable POI collection.
	Dataset = dataset.Dataset
	// DatasetBuilder accumulates objects into a Dataset.
	DatasetBuilder = dataset.Builder
	// CategoryID identifies an object category.
	CategoryID = dataset.CategoryID
	// SynthConfig configures the synthetic dataset generators.
	SynthConfig = synth.Config
)

// Query model.
type (
	// Query is an example-based search request.
	Query = query.Query
	// Example is the user-provided example tuple t*.
	Example = query.Example
	// FixedPoint pins one example dimension to a dataset object (CSEQ-FP).
	FixedPoint = query.FixedPoint
	// Params are the tuning parameters (k, alpha, beta, D, xi).
	Params = query.Params
	// Variant selects SEQ, CSEQ or CSEQ-FP.
	Variant = query.Variant
	// Metric is a pluggable distance function (travel distances etc.).
	Metric = query.Metric
)

// Road-network travel-distance substrate.
type (
	// RoadNetwork is an embedded road graph whose travel distances can
	// serve as the query Metric.
	RoadNetwork = roadnet.Network
	// RoadGridConfig configures the synthetic street-grid generator.
	RoadGridConfig = roadnet.GridConfig
)

// RoadGrid generates a Manhattan-style street network; wrap it with
// NewMetric and set it on Example.Metric to search by travel distance.
func RoadGrid(cfg RoadGridConfig) (*RoadNetwork, error) { return roadnet.Grid(cfg) }

// NewRoadNetwork builds a road network from explicit nodes and edges.
func NewRoadNetwork(nodes []Point, edges [][2]int32, weights []float64) (*RoadNetwork, error) {
	return roadnet.NewNetwork(nodes, edges, weights)
}

// Problem variants.
const (
	// CSEQ is the norm-constrained exemplar query (the default problem).
	CSEQ = query.CSEQ
	// SEQ is the unconstrained original problem.
	SEQ = query.SEQ
	// CSEQFP is CSEQ with fixed points.
	CSEQFP = query.CSEQFP
)

// Engine and algorithms.
type (
	// Engine answers queries over one dataset.
	Engine = core.Engine
	// Algorithm selects the search algorithm.
	Algorithm = core.Algorithm
	// Options tunes algorithm internals (ablations); zero value = paper config.
	Options = core.Options
	// Result is a completed search.
	Result = core.Result
	// ResultTuple is one ranked answer.
	ResultTuple = core.ResultTuple
	// SearchStats are the per-search work counters attached to results
	// when Options.CollectStats is set.
	SearchStats = stats.Snapshot
)

// Algorithm choices.
const (
	// Auto picks HSP for small datasets and LORA for large ones.
	Auto = core.Auto
	// BruteForce is the exhaustive oracle (tiny datasets only).
	BruteForce = core.BruteForce
	// DFSPrune is the CIKM'17 exact baseline.
	DFSPrune = core.DFSPrune
	// HSP is the exact hierarchical-space-partitioning algorithm.
	HSP = core.HSP
	// LORA is the fast approximate algorithm.
	LORA = core.LORA
)

// NewEngine builds a query engine (and its spatial index) over ds.
func NewEngine(ds *Dataset) *Engine { return core.NewEngine(ds) }

// DefaultParams returns the paper's default parameters
// (k=5, alpha=0.5, beta=1.5, D=5, xi=10).
func DefaultParams() Params { return query.DefaultParams() }

// ParseAlgorithm converts a CLI string ("hsp", "lora", ...) to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) { return core.ParseAlgorithm(s) }

// YelpLike returns the Yelp-calibrated synthetic dataset preset.
func YelpLike(n int, seed int64) SynthConfig { return synth.YelpLike(n, seed) }

// GaodeLike returns the Gaode-calibrated synthetic dataset preset.
func GaodeLike(n int, seed int64) SynthConfig { return synth.GaodeLike(n, seed) }

// Generate materialises a synthetic dataset.
func Generate(cfg SynthConfig) (*Dataset, error) { return synth.Generate(cfg) }

// MustGenerate is Generate that panics on error.
func MustGenerate(cfg SynthConfig) *Dataset { return synth.MustGenerate(cfg) }

// ReadDatasetFile loads a dataset from path, sniffing the format (the
// library's binary layout or CSV).
func ReadDatasetFile(path string) (*Dataset, error) { return dataset.ReadAnyFile(path) }

// WriteDatasetFile stores ds as CSV at path.
func WriteDatasetFile(path string, ds *Dataset) error { return dataset.WriteFile(path, ds) }

// WriteDatasetBinaryFile stores ds in the library's compact binary layout,
// which loads roughly an order of magnitude faster than CSV — use it for
// Gaode-scale corpora.
func WriteDatasetBinaryFile(path string, ds *Dataset) error {
	return dataset.WriteBinaryFile(path, ds)
}
