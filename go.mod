module spatialseq

go 1.22
