package spatialseq_test

import (
	"spatialseq/internal/algo/hsp"
	"spatialseq/internal/algo/lora"
	"spatialseq/internal/core"
)

// Ablation option presets for the benchmark suite.

func optHSPNoPartition() core.Options {
	return core.Options{HSP: hsp.Options{DisablePartition: true}}
}

func optHSPLoose() core.Options {
	return core.Options{HSP: hsp.Options{LooseBounds: true}}
}

func optLORARandom() core.Options {
	return core.Options{LORA: lora.Options{RandomSample: true, RandomSeed: 1}}
}

func optLORACellNorm() core.Options {
	return core.Options{LORA: lora.Options{PruneCellNorm: true}}
}

func optHSPSortedBreak() core.Options {
	return core.Options{HSP: hsp.Options{SortedBreak: true}}
}

func optLORASortedBreak() core.Options {
	return core.Options{LORA: lora.Options{SortedBreak: true}}
}

func optParallel(workers int) core.Options {
	return core.Options{HSP: hsp.Options{Parallelism: workers}}
}

func optLORAParallel(workers int) core.Options {
	return core.Options{LORA: lora.Options{Parallelism: workers}}
}
