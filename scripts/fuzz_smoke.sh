#!/usr/bin/env bash
# fuzz_smoke.sh — run every native fuzz target for a bounded time.
#
# Each target first replays its committed corpus (testdata/fuzz/<target>/
# in its package) and then explores new inputs for FUZZTIME. Any crasher
# fails the script; go writes the minimized input under the package's
# testdata/fuzz/ directory — commit it there to turn the crash into a
# permanent regression test, and reproduce it with
#     go test <pkg> -run '<Target>/<filename>'
#
# FUZZTIME defaults to a quick local smoke; CI runs 30s per target.
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-5s}"

run() { # run <pkg> <target>
    echo "== fuzz $2 ($1, $FUZZTIME) =="
    go test "$1" -run '^$' -fuzz "$2" -fuzztime "$FUZZTIME"
}

run ./internal/geo FuzzDistVector
run ./internal/server FuzzServerDecode
run ./internal/testkit FuzzSearch

echo "All fuzz targets clean."
