#!/usr/bin/env bash
# check.sh — the repo's full static-analysis and test gate.
#
# Runs, in order: gofmt (formatting), go vet (stock analyzers),
# go build, seqlint (the repo-specific analyzer suite in cmd/seqlint),
# the test suite under the race detector (which includes the 510-query
# differential suite in internal/testkit), a short fuzz smoke over the
# committed corpora (scripts/fuzz_smoke.sh), and the server smoke test
# (scripts/smoke.sh). Any failure fails the gate. CI runs exactly this
# script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== seqlint (baseline gate) =="
# Pre-existing findings recorded in LINT_baseline.json never block; any
# NEW finding does. A clean tree with an empty baseline is the steady
# state — regenerate deliberately with `seqlint -write-baseline`.
go run ./cmd/seqlint -gate LINT_baseline.json ./...

echo "== seqlint -audit (every suppression must carry a reason) =="
go run ./cmd/seqlint -audit ./... >/dev/null

echo "== go test -race =="
go test -race ./...

echo "== fuzz smoke =="
./scripts/fuzz_smoke.sh

echo "== server smoke =="
./scripts/smoke.sh

echo "All checks passed."
