#!/usr/bin/env bash
# bench_smoke.sh — produce a tiny machine-readable BENCH artifact in
# seconds, plus a benchdiff self-check (identical inputs must pass the
# gate). CI uploads the artifact and diffs it against the checked-in
# BENCH_baseline.json in advisory mode; regenerate that baseline with
#
#     scripts/bench_smoke.sh BENCH_baseline.json
#
# whenever the schema or the smoke workload changes. Sizes are deliberately
# tiny: the artifact exists to exercise the record pipeline and to track
# the deterministic work counters, not to publish latencies.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_smoke.json}"

# skew rides along so the worker-imbalance gauges (work stealing's
# target metric) are part of every baseline benchdiff gates on; shard
# likewise keeps the scatter-gather coordinator's per-shard-count
# latency and cross-shard skew gauges in the artifact.
go run ./cmd/seqbench \
    -exp table2-gaode,table3,skew,shard \
    -sizes 200,500 -queries 3 -budget 10s -seed 1 \
    -json "$out" >/dev/null

go run ./cmd/benchdiff -gate "$out" "$out" >/dev/null

# Kernel micro-benchmarks in short mode: a fixed tiny iteration count keeps
# this a compile-and-run smoke (does the harness still build, do the
# zero-alloc kernels still report 0 allocs/op), not a timing measurement.
go test -run '^$' -bench . -benchtime 100x \
    ./internal/vectormath ./internal/geo ./internal/simil >/dev/null

echo "bench smoke: wrote $out ($(go run ./cmd/benchdiff "$out" "$out" | tail -1))"
