#!/usr/bin/env bash
# smoke.sh — end-to-end server smoke test.
#
# Builds seqserver, starts it on an ephemeral port against a tiny
# synthetic dataset, probes /healthz, /metrics, one /search, the flight
# recorder's /debug/queries surface, and finally replays the recorder's
# capture export through `seqbench -exp replay` (work counters must
# match the recorded ones exactly). Fails on any non-200 answer.
# check.sh runs this as its last step.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/seqserver" ./cmd/seqserver
go build -o "$workdir/seqbench" ./cmd/seqbench

# -flight-threshold 1ns: every query counts as slow, so the capture
# export below is guaranteed to carry replayable records.
"$workdir/seqserver" -synth gaode -n 2000 -seed 1 -addr 127.0.0.1:0 \
    -flight-threshold 1ns \
    >/dev/null 2>"$workdir/server.log" &
server_pid=$!

# The "listening" log record carries the bound address (JSON on stderr).
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/.*"msg":"listening".*"addr":"\([^"]*\)".*/\1/p' "$workdir/server.log" | head -n1)
    [ -n "$addr" ] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "smoke: server exited early" >&2
        cat "$workdir/server.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "smoke: server never logged its address" >&2
    cat "$workdir/server.log" >&2
    exit 1
fi

probe() {
    # probe <name> <expected-status> <curl args...>
    local name=$1 want=$2
    shift 2
    local got
    got=$(curl -s -o "$workdir/body" -w '%{http_code}' "$@")
    if [ "$got" != "$want" ]; then
        echo "smoke: $name returned HTTP $got (want $want)" >&2
        cat "$workdir/body" >&2
        exit 1
    fi
}

probe healthz 200 "http://$addr/healthz"
probe metrics 200 "http://$addr/metrics"
grep -q '^spatialseq_http_requests_total' "$workdir/body" || {
    echo "smoke: /metrics misses spatialseq_http_requests_total" >&2
    exit 1
}
probe search 200 -X POST -H 'Content-Type: application/json' -d '{
    "k": 2, "beta": 5,
    "example": [
        {"x": 10, "y": 10, "category": "gaode-cat-0000"},
        {"x": 11, "y": 11, "category": "gaode-cat-0001"}
    ]
}' "http://$addr/search"
grep -q '"results"' "$workdir/body" || {
    echo "smoke: /search body carries no results field" >&2
    cat "$workdir/body" >&2
    exit 1
}

# The flight recorder must have seen the search above.
probe debug-queries 200 "http://$addr/debug/queries"
grep -q '"observed":1' "$workdir/body" || {
    echo "smoke: /debug/queries did not record the search" >&2
    cat "$workdir/body" >&2
    exit 1
}
probe debug-queries-html 200 "http://$addr/debug/queries?format=html"
grep -q 'query flight recorder' "$workdir/body" || {
    echo "smoke: /debug/queries?format=html is not the debug page" >&2
    exit 1
}
probe metrics-flight 200 "http://$addr/metrics"
grep -q '^spatialseq_slow_query_threshold_seconds' "$workdir/body" || {
    echo "smoke: /metrics misses spatialseq_slow_query_threshold_seconds" >&2
    exit 1
}

# Capture -> replay round trip: export the retained slow queries and
# re-run them offline; replay fails if the work counters diverge.
probe capture 200 "http://$addr/debug/queries/capture"
cp "$workdir/body" "$workdir/capture.json"
grep -q '"capture"' "$workdir/capture.json" || {
    echo "smoke: capture export carries no replayable record" >&2
    cat "$workdir/capture.json" >&2
    exit 1
}
"$workdir/seqbench" -exp replay -capture "$workdir/capture.json" \
    >"$workdir/replay.out" 2>&1 || {
    echo "smoke: seqbench replay failed" >&2
    cat "$workdir/replay.out" >&2
    exit 1
}
grep -q '0 work-counter mismatches' "$workdir/replay.out" || {
    echo "smoke: replay reported counter mismatches" >&2
    cat "$workdir/replay.out" >&2
    exit 1
}

echo "smoke test passed ($addr, replay verified)"
