#!/usr/bin/env bash
# smoke.sh — end-to-end server smoke test.
#
# Builds seqserver, starts it on an ephemeral port against a tiny
# synthetic dataset, probes /healthz, /metrics, one /search, the flight
# recorder's /debug/queries surface, and finally replays the recorder's
# capture export through `seqbench -exp replay` (work counters must
# match the recorded ones exactly). Fails on any non-200 answer.
# check.sh runs this as its last step.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/seqserver" ./cmd/seqserver
go build -o "$workdir/seqbench" ./cmd/seqbench

# -flight-threshold 1ns: every query counts as slow, so the capture
# export below is guaranteed to carry replayable records.
"$workdir/seqserver" -synth gaode -n 2000 -seed 1 -addr 127.0.0.1:0 \
    -flight-threshold 1ns \
    >/dev/null 2>"$workdir/server.log" &
server_pid=$!

# The "listening" log record carries the bound address (JSON on stderr).
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/.*"msg":"listening".*"addr":"\([^"]*\)".*/\1/p' "$workdir/server.log" | head -n1)
    [ -n "$addr" ] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "smoke: server exited early" >&2
        cat "$workdir/server.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "smoke: server never logged its address" >&2
    cat "$workdir/server.log" >&2
    exit 1
fi

probe() {
    # probe <name> <expected-status> <curl args...>
    local name=$1 want=$2
    shift 2
    local got
    got=$(curl -s -o "$workdir/body" -w '%{http_code}' "$@")
    if [ "$got" != "$want" ]; then
        echo "smoke: $name returned HTTP $got (want $want)" >&2
        cat "$workdir/body" >&2
        exit 1
    fi
}

probe healthz 200 "http://$addr/healthz"
probe metrics 200 "http://$addr/metrics"
grep -q '^spatialseq_http_requests_total' "$workdir/body" || {
    echo "smoke: /metrics misses spatialseq_http_requests_total" >&2
    exit 1
}
probe search 200 -D "$workdir/headers" -X POST -H 'Content-Type: application/json' -d '{
    "k": 2, "beta": 5,
    "example": [
        {"x": 10, "y": 10, "category": "gaode-cat-0000"},
        {"x": 11, "y": 11, "category": "gaode-cat-0001"}
    ]
}' "http://$addr/search"
grep -q '"results"' "$workdir/body" || {
    echo "smoke: /search body carries no results field" >&2
    cat "$workdir/body" >&2
    exit 1
}

# The query above is "slow" (1ns threshold), so its span tree is retained:
# /debug/trace/{id} must serve well-formed Chrome trace-event JSON for the
# request ID the search response was stamped with.
request_id=$(tr -d '\r' <"$workdir/headers" | sed -n 's/^[Xx]-[Rr]equest-[Ii][Dd]: //p' | head -n1)
if [ -z "$request_id" ]; then
    echo "smoke: /search response carried no X-Request-ID" >&2
    cat "$workdir/headers" >&2
    exit 1
fi
probe debug-trace 200 "http://$addr/debug/trace/$request_id"
cp "$workdir/body" "$workdir/trace.json"
cat >"$workdir/validate_trace.go" <<'EOF'
// Standalone Chrome trace-event validator for smoke.sh: reads a trace
// JSON file and exits non-zero unless it is loadable timeline data with
// at least one subspace span.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		fmt.Fprintln(os.Stderr, "trace is not valid JSON:", err)
		os.Exit(1)
	}
	if len(tr.TraceEvents) == 0 || tr.DisplayTimeUnit != "ms" {
		fmt.Fprintf(os.Stderr, "malformed trace: %d events, unit %q\n", len(tr.TraceEvents), tr.DisplayTimeUnit)
		os.Exit(1)
	}
	var complete, threadNames, subspaces int
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Ts <= 0 || ev.Pid != 1 {
				fmt.Fprintf(os.Stderr, "bad complete event: %+v\n", ev)
				os.Exit(1)
			}
			if _, ok := ev.Args["subspace"]; ok {
				subspaces++
			}
		case "M":
			threadNames++
		default:
			fmt.Fprintf(os.Stderr, "unexpected event phase %q\n", ev.Ph)
			os.Exit(1)
		}
	}
	if complete == 0 || threadNames == 0 || subspaces == 0 {
		fmt.Fprintf(os.Stderr, "trace misses spans: %d X, %d M, %d subspace-tagged\n", complete, threadNames, subspaces)
		os.Exit(1)
	}
	fmt.Printf("trace ok: %d spans, %d subspace-tagged, %d tracks\n", complete, subspaces, threadNames)
}
EOF
go run "$workdir/validate_trace.go" "$workdir/trace.json" || {
    echo "smoke: /debug/trace/$request_id is not a loadable Chrome trace" >&2
    head -c 500 "$workdir/trace.json" >&2
    exit 1
}
probe debug-trace-html 200 "http://$addr/debug/trace/$request_id?format=html"
grep -q "trace $request_id" "$workdir/body" || {
    echo "smoke: /debug/trace html page is not the timeline" >&2
    exit 1
}

# The flight recorder must have seen the search above.
probe debug-queries 200 "http://$addr/debug/queries"
grep -q '"observed":1' "$workdir/body" || {
    echo "smoke: /debug/queries did not record the search" >&2
    cat "$workdir/body" >&2
    exit 1
}
probe debug-queries-html 200 "http://$addr/debug/queries?format=html"
grep -q 'query flight recorder' "$workdir/body" || {
    echo "smoke: /debug/queries?format=html is not the debug page" >&2
    exit 1
}
probe metrics-flight 200 "http://$addr/metrics"
grep -q '^spatialseq_slow_query_threshold_seconds' "$workdir/body" || {
    echo "smoke: /metrics misses spatialseq_slow_query_threshold_seconds" >&2
    exit 1
}
grep -q '^spatialseq_subspace_imbalance_ratio_count' "$workdir/body" || {
    echo "smoke: /metrics misses spatialseq_subspace_imbalance_ratio" >&2
    exit 1
}
grep -q '^spatialseq_spans_dropped_total' "$workdir/body" || {
    echo "smoke: /metrics misses spatialseq_spans_dropped_total" >&2
    exit 1
}

# Capture -> replay round trip: export the retained slow queries and
# re-run them offline; replay fails if the work counters diverge.
probe capture 200 "http://$addr/debug/queries/capture"
cp "$workdir/body" "$workdir/capture.json"
grep -q '"capture"' "$workdir/capture.json" || {
    echo "smoke: capture export carries no replayable record" >&2
    cat "$workdir/capture.json" >&2
    exit 1
}
"$workdir/seqbench" -exp replay -capture "$workdir/capture.json" \
    >"$workdir/replay.out" 2>&1 || {
    echo "smoke: seqbench replay failed" >&2
    cat "$workdir/replay.out" >&2
    exit 1
}
grep -q '0 work-counter mismatches' "$workdir/replay.out" || {
    echo "smoke: replay reported counter mismatches" >&2
    cat "$workdir/replay.out" >&2
    exit 1
}

echo "smoke test passed ($addr, replay verified)"
