#!/usr/bin/env bash
# smoke.sh — end-to-end server smoke test.
#
# Builds seqserver, starts it on an ephemeral port against a tiny
# synthetic dataset, probes /healthz, /metrics and one /search, and
# fails on any non-200 answer. check.sh runs this as its last step.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/seqserver" ./cmd/seqserver

"$workdir/seqserver" -synth gaode -n 2000 -addr 127.0.0.1:0 \
    >/dev/null 2>"$workdir/server.log" &
server_pid=$!

# The "listening" log record carries the bound address (JSON on stderr).
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/.*"msg":"listening".*"addr":"\([^"]*\)".*/\1/p' "$workdir/server.log" | head -n1)
    [ -n "$addr" ] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "smoke: server exited early" >&2
        cat "$workdir/server.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "smoke: server never logged its address" >&2
    cat "$workdir/server.log" >&2
    exit 1
fi

probe() {
    # probe <name> <expected-status> <curl args...>
    local name=$1 want=$2
    shift 2
    local got
    got=$(curl -s -o "$workdir/body" -w '%{http_code}' "$@")
    if [ "$got" != "$want" ]; then
        echo "smoke: $name returned HTTP $got (want $want)" >&2
        cat "$workdir/body" >&2
        exit 1
    fi
}

probe healthz 200 "http://$addr/healthz"
probe metrics 200 "http://$addr/metrics"
grep -q '^spatialseq_http_requests_total' "$workdir/body" || {
    echo "smoke: /metrics misses spatialseq_http_requests_total" >&2
    exit 1
}
probe search 200 -X POST -H 'Content-Type: application/json' -d '{
    "k": 2, "beta": 5,
    "example": [
        {"x": 10, "y": 10, "category": "gaode-cat-0000"},
        {"x": 11, "y": 11, "category": "gaode-cat-0001"}
    ]
}' "http://$addr/search"
grep -q '"results"' "$workdir/body" || {
    echo "smoke: /search body carries no results field" >&2
    cat "$workdir/body" >&2
    exit 1
}

echo "smoke test passed ($addr)"
