// Relocation (the paper's Example 2): Ben's daily routine is apartment ->
// gym -> school, with a takeaway on the way, and rising rent forces him to
// move. His current configuration IS the example — "the example is usually
// available in hand from the user's experience" — and his budget pressure
// is expressed through the example's attribute profile (a low price level
// on the apartment dimension) with alpha shaded toward attributes.
//
// The program compares the answers at two alpha settings to show how the
// weight shifts results between geometry-faithful and budget-faithful.
//
// Run with: go run ./examples/relocation
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"spatialseq"
)

func main() {
	// A Yelp-like dense urban dataset; category names are synthetic, so we
	// adopt four of them for Ben's object types.
	ds := spatialseq.MustGenerate(spatialseq.YelpLike(30000, 11))
	eng := spatialseq.NewEngine(ds)

	// Ben's current places: pick a geographically tight trio of objects
	// from three busy categories to serve as apartment / gym / school.
	apt, gym, school, ok := findRoutineTriple(ds)
	if !ok {
		log.Fatal("could not find a routine triple in the synthetic city")
	}
	oApt, oGym, oSchool := ds.Object(int(apt)), ds.Object(int(gym)), ds.Object(int(school))
	fmt.Printf("Ben's current routine:\n  apartment %s at %s\n  gym       %s at %s\n  school    %s at %s\n",
		oApt.Name, oApt.Loc, oGym.Name, oGym.Loc, oSchool.Name, oSchool.Loc)

	// The example: same categories and geometry, but the apartment's
	// attribute profile is rewritten toward a lower price level (attribute
	// index 1 in this synthetic schema) — Ben's budget constraint.
	cheaper := make([]float64, len(oApt.Attr))
	copy(cheaper, oApt.Attr)
	cheaper[1] = 0.1
	ex := spatialseq.Example{
		Categories: []spatialseq.CategoryID{oApt.Category, oGym.Category, oSchool.Category},
		Locations:  []spatialseq.Point{oApt.Loc, oGym.Loc, oSchool.Loc},
		Attrs:      [][]float64{cheaper, oGym.Attr, oSchool.Attr},
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, alpha := range []float64{0.8, 0.2} {
		q := &spatialseq.Query{
			Variant: spatialseq.CSEQ,
			Example: ex,
			Params:  spatialseq.Params{K: 3, Alpha: alpha, Beta: 1.5, GridD: 6, Xi: 10},
		}
		res, err := eng.Search(ctx, q, spatialseq.LORA, spatialseq.Options{})
		if err != nil {
			log.Fatal(err)
		}
		mode := "geometry-weighted"
		if alpha < 0.5 {
			mode = "budget-weighted"
		}
		fmt.Printf("\nalpha=%.1f (%s): %d plans in %s\n", alpha, mode, len(res.Tuples), res.Elapsed.Round(time.Microsecond))
		for rank, t := range res.Tuples {
			fmt.Printf("  #%d sim=%.4f  apartment price level %.2f\n",
				rank+1, t.Sim, ds.Object(int(t.Positions[0])).Attr[1])
		}
	}
}

// findRoutineTriple looks for three objects of three distinct categories
// within a 2 km window — a plausible daily routine.
func findRoutineTriple(ds *spatialseq.Dataset) (apt, gym, school int32, ok bool) {
	for i := 0; i < ds.Len(); i++ {
		a := ds.Object(i)
		var second, third int32 = -1, -1
		for j := 0; j < ds.Len(); j++ {
			if j == i {
				continue
			}
			b := ds.Object(j)
			if b.Loc.Dist(a.Loc) > 2 {
				continue
			}
			if b.Category != a.Category && second < 0 {
				second = int32(j)
				continue
			}
			if second >= 0 && b.Category != a.Category && b.Category != ds.Object(int(second)).Category {
				third = int32(j)
				return int32(i), second, third, true
			}
		}
		_ = second
		_ = third
	}
	return 0, 0, 0, false
}
