// Commute: example-based search by travel distance instead of straight
// lines (the paper's "applying other metrics such as traveling distances
// is possible"). A river splits the city and only two bridges cross it, so
// two POIs that look close on the map can be a long drive apart; searching
// with the road metric finds tuples whose *routes* resemble the example,
// not just their silhouettes.
//
// The program answers the same query under both metrics and shows where
// they disagree.
//
// Run with: go run ./examples/commute
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"spatialseq"
)

const extent = 40.0 // km

// buildRiverCity builds a street grid with a vertical river at x=20
// crossed by bridges at y=10 and y=30 only.
func buildRiverCity() *spatialseq.RoadNetwork {
	const n = 41 // 1 km spacing
	var nodes []spatialseq.Point
	id := func(x, y int) int32 { return int32(y*n + x) }
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			nodes = append(nodes, spatialseq.Point{X: float64(x), Y: float64(y)})
		}
	}
	var edges [][2]int32
	riverX := 20
	bridges := map[int]bool{10: true, 30: true}
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			if x+1 < n {
				// horizontal segment crosses the river unless on a bridge
				crossesRiver := x == riverX-1 || x == riverX
				if !crossesRiver || bridges[y] {
					edges = append(edges, [2]int32{id(x, y), id(x+1, y)})
				}
			}
			if y+1 < n {
				edges = append(edges, [2]int32{id(x, y), id(x, y+1)})
			}
		}
	}
	net, err := spatialseq.NewRoadNetwork(nodes, edges, nil)
	if err != nil {
		log.Fatal(err)
	}
	return net
}

func buildPOIs() *spatialseq.Dataset {
	rng := rand.New(rand.NewSource(9))
	b := &spatialseq.DatasetBuilder{}
	home := b.Category("apartment")
	office := b.Category("office")
	gym := b.Category("gym")
	id := int64(0)
	add := func(cat spatialseq.CategoryID, cx, cy, spread float64, count int) {
		for i := 0; i < count; i++ {
			b.Add(spatialseq.Object{
				ID: id,
				Loc: spatialseq.Point{
					X: clamp(cx+rng.NormFloat64()*spread, 0, extent),
					Y: clamp(cy+rng.NormFloat64()*spread, 0, extent),
				},
				Category: cat,
				Attr:     []float64{0.3 + 0.6*rng.Float64(), 0.3 + 0.6*rng.Float64()},
				Name:     fmt.Sprintf("poi-%d", id),
			})
			id++
		}
	}
	// apartments on both river banks, offices mostly east, gyms everywhere
	add(home, 12, 20, 5, 250)
	add(home, 28, 20, 5, 250)
	add(office, 30, 20, 6, 200)
	add(gym, 20, 20, 10, 300)
	ds, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return ds
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func main() {
	net := buildRiverCity()
	metric := net.NewMetric(128)
	ds := buildPOIs()
	eng := spatialseq.NewEngine(ds)

	apt, _ := ds.CategoryByName("apartment")
	off, _ := ds.CategoryByName("office")
	g, _ := ds.CategoryByName("gym")

	// The example: home and office on the SAME bank, gym in between —
	// a 6 km drive each way.
	ex := spatialseq.Example{
		Categories: []spatialseq.CategoryID{apt, off, g},
		Locations: []spatialseq.Point{
			{X: 26, Y: 18},
			{X: 32, Y: 22},
			{X: 29, Y: 20},
		},
		Attrs: [][]float64{{0.6, 0.5}, {0.6, 0.5}, {0.6, 0.5}},
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	run := func(label string, metric spatialseq.Metric) {
		q := &spatialseq.Query{
			Variant: spatialseq.CSEQ,
			Example: ex,
			Params:  spatialseq.Params{K: 5, Alpha: 0.7, Beta: 1.4, GridD: 4, Xi: 10},
		}
		q.Example.Metric = metric
		res, err := eng.Search(ctx, q, spatialseq.HSP, spatialseq.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (%s): top plans\n", label, res.Elapsed.Round(time.Millisecond))
		crossings := 0
		for rank, t := range res.Tuples {
			h := ds.Object(int(t.Positions[0])).Loc
			o := ds.Object(int(t.Positions[1])).Loc
			cross := (h.X < 20) != (o.X < 20)
			if cross {
				crossings++
			}
			fmt.Printf("  #%d sim=%.4f home=%s office=%s river-crossing=%v\n",
				rank+1, t.Sim, h, o, cross)
		}
		fmt.Printf("  plans crossing the river: %d of %d\n", crossings, len(res.Tuples))
	}

	run("Euclidean metric", nil)
	run("road travel metric", metric)
	fmt.Println("\nWith travel distances, same-bank plans win: crossing the river")
	fmt.Println("inflates the pairwise distances past the beta-norm budget even")
	fmt.Println("when the straight-line geometry matches the example.")
}
