// Apartment hunt (the paper's Example 1): Peter works in the financial
// district and needs an apartment plus a daycare center, with a takeaway
// on the daycare-to-office leg. His workplace is immovable, so this is a
// CSEQ-FP query: the office dimension is pinned while apartment, daycare
// and takeaway are searched.
//
// The example tuple encodes Peter's current, known-good configuration (a
// colleague's setup he wants to replicate near his own office), and the
// beta-norm constraint keeps the commute geometry from inflating.
//
// Run with: go run ./examples/apartment
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"spatialseq"
)

// buildCity constructs a small purpose-built city: a financial district of
// offices, residential districts of apartments, a daycare belt between
// them, and takeaways scattered along the main axes.
func buildCity() (*spatialseq.Dataset, map[string]spatialseq.CategoryID) {
	rng := rand.New(rand.NewSource(7))
	b := &spatialseq.DatasetBuilder{}
	cats := map[string]spatialseq.CategoryID{
		"office":    b.Category("office"),
		"apartment": b.Category("apartment"),
		"daycare":   b.Category("daycare"),
		"takeaway":  b.Category("takeaway"),
	}
	id := int64(0)
	add := func(cat spatialseq.CategoryID, cx, cy, spread float64, n int, rating, price float64) {
		for i := 0; i < n; i++ {
			attr := []float64{
				clamp(rating+rng.NormFloat64()*0.1, 0.05, 1), // rating
				clamp(price+rng.NormFloat64()*0.15, 0.05, 1), // price level
				clamp(0.5+rng.NormFloat64()*0.2, 0.05, 1),    // capacity/size
			}
			b.Add(spatialseq.Object{
				ID:       id,
				Loc:      spatialseq.Point{X: cx + rng.NormFloat64()*spread, Y: cy + rng.NormFloat64()*spread},
				Category: cat,
				Attr:     attr,
				Name:     fmt.Sprintf("poi-%d", id),
			})
			id++
		}
	}
	// financial district around (10, 10)
	add(cats["office"], 10, 10, 0.8, 60, 0.7, 0.8)
	// residential districts
	add(cats["apartment"], 4, 4, 1.2, 300, 0.6, 0.5)
	add(cats["apartment"], 16, 5, 1.2, 300, 0.55, 0.4)
	// daycare belt between residential and financial areas
	add(cats["daycare"], 7, 7, 1.0, 80, 0.75, 0.5)
	add(cats["daycare"], 13, 7, 1.0, 80, 0.7, 0.45)
	// takeaways along the commute corridors
	add(cats["takeaway"], 8.5, 8.5, 1.5, 200, 0.5, 0.3)
	add(cats["takeaway"], 11.5, 8.5, 1.5, 200, 0.5, 0.3)
	ds, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return ds, cats
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func main() {
	ds, cats := buildCity()
	eng := spatialseq.NewEngine(ds)

	// Peter's workplace: the office closest to the financial district
	// center. It must appear verbatim in every result.
	office := nearest(ds, cats["office"], spatialseq.Point{X: 10, Y: 10})
	o := ds.Object(int(office))
	fmt.Printf("Peter's workplace: %s at %s\n", o.Name, o.Loc)

	// The example encodes the colleague's configuration Peter wants to
	// replicate: apartment 6 km from the office, daycare in between,
	// takeaway on the daycare-office leg.
	q := &spatialseq.Query{
		Variant: spatialseq.CSEQFP,
		Example: spatialseq.Example{
			Categories: []spatialseq.CategoryID{
				cats["office"], cats["apartment"], cats["daycare"], cats["takeaway"],
			},
			Locations: []spatialseq.Point{
				o.Loc,                                // office (pinned)
				{X: o.Loc.X - 6, Y: o.Loc.Y - 5},     // apartment in a residential district
				{X: o.Loc.X - 3, Y: o.Loc.Y - 2.5},   // daycare in between
				{X: o.Loc.X - 1.5, Y: o.Loc.Y - 1.2}, // takeaway close to the office
			},
			Attrs: [][]float64{
				o.Attr,
				{0.6, 0.5, 0.5},  // decent, affordable apartment
				{0.8, 0.5, 0.5},  // well-rated daycare
				{0.5, 0.25, 0.5}, // cheap takeaway
			},
			Fixed: []spatialseq.FixedPoint{{Dim: 0, Obj: office}},
		},
		Params: spatialseq.Params{K: 5, Alpha: 0.5, Beta: 1.4, GridD: 5, Xi: 10},
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := eng.Search(ctx, q, spatialseq.LORA, spatialseq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLORA found %d apartment+daycare+takeaway plans in %s:\n",
		len(res.Tuples), res.Elapsed.Round(time.Microsecond))
	labels := []string{"office   ", "apartment", "daycare  ", "takeaway "}
	for rank, t := range res.Tuples {
		fmt.Printf("#%d  sim=%.4f\n", rank+1, t.Sim)
		for d, pos := range t.Positions {
			obj := ds.Object(int(pos))
			fmt.Printf("    %s %s at %s  (rating %.2f, price %.2f)\n",
				labels[d], obj.Name, obj.Loc, obj.Attr[0], obj.Attr[1])
		}
	}
}

// nearest returns the dataset position of the category's object closest to p.
func nearest(ds *spatialseq.Dataset, cat spatialseq.CategoryID, p spatialseq.Point) int32 {
	best := int32(-1)
	bestD := -1.0
	for _, pos := range ds.CategoryObjects(cat) {
		d := ds.Object(int(pos)).Loc.Dist(p)
		if best < 0 || d < bestD {
			best, bestD = pos, d
		}
	}
	return best
}
