// Daytrip: skipped distance pairs (the paper's "distance pairs not
// interested" variant). A tourist plans a day around a hotel, a museum and
// a restaurant: the hotel-museum and hotel-restaurant legs matter (they
// are walked twice), but the museum-restaurant distance is irrelevant —
// a taxi bridges it. Masking that pair frees the search to trade it away
// for better attribute matches.
//
// The program runs the same query with and without the mask and reports
// how the ignored leg stretches while the constrained legs stay faithful.
//
// Run with: go run ./examples/daytrip
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"spatialseq"
)

func main() {
	ds := spatialseq.MustGenerate(spatialseq.GaodeLike(30000, 21))
	eng := spatialseq.NewEngine(ds)

	// adopt three synthetic categories for hotel / museum / restaurant
	hotel := ds.Object(100)
	museum := pickOther(ds, hotel.Category)
	restaurant := pickOther(ds, hotel.Category, museum.Category)

	ex := spatialseq.Example{
		Categories: []spatialseq.CategoryID{hotel.Category, museum.Category, restaurant.Category},
		Locations: []spatialseq.Point{
			hotel.Loc,
			{X: hotel.Loc.X + 2, Y: hotel.Loc.Y + 1},   // museum ~2km away
			{X: hotel.Loc.X - 1, Y: hotel.Loc.Y + 2.5}, // restaurant ~3km away
		},
		Attrs: [][]float64{hotel.Attr, museum.Attr, restaurant.Attr},
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	run := func(label string, skip [][2]int) {
		q := &spatialseq.Query{
			Variant: spatialseq.CSEQ,
			Example: ex,
			Params:  spatialseq.Params{K: 3, Alpha: 0.4, Beta: 1.5, GridD: 5, Xi: 10},
		}
		q.Example.SkipPairs = skip
		res, err := eng.Search(ctx, q, spatialseq.HSP, spatialseq.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (%s):\n", label, res.Elapsed.Round(time.Millisecond))
		for rank, t := range res.Tuples {
			h := ds.Object(int(t.Positions[0])).Loc
			m := ds.Object(int(t.Positions[1])).Loc
			r := ds.Object(int(t.Positions[2])).Loc
			fmt.Printf("  #%d sim=%.4f  hotel-museum %.1fkm  hotel-restaurant %.1fkm  museum-restaurant %.1fkm\n",
				rank+1, t.Sim, h.Dist(m), h.Dist(r), m.Dist(r))
		}
	}

	run("all pairs constrained", nil)
	run("museum-restaurant leg ignored", [][2]int{{1, 2}})
	fmt.Println("\nWith the taxi leg masked, the museum-restaurant distances spread")
	fmt.Println("freely while the walked legs keep tracking the example.")
}

// pickOther returns an object whose category differs from the given ones.
func pickOther(ds *spatialseq.Dataset, avoid ...spatialseq.CategoryID) *spatialseq.Object {
	for i := 0; i < ds.Len(); i++ {
		o := ds.Object(i)
		ok := true
		for _, c := range avoid {
			if o.Category == c {
				ok = false
				break
			}
		}
		if ok {
			return o
		}
	}
	log.Fatal("no object with a distinct category")
	return nil
}
