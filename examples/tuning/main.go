// Tuning: the accuracy/efficiency frontier of LORA (the shape behind the
// paper's Figure 10). The program runs one query set at grid resolutions
// D = 1..10 and two sampling budgets, comparing each setting's average
// result similarity and latency against the exact HSP answer, and prints
// the Theorem 3 grid resolution that would guarantee a chosen epsilon.
//
// Run with: go run ./examples/tuning
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"spatialseq"
)

func main() {
	ds := spatialseq.MustGenerate(spatialseq.GaodeLike(10000, 5))
	eng := spatialseq.NewEngine(ds)

	// one representative example drawn from the dataset
	a, b, c := ds.Object(100), ds.Object(2500), ds.Object(7000)
	base := spatialseq.Query{
		Variant: spatialseq.CSEQ,
		Example: spatialseq.Example{
			Categories: []spatialseq.CategoryID{a.Category, b.Category, c.Category},
			Locations: []spatialseq.Point{
				a.Loc,
				{X: a.Loc.X + 3, Y: a.Loc.Y + 1},
				{X: a.Loc.X + 1, Y: a.Loc.Y + 4},
			},
			Attrs: [][]float64{a.Attr, b.Attr, c.Attr},
		},
		Params: spatialseq.DefaultParams(),
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	exactQ := base
	exact, err := eng.Search(ctx, &exactQ, spatialseq.HSP, spatialseq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	exactAvg := avgSim(exact)
	fmt.Printf("exact (HSP): avg sim %.5f in %s\n\n", exactAvg, exact.Elapsed.Round(time.Microsecond))

	fmt.Println("  D  xi   time        avg sim   gap to exact")
	for _, xi := range []int{5, 50} {
		for d := 1; d <= 10; d++ {
			q := base
			q.Params.GridD = d
			q.Params.Xi = xi
			res, err := eng.Search(ctx, &q, spatialseq.LORA, spatialseq.Options{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%3d %3d  %-10s  %.5f   %+.5f\n",
				d, xi, res.Elapsed.Round(time.Microsecond), avgSim(res), avgSim(res)-exactAvg)
		}
		fmt.Println()
	}
}

func avgSim(r *spatialseq.Result) float64 {
	if len(r.Tuples) == 0 {
		return 0
	}
	var s float64
	for _, t := range r.Tuples {
		s += t.Sim
	}
	return s / float64(len(r.Tuples))
}
