// Quickstart: generate a synthetic city, build an engine, and answer one
// example-based query with the exact algorithm (HSP) and the fast
// approximate one (LORA).
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"spatialseq"
)

func main() {
	// A Gaode-like synthetic city with 20,000 POIs in 20 categories.
	ds := spatialseq.MustGenerate(spatialseq.GaodeLike(20000, 42))
	fmt.Printf("dataset: %d POIs, %d categories, %d attributes\n",
		ds.Len(), ds.NumCategories(), ds.AttrDim())

	eng := spatialseq.NewEngine(ds)

	// The example: three POIs the user already knows and likes — their
	// locations fix the desired geometry, their attributes the desired
	// quality profile. Here we simply borrow three dataset objects, which
	// is exactly what a user clicking known places on a map does.
	a, b, c := ds.Object(10), ds.Object(500), ds.Object(900)
	q := &spatialseq.Query{
		Variant: spatialseq.CSEQ,
		Example: spatialseq.Example{
			Categories: []spatialseq.CategoryID{a.Category, b.Category, c.Category},
			Locations:  []spatialseq.Point{a.Loc, b.Loc, c.Loc},
			Attrs:      [][]float64{a.Attr, b.Attr, c.Attr},
		},
		Params: spatialseq.DefaultParams(), // k=5, alpha=0.5, beta=1.5, D=5, xi=10
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	for _, algo := range []spatialseq.Algorithm{spatialseq.HSP, spatialseq.LORA} {
		qq := *q // Search normalizes parameters in place; keep q reusable
		res, err := eng.Search(ctx, &qq, algo, spatialseq.Options{})
		if err != nil {
			log.Fatalf("%v: %v", algo, err)
		}
		fmt.Printf("\n%v found %d tuples in %s:\n", algo, len(res.Tuples), res.Elapsed.Round(time.Microsecond))
		for rank, t := range res.Tuples {
			fmt.Printf("  #%d sim=%.4f ", rank+1, t.Sim)
			for _, pos := range t.Positions {
				o := ds.Object(int(pos))
				fmt.Printf(" %s@%s", ds.CategoryName(o.Category), o.Loc)
			}
			fmt.Println()
		}
	}
}
