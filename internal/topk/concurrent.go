package topk

import (
	"math"
	"sync"
	"sync/atomic"
)

// Sink is the result-collection interface the search algorithms write to;
// Heap implements it for sequential searches and Concurrent for parallel
// ones.
type Sink interface {
	// K returns the result capacity.
	K() int
	// WouldAccept reports whether a candidate with this similarity could
	// still enter the results. Implementations may answer with a slightly
	// stale threshold as long as staleness is conservative (only ever
	// admitting more candidates, never rejecting one that would fit).
	WouldAccept(sim float64) bool
	// Offer proposes a tuple (copied if retained).
	Offer(tuple []int32, sim float64) bool
}

// ResultSink is a Sink whose collected entries can be read back. The
// algorithms accept one as an externally supplied collector (the sharded
// serving tier injects a threshold-sharing sink this way); Heap and
// Concurrent both implement it.
type ResultSink interface {
	Sink
	// Results returns the held entries ordered best-first (similarity
	// descending, ties by tuple identity ascending).
	Results() []Entry
}

var (
	_ ResultSink = (*Heap)(nil)
	_ ResultSink = (*Concurrent)(nil)
)

// Concurrent is a thread-safe top-k sink for parallel subspace searches.
// Offer takes a mutex; WouldAccept is lock-free against an atomically
// published threshold, which may lag behind the true one — pruning with a
// stale (lower) threshold only admits extra candidates, preserving
// exactness.
type Concurrent struct {
	mu  sync.Mutex
	h   *Heap
	thr atomic.Uint64 // math.Float64bits of the current threshold
}

// NewConcurrent returns a Concurrent sink keeping the top k entries.
func NewConcurrent(k int) *Concurrent {
	c := &Concurrent{h: New(k)}
	c.thr.Store(math.Float64bits(math.Inf(-1)))
	return c
}

// K returns the sink's capacity.
func (c *Concurrent) K() int { return c.h.K() }

// WouldAccept reports whether sim could enter the results, using the
// lock-free threshold snapshot. As with Heap.WouldAccept, equality passes:
// a bound equal to the threshold may still cover a tuple that wins the
// deterministic tie-break, and admitting it is what makes parallel
// searches return the same tuples as sequential ones.
//
//seq:hotpath
func (c *Concurrent) WouldAccept(sim float64) bool {
	return sim >= math.Float64frombits(c.thr.Load())
}

// Threshold returns the currently published pruning threshold. Because
// every store happens under the Offer lock and the heap threshold only
// ever rises, the sequence of values any reader observes is
// monotonically non-decreasing.
func (c *Concurrent) Threshold() float64 {
	return math.Float64frombits(c.thr.Load())
}

// Offer proposes a tuple under the lock and republishes the threshold.
//
//seq:hotpath
func (c *Concurrent) Offer(tuple []int32, sim float64) bool {
	c.mu.Lock()
	inserted := c.h.Offer(tuple, sim)
	c.thr.Store(math.Float64bits(c.h.Threshold()))
	c.mu.Unlock()
	return inserted
}

// Results returns the held entries ordered best-first.
func (c *Concurrent) Results() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.h.Results()
}

// Len returns the number of entries currently held.
func (c *Concurrent) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.h.Len()
}
