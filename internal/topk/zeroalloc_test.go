package topk

import (
	"math"
	"testing"
)

// fillHeap fills a k=4 heap so its threshold is 0.5.
func fillHeap() *Heap {
	h := New(4)
	for i, sim := range []float64{0.5, 0.6, 0.7, 0.8} {
		h.Offer([]int32{int32(i), int32(i + 10)}, sim)
	}
	return h
}

// TestOfferRejectZeroAlloc pins the dominant Offer outcome — a full heap
// rejecting a candidate strictly below the threshold — at zero
// allocations: the fast reject fires before the tuple key is built.
func TestOfferRejectZeroAlloc(t *testing.T) {
	h := fillHeap()
	cand := []int32{99, 100}
	if got := testing.AllocsPerRun(100, func() {
		if h.Offer(cand, 0.1) {
			t.Fatal("below-threshold candidate must be rejected")
		}
	}); got != 0 {
		t.Errorf("rejecting Offer allocates %v times per call, want 0", got)
	}
}

func TestWouldAcceptThresholdZeroAlloc(t *testing.T) {
	h := fillHeap()
	var sink bool
	var thr float64
	if got := testing.AllocsPerRun(100, func() {
		sink = h.WouldAccept(0.3)
		thr = h.Threshold()
	}); got != 0 {
		t.Errorf("WouldAccept/Threshold allocate %v times per call, want 0", got)
	}
	_, _ = sink, thr
}

// TestOfferFastRejectSemantics proves the fast reject never changes
// results: strictly-below-threshold candidates were unconditionally
// rejected before (beats needs sim > or tie), duplicates below the
// threshold were rejected too, and NaN still loses in beats.
func TestOfferFastRejectSemantics(t *testing.T) {
	h := fillHeap()
	if h.Offer([]int32{1, 11}, 0.2) { // duplicate tuple, below threshold
		t.Error("duplicate below threshold must be rejected")
	}
	if h.Offer([]int32{50, 51}, math.NaN()) {
		t.Error("NaN similarity must be rejected")
	}
	if !h.Offer([]int32{60, 61}, 0.5) {
		// equal to the threshold: key {60,61} is compared against the
		// incumbent's {0,10}; bigger key loses... unless it wins the
		// tie-break. Compute the expectation explicitly.
		worst := h.h[0]
		if beats(0.5, tupleKey([]int32{60, 61}), worst.e.Sim, worst.key) {
			t.Error("tie-breaking candidate must still enter at threshold similarity")
		}
	}
	if !h.Offer([]int32{70, 71}, 0.9) {
		t.Error("above-threshold candidate must enter")
	}
}

func TestConcurrentOfferRejectZeroAlloc(t *testing.T) {
	c := NewConcurrent(4)
	for i, sim := range []float64{0.5, 0.6, 0.7, 0.8} {
		c.Offer([]int32{int32(i), int32(i + 10)}, sim)
	}
	cand := []int32{99, 100}
	if got := testing.AllocsPerRun(100, func() {
		if c.Offer(cand, 0.1) {
			t.Fatal("below-threshold candidate must be rejected")
		}
	}); got != 0 {
		t.Errorf("rejecting Concurrent.Offer allocates %v times per call, want 0", got)
	}
}
