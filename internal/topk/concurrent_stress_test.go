package topk

import (
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
)

// TestConcurrentStress hammers one Concurrent sink from many goroutines
// mixing Offer, WouldAccept, Results, Len and Threshold calls, then
// checks the two invariants parallel searches rely on: every goroutine
// observes a monotonically non-decreasing published threshold, and the
// final results are exactly those of a sequential Heap oracle fed the
// same offers. Under -race this also exercises the lock-free threshold
// publication against the locked heap mutation.
func TestConcurrentStress(t *testing.T) {
	const k = 16
	const offersPerWorker = 2000
	workers := 4 * runtime.GOMAXPROCS(0)

	type offer struct {
		tuple []int32
		sim   float64
	}
	// Distinct tuples per offer keep the oracle comparison order-free:
	// the heap dedups by tuple identity, so a duplicate tuple offered
	// with two different similarities would make the outcome depend on
	// which arrived first. Coarse similarities force plenty of exact
	// ties, exercising the deterministic tie-break instead.
	offers := make([][]offer, workers)
	rng := rand.New(rand.NewSource(42))
	for g := range offers {
		offers[g] = make([]offer, offersPerWorker)
		for i := range offers[g] {
			offers[g][i] = offer{
				tuple: []int32{int32(g), int32(i)},
				sim:   float64(rng.Intn(1000)) / 1000,
			}
		}
	}

	c := NewConcurrent(k)
	var wg sync.WaitGroup
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func(g int) {
			defer wg.Done()
			last := math.Inf(-1)
			buf := make([]int32, 2)
			reported := false
			for i, of := range offers[g] {
				// Reuse one buffer across offers: the Sink contract says
				// Offer copies retained tuples, so overwriting buf on the
				// next iteration must not corrupt the sink.
				copy(buf, of.tuple)
				c.WouldAccept(of.sim) // stale answers are fine; must not race
				c.Offer(buf, of.sim)
				thr := c.Threshold()
				if thr < last && !reported {
					t.Errorf("worker %d: published threshold decreased: %v -> %v", g, last, thr)
					reported = true
				}
				last = thr
				if i%512 == 0 {
					c.Results()
					c.Len()
				}
			}
		}(g)
	}
	wg.Wait()

	oracle := New(k)
	for _, os := range offers {
		for _, of := range os {
			oracle.Offer(of.tuple, of.sim)
		}
	}
	got, want := c.Results(), oracle.Results()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("concurrent results diverge from sequential oracle:\ngot  %v\nwant %v", got, want)
	}
	if thr := c.Threshold(); thr != oracle.Threshold() {
		t.Fatalf("final threshold %v, oracle %v", thr, oracle.Threshold())
	}
}

// TestSinkOfferCopiesTuple pins the Sink interface contract ("copied if
// retained"): mutating the caller's slice after a successful Offer must
// not change what Results returns, for both Sink implementations.
func TestSinkOfferCopiesTuple(t *testing.T) {
	for name, s := range map[string]Sink{
		"Heap":       New(2),
		"Concurrent": NewConcurrent(2),
	} {
		tuple := []int32{1, 2, 3}
		if !s.Offer(tuple, 0.5) {
			t.Fatalf("%s: Offer rejected the first tuple", name)
		}
		tuple[0], tuple[1], tuple[2] = 99, 98, 97

		var got []Entry
		switch s := s.(type) {
		case *Heap:
			got = s.Results()
		case *Concurrent:
			got = s.Results()
		}
		if len(got) != 1 {
			t.Fatalf("%s: got %d results, want 1", name, len(got))
		}
		if !reflect.DeepEqual(got[0].Tuple, []int32{1, 2, 3}) {
			t.Errorf("%s: Offer retained the caller's buffer: mutating it changed Results to %v", name, got[0].Tuple)
		}
	}
}
