// Package topk maintains the k best candidate tuples found during a search.
//
// It is a bounded min-heap keyed by similarity with two extra duties the
// algorithms rely on:
//
//   - deterministic tie-breaking (by tuple identity), so exact algorithms
//     return the same result set regardless of enumeration order, and
//   - tuple deduplication, so the same candidate discovered through two
//     paths occupies one slot only.
package topk

import (
	"container/heap"
	"encoding/binary"
	"math"
	"sort"
)

// Entry is one result candidate: the tuple (dataset positions, one per
// example dimension) and its similarity to the example.
type Entry struct {
	Tuple []int32
	Sim   float64
}

// Heap keeps the top-k entries by similarity. The zero value is unusable;
// call New.
type Heap struct {
	k    int
	h    entryHeap
	keys map[string]struct{}
}

// New returns a Heap retaining the k most similar entries. k must be >= 1.
func New(k int) *Heap {
	if k < 1 {
		k = 1
	}
	return &Heap{k: k, keys: make(map[string]struct{})}
}

// K returns the heap's capacity.
func (t *Heap) K() int { return t.k }

// Len returns the number of entries currently held.
func (t *Heap) Len() int { return len(t.h) }

// Full reports whether k entries are held.
func (t *Heap) Full() bool { return len(t.h) >= t.k }

// Threshold returns the smallest similarity currently in the heap, or
// -Inf while the heap is not yet full. A candidate with similarity <=
// Threshold (and losing the tie-break) cannot enter a full heap, which is
// exactly the R_min pruning test of Algorithms 1 and 4.
//
//seq:hotpath
func (t *Heap) Threshold() float64 {
	if !t.Full() {
		return math.Inf(-1)
	}
	return t.h[0].e.Sim
}

// Offer proposes a tuple. It copies the tuple when retaining it, so callers
// may reuse their buffer. It reports whether the entry was inserted.
//
// The common case — a full heap rejecting a candidate strictly below the
// threshold — allocates nothing: the tuple key is only materialised once
// the candidate could actually enter.
//
//seq:hotpath
func (t *Heap) Offer(tuple []int32, sim float64) bool {
	if t.Full() && sim < t.h[0].e.Sim {
		// Strictly below the threshold can never enter: the tie-break only
		// decides exact similarity ties, and a duplicate of a held tuple
		// would be rejected either way. (A NaN sim falls through — every
		// comparison with NaN is false — and loses in beats as before.)
		return false
	}
	key := tupleKey(tuple)
	if _, dup := t.keys[key]; dup {
		return false
	}
	if t.Full() {
		worst := &t.h[0]
		if !beats(sim, key, worst.e.Sim, worst.key) {
			return false
		}
		delete(t.keys, worst.key)
		//lint:ignore hotpathalloc retained-entry copy; runs only when a candidate actually enters the top-k, not per rejected offer
		tp := make([]int32, len(tuple))
		copy(tp, tuple)
		t.h[0] = item{e: Entry{Tuple: tp, Sim: sim}, key: key}
		heap.Fix(&t.h, 0)
		t.keys[key] = struct{}{}
		return true
	}
	//lint:ignore hotpathalloc retained-entry copy; runs at most k times while the heap fills
	tp := make([]int32, len(tuple))
	copy(tp, tuple)
	//lint:ignore hotpathalloc container/heap boxes the item; fill path runs at most k times
	heap.Push(&t.h, item{e: Entry{Tuple: tp, Sim: sim}, key: key})
	t.keys[key] = struct{}{}
	return true
}

// WouldAccept reports whether a candidate with similarity sim could enter
// the heap. It is the pruning test used against upper bounds: a subtree
// whose bound fails WouldAccept cannot contribute.
//
// Equality passes. Callers feed WouldAccept upper bounds, and a subtree
// whose bound equals the current threshold can still hold a tuple that
// scores exactly the threshold yet enters via the deterministic tie-break
// (smaller tuple key beats the incumbent in beats). Pruning such subtrees
// would make exact algorithms return tie-sets that depend on enumeration
// order; admitting them keeps brute force, DFS-Prune and HSP (sequential
// or parallel) tuple-for-tuple identical. Offer still rejects candidates
// that lose the tie-break, so equality here costs at most the descent, not
// correctness.
//
//seq:hotpath
func (t *Heap) WouldAccept(sim float64) bool {
	return !t.Full() || sim >= t.h[0].e.Sim
}

// Results returns the held entries ordered best-first (similarity
// descending, ties by tuple identity ascending).
func (t *Heap) Results() []Entry {
	items := make([]item, len(t.h))
	copy(items, t.h)
	sort.SliceStable(items, func(i, j int) bool {
		return beats(items[i].e.Sim, items[i].key, items[j].e.Sim, items[j].key)
	})
	out := make([]Entry, len(items))
	for i, it := range items {
		out[i] = it.e
	}
	return out
}

// beats reports whether candidate (sa, ka) outranks (sb, kb): higher
// similarity wins; on exact ties the lexicographically smaller tuple key
// wins, making results independent of enumeration order.
//
//seq:hotpath
func beats(sa float64, ka string, sb float64, kb string) bool {
	if sa != sb {
		return sa > sb
	}
	return ka < kb
}

func tupleKey(tuple []int32) string {
	//lint:ignore hotpathalloc key bytes; Offer's fast reject keeps this off the strictly-below-threshold path
	buf := make([]byte, 4*len(tuple))
	for i, v := range tuple {
		binary.BigEndian.PutUint32(buf[4*i:], uint32(v))
	}
	//lint:ignore hotpathalloc key string; Offer's fast reject keeps this off the strictly-below-threshold path
	return string(buf)
}

type item struct {
	e   Entry
	key string
}

// entryHeap is a min-heap: the root is the entry that Offer evicts first,
// i.e. the one every current member beats.
type entryHeap []item

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	return beats(h[j].e.Sim, h[j].key, h[i].e.Sim, h[i].key)
}
func (h entryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x any)   { *h = append(*h, x.(item)) }
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
