package topk

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestOfferAndResultsOrdering(t *testing.T) {
	h := New(3)
	h.Offer([]int32{1, 2}, 0.5)
	h.Offer([]int32{3, 4}, 0.9)
	h.Offer([]int32{5, 6}, 0.7)
	h.Offer([]int32{7, 8}, 0.8) // evicts 0.5
	res := h.Results()
	if len(res) != 3 {
		t.Fatalf("len = %d", len(res))
	}
	want := []float64{0.9, 0.8, 0.7}
	for i, e := range res {
		if e.Sim != want[i] {
			t.Errorf("res[%d].Sim = %g, want %g", i, e.Sim, want[i])
		}
	}
}

func TestThreshold(t *testing.T) {
	h := New(2)
	if !math.IsInf(h.Threshold(), -1) {
		t.Error("threshold of non-full heap must be -Inf")
	}
	h.Offer([]int32{1}, 0.3)
	if !math.IsInf(h.Threshold(), -1) {
		t.Error("still not full")
	}
	h.Offer([]int32{2}, 0.6)
	if h.Threshold() != 0.3 {
		t.Errorf("Threshold = %g, want 0.3", h.Threshold())
	}
	h.Offer([]int32{3}, 0.5)
	if h.Threshold() != 0.5 {
		t.Errorf("Threshold after eviction = %g, want 0.5", h.Threshold())
	}
}

func TestWouldAccept(t *testing.T) {
	h := New(1)
	if !h.WouldAccept(-5) {
		t.Error("non-full heap accepts anything")
	}
	h.Offer([]int32{1}, 0.5)
	if h.WouldAccept(0.4) {
		t.Error("lower similarity must not pass a full heap")
	}
	// Equality must pass: a bound equal to the threshold can still cover a
	// tuple that wins the deterministic tie-break (smaller tuple key).
	if !h.WouldAccept(0.5) {
		t.Error("equal similarity must pass WouldAccept (tie-break contract)")
	}
	if !h.WouldAccept(0.6) {
		t.Error("higher similarity must pass")
	}
}

// TestWouldAcceptTieBreakEntry pins the contract end to end: with the heap
// full at threshold 0.5, a tied candidate with a smaller tuple key passes
// WouldAccept and replaces the incumbent via Offer, while a tied candidate
// with a larger key passes WouldAccept but loses the tie-break in Offer.
func TestWouldAcceptTieBreakEntry(t *testing.T) {
	h := New(1)
	h.Offer([]int32{5}, 0.5)
	if !h.WouldAccept(0.5) {
		t.Fatal("tied bound must not be pruned")
	}
	if h.Offer([]int32{7}, 0.5) {
		t.Error("tied candidate with larger key must lose to the incumbent")
	}
	if !h.Offer([]int32{3}, 0.5) {
		t.Error("tied candidate with smaller key must replace the incumbent")
	}
	if got := h.Results()[0].Tuple[0]; got != 3 {
		t.Errorf("winner = %d, want 3", got)
	}
}

func TestDeduplication(t *testing.T) {
	h := New(3)
	if !h.Offer([]int32{1, 2}, 0.5) {
		t.Error("first offer should insert")
	}
	if h.Offer([]int32{1, 2}, 0.5) {
		t.Error("duplicate tuple must be rejected")
	}
	if h.Len() != 1 {
		t.Errorf("Len = %d, want 1", h.Len())
	}
	// different order of the same positions is a different (ordered) tuple
	if !h.Offer([]int32{2, 1}, 0.5) {
		t.Error("reordered tuple is distinct and should insert")
	}
}

func TestTupleCopied(t *testing.T) {
	h := New(1)
	buf := []int32{1, 2, 3}
	h.Offer(buf, 0.5)
	buf[0] = 99
	if h.Results()[0].Tuple[0] != 1 {
		t.Error("heap must copy offered tuples")
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Same similarities, different insertion orders -> same result set.
	tuples := [][]int32{{5}, {1}, {9}, {3}}
	build := func(order []int) []Entry {
		h := New(2)
		for _, i := range order {
			h.Offer(tuples[i], 0.5)
		}
		return h.Results()
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 2, 1, 0})
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Tuple[0] != b[i].Tuple[0] {
			t.Errorf("tie-break not deterministic: %v vs %v", a, b)
		}
	}
	// Lexicographically smallest tuples should win the tie.
	if a[0].Tuple[0] != 1 || a[1].Tuple[0] != 3 {
		t.Errorf("expected tuples 1,3 to win ties, got %v", a)
	}
}

func TestAgainstSortOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(10)
		n := rng.Intn(200)
		h := New(k)
		type cand struct {
			tuple []int32
			sim   float64
		}
		var all []cand
		for i := 0; i < n; i++ {
			c := cand{tuple: []int32{int32(i)}, sim: math.Round(rng.Float64()*20) / 20}
			all = append(all, c)
			h.Offer(c.tuple, c.sim)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].sim != all[j].sim {
				return all[i].sim > all[j].sim
			}
			return all[i].tuple[0] < all[j].tuple[0]
		})
		want := all
		if len(want) > k {
			want = want[:k]
		}
		got := h.Results()
		if len(got) != len(want) {
			t.Fatalf("len = %d, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Sim != want[i].sim || got[i].Tuple[0] != want[i].tuple[0] {
				t.Fatalf("trial %d: results diverge from sort oracle at %d: got (%v,%g) want (%v,%g)",
					trial, i, got[i].Tuple, got[i].Sim, want[i].tuple, want[i].sim)
			}
		}
	}
}

func TestKFloor(t *testing.T) {
	h := New(0)
	if h.K() != 1 {
		t.Errorf("K normalised to %d, want 1", h.K())
	}
}
