package topk

import (
	"math"
	"testing"
	"testing/quick"
)

// The heap's threshold must always equal the minimum retained similarity
// once full, and never admit a strictly worse candidate.
func TestQuickThresholdInvariant(t *testing.T) {
	f := func(sims []float64, k uint8) bool {
		h := New(int(k%8) + 1)
		for i, raw := range sims {
			s := raw
			if math.IsNaN(s) || math.IsInf(s, 0) {
				s = 0
			}
			h.Offer([]int32{int32(i)}, s)
			if h.Full() {
				res := h.Results()
				minSim := res[len(res)-1].Sim
				if h.Threshold() != minSim {
					return false
				}
			}
		}
		// results are sorted best-first
		res := h.Results()
		for i := 1; i < len(res); i++ {
			if res[i].Sim > res[i-1].Sim {
				return false
			}
		}
		return len(res) <= h.K()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// The concurrent sink must agree with a plain heap when used sequentially.
func TestQuickConcurrentMatchesHeap(t *testing.T) {
	f := func(sims []float64, k uint8) bool {
		kk := int(k%6) + 1
		h := New(kk)
		c := NewConcurrent(kk)
		for i, raw := range sims {
			s := raw
			if math.IsNaN(s) || math.IsInf(s, 0) {
				s = 0
			}
			h.Offer([]int32{int32(i)}, s)
			c.Offer([]int32{int32(i)}, s)
		}
		a, b := h.Results(), c.Results()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Sim != b[i].Sim || a[i].Tuple[0] != b[i].Tuple[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
