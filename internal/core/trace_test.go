package core

import (
	"context"
	"testing"
	"time"

	"spatialseq/internal/obs"
)

// TestSearchTracePhases checks that each algorithm reports phase
// timings and that, on the sequential path, the phases are disjoint
// slices of the elapsed wall time.
func TestSearchTracePhases(t *testing.T) {
	eng, q := setup(t, 300)
	ctx := context.Background()

	wantPhases := map[Algorithm][]string{
		DFSPrune: {"validate", "dfs.candidates", "dfs.search", "topk.merge"},
		HSP:      {"validate", "hsp.partition", "hsp.candidates", "hsp.dfs", "topk.merge"},
		LORA:     {"validate", "lora.partition", "lora.sample", "lora.cells", "topk.merge"},
	}
	for algo, want := range wantPhases {
		tr := obs.NewTrace()
		qq := *q
		res, err := eng.Search(ctx, &qq, algo, Options{CollectStats: true, Trace: tr})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		snap := tr.Snapshot()
		got := make(map[string]obs.PhaseTiming, len(snap))
		var sum time.Duration
		for _, p := range snap {
			got[p.Name] = p
			if p.DurationMS < 0 {
				t.Errorf("%v: phase %s has negative duration %g", algo, p.Name, p.DurationMS)
			}
			sum += time.Duration(p.DurationMS * float64(time.Millisecond))
		}
		for _, name := range want {
			if _, ok := got[name]; !ok {
				t.Errorf("%v: phase %q missing from trace %v", algo, name, snap)
			}
		}
		if sum > res.Elapsed+time.Millisecond {
			t.Errorf("%v: phase sum %v exceeds elapsed %v", algo, sum, res.Elapsed)
		}
	}
}

// TestSearchWithoutTrace confirms the nil-trace path records nothing
// and costs no correctness.
func TestSearchWithoutTrace(t *testing.T) {
	eng, q := setup(t, 100)
	res, err := eng.Search(context.Background(), q, HSP, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) == 0 {
		t.Error("expected results")
	}
}
