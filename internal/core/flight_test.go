package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"spatialseq/internal/geo"
	"spatialseq/internal/obs"
	"spatialseq/internal/obs/flight"
	"spatialseq/internal/query"
	"spatialseq/internal/testutil"
)

// retainAll returns a recorder whose 1ns floor makes every query slow,
// so captures are always retained.
func retainAll() *flight.Recorder {
	return flight.New(flight.Config{Floor: time.Nanosecond, KeepSlowest: 8})
}

func TestSearchEmitsFlightRecord(t *testing.T) {
	eng, q := setup(t, 150)
	rec := retainAll()
	eng.SetFlightRecorder(rec)
	ctx := obs.WithRequestID(context.Background(), "test-req-1")
	res, err := eng.Search(ctx, q, HSP, Options{CollectStats: true, Trace: obs.NewTrace()})
	if err != nil {
		t.Fatal(err)
	}
	recent := rec.Recent(1)
	if len(recent) != 1 {
		t.Fatalf("recorder holds %d records, want 1", len(recent))
	}
	r := recent[0]
	if r.RequestID != "test-req-1" {
		t.Errorf("RequestID = %q", r.RequestID)
	}
	if r.Outcome != flight.OutcomeOK || r.CacheHit {
		t.Errorf("outcome = %q cache_hit = %v", r.Outcome, r.CacheHit)
	}
	if r.Algorithm != "hsp" || r.Variant != q.Variant.String() {
		t.Errorf("fingerprint = %s/%s", r.Algorithm, r.Variant)
	}
	if int(r.M) != q.Example.M() || int(r.K) != q.Params.K {
		t.Errorf("m=%d k=%d, want m=%d k=%d", r.M, r.K, q.Example.M(), q.Params.K)
	}
	if r.ShardID != flight.NoShard {
		t.Errorf("ShardID = %d, want NoShard", r.ShardID)
	}
	if r.Work != res.Stats {
		t.Errorf("record work %+v != result stats %+v", r.Work, res.Stats)
	}
	if len(r.Phases) == 0 {
		t.Error("record carries no phase timings despite an attached trace")
	}
	if r.LatencyNS != int64(res.Elapsed) {
		t.Errorf("latency %d != elapsed %d", r.LatencyNS, int64(res.Elapsed))
	}
	if r.Capture == nil {
		t.Fatal("slow record carries no capture payload")
	}
	if r.Capture.Algorithm != "hsp" || len(r.Capture.Dims) != q.Example.M() {
		t.Errorf("capture = %+v", r.Capture)
	}
}

func TestSearchEmitsErrorAndTimeoutRecords(t *testing.T) {
	eng, q := setup(t, 150)
	rec := retainAll()
	eng.SetFlightRecorder(rec)
	if _, err := eng.Search(context.Background(), q, Algorithm(99), Options{}); err == nil {
		t.Fatal("unsupported algorithm succeeded")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Search(ctx, q, HSP, Options{}); err == nil {
		t.Fatal("canceled search succeeded")
	}
	recent := rec.Recent(2)
	if len(recent) != 2 {
		t.Fatalf("recorder holds %d records, want 2", len(recent))
	}
	// Newest first: the timeout, then the unsupported-algorithm error.
	if recent[0].Outcome != flight.OutcomeTimeout {
		t.Errorf("canceled search outcome = %q, want timeout", recent[0].Outcome)
	}
	if recent[1].Outcome != flight.OutcomeError {
		t.Errorf("failed search outcome = %q, want error", recent[1].Outcome)
	}
}

func TestSearchWithoutRecorder(t *testing.T) {
	eng, q := setup(t, 150)
	if eng.FlightRecorder() != nil {
		t.Fatal("fresh engine has a recorder attached")
	}
	if _, err := eng.Search(context.Background(), q, HSP, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestCaptureQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	ds := testutil.RandDataset(rng, 150, 3, 4, 100)
	q := testutil.RandQuery(rng, ds, 3, 25, query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10})
	q.Variant = query.CSEQFP
	q.Example.Fixed = []query.FixedPoint{{Dim: 1, Obj: 7}}
	c := CaptureQuery(ds, q, HSP)
	if c == nil {
		t.Fatal("capturable query yielded nil")
	}
	if c.Variant != "CSEQ-FP" || c.Algorithm != "hsp" || c.K != q.Params.K {
		t.Errorf("capture header = %+v", c)
	}
	if len(c.Dims) != q.Example.M() {
		t.Fatalf("capture has %d dims, want %d", len(c.Dims), q.Example.M())
	}
	if c.Dims[1].FixedID == nil || *c.Dims[1].FixedID != ds.Object(7).ID {
		t.Errorf("pinned dim = %+v, want object ID %d", c.Dims[1], ds.Object(7).ID)
	}
	if c.Dims[0].Category != ds.CategoryName(q.Example.Categories[0]) {
		t.Errorf("dim 0 category = %q", c.Dims[0].Category)
	}
	// The capture clones attrs: mutating the query afterwards must not
	// reach into the retained payload.
	orig := c.Dims[0].Attrs[0]
	q.Example.Attrs[0][0] = orig + 1000
	if c.Dims[0].Attrs[0] != orig {
		t.Error("capture aliases the query's attr slice")
	}

	q.Example.Metric = dominating{}
	if CaptureQuery(ds, q, HSP) != nil {
		t.Error("query with a custom metric captured (no canonical encoding exists)")
	}
}

// dominating is a trivial custom metric for the non-capturable case.
type dominating struct{}

func (dominating) Dist(a, b geo.Point) float64 { return 2 * a.Dist(b) }
func (dominating) DominatesEuclidean() bool    { return true }
