package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"spatialseq/internal/query"
	"spatialseq/internal/testutil"
)

func setup(t *testing.T, n int) (*Engine, *query.Query) {
	t.Helper()
	rng := rand.New(rand.NewSource(81))
	ds := testutil.RandDataset(rng, n, 3, 4, 100)
	q := testutil.RandQuery(rng, ds, 3, 25, query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10})
	return NewEngine(ds), q
}

func TestSearchAllAlgorithms(t *testing.T) {
	eng, q := setup(t, 150)
	ctx := context.Background()
	var exactSims []float64
	for _, algo := range []Algorithm{BruteForce, DFSPrune, HSP, LORA} {
		qq := *q
		res, err := eng.Search(ctx, &qq, algo, Options{})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.Algorithm != algo {
			t.Errorf("result algorithm = %v, want %v", res.Algorithm, algo)
		}
		if res.Elapsed <= 0 {
			t.Errorf("%v: non-positive elapsed", algo)
		}
		sims := res.Similarities()
		for i := 1; i < len(sims); i++ {
			if sims[i] > sims[i-1] {
				t.Errorf("%v: results not sorted best-first", algo)
			}
		}
		if algo == BruteForce {
			exactSims = sims
			continue
		}
		if algo == DFSPrune || algo == HSP {
			if len(sims) != len(exactSims) {
				t.Fatalf("%v: %d results, brute %d", algo, len(sims), len(exactSims))
			}
			for i := range sims {
				if math.Abs(sims[i]-exactSims[i]) > 1e-9 {
					t.Errorf("%v: rank %d sim %g != exact %g", algo, i, sims[i], exactSims[i])
				}
			}
		}
	}
}

func TestAutoSelection(t *testing.T) {
	// Auto decides on candidate volume (summed matching-category sizes),
	// not raw dataset size.
	engSmall, qs := setup(t, 100)
	res, err := engSmall.Search(context.Background(), qs, Auto, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != HSP {
		t.Errorf("small candidate volume auto = %v, want HSP", res.Algorithm)
	}
	// m=3 over 3 balanced categories: candidate volume ≈ n, so exceed the
	// limit comfortably.
	engLarge, ql := setup(t, autoHSPLimit*3/2)
	res, err = engLarge.Search(context.Background(), ql, Auto, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != LORA {
		t.Errorf("large candidate volume auto = %v, want LORA", res.Algorithm)
	}
}

func TestSearchValidates(t *testing.T) {
	eng, q := setup(t, 100)
	bad := *q
	bad.Params.Alpha = 7
	if _, err := eng.Search(context.Background(), &bad, HSP, Options{}); err == nil {
		t.Error("invalid alpha should be rejected")
	}
	bad2 := *q
	bad2.Example.Categories = nil
	if _, err := eng.Search(context.Background(), &bad2, HSP, Options{}); err == nil {
		t.Error("empty example should be rejected")
	}
}

func TestSearchUnknownAlgorithm(t *testing.T) {
	eng, q := setup(t, 100)
	if _, err := eng.Search(context.Background(), q, Algorithm(99), Options{}); err == nil {
		t.Error("unknown algorithm should be rejected")
	}
}

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]Algorithm{
		"auto": Auto, "": Auto,
		"brute":     BruteForce,
		"dfs-prune": DFSPrune, "dfsprune": DFSPrune, "dfs": DFSPrune,
		"hsp":  HSP,
		"lora": LORA,
	}
	for s, want := range cases {
		got, err := ParseAlgorithm(s)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseAlgorithm("zzz"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestAlgorithmString(t *testing.T) {
	for _, a := range []Algorithm{Auto, BruteForce, DFSPrune, HSP, LORA} {
		if a.String() == "" {
			t.Errorf("missing String for %d", int(a))
		}
		// round trip through the parser (Auto parses from "auto")
		if back, err := ParseAlgorithm(a.String()); err != nil || back != a {
			t.Errorf("round trip failed for %v", a)
		}
	}
}

func TestConcurrentSearches(t *testing.T) {
	eng, q := setup(t, 500)
	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			qq := *q
			_, err := eng.Search(context.Background(), &qq, LORA, Options{})
			errs <- err
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestSearchTimeout(t *testing.T) {
	eng, q := setup(t, 5000)
	qq := *q
	qq.Params.Beta = 9
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	if _, err := eng.Search(ctx, &qq, DFSPrune, Options{}); err == nil {
		t.Error("expired context should abort")
	}
}
