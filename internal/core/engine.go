// Package core hosts the query engine: the algorithm-agnostic entry point
// that validates a query, picks (or is told) an algorithm, runs it against
// a shared immutable dataset, and returns scored, ranked tuples.
//
// An Engine is built once per dataset; the partition index (an STR R-tree
// over the point locations) is shared by all queries and all algorithms.
// Engines are safe for concurrent Search calls.
package core

import (
	"context"
	"fmt"
	"slices"
	"sync/atomic"
	"time"

	"spatialseq/internal/algo/brute"
	"spatialseq/internal/algo/dfsprune"
	"spatialseq/internal/algo/hsp"
	"spatialseq/internal/algo/lora"
	"spatialseq/internal/dataset"
	"spatialseq/internal/geo"
	"spatialseq/internal/obs"
	"spatialseq/internal/obs/flight"
	"spatialseq/internal/obs/span"
	"spatialseq/internal/partition"
	"spatialseq/internal/query"
	"spatialseq/internal/stats"
	"spatialseq/internal/topk"
)

// Algorithm selects the search algorithm.
type Algorithm int

const (
	// Auto picks LORA for large datasets and HSP for small ones.
	Auto Algorithm = iota
	// BruteForce is the exhaustive oracle (tiny datasets only).
	BruteForce
	// DFSPrune is the CIKM'17 baseline.
	DFSPrune
	// HSP is the paper's exact algorithm.
	HSP
	// LORA is the paper's approximate algorithm.
	LORA
)

// autoHSPLimit is the candidate-volume ceiling up to which Auto prefers
// the exact HSP: the sum over example dimensions of the matching
// category's population. Raw dataset size is a poor proxy — a query over
// three niche categories of a 10M-POI corpus is still cheap exactly, while
// three mega-categories of a 50k corpus already call for LORA.
const autoHSPLimit = 60000

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case BruteForce:
		return "brute"
	case DFSPrune:
		return "dfs-prune"
	case HSP:
		return "hsp"
	case LORA:
		return "lora"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm converts a string (as accepted on CLI flags) to an
// Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "auto", "":
		return Auto, nil
	case "brute":
		return BruteForce, nil
	case "dfs-prune", "dfsprune", "dfs":
		return DFSPrune, nil
	case "hsp":
		return HSP, nil
	case "lora":
		return LORA, nil
	default:
		return Auto, fmt.Errorf("core: unknown algorithm %q", s)
	}
}

// Options carries per-call tuning for the underlying algorithms. The zero
// value is the paper's configuration.
type Options struct {
	HSP  hsp.Options
	LORA lora.Options
	// CollectStats attaches per-search counters to the Result
	// (Result.Stats) explaining where the search spent its work.
	CollectStats bool
	// Trace, when non-nil, records wall time per search phase
	// (validation, partitioning, enumeration, DFS, top-k merge) into
	// the supplied trace — the timing companion to CollectStats. On the
	// default sequential path the phases are disjoint, so their sum is
	// bounded by Result.Elapsed.
	Trace *obs.Trace
	// Spans, when non-nil, records the hierarchical span tree of the
	// execution: per-goroutine worker timelines with per-subspace work
	// deltas attached. It supersedes the flat Trace where both are set —
	// phase timings are then derived from the tree (with parallel
	// overlap marked) and slow queries retain the tree in their flight
	// record for /debug/trace. Nil disables span tracing at no cost.
	Spans *span.Tracer
}

// ResultTuple is one ranked answer: the matched objects (one per example
// dimension, as dataset positions) and the similarity to the example.
type ResultTuple struct {
	Positions []int32
	Sim       float64
}

// Result is a completed search.
type Result struct {
	Algorithm Algorithm
	Tuples    []ResultTuple
	Elapsed   time.Duration
	// Stats holds the per-search counters when Options.CollectStats was
	// set (zero otherwise).
	Stats stats.Snapshot
}

// Searcher is the engine-shaped query surface: anything that validates a
// CSEQ against its dataset and answers it. Engine implements it for one
// process-local dataset; the sharded coordinator implements it by
// scatter-gathering over per-shard engines. The server and the eval
// harness accept a Searcher so both serving shapes share one pipeline.
type Searcher interface {
	// Dataset returns the dataset queries are validated against.
	Dataset() *dataset.Dataset
	// Search answers q with the requested algorithm; see Engine.Search.
	Search(ctx context.Context, q *query.Query, algo Algorithm, opt Options) (*Result, error)
}

// Engine answers example-based queries over one dataset.
type Engine struct {
	ds  *dataset.Dataset
	pix *partition.Index
	// shardID tags this engine's flight records when it serves one shard
	// of a scatter-gather tier; flight.NoShard (the default) marks an
	// unsharded engine.
	shardID int32
	// flight, when set, receives one flight.Record per Search call —
	// the always-on per-query forensics channel. Atomic so a recorder
	// can be attached after searches have started (the server wires it
	// at construction; embedded users may never set it and pay one nil
	// load per search).
	flight atomic.Pointer[flight.Recorder]
}

var _ Searcher = (*Engine)(nil)

// NewEngine builds the engine and its shared spatial index.
func NewEngine(ds *dataset.Dataset) *Engine {
	pts := make([]geo.Point, ds.Len())
	for i := range pts {
		pts[i] = ds.Loc(i)
	}
	return NewEngineWithIndex(ds, partition.NewIndex(pts))
}

// NewEngineWithIndex builds an engine around an existing partition index
// (which must index exactly the locations of ds, in dataset position
// order). The sharded tier uses it to run one engine per shard against
// one shared dataset and index instead of N copies of the R-tree.
func NewEngineWithIndex(ds *dataset.Dataset, pix *partition.Index) *Engine {
	return &Engine{ds: ds, pix: pix, shardID: flight.NoShard}
}

// SetShardID marks the engine as serving one shard of a scatter-gather
// tier: every flight record it emits carries id, and replayable captures
// are suppressed (a shard sees only its slice of the work, so its
// counters cannot be reproduced by a single-engine replay). Must be set
// before searches start.
func (e *Engine) SetShardID(id int32) { e.shardID = id }

// Dataset returns the engine's dataset.
func (e *Engine) Dataset() *dataset.Dataset { return e.ds }

// PartitionIndex exposes the shared partition index (used by benchmarks
// that want to isolate index construction from query time).
func (e *Engine) PartitionIndex() *partition.Index { return e.pix }

// SetFlightRecorder attaches the flight recorder every subsequent
// Search emits its per-query record into (nil detaches). Safe to call
// concurrently with searches.
func (e *Engine) SetFlightRecorder(r *flight.Recorder) { e.flight.Store(r) }

// FlightRecorder returns the attached flight recorder, or nil.
func (e *Engine) FlightRecorder() *flight.Recorder { return e.flight.Load() }

// Search answers q with the requested algorithm. It validates (and
// normalizes) q first. The context cancels long runs. When a flight
// recorder is attached, every call emits one flight.Record — outcome,
// latency, phase timings and work counters included — and slow queries
// are logged through the recorder.
func (e *Engine) Search(ctx context.Context, q *query.Query, algo Algorithm, opt Options) (*Result, error) {
	fr := e.flight.Load()
	if fr == nil {
		return e.search(ctx, q, algo, opt)
	}
	start := time.Now()
	res, err := e.search(ctx, q, algo, opt)
	rec := flight.Record{
		RequestID: obs.RequestID(ctx),
		ShardID:   e.shardID,
		Start:     start.UnixNano(),
		Variant:   q.Variant.String(),
		M:         int32(q.Example.M()),
		Dims:      int32(e.ds.AttrDim()),
		Pins:      int32(len(q.Example.Fixed)),
		K:         int32(q.Params.K),
		Phases:    opt.Trace.Snapshot(),
	}
	// Span-derived phase timings supersede the flat trace: same names,
	// but parallel overlap is marked instead of silently summed.
	if p := opt.Spans.PhaseTimings(); p != nil {
		rec.Phases = p
	}
	rec.Skew = opt.Spans.Skew()
	if err == nil {
		rec.LatencyNS = int64(res.Elapsed)
		rec.Algorithm = res.Algorithm.String()
		rec.Outcome = flight.OutcomeOK
		rec.Work = res.Stats
		if fr.WouldRetain(res.Elapsed) {
			// Shard engines skip the capture: a shard executes only its
			// slice of the query, so its work counters cannot be matched
			// by the single-engine replay harness. The per-shard span
			// tree is still retained — that is the shard-level forensic.
			if e.shardID == flight.NoShard {
				rec.Capture = CaptureQuery(e.ds, q, res.Algorithm)
			}
			// The tree snapshot allocates; WouldRetain gates it so fast
			// queries never pay for a trace nobody will look at.
			rec.Spans = opt.Spans.Snapshot()
		}
	} else {
		rec.LatencyNS = int64(time.Since(start))
		rec.Algorithm = algo.String()
		if ctx.Err() != nil {
			rec.Outcome = flight.OutcomeTimeout
		} else {
			rec.Outcome = flight.OutcomeError
		}
	}
	fr.ObserveAndLog(&rec)
	return res, err
}

// CaptureQuery encodes a validated query as a replayable flight capture:
// categories by name, pinned objects by dataset ID, parameters as
// normalized — everything `seqbench -exp replay` needs to reconstruct
// and rerun it against a dataset rebuilt from the same provenance.
// Queries with a custom distance metric are not capturable (a metric has
// no canonical encoding) and yield nil.
func CaptureQuery(ds *dataset.Dataset, q *query.Query, algo Algorithm) *flight.Capture {
	if q.Example.Metric != nil {
		return nil
	}
	c := &flight.Capture{
		Variant:   q.Variant.String(),
		Algorithm: algo.String(),
		K:         q.Params.K,
		Alpha:     q.Params.Alpha,
		Beta:      q.Params.Beta,
		GridD:     q.Params.GridD,
		Xi:        q.Params.Xi,
		Dims:      make([]flight.CapturedDim, q.Example.M()),
	}
	if len(q.Example.SkipPairs) > 0 {
		c.SkipPairs = slices.Clone(q.Example.SkipPairs)
	}
	for d := 0; d < q.Example.M(); d++ {
		dim := flight.CapturedDim{
			X:        q.Example.Locations[d].X,
			Y:        q.Example.Locations[d].Y,
			Category: ds.CategoryName(q.Example.Categories[d]),
			Attrs:    slices.Clone(q.Example.Attrs[d]),
		}
		if obj := q.Example.FixedDim(d); obj >= 0 {
			id := ds.Object(int(obj)).ID
			dim.FixedID = &id
		}
		c.Dims[d] = dim
	}
	return c
}

// search is the emission-free engine body Search wraps.
func (e *Engine) search(ctx context.Context, q *query.Query, algo Algorithm, opt Options) (*Result, error) {
	// Start the clock before validation so every traced phase falls
	// inside the Elapsed window (phase sum <= Elapsed on the
	// sequential path).
	start := time.Now()
	root := opt.Spans.Root("search")
	sp := opt.Trace.Start("validate")
	vsp := root.Child("validate")
	verr := q.Validate(e.ds)
	vsp.End()
	sp.End()
	if verr != nil {
		root.End()
		return nil, verr
	}
	algo = Choose(e.ds, q, algo)
	var st *stats.Stats
	if opt.CollectStats {
		st = &stats.Stats{}
		opt.HSP.Stats = st
		opt.LORA.Stats = st
	}
	opt.HSP.Trace = opt.Trace
	opt.LORA.Trace = opt.Trace
	opt.HSP.Span = root
	opt.LORA.Span = root
	var (
		entries []topk.Entry
		err     error
	)
	switch algo {
	case BruteForce:
		sp = opt.Trace.Start("brute.search")
		bsp := root.Child("brute.search")
		entries = brute.Search(e.ds, q)
		bsp.End()
		sp.End()
	case DFSPrune:
		entries, err = dfsprune.SearchObserved(ctx, e.ds, q, st, opt.Trace, root)
	case HSP:
		entries, err = hsp.Search(ctx, e.ds, e.pix, q, opt.HSP)
	case LORA:
		entries, err = lora.Search(ctx, e.ds, e.pix, q, opt.LORA)
	default:
		root.End()
		return nil, fmt.Errorf("core: unsupported algorithm %v", algo)
	}
	root.End()
	if err != nil {
		return nil, err
	}
	res := &Result{Algorithm: algo, Elapsed: time.Since(start), Stats: st.Snapshot()}
	res.Tuples = make([]ResultTuple, len(entries))
	for i, en := range entries {
		res.Tuples[i] = ResultTuple{Positions: en.Tuple, Sim: en.Sim}
	}
	return res, nil
}

// Choose resolves Auto to the concrete algorithm for a validated query:
// the exact HSP while the candidate volume (summed matching-category
// populations) stays small, LORA beyond that. Non-Auto algorithms pass
// through unchanged. Package-level so the sharded coordinator resolves
// once — every shard then runs the same algorithm the single engine
// would have picked.
func Choose(ds *dataset.Dataset, q *query.Query, algo Algorithm) Algorithm {
	if algo != Auto {
		return algo
	}
	var candidates int
	for _, cat := range q.Example.Categories {
		candidates += len(ds.CategoryObjects(cat))
	}
	if candidates > autoHSPLimit {
		return LORA
	}
	return HSP
}

// SnapResult is one nearest-object match for an example-selection click.
type SnapResult struct {
	// Position is the object's dataset position.
	Position int32
	// Dist is the distance from the click to the object.
	Dist float64
}

// Snap returns the k dataset objects nearest to p, optionally restricted
// to one category (pass dataset.NoCategory for no restriction). It backs
// the "example selection" interaction of the paper's Fig. 2: the user
// clicks map positions and the service snaps each click to a real object
// whose category and attributes seed the example.
func (e *Engine) Snap(p geo.Point, cat dataset.CategoryID, k int) []SnapResult {
	var filter func(int32) bool
	if cat != dataset.NoCategory {
		filter = func(ref int32) bool {
			return e.ds.Category(int(ref)) == cat
		}
	}
	nbs := e.pix.Tree().Nearest(p, k, filter)
	out := make([]SnapResult, len(nbs))
	for i, nb := range nbs {
		out[i] = SnapResult{Position: nb.Ref, Dist: nb.Dist}
	}
	return out
}

// Similarities returns the result similarities best-first — the series the
// evaluation harness compares between algorithms.
func (r *Result) Similarities() []float64 {
	out := make([]float64, len(r.Tuples))
	for i, t := range r.Tuples {
		out[i] = t.Sim
	}
	return out
}
