package core

import (
	"context"
	"testing"
)

func TestCollectStats(t *testing.T) {
	eng, q := setup(t, 300)
	ctx := context.Background()

	for _, algo := range []Algorithm{DFSPrune, HSP, LORA} {
		qq := *q
		res, err := eng.Search(ctx, &qq, algo, Options{CollectStats: true})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		st := res.Stats
		if st.Subspaces == 0 {
			t.Errorf("%v: no subspaces counted", algo)
		}
		if st.Candidates == 0 {
			t.Errorf("%v: no candidates counted", algo)
		}
		if len(res.Tuples) > 0 && st.Offered == 0 {
			t.Errorf("%v: results returned but no offers counted", algo)
		}
		if st.Offered > st.Tuples && algo != LORA {
			// every offer stems from a scored tuple
			t.Errorf("%v: offered %d > tuples %d", algo, st.Offered, st.Tuples)
		}
		if algo == LORA {
			if st.CellTuples == 0 {
				t.Errorf("LORA: no cell tuples counted")
			}
			if st.RankPops == 0 && st.CellTuples > 0 {
				// singleton fast paths may bypass the rank graph entirely;
				// with default xi and clustered data at this size, at
				// least some multi-point cells should exist
				t.Logf("LORA: all cell tuples were singletons (rank pops 0)")
			}
		}
	}
}

func TestStatsDisabledByDefault(t *testing.T) {
	eng, q := setup(t, 100)
	res, err := eng.Search(context.Background(), q, HSP, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Subspaces != 0 || res.Stats.Candidates != 0 {
		t.Errorf("stats collected without CollectStats: %+v", res.Stats)
	}
}

func TestStatsParallelConsistency(t *testing.T) {
	eng, q := setup(t, 500)
	ctx := context.Background()

	seqQ := *q
	seqRes, err := eng.Search(ctx, &seqQ, HSP, Options{CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	parQ := *q
	opt := Options{CollectStats: true}
	opt.HSP.Parallelism = 4
	parRes, err := eng.Search(ctx, &parQ, HSP, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Subspace and candidate totals are schedule-independent.
	if seqRes.Stats.Subspaces != parRes.Stats.Subspaces {
		t.Errorf("subspace counts differ: %d vs %d", seqRes.Stats.Subspaces, parRes.Stats.Subspaces)
	}
	if seqRes.Stats.Candidates != parRes.Stats.Candidates {
		t.Errorf("candidate counts differ: %d vs %d", seqRes.Stats.Candidates, parRes.Stats.Candidates)
	}
}
