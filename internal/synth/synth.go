// Package synth generates synthetic POI datasets that stand in for the two
// proprietary corpora of the paper's evaluation:
//
//   - Yelp Open Dataset: 77,444 POIs, 1,395 categories, a small dense urban
//     extent, heavily skewed category sizes, and attribute vectors rich
//     enough that candidate/example attribute similarities saturate near 1.
//   - Gaode POI dump: up to 10,000,000 POIs, 20 categories, a metropolitan
//     extent where hierarchical space partitioning matters.
//
// Both generators place points with a multi-level cluster process (city
// centers -> districts -> blocks) because real POIs co-locate ("many
// restaurants in a shopping mall") and LORA's cell grouping exploits
// exactly that structure. All randomness is driven by an explicit seed so
// datasets are reproducible across runs and machines.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"spatialseq/internal/dataset"
	"spatialseq/internal/geo"
)

// Config controls a synthetic dataset. Use YelpLike / GaodeLike for
// paper-calibrated presets.
type Config struct {
	// Name labels the dataset (used in category names and tooling output).
	Name string
	// N is the number of objects to generate.
	N int
	// Categories is the number of distinct categories.
	Categories int
	// CategorySkew is the Zipf exponent for category sizes; 0 means uniform.
	CategorySkew float64
	// Extent is the side length of the square data space (kilometres).
	Extent float64
	// Centers is the number of top-level population centers.
	Centers int
	// CenterSpread is the std-dev of district offsets around a center, km.
	CenterSpread float64
	// BlockSpread is the std-dev of point offsets inside a block, km.
	BlockSpread float64
	// BlocksPerCenter is the number of block-level clusters per center.
	BlocksPerCenter int
	// UniformFrac is the fraction of points placed uniformly at random,
	// modelling roadside/rural POIs outside any cluster.
	UniformFrac float64
	// AttrDim is the attribute vector length.
	AttrDim int
	// AttrClusterNoise is the per-attribute noise around the category's
	// attribute profile; small values make same-category objects look
	// alike (Yelp-like SIMa saturation), large values spread them out.
	AttrClusterNoise float64
	// AttrMixMin/AttrMixMax control directional attribute diversity: each
	// object's vector is a mix w*categoryProfile + (1-w)*ownDirection with
	// w drawn uniformly from [AttrMixMin, AttrMixMax]. Low mixes spread
	// the attribute cosines the way raw POI attributes (ratings, review
	// counts, sub-categories) do — the spread LORA's query-dependent
	// sampling exploits. Both zero means w = 1 (profile only).
	AttrMixMin, AttrMixMax float64
	// Seed drives all randomness.
	Seed int64
}

// YelpLike returns the Yelp-calibrated preset scaled to n objects.
// n <= 0 selects the full 77,444-object corpus size.
func YelpLike(n int, seed int64) Config {
	if n <= 0 {
		n = 77444
	}
	return Config{
		Name:             "yelp",
		N:                n,
		Categories:       1395,
		CategorySkew:     1.05,
		Extent:           50,
		Centers:          6,
		CenterSpread:     4,
		BlockSpread:      0.25,
		BlocksPerCenter:  60,
		UniformFrac:      0.08,
		AttrDim:          12,
		AttrClusterNoise: 0.04,
		AttrMixMin:       0.75,
		AttrMixMax:       0.98,
		Seed:             seed,
	}
}

// GaodeLike returns the Gaode-calibrated preset scaled to n objects.
// n <= 0 selects a 1,000,000-object corpus (the paper scales to 10M; pass
// that explicitly when the machine budget allows).
func GaodeLike(n int, seed int64) Config {
	if n <= 0 {
		n = 1000000
	}
	return Config{
		Name:             "gaode",
		N:                n,
		Categories:       20,
		CategorySkew:     0.4,
		Extent:           400,
		Centers:          12,
		CenterSpread:     15,
		BlockSpread:      0.6,
		BlocksPerCenter:  120,
		UniformFrac:      0.15,
		AttrDim:          6,
		AttrClusterNoise: 0.12,
		AttrMixMin:       0.25,
		AttrMixMax:       0.9,
		Seed:             seed,
	}
}

// Generate materialises the dataset described by cfg.
func Generate(cfg Config) (*dataset.Dataset, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("synth: N must be positive, got %d", cfg.N)
	}
	if cfg.Categories <= 0 {
		return nil, fmt.Errorf("synth: Categories must be positive, got %d", cfg.Categories)
	}
	if cfg.AttrDim <= 0 {
		return nil, fmt.Errorf("synth: AttrDim must be positive, got %d", cfg.AttrDim)
	}
	if cfg.Extent <= 0 {
		return nil, fmt.Errorf("synth: Extent must be positive, got %g", cfg.Extent)
	}
	if cfg.Centers <= 0 {
		cfg.Centers = 1
	}
	if cfg.BlocksPerCenter <= 0 {
		cfg.BlocksPerCenter = 1
	}
	if cfg.UniformFrac < 0 || cfg.UniformFrac > 1 {
		return nil, fmt.Errorf("synth: UniformFrac must be in [0,1], got %g", cfg.UniformFrac)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	space := geo.Rect{MinX: 0, MinY: 0, MaxX: cfg.Extent, MaxY: cfg.Extent}

	centers := make([]geo.Point, cfg.Centers)
	for i := range centers {
		centers[i] = geo.Point{
			X: cfg.Extent * (0.15 + 0.7*rng.Float64()),
			Y: cfg.Extent * (0.15 + 0.7*rng.Float64()),
		}
	}
	blocks := make([]geo.Point, 0, cfg.Centers*cfg.BlocksPerCenter)
	for _, c := range centers {
		for j := 0; j < cfg.BlocksPerCenter; j++ {
			blocks = append(blocks, clampPoint(geo.Point{
				X: c.X + rng.NormFloat64()*cfg.CenterSpread,
				Y: c.Y + rng.NormFloat64()*cfg.CenterSpread,
			}, space))
		}
	}

	catWeights := zipfWeights(cfg.Categories, cfg.CategorySkew)
	catCum := cumulative(catWeights)
	profiles := categoryProfiles(rng, cfg.Categories, cfg.AttrDim)

	b := &dataset.Builder{}
	for c := 0; c < cfg.Categories; c++ {
		b.Category(fmt.Sprintf("%s-cat-%04d", cfg.Name, c))
	}
	for i := 0; i < cfg.N; i++ {
		cat := pickCumulative(catCum, rng.Float64())
		var loc geo.Point
		if rng.Float64() < cfg.UniformFrac {
			loc = geo.Point{X: cfg.Extent * rng.Float64(), Y: cfg.Extent * rng.Float64()}
		} else {
			blk := blocks[rng.Intn(len(blocks))]
			loc = clampPoint(geo.Point{
				X: blk.X + rng.NormFloat64()*cfg.BlockSpread,
				Y: blk.Y + rng.NormFloat64()*cfg.BlockSpread,
			}, space)
		}
		attr := make([]float64, cfg.AttrDim)
		prof := profiles[cat]
		w := 1.0
		if cfg.AttrMixMax > 0 {
			w = cfg.AttrMixMin + (cfg.AttrMixMax-cfg.AttrMixMin)*rng.Float64()
		}
		for d := 0; d < cfg.AttrDim; d++ {
			own := 0.05 + 0.9*rng.Float64()
			v := w*prof[d] + (1-w)*own + rng.NormFloat64()*cfg.AttrClusterNoise
			if v < 0.01 {
				v = 0.01
			}
			if v > 1 {
				v = 1
			}
			attr[d] = v
		}
		b.Add(dataset.Object{
			ID:       int64(i),
			Loc:      loc,
			Category: dataset.CategoryID(cat),
			Attr:     attr,
			Name:     fmt.Sprintf("%s-poi-%d", cfg.Name, i),
		})
	}
	return b.Build()
}

// MustGenerate is Generate that panics on error; for tests and examples
// with known-good configs.
func MustGenerate(cfg Config) *dataset.Dataset {
	ds, err := Generate(cfg)
	if err != nil {
		//lint:ignore panicfree the documented Must* contract; Generate is the erroring entry point
		panic(err)
	}
	return ds
}

func clampPoint(p geo.Point, r geo.Rect) geo.Point {
	if p.X < r.MinX {
		p.X = r.MinX
	}
	if p.X > r.MaxX {
		p.X = r.MaxX
	}
	if p.Y < r.MinY {
		p.Y = r.MinY
	}
	if p.Y > r.MaxY {
		p.Y = r.MaxY
	}
	return p
}

// zipfWeights returns normalised Zipf(s) weights for n ranks; s = 0 yields
// the uniform distribution.
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

func cumulative(w []float64) []float64 {
	out := make([]float64, len(w))
	var acc float64
	for i, x := range w {
		acc += x
		out[i] = acc
	}
	if n := len(out); n > 0 {
		out[n-1] = 1 // guard against rounding drift
	}
	return out
}

// pickCumulative returns the first index whose cumulative weight reaches u.
func pickCumulative(cum []float64, u float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// categoryProfiles draws one base attribute profile per category. Profiles
// are spread across the positive orthant so different categories (and hence
// differently-profiled examples, as in Fig. 4) disagree in attribute space.
func categoryProfiles(rng *rand.Rand, cats, dim int) [][]float64 {
	out := make([][]float64, cats)
	for c := range out {
		p := make([]float64, dim)
		for d := range p {
			p[d] = 0.05 + 0.9*rng.Float64()
		}
		out[c] = p
	}
	return out
}
