package synth

import (
	"testing"
)

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{N: 0, Categories: 1, AttrDim: 1, Extent: 1},
		{N: 1, Categories: 0, AttrDim: 1, Extent: 1},
		{N: 1, Categories: 1, AttrDim: 0, Extent: 1},
		{N: 1, Categories: 1, AttrDim: 1, Extent: 0},
		{N: 1, Categories: 1, AttrDim: 1, Extent: 1, UniformFrac: 2},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestYelpLikeShape(t *testing.T) {
	ds := MustGenerate(YelpLike(5000, 1))
	if ds.Len() != 5000 {
		t.Fatalf("Len = %d", ds.Len())
	}
	if ds.NumCategories() != 1395 {
		t.Errorf("NumCategories = %d, want 1395", ds.NumCategories())
	}
	if ds.AttrDim() != 12 {
		t.Errorf("AttrDim = %d", ds.AttrDim())
	}
	b := ds.Bounds()
	if b.Width() > 50.0001 || b.Height() > 50.0001 {
		t.Errorf("bounds %v exceed the 50km extent", b)
	}
	// Zipf skew: the largest category should clearly dominate the median.
	sizes := ds.CategorySizes()
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	if maxSize < 20 {
		t.Errorf("largest category only has %d objects; Zipf skew missing", maxSize)
	}
}

func TestGaodeLikeShape(t *testing.T) {
	ds := MustGenerate(GaodeLike(20000, 2))
	if ds.Len() != 20000 {
		t.Fatalf("Len = %d", ds.Len())
	}
	if ds.NumCategories() != 20 {
		t.Errorf("NumCategories = %d, want 20", ds.NumCategories())
	}
	// near-balanced categories: every category populated at this size
	for c, s := range ds.CategorySizes() {
		if s == 0 {
			t.Errorf("category %d empty in a 20k Gaode-like dataset", c)
		}
	}
	if b := ds.Bounds(); b.Width() > 400.0001 {
		t.Errorf("bounds %v exceed the 400km extent", b)
	}
}

func TestDeterminism(t *testing.T) {
	a := MustGenerate(GaodeLike(1000, 77))
	b := MustGenerate(GaodeLike(1000, 77))
	for i := 0; i < a.Len(); i++ {
		oa, ob := a.Object(i), b.Object(i)
		if oa.Loc != ob.Loc || oa.Category != ob.Category {
			t.Fatalf("object %d differs across same-seed generations", i)
		}
		for j := range oa.Attr {
			if oa.Attr[j] != ob.Attr[j] {
				t.Fatalf("object %d attr %d differs", i, j)
			}
		}
	}
	c := MustGenerate(GaodeLike(1000, 78))
	same := true
	for i := 0; i < a.Len() && same; i++ {
		if a.Object(i).Loc != c.Object(i).Loc {
			same = false
		}
	}
	if same {
		t.Error("different seeds should produce different datasets")
	}
}

func TestAttributesInRange(t *testing.T) {
	ds := MustGenerate(GaodeLike(2000, 3))
	for i := 0; i < ds.Len(); i++ {
		for _, a := range ds.Object(i).Attr {
			if a < 0 || a > 1 {
				t.Fatalf("object %d attribute %g outside [0,1]", i, a)
			}
		}
	}
}

func TestClusteringPresent(t *testing.T) {
	// The cluster process should concentrate points: a grid over the
	// extent must contain some cells far denser than the uniform share.
	ds := MustGenerate(GaodeLike(20000, 4))
	const cells = 20
	counts := make([]int, cells*cells)
	b := ds.Bounds()
	for i := 0; i < ds.Len(); i++ {
		p := ds.Object(i).Loc
		cx := int((p.X - b.MinX) / b.Width() * cells)
		cy := int((p.Y - b.MinY) / b.Height() * cells)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		counts[cy*cells+cx]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	uniformShare := ds.Len() / (cells * cells)
	if maxCount < 4*uniformShare {
		t.Errorf("densest cell %d is not clearly denser than uniform share %d; clustering too weak", maxCount, uniformShare)
	}
}
