// Package partition implements the hierarchical space partitioning scheme
// of HSP and LORA (paper Section III-A).
//
// The data space is split recursively from the middle of the horizontal and
// vertical dimensions, alternating per level, until a subspace is empty or
// its diagonal is smaller than the query radius beta*||V_t*||. Non-empty
// leaves are the *core subspaces*: disjoint, jointly covering every point.
// Each core subspace is surrounded by a band-shaped *auxiliary subspace* of
// width beta*||V_t*||; the union (the *ac-subspace*) is guaranteed to
// contain every CSEQ-valid tuple whose first point lies in the core
// (no valid tuple has two points farther apart than beta*||V_t*||).
//
// Lemma 1 discipline: algorithms enumerate a tuple only inside the
// ac-subspace whose core contains the tuple's first point, so every
// candidate is enumerated exactly once across all subspaces.
package partition

import (
	"fmt"
	"math"

	"spatialseq/internal/geo"
	"spatialseq/internal/rtree"
)

// Subspace is one core subspace plus its surrounding auxiliary band.
type Subspace struct {
	// Core is the core subspace rectangle. Cores of different Subspaces
	// are disjoint and their union covers the data bounds.
	Core geo.Rect
	// AC is the ac-subspace: Core inflated by the band width, clipped to
	// the data bounds (points only exist inside the bounds, so clipping
	// loses no candidates).
	AC geo.Rect
	// CorePoints are dataset positions of points inside Core.
	CorePoints []int32
	// ACPoints are dataset positions of points inside AC (a superset of
	// CorePoints).
	ACPoints []int32
}

// Partition is the result of partitioning one dataset for one query radius.
type Partition struct {
	Subspaces []Subspace
	// Radius is the band width / diagonal threshold beta*||V_t*|| used.
	Radius float64
	// Bounds is the partitioned data space.
	Bounds geo.Rect
}

// Index wraps the per-dataset immutable state needed to partition: the
// point locations and an R-tree over them. Build it once per dataset and
// reuse it across queries (the partition itself depends on the query
// radius, the index does not).
type Index struct {
	pts   []geo.Point
	tree  *rtree.Tree
	cache partitionCache
}

// NewIndex builds the partitioning index over the given point locations.
// pts[i] must be the location of dataset object i.
func NewIndex(pts []geo.Point) *Index {
	return &Index{pts: pts, tree: rtree.New(pts, nil)}
}

// NumPoints returns the number of indexed points.
func (ix *Index) NumPoints() int { return len(ix.pts) }

// Bounds returns the bounding rectangle of the indexed points.
func (ix *Index) Bounds() geo.Rect { return ix.tree.Bounds() }

// Tree exposes the underlying R-tree for callers that need raw range
// queries (e.g. CSEQ-FP subspace filtering).
func (ix *Index) Tree() *rtree.Tree { return ix.tree }

// Partition divides the data space for the query radius
// radius = beta*||V_t*||. With radius = +Inf (the SEQ relaxation) the whole
// space is a single core subspace with an empty auxiliary band. A zero or
// negative radius is rejected: it would admit no tuple with two distinct
// locations, and the split recursion below would not terminate.
func (ix *Index) Partition(radius float64) (*Partition, error) {
	if len(ix.pts) == 0 {
		return &Partition{Radius: radius, Bounds: geo.EmptyRect()}, nil
	}
	if math.IsNaN(radius) || radius <= 0 {
		return nil, fmt.Errorf("partition: radius must be positive, got %g", radius)
	}
	bounds := ix.tree.Bounds()
	p := &Partition{Radius: radius, Bounds: bounds}
	if math.IsInf(radius, 1) {
		all := ix.tree.Search(bounds, nil)
		p.Subspaces = []Subspace{{
			Core:       bounds,
			AC:         bounds,
			CorePoints: all,
			ACPoints:   all,
		}}
		return p, nil
	}
	// The split recursion redistributes this positions array in place, so
	// each leaf's CorePoints slice is a view into it: one O(n) allocation
	// per query instead of one R-tree range query per core subspace.
	positions := make([]int32, len(ix.pts))
	for i := range positions {
		positions[i] = int32(i)
	}
	ix.split(positions, bounds, 0, radius, p)
	return p, nil
}

// split recursively divides rect, alternating the split axis per level,
// collecting non-empty leaves whose diagonal is below the radius.
// positions must hold exactly the points inside rect and is reordered in
// place so each half receives a contiguous sub-slice.
func (ix *Index) split(positions []int32, rect geo.Rect, level int, radius float64, p *Partition) {
	if len(positions) == 0 {
		return
	}
	if rect.Diagonal() < radius || degenerate(rect) {
		ac := rect.Inflate(radius).Intersect(p.Bounds)
		p.Subspaces = append(p.Subspaces, Subspace{
			Core:       rect,
			AC:         ac,
			CorePoints: positions,
			ACPoints:   ix.tree.Search(ac, nil),
		})
		return
	}
	var left, right geo.Rect
	var inLeft func(geo.Point) bool
	if level%2 == 0 { // split the horizontal dimension (vertical cut line)
		mid := (rect.MinX + rect.MaxX) / 2
		left = geo.Rect{MinX: rect.MinX, MinY: rect.MinY, MaxX: mid, MaxY: rect.MaxY}
		right = geo.Rect{MinX: math.Nextafter(mid, math.Inf(1)), MinY: rect.MinY, MaxX: rect.MaxX, MaxY: rect.MaxY}
		inLeft = func(pt geo.Point) bool { return pt.X <= mid }
	} else { // split the vertical dimension (horizontal cut line)
		mid := (rect.MinY + rect.MaxY) / 2
		left = geo.Rect{MinX: rect.MinX, MinY: rect.MinY, MaxX: rect.MaxX, MaxY: mid}
		right = geo.Rect{MinX: rect.MinX, MinY: math.Nextafter(mid, math.Inf(1)), MaxX: rect.MaxX, MaxY: rect.MaxY}
		inLeft = func(pt geo.Point) bool { return pt.Y <= mid }
	}
	// Hoare-style partition of positions by side of the cut line.
	lo, hi := 0, len(positions)
	for lo < hi {
		if inLeft(ix.pts[positions[lo]]) {
			lo++
		} else {
			hi--
			positions[lo], positions[hi] = positions[hi], positions[lo]
		}
	}
	ix.split(positions[:lo], left, level+1, radius, p)
	ix.split(positions[lo:], right, level+1, radius, p)
}

// degenerate guards against rectangles too small to split further (all
// points coincide, or floating-point midpoints stopped making progress)
// whose diagonal still exceeds the radius only in pathological inputs.
func degenerate(rect geo.Rect) bool {
	midX := (rect.MinX + rect.MaxX) / 2
	midY := (rect.MinY + rect.MaxY) / 2
	return (midX <= rect.MinX || midX >= rect.MaxX) && (midY <= rect.MinY || midY >= rect.MaxY)
}

// CoreOf returns the index of the subspace whose core contains p, or -1.
// Cores are disjoint so at most one matches.
func (p *Partition) CoreOf(pt geo.Point) int {
	for i := range p.Subspaces {
		if p.Subspaces[i].Core.Contains(pt) {
			return i
		}
	}
	return -1
}

// Stats summarises a partition for diagnostics and tests.
type Stats struct {
	NumSubspaces int
	MaxCoreDiag  float64
	TotalCorePts int
	TotalACPts   int // counts multiplicity across overlapping bands
	MaxACPoints  int
}

// Stats computes summary statistics.
func (p *Partition) Stats() Stats {
	s := Stats{NumSubspaces: len(p.Subspaces)}
	for i := range p.Subspaces {
		ss := &p.Subspaces[i]
		if d := ss.Core.Diagonal(); d > s.MaxCoreDiag {
			s.MaxCoreDiag = d
		}
		s.TotalCorePts += len(ss.CorePoints)
		s.TotalACPts += len(ss.ACPoints)
		if len(ss.ACPoints) > s.MaxACPoints {
			s.MaxACPoints = len(ss.ACPoints)
		}
	}
	return s
}
