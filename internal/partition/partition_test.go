package partition

import (
	"math"
	"math/rand"
	"testing"

	"spatialseq/internal/geo"
)

func randPoints(rng *rand.Rand, n int, extent float64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	}
	return pts
}

func TestEmptyIndex(t *testing.T) {
	ix := NewIndex(nil)
	p, err := ix.Partition(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Subspaces) != 0 {
		t.Errorf("empty index produced %d subspaces", len(p.Subspaces))
	}
}

func TestInvalidRadius(t *testing.T) {
	ix := NewIndex([]geo.Point{{X: 1, Y: 1}})
	for _, r := range []float64{0, -1, math.NaN()} {
		if _, err := ix.Partition(r); err == nil {
			t.Errorf("radius %g should be rejected", r)
		}
	}
}

func TestInfiniteRadiusSingleSubspace(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randPoints(rng, 100, 50)
	ix := NewIndex(pts)
	p, err := ix.Partition(math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Subspaces) != 1 {
		t.Fatalf("got %d subspaces, want 1", len(p.Subspaces))
	}
	ss := p.Subspaces[0]
	if len(ss.CorePoints) != 100 || len(ss.ACPoints) != 100 {
		t.Errorf("core/ac points = %d/%d, want 100/100", len(ss.CorePoints), len(ss.ACPoints))
	}
	if ss.Core != ix.Bounds() || ss.AC != ix.Bounds() {
		t.Error("infinite radius must cover whole bounds")
	}
}

func TestCoresDisjointAndCovering(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 10, 500, 3000} {
		pts := randPoints(rng, n, 100)
		ix := NewIndex(pts)
		for _, radius := range []float64{5, 20, 80, 300} {
			p, err := ix.Partition(radius)
			if err != nil {
				t.Fatal(err)
			}
			// every point in exactly one core
			counts := make([]int, n)
			for _, ss := range p.Subspaces {
				for _, pos := range ss.CorePoints {
					counts[pos]++
				}
			}
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("n=%d radius=%g: point %d in %d cores, want 1", n, radius, i, c)
				}
			}
			// CoreOf agrees with membership
			for i, pt := range pts {
				si := p.CoreOf(pt)
				if si < 0 {
					t.Fatalf("point %d in no core rect", i)
				}
				found := false
				for _, pos := range p.Subspaces[si].CorePoints {
					if int(pos) == i {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("point %d not listed in its core subspace", i)
				}
			}
		}
	}
}

func TestCoreDiagonalBelowRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPoints(rng, 2000, 100)
	ix := NewIndex(pts)
	radius := 12.0
	p, err := ix.Partition(radius)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Subspaces) < 2 {
		t.Fatalf("expected multiple subspaces, got %d", len(p.Subspaces))
	}
	for i, ss := range p.Subspaces {
		if d := ss.Core.Diagonal(); d >= radius {
			t.Errorf("subspace %d core diagonal %g >= radius %g", i, d, radius)
		}
	}
}

func TestACBandContainsNeighbors(t *testing.T) {
	// Every point within `radius` of a core point must be in the
	// ac-subspace point list — that is the property guaranteeing no valid
	// tuple is missed.
	rng := rand.New(rand.NewSource(4))
	pts := randPoints(rng, 800, 60)
	ix := NewIndex(pts)
	radius := 7.5
	p, err := ix.Partition(radius)
	if err != nil {
		t.Fatal(err)
	}
	for si := range p.Subspaces {
		ss := &p.Subspaces[si]
		inAC := make(map[int32]bool, len(ss.ACPoints))
		for _, pos := range ss.ACPoints {
			inAC[pos] = true
		}
		for _, cp := range ss.CorePoints {
			if !inAC[cp] {
				t.Fatalf("core point %d missing from its ac-subspace", cp)
			}
			for j, q := range pts {
				if pts[cp].Dist(q) <= radius && !inAC[int32(j)] {
					t.Fatalf("point %d within radius of core point %d but outside ac-subspace", j, cp)
				}
			}
		}
	}
}

func TestACWithinBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randPoints(rng, 300, 40)
	ix := NewIndex(pts)
	p, err := ix.Partition(6)
	if err != nil {
		t.Fatal(err)
	}
	for _, ss := range p.Subspaces {
		if !p.Bounds.ContainsRect(ss.AC) {
			t.Errorf("ac-subspace %v exceeds bounds %v", ss.AC, p.Bounds)
		}
		if !ss.AC.ContainsRect(ss.Core) {
			t.Errorf("ac %v does not contain core %v", ss.AC, ss.Core)
		}
	}
}

func TestAllPointsCoincide(t *testing.T) {
	pts := make([]geo.Point, 20)
	for i := range pts {
		pts[i] = geo.Point{X: 5, Y: 5}
	}
	ix := NewIndex(pts)
	p, err := ix.Partition(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Subspaces) != 1 {
		t.Fatalf("coincident points should form 1 subspace, got %d", len(p.Subspaces))
	}
	if len(p.Subspaces[0].CorePoints) != 20 {
		t.Errorf("core points = %d", len(p.Subspaces[0].CorePoints))
	}
}

func TestStats(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := randPoints(rng, 400, 50)
	ix := NewIndex(pts)
	p, err := ix.Partition(8)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.NumSubspaces != len(p.Subspaces) {
		t.Errorf("NumSubspaces = %d", st.NumSubspaces)
	}
	if st.TotalCorePts != 400 {
		t.Errorf("TotalCorePts = %d, want 400", st.TotalCorePts)
	}
	if st.TotalACPts < 400 {
		t.Errorf("TotalACPts = %d, must be >= core total", st.TotalACPts)
	}
	if st.MaxCoreDiag >= 8 {
		t.Errorf("MaxCoreDiag = %g, must be < radius", st.MaxCoreDiag)
	}
}

func TestPartitionCountGrowsAsRadiusShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randPoints(rng, 1000, 100)
	ix := NewIndex(pts)
	var prev int
	for i, radius := range []float64{100, 25, 6} {
		p, err := ix.Partition(radius)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && len(p.Subspaces) < prev {
			t.Errorf("subspace count decreased when radius shrank: %d -> %d", prev, len(p.Subspaces))
		}
		prev = len(p.Subspaces)
	}
}
