package partition

import (
	"math"
	"sync"
)

// Partition results are immutable and depend only on the radius, so
// queries with similar radii can share one. PartitionBucketed rounds the
// requested radius UP to the next bucket boundary (powers of
// bucketFactor) and caches the partition per bucket. A larger radius is
// always safe: core subspaces stop splitting earlier (still below the
// widened diagonal bound) and auxiliary bands grow wider, so the
// containment guarantee — every candidate tuple lies inside the
// ac-subspace owning its first point — continues to hold. Exact
// algorithms stay exact; LORA's cells become up to bucketFactor coarser,
// which its accuracy already has to tolerate across the D sweep.

// bucketFactor is the radius quantization step (each bucket covers
// [r, r*1.25)).
const bucketFactor = 1.25

// cacheCap bounds the per-index partition cache.
const cacheCap = 16

type partitionCache struct {
	mu      sync.Mutex
	entries map[float64]*Partition
	order   []float64 // LRU, oldest first
}

// PartitionBucketed returns a (possibly shared) partition whose radius is
// the requested radius rounded up to a bucket boundary. Rules for radius
// validity match Partition.
func (ix *Index) PartitionBucketed(radius float64) (*Partition, error) {
	if math.IsInf(radius, 1) || math.IsNaN(radius) || radius <= 0 {
		// +Inf is itself a bucket; invalid values fall through to
		// Partition for uniform error handling.
		return ix.cachedPartition(radius)
	}
	bucket := math.Pow(bucketFactor, math.Ceil(math.Log(radius)/math.Log(bucketFactor)))
	if bucket < radius { // floating-point guard
		bucket *= bucketFactor
	}
	return ix.cachedPartition(bucket)
}

func (ix *Index) cachedPartition(radius float64) (*Partition, error) {
	ix.cache.mu.Lock()
	if ix.cache.entries == nil {
		ix.cache.entries = make(map[float64]*Partition)
	}
	if p, ok := ix.cache.entries[radius]; ok {
		ix.cache.touch(radius)
		ix.cache.mu.Unlock()
		return p, nil
	}
	ix.cache.mu.Unlock()

	p, err := ix.Partition(radius) // build outside the lock
	if err != nil {
		return nil, err
	}

	ix.cache.mu.Lock()
	defer ix.cache.mu.Unlock()
	if existing, ok := ix.cache.entries[radius]; ok {
		return existing, nil // another goroutine won the race
	}
	if len(ix.cache.order) >= cacheCap {
		oldest := ix.cache.order[0]
		ix.cache.order = ix.cache.order[1:]
		delete(ix.cache.entries, oldest)
	}
	ix.cache.entries[radius] = p
	ix.cache.order = append(ix.cache.order, radius)
	return p, nil
}

func (c *partitionCache) touch(radius float64) {
	for i, r := range c.order {
		//lint:ignore floatcmp cache keys match on exact radius identity, not proximity
		if r == radius {
			copy(c.order[i:], c.order[i+1:])
			c.order[len(c.order)-1] = radius
			return
		}
	}
}

// CacheLen reports the number of cached partitions (for tests).
func (ix *Index) CacheLen() int {
	ix.cache.mu.Lock()
	defer ix.cache.mu.Unlock()
	return len(ix.cache.entries)
}
