package partition

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestBucketedRoundsUp(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := randPoints(rng, 300, 100)
	ix := NewIndex(pts)
	for _, radius := range []float64{0.5, 3, 7.7, 42, 99} {
		p, err := ix.PartitionBucketed(radius)
		if err != nil {
			t.Fatal(err)
		}
		if p.Radius < radius {
			t.Errorf("bucketed radius %g < requested %g", p.Radius, radius)
		}
		if p.Radius > radius*bucketFactor*1.0001 {
			t.Errorf("bucketed radius %g over-rounds requested %g", p.Radius, radius)
		}
		// containment invariants still hold with the widened radius
		for _, ss := range p.Subspaces {
			if ss.Core.Diagonal() >= p.Radius {
				t.Errorf("core diagonal %g >= bucketed radius %g", ss.Core.Diagonal(), p.Radius)
			}
		}
	}
}

func TestBucketedSharesAcrossSimilarRadii(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	pts := randPoints(rng, 500, 100)
	ix := NewIndex(pts)
	a, err := ix.PartitionBucketed(10.0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ix.PartitionBucketed(10.5) // same 1.25^k bucket as 10.0? round up both
	if err != nil {
		t.Fatal(err)
	}
	if a.Radius == b.Radius && a != b {
		t.Error("equal buckets must share a partition instance")
	}
	c, err := ix.PartitionBucketed(10.0)
	if err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Error("repeated radius must hit the cache")
	}
	if ix.CacheLen() == 0 {
		t.Error("cache should hold entries")
	}
}

func TestBucketedInfiniteRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	pts := randPoints(rng, 100, 50)
	ix := NewIndex(pts)
	a, err := ix.PartitionBucketed(math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ix.PartitionBucketed(math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("infinite radius should cache as one bucket")
	}
	if len(a.Subspaces) != 1 {
		t.Errorf("infinite radius subspaces = %d", len(a.Subspaces))
	}
}

func TestBucketedInvalidRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	ix := NewIndex(randPoints(rng, 10, 10))
	for _, r := range []float64{0, -3, math.NaN()} {
		if _, err := ix.PartitionBucketed(r); err == nil {
			t.Errorf("radius %g should be rejected", r)
		}
	}
}

func TestBucketedEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	pts := randPoints(rng, 100, 100)
	ix := NewIndex(pts)
	for i := 0; i < cacheCap*3; i++ {
		radius := math.Pow(bucketFactor, float64(i+1))
		if _, err := ix.PartitionBucketed(radius); err != nil {
			t.Fatal(err)
		}
	}
	if got := ix.CacheLen(); got > cacheCap {
		t.Errorf("cache grew to %d, cap %d", got, cacheCap)
	}
}

func TestBucketedConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	pts := randPoints(rng, 1000, 100)
	ix := NewIndex(pts)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				radius := 5.0 + float64((w+i)%4)*10
				if _, err := ix.PartitionBucketed(radius); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
