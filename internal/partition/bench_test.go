package partition

import (
	"math/rand"
	"testing"
)

// BenchmarkPartition measures the per-query cost of the hierarchical
// split, which every HSP/LORA query pays.
func BenchmarkPartition(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{10000, 100000} {
		pts := randPoints(rng, n, 400)
		ix := NewIndex(pts)
		for _, radius := range []float64{10, 40} {
			b.Run(benchName(n, radius), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := ix.Partition(radius); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func benchName(n int, radius float64) string {
	switch {
	case n == 10000 && radius == 10:
		return "n=10k/r=10"
	case n == 10000:
		return "n=10k/r=40"
	case radius == 10:
		return "n=100k/r=10"
	default:
		return "n=100k/r=40"
	}
}
