// Package userstudy is the substitute for the paper's Section IV-C human
// survey, which cannot be reproduced computationally (13 graduate students
// answering 4 scenario questions). It implements a deterministic response
// model that synthesises per-participant records whose aggregates land on
// the paper's reported marginals:
//
//   - 61.63% of interface evaluations preferred the example-based search,
//     38.38% the filtering-based search;
//   - among participants who preferred filtering, 83.6% would like an
//     interface serving both.
//
// The simulator exists so the analysis pipeline (aggregation, quote
// sampling, reporting) is real, runnable code; it is explicitly a
// simulation and adds no new human evidence. See DESIGN.md §5.
package userstudy

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
)

// Paper-reported marginals the response model is calibrated to.
const (
	// PreferExampleRate is the fraction of evaluations preferring the
	// example-based interface.
	PreferExampleRate = 0.6163
	// FilterWantBothRate is the fraction of filter-preferring evaluations
	// that would adopt a combined interface.
	FilterWantBothRate = 0.836
	// NumParticipants matches the paper's recruited cohort (8 male, 5 female).
	NumParticipants = 13
	// NumQuestions matches the paper's 4 scenario questions.
	NumQuestions = 4
)

// Participant is one synthetic respondent.
type Participant struct {
	ID     int
	Gender string // "M" or "F", matching the paper's 8/5 split
}

// Response is one (participant, question) evaluation.
type Response struct {
	Participant    int
	Question       int
	PrefersExample bool
	// WantsBoth is only meaningful when PrefersExample is false: whether a
	// filtering-preferring respondent would adopt a combined interface.
	WantsBoth bool
	Reason    string
}

// Survey is a complete synthetic study.
type Survey struct {
	Participants []Participant
	Responses    []Response
}

// Representative free-text reasons, quoted from the paper's qualitative
// response section.
var (
	exampleReasons = []string{
		"Because I have multiple constraints across many objects.",
		"It is more convenient to compare the different candidates among the map with everything I care about visible.",
		"The filtering takes more time for me.",
		"One just needs to do some clicks on the screen.",
	}
	filterReasons = []string{
		"The first priority is to cut the budget.",
		"I might also have preferences over breakfast and daycare.",
		"Through filtering I can find more specific information.",
	}
)

// Simulate synthesises a survey. The seed only permutes which participants
// and questions carry which preference; the aggregate counts are fixed by
// the calibration so every seed reproduces the paper's marginals as
// closely as the 52-evaluation grid allows.
func Simulate(seed int64) *Survey {
	rng := rand.New(rand.NewSource(seed))
	s := &Survey{}
	for i := 0; i < NumParticipants; i++ {
		g := "M"
		if i >= 8 {
			g = "F"
		}
		s.Participants = append(s.Participants, Participant{ID: i, Gender: g})
	}
	total := NumParticipants * NumQuestions
	nExample := int(PreferExampleRate*float64(total) + 0.5) // 32 of 52 -> 61.5%
	nFilter := total - nExample
	nWantBoth := int(FilterWantBothRate*float64(nFilter) + 0.5)

	// Lay out preference labels then shuffle them over the grid.
	labels := make([]bool, total)
	for i := 0; i < nExample; i++ {
		labels[i] = true
	}
	rng.Shuffle(total, func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })

	wantBoth := make([]bool, nFilter)
	for i := 0; i < nWantBoth; i++ {
		wantBoth[i] = true
	}
	rng.Shuffle(nFilter, func(i, j int) { wantBoth[i], wantBoth[j] = wantBoth[j], wantBoth[i] })

	fi := 0
	for p := 0; p < NumParticipants; p++ {
		for q := 0; q < NumQuestions; q++ {
			idx := p*NumQuestions + q
			r := Response{Participant: p, Question: q, PrefersExample: labels[idx]}
			if r.PrefersExample {
				r.Reason = exampleReasons[rng.Intn(len(exampleReasons))]
			} else {
				r.WantsBoth = wantBoth[fi]
				fi++
				r.Reason = filterReasons[rng.Intn(len(filterReasons))]
			}
			s.Responses = append(s.Responses, r)
		}
	}
	return s
}

// Aggregates are the summary statistics the paper reports.
type Aggregates struct {
	Total             int
	PreferExample     int
	PreferFilter      int
	FilterWantBoth    int
	PctExample        float64
	PctFilter         float64
	PctFilterWantBoth float64
}

// Aggregate computes the summary statistics over the survey.
func (s *Survey) Aggregate() Aggregates {
	a := Aggregates{Total: len(s.Responses)}
	for _, r := range s.Responses {
		if r.PrefersExample {
			a.PreferExample++
		} else {
			a.PreferFilter++
			if r.WantsBoth {
				a.FilterWantBoth++
			}
		}
	}
	if a.Total > 0 {
		a.PctExample = 100 * float64(a.PreferExample) / float64(a.Total)
		a.PctFilter = 100 * float64(a.PreferFilter) / float64(a.Total)
	}
	if a.PreferFilter > 0 {
		a.PctFilterWantBoth = 100 * float64(a.FilterWantBoth) / float64(a.PreferFilter)
	}
	return a
}

// Report writes the study summary in the shape of Section IV-C. The
// first write error is latched and returned after the report.
func (s *Survey) Report(w io.Writer) error {
	a := s.Aggregate()
	var err error
	printf := func(w io.Writer, format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	printf(w, "User study (SIMULATED respondents — see DESIGN.md §5)\n")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	printf(tw, "participants\t%d (8 male, 5 female)\n", len(s.Participants))
	printf(tw, "evaluations\t%d (%d questions each)\n", a.Total, NumQuestions)
	printf(tw, "prefer example-based\t%d (%.2f%%; paper: 61.63%%)\n", a.PreferExample, a.PctExample)
	printf(tw, "prefer filtering\t%d (%.2f%%; paper: 38.38%%)\n", a.PreferFilter, a.PctFilter)
	printf(tw, "filter-preferrers wanting both\t%d (%.2f%%; paper: 83.6%%)\n", a.FilterWantBoth, a.PctFilterWantBoth)
	if err == nil {
		err = tw.Flush()
	}
	if err != nil {
		return err
	}
	printf(w, "representative reasons (quoted from the paper):\n")
	seen := map[string]bool{}
	for _, r := range s.Responses {
		if seen[r.Reason] {
			continue
		}
		seen[r.Reason] = true
		side := "example"
		if !r.PrefersExample {
			side = "filter"
		}
		printf(w, "  [%s] %q\n", side, r.Reason)
	}
	return err
}
