package userstudy

import (
	"math"
	"strings"
	"testing"
)

func TestSimulateShape(t *testing.T) {
	s := Simulate(1)
	if len(s.Participants) != NumParticipants {
		t.Fatalf("participants = %d", len(s.Participants))
	}
	males, females := 0, 0
	for _, p := range s.Participants {
		switch p.Gender {
		case "M":
			males++
		case "F":
			females++
		default:
			t.Fatalf("unexpected gender %q", p.Gender)
		}
	}
	if males != 8 || females != 5 {
		t.Errorf("gender split %d/%d, want 8/5", males, females)
	}
	if len(s.Responses) != NumParticipants*NumQuestions {
		t.Errorf("responses = %d", len(s.Responses))
	}
	for _, r := range s.Responses {
		if r.Reason == "" {
			t.Error("every response needs a reason")
		}
		if r.PrefersExample && r.WantsBoth {
			t.Error("WantsBoth only applies to filter-preferring responses")
		}
	}
}

func TestAggregatesMatchPaperMarginals(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		a := Simulate(seed).Aggregate()
		// 52 evaluations cannot hit 61.63% exactly; the closest integer
		// split must land within one grid step (1/52 ≈ 1.9%).
		if math.Abs(a.PctExample-61.63) > 2 {
			t.Errorf("seed %d: PctExample = %.2f, want ≈61.63", seed, a.PctExample)
		}
		if math.Abs(a.PctFilterWantBoth-83.6) > 5 {
			t.Errorf("seed %d: PctFilterWantBoth = %.2f, want ≈83.6", seed, a.PctFilterWantBoth)
		}
		if a.PreferExample+a.PreferFilter != a.Total {
			t.Error("preferences must partition the evaluations")
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Simulate(7)
	b := Simulate(7)
	for i := range a.Responses {
		if a.Responses[i] != b.Responses[i] {
			t.Fatal("same seed must reproduce the same survey")
		}
	}
}

func TestReport(t *testing.T) {
	var sb strings.Builder
	if err := Simulate(3).Report(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"SIMULATED", "prefer example-based", "83.6%", "representative reasons"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
