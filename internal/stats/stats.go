// Package stats defines the per-search counters the algorithms expose for
// observability: how many subspaces a query touched, how many candidate
// tuples were scored versus pruned, how much work the cell and point
// enumeration phases did. The counters explain *why* a query was fast or
// slow — the companion to the wall-clock numbers the evaluation reports.
//
// Counters use atomics so parallel subspace workers can share one Stats.
package stats

import "sync/atomic"

// Stats collects per-search counters. The zero value is ready to use; nil
// receivers are safe no-ops so the hot paths stay branch-cheap when
// statistics are disabled.
type Stats struct {
	// Subspaces is the number of ac-subspaces searched (after skips).
	Subspaces atomic.Int64
	// SubspacesSkipped counts subspaces skipped before any enumeration
	// (missing category, pinned point elsewhere).
	SubspacesSkipped atomic.Int64
	// Candidates is the number of candidate points considered across all
	// dimension lists.
	Candidates atomic.Int64
	// PrunedPrefixes counts prefixes cut by an upper bound.
	PrunedPrefixes atomic.Int64
	// Tuples is the number of complete tuples scored (norm-checked).
	Tuples atomic.Int64
	// Offered is the number of tuples offered to the top-k.
	Offered atomic.Int64
	// CellTuples is the number of complete cell tuples LORA examined.
	CellTuples atomic.Int64
	// PrunedCellPrefixes counts cell prefixes cut by the cell bound.
	PrunedCellPrefixes atomic.Int64
	// RankPops is the number of rank-graph combinations popped.
	RankPops atomic.Int64
	// SampledOut is the number of candidate points discarded by
	// query-dependent sampling.
	SampledOut atomic.Int64
	// AttrSimMemoHits counts attribute-similarity lookups served from the
	// query-scoped memo table (cosines *not* recomputed).
	AttrSimMemoHits atomic.Int64
	// AttrSimMemoMisses counts attribute cosines actually computed while
	// the memo was enabled (lazy fills plus eager precompute).
	AttrSimMemoMisses atomic.Int64
	// SubspaceCandidatesMax tracks the largest per-subspace candidate
	// volume of the query — a max, not a sum: it measures how lopsided
	// the subspace decomposition was, the load-skew signal behind the
	// span tracer's straggler attribution. Data-determined (independent
	// of worker scheduling), so replay equality holds under parallelism.
	SubspaceCandidatesMax atomic.Int64
}

// nil-safe increment helpers; algorithms call these unconditionally.

// AddSubspaces increments the searched-subspace counter.
func (s *Stats) AddSubspaces(n int64) {
	if s != nil {
		s.Subspaces.Add(n)
	}
}

// AddSubspacesSkipped increments the skipped-subspace counter.
func (s *Stats) AddSubspacesSkipped(n int64) {
	if s != nil {
		s.SubspacesSkipped.Add(n)
	}
}

// AddCandidates increments the candidate-point counter.
func (s *Stats) AddCandidates(n int64) {
	if s != nil {
		s.Candidates.Add(n)
	}
}

// AddPrunedPrefixes increments the pruned-prefix counter.
func (s *Stats) AddPrunedPrefixes(n int64) {
	if s != nil {
		s.PrunedPrefixes.Add(n)
	}
}

// AddTuples increments the scored-tuple counter.
func (s *Stats) AddTuples(n int64) {
	if s != nil {
		s.Tuples.Add(n)
	}
}

// AddOffered increments the offered-tuple counter.
func (s *Stats) AddOffered(n int64) {
	if s != nil {
		s.Offered.Add(n)
	}
}

// AddCellTuples increments the examined-cell-tuple counter.
func (s *Stats) AddCellTuples(n int64) {
	if s != nil {
		s.CellTuples.Add(n)
	}
}

// AddPrunedCellPrefixes increments the pruned-cell-prefix counter.
func (s *Stats) AddPrunedCellPrefixes(n int64) {
	if s != nil {
		s.PrunedCellPrefixes.Add(n)
	}
}

// AddRankPops increments the rank-graph pop counter.
func (s *Stats) AddRankPops(n int64) {
	if s != nil {
		s.RankPops.Add(n)
	}
}

// AddSampledOut increments the sampled-out counter.
func (s *Stats) AddSampledOut(n int64) {
	if s != nil {
		s.SampledOut.Add(n)
	}
}

// AddAttrSimMemoHits increments the memo-hit counter.
func (s *Stats) AddAttrSimMemoHits(n int64) {
	if s != nil {
		s.AttrSimMemoHits.Add(n)
	}
}

// AddAttrSimMemoMisses increments the memo-miss counter.
func (s *Stats) AddAttrSimMemoMisses(n int64) {
	if s != nil {
		s.AttrSimMemoMisses.Add(n)
	}
}

// RaiseSubspaceCandidates raises the per-subspace candidate maximum to
// n if n exceeds the current value (CAS loop: parallel subspace workers
// race to publish their totals).
func (s *Stats) RaiseSubspaceCandidates(n int64) {
	if s == nil {
		return
	}
	for {
		cur := s.SubspaceCandidatesMax.Load()
		if n <= cur || s.SubspaceCandidatesMax.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Snapshot is a plain-value copy for reporting. The JSON tags are the
// wire names the search API uses; Each exposes the same names to the
// server's cumulative work metrics, so evaluation counters and
// production metrics share one set of definitions.
type Snapshot struct {
	Subspaces          int64 `json:"subspaces"`
	SubspacesSkipped   int64 `json:"subspaces_skipped"`
	Candidates         int64 `json:"candidates"`
	PrunedPrefixes     int64 `json:"pruned_prefixes"`
	Tuples             int64 `json:"tuples"`
	Offered            int64 `json:"offered"`
	CellTuples         int64 `json:"cell_tuples"`
	PrunedCellPrefixes int64 `json:"pruned_cell_prefixes"`
	RankPops           int64 `json:"rank_pops"`
	SampledOut         int64 `json:"sampled_out"`
	// The memo counters are cache telemetry, not enumeration work: hits
	// measure cosines *avoided*. bench.WorkTotal excludes the
	// "attr_sim_memo_" prefix for exactly that reason.
	AttrSimMemoHits   int64 `json:"attr_sim_memo_hits"`
	AttrSimMemoMisses int64 `json:"attr_sim_memo_misses"`
	// SubspaceCandidatesMax is a max, not a sum (the largest single
	// subspace's candidate volume); Add takes the larger of the two and
	// bench.WorkTotal excludes it from work sums by name.
	SubspaceCandidatesMax int64 `json:"subspace_candidates_max"`
}

// Each calls f with every counter's snake_case name and value, in
// declaration order — the single source of counter names for metrics
// exporters.
func (s Snapshot) Each(f func(name string, value int64)) {
	f("subspaces", s.Subspaces)
	f("subspaces_skipped", s.SubspacesSkipped)
	f("candidates", s.Candidates)
	f("pruned_prefixes", s.PrunedPrefixes)
	f("tuples", s.Tuples)
	f("offered", s.Offered)
	f("cell_tuples", s.CellTuples)
	f("pruned_cell_prefixes", s.PrunedCellPrefixes)
	f("rank_pops", s.RankPops)
	f("sampled_out", s.SampledOut)
	f("attr_sim_memo_hits", s.AttrSimMemoHits)
	f("attr_sim_memo_misses", s.AttrSimMemoMisses)
	f("subspace_candidates_max", s.SubspaceCandidatesMax)
}

// Add returns the field-wise sum of s and o — except
// SubspaceCandidatesMax, which keeps max semantics (the accumulated
// value is the worst single subspace seen, not a meaningless sum of
// maxima). The evaluation harness uses Add to accumulate per-query
// snapshots into a per-run work total.
func (s Snapshot) Add(o Snapshot) Snapshot {
	s.Subspaces += o.Subspaces
	s.SubspacesSkipped += o.SubspacesSkipped
	s.Candidates += o.Candidates
	s.PrunedPrefixes += o.PrunedPrefixes
	s.Tuples += o.Tuples
	s.Offered += o.Offered
	s.CellTuples += o.CellTuples
	s.PrunedCellPrefixes += o.PrunedCellPrefixes
	s.RankPops += o.RankPops
	s.SampledOut += o.SampledOut
	s.AttrSimMemoHits += o.AttrSimMemoHits
	s.AttrSimMemoMisses += o.AttrSimMemoMisses
	if o.SubspaceCandidatesMax > s.SubspaceCandidatesMax {
		s.SubspaceCandidatesMax = o.SubspaceCandidatesMax
	}
	return s
}

// Snapshot copies the counters. A nil receiver yields a zero snapshot.
func (s *Stats) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	return Snapshot{
		Subspaces:             s.Subspaces.Load(),
		SubspacesSkipped:      s.SubspacesSkipped.Load(),
		Candidates:            s.Candidates.Load(),
		PrunedPrefixes:        s.PrunedPrefixes.Load(),
		Tuples:                s.Tuples.Load(),
		Offered:               s.Offered.Load(),
		CellTuples:            s.CellTuples.Load(),
		PrunedCellPrefixes:    s.PrunedCellPrefixes.Load(),
		RankPops:              s.RankPops.Load(),
		SampledOut:            s.SampledOut.Load(),
		AttrSimMemoHits:       s.AttrSimMemoHits.Load(),
		AttrSimMemoMisses:     s.AttrSimMemoMisses.Load(),
		SubspaceCandidatesMax: s.SubspaceCandidatesMax.Load(),
	}
}
