package stats

import "testing"

func TestSnapshotAdd(t *testing.T) {
	var s Stats
	s.AddSubspaces(2)
	s.AddCandidates(10)
	s.AddTuples(3)
	a := s.Snapshot()
	var s2 Stats
	s2.AddSubspaces(1)
	s2.AddCandidates(5)
	s2.AddRankPops(7)
	b := s2.Snapshot()

	sum := a.Add(b)
	if sum.Subspaces != 3 || sum.Candidates != 15 || sum.Tuples != 3 || sum.RankPops != 7 {
		t.Errorf("Add = %+v", sum)
	}
	// Add must cover every counter Each exposes: the field-wise sum of a
	// snapshot with itself doubles every named value.
	doubled := a.Add(a)
	i := 0
	av := make(map[string]int64)
	a.Each(func(name string, v int64) { av[name] = v })
	doubled.Each(func(name string, v int64) {
		if v != 2*av[name] {
			t.Errorf("counter %s: Add(a,a) = %d, want %d", name, v, 2*av[name])
		}
		i++
	})
	if i != 12 {
		t.Errorf("Each visited %d counters, want 12", i)
	}
}

func TestNilStatsSafe(t *testing.T) {
	var s *Stats
	s.AddSubspaces(1)
	s.AddOffered(1)
	if snap := s.Snapshot(); snap != (Snapshot{}) {
		t.Errorf("nil Stats snapshot = %+v, want zero", snap)
	}
}
