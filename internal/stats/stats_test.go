package stats

import "testing"

func TestSnapshotAdd(t *testing.T) {
	var s Stats
	s.AddSubspaces(2)
	s.AddCandidates(10)
	s.AddTuples(3)
	a := s.Snapshot()
	var s2 Stats
	s2.AddSubspaces(1)
	s2.AddCandidates(5)
	s2.AddRankPops(7)
	b := s2.Snapshot()

	sum := a.Add(b)
	if sum.Subspaces != 3 || sum.Candidates != 15 || sum.Tuples != 3 || sum.RankPops != 7 {
		t.Errorf("Add = %+v", sum)
	}
	// Add must cover every counter Each exposes: the field-wise sum of a
	// snapshot with itself doubles every named value — except the
	// documented max-semantics counter, which Add keeps unchanged.
	doubled := a.Add(a)
	i := 0
	av := make(map[string]int64)
	a.Each(func(name string, v int64) { av[name] = v })
	doubled.Each(func(name string, v int64) {
		want := 2 * av[name]
		if name == "subspace_candidates_max" {
			want = av[name]
		}
		if v != want {
			t.Errorf("counter %s: Add(a,a) = %d, want %d", name, v, want)
		}
		i++
	})
	if i != 13 {
		t.Errorf("Each visited %d counters, want 13", i)
	}
}

func TestSubspaceCandidatesMax(t *testing.T) {
	var s Stats
	s.RaiseSubspaceCandidates(10)
	s.RaiseSubspaceCandidates(4) // lower value must not win
	s.RaiseSubspaceCandidates(25)
	if got := s.Snapshot().SubspaceCandidatesMax; got != 25 {
		t.Errorf("SubspaceCandidatesMax = %d, want 25", got)
	}
	var nilStats *Stats
	nilStats.RaiseSubspaceCandidates(99) // nil-safe no-op
	a := Snapshot{SubspaceCandidatesMax: 7}
	b := Snapshot{SubspaceCandidatesMax: 12}
	if got := a.Add(b).SubspaceCandidatesMax; got != 12 {
		t.Errorf("Add max = %d, want 12 (max, not sum)", got)
	}
	if got := b.Add(a).SubspaceCandidatesMax; got != 12 {
		t.Errorf("Add max (reversed) = %d, want 12", got)
	}
}

func TestNilStatsSafe(t *testing.T) {
	var s *Stats
	s.AddSubspaces(1)
	s.AddOffered(1)
	if snap := s.Snapshot(); snap != (Snapshot{}) {
		t.Errorf("nil Stats snapshot = %+v, want zero", snap)
	}
}
