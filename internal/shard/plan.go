// Package shard implements the in-process sharded scatter-gather serving
// tier: a geographic Plan splitting the dataset bounds into N disjoint
// shard regions, one core.Engine per shard searching only the partition
// subspaces its region owns, and a Coordinator that fans a query out to
// every shard, shares the global top-k pruning threshold across shards as
// it tightens, and merges the shard answers with the deterministic
// tie-break the single engine uses.
//
// Correctness rests on the paper's Lemma 1: the partition layer
// enumerates every candidate tuple in exactly one core subspace (the one
// containing its dimension-0 point), so assigning each subspace to
// exactly one shard splits the enumeration into disjoint slices whose
// union is the unsharded search. Shards share the full dataset and
// partition index in-process — the auxiliary band a subspace searches is
// query-dependent (beta * ||V_t*||) and unbounded, so a shard cannot hold
// a fixed geographic sub-dataset and stay exact; it holds the data and
// owns a slice of the work instead. The Backend interface is
// transport-shaped (plain request/response values) so a later tier can
// put remote seqserver instances behind the same coordinator.
package shard

import (
	"math"
	"sort"

	"spatialseq/internal/geo"
)

// Plan is a disjoint covering of the dataset bounds by n shard regions,
// built by recursive point-count-balanced splits (the same
// alternating-cut, math.Nextafter disjointness discipline as the
// partition layer, but cutting at point-count quantiles so shards get
// comparable candidate volumes rather than comparable areas).
type Plan struct {
	regions []geo.Rect
	centers []geo.Point
}

// NewPlan builds a plan splitting pts' bounding rectangle into n
// regions. n < 1 is treated as 1. The split recursion always yields
// exactly n regions; heavily duplicated coordinates can leave some of
// them empty of points (they still tile the bounds, so ownership stays
// total).
func NewPlan(pts []geo.Point, n int) *Plan {
	if n < 1 {
		n = 1
	}
	bounds := geo.RectFromPoints(pts)
	if bounds.IsEmpty() {
		bounds = geo.Rect{}
	}
	p := &Plan{regions: make([]geo.Rect, 0, n)}
	work := make([]geo.Point, len(pts))
	copy(work, pts)
	p.split(bounds, work, n)
	p.centers = make([]geo.Point, len(p.regions))
	for i, r := range p.regions {
		p.centers[i] = r.Center()
	}
	return p
}

// split divides rect (holding pts) into n leaf regions appended to
// p.regions. The cut axis is the wider one; the cut coordinate is the
// point-count quantile matching the target leaf split, so descendant
// leaves receive near-equal point counts.
func (p *Plan) split(rect geo.Rect, pts []geo.Point, n int) {
	if n <= 1 {
		p.regions = append(p.regions, rect)
		return
	}
	nl := n / 2
	vertical := rect.Width() >= rect.Height()
	coord := func(pt geo.Point) float64 {
		if vertical {
			return pt.X
		}
		return pt.Y
	}
	lo, hi := rect.MinX, rect.MaxX
	if !vertical {
		lo, hi = rect.MinY, rect.MaxY
	}
	cut := midCut(lo, hi)
	if len(pts) > 0 {
		cs := make([]float64, len(pts))
		for i, pt := range pts {
			cs[i] = coord(pt)
		}
		sort.Float64s(cs)
		q := len(cs) * nl / n
		if q >= len(cs) {
			q = len(cs) - 1
		}
		cut = cs[q]
		// A quantile landing on the region edge would starve one side of
		// all area; fall back to the midpoint cut.
		if cut <= lo || cut >= hi {
			cut = midCut(lo, hi)
		}
	}
	// Hoare-style partition: left takes coord <= cut, matching the
	// closed-left / open-right rectangle split below.
	i, j := 0, len(pts)-1
	for i <= j {
		if coord(pts[i]) <= cut {
			i++
		} else {
			pts[i], pts[j] = pts[j], pts[i]
			j--
		}
	}
	var left, right geo.Rect
	if vertical {
		left = geo.Rect{MinX: rect.MinX, MinY: rect.MinY, MaxX: cut, MaxY: rect.MaxY}
		right = geo.Rect{MinX: math.Nextafter(cut, math.Inf(1)), MinY: rect.MinY, MaxX: rect.MaxX, MaxY: rect.MaxY}
	} else {
		left = geo.Rect{MinX: rect.MinX, MinY: rect.MinY, MaxX: rect.MaxX, MaxY: cut}
		right = geo.Rect{MinX: rect.MinX, MinY: math.Nextafter(cut, math.Inf(1)), MaxX: rect.MaxX, MaxY: rect.MaxY}
	}
	p.split(left, pts[:i], nl)
	p.split(right, pts[i:], n-nl)
}

// midCut is the geometric fallback cut: the interval midpoint, clamped
// strictly inside (lo, hi) when the interval has extent.
func midCut(lo, hi float64) float64 {
	return lo + (hi-lo)/2
}

// N returns the number of shard regions.
func (p *Plan) N() int { return len(p.regions) }

// Region returns shard i's rectangle.
func (p *Plan) Region(i int) geo.Rect { return p.regions[i] }

// Owner returns the shard whose region contains pt. The regions tile the
// plan bounds disjointly, so an in-bounds point has exactly one owner;
// points that escape every region (outside the bounds, or on a
// degenerate split's seam) deterministically fall to the region with the
// nearest center. Every subspace core center therefore has exactly one
// owning shard — the invariant the exactly-once sharding discipline
// needs.
func (p *Plan) Owner(pt geo.Point) int {
	for i, r := range p.regions {
		if r.Contains(pt) {
			return i
		}
	}
	best, bestDist := 0, math.Inf(1)
	for i, c := range p.centers {
		dx, dy := pt.X-c.X, pt.Y-c.Y
		if d := dx*dx + dy*dy; d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}
