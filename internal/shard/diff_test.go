package shard_test

import (
	"context"
	"fmt"
	"testing"

	"spatialseq/internal/algo/brute"
	"spatialseq/internal/core"
	"spatialseq/internal/dataset"
	"spatialseq/internal/query"
	"spatialseq/internal/shard"
	"spatialseq/internal/testkit"
	"spatialseq/internal/topk"
)

// shardCounts is the sweep every differential case runs at. 1 pins the
// degenerate single-shard coordinator to the engine's answer, 2 and 3
// exercise uneven splits (3 is never a clean power-of-two cut), and 8
// exceeds the natural cluster count of every testkit shape, so some
// shards own almost nothing — the regime where a wrong ownership claim
// or threshold share is most visible.
var shardCounts = []int{1, 2, 3, 8}

// entriesOf converts a coordinator result to the oracle's entry shape.
func entriesOf(res *core.Result) []topk.Entry {
	out := make([]topk.Entry, len(res.Tuples))
	for i, t := range res.Tuples {
		out[i] = topk.Entry{Tuple: t.Positions, Sim: t.Sim}
	}
	return out
}

// coordFunc adapts a coordinator configuration to testkit.SearchFunc: a
// fresh coordinator (plan, engines, threshold exchange) is built over
// each case's dataset, exactly as the server would build one over a
// loaded corpus.
func coordFunc(shards int, algo core.Algorithm, parallelism int) testkit.SearchFunc {
	return func(ctx context.Context, ds *dataset.Dataset, q *query.Query) ([]topk.Entry, error) {
		c := shard.New(ds, shard.Config{Shards: shards, Parallelism: parallelism})
		qq := *q // Search normalizes params in place
		res, err := c.Search(ctx, &qq, algo, core.Options{})
		if err != nil {
			return nil, err
		}
		return entriesOf(res), nil
	}
}

// TestShardedDifferential is the acceptance gate of the sharded tier:
// every seeded recipe of the main differential suite (same seed, same
// schedule — testkit.DiffConfig.CaseAt is the shared source) runs
// through the scatter-gather coordinator at shard counts {1, 2, 3, 8}
// and must agree tuple-for-tuple with the brute-force oracle. The main
// suite already proves the single engine agrees with brute, so
// agreement here is transitively agreement with the single-engine
// answer. Every 5th case also runs with intra-shard parallelism 4
// (concurrent sinks under a shared threshold floor), and every 6th
// routes DFS-Prune through the coordinator's unpartitioned path.
func TestShardedDifferential(t *testing.T) {
	queries := 510
	if testing.Short() {
		queries = 120
	}
	cfg := testkit.DiffConfig{
		Seed:            20250805, // the main suite's seed: identical recipes
		Queries:         queries,
		FixedPointEvery: 3,
		SEQEvery:        7,
	}
	ctx := context.Background()
	mismatches := 0
	for i := 0; i < queries && mismatches < 5; i++ {
		c := cfg.CaseAt(i)
		if err := c.Generate(); err != nil {
			t.Fatal(err)
		}
		want := brute.Search(c.DS, c.Q)
		for _, n := range shardCounts {
			par := 0
			if i%5 == 0 {
				par = 4
			}
			coord := shard.New(c.DS, shard.Config{Shards: n, Parallelism: par})
			qq := *c.Q
			res, err := coord.Search(ctx, &qq, core.HSP, core.Options{})
			if err != nil {
				t.Fatalf("case %s shards=%d: %v", c, n, err)
			}
			name := fmt.Sprintf("shard%d-hsp", n)
			if par > 0 {
				name += "-par"
			}
			for _, m := range testkit.CompareExact(c, name, want, entriesOf(res)) {
				t.Errorf("sharded mismatch: %s", m)
				mismatches++
			}
		}
		if i%6 == 0 {
			// Unpartitioned algorithms route to a single leg that sees the
			// whole dataset; the answer must still be exact.
			ms, err := testkit.CheckCaseAgainst(ctx, c, "shard2-dfs", coordFunc(2, core.DFSPrune, 0))
			if err != nil {
				t.Fatalf("case %s: %v", c, err)
			}
			for _, m := range ms {
				t.Errorf("sharded mismatch: %s", m)
				mismatches++
			}
		}
	}
}

// TestShardedLORAContract validates the sharded approximate path: LORA
// through the coordinator must satisfy the same feasibility and
// domination contract as single-engine LORA. Tuple equality is NOT
// asserted — LORA's early stops are threshold-timing-dependent, and the
// shared floor can legitimately tighten at different points than a
// single engine's local threshold.
func TestShardedLORAContract(t *testing.T) {
	queries := 90
	if testing.Short() {
		queries = 30
	}
	cfg := testkit.DiffConfig{Seed: 20250805, Queries: queries, FixedPointEvery: 3, SEQEvery: 7}
	ctx := context.Background()
	for i := 0; i < queries; i++ {
		c := cfg.CaseAt(i)
		if err := c.Generate(); err != nil {
			t.Fatal(err)
		}
		for _, n := range shardCounts {
			ms, err := testkit.CheckApproxAgainst(ctx, c,
				fmt.Sprintf("shard%d-lora", n), coordFunc(n, core.LORA, 0))
			if err != nil {
				t.Fatalf("case %s shards=%d: %v", c, n, err)
			}
			for _, m := range ms {
				t.Errorf("sharded LORA contract: %s", m)
			}
		}
	}
}

// TestShardedAutoResolvesOnce pins the coordinator's algorithm
// resolution: Auto is resolved once at the coordinator (from global
// candidate volume), every shard runs the same algorithm, and the
// result reports the resolved one — never Auto.
func TestShardedAutoResolvesOnce(t *testing.T) {
	c := testkit.DiffConfig{Seed: 42}.CaseAt(0)
	if err := c.Generate(); err != nil {
		t.Fatal(err)
	}
	coord := shard.New(c.DS, shard.Config{Shards: 3})
	qq := *c.Q
	res, err := coord.Search(context.Background(), &qq, core.Auto, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm == core.Auto {
		t.Fatalf("result reports unresolved Auto")
	}
	if want := core.Choose(c.DS, c.Q, core.Auto); res.Algorithm != want {
		t.Fatalf("coordinator resolved %v, package-level Choose says %v", res.Algorithm, want)
	}
}
