package shard_test

import (
	"fmt"
	"math/rand"
	"testing"

	"spatialseq/internal/algo/brute"
	"spatialseq/internal/core"
	"spatialseq/internal/query"
	"spatialseq/internal/shard"
	"spatialseq/internal/testkit"
	"spatialseq/internal/testutil"
)

// permutations returns every ordering of [0, n) — n stays tiny (<= 4)
// so exhaustive beats sampled.
func permutations(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	for _, sub := range permutations(n - 1) {
		for i := 0; i <= len(sub); i++ {
			p := make([]int, 0, n)
			p = append(p, sub[:i]...)
			p = append(p, n-1)
			p = append(p, sub[i:]...)
			out = append(out, p)
		}
	}
	return out
}

func permuteLegs(legs [][]core.ResultTuple, p []int) [][]core.ResultTuple {
	out := make([][]core.ResultTuple, len(p))
	for i, j := range p {
		out[i] = legs[j]
	}
	return out
}

func sameTuples(a, b []core.ResultTuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Sim != b[i].Sim || len(a[i].Positions) != len(b[i].Positions) {
			return false
		}
		for d := range a[i].Positions {
			if a[i].Positions[d] != b[i].Positions[d] {
				return false
			}
		}
	}
	return true
}

// TestMergePermutationInvariant is the coordinator's order-independence
// property: merging shard-local top-ks must give the same global top-k
// under every permutation of shard response arrival order. Legs are
// real per-shard answers: each case's brute-force result list is dealt
// round-robin and randomly across legs, including tie-heavy and
// zero-attribute datasets where the deterministic tie-break is the only
// thing keeping the answer stable.
func TestMergePermutationInvariant(t *testing.T) {
	shapes := []testkit.Shape{
		{Name: "uniform", Spec: testutil.DatasetSpec{N: 48, Categories: 3, AttrDim: 4, Extent: 100}},
		// All-zero attributes collapse the attribute term: many exact
		// score ties, the adversarial case for order stability.
		{Name: "zero-attr", Spec: testutil.DatasetSpec{N: 40, Categories: 2, AttrDim: 3, Extent: 50, ZeroAttrFrac: 1}},
		// One point of extent: every location term degenerates too, so
		// essentially every feasible tuple ties.
		{Name: "tie-heavy", Spec: testutil.DatasetSpec{N: 30, Categories: 2, AttrDim: 2, Extent: 0.001, ZeroAttrFrac: 1}},
	}
	rng := rand.New(rand.NewSource(7))
	for ci, shape := range shapes {
		for trial := 0; trial < 8; trial++ {
			c := &testkit.Case{
				Seed: int64(1000*ci + trial), Shape: shape, M: 2, Variant: query.CSEQ,
				Params: query.Params{K: 6, Alpha: 0.5, Beta: 2, GridD: 3, Xi: 5},
			}
			if err := c.Generate(); err != nil {
				t.Fatal(err)
			}
			// Oversample the oracle so legs hold more than k entries each —
			// a merge that depends on truncation order will show it.
			wide := *c.Q
			wide.Params.K = 24
			all := brute.Search(c.DS, &wide)
			for _, nLegs := range []int{2, 3, 4} {
				legs := make([][]core.ResultTuple, nLegs)
				for i, e := range all {
					j := i % nLegs
					if rng.Intn(3) == 0 { // break the round-robin pattern
						j = rng.Intn(nLegs)
					}
					legs[j] = append(legs[j], core.ResultTuple{Positions: e.Tuple, Sim: e.Sim})
				}
				want := shard.Merge(c.Q.Params.K, legs)
				for _, p := range permutations(nLegs) {
					got := shard.Merge(c.Q.Params.K, permuteLegs(legs, p))
					if !sameTuples(want, got) {
						t.Fatalf("shape %s trial %d: merge differs under leg order %v:\nwant %v\ngot  %v",
							shape.Name, trial, p, want, got)
					}
				}
			}
		}
	}
}

// TestMergeMatchesOracle pins that merging the full per-shard lists
// reproduces the global top-k exactly (not just order-invariantly):
// dealing the oracle's top-24 across legs and merging back at k must
// return the oracle's top-k.
func TestMergeMatchesOracle(t *testing.T) {
	c := testkit.DiffConfig{Seed: 99}.CaseAt(3)
	if err := c.Generate(); err != nil {
		t.Fatal(err)
	}
	wide := *c.Q
	wide.Params.K = 24
	all := brute.Search(c.DS, &wide)
	want := brute.Search(c.DS, c.Q)
	legs := make([][]core.ResultTuple, 3)
	for i, e := range all {
		legs[i%3] = append(legs[i%3], core.ResultTuple{Positions: e.Tuple, Sim: e.Sim})
	}
	got := shard.Merge(c.Q.Params.K, legs)
	if len(got) != len(want) {
		t.Fatalf("merged %d tuples, oracle has %d", len(got), len(want))
	}
	for i := range want {
		if fmt.Sprint(want[i].Tuple) != fmt.Sprint(got[i].Positions) {
			t.Fatalf("rank %d: merged %v, oracle %v", i, got[i].Positions, want[i].Tuple)
		}
	}
}
