package shard

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"spatialseq/internal/geo"
)

func randPoints(rng *rand.Rand, n int, extent float64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	}
	return pts
}

// TestPlanDisjointTotal is the plan's core invariant: for any point —
// dataset point or arbitrary in-bounds probe — exactly one region
// contains it, and Owner agrees with containment. Disjointness plus
// totality is what makes the subspace ownership claim exactly-once.
func TestPlanDisjointTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 5, 8, 16} {
		pts := randPoints(rng, 200, 100)
		p := NewPlan(pts, n)
		if p.N() != n {
			t.Fatalf("n=%d: plan has %d regions", n, p.N())
		}
		// Probes must stay inside the plan bounds (the points' bounding
		// rect): outside it, zero containment is correct and the
		// nearest-center fallback owns the point.
		bounds := geo.RectFromPoints(pts)
		probes := append([]geo.Point{}, pts...)
		for i := 0; i < 300; i++ {
			probes = append(probes, geo.Point{
				X: bounds.MinX + rng.Float64()*(bounds.MaxX-bounds.MinX),
				Y: bounds.MinY + rng.Float64()*(bounds.MaxY-bounds.MinY),
			})
		}
		for _, pt := range probes {
			owners := 0
			for i := 0; i < p.N(); i++ {
				if p.Region(i).Contains(pt) {
					owners++
					if got := p.Owner(pt); got != i {
						t.Fatalf("n=%d: point %v contained by region %d but owned by %d", n, pt, i, got)
					}
				}
			}
			if owners != 1 {
				t.Fatalf("n=%d: point %v contained by %d regions, want exactly 1", n, pt, owners)
			}
		}
	}
}

// TestPlanOwnerOutOfBounds pins the fallback: points outside every
// region still get exactly one deterministic owner (nearest region
// center), never a panic or an unstable claim.
func TestPlanOwnerOutOfBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewPlan(randPoints(rng, 50, 10), 4)
	outside := []geo.Point{
		{X: -100, Y: -100}, {X: 1e6, Y: 1e6}, {X: 5, Y: -50},
		{X: math.Inf(1), Y: 0},
	}
	for _, pt := range outside {
		a, b := p.Owner(pt), p.Owner(pt)
		if a != b {
			t.Fatalf("owner of %v unstable: %d then %d", pt, a, b)
		}
		if a < 0 || a >= p.N() {
			t.Fatalf("owner of %v out of range: %d", pt, a)
		}
	}
}

// TestPlanBalance sanity-checks the point-count quantile cuts: on
// uniform data no shard should own a wildly disproportionate share of
// the points. (The bound is loose — balance is a quality property, not
// a correctness one.)
func TestPlanBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPoints(rng, 4000, 100)
	for _, n := range []int{2, 4, 8} {
		p := NewPlan(pts, n)
		counts := make([]int, n)
		for _, pt := range pts {
			counts[p.Owner(pt)]++
		}
		want := len(pts) / n
		for i, got := range counts {
			if got < want/2 || got > want*2 {
				t.Errorf("n=%d: shard %d owns %d points, expected near %d", n, i, got, want)
			}
		}
	}
}

// TestPlanDegenerate covers the inputs that break naive splitters: no
// points, one point, and all points identical. The plan must still
// produce n regions with total ownership.
func TestPlanDegenerate(t *testing.T) {
	for _, tc := range []struct {
		name string
		pts  []geo.Point
	}{
		{"empty", nil},
		{"single", []geo.Point{{X: 3, Y: 4}}},
		{"identical", []geo.Point{{X: 1, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 1}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := NewPlan(tc.pts, 4)
			if p.N() != 4 {
				t.Fatalf("plan has %d regions, want 4", p.N())
			}
			for _, pt := range tc.pts {
				if o := p.Owner(pt); o < 0 || o >= 4 {
					t.Fatalf("owner of %v out of range: %d", pt, o)
				}
			}
		})
	}
}

// TestExchangeFloorMonotone pins the atomic-max contract: Publish only
// raises, stale lower publishes are no-ops, and -Inf is the identity.
func TestExchangeFloorMonotone(t *testing.T) {
	ex := NewExchange()
	if f := ex.Floor(); !math.IsInf(f, -1) {
		t.Fatalf("fresh exchange floor = %v, want -Inf", f)
	}
	ex.Publish(0.5)
	if f := ex.Floor(); f != 0.5 {
		t.Fatalf("floor = %v after Publish(0.5)", f)
	}
	ex.Publish(0.3) // stale: must not loosen
	if f := ex.Floor(); f != 0.5 {
		t.Fatalf("floor loosened to %v by a stale publish", f)
	}
	ex.Publish(math.Inf(-1))
	if f := ex.Floor(); f != 0.5 {
		t.Fatalf("floor loosened to %v by -Inf", f)
	}
	ex.Publish(0.9)
	if f := ex.Floor(); f != 0.9 {
		t.Fatalf("floor = %v after Publish(0.9)", f)
	}
}

// TestExchangeConcurrentPublish hammers the exchange from many
// goroutines and asserts the floor converges to the global maximum —
// the lock-free CAS loop must not lose the largest value under races.
func TestExchangeConcurrentPublish(t *testing.T) {
	ex := NewExchange()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				ex.Publish(rng.Float64())
			}
			ex.Publish(float64(w) / workers) // deterministic maxima
		}(w)
	}
	wg.Wait()
	ex.Publish(2.0)
	if f := ex.Floor(); f != 2.0 {
		t.Fatalf("final floor = %v, want 2.0", f)
	}
}

// TestSinkTieAcceptance pins the >= gate: a candidate exactly at the
// floor must still be accepted for consideration — rejecting ties is
// how a sharded run silently diverges from the single engine on
// tie-heavy data.
func TestSinkTieAcceptance(t *testing.T) {
	ex := NewExchange()
	s := NewSink(2, ex)
	ex.Publish(0.7)
	if !s.WouldAccept(0.7) {
		t.Fatal("candidate equal to the floor rejected; ties must pass for the merge tie-break")
	}
	if s.WouldAccept(math.Nextafter(0.7, 0)) {
		t.Fatal("candidate strictly below the floor accepted")
	}
}

// TestSinkRepublishesThreshold checks the feedback loop: filling one
// sink must raise the shared floor to its local k-th best, so sibling
// shards start pruning against it.
func TestSinkRepublishesThreshold(t *testing.T) {
	ex := NewExchange()
	s := NewSink(2, ex)
	s.Offer([]int32{0, 1}, 0.9)
	if f := ex.Floor(); !math.IsInf(f, -1) {
		t.Fatalf("floor = %v before the sink is full, want -Inf", f)
	}
	s.Offer([]int32{2, 3}, 0.6)
	if f := ex.Floor(); f != 0.6 {
		t.Fatalf("floor = %v after filling k=2 with {0.9, 0.6}, want 0.6", f)
	}
	s.Offer([]int32{4, 5}, 0.8)
	if f := ex.Floor(); f != 0.8 {
		t.Fatalf("floor = %v after displacing 0.6 with 0.8", f)
	}
}
