package shard

import (
	"context"
	"time"

	"spatialseq/internal/core"
	"spatialseq/internal/geo"
	"spatialseq/internal/obs"
	"spatialseq/internal/obs/span"
	"spatialseq/internal/query"
	"spatialseq/internal/stats"
)

// Request is one scatter leg of a coordinator search. It is
// transport-shaped: plain values a later PR can serialize to put remote
// seqserver instances behind the Backend interface.
type Request struct {
	// Query is the validated query. Backends search a private shallow
	// copy, so in-process legs never race on the in-place normalization
	// Validate performs.
	Query *query.Query
	// Algo is the resolved algorithm (never Auto): the coordinator
	// resolves once so every shard runs the same one.
	Algo core.Algorithm
	// Exchange is the cross-shard pruning-threshold bus. Nil marks an
	// unpartitioned leg (brute force, DFS-Prune): the backend runs the
	// whole query without subspace filtering.
	Exchange *Exchange
	// CollectSpans asks the backend to record a per-shard span tree for
	// its execution (retained by the shard's flight records when the
	// query is slow).
	CollectSpans bool
}

// Response is one shard's answer: its local top-k (best-first) and the
// work it performed. The coordinator merges Tuples across shards and
// sums Stats.
type Response struct {
	Tuples  []core.ResultTuple
	Stats   stats.Snapshot
	Elapsed time.Duration
}

// Backend is one shard of the scatter-gather tier. Implementations must
// be safe for concurrent Search calls. A leg that cannot produce its
// complete local answer must return an error — the coordinator
// propagates it rather than merging a silently truncated top-k.
type Backend interface {
	Search(ctx context.Context, req *Request) (*Response, error)
}

// Local is the in-process backend: one shard engine sharing the full
// dataset and partition index, searching only the subspaces whose core
// rectangles its ownership claim covers.
type Local struct {
	eng *core.Engine
	own func(geo.Rect) bool
	par int
}

var _ Backend = (*Local)(nil)

// NewLocal wraps eng as a shard backend. own claims this shard's
// subspace cores (nil owns everything — a single-shard plan); par is the
// per-shard search parallelism passed to the algorithms.
func NewLocal(eng *core.Engine, own func(geo.Rect) bool, par int) *Local {
	return &Local{eng: eng, own: own, par: par}
}

// Engine exposes the wrapped shard engine (tests and metrics wiring).
func (b *Local) Engine() *core.Engine { return b.eng }

// Search runs the leg on the shard engine.
func (b *Local) Search(ctx context.Context, req *Request) (*Response, error) {
	q := *req.Query // private copy: Validate normalizes Params in place
	opt := core.Options{CollectStats: true}
	opt.HSP.Parallelism = b.par
	opt.LORA.Parallelism = b.par
	if req.CollectSpans {
		opt.Spans = span.NewTracer()
		opt.Trace = obs.NewTrace()
	}
	if req.Exchange != nil {
		sink := NewSink(q.Params.K, req.Exchange)
		opt.HSP.Own = b.own
		opt.LORA.Own = b.own
		opt.HSP.Sink = sink
		opt.LORA.Sink = sink
	}
	res, err := b.eng.Search(ctx, &q, req.Algo, opt)
	if err != nil {
		return nil, err
	}
	return &Response{Tuples: res.Tuples, Stats: res.Stats, Elapsed: res.Elapsed}, nil
}
