package shard

import (
	"math"
	"sync/atomic"

	"spatialseq/internal/topk"
)

// Exchange is the cross-shard pruning-threshold bus of one scatter: each
// shard republishes its local top-k threshold (topk.Concurrent.Threshold,
// monotone per shard) after every insert, and every shard prunes against
// the maximum published so far. The floor is exact, not heuristic: a
// published value tau is some shard's k-th best similarity, so at least k
// tuples with similarity >= tau exist globally and a candidate strictly
// below tau is beaten by all of them. Candidates equal to tau still pass
// (the deterministic tie-break decides them at merge), which is what
// keeps the sharded answer tuple-for-tuple identical to the single
// engine's.
type Exchange struct {
	floor atomic.Uint64 // math.Float64bits of the global threshold floor
}

// NewExchange returns an exchange with the floor at -Inf.
func NewExchange() *Exchange {
	e := &Exchange{}
	e.floor.Store(math.Float64bits(math.Inf(-1)))
	return e
}

// Publish raises the floor to thr if it is higher (atomic max; lower or
// equal values are no-ops, so stale publishes cannot loosen the floor).
//
//seq:hotpath
func (e *Exchange) Publish(thr float64) {
	for {
		cur := e.floor.Load()
		if thr <= math.Float64frombits(cur) {
			return
		}
		if e.floor.CompareAndSwap(cur, math.Float64bits(thr)) {
			return
		}
	}
}

// Floor returns the current global pruning floor. Reads are lock-free
// and monotone non-decreasing.
//
//seq:hotpath
func (e *Exchange) Floor() float64 {
	return math.Float64frombits(e.floor.Load())
}

// Sink is the per-shard top-k collector of one scatter leg: a shard-local
// topk.Concurrent coupled to the Exchange. Acceptance is gated on the
// global floor (>=, so ties survive for the merge tie-break), and every
// insert republishes the tightened local threshold so the other shards
// prune harder. It implements topk.ResultSink and is injected into the
// algorithms via hsp.Options.Sink / lora.Options.Sink.
type Sink struct {
	local *topk.Concurrent
	ex    *Exchange
}

var _ topk.ResultSink = (*Sink)(nil)

// NewSink returns a shard sink keeping the local top k and publishing
// into ex.
func NewSink(k int, ex *Exchange) *Sink {
	return &Sink{local: topk.NewConcurrent(k), ex: ex}
}

// K returns the sink's capacity.
func (s *Sink) K() int { return s.local.K() }

// WouldAccept reports whether sim could still matter globally. The
// global floor dominates the local threshold (it is the max over all
// shards' published thresholds), so one comparison suffices; equality
// passes for the tie-break, exactly as in topk.Heap.WouldAccept.
//
//seq:hotpath
func (s *Sink) WouldAccept(sim float64) bool {
	return sim >= s.ex.Floor()
}

// Offer proposes a tuple to the shard-local top-k and republishes the
// (possibly tightened) local threshold to the exchange.
//
//seq:hotpath
func (s *Sink) Offer(tuple []int32, sim float64) bool {
	inserted := s.local.Offer(tuple, sim)
	s.ex.Publish(s.local.Threshold())
	return inserted
}

// Results returns the shard-local entries best-first.
func (s *Sink) Results() []topk.Entry { return s.local.Results() }
