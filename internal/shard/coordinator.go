package shard

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"spatialseq/internal/core"
	"spatialseq/internal/dataset"
	"spatialseq/internal/geo"
	"spatialseq/internal/obs"
	"spatialseq/internal/obs/flight"
	"spatialseq/internal/partition"
	"spatialseq/internal/query"
	"spatialseq/internal/stats"
	"spatialseq/internal/topk"
)

// Error marks a scatter leg failure: the coordinator never merges a
// partial top-k, so one failing shard fails the whole query with its
// shard index attached. The server maps it to 502 (distinct from the
// 400 of a bad query and the 504 of a blown budget).
type Error struct {
	Shard int
	Err   error
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("shard %d: %v", e.Shard, e.Err) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Config configures a Coordinator. The zero value runs one in-process
// shard.
type Config struct {
	// Shards is the shard count (< 1 is treated as 1). Ignored when
	// Backends is set.
	Shards int
	// Index, when non-nil, is a prebuilt partition index over exactly the
	// dataset's locations; all shard engines share it (and its partition
	// cache). Nil builds one.
	Index *partition.Index
	// Parallelism is each shard's intra-search parallelism (<= 1
	// sequential). The scatter itself always runs one goroutine per
	// shard.
	Parallelism int
	// Flight, when non-nil, receives every shard engine's per-query
	// flight records, each stamped with its shard ID.
	Flight *flight.Recorder
	// Metrics, when non-nil, registers the per-shard work counters and
	// busy-time series that make cross-shard skew visible in /metrics.
	Metrics *obs.Registry
	// Backends overrides the in-process shard engines — the hook for
	// fault-injection tests and, later, remote transports. When set,
	// Shards, Index, Parallelism and Flight are ignored.
	Backends []Backend
}

// Coordinator fans a query out to every shard backend, shares the global
// pruning threshold across them while they search, and merges their
// local top-ks deterministically. It implements core.Searcher, so the
// server and the eval harness drive it exactly like a single engine.
type Coordinator struct {
	ds       *dataset.Dataset
	plan     *Plan
	backends []Backend
	labels   []string // per-shard metric label values

	work *obs.CounterVec
	busy *obs.CounterVec

	mu      sync.Mutex
	cum     []stats.Snapshot
	busyDur []time.Duration
}

var _ core.Searcher = (*Coordinator)(nil)

// New builds a coordinator over ds with cfg.
func New(ds *dataset.Dataset, cfg Config) *Coordinator {
	n := cfg.Shards
	if len(cfg.Backends) > 0 {
		n = len(cfg.Backends)
	}
	if n < 1 {
		n = 1
	}
	pts := make([]geo.Point, ds.Len())
	for i := range pts {
		pts[i] = ds.Loc(i)
	}
	c := &Coordinator{
		ds:      ds,
		plan:    NewPlan(pts, n),
		labels:  make([]string, n),
		cum:     make([]stats.Snapshot, n),
		busyDur: make([]time.Duration, n),
	}
	for i := range c.labels {
		c.labels[i] = strconv.Itoa(i)
	}
	if len(cfg.Backends) > 0 {
		c.backends = cfg.Backends
	} else {
		pix := cfg.Index
		if pix == nil {
			pix = partition.NewIndex(pts)
		}
		c.backends = make([]Backend, n)
		for i := 0; i < n; i++ {
			eng := core.NewEngineWithIndex(ds, pix)
			eng.SetShardID(int32(i))
			if cfg.Flight != nil {
				eng.SetFlightRecorder(cfg.Flight)
			}
			c.backends[i] = NewLocal(eng, c.ownerFunc(i), cfg.Parallelism)
		}
	}
	if cfg.Metrics != nil {
		c.work = cfg.Metrics.Counter("spatialseq_shard_work_total",
			"Cumulative per-shard engine work counters, by stats.Snapshot field.", "shard", "counter")
		c.busy = cfg.Metrics.Counter("spatialseq_shard_busy_seconds_total",
			"Cumulative per-shard search busy time; cross-shard skew is the spread of this series.", "shard")
		shards := float64(n)
		cfg.Metrics.GaugeFunc("spatialseq_shards",
			"Shard count of the scatter-gather tier.",
			func() float64 { return shards })
	}
	return c
}

// ownerFunc claims the subspaces whose core center falls in shard i's
// plan region. Centers are what make the claim disjoint and total: a
// core rectangle may straddle a region seam, but its center has exactly
// one owner.
func (c *Coordinator) ownerFunc(i int) func(geo.Rect) bool {
	return func(core geo.Rect) bool {
		return c.plan.Owner(core.Center()) == i
	}
}

// Dataset returns the shared dataset (core.Searcher).
func (c *Coordinator) Dataset() *dataset.Dataset { return c.ds }

// Shards returns the number of shard backends.
func (c *Coordinator) Shards() int { return len(c.backends) }

// Plan returns the geographic shard plan.
func (c *Coordinator) Plan() *Plan { return c.plan }

// WorkByShard returns a copy of the cumulative per-shard work counters.
func (c *Coordinator) WorkByShard() []stats.Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]stats.Snapshot, len(c.cum))
	copy(out, c.cum)
	return out
}

// BusyByShard returns a copy of the cumulative per-shard busy time.
func (c *Coordinator) BusyByShard() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]time.Duration, len(c.busyDur))
	copy(out, c.busyDur)
	return out
}

// Search implements core.Searcher: validate once, resolve the algorithm
// once, scatter, gather, merge. HSP and LORA scatter across every shard
// under a shared threshold exchange; algorithms without a Lemma-1
// decomposition (brute force, DFS-Prune) run whole on shard 0, which
// in-process sees the full dataset. Any leg error fails the query — a
// truncated merge would silently drop answers.
func (c *Coordinator) Search(ctx context.Context, q *query.Query, algo core.Algorithm, opt core.Options) (*core.Result, error) {
	start := time.Now()
	sp := opt.Trace.Start("validate")
	root := opt.Spans.Root("scatter")
	vsp := root.Child("validate")
	verr := q.Validate(c.ds)
	vsp.End()
	sp.End()
	if verr != nil {
		root.End()
		return nil, verr
	}
	resolved := core.Choose(c.ds, q, algo)
	legs := c.backends
	var ex *Exchange
	if resolved == core.HSP || resolved == core.LORA {
		ex = NewExchange()
	} else {
		legs = c.backends[:1]
	}

	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	resps := make([]*Response, len(legs))
	errs := make([]error, len(legs))
	var wg sync.WaitGroup
	sp = opt.Trace.Start("shard.scatter")
	for i := range legs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// One span per leg, tagged with the shard as both worker lane
			// and subspace: Tree.Skew then reports cross-shard imbalance,
			// with the straggler attribution naming the slow shard.
			lane := root.Unit("shard.search", i, i)
			resp, err := legs[i].Search(sctx, &Request{
				Query:        q,
				Algo:         resolved,
				Exchange:     ex,
				CollectSpans: opt.Spans != nil,
			})
			if err != nil {
				lane.End()
				errs[i] = &Error{Shard: i, Err: err}
				cancel() // a failed leg makes the others' work unusable
				return
			}
			lane.EndWork(resp.Stats)
			resps[i] = resp
		}(i)
	}
	wg.Wait()
	sp.End()
	if err := firstError(ctx, errs); err != nil {
		root.End()
		return nil, err
	}

	sp = opt.Trace.Start("shard.merge")
	msp := root.Child("shard.merge")
	legTuples := make([][]core.ResultTuple, len(resps))
	var agg stats.Snapshot
	for i, resp := range resps {
		legTuples[i] = resp.Tuples
		agg = agg.Add(resp.Stats)
	}
	tuples := Merge(q.Params.K, legTuples)
	msp.End()
	sp.End()
	root.End()
	c.account(resps)

	res := &core.Result{Algorithm: resolved, Tuples: tuples, Elapsed: time.Since(start)}
	if opt.CollectStats {
		res.Stats = agg
	}
	return res, nil
}

// firstError picks the error the caller sees. When the parent context is
// dead, every leg reports its cancellation and shard order is arbitrary,
// so the context error itself is the truthful outcome. Otherwise prefer
// the lowest-indexed leg whose failure is not a propagated cancellation
// (the root cause, not the collateral), falling back to the first error.
func firstError(ctx context.Context, errs []error) error {
	if err := ctx.Err(); err != nil {
		for _, e := range errs {
			if e != nil {
				return e
			}
		}
		return err
	}
	var first error
	for _, e := range errs {
		if e == nil {
			continue
		}
		if first == nil {
			first = e
		}
		if !errors.Is(e, context.Canceled) {
			return e
		}
	}
	return first
}

// Merge folds per-shard top-k lists into the global top-k using the same
// deterministic collector the single engine uses: similarity descending,
// exact ties by tuple identity. Offering entries into a fresh bounded
// heap is commutative, so the result is invariant under any permutation
// of shard response arrival order — the property test pins this down.
func Merge(k int, legs [][]core.ResultTuple) []core.ResultTuple {
	h := topk.New(k)
	for _, leg := range legs {
		for _, t := range leg {
			h.Offer(t.Positions, t.Sim)
		}
	}
	entries := h.Results()
	out := make([]core.ResultTuple, len(entries))
	for i, e := range entries {
		out[i] = core.ResultTuple{Positions: e.Tuple, Sim: e.Sim}
	}
	return out
}

// account folds a gather's per-shard work into the cumulative counters
// and the /metrics series.
func (c *Coordinator) account(resps []*Response) {
	c.mu.Lock()
	for i, resp := range resps {
		if resp == nil {
			continue
		}
		c.cum[i] = c.cum[i].Add(resp.Stats)
		c.busyDur[i] += resp.Elapsed
	}
	c.mu.Unlock()
	if c.work == nil {
		return
	}
	for i, resp := range resps {
		if resp == nil {
			continue
		}
		label := c.labels[i]
		resp.Stats.Each(func(name string, value int64) {
			c.work.With(label, name).Add(float64(value))
		})
		c.busy.With(label).Add(resp.Elapsed.Seconds())
	}
}
