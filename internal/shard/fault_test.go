package shard_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"spatialseq/internal/core"
	"spatialseq/internal/shard"
	"spatialseq/internal/testkit"
)

// fakeBackend scripts one scatter leg for fault injection.
type fakeBackend struct {
	// err, when set, fails the leg immediately.
	err error
	// blockUntilCancel makes the leg wait for its context and return the
	// context's error — a shard that would have kept working forever.
	blockUntilCancel bool
	// resp is returned on success.
	resp *shard.Response
}

func (f *fakeBackend) Search(ctx context.Context, req *shard.Request) (*shard.Response, error) {
	if f.err != nil {
		return nil, f.err
	}
	if f.blockUntilCancel {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if f.resp != nil {
		return f.resp, nil
	}
	return &shard.Response{}, nil
}

func faultCase(t *testing.T) *testkit.Case {
	t.Helper()
	c := testkit.DiffConfig{Seed: 17}.CaseAt(0)
	if err := c.Generate(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFaultyShardFailsQuery is the no-silent-truncation guarantee: one
// failing leg fails the whole query with a *shard.Error naming the
// failed shard, and no partial top-k escapes.
func TestFaultyShardFailsQuery(t *testing.T) {
	c := faultCase(t)
	boom := errors.New("disk on fire")
	coord := shard.New(c.DS, shard.Config{Backends: []shard.Backend{
		&fakeBackend{resp: &shard.Response{}},
		&fakeBackend{err: boom},
		&fakeBackend{resp: &shard.Response{}},
	}})
	qq := *c.Q
	res, err := coord.Search(context.Background(), &qq, core.HSP, core.Options{})
	if err == nil {
		t.Fatal("coordinator merged past a failed shard")
	}
	if res != nil {
		t.Fatalf("failed query still returned a result: %+v", res)
	}
	var se *shard.Error
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a *shard.Error", err)
	}
	if se.Shard != 1 {
		t.Errorf("error names shard %d, want 1", se.Shard)
	}
	if !errors.Is(err, boom) {
		t.Errorf("error %v does not unwrap to the root cause", err)
	}
}

// TestFaultCancelsSiblings pins the cancellation fan-in: when one leg
// fails, still-running siblings are cancelled (their work is unusable),
// and the reported error is the root cause — not a sibling's collateral
// context.Canceled.
func TestFaultCancelsSiblings(t *testing.T) {
	c := faultCase(t)
	boom := errors.New("shard 0 exploded")
	coord := shard.New(c.DS, shard.Config{Backends: []shard.Backend{
		&fakeBackend{err: boom},
		&fakeBackend{blockUntilCancel: true}, // hangs until the coordinator cancels it
	}})
	qq := *c.Q
	done := make(chan error, 1)
	go func() {
		_, err := coord.Search(context.Background(), &qq, core.HSP, core.Options{})
		done <- err
	}()
	select {
	case err := <-done:
		var se *shard.Error
		if !errors.As(err, &se) || se.Shard != 0 || !errors.Is(err, boom) {
			t.Fatalf("error = %v, want shard 0's root cause", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator never cancelled the surviving shard")
	}
}

// TestBudgetExceededPropagates runs a real in-process sharded search
// under an already-expired deadline: the coordinator must report the
// deadline, never a truncated answer. This is the path the server maps
// to 504.
func TestBudgetExceededPropagates(t *testing.T) {
	c := faultCase(t)
	coord := shard.New(c.DS, shard.Config{Shards: 3})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	qq := *c.Q
	res, err := coord.Search(ctx, &qq, core.HSP, core.Options{})
	if err == nil {
		t.Fatal("expired budget produced a result")
	}
	if res != nil {
		t.Fatalf("expired budget still returned a result: %+v", res)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error = %v, want context.DeadlineExceeded in the chain", err)
	}
}

// TestAllShardsHealthy is the fault tests' control: the same scripted
// backend shape with no fault merges normally.
func TestAllShardsHealthy(t *testing.T) {
	c := faultCase(t)
	coord := shard.New(c.DS, shard.Config{Backends: []shard.Backend{
		&fakeBackend{resp: &shard.Response{Tuples: []core.ResultTuple{{Positions: []int32{0, 1}, Sim: 0.9}}}},
		&fakeBackend{resp: &shard.Response{Tuples: []core.ResultTuple{{Positions: []int32{2, 3}, Sim: 0.8}}}},
	}})
	qq := *c.Q
	qq.Params.K = 5 // room for both legs' tuples in the merge
	res, err := coord.Search(context.Background(), &qq, core.HSP, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 2 || res.Tuples[0].Sim != 0.9 {
		t.Fatalf("merged tuples = %+v", res.Tuples)
	}
}
