// Package testutil builds small deterministic datasets and queries for the
// algorithm test suites. It lives outside the individual test files so the
// cross-algorithm equivalence tests, the property tests and the benchmarks
// all draw from the same fixtures.
package testutil

import (
	"fmt"
	"math/rand"

	"spatialseq/internal/dataset"
	"spatialseq/internal/geo"
	"spatialseq/internal/query"
)

// RandDataset builds a dataset of n objects spread over extent x extent,
// with the given number of categories and attribute dimensions. Points are
// lightly clustered (half the objects snap near one of sqrt(n) anchors) so
// grids and partitions see realistic density variation.
func RandDataset(rng *rand.Rand, n, categories, attrDim int, extent float64) *dataset.Dataset {
	b := &dataset.Builder{}
	for c := 0; c < categories; c++ {
		b.Category(fmt.Sprintf("cat-%d", c))
	}
	anchors := make([]geo.Point, isqrt(n)+1)
	for i := range anchors {
		anchors[i] = geo.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	}
	for i := 0; i < n; i++ {
		var loc geo.Point
		if rng.Intn(2) == 0 {
			a := anchors[rng.Intn(len(anchors))]
			loc = geo.Point{
				X: clamp(a.X+rng.NormFloat64()*extent/40, 0, extent),
				Y: clamp(a.Y+rng.NormFloat64()*extent/40, 0, extent),
			}
		} else {
			loc = geo.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
		}
		attr := make([]float64, attrDim)
		for d := range attr {
			attr[d] = 0.05 + 0.95*rng.Float64()
		}
		b.Add(dataset.Object{
			ID:       int64(i),
			Loc:      loc,
			Category: dataset.CategoryID(rng.Intn(categories)),
			Attr:     attr,
		})
	}
	ds, err := b.Build()
	if err != nil {
		//lint:ignore panicfree test-support package: known-good configs, and tests want the crash
		panic(err)
	}
	return ds
}

// RandQuery draws a CSEQ query with tuple size m whose example locations
// sit within a window of roughly `scale` extent, so the example norm (and
// with it the partitioning radius) is controlled.
func RandQuery(rng *rand.Rand, ds *dataset.Dataset, m int, scale float64, params query.Params) *query.Query {
	bounds := ds.Bounds()
	cx := bounds.MinX + rng.Float64()*bounds.Width()
	cy := bounds.MinY + rng.Float64()*bounds.Height()
	ex := query.Example{
		Categories: make([]dataset.CategoryID, m),
		Locations:  make([]geo.Point, m),
		Attrs:      make([][]float64, m),
	}
	for d := 0; d < m; d++ {
		ex.Categories[d] = dataset.CategoryID(rng.Intn(ds.NumCategories()))
		ex.Locations[d] = geo.Point{
			X: cx + (rng.Float64()-0.5)*scale,
			Y: cy + (rng.Float64()-0.5)*scale,
		}
		attr := make([]float64, ds.AttrDim())
		for i := range attr {
			attr[i] = 0.05 + 0.95*rng.Float64()
		}
		ex.Attrs[d] = attr
	}
	return &query.Query{Variant: query.CSEQ, Example: ex, Params: params}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func isqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}
