// Package testutil builds small deterministic datasets and queries for the
// algorithm test suites. It lives outside the individual test files so the
// cross-algorithm equivalence tests, the property tests (internal/testkit)
// and the benchmarks all draw from the same seeded-generation path.
package testutil

import (
	"fmt"
	"math"
	"math/rand"

	"spatialseq/internal/dataset"
	"spatialseq/internal/geo"
	"spatialseq/internal/partition"
	"spatialseq/internal/query"
	"spatialseq/internal/topk"
)

// DatasetSpec parameterizes RandDatasetSpec. The zero values of the
// optional fields (CategorySkew, ZeroAttrFrac) reproduce RandDataset's
// stream exactly, so existing seeded fixtures stay stable.
type DatasetSpec struct {
	// N is the object count.
	N int
	// Categories is the number of interned categories ("cat-0"...).
	Categories int
	// AttrDim is the attribute vector length.
	AttrDim int
	// Extent is the side length of the square data space.
	Extent float64
	// CategorySkew > 0 draws categories Zipf-like: P(c) proportional to
	// (c+1)^-skew, so cat-0 dominates. 0 draws uniformly.
	CategorySkew float64
	// ZeroAttrFrac is the probability that an object gets an all-zero
	// attribute vector — the zero-norm corner the cosine conventions
	// (vectormath.Cos) and the tie-break contract must survive.
	ZeroAttrFrac float64
}

// RandDataset builds a dataset of n objects spread over extent x extent,
// with the given number of categories and attribute dimensions. Points are
// lightly clustered (half the objects snap near one of sqrt(n) anchors) so
// grids and partitions see realistic density variation.
func RandDataset(rng *rand.Rand, n, categories, attrDim int, extent float64) *dataset.Dataset {
	return RandDatasetSpec(rng, DatasetSpec{N: n, Categories: categories, AttrDim: attrDim, Extent: extent})
}

// RandDatasetSpec is RandDataset with category skew and zero-attribute
// controls. With both extras at zero it consumes the rng stream exactly as
// RandDataset does.
func RandDatasetSpec(rng *rand.Rand, spec DatasetSpec) *dataset.Dataset {
	b := &dataset.Builder{}
	for c := 0; c < spec.Categories; c++ {
		b.Category(fmt.Sprintf("cat-%d", c))
	}
	var catWeights []float64
	if spec.CategorySkew > 0 {
		catWeights = make([]float64, spec.Categories)
		var total float64
		for c := range catWeights {
			total += math.Pow(float64(c+1), -spec.CategorySkew)
			catWeights[c] = total
		}
		for c := range catWeights {
			catWeights[c] /= total
		}
	}
	anchors := make([]geo.Point, isqrt(spec.N)+1)
	for i := range anchors {
		anchors[i] = geo.Point{X: rng.Float64() * spec.Extent, Y: rng.Float64() * spec.Extent}
	}
	for i := 0; i < spec.N; i++ {
		var loc geo.Point
		if rng.Intn(2) == 0 {
			a := anchors[rng.Intn(len(anchors))]
			loc = geo.Point{
				X: clamp(a.X+rng.NormFloat64()*spec.Extent/40, 0, spec.Extent),
				Y: clamp(a.Y+rng.NormFloat64()*spec.Extent/40, 0, spec.Extent),
			}
		} else {
			loc = geo.Point{X: rng.Float64() * spec.Extent, Y: rng.Float64() * spec.Extent}
		}
		attr := make([]float64, spec.AttrDim)
		if spec.ZeroAttrFrac <= 0 || rng.Float64() >= spec.ZeroAttrFrac {
			for d := range attr {
				attr[d] = 0.05 + 0.95*rng.Float64()
			}
		}
		b.Add(dataset.Object{
			ID:       int64(i),
			Loc:      loc,
			Category: drawCategory(rng, spec.Categories, catWeights),
			Attr:     attr,
		})
	}
	ds, err := b.Build()
	if err != nil {
		//lint:ignore panicfree test-support package: known-good configs, and tests want the crash
		panic(err)
	}
	return ds
}

func drawCategory(rng *rand.Rand, categories int, cumWeights []float64) dataset.CategoryID {
	if cumWeights == nil {
		return dataset.CategoryID(rng.Intn(categories))
	}
	u := rng.Float64()
	for c, w := range cumWeights {
		if u < w {
			return dataset.CategoryID(c)
		}
	}
	return dataset.CategoryID(categories - 1)
}

// RandQuery draws a CSEQ query with tuple size m whose example locations
// sit within a window of roughly `scale` extent, so the example norm (and
// with it the partitioning radius) is controlled.
func RandQuery(rng *rand.Rand, ds *dataset.Dataset, m int, scale float64, params query.Params) *query.Query {
	bounds := ds.Bounds()
	cx := bounds.MinX + rng.Float64()*bounds.Width()
	cy := bounds.MinY + rng.Float64()*bounds.Height()
	ex := query.Example{
		Categories: make([]dataset.CategoryID, m),
		Locations:  make([]geo.Point, m),
		Attrs:      make([][]float64, m),
	}
	for d := 0; d < m; d++ {
		ex.Categories[d] = dataset.CategoryID(rng.Intn(ds.NumCategories()))
		ex.Locations[d] = geo.Point{
			X: cx + (rng.Float64()-0.5)*scale,
			Y: cy + (rng.Float64()-0.5)*scale,
		}
		attr := make([]float64, ds.AttrDim())
		for i := range attr {
			attr[i] = 0.05 + 0.95*rng.Float64()
		}
		ex.Attrs[d] = attr
	}
	return &query.Query{Variant: query.CSEQ, Example: ex, Params: params}
}

// PinDims turns q into a CSEQ-FP query by pinning each listed dimension to
// a random dataset object of the matching category. It reports false (and
// leaves q untouched) when some listed dimension's category has no
// objects.
func PinDims(rng *rand.Rand, ds *dataset.Dataset, q *query.Query, dims ...int) bool {
	fixed := make([]query.FixedPoint, 0, len(dims))
	for _, d := range dims {
		cands := ds.CategoryObjects(q.Example.Categories[d])
		if len(cands) == 0 {
			return false
		}
		fixed = append(fixed, query.FixedPoint{Dim: d, Obj: cands[rng.Intn(len(cands))]})
	}
	q.Example.Fixed = fixed
	q.Variant = query.CSEQFP
	return true
}

// BuildIndex builds the partition index over the dataset's locations — the
// same construction core.NewEngine performs, shared here so algorithm
// tests do not each reimplement it.
func BuildIndex(ds *dataset.Dataset) *partition.Index {
	pts := make([]geo.Point, ds.Len())
	for i := range pts {
		pts[i] = ds.Loc(i)
	}
	return partition.NewIndex(pts)
}

// Sims extracts the similarity series of a result list, best-first.
func Sims(entries []topk.Entry) []float64 {
	out := make([]float64, len(entries))
	for i, e := range entries {
		out[i] = e.Sim
	}
	return out
}

// SimsEqual reports whether two similarity series agree elementwise within
// tol.
func SimsEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func isqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}
