package eval

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"spatialseq/internal/bench"
	"spatialseq/internal/core"
	"spatialseq/internal/obs/span"
	"spatialseq/internal/query"
	"spatialseq/internal/workload"
)

// SkewBaseline runs both families' workloads with hierarchical span
// tracing under parallel subspace workers and prints the per-family
// imbalance report: how unevenly the worker lanes are loaded, what share
// of the wall time is irreducible critical path, how dominant the largest
// subspace's candidate load is, and which subspace index stalls the tail
// most often. When cfg.Rec is attached, each (family, algorithm) cell
// also emits a bench record whose gauges carry the imbalance/share
// aggregates, so benchdiff gates skew regressions alongside latency. The
// EXPERIMENTS.md S1 numbers were this report before work stealing; a
// steal-enabled run must pull the imbalance ratio toward 1 without
// moving the critical-path share.
func SkewBaseline(ctx context.Context, w io.Writer, cfg Config) error {
	// At least 4 lanes even on small hosts: on a single-core machine the
	// workers time-share the CPU, so the imbalance ratio degrades to a
	// work-distribution signal — still exactly what work stealing evens
	// out — instead of a true parallel wall-time ratio.
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	n := cfg.Sizes[0]
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	rp := &report{}
	rp.printf(w, "Subspace skew baseline (%d workers, %d POIs, up to %d queries per cell)\n",
		workers, n, cfg.QueryCount)
	rp.println(tw, "family\talgo\tqueries\timb mean\timb max\tcrit-path\tmax-sub load\tstraggler (mode)")
	for _, f := range []Family{Yelp, Gaode} {
		data, err := familyDataset(f, n, cfg.Seed)
		if err != nil {
			return err
		}
		queries, err := workload.Generate(data, familyWorkload(f, cfg))
		if err != nil {
			return err
		}
		eng := core.NewEngine(data)
		for _, algo := range []core.Algorithm{core.HSP, core.LORA} {
			agg, err := runSkew(ctx, eng, queries, algo, workers, cfg.Budget)
			if err != nil {
				return err
			}
			if agg.ran == 0 {
				rp.printf(tw, "%s\t%s\t(no query finished within %s)\t\t\t\t\t\n", f, algo, cfg.Budget)
				continue
			}
			rp.printf(tw, "%s\t%s\t%d\t%.2f\t%.2f\t%.1f%%\t%.1f%%\t%s\n",
				f, algo, agg.ran,
				agg.imbSum/float64(agg.skewed), agg.imbMax,
				100*agg.critShareSum/float64(agg.skewed),
				100*agg.maxSubShareSum/float64(agg.ran),
				modeLabel(agg.stragglers))
			recordSkew(cfg, f, n, algo, agg)
		}
	}
	return rp.flush(tw)
}

// skewAgg accumulates per-query skew reports for one (family, algorithm)
// cell.
type skewAgg struct {
	ran            int       // queries completed
	skewed         int       // queries that produced a skew report
	imbSum, imbMax float64   // imbalance ratio
	critShareSum   float64   // critical path / span extent
	maxSubShareSum float64   // largest subspace's candidates / all candidates
	stragglers     []int32   // straggler subspace per query
	latenciesMS    []float64 // per-query wall time
}

// recordSkew emits one bench record per (family, algorithm) cell. The
// skew aggregates travel as gauges, not work counters: they are derived
// float ratios, and the parallel counter totals underneath them are not
// run-deterministic, so only the gauges and latencies are gate-worthy.
func recordSkew(cfg Config, f Family, size int, algo core.Algorithm, agg skewAgg) {
	if cfg.Rec == nil || agg.ran == 0 {
		return
	}
	gauges := map[string]float64{
		"max_subspace_load_share": agg.maxSubShareSum / float64(agg.ran),
	}
	if agg.skewed > 0 {
		gauges["imbalance_mean"] = agg.imbSum / float64(agg.skewed)
		gauges["imbalance_max"] = agg.imbMax
		gauges["critical_path_share"] = agg.critShareSum / float64(agg.skewed)
	}
	cfg.Rec.Add(bench.Record{
		Experiment: "skew",
		Family:     f.String(),
		Size:       size,
		Algorithm:  algo.String(),
		Queries:    agg.ran,
		Completed:  agg.ran,
		Latency:    bench.LatencyOf(agg.latenciesMS),
		Gauges:     gauges,
	})
}

// runSkew runs queries under algo with a fresh span tracer each, until
// the budget expires, and aggregates the skew reports.
func runSkew(ctx context.Context, eng *core.Engine, queries []*query.Query, algo core.Algorithm, workers int, budget time.Duration) (skewAgg, error) {
	deadline := time.Now().Add(budget)
	var agg skewAgg
	for _, q := range queries {
		if time.Now().After(deadline) {
			break
		}
		qctx, cancel := context.WithDeadline(ctx, deadline)
		qq := *q
		// Work stealing records one span per stolen chunk, so a skewed
		// query can need far more than the default 512-node arena.
		tr := span.NewTracerLimits(8192, 0)
		opt := core.Options{CollectStats: true, Spans: tr}
		opt.HSP.Parallelism = workers
		opt.LORA.Parallelism = workers
		start := time.Now()
		res, err := eng.Search(qctx, &qq, algo, opt)
		elapsed := time.Since(start)
		cancel()
		if err != nil {
			if qctx.Err() != nil && ctx.Err() == nil {
				break // budget exhausted mid-query; keep what we have
			}
			return agg, err
		}
		agg.ran++
		agg.latenciesMS = append(agg.latenciesMS, float64(elapsed)/float64(time.Millisecond))
		if res.Stats.Candidates > 0 {
			agg.maxSubShareSum += float64(res.Stats.SubspaceCandidatesMax) / float64(res.Stats.Candidates)
		}
		sk := tr.Skew()
		if sk == nil {
			continue
		}
		agg.skewed++
		agg.imbSum += sk.ImbalanceRatio
		if sk.ImbalanceRatio > agg.imbMax {
			agg.imbMax = sk.ImbalanceRatio
		}
		if sk.SpanMS > 0 {
			agg.critShareSum += sk.CriticalPathMS / sk.SpanMS
		}
		if sk.StragglerSubspace >= 0 {
			agg.stragglers = append(agg.stragglers, sk.StragglerSubspace)
		}
	}
	return agg, nil
}

// modeLabel returns "subspace xN" for the most frequent straggler
// subspace (ties to the smallest index), or "-" when none was tagged.
func modeLabel(ids []int32) string {
	if len(ids) == 0 {
		return "-"
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	best, bestCount := ids[0], 1
	cur, count := ids[0], 1
	for _, id := range ids[1:] {
		if id == cur {
			count++
		} else {
			cur, count = id, 1
		}
		if count > bestCount {
			best, bestCount = cur, count
		}
	}
	return fmt.Sprintf("#%d x%d", best, bestCount)
}
