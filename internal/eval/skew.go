package eval

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"spatialseq/internal/core"
	"spatialseq/internal/obs/span"
	"spatialseq/internal/query"
	"spatialseq/internal/workload"
)

// SkewBaseline runs both families' workloads with hierarchical span
// tracing under parallel subspace workers and prints the per-family
// imbalance report: how unevenly the worker lanes are loaded, what share
// of the wall time is irreducible critical path, how dominant the largest
// subspace's candidate load is, and which subspace index stalls the tail
// most often. These are the baseline numbers the work-stealing scheduler
// of ROADMAP item 3 has to beat — a steal-enabled run must pull the
// imbalance ratio toward 1 without moving the critical-path share.
func SkewBaseline(ctx context.Context, w io.Writer, cfg Config) error {
	// At least 4 lanes even on small hosts: on a single-core machine the
	// workers time-share the CPU, so the imbalance ratio degrades to a
	// work-distribution signal — still exactly what work stealing evens
	// out — instead of a true parallel wall-time ratio.
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	n := cfg.Sizes[0]
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	rp := &report{}
	rp.printf(w, "Subspace skew baseline (%d workers, %d POIs, up to %d queries per cell)\n",
		workers, n, cfg.QueryCount)
	rp.println(tw, "family\talgo\tqueries\timb mean\timb max\tcrit-path\tmax-sub load\tstraggler (mode)")
	for _, f := range []Family{Yelp, Gaode} {
		data, err := familyDataset(f, n, cfg.Seed)
		if err != nil {
			return err
		}
		queries, err := workload.Generate(data, familyWorkload(f, cfg))
		if err != nil {
			return err
		}
		eng := core.NewEngine(data)
		for _, algo := range []core.Algorithm{core.HSP, core.LORA} {
			agg, err := runSkew(ctx, eng, queries, algo, workers, cfg.Budget)
			if err != nil {
				return err
			}
			if agg.ran == 0 {
				rp.printf(tw, "%s\t%s\t(no query finished within %s)\t\t\t\t\t\n", f, algo, cfg.Budget)
				continue
			}
			rp.printf(tw, "%s\t%s\t%d\t%.2f\t%.2f\t%.1f%%\t%.1f%%\t%s\n",
				f, algo, agg.ran,
				agg.imbSum/float64(agg.skewed), agg.imbMax,
				100*agg.critShareSum/float64(agg.skewed),
				100*agg.maxSubShareSum/float64(agg.ran),
				modeLabel(agg.stragglers))
		}
	}
	return rp.flush(tw)
}

// skewAgg accumulates per-query skew reports for one (family, algorithm)
// cell.
type skewAgg struct {
	ran            int     // queries completed
	skewed         int     // queries that produced a skew report
	imbSum, imbMax float64 // imbalance ratio
	critShareSum   float64 // critical path / span extent
	maxSubShareSum float64 // largest subspace's candidates / all candidates
	stragglers     []int32 // straggler subspace per query
}

// runSkew runs queries under algo with a fresh span tracer each, until
// the budget expires, and aggregates the skew reports.
func runSkew(ctx context.Context, eng *core.Engine, queries []*query.Query, algo core.Algorithm, workers int, budget time.Duration) (skewAgg, error) {
	deadline := time.Now().Add(budget)
	var agg skewAgg
	for _, q := range queries {
		if time.Now().After(deadline) {
			break
		}
		qctx, cancel := context.WithDeadline(ctx, deadline)
		qq := *q
		tr := span.NewTracer()
		opt := core.Options{CollectStats: true, Spans: tr}
		opt.HSP.Parallelism = workers
		opt.LORA.Parallelism = workers
		res, err := eng.Search(qctx, &qq, algo, opt)
		cancel()
		if err != nil {
			if qctx.Err() != nil && ctx.Err() == nil {
				break // budget exhausted mid-query; keep what we have
			}
			return agg, err
		}
		agg.ran++
		if res.Stats.Candidates > 0 {
			agg.maxSubShareSum += float64(res.Stats.SubspaceCandidatesMax) / float64(res.Stats.Candidates)
		}
		sk := tr.Skew()
		if sk == nil {
			continue
		}
		agg.skewed++
		agg.imbSum += sk.ImbalanceRatio
		if sk.ImbalanceRatio > agg.imbMax {
			agg.imbMax = sk.ImbalanceRatio
		}
		if sk.SpanMS > 0 {
			agg.critShareSum += sk.CriticalPathMS / sk.SpanMS
		}
		if sk.StragglerSubspace >= 0 {
			agg.stragglers = append(agg.stragglers, sk.StragglerSubspace)
		}
	}
	return agg, nil
}

// modeLabel returns "subspace xN" for the most frequent straggler
// subspace (ties to the smallest index), or "-" when none was tagged.
func modeLabel(ids []int32) string {
	if len(ids) == 0 {
		return "-"
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	best, bestCount := ids[0], 1
	cur, count := ids[0], 1
	for _, id := range ids[1:] {
		if id == cur {
			count++
		} else {
			cur, count = id, 1
		}
		if count > bestCount {
			best, bestCount = cur, count
		}
	}
	return fmt.Sprintf("#%d x%d", best, bestCount)
}
