package eval

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"spatialseq/internal/bench"
	"spatialseq/internal/core"
	"spatialseq/internal/shard"
	"spatialseq/internal/workload"
)

// shardCounts is the scatter-gather sweep: 1 is the coordinator's
// overhead baseline against a bare engine, then doublings up to 8.
var shardCounts = []int{1, 2, 4, 8}

// ShardScaling measures the in-process scatter-gather tier across shard
// counts: per-query latency through the coordinator, the aggregate
// engine work, and the cross-shard skew of that work (the spread of the
// per-shard busy-time and candidate counters the coordinator also
// exports on /metrics). One bench record lands per (size, shard count)
// cell.
//
// Note the work counters for >1 shard are not run-deterministic: the
// shared pruning floor tightens at racy times, so each shard's candidate
// volume varies between runs (the answers do not — the differential
// suite pins that). Latency and the skew gauges are the comparable
// series.
func ShardScaling(ctx context.Context, w io.Writer, cfg Config) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	rp := &report{}
	rp.printf(w, "Sharded scatter-gather scaling (HSP, Gaode-like, up to %d queries per cell)\n", cfg.QueryCount)
	rp.println(tw, "size\tshards\tqueries\tmean\tp95\tbusy skew\twork skew\tstraggler")
	for _, n := range cfg.Sizes {
		data, err := familyDataset(Gaode, n, cfg.Seed)
		if err != nil {
			return err
		}
		queries, err := workload.Generate(data, familyWorkload(Gaode, cfg))
		if err != nil {
			return err
		}
		for _, sc := range shardCounts {
			coord := shard.New(data, shard.Config{Shards: sc})
			run := RunQueries(ctx, coord, queries, core.HSP, core.Options{}, cfg.Budget)
			if run.Err != nil {
				return fmt.Errorf("shards=%d size=%d: %w", sc, n, run.Err)
			}
			if run.Completed() == 0 {
				rp.printf(tw, "%d\t%d\t(no query finished within %s)\t\t\t\t\t\n", n, sc, cfg.Budget)
				continue
			}
			busySkew, workSkew, straggler := shardSkew(coord)
			rp.printf(tw, "%d\t%d\t%d\t%s\t%s\t%.2f\t%.2f\t%d\n",
				n, sc, run.Completed(), run.MeanTime().Round(time.Microsecond),
				run.Percentile(95).Round(time.Microsecond), busySkew, workSkew, straggler)
			recordShard(cfg, n, sc, run, busySkew, workSkew)
		}
	}
	return rp.flush(tw)
}

// shardSkew derives the cross-shard imbalance of a finished run from the
// coordinator's cumulative per-shard series: max/mean of busy time, the
// same for total work-counter volume, and the index of the busiest
// shard. A perfectly balanced plan reports 1.0.
func shardSkew(c *shard.Coordinator) (busySkew, workSkew float64, straggler int) {
	busy := c.BusyByShard()
	var busyTotal, busyMax time.Duration
	for i, d := range busy {
		busyTotal += d
		if d > busyMax {
			busyMax, straggler = d, i
		}
	}
	if busyTotal > 0 {
		busySkew = float64(busyMax) * float64(len(busy)) / float64(busyTotal)
	}
	var workTotal, workMax int64
	for _, snap := range c.WorkByShard() {
		var sum int64
		snap.Each(func(_ string, v int64) { sum += v })
		workTotal += sum
		if sum > workMax {
			workMax = sum
		}
	}
	if workTotal > 0 {
		workSkew = float64(workMax) * float64(c.Shards()) / float64(workTotal)
	}
	return busySkew, workSkew, straggler
}

// recordShard emits the bench record for one (size, shard count) cell.
func recordShard(cfg Config, size, shards int, run *AlgoRun, busySkew, workSkew float64) {
	if cfg.Rec == nil {
		return
	}
	cfg.Rec.Add(bench.Record{
		Experiment: "shard",
		Family:     Gaode.String(),
		Label:      fmt.Sprintf("shards=%d", shards),
		Size:       size,
		Algorithm:  run.Algo.String(),
		Queries:    run.Attempted,
		Completed:  run.Completed(),
		TimedOut:   run.TimedOut,
		AvgSim:     run.AvgSim(),
		Latency:    bench.LatencyOf(run.LatenciesMS()),
		Work:       bench.WorkMap(run.Work),
		Gauges: map[string]float64{
			"busy_skew": busySkew,
			"work_skew": workSkew,
		},
		Mem: bench.Mem{
			AllocBytes:     run.AllocBytes,
			Mallocs:        run.Mallocs,
			HeapDeltaBytes: run.HeapDeltaBytes,
		},
	})
}
