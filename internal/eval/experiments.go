// Experiment drivers: one function per paper table / figure (see the
// experiment index in DESIGN.md). Each driver generates its datasets and
// query sets, runs the algorithms under a time budget, and prints a
// paper-style table to the supplied writer. cmd/seqbench and the root
// benchmark suite are thin wrappers over these functions.
package eval

import (
	"context"
	"fmt"
	"io"
	"math"
	"text/tabwriter"
	"time"

	"spatialseq/internal/bench"
	"spatialseq/internal/core"
	"spatialseq/internal/dataset"
	"spatialseq/internal/query"
	"spatialseq/internal/synth"
	"spatialseq/internal/vectormath"
	"spatialseq/internal/workload"
)

// Family selects which of the paper's two corpora a driver emulates.
type Family int

const (
	// Yelp emulates the Yelp Open Dataset (small extent, 1395 categories).
	Yelp Family = iota
	// Gaode emulates the Gaode POI dump (metropolitan extent, 20 categories).
	Gaode
)

// String implements fmt.Stringer.
func (f Family) String() string {
	if f == Yelp {
		return "Yelp"
	}
	return "Gaode"
}

// Config bundles the knobs shared by all experiment drivers. The defaults
// returned by DefaultConfig keep every driver laptop-friendly; raise Sizes
// and Budget to approach the paper's scale.
type Config struct {
	// QueryCount is the number of queries per measurement (paper: 100).
	QueryCount int
	// Budget is the total time allowed per (algorithm, dataset) cell;
	// exceeding it prints the paper's ">budget" marker.
	Budget time.Duration
	// Seed drives dataset and workload generation.
	Seed int64
	// Sizes are the dataset sizes of the scaling experiments.
	Sizes []int
	// M is the example tuple size (paper default 3).
	M int
	// Params are the query parameters (paper defaults via query.DefaultParams).
	Params query.Params
	// Rec, when non-nil, receives one machine-readable bench.Record per
	// (experiment, family, label, size, algorithm) measurement in
	// addition to the printed tables (`seqbench -json`).
	Rec *bench.Recorder
	// Capture is the flight-recorder capture file the replay experiment
	// re-runs (`seqbench -exp replay -capture <file>`).
	Capture string
}

// DefaultConfig returns laptop-scale settings that preserve the paper's
// comparative shape.
func DefaultConfig() Config {
	return Config{
		QueryCount: 20,
		Budget:     20 * time.Second,
		Seed:       1,
		Sizes:      []int{1000, 5000, 10000, 30000},
		M:          3,
		Params:     query.DefaultParams(),
	}
}

// familyDataset builds the synthetic corpus for family f at size n.
func familyDataset(f Family, n int, seed int64) (*dataset.Dataset, error) {
	if f == Yelp {
		return synth.Generate(synth.YelpLike(n, seed))
	}
	return synth.Generate(synth.GaodeLike(n, seed))
}

// familyWorkload mirrors the paper's query construction: random draws on
// Yelp's small extent, distance-bounded draws on Gaode's large extent.
func familyWorkload(f Family, cfg Config) workload.Config {
	wc := workload.Config{
		Count:      cfg.QueryCount,
		M:          cfg.M,
		Params:     cfg.Params,
		Variant:    query.CSEQ,
		AttrJitter: 0.1, // users state desired attributes, not exact copies
		LocJitter:  0.3, // users click approximate map positions
		Seed:       cfg.Seed + 1000,
	}
	if f == Gaode {
		wc.Mode = workload.DistanceBounded
		wc.Scale = 10 // kilometres on the 400 km extent
		wc.AttrJitter = 0.1
		wc.LocJitter = 1.0
	}
	return wc
}

func fmtTime(r *AlgoRun, budget time.Duration) string {
	if r.Err != nil {
		// engine failure, not slowness: render distinctly from ">budget"
		if r.Completed() == 0 {
			return "error"
		}
		return fmt.Sprintf("%.3fs!", r.MeanTime().Seconds()) // partial: aborted on error
	}
	if r.TimedOut && r.Completed() == 0 {
		return fmt.Sprintf(">%s", budget)
	}
	suffix := ""
	if r.TimedOut {
		suffix = "*" // partial: mean over the completed prefix
	}
	return fmt.Sprintf("%.3fs%s", r.MeanTime().Seconds(), suffix)
}

// fmtPctl renders a nearest-rank latency percentile over completed
// queries, "-" when none completed.
func fmtPctl(r *AlgoRun, p float64) string {
	if r.Completed() == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3fs", r.Percentile(p).Seconds())
}

func fmtSpeedup(base, fast *AlgoRun, budget time.Duration) string {
	if fast.Completed() == 0 {
		return "-"
	}
	if base.Completed() == 0 {
		// the baseline burned its whole budget on one unfinished query,
		// so the budget itself lower-bounds its per-query cost
		return fmt.Sprintf(">%.0fx", float64(budget)/math.Max(float64(fast.MeanTime()), 1))
	}
	return fmt.Sprintf("%.1fx", Speedup(base, fast))
}

// Table2 reproduces Table II for one family: per dataset size, the mean
// per-query cost of DFS-Prune, HSP and LORA, plus LORA's MAE against the
// exact results and its speedup over DFS-Prune.
func Table2(ctx context.Context, w io.Writer, f Family, cfg Config) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	rp := &report{}
	rp.printf(w, "Table II (%s-like): per-query cost and LORA accuracy\n", f)
	rp.println(tw, "#POIs\tDFS-Prune\tHSP\tLORA\tLORA p99\tLORA MAE\tLORA Speedup")
	for _, n := range cfg.Sizes {
		ds, err := familyDataset(f, n, cfg.Seed)
		if err != nil {
			return err
		}
		queries, err := workload.Generate(ds, familyWorkload(f, cfg))
		if err != nil {
			return err
		}
		eng := core.NewEngine(ds)
		dfs := RunQueries(ctx, eng, queries, core.DFSPrune, core.Options{}, cfg.Budget)
		hsp := RunQueries(ctx, eng, queries, core.HSP, core.Options{}, cfg.Budget)
		lora := RunQueries(ctx, eng, queries, core.LORA, core.Options{}, cfg.Budget)
		mae := "-"
		var loraErrs *vectormath.Stats
		if hsp.Completed() > 0 && lora.Completed() > 0 {
			st := ErrorStats(hsp, lora)
			loraErrs = &st
			mae = fmt.Sprintf("%.5f", st.Mean)
		}
		recordRun(cfg, "table2", f, "", n, dfs, nil)
		recordRun(cfg, "table2", f, "", n, hsp, nil)
		recordRun(cfg, "table2", f, "", n, lora, loraErrs)
		rp.printf(tw, "%d\t%s\t%s\t%s\t%s\t%s\t%s\n",
			n, fmtTime(dfs, cfg.Budget), fmtTime(hsp, cfg.Budget), fmtTime(lora, cfg.Budget),
			fmtPctl(lora, 99), mae, fmtSpeedup(dfs, lora, cfg.Budget))
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return rp.flush(tw)
}

// Table3 reproduces Table III: the STD and MAX of LORA's similarity errors
// against the exact results, per dataset size.
func Table3(ctx context.Context, w io.Writer, f Family, cfg Config) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	rp := &report{}
	rp.printf(w, "Table III (%s-like): LORA worst-case error statistics\n", f)
	rp.println(tw, "#POIs\tMAE\tSTD\tMAX")
	for _, n := range cfg.Sizes {
		ds, err := familyDataset(f, n, cfg.Seed)
		if err != nil {
			return err
		}
		queries, err := workload.Generate(ds, familyWorkload(f, cfg))
		if err != nil {
			return err
		}
		eng := core.NewEngine(ds)
		hsp := RunQueries(ctx, eng, queries, core.HSP, core.Options{}, cfg.Budget)
		lora := RunQueries(ctx, eng, queries, core.LORA, core.Options{}, cfg.Budget)
		recordRun(cfg, "table3", f, "", n, hsp, nil)
		if hsp.Completed() == 0 || lora.Completed() == 0 {
			recordRun(cfg, "table3", f, "", n, lora, nil)
			rp.printf(tw, "%d\t-\t-\t-\n", n)
			continue
		}
		st := ErrorStats(hsp, lora)
		recordRun(cfg, "table3", f, "", n, lora, &st)
		rp.printf(tw, "%d\t%.5f\t%.5f\t%.5f\n", n, st.Mean, st.Std, st.Max)
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return rp.flush(tw)
}

// sweepRow measures all three algorithms on one query set.
type sweepRow struct {
	label string
	dfs   *AlgoRun
	hsp   *AlgoRun
	lora  *AlgoRun
}

func printSweep(w io.Writer, title string, rows []sweepRow, budget time.Duration) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	rp := &report{}
	rp.println(w, title)
	rp.println(tw, "param\tDFS-Prune t\tHSP t\tLORA t\tDFS-Prune sim\tHSP sim\tLORA sim")
	for _, r := range rows {
		rp.printf(tw, "%s\t%s\t%s\t%s\t%.4f\t%.4f\t%.4f\n",
			r.label, fmtTime(r.dfs, budget), fmtTime(r.hsp, budget), fmtTime(r.lora, budget),
			r.dfs.AvgSim(), r.hsp.AvgSim(), r.lora.AvgSim())
	}
	return rp.flush(tw)
}

// runThree executes the three algorithms on one engine + query set.
func runThree(ctx context.Context, eng *core.Engine, queries []*query.Query, cfg Config) sweepRow {
	return sweepRow{
		dfs:  RunQueries(ctx, eng, queries, core.DFSPrune, core.Options{}, cfg.Budget),
		hsp:  RunQueries(ctx, eng, queries, core.HSP, core.Options{}, cfg.Budget),
		lora: RunQueries(ctx, eng, queries, core.LORA, core.Options{}, cfg.Budget),
	}
}

// recordSweepRow appends bench records for all three algorithms of one
// sweep row, labeled by the row's sweep point.
func recordSweepRow(cfg Config, exp string, f Family, size int, r sweepRow) {
	recordRun(cfg, exp, f, r.label, size, r.dfs, nil)
	recordRun(cfg, exp, f, r.label, size, r.hsp, nil)
	recordRun(cfg, exp, f, r.label, size, r.lora, nil)
}

// Fig9GridD reproduces Fig. 9(a.*): LORA's cost and similarity as the grid
// resolution D grows, with HSP and DFS-Prune as flat exact references.
func Fig9GridD(ctx context.Context, w io.Writer, f Family, n int, cfg Config, ds []int) error {
	data, err := familyDataset(f, n, cfg.Seed)
	if err != nil {
		return err
	}
	queries, err := workload.Generate(data, familyWorkload(f, cfg))
	if err != nil {
		return err
	}
	eng := core.NewEngine(data)
	dfs := RunQueries(ctx, eng, queries, core.DFSPrune, core.Options{}, cfg.Budget)
	hsp := RunQueries(ctx, eng, queries, core.HSP, core.Options{}, cfg.Budget)
	recordRun(cfg, "fig9-d", f, "", n, dfs, nil)
	recordRun(cfg, "fig9-d", f, "", n, hsp, nil)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	rp := &report{}
	rp.printf(w, "Fig 9(a) (%s-like, %d POIs): grid resolution sweep\n", f, n)
	rp.printf(w, "references: DFS-Prune %s (sim %.4f), HSP %s (sim %.4f)\n",
		fmtTime(dfs, cfg.Budget), dfs.AvgSim(), fmtTime(hsp, cfg.Budget), hsp.AvgSim())
	rp.println(tw, "D\tLORA t\tLORA sim")
	for _, d := range ds {
		qcopy := make([]*query.Query, len(queries))
		for i, q := range queries {
			qq := *q
			qq.Params.GridD = d
			qcopy[i] = &qq
		}
		lora := RunQueries(ctx, eng, qcopy, core.LORA, core.Options{}, cfg.Budget)
		recordRun(cfg, "fig9-d", f, fmt.Sprintf("D=%d", d), n, lora, nil)
		rp.printf(tw, "%d\t%s\t%.4f\n", d, fmtTime(lora, cfg.Budget), lora.AvgSim())
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return rp.flush(tw)
}

// ParamSweep covers Fig. 9(c) alpha, Fig. 9(d) beta, and the technical
// report's k and m sweeps: it varies one parameter and reruns all three
// algorithms.
type ParamKind int

const (
	SweepAlpha ParamKind = iota
	SweepBeta
	SweepK
	SweepM
)

func (p ParamKind) String() string {
	switch p {
	case SweepAlpha:
		return "alpha"
	case SweepBeta:
		return "beta"
	case SweepK:
		return "k"
	case SweepM:
		return "m"
	default:
		return "?"
	}
}

// Fig9Param reproduces one parameter sweep panel of Fig. 9.
func Fig9Param(ctx context.Context, w io.Writer, f Family, n int, cfg Config, kind ParamKind, values []float64) error {
	data, err := familyDataset(f, n, cfg.Seed)
	if err != nil {
		return err
	}
	eng := core.NewEngine(data)
	var rows []sweepRow
	for _, v := range values {
		c := cfg
		switch kind {
		case SweepAlpha:
			c.Params.Alpha = v
		case SweepBeta:
			c.Params.Beta = v
		case SweepK:
			c.Params.K = int(v)
		case SweepM:
			c.M = int(v)
		}
		queries, err := workload.Generate(data, familyWorkload(f, c))
		if err != nil {
			return err
		}
		row := runThree(ctx, eng, queries, c)
		row.label = fmt.Sprintf("%s=%g", kind, v)
		recordSweepRow(cfg, fmt.Sprintf("fig9-%s", kind), f, n, row)
		rows = append(rows, row)
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return printSweep(w, fmt.Sprintf("Fig 9 (%s-like, %d POIs): %s sweep", f, n, kind), rows, cfg.Budget)
}

// Fig9Scale reproduces Fig. 9(f.*): performance versus the example scale
// ||V_t*||.
func Fig9Scale(ctx context.Context, w io.Writer, f Family, n int, cfg Config, targets []float64) error {
	data, err := familyDataset(f, n, cfg.Seed)
	if err != nil {
		return err
	}
	eng := core.NewEngine(data)
	sets, err := workload.ScaledExamples(data, cfg.QueryCount, cfg.M, cfg.Params, targets, cfg.Seed+2000)
	if err != nil {
		return err
	}
	var rows []sweepRow
	for _, target := range targets {
		row := runThree(ctx, eng, sets[target], cfg)
		row.label = fmt.Sprintf("scale=%g", target)
		recordSweepRow(cfg, "fig9-scale", f, n, row)
		rows = append(rows, row)
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return printSweep(w, fmt.Sprintf("Fig 9(f) (%s-like, %d POIs): example scale sweep", f, n), rows, cfg.Budget)
}

// Fig10 reproduces the SEQ frontier: with beta=inf, LORA's (time,
// similarity) trade-off across D in [1,10] against the exact DFS-Prune
// reference, per dataset size.
func Fig10(ctx context.Context, w io.Writer, cfg Config, sizes []int, ds []int) error {
	for _, n := range sizes {
		data, err := familyDataset(Gaode, n, cfg.Seed)
		if err != nil {
			return err
		}
		wc := familyWorkload(Gaode, cfg)
		wc.Variant = query.SEQ
		queries, err := workload.Generate(data, wc)
		if err != nil {
			return err
		}
		eng := core.NewEngine(data)
		dfs := RunQueries(ctx, eng, queries, core.DFSPrune, core.Options{}, cfg.Budget)
		recordRun(cfg, "fig10", Gaode, "", n, dfs, nil)
		rp := &report{}
		rp.printf(w, "Fig 10 (Gaode-like, %d POIs, SEQ): DFS-Prune %s (sim %.4f)\n",
			n, fmtTime(dfs, cfg.Budget), dfs.AvgSim())
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		rp.println(tw, "D\tLORA t\tLORA sim")
		for _, d := range ds {
			qcopy := make([]*query.Query, len(queries))
			for i, q := range queries {
				qq := *q
				qq.Params.GridD = d
				qcopy[i] = &qq
			}
			lora := RunQueries(ctx, eng, qcopy, core.LORA, core.Options{}, cfg.Budget)
			recordRun(cfg, "fig10", Gaode, fmt.Sprintf("D=%d", d), n, lora, nil)
			rp.printf(tw, "%d\t%s\t%.4f\n", d, fmtTime(lora, cfg.Budget), lora.AvgSim())
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if err := rp.flush(tw); err != nil {
			return err
		}
	}
	return nil
}

// Fig11 reproduces the CSEQ-FP comparison: size-5 examples with two pinned
// points, all three algorithms, per dataset size. An extra LORA+A3 column
// shows the cell-norm filter taming the cell-tuple blowup at m=5.
func Fig11(ctx context.Context, w io.Writer, cfg Config, sizes []int) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	rp := &report{}
	rp.println(w, "Fig 11 (Gaode-like, CSEQ-FP m=5, two pins)")
	rp.println(tw, "n\tDFS-Prune t\tHSP t\tLORA t\tLORA+A3 t\tDFS sim\tHSP sim\tLORA sim\tLORA+A3 sim")
	for _, n := range sizes {
		data, err := familyDataset(Gaode, n, cfg.Seed)
		if err != nil {
			return err
		}
		c := cfg
		c.M = 5
		wc := familyWorkload(Gaode, c)
		wc.Variant = query.CSEQFP
		wc.FixedDims = []int{0, 2}
		queries, err := workload.Generate(data, wc)
		if err != nil {
			return err
		}
		eng := core.NewEngine(data)
		row := runThree(ctx, eng, queries, c)
		loraA3 := RunQueries(ctx, eng, queries, core.LORA, loraCellNorm(), cfg.Budget)
		recordSweepRow(c, "fig11", Gaode, n, row)
		recordRun(c, "fig11", Gaode, "A3", n, loraA3, nil)
		rp.printf(tw, "%d\t%s\t%s\t%s\t%s\t%.4f\t%.4f\t%.4f\t%.4f\n",
			n, fmtTime(row.dfs, cfg.Budget), fmtTime(row.hsp, cfg.Budget),
			fmtTime(row.lora, cfg.Budget), fmtTime(loraA3, cfg.Budget),
			row.dfs.AvgSim(), row.hsp.AvgSim(), row.lora.AvgSim(), loraA3.AvgSim())
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return rp.flush(tw)
}

// AblationPartition isolates HSP's partitioning gain (A1): HSP with and
// without hierarchical space partitioning.
func AblationPartition(ctx context.Context, w io.Writer, f Family, n int, cfg Config) error {
	data, err := familyDataset(f, n, cfg.Seed)
	if err != nil {
		return err
	}
	queries, err := workload.Generate(data, familyWorkload(f, cfg))
	if err != nil {
		return err
	}
	eng := core.NewEngine(data)
	on := RunQueries(ctx, eng, queries, core.HSP, core.Options{}, cfg.Budget)
	off := RunQueries(ctx, eng, queries, core.HSP, core.Options{HSP: hspNoPartition()}, cfg.Budget)
	recordRun(cfg, "ablation-partition", f, "partitioned", n, on, nil)
	recordRun(cfg, "ablation-partition", f, "whole-space", n, off, nil)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	rp := &report{}
	rp.printf(w, "Ablation A1 (%s-like, %d POIs): HSP space partitioning\n", f, n)
	rp.println(tw, "variant\ttime\tsim")
	rp.printf(tw, "partitioned\t%s\t%.4f\n", fmtTime(on, cfg.Budget), on.AvgSim())
	rp.printf(tw, "whole-space\t%s\t%.4f\n", fmtTime(off, cfg.Budget), off.AvgSim())
	return rp.flush(tw)
}

// AblationBounds isolates HSP's refined bounds (A4).
func AblationBounds(ctx context.Context, w io.Writer, f Family, n int, cfg Config) error {
	data, err := familyDataset(f, n, cfg.Seed)
	if err != nil {
		return err
	}
	queries, err := workload.Generate(data, familyWorkload(f, cfg))
	if err != nil {
		return err
	}
	eng := core.NewEngine(data)
	refined := RunQueries(ctx, eng, queries, core.HSP, core.Options{}, cfg.Budget)
	loose := RunQueries(ctx, eng, queries, core.HSP, core.Options{HSP: hspLooseBounds()}, cfg.Budget)
	recordRun(cfg, "ablation-bounds", f, "refined", n, refined, nil)
	recordRun(cfg, "ablation-bounds", f, "loose", n, loose, nil)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	rp := &report{}
	rp.printf(w, "Ablation A4 (%s-like, %d POIs): HSP bound refinement\n", f, n)
	rp.println(tw, "variant\ttime\tsim")
	rp.printf(tw, "refined (Eq6+Eq9)\t%s\t%.4f\n", fmtTime(refined, cfg.Budget), refined.AvgSim())
	rp.printf(tw, "loose (DFS-Prune)\t%s\t%.4f\n", fmtTime(loose, cfg.Budget), loose.AvgSim())
	return rp.flush(tw)
}

// AblationSampling compares query-dependent against random sampling across
// sampling budgets (A2, the Fig. 4 motivation).
func AblationSampling(ctx context.Context, w io.Writer, f Family, n int, cfg Config, xis []int) error {
	data, err := familyDataset(f, n, cfg.Seed)
	if err != nil {
		return err
	}
	eng := core.NewEngine(data)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	rp := &report{}
	rp.printf(w, "Ablation A2 (%s-like, %d POIs): sampling strategy\n", f, n)
	rp.println(tw, "xi\tquery-dependent sim\trandom sim\tquery-dependent t\trandom t")
	for _, xi := range xis {
		c := cfg
		c.Params.Xi = xi
		queries, err := workload.Generate(data, familyWorkload(f, c))
		if err != nil {
			return err
		}
		qd := RunQueries(ctx, eng, queries, core.LORA, core.Options{}, cfg.Budget)
		rnd := RunQueries(ctx, eng, queries, core.LORA, loraRandom(cfg.Seed), cfg.Budget)
		recordRun(cfg, "ablation-sampling", f, fmt.Sprintf("xi=%d/query-dependent", xi), n, qd, nil)
		recordRun(cfg, "ablation-sampling", f, fmt.Sprintf("xi=%d/random", xi), n, rnd, nil)
		rp.printf(tw, "%d\t%.4f\t%.4f\t%s\t%s\n",
			xi, qd.AvgSim(), rnd.AvgSim(), fmtTime(qd, cfg.Budget), fmtTime(rnd, cfg.Budget))
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return rp.flush(tw)
}

// AblationSortedBreak measures the sorted-break extension (A5): abandoning
// a whole candidate level once the monotone attribute bound fails, instead
// of only the failing subtree as the paper's algorithms do.
func AblationSortedBreak(ctx context.Context, w io.Writer, f Family, n int, cfg Config) error {
	data, err := familyDataset(f, n, cfg.Seed)
	if err != nil {
		return err
	}
	queries, err := workload.Generate(data, familyWorkload(f, cfg))
	if err != nil {
		return err
	}
	eng := core.NewEngine(data)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	rp := &report{}
	rp.printf(w, "Ablation A5 (%s-like, %d POIs): sorted-break extension\n", f, n)
	rp.println(tw, "variant\ttime\tsim")
	for _, row := range []struct {
		label string
		algo  core.Algorithm
		opt   core.Options
	}{
		{"HSP paper (subtree prune)", core.HSP, core.Options{}},
		{"HSP + sorted break", core.HSP, hspSortedBreak()},
		{"LORA paper (subtree prune)", core.LORA, core.Options{}},
		{"LORA + sorted break", core.LORA, loraSortedBreak()},
	} {
		r := RunQueries(ctx, eng, queries, row.algo, row.opt, cfg.Budget)
		recordRun(cfg, "ablation-break", f, row.label, n, r, nil)
		rp.printf(tw, "%s\t%s\t%.4f\n", row.label, fmtTime(r, cfg.Budget), r.AvgSim())
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return rp.flush(tw)
}

// AblationCellNorm measures the optional cell-level norm filter (A3).
func AblationCellNorm(ctx context.Context, w io.Writer, f Family, n int, cfg Config) error {
	data, err := familyDataset(f, n, cfg.Seed)
	if err != nil {
		return err
	}
	queries, err := workload.Generate(data, familyWorkload(f, cfg))
	if err != nil {
		return err
	}
	eng := core.NewEngine(data)
	off := RunQueries(ctx, eng, queries, core.LORA, core.Options{}, cfg.Budget)
	on := RunQueries(ctx, eng, queries, core.LORA, loraCellNorm(), cfg.Budget)
	recordRun(cfg, "ablation-cellnorm", f, "off", n, off, nil)
	recordRun(cfg, "ablation-cellnorm", f, "on", n, on, nil)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	rp := &report{}
	rp.printf(w, "Ablation A3 (%s-like, %d POIs): LORA cell-level norm filter\n", f, n)
	rp.println(tw, "variant\ttime\tsim")
	rp.printf(tw, "off (paper LORA)\t%s\t%.4f\n", fmtTime(off, cfg.Budget), off.AvgSim())
	rp.printf(tw, "on\t%s\t%.4f\n", fmtTime(on, cfg.Budget), on.AvgSim())
	return rp.flush(tw)
}
