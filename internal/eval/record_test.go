package eval

import (
	"context"
	"strings"
	"testing"
	"time"

	"spatialseq/internal/bench"
	"spatialseq/internal/core"
	"spatialseq/internal/query"
)

func TestRunQueriesErrorDistinctFromTimeout(t *testing.T) {
	eng, qs := smallSetup(t, 150)
	bad := *qs[0]
	bad.Params.K = -1 // fails validation deterministically (0 would be defaulted)
	run := RunQueries(context.Background(), eng, []*query.Query{&bad}, core.HSP, core.Options{}, 0)
	if run.Err == nil {
		t.Fatal("invalid query should set Err")
	}
	if run.TimedOut {
		t.Error("engine error must not masquerade as a timeout")
	}
	if got := fmtTime(run, time.Second); got != "error" {
		t.Errorf("fmtTime on erred run = %q, want \"error\"", got)
	}
	// A timed-out run renders as >budget, not error.
	slow := RunQueries(context.Background(), eng, qs, core.DFSPrune, core.Options{}, time.Nanosecond)
	if slow.Err != nil {
		t.Errorf("budget expiry must not set Err: %v", slow.Err)
	}
	if !slow.TimedOut {
		t.Error("nanosecond budget should time out")
	}
	if got := fmtTime(slow, time.Nanosecond); !strings.HasPrefix(got, ">") {
		t.Errorf("fmtTime on timed-out run = %q, want >budget", got)
	}
}

func TestRunQueriesErrorKeepsCompletedPrefix(t *testing.T) {
	eng, qs := smallSetup(t, 150)
	bad := *qs[1]
	bad.Params.K = -1
	mixed := []*query.Query{qs[0], &bad, qs[2]}
	run := RunQueries(context.Background(), eng, mixed, core.HSP, core.Options{}, 0)
	if run.Err == nil || run.Completed() != 1 {
		t.Fatalf("want 1 completed then error, got %d completed, err %v", run.Completed(), run.Err)
	}
	if run.Attempted != 3 {
		t.Errorf("Attempted = %d, want 3", run.Attempted)
	}
	if got := fmtTime(run, time.Second); !strings.HasSuffix(got, "!") {
		t.Errorf("fmtTime on partial erred run = %q, want ! suffix", got)
	}
}

func TestRunQueriesCollectsWorkAndMem(t *testing.T) {
	eng, qs := smallSetup(t, 300)
	run := RunQueries(context.Background(), eng, qs, core.HSP, core.Options{}, 0)
	if run.Work.Candidates == 0 || run.Work.Subspaces == 0 {
		t.Errorf("work counters not collected: %+v", run.Work)
	}
	if run.AllocBytes <= 0 || run.Mallocs <= 0 {
		t.Errorf("allocation deltas not collected: alloc=%d mallocs=%d", run.AllocBytes, run.Mallocs)
	}
}

func TestAlgoRunPercentile(t *testing.T) {
	run := &AlgoRun{Runs: []QueryRun{
		{Elapsed: 10 * time.Millisecond},
		{Elapsed: 20 * time.Millisecond},
		{Elapsed: 30 * time.Millisecond},
		{Elapsed: 40 * time.Millisecond},
		{Elapsed: 500 * time.Millisecond},
	}}
	if got := run.Percentile(50); got != 30*time.Millisecond {
		t.Errorf("p50 = %v, want 30ms", got)
	}
	if got := run.Percentile(100); got != 500*time.Millisecond {
		t.Errorf("p100 = %v, want 500ms", got)
	}
	empty := &AlgoRun{}
	if got := empty.Percentile(99); got != 0 {
		t.Errorf("empty p99 = %v, want 0", got)
	}
	ms := run.LatenciesMS()
	if len(ms) != 5 || ms[0] != 10 || ms[4] != 500 {
		t.Errorf("LatenciesMS = %v", ms)
	}
}

// TestRecordPipelineDeterministic runs Table2 twice with the same seed
// and checks that everything except wall time and allocation noise is
// identical — the property benchdiff's work-counter gate relies on.
func TestRecordPipelineDeterministic(t *testing.T) {
	runOnce := func() []bench.Record {
		cfg := DefaultConfig()
		cfg.Sizes = []int{300}
		cfg.QueryCount = 3
		cfg.Budget = 30 * time.Second
		cfg.Rec = bench.NewRecorder(bench.Env{Seed: cfg.Seed})
		var sb strings.Builder
		if err := Table2(context.Background(), &sb, Gaode, cfg); err != nil {
			t.Fatal(err)
		}
		return cfg.Rec.File().Records
	}
	a, b := runOnce(), runOnce()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("want 3 records per run (dfs, hsp, lora), got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Errorf("record %d key drift: %q vs %q", i, a[i].Key(), b[i].Key())
		}
		if a[i].Completed != b[i].Completed || a[i].AvgSim != b[i].AvgSim {
			t.Errorf("record %s: completed/sim drift across identical runs", a[i])
		}
		for k, v := range a[i].Work {
			if b[i].Work[k] != v {
				t.Errorf("record %s: counter %s drifted %d -> %d across identical seeds", a[i], k, v, b[i].Work[k])
			}
		}
		if a[i].Latency.P50MS <= 0 || a[i].Latency.P99MS < a[i].Latency.P50MS {
			t.Errorf("record %s: implausible percentiles %+v", a[i], a[i].Latency)
		}
	}
	// The LORA record carries error stats against the exact reference.
	last := a[2]
	if last.Algorithm != "lora" || last.Errors == nil {
		t.Errorf("lora record should carry error stats: %+v", last)
	}
}

func TestRecordRunNilSinkIsNoOp(t *testing.T) {
	cfg := DefaultConfig() // Rec == nil
	run := &AlgoRun{Algo: core.HSP}
	recordRun(cfg, "table2", Gaode, "", 100, run, nil) // must not panic
}
