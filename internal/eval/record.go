package eval

import (
	"spatialseq/internal/bench"
	"spatialseq/internal/vectormath"
)

// recordRun converts one AlgoRun into a bench.Record and appends it to
// the config's sink, when one is attached. label distinguishes rows
// within an experiment (sweep point, ablation variant); es carries the
// error statistics against the exact reference when they were computed.
// All experiment drivers funnel through here, so the BENCH files stay
// uniform regardless of which table produced a record.
func recordRun(cfg Config, exp string, f Family, label string, size int, r *AlgoRun, es *vectormath.Stats) {
	if cfg.Rec == nil {
		return
	}
	rec := bench.Record{
		Experiment: exp,
		Family:     f.String(),
		Label:      label,
		Size:       size,
		Algorithm:  r.Algo.String(),
		Queries:    r.Attempted,
		Completed:  r.Completed(),
		TimedOut:   r.TimedOut,
		AvgSim:     r.AvgSim(),
		Latency:    bench.LatencyOf(r.LatenciesMS()),
		Work:       bench.WorkMap(r.Work),
		Mem: bench.Mem{
			AllocBytes:     r.AllocBytes,
			Mallocs:        r.Mallocs,
			HeapDeltaBytes: r.HeapDeltaBytes,
		},
	}
	if r.Err != nil {
		rec.Error = r.Err.Error()
	}
	if es != nil {
		rec.Errors = &bench.ErrorStats{MAE: es.Mean, STD: es.Std, MAX: es.Max}
	}
	cfg.Rec.Add(rec)
}
