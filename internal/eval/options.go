package eval

import (
	"spatialseq/internal/algo/hsp"
	"spatialseq/internal/algo/lora"
	"spatialseq/internal/core"
)

// Ablation option presets (kept here so the experiment drivers read
// declaratively).

func hspNoPartition() hsp.Options { return hsp.Options{DisablePartition: true} }

func hspLooseBounds() hsp.Options { return hsp.Options{LooseBounds: true} }

func loraRandom(seed int64) core.Options {
	return core.Options{LORA: lora.Options{RandomSample: true, RandomSeed: seed}}
}

func loraCellNorm() core.Options {
	return core.Options{LORA: lora.Options{PruneCellNorm: true}}
}

func hspSortedBreak() core.Options {
	return core.Options{HSP: hsp.Options{SortedBreak: true}}
}

func loraSortedBreak() core.Options {
	return core.Options{LORA: lora.Options{SortedBreak: true}}
}
