package eval

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"spatialseq/internal/core"
	"spatialseq/internal/obs/flight"
	"spatialseq/internal/synth"
	"spatialseq/internal/workload"
)

// buildCapture runs nq queries against a small Gaode-like corpus and
// returns a capture file as the flight recorder would export it.
func buildCapture(t *testing.T, nq int) flight.CaptureFile {
	t.Helper()
	const n, seed = 800, 5
	ds, err := synth.Generate(synth.GaodeLike(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.QueryCount = nq
	cfg.Seed = seed
	queries, err := workload.Generate(ds, familyWorkload(Gaode, cfg))
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(ds)
	cf := flight.CaptureFile{
		Schema:  flight.CaptureSchemaVersion,
		Dataset: flight.DatasetInfo{Kind: "synth", Family: "gaode", N: n, Seed: seed},
	}
	for i, q := range queries {
		res, err := eng.Search(context.Background(), q, core.HSP, core.Options{CollectStats: true})
		if err != nil {
			t.Fatal(err)
		}
		cf.Records = append(cf.Records, flight.Record{
			Seq:       uint64(i + 1),
			RequestID: "test",
			ShardID:   flight.NoShard,
			LatencyNS: int64(res.Elapsed),
			Algorithm: res.Algorithm.String(),
			Variant:   q.Variant.String(),
			M:         int32(q.Example.M()),
			K:         int32(q.Params.K),
			Outcome:   flight.OutcomeOK,
			Work:      res.Stats,
			Capture:   core.CaptureQuery(ds, q, res.Algorithm),
		})
	}
	return cf
}

func writeCapture(t *testing.T, cf flight.CaptureFile) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "capture.json")
	if err := flight.WriteCaptureFile(path, cf); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReplayMatchesRecordedCounters(t *testing.T) {
	cf := buildCapture(t, 3)
	cfg := DefaultConfig()
	cfg.Capture = writeCapture(t, cf)
	var buf bytes.Buffer
	if err := Replay(context.Background(), &buf, cfg); err != nil {
		t.Fatalf("replay failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "replayed 3 queries, 0 work-counter mismatches") {
		t.Errorf("unexpected summary:\n%s", out)
	}
	if strings.Contains(out, "MISMATCH") {
		t.Errorf("mismatch row in output:\n%s", out)
	}
}

func TestReplayDetectsTamperedCounters(t *testing.T) {
	cf := buildCapture(t, 1)
	cf.Records[0].Work.Candidates += 7
	cfg := DefaultConfig()
	cfg.Capture = writeCapture(t, cf)
	var buf bytes.Buffer
	err := Replay(context.Background(), &buf, cfg)
	if err == nil {
		t.Fatalf("tampered capture replayed clean:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "MISMATCH") || !strings.Contains(buf.String(), "candidates") {
		t.Errorf("mismatch row should name the diverging counter:\n%s", buf.String())
	}
}

func TestReplayRejectsEmptyCapture(t *testing.T) {
	cf := buildCapture(t, 1)
	cf.Records[0].Capture = nil // context-only record
	cfg := DefaultConfig()
	cfg.Capture = writeCapture(t, cf)
	var buf bytes.Buffer
	if err := Replay(context.Background(), &buf, cfg); err == nil {
		t.Error("capture without replayable records accepted")
	}
	cfg.Capture = ""
	if err := Replay(context.Background(), &buf, cfg); err == nil {
		t.Error("missing -capture accepted")
	}
}
