package eval

import (
	"context"
	"errors"
	"fmt"
	"io"
	"slices"
	"text/tabwriter"
	"time"

	"spatialseq/internal/core"
	"spatialseq/internal/dataset"
	"spatialseq/internal/geo"
	"spatialseq/internal/obs/flight"
	"spatialseq/internal/query"
	"spatialseq/internal/stats"
	"spatialseq/internal/synth"
)

// Replay loads the capture file named by cfg.Capture, rebuilds its
// dataset from the recorded provenance, re-runs every record that
// carries a capture payload, and prints one row per query comparing
// recorded and replayed latency and work. It fails if the capture holds
// no replayable record or if any replayed query's work counters diverge
// from the recorded snapshot.
func Replay(ctx context.Context, w io.Writer, cfg Config) error {
	if cfg.Capture == "" {
		return errors.New("eval: replay needs a capture file (seqbench -capture)")
	}
	cf, err := flight.ReadCaptureFile(cfg.Capture)
	if err != nil {
		return err
	}
	ds, err := captureDataset(cf.Dataset)
	if err != nil {
		return err
	}
	eng := core.NewEngine(ds)
	idx := make(map[int64]int32, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		idx[ds.Object(i).ID] = int32(i)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	rp := &report{}
	rp.printf(w, "Replay of %s (%s)\n", cfg.Capture, describeDataset(cf.Dataset))
	rp.println(tw, "seq\trequest\talgorithm\tvariant\trecorded\treplayed\twork")
	replayed, mismatched := 0, 0
	for i, rec := range cf.Records {
		if rec.Capture == nil {
			continue
		}
		q, algo, err := rebuildQuery(ds, idx, rec.Capture)
		if err != nil {
			return fmt.Errorf("eval: record %d (seq %d): %w", i, rec.Seq, err)
		}
		res, err := eng.Search(ctx, q, algo, core.Options{CollectStats: true})
		if err != nil {
			return fmt.Errorf("eval: record %d (seq %d): replay failed: %w", i, rec.Seq, err)
		}
		replayed++
		verdict := "match"
		if res.Stats != rec.Work {
			mismatched++
			verdict = "MISMATCH: " + diffSnapshots(rec.Work, res.Stats)
		}
		rp.printf(tw, "%d\t%s\t%s\t%s\t%.3fms\t%.3fms\t%s\n",
			rec.Seq, rec.RequestID, algo, q.Variant,
			rec.LatencyMS(), float64(res.Elapsed)/float64(time.Millisecond), verdict)
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if err := rp.flush(tw); err != nil {
		return err
	}
	if replayed == 0 {
		return errors.New("eval: capture contains no replayable records (no slow query carried a capture payload)")
	}
	if _, err := fmt.Fprintf(w, "replayed %d queries, %d work-counter mismatches\n", replayed, mismatched); err != nil {
		return err
	}
	if mismatched > 0 {
		return fmt.Errorf("eval: %d of %d replayed queries diverged from the recorded work counters", mismatched, replayed)
	}
	return nil
}

// captureDataset rebuilds the dataset a capture was recorded against:
// synthetic corpora are regenerated from (family, n, seed), file-backed
// corpora are reloaded from the recorded path.
func captureDataset(info flight.DatasetInfo) (*dataset.Dataset, error) {
	switch info.Kind {
	case "synth":
		switch info.Family {
		case "yelp":
			return synth.Generate(synth.YelpLike(info.N, info.Seed))
		case "gaode":
			return synth.Generate(synth.GaodeLike(info.N, info.Seed))
		default:
			return nil, fmt.Errorf("eval: unknown synthetic family %q in capture", info.Family)
		}
	case "file":
		return dataset.ReadAnyFile(info.Path)
	default:
		return nil, fmt.Errorf("eval: unknown dataset kind %q in capture", info.Kind)
	}
}

func describeDataset(info flight.DatasetInfo) string {
	if info.Kind == "synth" {
		return fmt.Sprintf("synth %s n=%d seed=%d", info.Family, info.N, info.Seed)
	}
	return "file " + info.Path
}

// rebuildQuery turns a capture payload back into a runnable query:
// category names resolve to IDs, pinned object IDs to positions, and the
// recorded (post-Auto) algorithm is requested verbatim so the replay
// follows the same code path as the original execution.
func rebuildQuery(ds *dataset.Dataset, idx map[int64]int32, c *flight.Capture) (*query.Query, core.Algorithm, error) {
	variant, err := query.ParseVariant(c.Variant)
	if err != nil {
		return nil, 0, err
	}
	algo, err := core.ParseAlgorithm(c.Algorithm)
	if err != nil {
		return nil, 0, err
	}
	q := &query.Query{
		Variant: variant,
		Params:  query.Params{K: c.K, Alpha: c.Alpha, Beta: c.Beta, GridD: c.GridD, Xi: c.Xi},
	}
	for dim, cd := range c.Dims {
		cat, ok := ds.CategoryByName(cd.Category)
		if !ok {
			return nil, 0, fmt.Errorf("category %q not in dataset", cd.Category)
		}
		q.Example.Categories = append(q.Example.Categories, cat)
		q.Example.Locations = append(q.Example.Locations, geo.Point{X: cd.X, Y: cd.Y})
		q.Example.Attrs = append(q.Example.Attrs, slices.Clone(cd.Attrs))
		if cd.FixedID != nil {
			pos, ok := idx[*cd.FixedID]
			if !ok {
				return nil, 0, fmt.Errorf("pinned object id %d not in dataset", *cd.FixedID)
			}
			q.Example.Fixed = append(q.Example.Fixed, query.FixedPoint{Dim: dim, Obj: pos})
		}
	}
	if len(c.SkipPairs) > 0 {
		q.Example.SkipPairs = slices.Clone(c.SkipPairs)
	}
	return q, algo, nil
}

// diffSnapshots names the counters that differ between the recorded and
// the replayed work, recorded->replayed.
func diffSnapshots(want, got stats.Snapshot) string {
	wantVals := make(map[string]int64)
	want.Each(func(name string, v int64) { wantVals[name] = v })
	out := ""
	got.Each(func(name string, v int64) {
		if wv := wantVals[name]; wv != v {
			if out != "" {
				out += " "
			}
			out += fmt.Sprintf("%s %d->%d", name, wv, v)
		}
	})
	if out == "" {
		return "(fields differ outside named counters)"
	}
	return out
}
