package eval

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"spatialseq/internal/core"
	"spatialseq/internal/synth"
	"spatialseq/internal/workload"
)

// Scale10MSize is the POI count of the large-scale smoke experiment —
// the Gaode-like scale the paper targets and ROADMAP's north star names
// ("interactive latency on a 10M-POI Gaode-like dataset").
const Scale10MSize = 10_000_000

// Scale10M is the first experiment to actually exercise internal/synth
// at the 10M-POI Gaode-like scale: generate the corpus, build the
// engine, and answer cfg.QueryCount queries with the parallel
// (work-stealing) LORA path plus a budget-bounded parallel exact HSP
// attempt for reference. It fails when LORA cannot complete a single
// query — the load-and-answer smoke contract — while HSP is allowed to
// burn its budget (exact search at this scale is exactly what Auto
// routes away from). With cfg.Rec attached it emits "scale10m" records,
// the BENCH series that pins this scale's latency over time.
//
// The run needs several GB of memory and minutes of wall time, so it is
// reached only through `seqbench -exp scale10m` (excluded from -exp
// all) or the SEQ_SCALE10M-gated test.
func Scale10M(ctx context.Context, w io.Writer, cfg Config) error {
	n := Scale10MSize
	rp := &report{}
	start := time.Now()
	data, err := synth.Generate(synth.GaodeLike(n, cfg.Seed))
	if err != nil {
		return err
	}
	genDur := time.Since(start)
	queries, err := workload.Generate(data, familyWorkload(Gaode, cfg))
	if err != nil {
		return err
	}
	start = time.Now()
	eng := core.NewEngine(data)
	buildDur := time.Since(start)
	rp.printf(w, "Scale smoke (Gaode-like, %d POIs): generate %s, engine build %s, %d queries, budget %s/cell\n",
		n, genDur.Round(time.Millisecond), buildDur.Round(time.Millisecond), len(queries), cfg.Budget)

	// Parallelism -1 = one worker per CPU; the stealing scheduler splits
	// each subspace's candidate range across them.
	parallel := func() core.Options {
		var opt core.Options
		opt.HSP.Parallelism = -1
		opt.LORA.Parallelism = -1
		return opt
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	rp.println(tw, "algo\tcompleted\tmean\tp99\tsim")
	lora := RunQueries(ctx, eng, queries, core.LORA, parallel(), cfg.Budget)
	recordRun(cfg, "scale10m", Gaode, "", n, lora, nil)
	rp.printf(tw, "%s\t%d/%d\t%s\t%s\t%.4f\n", core.LORA, lora.Completed(), lora.Attempted,
		fmtTime(lora, cfg.Budget), fmtPctl(lora, 99), lora.AvgSim())
	if err := ctx.Err(); err != nil {
		return err
	}
	hsp := RunQueries(ctx, eng, queries, core.HSP, parallel(), cfg.Budget)
	recordRun(cfg, "scale10m", Gaode, "", n, hsp, nil)
	rp.printf(tw, "%s\t%d/%d\t%s\t%s\t%.4f\n", core.HSP, hsp.Completed(), hsp.Attempted,
		fmtTime(hsp, cfg.Budget), fmtPctl(hsp, 99), hsp.AvgSim())
	if err := rp.flush(tw); err != nil {
		return err
	}
	if lora.Err != nil {
		return fmt.Errorf("scale10m: LORA errored after %d queries: %w", lora.Completed(), lora.Err)
	}
	if lora.Completed() == 0 {
		return fmt.Errorf("scale10m: no LORA query completed within %s at %d POIs", cfg.Budget, n)
	}
	return nil
}
