package eval

import (
	"context"
	"os"
	"strings"
	"testing"
	"time"
)

// TestScale10M proves the 10M-POI Gaode-like corpus can be generated,
// indexed, and answered end to end. It needs several GB of memory and
// minutes of wall time, so it is double-gated: skipped in -short mode
// and unless SEQ_SCALE10M=1 is set (scripts/check.sh runs the full
// non-short test tree and must not pay for this on every verify).
//
//	SEQ_SCALE10M=1 go test -run TestScale10M -timeout 30m ./internal/eval/
func TestScale10M(t *testing.T) {
	if testing.Short() {
		t.Skip("10M-POI smoke skipped in -short mode")
	}
	if os.Getenv("SEQ_SCALE10M") == "" {
		t.Skip("10M-POI smoke skipped; set SEQ_SCALE10M=1 to run")
	}
	cfg := DefaultConfig()
	cfg.QueryCount = 3
	cfg.Budget = 5 * time.Minute
	var out strings.Builder
	if err := Scale10M(context.Background(), &out, cfg); err != nil {
		t.Fatalf("Scale10M: %v\noutput:\n%s", err, out.String())
	}
	t.Logf("\n%s", out.String())
}
