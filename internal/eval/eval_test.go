package eval

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"spatialseq/internal/core"
	"spatialseq/internal/query"
	"spatialseq/internal/testutil"
	"spatialseq/internal/workload"
)

func smallSetup(t *testing.T, n int) (*core.Engine, []*query.Query) {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	ds := testutil.RandDataset(rng, n, 3, 4, 100)
	qs, err := workload.Generate(ds, workload.Config{
		Count: 5, M: 3, Mode: workload.Random,
		Params: query.Params{K: 3, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10},
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return core.NewEngine(ds), qs
}

func TestRunQueriesCompletes(t *testing.T) {
	eng, qs := smallSetup(t, 200)
	run := RunQueries(context.Background(), eng, qs, core.HSP, core.Options{}, 0)
	if run.TimedOut {
		t.Error("unlimited budget must not time out")
	}
	if run.Completed() != len(qs) {
		t.Errorf("completed %d of %d", run.Completed(), len(qs))
	}
	if run.MeanTime() <= 0 {
		t.Error("mean time should be positive")
	}
	if s := run.AvgSim(); s <= 0 || s > 1 {
		t.Errorf("AvgSim = %g", s)
	}
}

func TestRunQueriesBudget(t *testing.T) {
	eng, qs := smallSetup(t, 3000)
	// an absurdly small budget must cut the run short
	run := RunQueries(context.Background(), eng, qs, core.DFSPrune, core.Options{}, time.Nanosecond)
	if !run.TimedOut {
		t.Error("nanosecond budget should time out")
	}
	if run.Completed() == len(qs) {
		t.Error("timed-out run should not complete everything")
	}
}

func TestRunQueriesEngineErrorUnderBudget(t *testing.T) {
	eng, qs := smallSetup(t, 200)
	// Corrupt the first query so Search fails validation. The budget is
	// generous: the failure must be classified as an engine error, not as
	// budget expiry (cancel() must not launder it into TimedOut).
	qs[0].Example.Categories[0] = 9999
	run := RunQueries(context.Background(), eng, qs, core.HSP, core.Options{}, time.Hour)
	if run.Err == nil {
		t.Fatal("invalid query must set Err")
	}
	if run.TimedOut {
		t.Error("engine error under a generous budget must not be reported as TimedOut")
	}
	if run.Completed() != 0 {
		t.Errorf("failure on the first query should retain an empty prefix, got %d", run.Completed())
	}
}

func TestRunQueriesDoesNotMutateCallerQueries(t *testing.T) {
	eng, qs := smallSetup(t, 150)
	before := qs[0].Params
	RunQueries(context.Background(), eng, qs, core.LORA, core.Options{}, 0)
	if qs[0].Params != before {
		t.Error("RunQueries must not normalize the caller's query in place")
	}
}

func TestErrorStatsZeroForExactVsItself(t *testing.T) {
	eng, qs := smallSetup(t, 200)
	a := RunQueries(context.Background(), eng, qs, core.HSP, core.Options{}, 0)
	b := RunQueries(context.Background(), eng, qs, core.HSP, core.Options{}, 0)
	st := ErrorStats(a, b)
	if st.Mean != 0 || st.Max != 0 {
		t.Errorf("exact vs itself: MAE=%g MAX=%g", st.Mean, st.Max)
	}
}

func TestErrorStatsLORA(t *testing.T) {
	eng, qs := smallSetup(t, 400)
	exact := RunQueries(context.Background(), eng, qs, core.HSP, core.Options{}, 0)
	approx := RunQueries(context.Background(), eng, qs, core.LORA, core.Options{}, 0)
	st := ErrorStats(exact, approx)
	if st.Mean < 0 || st.Max < st.Mean {
		t.Errorf("inconsistent stats: %+v", st)
	}
	if st.Mean > 0.2 {
		t.Errorf("LORA MAE %g implausibly large on a small dataset", st.Mean)
	}
}

func TestSpeedup(t *testing.T) {
	a := &AlgoRun{Runs: []QueryRun{{}}, Total: 100 * time.Millisecond}
	b := &AlgoRun{Runs: []QueryRun{{}}, Total: 10 * time.Millisecond}
	if got := Speedup(a, b); got < 9.9 || got > 10.1 {
		t.Errorf("Speedup = %g, want ~10", got)
	}
}

func TestTable2SmokeAndShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sizes = []int{300, 800}
	cfg.QueryCount = 3
	cfg.Budget = 30 * time.Second
	var sb strings.Builder
	if err := Table2(context.Background(), &sb, Gaode, cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table II", "DFS-Prune", "HSP", "LORA", "300", "800"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable3Smoke(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sizes = []int{300}
	cfg.QueryCount = 3
	var sb strings.Builder
	if err := Table3(context.Background(), &sb, Yelp, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "STD") || !strings.Contains(sb.String(), "MAX") {
		t.Errorf("Table3 output malformed:\n%s", sb.String())
	}
}

func TestFig9GridDSmoke(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueryCount = 3
	var sb strings.Builder
	if err := Fig9GridD(context.Background(), &sb, Gaode, 400, cfg, []int{1, 4}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "grid resolution sweep") {
		t.Errorf("Fig9GridD output malformed:\n%s", sb.String())
	}
}

func TestFig9ParamSmoke(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueryCount = 2
	for _, kind := range []ParamKind{SweepAlpha, SweepBeta, SweepK, SweepM} {
		var sb strings.Builder
		vals := []float64{2, 3}
		if kind == SweepAlpha {
			vals = []float64{0.2, 0.8}
		}
		if err := Fig9Param(context.Background(), &sb, Gaode, 300, cfg, kind, vals); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !strings.Contains(sb.String(), kind.String()+" sweep") {
			t.Errorf("%v output malformed:\n%s", kind, sb.String())
		}
	}
}

func TestFig10Smoke(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueryCount = 2
	var sb strings.Builder
	if err := Fig10(context.Background(), &sb, cfg, []int{300}, []int{2, 6}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "SEQ") {
		t.Errorf("Fig10 output malformed:\n%s", sb.String())
	}
}

func TestFig11Smoke(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueryCount = 2
	var sb strings.Builder
	if err := Fig11(context.Background(), &sb, cfg, []int{400}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "CSEQ-FP") {
		t.Errorf("Fig11 output malformed:\n%s", sb.String())
	}
}

func TestAblationsSmoke(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueryCount = 2
	ctx := context.Background()
	var sb strings.Builder
	if err := AblationPartition(ctx, &sb, Gaode, 300, cfg); err != nil {
		t.Fatal(err)
	}
	if err := AblationBounds(ctx, &sb, Gaode, 300, cfg); err != nil {
		t.Fatal(err)
	}
	if err := AblationSampling(ctx, &sb, Gaode, 300, cfg, []int{1, 10}); err != nil {
		t.Fatal(err)
	}
	if err := AblationCellNorm(ctx, &sb, Gaode, 300, cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"A1", "A4", "A2", "A3"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}
