// Package eval runs algorithm comparisons over query sets and computes the
// metrics the paper reports: per-query cost, average top-k similarity,
// and the MAE / STD / MAX error statistics of the approximate algorithm
// against the exact one (Tables II and III).
package eval

import (
	"context"
	"math"
	"runtime"
	"time"

	"spatialseq/internal/core"
	"spatialseq/internal/query"
	"spatialseq/internal/stats"
	"spatialseq/internal/vectormath"
)

// QueryRun records one query execution.
type QueryRun struct {
	Sims    []float64
	Elapsed time.Duration
}

// AlgoRun aggregates one algorithm over a query set.
type AlgoRun struct {
	Algo core.Algorithm
	// Attempted is the size of the query set the run was given.
	Attempted int
	// Runs holds one entry per completed query, aligned with the query
	// set prefix [0, Completed).
	Runs []QueryRun
	// TimedOut reports that the budget expired before all queries ran —
	// the ">24hours" cells of Table II. It is set only on deadline or
	// context expiry; engine errors land in Err instead.
	TimedOut bool
	// Err is the engine error that aborted the run, if any. The completed
	// prefix before the failure is retained.
	Err error
	// Total is the wall time spent on completed queries.
	Total time.Duration
	// Work accumulates the engine's per-search counters over all
	// completed queries.
	Work stats.Snapshot
	// Allocation deltas over the whole run, from runtime.ReadMemStats
	// taken before and after the query loop. HeapDeltaBytes can be
	// negative when a GC ran mid-measurement.
	AllocBytes     int64
	Mallocs        int64
	HeapDeltaBytes int64
}

// Completed returns the number of queries that finished.
func (a *AlgoRun) Completed() int { return len(a.Runs) }

// MeanTime returns the average per-query cost over completed queries.
func (a *AlgoRun) MeanTime() time.Duration {
	if len(a.Runs) == 0 {
		return 0
	}
	return a.Total / time.Duration(len(a.Runs))
}

// Percentile returns the nearest-rank p-th percentile of per-query cost
// over completed queries (p in percent; 50 is the median, 100 the max).
func (a *AlgoRun) Percentile(p float64) time.Duration {
	if len(a.Runs) == 0 {
		return 0
	}
	xs := make([]float64, len(a.Runs))
	for i, r := range a.Runs {
		xs[i] = float64(r.Elapsed)
	}
	return time.Duration(vectormath.Percentiles(xs, p)[0])
}

// LatenciesMS returns the per-query costs in milliseconds, in execution
// order — the sample the bench records summarize.
func (a *AlgoRun) LatenciesMS() []float64 {
	out := make([]float64, len(a.Runs))
	for i, r := range a.Runs {
		out[i] = float64(r.Elapsed) / float64(time.Millisecond)
	}
	return out
}

// AvgSim returns the mean of all result similarities across completed
// queries (the "average similarity" series of Figs. 9-11).
func (a *AlgoRun) AvgSim() float64 {
	var sum float64
	var n int
	for _, r := range a.Runs {
		for _, s := range r.Sims {
			sum += s
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RunQueries executes the query set with one algorithm under a total time
// budget. A budget of 0 means unlimited. When the budget expires the run
// is cut short with TimedOut=true and the completed prefix retained; an
// engine error likewise cuts the run short but lands in Err, so callers
// can tell a slow algorithm from a broken query. The run always collects
// the engine's work counters (Work) and allocation deltas. eng is any
// core.Searcher — a single engine or the sharded coordinator.
func RunQueries(ctx context.Context, eng core.Searcher, queries []*query.Query, algo core.Algorithm, opt core.Options, budget time.Duration) *AlgoRun {
	run := &AlgoRun{Algo: algo, Attempted: len(queries)}
	opt.CollectStats = true
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	deadline := time.Time{}
	if budget > 0 {
		deadline = time.Now().Add(budget)
	}
	for _, q := range queries {
		qctx := ctx
		var cancel context.CancelFunc
		if !deadline.IsZero() {
			if !time.Now().Before(deadline) {
				run.TimedOut = true
				break
			}
			qctx, cancel = context.WithDeadline(ctx, deadline)
		}
		qq := *q // Search normalizes params in place; keep callers' copy pristine
		res, err := eng.Search(qctx, &qq, algo, opt)
		// Read the context state before cancel(): afterwards qctx.Err()
		// reports Canceled for every outcome, masking engine errors.
		budgetExpired := ctx.Err() != nil || qctx.Err() != nil
		if cancel != nil {
			cancel()
		}
		if err != nil {
			if budgetExpired {
				// deadline or caller cancellation: the ">budget" outcome
				run.TimedOut = true
			} else {
				// genuine engine failure (validation, unsupported variant):
				// a distinct outcome the tables render as "error"
				run.Err = err
			}
			break
		}
		run.Runs = append(run.Runs, QueryRun{Sims: res.Similarities(), Elapsed: res.Elapsed})
		run.Total += res.Elapsed
		run.Work = run.Work.Add(res.Stats)
	}
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	run.AllocBytes = int64(m1.TotalAlloc - m0.TotalAlloc)
	run.Mallocs = int64(m1.Mallocs - m0.Mallocs)
	run.HeapDeltaBytes = int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	return run
}

// ErrorStats compares an approximate run against an exact run over the
// same query set and returns the paper's error statistics:
//
//	MAE — mean absolute similarity error across all (query, rank) pairs;
//	STD — standard deviation of those errors;
//	MAX — the largest single error.
//
// Ranks the approximate run is missing (it returned fewer tuples) count
// the exact similarity as the error. Only the overlap of completed
// queries is compared.
func ErrorStats(exact, approx *AlgoRun) vectormath.Stats {
	n := len(exact.Runs)
	if len(approx.Runs) < n {
		n = len(approx.Runs)
	}
	var errs []float64
	for i := 0; i < n; i++ {
		es, as := exact.Runs[i].Sims, approx.Runs[i].Sims
		for j := range es {
			var a float64
			if j < len(as) {
				a = as[j]
			}
			errs = append(errs, math.Abs(es[j]-a))
		}
	}
	return vectormath.Summarize(errs)
}

// Speedup returns how many times faster b ran than a (per mean query
// cost), or +Inf when b completed queries and a completed none.
func Speedup(a, b *AlgoRun) float64 {
	mb := b.MeanTime()
	if mb <= 0 {
		return math.Inf(1)
	}
	ma := a.MeanTime()
	if ma <= 0 && a.Completed() == 0 {
		return math.Inf(1)
	}
	return float64(ma) / float64(mb)
}
