package eval

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// report latches the first write error so the experiment drivers can
// print a whole table and surface the error once at the end instead of
// silently discarding every fmt.Fprintf result (seqlint: errdrop).
type report struct {
	err error
}

// printf formats to w unless an earlier write already failed.
func (r *report) printf(w io.Writer, format string, args ...any) {
	if r.err == nil {
		_, r.err = fmt.Fprintf(w, format, args...)
	}
}

// println writes to w unless an earlier write already failed.
func (r *report) println(w io.Writer, args ...any) {
	if r.err == nil {
		_, r.err = fmt.Fprintln(w, args...)
	}
}

// flush flushes the tabwriter and returns the sticky error.
func (r *report) flush(tw *tabwriter.Writer) error {
	if r.err == nil {
		r.err = tw.Flush()
	}
	return r.err
}
