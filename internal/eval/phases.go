package eval

import (
	"context"
	"io"
	"text/tabwriter"
	"time"

	"spatialseq/internal/core"
	"spatialseq/internal/obs"
	"spatialseq/internal/query"
	"spatialseq/internal/stats"
	"spatialseq/internal/workload"
)

// PhaseBreakdown runs the workload under each algorithm with phase
// tracing enabled and prints where the wall time goes — the same trace
// the server returns per request with include_stats, aggregated over a
// whole query set. It answers "which phase do I optimise next" the way
// Table II answers "which algorithm wins".
func PhaseBreakdown(ctx context.Context, w io.Writer, f Family, n int, cfg Config) error {
	data, err := familyDataset(f, n, cfg.Seed)
	if err != nil {
		return err
	}
	queries, err := workload.Generate(data, familyWorkload(f, cfg))
	if err != nil {
		return err
	}
	eng := core.NewEngine(data)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	rp := &report{}
	rp.printf(w, "Phase breakdown (%s-like, %d POIs, up to %d queries per algorithm)\n", f, n, len(queries))
	rp.println(tw, "algo\tphase\ttotal\tcalls\tshare")
	for _, algo := range []core.Algorithm{core.DFSPrune, core.HSP, core.LORA} {
		tr := obs.NewTrace()
		ran, work, err := runTraced(ctx, eng, queries, algo, tr, cfg.Budget)
		if err != nil {
			return err
		}
		if ran == 0 {
			rp.printf(tw, "%s\t(no query finished within %s)\t\t\t\n", algo, cfg.Budget)
			continue
		}
		snap := tr.Snapshot()
		var total float64
		for _, p := range snap {
			total += p.DurationMS
		}
		for _, p := range snap {
			var share float64
			if total > 0 {
				share = 100 * p.DurationMS / total
			}
			rp.printf(tw, "%s\t%s\t%.2fms\t%d\t%.1f%%\n", algo, p.Name, p.DurationMS, p.Count, share)
		}
		// The simprep phase above says what the memo *cost*; the hit/miss
		// counters say what it *bought* (each hit is one cosine not
		// recomputed).
		if hits, misses := work.AttrSimMemoHits, work.AttrSimMemoMisses; hits+misses > 0 {
			rp.printf(tw, "%s\tattr-sim memo\thits %d\tmisses %d\t\n", algo, hits, misses)
		}
	}
	return rp.flush(tw)
}

// runTraced runs queries under algo until the budget expires, recording
// phases into tr. It returns how many queries completed and the summed
// work counters.
func runTraced(ctx context.Context, eng *core.Engine, queries []*query.Query, algo core.Algorithm, tr *obs.Trace, budget time.Duration) (int, stats.Snapshot, error) {
	deadline := time.Now().Add(budget)
	ran := 0
	var work stats.Snapshot
	for _, q := range queries {
		if time.Now().After(deadline) {
			break
		}
		qctx, cancel := context.WithDeadline(ctx, deadline)
		qq := *q
		res, err := eng.Search(qctx, &qq, algo, core.Options{Trace: tr, CollectStats: true})
		cancel()
		if err != nil {
			if qctx.Err() != nil && ctx.Err() == nil {
				break // budget exhausted mid-query; keep what we have
			}
			return ran, work, err
		}
		work = work.Add(res.Stats)
		ran++
	}
	return ran, work, nil
}
