// Package sched implements the shared work-unit scheduler behind the
// intra-subspace work stealing of the parallel HSP and LORA paths.
//
// The pre-stealing parallel loops pulled whole subspaces off an atomic
// counter, which made a Zipf head subspace indivisible: one worker lane
// dragged ~66% of the candidate work while the others idled (the
// EXPERIMENTS.md S1 baseline). Here the unit of work is smaller than the
// subspace: a *(subspace, dim-0 candidate range)* chunk. Workers acquire
// units in a loop — first a prep unit per subspace (candidate
// enumeration, run exactly once per subspace so the Lemma-1 discipline
// holds), then enumeration chunks of the prepared subspace's root-level
// candidates, sized by candidate count so a fat subspace's DFS root
// level is shared across every idle worker.
//
// Exactness is unaffected by steal order: the concurrent top-k's
// deterministic tie-break is order-independent, and a stale pruning
// threshold only admits extra candidates. The scheduler therefore makes
// no ordering promises beyond "every published chunk is acquired exactly
// once".
//
// The package is a leaf: pure stdlib, importable from any algorithm.
package sched

import "sync"

// Default auto-chunking knobs: split each subspace into about
// Oversubscribe chunks per worker (enough granularity for the tail to
// steal, few enough that per-chunk overhead stays invisible), but never
// below MinChunk candidates per chunk.
const (
	defaultOversubscribe = 4
	defaultMinChunk      = 1
)

// Tuning controls how a prepared subspace's root candidate range is
// split into steal-able chunks. The zero value auto-sizes.
type Tuning struct {
	// ChunkSize fixes the chunk length in dim-0 candidates: > 0 uses
	// exactly that size (1 is the adversarial minimum — every root
	// candidate its own unit), < 0 disables splitting (one chunk per
	// subspace, the pre-stealing behavior), 0 auto-sizes from the
	// worker count.
	ChunkSize int
	// MinChunk floors the auto size so tiny subspaces are not shredded
	// into per-candidate units; <= 0 takes the caller's default.
	MinChunk int
	// Oversubscribe is the target number of auto-sized chunks per
	// worker per subspace; <= 0 takes the default (4).
	Oversubscribe int
}

// Unit is one acquired work item. Prep units ask the worker to prepare
// subspace Sub (build candidate lists) and report the root candidate
// count via Publish; enumeration units ask it to search the dim-0
// candidate range [Lo, Hi) of the already-prepared Sub.
type Unit struct {
	Sub    int
	Lo, Hi int
	Prep   bool
}

// Scheduler hands out prep and enumeration units to parallel workers.
// One Scheduler covers one query execution.
type Scheduler struct {
	mu      sync.Mutex
	cond    sync.Cond
	tun     Tuning
	workers int
	numSub  int
	nextSub int // next subspace needing prep
	prep    int // prep units handed out but not yet Published
	queue   []Unit
	qhead   int
	pending []int // unacquired+unfinished chunks per subspace
	aborted bool
}

// New returns a scheduler over numSub subspaces for the given worker
// count (used by auto chunk sizing; must be >= 1).
func New(numSub, workers int, tun Tuning) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	s := &Scheduler{tun: tun, workers: workers, numSub: numSub, pending: make([]int, numSub)}
	s.cond.L = &s.mu
	return s
}

// Acquire blocks until a unit is available and returns it; ok=false
// means the search is drained (or aborted) and the worker should exit.
// Chunks are preferred over preps so the number of subspaces held
// prepared-but-unfinished stays bounded by the worker count, not the
// subspace count.
//
//seq:hotpath
func (s *Scheduler) Acquire() (u Unit, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.aborted {
			return Unit{}, false
		}
		if s.qhead < len(s.queue) {
			u = s.queue[s.qhead]
			s.qhead++
			return u, true
		}
		if s.nextSub < s.numSub {
			u = Unit{Sub: s.nextSub, Prep: true}
			s.nextSub++
			s.prep++
			return u, true
		}
		if s.prep == 0 {
			// nothing queued, nothing left to prep, nothing in flight
			// that could publish more: drained.
			return Unit{}, false
		}
		s.cond.Wait()
	}
}

// Publish completes a prep unit: the worker prepared subspace sub and
// found n root (dim-0) candidates. n <= 0 marks the subspace skipped
// (or failed) — no chunks are queued. It returns how many chunks were
// queued; 0 also when the scheduler was aborted meanwhile, in which
// case no Done calls will follow and the caller reclaims the prepared
// state itself. Every acquired prep unit must be Published exactly
// once, on every path including errors, or waiting workers deadlock.
func (s *Scheduler) Publish(sub, n int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.prep--
	count := 0
	if n > 0 && !s.aborted {
		if s.qhead == len(s.queue) {
			// drained queue: reuse the backing array instead of growing
			s.queue = s.queue[:0]
			s.qhead = 0
		}
		c := s.chunkFor(n)
		for lo := 0; lo < n; lo += c {
			hi := lo + c
			if hi > n {
				hi = n
			}
			s.queue = append(s.queue, Unit{Sub: sub, Lo: lo, Hi: hi})
			count++
		}
		s.pending[sub] = count
	}
	s.cond.Broadcast()
	return count
}

// Done records that one acquired chunk of sub finished (successfully or
// not) and reports whether it was the last one — the point at which the
// subspace's prepared state can be recycled.
//
//seq:hotpath
func (s *Scheduler) Done(sub int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending[sub]--
	return s.pending[sub] == 0
}

// Abort wakes every waiting worker and makes all future Acquires fail,
// so an error or cancellation on one worker drains the others promptly.
// Chunks already acquired still run to completion (their Done calls
// stay balanced); unacquired ones are dropped.
func (s *Scheduler) Abort() {
	s.mu.Lock()
	s.aborted = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// chunkFor sizes the chunks of a subspace with n root candidates.
// Called with s.mu held.
func (s *Scheduler) chunkFor(n int) int {
	c := s.tun.ChunkSize
	if c > 0 {
		return c
	}
	if c < 0 {
		return n
	}
	over := s.tun.Oversubscribe
	if over <= 0 {
		over = defaultOversubscribe
	}
	c = (n + over*s.workers - 1) / (over * s.workers)
	min := s.tun.MinChunk
	if min <= 0 {
		min = defaultMinChunk
	}
	if c < min {
		c = min
	}
	if c > n {
		c = n
	}
	return c
}
