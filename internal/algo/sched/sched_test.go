package sched

import (
	"sync"
	"testing"
)

// drain pulls every unit out of a scheduler on a single goroutine,
// publishing preps with the candidate counts from n. Returns the
// acquired chunk units grouped by subspace.
func drain(t *testing.T, s *Scheduler, n []int) [][]Unit {
	t.Helper()
	chunks := make([][]Unit, len(n))
	for {
		u, ok := s.Acquire()
		if !ok {
			return chunks
		}
		if u.Prep {
			s.Publish(u.Sub, n[u.Sub])
			continue
		}
		chunks[u.Sub] = append(chunks[u.Sub], u)
		s.Done(u.Sub)
	}
}

// coverage verifies the chunks of one subspace tile [0, n) exactly.
func coverage(t *testing.T, chunks []Unit, n int) {
	t.Helper()
	seen := make([]bool, n)
	for _, u := range chunks {
		if u.Lo < 0 || u.Hi > n || u.Lo >= u.Hi {
			t.Fatalf("bad chunk [%d, %d) over %d candidates", u.Lo, u.Hi, n)
		}
		for i := u.Lo; i < u.Hi; i++ {
			if seen[i] {
				t.Fatalf("candidate %d covered twice", i)
			}
			seen[i] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("candidate %d never covered", i)
		}
	}
}

func TestFixedChunking(t *testing.T) {
	s := New(1, 4, Tuning{ChunkSize: 10})
	chunks := drain(t, s, []int{25})
	if len(chunks[0]) != 3 {
		t.Fatalf("got %d chunks, want 3", len(chunks[0]))
	}
	want := []Unit{{Sub: 0, Lo: 0, Hi: 10}, {Sub: 0, Lo: 10, Hi: 20}, {Sub: 0, Lo: 20, Hi: 25}}
	for i, u := range chunks[0] {
		if u != want[i] {
			t.Errorf("chunk %d = %+v, want %+v", i, u, want[i])
		}
	}
	coverage(t, chunks[0], 25)
}

func TestWholeSubspaceChunking(t *testing.T) {
	s := New(2, 4, Tuning{ChunkSize: -1})
	chunks := drain(t, s, []int{100, 7})
	for sub, n := range []int{100, 7} {
		if len(chunks[sub]) != 1 {
			t.Fatalf("subspace %d: got %d chunks, want 1", sub, len(chunks[sub]))
		}
		coverage(t, chunks[sub], n)
	}
}

func TestAutoChunking(t *testing.T) {
	// 4 workers x oversubscribe 4 = 16 target chunks; 1000 candidates
	// gives ceil(1000/16) = 63 per chunk, 16 chunks.
	s := New(1, 4, Tuning{})
	chunks := drain(t, s, []int{1000})
	if len(chunks[0]) != 16 {
		t.Errorf("got %d auto chunks, want 16", len(chunks[0]))
	}
	coverage(t, chunks[0], 1000)

	// MinChunk floors the auto size: 20 candidates over 16 targets would
	// be 2-wide, but MinChunk 8 forces ceil(20/8) = 3 chunks.
	s = New(1, 4, Tuning{MinChunk: 8})
	chunks = drain(t, s, []int{20})
	if len(chunks[0]) != 3 {
		t.Errorf("got %d floored chunks, want 3", len(chunks[0]))
	}
	coverage(t, chunks[0], 20)

	// A subspace smaller than MinChunk is one chunk.
	s = New(1, 4, Tuning{MinChunk: 64})
	chunks = drain(t, s, []int{5})
	if len(chunks[0]) != 1 {
		t.Errorf("got %d chunks for a tiny subspace, want 1", len(chunks[0]))
	}
	coverage(t, chunks[0], 5)
}

func TestSkippedSubspace(t *testing.T) {
	s := New(3, 2, Tuning{ChunkSize: 4})
	chunks := drain(t, s, []int{6, 0, 3})
	if len(chunks[1]) != 0 {
		t.Errorf("skipped subspace produced %d chunks", len(chunks[1]))
	}
	coverage(t, chunks[0], 6)
	coverage(t, chunks[2], 3)
}

func TestAbortUnblocksWaiters(t *testing.T) {
	s := New(1, 2, Tuning{})
	u, ok := s.Acquire()
	if !ok || !u.Prep {
		t.Fatalf("first acquire = %+v, %v; want a prep unit", u, ok)
	}
	// A second worker has nothing to do until the prep publishes; it
	// must park, and Abort must release it.
	done := make(chan bool)
	go func() {
		_, ok := s.Acquire()
		done <- ok
	}()
	s.Abort()
	if got := <-done; got {
		t.Error("aborted Acquire returned ok=true")
	}
	if n := s.Publish(u.Sub, 50); n != 0 {
		t.Errorf("Publish after abort queued %d chunks, want 0", n)
	}
	if _, ok := s.Acquire(); ok {
		t.Error("Acquire after abort returned ok=true")
	}
}

// TestStress hammers the scheduler with many workers under -race:
// every candidate of every subspace must be covered exactly once, every
// subspace prepped exactly once, and Done must report last-chunk
// exactly once per published subspace.
func TestStress(t *testing.T) {
	const (
		numSub  = 50
		workers = 8
	)
	for _, tun := range []Tuning{{}, {ChunkSize: 1}, {ChunkSize: 7}, {ChunkSize: -1}} {
		// Deterministic, skewed sizes: one fat head, some empties.
		sizes := make([]int, numSub)
		for i := range sizes {
			switch {
			case i == 0:
				sizes[i] = 4000
			case i%7 == 3:
				sizes[i] = 0
			default:
				sizes[i] = 13 + 31*(i%11)
			}
		}
		var mu sync.Mutex
		prepped := make([]int, numSub)
		last := make([]int, numSub)
		covered := make([][]bool, numSub)
		for i, n := range sizes {
			covered[i] = make([]bool, n)
		}

		s := New(numSub, workers, tun)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					u, ok := s.Acquire()
					if !ok {
						return
					}
					if u.Prep {
						mu.Lock()
						prepped[u.Sub]++
						mu.Unlock()
						s.Publish(u.Sub, sizes[u.Sub])
						continue
					}
					mu.Lock()
					for i := u.Lo; i < u.Hi; i++ {
						if covered[u.Sub][i] {
							t.Errorf("tuning %+v: subspace %d candidate %d covered twice", tun, u.Sub, i)
						}
						covered[u.Sub][i] = true
					}
					mu.Unlock()
					if s.Done(u.Sub) {
						mu.Lock()
						last[u.Sub]++
						mu.Unlock()
					}
				}
			}()
		}
		wg.Wait()

		for i, n := range sizes {
			if prepped[i] != 1 {
				t.Errorf("tuning %+v: subspace %d prepped %d times", tun, i, prepped[i])
			}
			for j := 0; j < n; j++ {
				if !covered[i][j] {
					t.Errorf("tuning %+v: subspace %d candidate %d never covered", tun, i, j)
				}
			}
			wantLast := 0
			if n > 0 {
				wantLast = 1
			}
			if last[i] != wantLast {
				t.Errorf("tuning %+v: subspace %d saw %d last-chunk signals, want %d", tun, i, last[i], wantLast)
			}
		}
	}
}

// TestStressAbort aborts mid-flight: workers must all exit, and chunks
// that were acquired before the abort still balance their Done calls.
func TestStressAbort(t *testing.T) {
	const (
		numSub  = 40
		workers = 8
	)
	sizes := make([]int, numSub)
	for i := range sizes {
		sizes[i] = 50 + i
	}
	s := New(numSub, workers, Tuning{ChunkSize: 5})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			count := 0
			for {
				u, ok := s.Acquire()
				if !ok {
					return
				}
				count++
				if w == 0 && count == 10 {
					s.Abort()
				}
				if u.Prep {
					s.Publish(u.Sub, sizes[u.Sub])
					continue
				}
				s.Done(u.Sub)
			}
		}(w)
	}
	wg.Wait()
	if _, ok := s.Acquire(); ok {
		t.Error("Acquire after aborted drain returned ok=true")
	}
}
