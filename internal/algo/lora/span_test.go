package lora

import (
	"context"
	"math/rand"
	"testing"

	"spatialseq/internal/obs/span"
	"spatialseq/internal/query"
	"spatialseq/internal/stats"
	"spatialseq/internal/testutil"
)

// TestSpanTimeline verifies LORA's unit-span tree under parallel
// (stealing) workers: one "lora.prep" span per subspace carrying the
// subspace-level delta, one "lora.chunk" span per stolen enumeration
// unit carrying the cell/point enumeration delta, every unit tagged
// with both its worker lane and owning subspace, and the per-unit
// deltas summing to the query-wide counters.
func TestSpanTimeline(t *testing.T) {
	rng := rand.New(rand.NewSource(221))
	ds := testutil.RandDataset(rng, 300, 3, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10}
	q := testutil.RandQuery(rng, ds, 3, 20, params)
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	st := &stats.Stats{}
	tr := span.NewTracer()
	root := tr.Root("search")
	if _, err := Search(context.Background(), ds, ix, q, Options{
		Parallelism: 4, Stats: st, Span: root,
	}); err != nil {
		t.Fatal(err)
	}
	root.End()

	tree := tr.Snapshot()
	if tree == nil {
		t.Fatal("no spans recorded")
	}
	workers := make(map[int32]bool)
	searched := make(map[int32]bool)
	chunkSubs := make(map[int32]bool)
	var prepSpans, chunkSpans int
	var workSubspaces, workSkipped, workCand, workHits, maxCand int64
	var workCellTuples, workPops, workTuples, workOffered int64
	for _, n := range tree.Nodes {
		switch n.Name {
		case "lora.prep":
			prepSpans++
			if n.Subspace < 0 || n.Worker < 0 {
				t.Errorf("prep span untagged: worker %d subspace %d", n.Worker, n.Subspace)
			}
			workers[n.Worker] = true
			if n.Work == nil {
				t.Fatal("prep span without work delta")
			}
			workSubspaces += n.Work.Subspaces
			workSkipped += n.Work.SubspacesSkipped
			workCand += n.Work.Candidates
			workHits += n.Work.AttrSimMemoHits
			if n.Work.Subspaces == 1 {
				searched[n.Subspace] = true
			}
			if n.Work.SubspaceCandidatesMax > maxCand {
				maxCand = n.Work.SubspaceCandidatesMax
			}
		case "lora.chunk":
			chunkSpans++
			if n.Subspace < 0 || n.Worker < 0 {
				t.Errorf("chunk span untagged: worker %d subspace %d", n.Worker, n.Subspace)
			}
			workers[n.Worker] = true
			if n.Work == nil {
				t.Fatal("chunk span without work delta")
			}
			chunkSubs[n.Subspace] = true
			workCellTuples += n.Work.CellTuples
			workPops += n.Work.RankPops
			workTuples += n.Work.Tuples
			workOffered += n.Work.Offered
		case "lora.worker", "lora.subspace":
			t.Errorf("parallel path recorded legacy %q span", n.Name)
		}
	}
	if prepSpans == 0 {
		t.Fatal("no prep spans recorded")
	}
	if len(workers) == 0 || len(workers) > 4 {
		t.Errorf("got %d worker lanes, want 1..4", len(workers))
	}
	snap := st.Snapshot()
	if workSubspaces+workSkipped != snap.Subspaces+snap.SubspacesSkipped {
		t.Errorf("prep deltas (%d searched + %d skipped) disagree with counters (%d + %d)",
			workSubspaces, workSkipped, snap.Subspaces, snap.SubspacesSkipped)
	}
	if workCand != snap.Candidates {
		t.Errorf("prep candidate deltas sum to %d, counters say %d", workCand, snap.Candidates)
	}
	if workHits != snap.AttrSimMemoHits {
		t.Errorf("prep memo-hit deltas sum to %d, counters say %d", workHits, snap.AttrSimMemoHits)
	}
	if snap.SubspaceCandidatesMax != maxCand {
		t.Errorf("SubspaceCandidatesMax = %d, want the span-tree max %d", snap.SubspaceCandidatesMax, maxCand)
	}
	if chunkSpans < len(searched) || len(chunkSubs) != len(searched) {
		t.Errorf("%d chunk spans over %d subspaces for %d searched subspaces",
			chunkSpans, len(chunkSubs), len(searched))
	}
	if workCellTuples != snap.CellTuples || workPops != snap.RankPops ||
		workTuples != snap.Tuples || workOffered != snap.Offered {
		t.Errorf("chunk deltas (cells %d, pops %d, tuples %d, offered %d) disagree with counters (%d, %d, %d, %d)",
			workCellTuples, workPops, workTuples, workOffered,
			snap.CellTuples, snap.RankPops, snap.Tuples, snap.Offered)
	}
	if sk := tr.Skew(); sk == nil || sk.Workers != len(workers) {
		t.Errorf("skew report = %+v, want %d workers", sk, len(workers))
	}
}
