package lora

import (
	"context"
	"math/rand"
	"testing"

	"spatialseq/internal/obs/span"
	"spatialseq/internal/query"
	"spatialseq/internal/stats"
	"spatialseq/internal/testutil"
)

// TestSpanTimeline verifies LORA's span tree under parallel workers:
// subspace spans are lane-tagged with work deltas, and the per-subspace
// candidate max agrees with the query-wide counter.
func TestSpanTimeline(t *testing.T) {
	rng := rand.New(rand.NewSource(221))
	ds := testutil.RandDataset(rng, 300, 3, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10}
	q := testutil.RandQuery(rng, ds, 3, 20, params)
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	st := &stats.Stats{}
	tr := span.NewTracer()
	root := tr.Root("search")
	if _, err := Search(context.Background(), ds, ix, q, Options{
		Parallelism: 4, Stats: st, Span: root,
	}); err != nil {
		t.Fatal(err)
	}
	root.End()

	tree := tr.Snapshot()
	if tree == nil {
		t.Fatal("no spans recorded")
	}
	workers := make(map[int32]bool)
	var subspaceSpans int
	var maxCand int64
	for _, n := range tree.Nodes {
		switch n.Name {
		case "lora.worker":
			workers[n.Worker] = true
		case "lora.subspace":
			subspaceSpans++
			if n.Subspace < 0 || n.Worker < 0 {
				t.Errorf("subspace span untagged: worker %d subspace %d", n.Worker, n.Subspace)
			}
			if n.Work == nil {
				t.Fatal("subspace span without work delta")
			}
			if n.Work.SubspaceCandidatesMax > maxCand {
				maxCand = n.Work.SubspaceCandidatesMax
			}
		}
	}
	if subspaceSpans == 0 {
		t.Fatal("no subspace spans recorded")
	}
	if len(workers) == 0 || len(workers) > 4 {
		t.Errorf("got %d worker lanes, want 1..4", len(workers))
	}
	if snap := st.Snapshot(); snap.SubspaceCandidatesMax != maxCand {
		t.Errorf("SubspaceCandidatesMax = %d, want the span-tree max %d", snap.SubspaceCandidatesMax, maxCand)
	}
	if sk := tr.Skew(); sk == nil || sk.Workers != len(workers) {
		t.Errorf("skew report = %+v, want %d workers", sk, len(workers))
	}
}
