package lora

import (
	"context"
	"math/rand"
	"testing"

	"spatialseq/internal/algo/brute"
	"spatialseq/internal/geo"
	"spatialseq/internal/query"
	"spatialseq/internal/testutil"
)

// Parallel LORA must stay valid (norm constraint, no duplicates, never
// exceeding the exact optimum); the exact result set may differ from the
// sequential run's because the heuristic early stops are order-dependent.
func TestParallelValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 4; trial++ {
		ds := testutil.RandDataset(rng, 400, 3, 4, 100)
		ix := buildIndex(ds)
		params := query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10}
		q := testutil.RandQuery(rng, ds, 3, 20, params)
		if err := q.Validate(ds); err != nil {
			t.Fatal(err)
		}
		exact := simsOf(brute.Search(ds, q))
		res, err := Search(context.Background(), ds, ix, q, Options{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		ref := q.Example.Norm()
		for rank, e := range res {
			if rank < len(exact) && e.Sim > exact[rank]+1e-9 {
				t.Errorf("trial %d rank %d: parallel LORA %g exceeds exact %g", trial, rank, e.Sim, exact[rank])
			}
			locs := make([]geo.Point, len(e.Tuple))
			for d, pos := range e.Tuple {
				locs[d] = ds.Object(int(pos)).Loc
			}
			if n := geo.TupleNorm(locs); !geo.NormOK(n, ref, q.Params.Beta) {
				t.Errorf("trial %d: parallel result %v violates beta-norm", trial, e.Tuple)
			}
		}
	}
}

func TestParallelCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	ds := testutil.RandDataset(rng, 4000, 2, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 5, Alpha: 0.5, Beta: 9, GridD: 8, Xi: 50}
	q := testutil.RandQuery(rng, ds, 4, 60, params)
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Search(ctx, ds, ix, q, Options{Parallelism: 4}); err == nil {
		t.Error("cancelled parallel search should abort")
	}
}
