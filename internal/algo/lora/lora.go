// Package lora implements LORA (LOcal Representative Approximation), the
// paper's approximate algorithm (Section III-C/D).
//
// Per ac-subspace, LORA imposes a D x D grid, groups same-category points
// per cell, keeps only the top-xi points of each (cell, dimension) bucket
// by attribute similarity to the example (query-dependent sampling,
// Algorithm 6), and then enumerates in two phases:
//
//   - Cell-Tuple-Enum (Algorithm 4): DFS over per-dimension cell lists
//     sorted by maximum bucket similarity, pruning cell tuples whose
//     upper bound alpha*1 + (1-alpha)*Vbar cannot beat the current k-th
//     result;
//   - Point-Tuple-Enum (Algorithm 5): best-first traversal of the
//     rank-representation graph, popping the cell tuple's point tuples in
//     descending attribute-similarity order (Lemma 2), applying the
//     beta-norm check, scoring survivors against the global top-k and
//     stopping once no future pop can help or k valid tuples were popped
//     (per-subspace top-k sufficiency, observation 2).
//
// Like HSP, dimension-0 candidates are restricted to the core subspace so
// no tuple is generated twice across subspaces.
package lora

import (
	"context"
	"math"
	"runtime"
	"slices"
	"sync"
	"time"

	"spatialseq/internal/algo/sched"
	"spatialseq/internal/dataset"
	"spatialseq/internal/geo"
	"spatialseq/internal/grid"
	"spatialseq/internal/obs"
	"spatialseq/internal/obs/span"
	"spatialseq/internal/partition"
	"spatialseq/internal/query"
	"spatialseq/internal/rankgraph"
	"spatialseq/internal/simil"
	"spatialseq/internal/stats"
	"spatialseq/internal/topk"
)

// Options tune implementation details; the zero value is the paper's LORA.
type Options struct {
	// RandomSample replaces query-dependent sampling with seeded random
	// sampling (the strawman of Fig. 4, for the A2 ablation).
	RandomSample bool
	// RandomSeed drives RandomSample.
	RandomSeed int64
	// PruneCellNorm enables the cell-level beta-norm feasibility filter
	// using min/max inter-cell distances (A3 ablation; off in the
	// paper's plain LORA).
	PruneCellNorm bool
	// SortedBreak is an extension beyond the paper: cell lists are sorted
	// descending by score and the Algorithm 4 bound is monotone along
	// that order, so a failing bound can abandon the whole level instead
	// of just the subtree. Off by default for fidelity (ablation A5).
	SortedBreak bool
	// Parallelism spreads the search over this many goroutines sharing
	// one concurrent top-k. A stale pruning threshold only admits extra
	// candidates, so parallel LORA's results are never worse than
	// sequential LORA's — but the exact result set can vary between
	// runs. The unit of parallel work is smaller than a subspace:
	// prepared subspaces are split into chunks of their root cell list
	// that workers steal from a shared scheduler. <= 1 searches
	// sequentially; negative uses GOMAXPROCS.
	Parallelism int
	// Steal tunes the work-unit scheduler of the parallel path (chunk
	// sizing of the stolen root-cell ranges). The zero value auto-sizes.
	Steal sched.Tuning
	// Own, when non-nil, restricts the search to the subspaces whose core
	// rectangle it claims; see hsp.Options.Own. Lemma 1's exactly-once
	// discipline makes the union over a disjoint claim set equal the
	// unfiltered search (up to LORA's usual sampling approximation).
	Own func(core geo.Rect) bool
	// Sink, when non-nil, replaces the internally allocated top-k
	// collector. It must be safe for concurrent use when Parallelism > 1.
	Sink topk.ResultSink
	// Stats, when non-nil, collects per-search counters (subspaces,
	// cell tuples, rank-graph pops, sampling discards).
	Stats *stats.Stats
	// Trace, when non-nil, records per-phase wall time (partitioning,
	// bucketing/sampling, cell enumeration, rank-graph point
	// enumeration, top-k merge). With Parallelism > 1 the phase times
	// sum across workers and can exceed wall time.
	Trace *obs.Trace
	// Span, when live, is the parent span the search nests its
	// hierarchical timeline under. The sequential path opens one worker
	// lane with a subspace span per searched subspace; the parallel path
	// opens one "lora.prep" / "lora.chunk" unit span per stolen work
	// unit, each tagged with both its worker lane and owning subspace
	// and carrying that unit's work-counter delta. The zero Span
	// disables span tracing at no cost.
	Span span.Span
}

// Search answers q approximately using the prebuilt partition index ix.
func Search(ctx context.Context, ds *dataset.Dataset, ix *partition.Index, q *query.Query, opt Options) ([]topk.Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sctx := simil.NewContext(ds, q)
	radius := sctx.PartitionRadius()
	sp := opt.Trace.Start("lora.partition")
	psp := opt.Span.Child("lora.partition")
	part, err := ix.PartitionBucketed(radius)
	psp.End()
	sp.End()
	if err != nil {
		return nil, err
	}
	fixed0 := q.Example.FixedDim(0)
	work := make([]*partition.Subspace, 0, len(part.Subspaces))
	for si := range part.Subspaces {
		ss := &part.Subspaces[si]
		if fixed0 >= 0 && !ss.Core.Contains(ds.Loc(int(fixed0))) {
			continue
		}
		if opt.Own != nil && !opt.Own(ss.Core) {
			continue
		}
		work = append(work, ss)
	}

	workers := opt.Parallelism
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Workers are deliberately not capped at len(work): chunked stealing
	// lets several workers share one subspace's root cell list.
	// Overlapping ac-subspaces re-bucket the same (dimension, object)
	// pairs; memoize the attribute cosines across them — lazily when
	// sequential, eagerly (read-only) when subspace workers share the
	// Context. One subspace means no reuse, so skip the table.
	if len(work) > 1 {
		sp = opt.Trace.Start("lora.simprep")
		ssp := opt.Span.Child("lora.simprep")
		if workers > 1 {
			opt.Stats.AddAttrSimMemoMisses(sctx.PrepareMemoShared())
		} else {
			sctx.EnableMemo()
		}
		ssp.End()
		sp.End()
	}
	if workers <= 1 {
		var heap topk.ResultSink = topk.New(q.Params.K)
		if opt.Sink != nil {
			heap = opt.Sink
		}
		s := newSearcher(ctx, sctx, heap, q, opt)
		ws := opt.Span.Worker("lora.worker", 0)
		for i, ss := range work {
			sub := ws.Subspace("lora.subspace", i)
			if err := s.searchSubspace(ss, sub); err != nil {
				ws.End()
				return nil, err
			}
		}
		ws.End()
		h, mi := sctx.MemoCounters()
		opt.Stats.AddAttrSimMemoHits(h)
		opt.Stats.AddAttrSimMemoMisses(mi)
		sp = opt.Trace.Start("topk.merge")
		msp := opt.Span.Child("topk.merge")
		res := heap.Results()
		msp.End()
		sp.End()
		return res, nil
	}

	var sink topk.ResultSink = topk.NewConcurrent(q.Params.K)
	if opt.Sink != nil {
		sink = opt.Sink
	}
	run := &stealRun{
		sch:   sched.New(len(work), workers, opt.Steal),
		work:  work,
		preps: make([]*prepState, len(work)),
	}
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		callErr error
	)
	record := func(err error) {
		errOnce.Do(func() { callErr = err })
		run.sch.Abort()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := newSearcher(ctx, sctx, sink, q, opt)
			for {
				u, ok := run.sch.Acquire()
				if !ok {
					return
				}
				var err error
				if u.Prep {
					err = s.prepUnit(run, u.Sub, w, opt.Span)
				} else {
					err = s.chunkUnit(run, u, w, opt.Span)
				}
				if err != nil {
					record(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if callErr != nil {
		return nil, callErr
	}
	sp = opt.Trace.Start("topk.merge")
	msp := opt.Span.Child("topk.merge")
	res := sink.Results()
	msp.End()
	sp.End()
	return res, nil
}

func newSearcher(ctx context.Context, sctx *simil.Context, sink topk.Sink, q *query.Query, opt Options) *searcher {
	return &searcher{
		ctx:  ctx,
		sctx: sctx,
		heap: sink,
		q:    q,
		opt:  opt,
		// With a shared (eagerly filled) memo the Context counts nothing;
		// each worker tallies its own hits in the local batch instead.
		countHits: sctx.MemoShared(),
		st:        opt.Stats,
		tr:        opt.Trace,
		tuple:     make([]int32, sctx.M),
		asims:     make([]float64, sctx.M),
		dist:      make([]float64, 0, sctx.Pairs),
	}
}

// localCounters batch per-subspace statistics so hot loops touch plain
// ints, not atomics.
type localCounters struct {
	candidates, sampledOut, cellTuples, prunedCells, pops, tuples, offered, memoHits int64
}

func (s *searcher) flushStats() {
	s.st.AddCandidates(s.local.candidates)
	s.st.AddSampledOut(s.local.sampledOut)
	s.st.AddCellTuples(s.local.cellTuples)
	s.st.AddPrunedCellPrefixes(s.local.prunedCells)
	s.st.AddRankPops(s.local.pops)
	s.st.AddTuples(s.local.tuples)
	s.st.AddOffered(s.local.offered)
	s.st.AddAttrSimMemoHits(s.local.memoHits)
	s.st.RaiseSubspaceCandidates(s.local.candidates)
	s.local = localCounters{}
}

// localDelta converts the current counter batch into a plain work
// snapshot — the delta attached to chunk spans, which carry enumeration
// work but no subspace marks.
func (s *searcher) localDelta() stats.Snapshot {
	return stats.Snapshot{
		Candidates:         s.local.candidates,
		SampledOut:         s.local.sampledOut,
		CellTuples:         s.local.cellTuples,
		PrunedCellPrefixes: s.local.prunedCells,
		RankPops:           s.local.pops,
		Tuples:             s.local.tuples,
		Offered:            s.local.offered,
		AttrSimMemoHits:    s.local.memoHits,
	}
}

// localSnapshot converts the current per-subspace counter batch into
// the work delta attached to the subspace (or prep) span; searched
// selects between the searched and skipped subspace count.
func (s *searcher) localSnapshot(searched bool) stats.Snapshot {
	snap := s.localDelta()
	snap.SubspaceCandidatesMax = s.local.candidates
	if searched {
		snap.Subspaces = 1
	} else {
		snap.SubspacesSkipped = 1
	}
	return snap
}

// prepState is one subspace's prepared search state: the grid, the
// sampled (dimension, cell) buckets and the sorted cell lists with
// their Eq.-style suffix maxima. On the sequential path each searcher
// owns one and reuses it across subspaces; on the stealing path prep
// states are pooled, handed from the preparing worker to chunk workers
// (read-only during enumeration — grid MinDist/MaxDist are pure), and
// recycled when the subspace's last chunk finishes.
type prepState struct {
	g          *grid.Grid
	buckets    [][][]simil.Cand // [dim][cell] sampled candidates, sorted desc
	cellLists  [][]scoredCell   // [dim] non-empty cells sorted by score desc
	rbarSuffix []float64
}

type searcher struct {
	ctx       context.Context
	sctx      *simil.Context
	heap      topk.Sink
	q         *query.Query
	opt       Options
	countHits bool
	st        *stats.Stats
	tr        *obs.Trace
	local     localCounters
	steps     int
	// pointDur accumulates time spent in pointEnum during the current
	// cellDFS, so the cell- and point-level phases report disjointly.
	pointDur time.Duration

	// own is the sequential path's reusable prep state; g/buckets/
	// cellLists/rbarSuffix are views of whichever prep state is attached
	// for the current enumeration.
	own        *prepState
	g          *grid.Grid
	buckets    [][][]simil.Cand
	cellLists  [][]scoredCell
	rbarSuffix []float64

	// batch scoring scratch for bucketing (category-filtered positions
	// and their blocked attribute sims)
	posBuf []int32
	simBuf []float64

	// enumeration scratch (per-searcher, reused across cell tuples)
	cellTuple  []int
	simScratch [][]float64
	listsBuf   [][]simil.Cand
	enum       *rankgraph.Enumerator

	// tuple assembly scratch
	tuple []int32
	asims []float64
	dist  []float64
}

// attach points the enumeration at a prepared subspace's state and
// lazily sizes the per-searcher enumeration scratch.
func (s *searcher) attach(p *prepState) {
	s.g = p.g
	s.buckets = p.buckets
	s.cellLists = p.cellLists
	s.rbarSuffix = p.rbarSuffix
	if s.cellTuple == nil {
		m := s.sctx.M
		s.cellTuple = make([]int, m)
		s.simScratch = make([][]float64, m)
	}
}

type scoredCell struct {
	cell  int
	score float64
}

// sortScoredCells orders cells by score descending, index ascending.
func sortScoredCells(cs []scoredCell) {
	slices.SortFunc(cs, func(a, b scoredCell) int {
		switch {
		case a.score > b.score:
			return -1
		case a.score < b.score:
			return 1
		default:
			return a.cell - b.cell
		}
	})
}

const checkEvery = 1024

func (s *searcher) checkCancel() error {
	if s.steps++; s.steps%checkEvery == 0 {
		select {
		case <-s.ctx.Done():
			return s.ctx.Err()
		default:
		}
	}
	return nil
}

// stealRun is the shared state of one parallel stealing search: the
// work-unit scheduler, the prepared-subspace handoff slots, and a small
// recycling pool of prep states (bounded by the worker count, because
// the scheduler drains queued chunks before starting new preps).
// preps[i] is written by the preparing worker before Publish and read
// by chunk workers after Acquire; the scheduler's lock orders the two.
type stealRun struct {
	sch   *sched.Scheduler
	work  []*partition.Subspace
	preps []*prepState

	mu   sync.Mutex
	pool []*prepState
}

func (r *stealRun) take() *prepState {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.pool); n > 0 {
		p := r.pool[n-1]
		r.pool = r.pool[:n-1]
		return p
	}
	return new(prepState)
}

func (r *stealRun) put(p *prepState) {
	r.mu.Lock()
	r.pool = append(r.pool, p)
	r.mu.Unlock()
}

// prepUnit buckets and samples one subspace — exactly once per
// subspace — and publishes its root cell list to the scheduler as
// steal-able chunks. The prep span carries the subspace-level work
// delta (candidate volume, sampling discards, skip marks, memo hits);
// enumeration counters land on the chunk spans.
func (s *searcher) prepUnit(run *stealRun, sub, w int, parent span.Span) error {
	var t0 time.Time
	if s.tr != nil {
		t0 = time.Now()
	}
	p := run.take()
	sp := parent.Unit("lora.prep", w, sub)
	skip, err := s.prepareInto(p, run.work[sub])
	if err != nil {
		sp.End()
		run.sch.Publish(sub, 0)
		run.put(p)
		return err
	}
	if s.tr != nil {
		s.tr.Add("lora.sample", time.Since(t0))
	}
	if skip {
		s.st.AddSubspacesSkipped(1)
		sp.EndWork(s.localSnapshot(false))
		s.flushStats()
		run.sch.Publish(sub, 0)
		run.put(p)
		return nil
	}
	s.st.AddSubspaces(1)
	sp.EndWork(s.localSnapshot(true))
	s.flushStats()
	run.preps[sub] = p
	if run.sch.Publish(sub, len(p.cellLists[0])) == 0 {
		// Aborted before any chunk was queued: no Done will follow, so
		// reclaim the prepared state here.
		run.preps[sub] = nil
		run.put(p)
	}
	return nil
}

// chunkUnit enumerates one stolen chunk: the root cell range [u.Lo,
// u.Hi) of an already-prepared subspace. The chunk span carries the
// enumeration work delta, attributed to the owning subspace, so
// Tree.Skew keeps measuring per-lane busy time and the straggler
// attribution keeps naming the heaviest subspace.
func (s *searcher) chunkUnit(run *stealRun, u sched.Unit, w int, parent span.Span) error {
	p := run.preps[u.Sub]
	var t0 time.Time
	if s.tr != nil {
		t0 = time.Now()
	}
	sp := parent.Unit("lora.chunk", w, u.Sub)
	s.attach(p)
	s.pointDur = 0
	err := s.cellDFS(0, 0, u.Lo, u.Hi)
	if s.tr != nil {
		s.tr.Add("lora.points", s.pointDur)
		s.tr.Add("lora.cells", time.Since(t0)-s.pointDur)
	}
	sp.EndWork(s.localDelta())
	s.flushStats()
	if run.sch.Done(u.Sub) {
		run.preps[u.Sub] = nil
		run.put(p)
	}
	return err
}

// prepareInto buckets candidates per (dimension, cell), Point-Samples
// each bucket, and builds the sorted cell lists and suffix maxima into
// p. It reports skip=true when a pinned object falls outside the
// subspace or some dimension has no candidate cell. Candidate and
// sampling counters accumulate into s.local; the caller attaches and
// flushes them.
func (s *searcher) prepareInto(p *prepState, ss *partition.Subspace) (skip bool, err error) {
	c := s.sctx
	m := c.M
	g, err := grid.New(ss.AC, s.q.Params.GridD)
	if err != nil {
		return false, err
	}
	p.g = g
	nc := g.NumCells()
	if p.buckets == nil {
		p.buckets = make([][][]simil.Cand, m)
		p.cellLists = make([][]scoredCell, m)
		p.rbarSuffix = make([]float64, m+1)
	}
	for d := 0; d < m; d++ {
		if p.buckets[d] == nil || len(p.buckets[d]) < nc {
			p.buckets[d] = make([][]simil.Cand, nc)
		}
		for i := 0; i < nc; i++ {
			p.buckets[d][i] = p.buckets[d][i][:0]
		}
		p.cellLists[d] = p.cellLists[d][:0]
	}

	for d := 0; d < m; d++ {
		if fixed := s.q.Example.FixedDim(d); fixed >= 0 {
			loc := c.DS.Loc(int(fixed))
			region := ss.AC
			if d == 0 {
				region = ss.Core
			}
			if !region.Contains(loc) {
				return true, nil // subspace cannot host the pinned object
			}
			cell := g.Cell(loc)
			if s.countHits {
				s.local.memoHits++
			}
			p.buckets[d][cell] = append(p.buckets[d][cell], simil.Cand{Pos: fixed, Sim: c.AttrSim(d, fixed)})
			p.cellLists[d] = append(p.cellLists[d], scoredCell{cell: cell, score: p.buckets[d][cell][0].Sim})
			continue
		}
		source := ss.ACPoints
		if d == 0 {
			source = ss.CorePoints
		}
		// Blocked batch scoring: gather the category survivors, score
		// them with one AttrSimBatch sweep, then bucket by cell. Same
		// candidate order, sims and counters as the scalar loop.
		cat := c.Ex.Categories[d]
		pos := s.posBuf[:0]
		for _, ps := range source {
			if c.DS.Category(int(ps)) == cat {
				pos = append(pos, ps)
			}
		}
		s.posBuf = pos
		s.local.candidates += int64(len(pos))
		if s.countHits {
			s.local.memoHits += int64(len(pos))
		}
		if cap(s.simBuf) < len(pos) {
			s.simBuf = make([]float64, len(pos))
		}
		sims := s.simBuf[:len(pos)]
		c.AttrSimBatch(d, pos, sims)
		for i, ps := range pos {
			cell := g.Cell(c.DS.Loc(int(ps)))
			p.buckets[d][cell] = append(p.buckets[d][cell], simil.Cand{Pos: ps, Sim: sims[i]})
		}
		for cell := 0; cell < nc; cell++ {
			b := p.buckets[d][cell]
			if len(b) == 0 {
				continue
			}
			before := len(b)
			p.buckets[d][cell] = s.sampleBucket(b, d, cell)
			s.local.sampledOut += int64(before - len(p.buckets[d][cell]))
			p.cellLists[d] = append(p.cellLists[d], scoredCell{cell: cell, score: p.buckets[d][cell][0].Sim})
		}
		if len(p.cellLists[d]) == 0 {
			return true, nil // no candidates for this dimension here
		}
	}
	for d := 0; d < m; d++ {
		sortScoredCells(p.cellLists[d])
	}
	p.rbarSuffix[m] = 0
	for d := m - 1; d >= 0; d-- {
		p.rbarSuffix[d] = p.rbarSuffix[d+1] + p.cellLists[d][0].score
	}
	return false, nil
}

// searchSubspace buckets, samples, and enumerates one subspace — the
// sequential path, where prep and enumeration stay on one goroutine.
// The sub span (a no-op when span tracing is off) is closed on every
// return path, carrying this subspace's work-counter delta.
func (s *searcher) searchSubspace(ss *partition.Subspace, sub span.Span) error {
	var t0 time.Time
	if s.tr != nil {
		t0 = time.Now()
	}
	smp := sub.Child("lora.sample")
	if s.own == nil {
		s.own = new(prepState)
	}
	skip, err := s.prepareInto(s.own, ss)
	if err != nil {
		smp.End()
		sub.End()
		return err
	}
	if s.tr != nil {
		s.tr.Add("lora.sample", time.Since(t0))
		t0 = time.Now()
	}
	smp.End()
	if skip {
		s.st.AddSubspacesSkipped(1)
		sub.EndWork(s.localSnapshot(false))
		s.flushStats()
		return nil
	}
	s.attach(s.own)
	s.st.AddSubspaces(1)
	s.pointDur = 0
	esp := sub.Child("lora.enum")
	err = s.cellDFS(0, 0, 0, len(s.cellLists[0]))
	esp.End()
	if s.tr != nil {
		// pointEnum time is carved out of the enumeration window so the
		// cell- and point-level phases stay disjoint.
		s.tr.Add("lora.points", s.pointDur)
		s.tr.Add("lora.cells", time.Since(t0)-s.pointDur)
	}
	sub.EndWork(s.localSnapshot(true))
	s.flushStats()
	return err
}

// sampleBucket applies Point-Sample (Algorithm 6): sort descending by
// attribute similarity and keep the first xi. With RandomSample the kept
// set is a seeded random subset instead (the Fig. 4 strawman), re-sorted
// descending so downstream ordering invariants hold.
func (s *searcher) sampleBucket(b []simil.Cand, dim, cell int) []simil.Cand {
	xi := s.q.Params.Xi
	if s.opt.RandomSample && xi > 0 && len(b) > xi {
		rng := newSplitMix(uint64(s.opt.RandomSeed) ^ uint64(dim)<<32 ^ uint64(cell))
		for i := len(b) - 1; i > 0; i-- {
			j := int(rng.next() % uint64(i+1))
			b[i], b[j] = b[j], b[i]
		}
		b = b[:xi]
	}
	simil.SortCandidates(b)
	if xi > 0 && len(b) > xi {
		b = b[:xi]
	}
	return b
}

// cellDFS is Cell-Tuple-Enum (Algorithm 4), restricted at this level to
// the cell-list index range [lo, hi) — the stealing path hands
// different root ranges of one subspace to different workers; recursion
// always descends over the next dimension's full list.
//
//seq:hotpath
func (s *searcher) cellDFS(dim int, scoreSum float64, lo, hi int) error {
	c := s.sctx
	for _, sc := range s.cellLists[dim][lo:hi] {
		if err := s.checkCancel(); err != nil {
			return err
		}
		sum := scoreSum + sc.score
		// Algorithm 4: spatial similarity is bounded by 1 at the cell
		// level; a failing bound prunes the cell's subtree.
		vbar := (sum + s.rbarSuffix[dim+1]) / float64(c.M)
		if !s.heap.WouldAccept(c.Combine(1, vbar)) {
			s.local.prunedCells++
			if s.opt.SortedBreak {
				// extension: monotone along the score-sorted cell list
				break
			}
			continue
		}
		s.cellTuple[dim] = sc.cell
		if s.opt.PruneCellNorm && !s.cellPrefixFeasible(dim) {
			continue
		}
		if dim+1 == c.M {
			if err := s.pointEnum(); err != nil {
				return err
			}
		} else {
			if err := s.cellDFS(dim+1, sum, 0, len(s.cellLists[dim+1])); err != nil {
				return err
			}
		}
	}
	return nil
}

// cellPrefixFeasible checks the optional beta-norm feasibility of the cell
// prefix ending at dim: if even the minimal pairwise distances already
// exceed beta*||V_t*||, or (at full depth) the maximal distances cannot
// reach ||V_t*||/beta, no point tuple inside can satisfy the constraint.
//
//seq:hotpath
func (s *searcher) cellPrefixFeasible(dim int) bool {
	c := s.sctx
	if math.IsInf(c.Beta, 1) {
		return true
	}
	if c.Metric != nil && !c.Metric.DominatesEuclidean() {
		// Euclidean cell gaps do not lower-bound such a metric.
		return true
	}
	limit := c.Beta * c.Norm
	var minSq float64
	for i := 0; i <= dim; i++ {
		for j := 0; j < i; j++ {
			if c.Active != nil && !c.Active[geo.PairIndex(j, i)] {
				continue
			}
			d := s.g.MinDist(s.cellTuple[i], s.cellTuple[j])
			minSq += d * d
		}
	}
	if minSq > limit*limit {
		return false
	}
	if dim+1 == c.M && c.Norm > 0 && c.Metric == nil {
		// the max-side check needs an upper bound on distances, which
		// Euclidean cell geometry only provides for the Euclidean metric
		var maxSq float64
		for i := 0; i <= dim; i++ {
			for j := 0; j < i; j++ {
				if c.Active != nil && !c.Active[geo.PairIndex(j, i)] {
					continue
				}
				d := s.g.MaxDist(s.cellTuple[i], s.cellTuple[j])
				maxSq += d * d
			}
		}
		lower := c.Norm / c.Beta
		if maxSq < lower*lower {
			return false
		}
	}
	return true
}

// pointEnum is Point-Tuple-Enum (Algorithm 5) for the current cell tuple.
//
//seq:hotpath
func (s *searcher) pointEnum() error {
	if s.tr != nil {
		t0 := time.Now()
		//lint:ignore hotpathalloc tracing-only branch, gated on s.tr != nil; production searches never reach it
		defer func() { s.pointDur += time.Since(t0) }()
	}
	c := s.sctx
	m := c.M
	s.local.cellTuples++
	if s.listsBuf == nil {
		//lint:ignore hotpathalloc grow-once per-searcher buffer; reused across every cell tuple
		s.listsBuf = make([][]simil.Cand, m)
	}
	lists := s.listsBuf
	for d := 0; d < m; d++ {
		lists[d] = s.buckets[d][s.cellTuple[d]]
		if len(lists[d]) == 0 {
			return nil
		}
		sims := s.simScratch[d][:0]
		for _, cd := range lists[d] {
			//lint:ignore hotpathalloc appends into the reused simScratch buffer; capacity is amortised across cell tuples
			sims = append(sims, cd.Sim)
		}
		s.simScratch[d] = sims
	}
	// Fast path: a cell tuple with exactly one combination (common in
	// sparse regions) needs no rank-graph machinery.
	single := m <= len(singleRanks)
	for d := 0; single && d < m; d++ {
		if len(lists[d]) != 1 {
			single = false
		}
	}
	if single {
		var total float64
		for d := 0; d < m; d++ {
			total += lists[d][0].Sim
		}
		if s.heap.WouldAccept(c.Combine(1, total/float64(m))) {
			s.assembleTuple(lists, singleRanks[:m])
		}
		return nil
	}

	if s.enum == nil {
		s.enum = rankgraph.New(s.simScratch[:m])
	} else {
		s.enum.Reset(s.simScratch[:m])
	}
	en := s.enum
	validPops := 0
	k := s.heap.K()
	for {
		if err := s.checkCancel(); err != nil {
			return err
		}
		ranks, total, ok := en.Next()
		if !ok {
			return nil
		}
		s.local.pops++
		attrMean := total / float64(m)
		// Future pops have lower attribute totals; once even a perfect
		// spatial similarity cannot beat the k-th result, stop.
		if !s.heap.WouldAccept(c.Combine(1, attrMean)) {
			return nil
		}
		if s.assembleTuple(lists, ranks) {
			validPops++
			if validPops >= k {
				// Observation 2: the per-subspace (here per cell tuple)
				// top-k by attribute similarity suffices.
				return nil
			}
		}
	}
}

// assembleTuple materialises the popped rank vector, applies the duplicate
// and beta-norm checks, and offers the tuple to the global top-k. It
// reports whether the tuple was valid (passed the checks).
//
//seq:hotpath
func (s *searcher) assembleTuple(lists [][]simil.Cand, ranks []int32) bool {
	c := s.sctx
	m := c.M
	for d := 0; d < m; d++ {
		cd := lists[d][ranks[d]]
		s.tuple[d] = cd.Pos
		s.asims[d] = cd.Sim
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if s.tuple[i] == s.tuple[j] {
				return false
			}
		}
	}
	s.local.tuples++
	s.dist = c.DistVectorOfPositions(s.tuple, s.dist)
	if !c.NormOK(geo.Norm(s.dist)) {
		return false
	}
	if s.heap.Offer(s.tuple, c.TupleSim(s.dist, s.asims)) {
		s.local.offered++
	}
	return true
}

// singleRanks is the all-zero rank vector reused by the singleton fast
// path (the maximum tuple size is small; 16 is far beyond any practical m).
var singleRanks [16]int32

// splitMix is a tiny deterministic PRNG for the RandomSample ablation.
type splitMix uint64

func newSplitMix(seed uint64) *splitMix {
	s := splitMix(seed)
	return &s
}

func (s *splitMix) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
