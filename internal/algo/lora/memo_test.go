package lora

import (
	"context"
	"math/rand"
	"testing"

	"spatialseq/internal/query"
	"spatialseq/internal/stats"
	"spatialseq/internal/testutil"
)

// LORA's sampling buckets look up every candidate's attribute similarity
// once per overlapping subspace — the memo's bread and butter. The counters
// must reflect that without changing which tuples are found.
func TestMemoCountersAndDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(126))
	ds := testutil.RandDataset(rng, 300, 3, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10}
	q := testutil.RandQuery(rng, ds, 3, 20, params)
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	base, err := Search(context.Background(), ds, ix, q, Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		st := &stats.Stats{}
		got, err := Search(context.Background(), ds, ix, q, Options{Parallelism: workers, Stats: st})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if workers == 1 {
			// sequential LORA is deterministic: the memo must not change it
			if len(got) != len(base) {
				t.Fatalf("sequential result count changed: %d vs %d", len(got), len(base))
			}
			for i := range got {
				if got[i].Sim != base[i].Sim {
					t.Errorf("sequential sim %d changed: %v vs %v", i, got[i].Sim, base[i].Sim)
				}
			}
		}
		snap := st.Snapshot()
		if snap.Subspaces+snap.SubspacesSkipped <= 1 {
			t.Skip("single-subspace query: memo disabled by design")
		}
		if snap.AttrSimMemoMisses == 0 {
			t.Errorf("workers=%d: no memo misses reported with %d subspaces", workers, snap.Subspaces)
		}
		if workers > 1 && snap.AttrSimMemoHits == 0 && snap.Candidates > 0 {
			t.Errorf("workers=%d: candidates bucketed but no memo hits reported", workers)
		}
	}
}

// End-to-end allocation profile of a full LORA search with reused scratch.
func BenchmarkSearchAllocs(b *testing.B) {
	rng := rand.New(rand.NewSource(127))
	ds := testutil.RandDataset(rng, 1000, 3, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10}
	q := testutil.RandQuery(rng, ds, 3, 20, params)
	if err := q.Validate(ds); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Search(context.Background(), ds, ix, q, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
