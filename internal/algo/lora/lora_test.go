package lora

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"spatialseq/internal/algo/brute"
	"spatialseq/internal/geo"
	"spatialseq/internal/query"
	"spatialseq/internal/testutil"
	"spatialseq/internal/topk"
)

// buildIndex and simsOf are the shared helpers from internal/testutil.
var (
	buildIndex = testutil.BuildIndex
	simsOf     = testutil.Sims
)

// TestTheorem3Bound verifies the paper's accuracy guarantee: with sampling
// disabled, each of LORA's top-k similarities is within the
// (1+gamma, alpha*gamma) envelope of the exact top-k, where
// gamma = 2*beta*d*sqrt(m^2-m)/||V_t*|| and d is the largest cell side
// used. We compute d conservatively from the largest possible ac-subspace
// (core diagonal < beta*||V||, inflated by beta*||V|| per side).
func TestTheorem3Bound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		ds := testutil.RandDataset(rng, 150, 3, 4, 100)
		ix := buildIndex(ds)
		params := query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 5, Xi: -1} // Xi<0: no sampling
		q := testutil.RandQuery(rng, ds, 3, 25, params)
		if err := q.Validate(ds); err != nil {
			t.Fatal(err)
		}
		q.Params.Xi = -1 // Normalize() maps 0 to the default; keep disabled
		exact := simsOf(brute.Search(ds, q))
		approx, err := Search(context.Background(), ds, ix, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := simsOf(approx)
		if len(got) == 0 && len(exact) == 0 {
			continue
		}
		norm := q.Example.Norm()
		if norm == 0 {
			continue
		}
		beta := q.Params.Beta
		m := float64(q.Example.M())
		// Largest cell side: ac side <= core side + 2*beta*norm and core
		// side <= core diagonal < beta*norm, so ac side < 3*beta*norm.
		d := 3 * beta * norm / float64(q.Params.GridD)
		gamma := 2 * beta * d * math.Sqrt(m*m-m) / norm
		for i := range exact {
			if i >= len(got) {
				t.Errorf("trial %d: LORA returned %d results, exact has %d", trial, len(got), len(exact))
				break
			}
			bound := (1+gamma)*got[i] + q.Params.Alpha*gamma
			if exact[i] > bound+1e-9 {
				t.Errorf("trial %d rank %d: exact %.6f > (1+%.3f)*%.6f + alpha*gamma = %.6f",
					trial, i, exact[i], gamma, got[i], bound)
			}
			if got[i] > exact[i]+1e-9 {
				t.Errorf("trial %d rank %d: approximate similarity %.6f exceeds exact optimum %.6f",
					trial, i, got[i], exact[i])
			}
		}
	}
}

// TestAccuracyImprovesWithD reproduces the Fig. 9(a) trend: finer grids
// bring LORA's result similarities closer to the exact optimum.
func TestAccuracyImprovesWithD(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	var coarseErr, fineErr float64
	trials := 12
	for trial := 0; trial < trials; trial++ {
		ds := testutil.RandDataset(rng, 200, 3, 4, 100)
		ix := buildIndex(ds)
		base := query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 1, Xi: 5}
		q := testutil.RandQuery(rng, ds, 3, 25, base)
		if err := q.Validate(ds); err != nil {
			t.Fatal(err)
		}
		exact := simsOf(brute.Search(ds, q))
		if len(exact) == 0 {
			continue
		}
		run := func(D, xi int) float64 {
			qq := *q
			qq.Params.GridD = D
			qq.Params.Xi = xi
			res, err := Search(context.Background(), ds, ix, &qq, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := simsOf(res)
			var sum float64
			for i := range exact {
				g := 0.0
				if i < len(got) {
					g = got[i]
				}
				sum += math.Abs(exact[i] - g)
			}
			return sum / float64(len(exact))
		}
		coarseErr += run(1, 2)
		fineErr += run(10, -1)
	}
	if fineErr > coarseErr+1e-9 {
		t.Errorf("finer grid should not be less accurate: coarse MAE sum %.6f, fine %.6f", coarseErr, fineErr)
	}
}

// TestQueryDependentBeatsRandomSampling reproduces the Fig. 4 motivation:
// with a tight sampling budget, query-dependent sampling must recover
// results at least as similar as seeded random sampling, on average.
func TestQueryDependentBeatsRandomSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	var qd, rnd float64
	for trial := 0; trial < 15; trial++ {
		ds := testutil.RandDataset(rng, 300, 2, 4, 60)
		ix := buildIndex(ds)
		params := query.Params{K: 5, Alpha: 0.2, Beta: 3, GridD: 2, Xi: 1}
		q := testutil.RandQuery(rng, ds, 2, 15, params)
		if err := q.Validate(ds); err != nil {
			t.Fatal(err)
		}
		sum := func(entries []topk.Entry) float64 {
			var s float64
			for _, e := range entries {
				s += e.Sim
			}
			return s
		}
		a, err := Search(context.Background(), ds, ix, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Search(context.Background(), ds, ix, q, Options{RandomSample: true, RandomSeed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		qd += sum(a)
		rnd += sum(b)
	}
	if qd < rnd-1e-9 {
		t.Errorf("query-dependent sampling total similarity %.6f < random sampling %.6f", qd, rnd)
	}
}

func TestResultsSatisfyNormConstraint(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	ds := testutil.RandDataset(rng, 300, 3, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 8, Alpha: 0.5, Beta: 1.3, GridD: 5, Xi: 10}
	for trial := 0; trial < 6; trial++ {
		q := testutil.RandQuery(rng, ds, 3, 20, params)
		if err := q.Validate(ds); err != nil {
			t.Fatal(err)
		}
		res, err := Search(context.Background(), ds, ix, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ref := q.Example.Norm()
		for _, e := range res {
			locs := make([]geo.Point, len(e.Tuple))
			for d, pos := range e.Tuple {
				locs[d] = ds.Object(int(pos)).Loc
			}
			if n := geo.TupleNorm(locs); !geo.NormOK(n, ref, q.Params.Beta) {
				t.Errorf("result %v violates beta-norm", e.Tuple)
			}
			for i := 0; i < len(e.Tuple); i++ {
				for j := i + 1; j < len(e.Tuple); j++ {
					if e.Tuple[i] == e.Tuple[j] {
						t.Errorf("result %v repeats an object", e.Tuple)
					}
				}
			}
		}
	}
}

func TestCellNormFilterPreservesResults(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 8; trial++ {
		ds := testutil.RandDataset(rng, 250, 3, 4, 100)
		ix := buildIndex(ds)
		params := query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10}
		q := testutil.RandQuery(rng, ds, 3, 25, params)
		if err := q.Validate(ds); err != nil {
			t.Fatal(err)
		}
		plain, err := Search(context.Background(), ds, ix, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		filtered, err := Search(context.Background(), ds, ix, q, Options{PruneCellNorm: true, SortedBreak: true})
		if err != nil {
			t.Fatal(err)
		}
		// The norm filter only removes beta-infeasible cell tuples and the
		// sorted break only skips cells whose monotone bound would fail
		// anyway, so results must be identical.
		ga, gb := simsOf(plain), simsOf(filtered)
		if len(ga) != len(gb) {
			t.Fatalf("trial %d: filter changed result count: %d vs %d", trial, len(ga), len(gb))
		}
		for i := range ga {
			if math.Abs(ga[i]-gb[i]) > 1e-12 {
				t.Errorf("trial %d rank %d: %g vs %g", trial, i, ga[i], gb[i])
			}
		}
	}
}

func TestFixedPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	for trial := 0; trial < 6; trial++ {
		ds := testutil.RandDataset(rng, 200, 3, 4, 100)
		ix := buildIndex(ds)
		params := query.Params{K: 4, Alpha: 0.5, Beta: 2.5, GridD: 4, Xi: 10}
		q := testutil.RandQuery(rng, ds, 3, 25, params)
		cands := ds.CategoryObjects(q.Example.Categories[1])
		if len(cands) == 0 {
			continue
		}
		q.Example.Fixed = []query.FixedPoint{{Dim: 1, Obj: cands[rng.Intn(len(cands))]}}
		q.Variant = query.CSEQFP
		if err := q.Validate(ds); err != nil {
			t.Fatal(err)
		}
		res, err := Search(context.Background(), ds, ix, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range res {
			if e.Tuple[1] != q.Example.Fixed[0].Obj {
				t.Errorf("result %v ignores the pinned object", e.Tuple)
			}
		}
	}
}

func TestSEQVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	ds := testutil.RandDataset(rng, 150, 3, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 6, Xi: -1}
	q := testutil.RandQuery(rng, ds, 3, 25, params)
	q.Variant = query.SEQ
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	q.Params.Xi = -1
	exact := simsOf(brute.Search(ds, q))
	res, err := Search(context.Background(), ds, ix, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := simsOf(res)
	if len(got) != len(exact) {
		t.Fatalf("SEQ: got %d results, exact %d", len(got), len(exact))
	}
	for i := range got {
		if got[i] > exact[i]+1e-9 {
			t.Errorf("rank %d: approximate %g exceeds exact %g", i, got[i], exact[i])
		}
	}
}

func TestCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	ds := testutil.RandDataset(rng, 5000, 2, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 5, Alpha: 0.5, Beta: 9, GridD: 10, Xi: 50}
	q := testutil.RandQuery(rng, ds, 4, 80, params)
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Search(ctx, ds, ix, q, Options{}); err == nil {
		t.Error("cancelled context should abort the search")
	}
}
