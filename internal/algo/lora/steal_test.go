package lora

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"spatialseq/internal/algo/sched"
	"spatialseq/internal/query"
	"spatialseq/internal/simil"
	"spatialseq/internal/testutil"
)

// TestStealValidity drives the chunked stealing path across chunk
// sizes, including chunk=1. LORA's parallel path is approximate and not
// run-deterministic (a stale shared threshold changes which cells stop
// early), so the checks are invariants rather than equality:
//
//   - every returned tuple is feasible and its reported score matches a
//     from-scratch simil evaluation bit-for-bit;
//   - scores arrive in non-increasing rank order;
//   - rank-wise, the stolen run is at least as good as the sequential
//     LORA run (minus float tolerance): parallel workers offer a
//     superset of the sequential offers, because a stale threshold only
//     stops rank-graph pops later and prunes fewer cell prefixes.
func TestStealValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for trial := 0; trial < 4; trial++ {
		ds := testutil.RandDataset(rng, 400, 3, 4, 100)
		ix := buildIndex(ds)
		params := query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10}
		q := testutil.RandQuery(rng, ds, 3, 20, params)
		if err := q.Validate(ds); err != nil {
			t.Fatal(err)
		}
		seq, err := Search(context.Background(), ds, ix, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sctx := simil.NewContext(ds, q)
		for _, cs := range []int{1, 4, -1} {
			res, err := Search(context.Background(), ds, ix, q, Options{
				Parallelism: 4,
				Steal:       sched.Tuning{ChunkSize: cs},
			})
			if err != nil {
				t.Fatalf("chunk=%d: %v", cs, err)
			}
			for rank, e := range res {
				sim, ok := sctx.SimOfPositions(e.Tuple)
				if !ok {
					t.Errorf("trial %d chunk %d rank %d: infeasible tuple %v", trial, cs, rank, e.Tuple)
					continue
				}
				if sim != e.Sim {
					t.Errorf("trial %d chunk %d rank %d: reported sim %v, recomputed %v",
						trial, cs, rank, e.Sim, sim)
				}
				if rank > 0 && e.Sim > res[rank-1].Sim {
					t.Errorf("trial %d chunk %d: rank %d sim %v above rank %d sim %v",
						trial, cs, rank, e.Sim, rank-1, res[rank-1].Sim)
				}
				if rank < len(seq) && e.Sim < seq[rank].Sim-1e-9 {
					t.Errorf("trial %d chunk %d rank %d: stolen run %v worse than sequential %v",
						trial, cs, rank, e.Sim, seq[rank].Sim)
				}
				if math.IsNaN(e.Sim) || e.Sim < 0 {
					t.Errorf("trial %d chunk %d rank %d: bad sim %v", trial, cs, rank, e.Sim)
				}
			}
		}
	}
}

// TestStealCancellation: cancellation must abort promptly with
// fine-grained chunks in flight.
func TestStealCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	ds := testutil.RandDataset(rng, 4000, 2, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 5, Alpha: 0.5, Beta: 9, GridD: 8, Xi: 50}
	q := testutil.RandQuery(rng, ds, 4, 60, params)
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Search(ctx, ds, ix, q, Options{
		Parallelism: 4,
		Steal:       sched.Tuning{ChunkSize: 1},
	}); err == nil {
		t.Error("cancelled stealing search should abort")
	}
}
