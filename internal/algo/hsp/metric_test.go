package hsp

import (
	"context"
	"math/rand"
	"testing"

	"spatialseq/internal/algo/brute"
	"spatialseq/internal/algo/lora"
	"spatialseq/internal/geo"
	"spatialseq/internal/query"
	"spatialseq/internal/roadnet"
	"spatialseq/internal/testutil"
)

// The pluggable-metric variant (travel distances, paper Section II-A):
// exactness must hold when all distances — example and candidates — come
// from a road network instead of the Euclidean plane.

func roadMetric(t *testing.T) query.Metric {
	t.Helper()
	net, err := roadnet.Grid(roadnet.GridConfig{
		Bounds: geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100},
		NX:     21, NY: 21,
		DropFrac: 0.1,
		Meander:  0.3,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net.NewMetric(0)
}

func TestRoadMetricExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	metric := roadMetric(t)
	for trial := 0; trial < 4; trial++ {
		ds := testutil.RandDataset(rng, 50, 3, 4, 100)
		ix := buildIndex(ds)
		params := query.Params{K: 4, Alpha: 0.5, Beta: 2.5, GridD: 4, Xi: 10}
		q := testutil.RandQuery(rng, ds, 3, 30, params)
		q.Example.Metric = metric
		if err := q.Validate(ds); err != nil {
			t.Fatal(err)
		}
		want := simsOf(brute.Search(ds, q))
		got, err := Search(context.Background(), ds, ix, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !simsEqual(simsOf(got), want, 1e-9) {
			t.Errorf("trial %d: HSP under road metric %v != brute %v", trial, simsOf(got), want)
		}
	}
}

func TestRoadMetricLORAUpperBoundedByExact(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	metric := roadMetric(t)
	ds := testutil.RandDataset(rng, 80, 3, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 4, Alpha: 0.5, Beta: 2.5, GridD: 4, Xi: -1}
	q := testutil.RandQuery(rng, ds, 3, 30, params)
	q.Example.Metric = metric
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	q.Params.Xi = -1
	exact := simsOf(brute.Search(ds, q))
	approx, err := lora.Search(context.Background(), ds, ix, q, lora.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := simsOf(approx)
	for i := range got {
		if i < len(exact) && got[i] > exact[i]+1e-9 {
			t.Errorf("rank %d: LORA %g exceeds exact %g", i, got[i], exact[i])
		}
	}
}

// A metric that does NOT dominate the Euclidean distance must force the
// whole-space fallback but keep results exact.
type halfMetric struct{}

func (halfMetric) Dist(a, b geo.Point) float64 { return a.Dist(b) / 2 }
func (halfMetric) DominatesEuclidean() bool    { return false }

func TestNonDominatingMetricStaysExact(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	ds := testutil.RandDataset(rng, 60, 3, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 4, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10}
	q := testutil.RandQuery(rng, ds, 3, 30, params)
	q.Example.Metric = halfMetric{}
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	want := simsOf(brute.Search(ds, q))
	got, err := Search(context.Background(), ds, ix, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !simsEqual(simsOf(got), want, 1e-9) {
		t.Errorf("HSP under non-dominating metric %v != brute %v", simsOf(got), want)
	}
}
