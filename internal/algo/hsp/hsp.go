// Package hsp implements the paper's exact algorithm HSP (Hierarchical
// Space Partitioning, Section III-B).
//
// HSP partitions the data space into core subspaces whose diagonal is
// below beta*||V_t*|| and searches each core's ac-subspace independently.
// Inside a subspace it runs Exact-DFS (Algorithm 1) with three refinements
// over DFS-Prune:
//
//  1. first-point-in-core selection (Lemma 1: every candidate tuple is
//     enumerated exactly once across all subspaces);
//  2. the refined attribute bound of Eq. 6 (unseen dimensions bounded by
//     the subspace's per-dimension maxima instead of 1);
//  3. the refined spatial bound of Eq. 9 combined with Eq. 5 (tighter
//     wins), plus unconditional pruning of prefixes whose partial distance
//     norm already exceeds beta*||V_t*||.
package hsp

import (
	"context"
	"math"
	"runtime"
	"sync"
	"time"

	"spatialseq/internal/algo/sched"
	"spatialseq/internal/dataset"
	"spatialseq/internal/geo"
	"spatialseq/internal/obs"
	"spatialseq/internal/obs/span"
	"spatialseq/internal/partition"
	"spatialseq/internal/query"
	"spatialseq/internal/simil"
	"spatialseq/internal/stats"
	"spatialseq/internal/topk"
)

// hspMinChunk floors the auto-sized steal chunks: below ~16 root
// candidates per unit the scheduler round-trip costs more than the DFS
// subtree it hands out.
const hspMinChunk = 16

// Options tune implementation details; the zero value is the paper's HSP.
type Options struct {
	// DisablePartition searches the whole space as one subspace (for the
	// A1 ablation benchmark isolating the partitioning gain).
	DisablePartition bool
	// LooseBounds falls back to DFS-Prune's bounds inside the subspace
	// search (A4 ablation isolating the refined-bound gain).
	LooseBounds bool
	// SortedBreak is an extension beyond the paper: because candidates
	// are sorted descending by attribute similarity and the attribute
	// bound is monotone along that order, a failing attribute-only bound
	// implies every later candidate fails too, so the whole level can be
	// abandoned instead of just the subtree. Off by default for fidelity
	// to Algorithm 1 (ablation A5 measures the gain).
	SortedBreak bool
	// Parallelism spreads the search over this many goroutines sharing
	// one concurrent top-k (exactness is unaffected: a stale pruning
	// threshold only admits extra candidates, and the tie-break is
	// order-independent). The unit of parallel work is smaller than a
	// subspace: prepared subspaces are split into dim-0 candidate chunks
	// workers steal from a shared scheduler, so one fat subspace no
	// longer caps speedup. <= 1 searches sequentially; negative uses
	// GOMAXPROCS.
	Parallelism int
	// Steal tunes the work-unit scheduler of the parallel path (chunk
	// sizing of the stolen dim-0 ranges). The zero value auto-sizes.
	Steal sched.Tuning
	// Own, when non-nil, restricts the search to the subspaces whose core
	// rectangle it claims. The sharded serving tier hands each shard a
	// disjoint claim over the subspace cores: Lemma 1 enumerates every
	// candidate tuple in exactly one core subspace, so the union of the
	// shards' filtered searches equals the unfiltered search. Must be
	// pure (same answer for the same rectangle within one call).
	Own func(core geo.Rect) bool
	// Sink, when non-nil, replaces the internally allocated top-k
	// collector. It must be safe for concurrent use when Parallelism > 1.
	// The sharded tier injects a sink that couples the shard-local top-k
	// to the cross-shard pruning-threshold exchange.
	Sink topk.ResultSink
	// Stats, when non-nil, collects per-search counters (subspaces,
	// candidates, pruned prefixes, scored tuples).
	Stats *stats.Stats
	// Trace, when non-nil, records per-phase wall time (partitioning,
	// candidate enumeration, DFS, top-k merge). With Parallelism > 1
	// the phase times sum across workers and can exceed wall time.
	Trace *obs.Trace
	// Span, when live, is the parent span the search nests its
	// hierarchical timeline under. The sequential path opens one worker
	// lane with a subspace span per searched subspace; the parallel path
	// opens one "hsp.prep" / "hsp.chunk" unit span per stolen work unit,
	// each tagged with both its worker lane and owning subspace and
	// carrying that unit's work-counter delta. The zero Span disables
	// span tracing at no cost.
	Span span.Span
}

// Search answers q exactly using the prebuilt partition index ix (which
// must index exactly the locations of ds, in dataset position order).
func Search(ctx context.Context, ds *dataset.Dataset, ix *partition.Index, q *query.Query, opt Options) ([]topk.Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sctx := simil.NewContext(ds, q)
	radius := sctx.PartitionRadius()
	if opt.DisablePartition {
		// Ablation flag: one subspace covering everything stays exact.
		radius = math.Inf(1)
	}
	sp := opt.Trace.Start("hsp.partition")
	psp := opt.Span.Child("hsp.partition")
	part, err := ix.PartitionBucketed(radius)
	psp.End()
	sp.End()
	if err != nil {
		return nil, err
	}

	// If dimension 0 is pinned, only the subspace owning that point's core
	// can produce results (Lemma 1 discipline).
	fixed0 := q.Example.FixedDim(0)
	work := make([]*partition.Subspace, 0, len(part.Subspaces))
	for si := range part.Subspaces {
		ss := &part.Subspaces[si]
		if fixed0 >= 0 && !ss.Core.Contains(ds.Loc(int(fixed0))) {
			continue
		}
		if opt.Own != nil && !opt.Own(ss.Core) {
			continue
		}
		work = append(work, ss)
	}

	workers := opt.Parallelism
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Workers are deliberately not capped at len(work): chunked stealing
	// lets several workers share one subspace's DFS root level, so even a
	// single-subspace query (DisablePartition, or a pinned dim 0)
	// parallelizes.
	// With more than one subspace the overlapping ac-regions revisit the
	// same (dimension, object) pairs, so memoize the attribute cosines:
	// lazily on the sequential path, eagerly (read-only, worker-safe) when
	// subspaces run in parallel. A single subspace has no reuse to win.
	if len(work) > 1 {
		sp = opt.Trace.Start("hsp.simprep")
		ssp := opt.Span.Child("hsp.simprep")
		if workers > 1 {
			opt.Stats.AddAttrSimMemoMisses(sctx.PrepareMemoShared())
		} else {
			sctx.EnableMemo()
		}
		ssp.End()
		sp.End()
	}
	if workers <= 1 {
		var heap topk.ResultSink = topk.New(q.Params.K)
		if opt.Sink != nil {
			heap = opt.Sink
		}
		s := newSearcher(ctx, sctx, heap, opt)
		ws := opt.Span.Worker("hsp.worker", 0)
		for i, ss := range work {
			sub := ws.Subspace("hsp.subspace", i)
			if err := s.searchSubspace(ds, q, ss, sub); err != nil {
				ws.End()
				return nil, err
			}
		}
		ws.End()
		h, mi := sctx.MemoCounters()
		opt.Stats.AddAttrSimMemoHits(h)
		opt.Stats.AddAttrSimMemoMisses(mi)
		sp = opt.Trace.Start("topk.merge")
		msp := opt.Span.Child("topk.merge")
		res := heap.Results()
		msp.End()
		sp.End()
		return res, nil
	}

	var sink topk.ResultSink = topk.NewConcurrent(q.Params.K)
	if opt.Sink != nil {
		sink = opt.Sink
	}
	tun := opt.Steal
	if tun.MinChunk <= 0 {
		tun.MinChunk = hspMinChunk
	}
	run := &stealRun{
		sch:   sched.New(len(work), workers, tun),
		work:  work,
		preps: make([]*prepState, len(work)),
	}
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		callErr error
	)
	record := func(err error) {
		errOnce.Do(func() { callErr = err })
		run.sch.Abort()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := newSearcher(ctx, sctx, sink, opt)
			for {
				u, ok := run.sch.Acquire()
				if !ok {
					return
				}
				var err error
				if u.Prep {
					err = s.prepUnit(ds, q, run, u.Sub, w, opt.Span)
				} else {
					err = s.chunkUnit(run, u, w, opt.Span)
				}
				if err != nil {
					record(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if callErr != nil {
		return nil, callErr
	}
	sp = opt.Trace.Start("topk.merge")
	msp := opt.Span.Child("topk.merge")
	res := sink.Results()
	msp.End()
	sp.End()
	return res, nil
}

// stealRun is the shared state of one parallel stealing search: the
// work-unit scheduler, the prepared-subspace handoff slots, and a small
// recycling pool of prep states (bounded by the worker count, because
// the scheduler drains queued chunks before starting new preps).
// preps[i] is written by the preparing worker before Publish and read
// by chunk workers after Acquire; the scheduler's lock orders the two.
type stealRun struct {
	sch   *sched.Scheduler
	work  []*partition.Subspace
	preps []*prepState

	mu   sync.Mutex
	pool []*prepState
}

func (r *stealRun) take() *prepState {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.pool); n > 0 {
		p := r.pool[n-1]
		r.pool = r.pool[:n-1]
		return p
	}
	return new(prepState)
}

func (r *stealRun) put(p *prepState) {
	r.mu.Lock()
	r.pool = append(r.pool, p)
	r.mu.Unlock()
}

// prepUnit prepares one subspace — exactly once per subspace, keeping
// the Lemma-1 discipline — and publishes its dim-0 candidate range to
// the scheduler as steal-able chunks. The prep span carries the
// subspace-level work delta (candidate volume, skip marks, memo hits);
// enumeration counters land on the chunk spans.
func (s *searcher) prepUnit(ds *dataset.Dataset, q *query.Query, run *stealRun, sub, w int, parent span.Span) error {
	s.local = localCounters{}
	var t0 time.Time
	if s.tr != nil {
		t0 = time.Now()
	}
	p := run.take()
	sp := parent.Unit("hsp.prep", w, sub)
	skip, err := s.prepareInto(p, ds, q, run.work[sub])
	if s.tr != nil {
		s.tr.Add("hsp.candidates", time.Since(t0))
	}
	if err != nil || skip {
		if skip {
			s.st.AddSubspacesSkipped(1)
			sp.EndWork(stats.Snapshot{SubspacesSkipped: 1, AttrSimMemoHits: s.local.memoHits})
		} else {
			sp.End()
		}
		s.st.AddAttrSimMemoHits(s.local.memoHits)
		run.sch.Publish(sub, 0)
		run.put(p)
		return err
	}
	s.st.AddSubspaces(1)
	s.st.AddCandidates(p.candTotal)
	s.st.RaiseSubspaceCandidates(p.candTotal)
	s.st.AddAttrSimMemoHits(s.local.memoHits)
	sp.EndWork(stats.Snapshot{
		Subspaces:             1,
		Candidates:            p.candTotal,
		AttrSimMemoHits:       s.local.memoHits,
		SubspaceCandidatesMax: p.candTotal,
	})
	run.preps[sub] = p
	if run.sch.Publish(sub, len(p.cands[0])) == 0 {
		// Aborted before any chunk was queued: no Done will follow, so
		// reclaim the prepared state here.
		run.preps[sub] = nil
		run.put(p)
	}
	return nil
}

// chunkUnit runs Exact-DFS over one stolen chunk: the dim-0 candidate
// range [u.Lo, u.Hi) of an already-prepared subspace. The chunk span
// carries the enumeration work delta, attributed to the owning
// subspace, so Tree.Skew keeps measuring per-lane busy time and the
// straggler attribution keeps naming the heaviest subspace.
func (s *searcher) chunkUnit(run *stealRun, u sched.Unit, w int, parent span.Span) error {
	p := run.preps[u.Sub]
	s.local = localCounters{}
	var t0 time.Time
	if s.tr != nil {
		t0 = time.Now()
	}
	sp := parent.Unit("hsp.chunk", w, u.Sub)
	s.attach(p)
	err := s.dfs(0, 0, u.Lo, u.Hi)
	if s.tr != nil {
		s.tr.Add("hsp.dfs", time.Since(t0))
	}
	s.st.AddPrunedPrefixes(s.local.pruned)
	s.st.AddTuples(s.local.tuples)
	s.st.AddOffered(s.local.offered)
	sp.EndWork(stats.Snapshot{
		PrunedPrefixes: s.local.pruned,
		Tuples:         s.local.tuples,
		Offered:        s.local.offered,
	})
	if run.sch.Done(u.Sub) {
		run.preps[u.Sub] = nil
		run.put(p)
	}
	return err
}

func newSearcher(ctx context.Context, sctx *simil.Context, sink topk.Sink, opt Options) *searcher {
	return &searcher{
		ctx:         ctx,
		sctx:        sctx,
		heap:        sink,
		tuple:       make([]int32, sctx.M),
		scratch:     sctx.NewScratch(),
		loose:       opt.LooseBounds,
		sortedBreak: opt.SortedBreak,
		// With a shared (eagerly filled) memo the Context counts nothing;
		// each worker tallies its own hits in the local batch instead.
		countHits: sctx.MemoShared(),
		st:        opt.Stats,
		tr:        opt.Trace,
	}
}

// searchSubspace prepares and runs Exact-DFS over one subspace — the
// sequential path, where prep and enumeration stay on one goroutine.
// The sub span (a no-op when span tracing is off) is closed on every
// return path, carrying this subspace's work-counter delta.
func (s *searcher) searchSubspace(ds *dataset.Dataset, q *query.Query, ss *partition.Subspace, sub span.Span) error {
	s.local = localCounters{}
	var t0 time.Time
	if s.tr != nil {
		t0 = time.Now()
	}
	csp := sub.Child("hsp.candidates")
	if s.own == nil {
		s.own = new(prepState)
	}
	skip, err := s.prepareInto(s.own, ds, q, ss)
	csp.End()
	if s.tr != nil {
		s.tr.Add("hsp.candidates", time.Since(t0))
	}
	if err != nil || skip {
		if skip {
			s.st.AddSubspacesSkipped(1)
			sub.EndWork(stats.Snapshot{SubspacesSkipped: 1, AttrSimMemoHits: s.local.memoHits})
		} else {
			sub.End()
		}
		s.st.AddAttrSimMemoHits(s.local.memoHits)
		return err
	}
	s.st.AddSubspaces(1)
	candTotal := s.own.candTotal
	s.st.AddCandidates(candTotal)
	s.st.RaiseSubspaceCandidates(candTotal)
	if s.tr != nil {
		t0 = time.Now()
	}
	dsp := sub.Child("hsp.dfs")
	s.attach(s.own)
	err = s.dfs(0, 0, 0, len(s.cands[0]))
	dsp.End()
	if s.tr != nil {
		s.tr.Add("hsp.dfs", time.Since(t0))
	}
	s.st.AddPrunedPrefixes(s.local.pruned)
	s.st.AddTuples(s.local.tuples)
	s.st.AddOffered(s.local.offered)
	s.st.AddAttrSimMemoHits(s.local.memoHits)
	sub.EndWork(stats.Snapshot{
		Subspaces:             1,
		Candidates:            candTotal,
		PrunedPrefixes:        s.local.pruned,
		Tuples:                s.local.tuples,
		Offered:               s.local.offered,
		AttrSimMemoHits:       s.local.memoHits,
		SubspaceCandidatesMax: candTotal,
	})
	return err
}

// localCounters batch the per-subspace statistics so the DFS hot loop
// touches plain ints, not atomics.
type localCounters struct {
	pruned, tuples, offered, memoHits int64
}

// prepState is one subspace's prepared search state: the per-dimension
// candidate lists and Eq. 6 suffix maxima. On the sequential path each
// searcher owns one and reuses it across subspaces; on the stealing
// path prep states are pooled, handed from the preparing worker to
// chunk workers (read-only during enumeration), and recycled when the
// subspace's last chunk finishes.
type prepState struct {
	cands      [][]simil.Cand
	rbarSuffix []float64
	candTotal  int64
}

type searcher struct {
	ctx         context.Context
	sctx        *simil.Context
	heap        topk.Sink
	tuple       []int32
	scratch     *simil.Scratch
	batch       simil.BatchScratch
	loose       bool
	sortedBreak bool
	countHits   bool

	// own is the sequential path's reusable prep state; cands/rbarSuffix
	// are views of whichever prep state is attached for the current DFS.
	own        *prepState
	cands      [][]simil.Cand
	rbarSuffix []float64
	steps      int
	st         *stats.Stats
	tr         *obs.Trace
	local      localCounters
}

// attach points the DFS at a prepared subspace's candidate lists and
// resets the prefix scratch.
func (s *searcher) attach(p *prepState) {
	s.cands = p.cands
	s.rbarSuffix = p.rbarSuffix
	s.scratch.Reset()
}

// prepareInto builds the per-subspace candidate lists and Eq. 6 suffix
// maxima into p. It reports skip=true when some dimension has no
// candidate (the subspace cannot produce a tuple) or a pinned object
// falls outside the ac-subspace.
func (s *searcher) prepareInto(p *prepState, ds *dataset.Dataset, q *query.Query, ss *partition.Subspace) (skip bool, err error) {
	c := s.sctx
	m := c.M
	if p.cands == nil {
		p.cands = make([][]simil.Cand, m)
		p.rbarSuffix = make([]float64, m+1)
	}
	p.candTotal = 0
	for d := 0; d < m; d++ {
		if fixed := q.Example.FixedDim(d); fixed >= 0 {
			loc := ds.Loc(int(fixed))
			region := ss.AC
			if d == 0 {
				region = ss.Core
			}
			if !region.Contains(loc) {
				return true, nil
			}
			p.cands[d] = append(p.cands[d][:0], simil.Cand{Pos: fixed, Sim: c.AttrSim(d, fixed)})
			if s.countHits {
				s.local.memoHits++
			}
			continue
		}
		source := ss.ACPoints
		if d == 0 {
			source = ss.CorePoints
		}
		p.cands[d] = s.candidatesInto(d, source, p.cands[d][:0])
		if len(p.cands[d]) == 0 {
			return true, nil
		}
	}
	p.rbarSuffix[m] = 0
	for d := m - 1; d >= 0; d-- {
		p.rbarSuffix[d] = p.rbarSuffix[d+1] + p.cands[d][0].Sim
	}
	for d := 0; d < m; d++ {
		p.candTotal += int64(len(p.cands[d]))
	}
	return false, nil
}

// candidatesInto wraps the blocked simil.Context.CandidatesBatchInto
// with the per-worker buffer reuse and, on the shared-memo path, the
// hit accounting (every AttrSim against a complete read-only table is
// a hit).
func (s *searcher) candidatesInto(dim int, positions []int32, dst []simil.Cand) []simil.Cand {
	dst = s.sctx.CandidatesBatchInto(dst, dim, positions, &s.batch)
	if s.countHits {
		s.local.memoHits += int64(len(dst))
	}
	return dst
}

const checkEvery = 4096

// dfs is Exact-DFS (Algorithm 1) over the current subspace's
// candidates, restricted at this level to the index range [lo, hi) —
// the stealing path hands different dim-0 ranges of one subspace to
// different workers; recursion always descends over the next
// dimension's full list.
//
//seq:hotpath
func (s *searcher) dfs(dim int, attrSum float64, lo, hi int) error {
	c := s.sctx
	for _, cand := range s.cands[dim][lo:hi] {
		if s.steps++; s.steps%checkEvery == 0 {
			select {
			case <-s.ctx.Done():
				return s.ctx.Err()
			default:
			}
		}
		if s.used(cand.Pos, dim) {
			continue
		}
		sum := attrSum + cand.Sim
		var attrBound float64
		if s.loose {
			attrBound = c.AttrBoundLoose(sum, dim+1)
		} else {
			attrBound = c.AttrBoundRefined(sum, dim+1, s.rbarSuffix)
		}
		if !s.heap.WouldAccept(c.Combine(1, attrBound)) {
			s.local.pruned++
			if s.sortedBreak {
				// extension: the bound is monotone along the
				// similarity-sorted list, so later candidates fail too
				break
			}
			continue
		}
		s.tuple[dim] = cand.Pos
		added := s.scratch.Push(c.DS.Loc(int(cand.Pos)), cand.Sim)
		if dim+1 == c.M {
			s.local.tuples++
			if c.NormOK(s.scratch.PrefixNorm()) {
				if s.heap.Offer(s.tuple, c.TupleSim(s.scratch.Y, s.scratch.AttrSims)) {
					s.local.offered++
				}
			}
		} else {
			var spatialBound float64
			if s.loose {
				spatialBound = c.SpatialBoundEq5(s.scratch.Y)
			} else {
				spatialBound = c.SpatialBound(s.scratch.Y)
			}
			if !math.IsInf(spatialBound, -1) &&
				s.heap.WouldAccept(c.Combine(spatialBound, attrBound)) {
				if err := s.dfs(dim+1, sum, 0, len(s.cands[dim+1])); err != nil {
					return err
				}
			} else {
				s.local.pruned++
			}
		}
		s.scratch.Pop(added)
	}
	return nil
}

func (s *searcher) used(pos int32, dim int) bool {
	for d := 0; d < dim; d++ {
		if s.tuple[d] == pos {
			return true
		}
	}
	return false
}
