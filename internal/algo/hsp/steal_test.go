package hsp

import (
	"context"
	"math/rand"
	"testing"

	"spatialseq/internal/algo/brute"
	"spatialseq/internal/algo/sched"
	"spatialseq/internal/query"
	"spatialseq/internal/testutil"
	"spatialseq/internal/topk"
)

// TestStealExactness drives the chunked stealing path across chunk
// sizes — including the adversarial chunk=1 (every dim-0 candidate its
// own steal unit) and chunk=-1 (whole-subspace units, the pre-stealing
// granularity) — and worker counts above the subspace count. Every
// combination must match the brute-force oracle exactly.
func TestStealExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 4; trial++ {
		ds := testutil.RandDataset(rng, 300, 3, 4, 100)
		ix := buildIndex(ds)
		params := query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10}
		q := testutil.RandQuery(rng, ds, 3, 20, params)
		if err := q.Validate(ds); err != nil {
			t.Fatal(err)
		}
		want := simsOf(brute.Search(ds, q))
		for _, cs := range []int{1, 2, 7, -1} {
			for _, workers := range []int{2, 8} {
				got, err := Search(context.Background(), ds, ix, q, Options{
					Parallelism: workers,
					Steal:       sched.Tuning{ChunkSize: cs},
				})
				if err != nil {
					t.Fatalf("chunk=%d workers=%d: %v", cs, workers, err)
				}
				if !simsEqual(simsOf(got), want, 1e-9) {
					t.Errorf("trial %d chunk %d workers %d: sims %v != brute %v",
						trial, cs, workers, simsOf(got), want)
				}
			}
		}
	}
}

// TestStealDeterministicTies: results must be tuple-identical across
// repeated runs regardless of steal order, because the concurrent
// top-k's tie-break is order-independent.
func TestStealDeterministicTies(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	// Few categories and a coarse coordinate grid manufacture score ties.
	ds := testutil.RandDataset(rng, 400, 3, 2, 10)
	ix := buildIndex(ds)
	params := query.Params{K: 8, Alpha: 0.5, Beta: 2.0, GridD: 4, Xi: 10}
	q := testutil.RandQuery(rng, ds, 3, 30, params)
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	var want []topk.Entry
	for run := 0; run < 10; run++ {
		got, err := Search(context.Background(), ds, ix, q, Options{
			Parallelism: 4,
			Steal:       sched.Tuning{ChunkSize: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("run %d: %d results, first run had %d", run, len(got), len(want))
		}
		for i := range got {
			if got[i].Sim != want[i].Sim {
				t.Fatalf("run %d rank %d: sim %v != %v", run, i, got[i].Sim, want[i].Sim)
			}
			for d := range got[i].Tuple {
				if got[i].Tuple[d] != want[i].Tuple[d] {
					t.Fatalf("run %d rank %d: tuple %v != %v", run, i, got[i].Tuple, want[i].Tuple)
				}
			}
		}
	}
}

// TestStealSingleSubspace: with partitioning disabled there is exactly
// one subspace, which the pre-stealing split could not parallelize at
// all. Chunked stealing must still use every worker and stay exact.
func TestStealSingleSubspace(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	ds := testutil.RandDataset(rng, 250, 3, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10}
	q := testutil.RandQuery(rng, ds, 3, 20, params)
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	want := simsOf(brute.Search(ds, q))
	got, err := Search(context.Background(), ds, ix, q, Options{
		Parallelism:      4,
		DisablePartition: true,
		Steal:            sched.Tuning{ChunkSize: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !simsEqual(simsOf(got), want, 1e-9) {
		t.Errorf("single-subspace steal sims %v != brute %v", simsOf(got), want)
	}
}

// TestStealCancellation: cancellation must abort promptly even with
// many fine-grained chunks in flight.
func TestStealCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(134))
	ds := testutil.RandDataset(rng, 3000, 2, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 5, Alpha: 0.5, Beta: 9, GridD: 4, Xi: 10}
	q := testutil.RandQuery(rng, ds, 4, 60, params)
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Search(ctx, ds, ix, q, Options{
		Parallelism: 4,
		Steal:       sched.Tuning{ChunkSize: 1},
	}); err == nil {
		t.Error("cancelled stealing search should abort")
	}
}
