package hsp

import (
	"context"
	"math/rand"
	"testing"

	"spatialseq/internal/algo/brute"
	"spatialseq/internal/algo/dfsprune"
	"spatialseq/internal/algo/lora"
	"spatialseq/internal/query"
	"spatialseq/internal/testutil"
)

// The skipped-pairs variant ("distance pairs not interested", paper
// Section II remarks): exactness must hold with masked distance vectors,
// and the partitioning must widen its radius by the pair-graph diameter.

func TestSkipPairsExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 6; trial++ {
		ds := testutil.RandDataset(rng, 60, 3, 4, 100)
		ix := buildIndex(ds)
		params := query.Params{K: 5, Alpha: 0.5, Beta: 2.0, GridD: 4, Xi: 10}
		q := testutil.RandQuery(rng, ds, 4, 30, params)
		// skip (0,2) and (1,3): the pair graph stays connected (path via
		// the other pairs), diameter 2.
		q.Example.SkipPairs = [][2]int{{0, 2}, {1, 3}}
		if err := q.Validate(ds); err != nil {
			t.Fatal(err)
		}
		if diam, connected := q.Example.PairGraphDiameter(); !connected || diam != 2 {
			t.Fatalf("diameter = %d, connected = %v; want 2, true", diam, connected)
		}
		want := simsOf(brute.Search(ds, q))
		got, err := Search(context.Background(), ds, ix, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !simsEqual(simsOf(got), want, 1e-9) {
			t.Errorf("trial %d: HSP with skipped pairs %v != brute %v", trial, simsOf(got), want)
		}
		gotDFS, err := dfsprune.Search(context.Background(), ds, q)
		if err != nil {
			t.Fatal(err)
		}
		if !simsEqual(simsOf(gotDFS), want, 1e-9) {
			t.Errorf("trial %d: DFS-Prune with skipped pairs diverges", trial)
		}
	}
}

func TestSkipPairsLORAStaysNearExact(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	ds := testutil.RandDataset(rng, 120, 3, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 5, Alpha: 0.5, Beta: 2.0, GridD: 6, Xi: -1}
	q := testutil.RandQuery(rng, ds, 3, 25, params)
	q.Example.SkipPairs = [][2]int{{0, 2}}
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	q.Params.Xi = -1
	exact := simsOf(brute.Search(ds, q))
	approx, err := lora.Search(context.Background(), ds, ix, q, lora.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := simsOf(approx)
	for i := range got {
		if i < len(exact) && got[i] > exact[i]+1e-9 {
			t.Errorf("rank %d: LORA %g exceeds exact %g", i, got[i], exact[i])
		}
	}
	if len(exact) > 0 && len(got) == 0 {
		t.Error("LORA found nothing where exact found results")
	}
}

func TestSkipPairsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	ds := testutil.RandDataset(rng, 50, 3, 4, 100)
	params := query.Params{K: 5, Alpha: 0.5, Beta: 2.0, GridD: 4, Xi: 10}

	// out-of-range pair
	q := testutil.RandQuery(rng, ds, 3, 25, params)
	q.Example.SkipPairs = [][2]int{{0, 7}}
	if err := q.Validate(ds); err == nil {
		t.Error("out-of-range skipped pair should be rejected")
	}

	// self pair
	q = testutil.RandQuery(rng, ds, 3, 25, params)
	q.Example.SkipPairs = [][2]int{{1, 1}}
	if err := q.Validate(ds); err == nil {
		t.Error("self pair should be rejected")
	}

	// all pairs skipped
	q = testutil.RandQuery(rng, ds, 2, 25, params)
	q.Example.SkipPairs = [][2]int{{0, 1}}
	if err := q.Validate(ds); err == nil {
		t.Error("skipping every pair should be rejected")
	}

	// disconnected graph under CSEQ: m=3, skip (0,1) and (0,2) isolates 0
	q = testutil.RandQuery(rng, ds, 3, 25, params)
	q.Example.SkipPairs = [][2]int{{0, 1}, {0, 2}}
	if err := q.Validate(ds); err == nil {
		t.Error("disconnected pair graph under CSEQ should be rejected")
	}

	// ... but allowed under SEQ (no norm constraint to enforce)
	q = testutil.RandQuery(rng, ds, 3, 25, params)
	q.Example.SkipPairs = [][2]int{{0, 1}, {0, 2}}
	q.Variant = query.SEQ
	if err := q.Validate(ds); err != nil {
		t.Errorf("SEQ with disconnected pair graph should validate: %v", err)
	}
}

func TestSkipPairsChangeResults(t *testing.T) {
	// Masking a pair must actually remove its influence: construct a
	// dataset where the masked pair's distance is the only difference.
	rng := rand.New(rand.NewSource(104))
	ds := testutil.RandDataset(rng, 80, 3, 4, 100)
	params := query.Params{K: 5, Alpha: 1.0, Beta: 9, GridD: 4, Xi: 10} // alpha=1: spatial only
	q := testutil.RandQuery(rng, ds, 3, 25, params)
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	full := q.Example.DistVector()
	q.Example.SkipPairs = [][2]int{{0, 1}}
	masked := q.Example.DistVector()
	if len(masked) != len(full)-1 {
		t.Fatalf("masked vector has %d entries, want %d", len(masked), len(full)-1)
	}
}
