package hsp

import (
	"context"
	"math/rand"
	"testing"

	"spatialseq/internal/algo/brute"
	"spatialseq/internal/query"
	"spatialseq/internal/testutil"
)

// Parallel subspace search must stay exact: a stale concurrent threshold
// only admits extra candidates.
func TestParallelExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 5; trial++ {
		ds := testutil.RandDataset(rng, 300, 3, 4, 100)
		ix := buildIndex(ds)
		params := query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10}
		q := testutil.RandQuery(rng, ds, 3, 20, params)
		if err := q.Validate(ds); err != nil {
			t.Fatal(err)
		}
		want := simsOf(brute.Search(ds, q))
		for _, workers := range []int{2, 4, -1} {
			got, err := Search(context.Background(), ds, ix, q, Options{Parallelism: workers})
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if !simsEqual(simsOf(got), want, 1e-9) {
				t.Errorf("trial %d workers %d: parallel sims %v != brute %v", trial, workers, simsOf(got), want)
			}
		}
	}
}

func TestParallelCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	ds := testutil.RandDataset(rng, 3000, 2, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 5, Alpha: 0.5, Beta: 9, GridD: 4, Xi: 10}
	q := testutil.RandQuery(rng, ds, 4, 60, params)
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Search(ctx, ds, ix, q, Options{Parallelism: 4}); err == nil {
		t.Error("cancelled parallel search should abort")
	}
}

func TestParallelWithFixedPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	ds := testutil.RandDataset(rng, 200, 3, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 4, Alpha: 0.5, Beta: 2.0, GridD: 4, Xi: 10}
	q := testutil.RandQuery(rng, ds, 3, 25, params)
	cands := ds.CategoryObjects(q.Example.Categories[0])
	if len(cands) == 0 {
		t.Skip("no candidates")
	}
	q.Example.Fixed = []query.FixedPoint{{Dim: 0, Obj: cands[0]}}
	q.Variant = query.CSEQFP
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	want := simsOf(brute.Search(ds, q))
	got, err := Search(context.Background(), ds, ix, q, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !simsEqual(simsOf(got), want, 1e-9) {
		t.Errorf("parallel CSEQ-FP diverges: %v vs %v", simsOf(got), want)
	}
}
