package hsp

import (
	"context"
	"math/rand"
	"testing"

	"spatialseq/internal/algo/brute"
	"spatialseq/internal/algo/dfsprune"
	"spatialseq/internal/dataset"
	"spatialseq/internal/geo"
	"spatialseq/internal/query"
	"spatialseq/internal/testutil"
)

// buildIndex, simsOf and simsEqual are the shared helpers from
// internal/testutil; the aliases keep this file's call sites short.
var (
	buildIndex = testutil.BuildIndex
	simsOf     = testutil.Sims
	simsEqual  = testutil.SimsEqual
)

// TestExactnessAgainstBruteForce is the central correctness test: HSP and
// DFS-Prune must return the same top-k similarities as naive exhaustive
// search, across problem variants and parameter settings.
func TestExactnessAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	configs := []struct {
		n, cats, m int
		beta       float64
		alpha      float64
		variant    query.Variant
	}{
		{60, 3, 2, 1.5, 0.5, query.CSEQ},
		{60, 3, 3, 1.5, 0.5, query.CSEQ},
		{80, 4, 3, 3.0, 0.5, query.CSEQ},
		{80, 2, 3, 1.2, 0.9, query.CSEQ},
		{80, 2, 3, 1.2, 0.1, query.CSEQ},
		{50, 3, 4, 2.0, 0.5, query.CSEQ},
		{60, 3, 3, 1.5, 0.5, query.SEQ},
		{40, 2, 2, 9.0, 0.3, query.CSEQ},
	}
	for ci, cfg := range configs {
		for trial := 0; trial < 4; trial++ {
			ds := testutil.RandDataset(rng, cfg.n, cfg.cats, 4, 100)
			ix := buildIndex(ds)
			params := query.Params{K: 5, Alpha: cfg.alpha, Beta: cfg.beta, GridD: 4, Xi: 10}
			q := testutil.RandQuery(rng, ds, cfg.m, 30, params)
			q.Variant = cfg.variant
			if err := q.Validate(ds); err != nil {
				t.Fatalf("config %d: %v", ci, err)
			}
			want := simsOf(brute.Search(ds, q))

			gotHSP, err := Search(context.Background(), ds, ix, q, Options{})
			if err != nil {
				t.Fatalf("config %d trial %d: HSP: %v", ci, trial, err)
			}
			if !simsEqual(simsOf(gotHSP), want, 1e-9) {
				t.Errorf("config %d trial %d: HSP sims %v != brute %v", ci, trial, simsOf(gotHSP), want)
			}

			gotDFS, err := dfsprune.Search(context.Background(), ds, q)
			if err != nil {
				t.Fatalf("config %d trial %d: DFS-Prune: %v", ci, trial, err)
			}
			if !simsEqual(simsOf(gotDFS), want, 1e-9) {
				t.Errorf("config %d trial %d: DFS-Prune sims %v != brute %v", ci, trial, simsOf(gotDFS), want)
			}
		}
	}
}

func TestAblationVariantsStayExact(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ds := testutil.RandDataset(rng, 70, 3, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10}
	for trial := 0; trial < 5; trial++ {
		q := testutil.RandQuery(rng, ds, 3, 25, params)
		if err := q.Validate(ds); err != nil {
			t.Fatal(err)
		}
		want := simsOf(brute.Search(ds, q))
		for _, opt := range []Options{
			{DisablePartition: true},
			{LooseBounds: true},
			{SortedBreak: true},
			{DisablePartition: true, LooseBounds: true, SortedBreak: true},
		} {
			got, err := Search(context.Background(), ds, ix, q, opt)
			if err != nil {
				t.Fatalf("opt %+v: %v", opt, err)
			}
			if !simsEqual(simsOf(got), want, 1e-9) {
				t.Errorf("opt %+v: sims %v != brute %v", opt, simsOf(got), want)
			}
		}
	}
}

func TestFixedPointExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 8; trial++ {
		ds := testutil.RandDataset(rng, 70, 3, 4, 100)
		ix := buildIndex(ds)
		params := query.Params{K: 4, Alpha: 0.5, Beta: 2.0, GridD: 4, Xi: 10}
		q := testutil.RandQuery(rng, ds, 3, 25, params)
		// pin dimension 1 (and sometimes 0) to real dataset objects
		pinDims := []int{1}
		if trial%2 == 0 {
			pinDims = []int{0, 2}
		}
		for _, d := range pinDims {
			cands := ds.CategoryObjects(q.Example.Categories[d])
			if len(cands) == 0 {
				t.Skip("no candidate for pinned category")
			}
			obj := cands[rng.Intn(len(cands))]
			q.Example.Fixed = append(q.Example.Fixed, query.FixedPoint{Dim: d, Obj: obj})
		}
		q.Variant = query.CSEQFP
		if err := q.Validate(ds); err != nil {
			t.Fatal(err)
		}
		want := brute.Search(ds, q)
		got, err := Search(context.Background(), ds, ix, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !simsEqual(simsOf(got), simsOf(want), 1e-9) {
			t.Errorf("trial %d: CSEQ-FP sims %v != brute %v", trial, simsOf(got), simsOf(want))
		}
		// every result must contain the pinned objects at the pinned dims
		for _, e := range got {
			for _, f := range q.Example.Fixed {
				if e.Tuple[f.Dim] != f.Obj {
					t.Errorf("result %v does not honour pin %+v", e.Tuple, f)
				}
			}
		}
	}
}

func TestResultsSatisfyNormConstraint(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	ds := testutil.RandDataset(rng, 120, 3, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 8, Alpha: 0.5, Beta: 1.3, GridD: 4, Xi: 10}
	for trial := 0; trial < 6; trial++ {
		q := testutil.RandQuery(rng, ds, 3, 20, params)
		if err := q.Validate(ds); err != nil {
			t.Fatal(err)
		}
		res, err := Search(context.Background(), ds, ix, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ref := q.Example.Norm()
		for _, e := range res {
			locs := make([]geo.Point, len(e.Tuple))
			for d, pos := range e.Tuple {
				locs[d] = ds.Object(int(pos)).Loc
			}
			n := geo.TupleNorm(locs)
			if !geo.NormOK(n, ref, q.Params.Beta) {
				t.Errorf("result %v violates beta-norm: ||V||=%g ref=%g beta=%g", e.Tuple, n, ref, q.Params.Beta)
			}
		}
	}
}

func TestCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	ds := testutil.RandDataset(rng, 3000, 2, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 5, Alpha: 0.5, Beta: 9, GridD: 4, Xi: 10}
	q := testutil.RandQuery(rng, ds, 4, 60, params)
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Search(ctx, ds, ix, q, Options{}); err == nil {
		t.Error("cancelled context should abort the search")
	}
}

func TestEmptyCategoryYieldsNoResults(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	b := &dataset.Builder{}
	used := b.Category("used")
	empty := b.Category("empty")
	for i := 0; i < 20; i++ {
		b.Add(dataset.Object{
			ID:       int64(i),
			Loc:      geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10},
			Category: used,
			Attr:     []float64{0.5, 0.5},
		})
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ix := buildIndex(ds)
	q := &query.Query{
		Variant: query.CSEQ,
		Example: query.Example{
			Categories: []dataset.CategoryID{used, empty},
			Locations:  []geo.Point{{X: 1, Y: 1}, {X: 2, Y: 2}},
			Attrs:      [][]float64{{0.5, 0.5}, {0.5, 0.5}},
		},
		Params: query.Params{K: 3, Alpha: 0.5, Beta: 2, GridD: 3, Xi: 5},
	}
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	res, err := Search(context.Background(), ds, ix, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("expected no results for an empty category, got %d", len(res))
	}
}

func TestKLargerThanCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	ds := testutil.RandDataset(rng, 12, 2, 3, 50)
	ix := buildIndex(ds)
	params := query.Params{K: 500, Alpha: 0.5, Beta: 9, GridD: 3, Xi: 10}
	q := testutil.RandQuery(rng, ds, 2, 20, params)
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	got, err := Search(context.Background(), ds, ix, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := brute.Search(ds, q)
	if !simsEqual(simsOf(got), simsOf(want), 1e-9) {
		t.Errorf("oversized k: HSP returned %d results, brute %d", len(got), len(want))
	}
}
