package hsp

import (
	"context"
	"math/rand"
	"testing"

	"spatialseq/internal/algo/brute"
	"spatialseq/internal/query"
	"spatialseq/internal/stats"
	"spatialseq/internal/testutil"
)

// The memo must be invisible in the results (bit-identical AttrSim values)
// and visible in the counters: sequential searches report lazy hits and
// misses, parallel searches report the eager precompute as misses plus
// per-worker hits.
func TestMemoCountersAndExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(124))
	ds := testutil.RandDataset(rng, 300, 3, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10}
	q := testutil.RandQuery(rng, ds, 3, 20, params)
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	want := simsOf(brute.Search(ds, q))

	for _, workers := range []int{1, 4} {
		st := &stats.Stats{}
		got, err := Search(context.Background(), ds, ix, q, Options{Parallelism: workers, Stats: st})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !simsEqual(simsOf(got), want, 1e-9) {
			t.Errorf("workers=%d: memoized sims %v != brute %v", workers, simsOf(got), want)
		}
		snap := st.Snapshot()
		if snap.Subspaces+snap.SubspacesSkipped <= 1 {
			t.Skip("single-subspace query: memo disabled by design")
		}
		if snap.AttrSimMemoMisses == 0 {
			t.Errorf("workers=%d: no memo misses reported with %d subspaces", workers, snap.Subspaces)
		}
		if workers > 1 && snap.AttrSimMemoHits == 0 && snap.Candidates > 0 {
			t.Errorf("workers=%d: candidates enumerated but no memo hits reported", workers)
		}
	}
}

// End-to-end allocation profile of a full HSP search with reused scratch.
func BenchmarkSearchAllocs(b *testing.B) {
	rng := rand.New(rand.NewSource(125))
	ds := testutil.RandDataset(rng, 1000, 3, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10}
	q := testutil.RandQuery(rng, ds, 3, 20, params)
	if err := q.Validate(ds); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Search(context.Background(), ds, ix, q, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
