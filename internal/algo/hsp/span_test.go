package hsp

import (
	"context"
	"math/rand"
	"testing"

	"spatialseq/internal/obs/span"
	"spatialseq/internal/query"
	"spatialseq/internal/stats"
	"spatialseq/internal/testutil"
)

// TestSpanTimeline verifies the unit-span tree a parallel (stealing)
// HSP search records: one "hsp.prep" span per subspace carrying the
// subspace-level delta (searched/skipped marks, candidate volume, memo
// hits), one "hsp.chunk" span per stolen enumeration unit carrying the
// DFS delta, every unit tagged with both its worker lane and owning
// subspace, and the per-unit deltas summing to the query-wide counters.
func TestSpanTimeline(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	ds := testutil.RandDataset(rng, 300, 3, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10}
	q := testutil.RandQuery(rng, ds, 3, 20, params)
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	st := &stats.Stats{}
	tr := span.NewTracer()
	root := tr.Root("search")
	if _, err := Search(context.Background(), ds, ix, q, Options{
		Parallelism: 4, Stats: st, Span: root,
	}); err != nil {
		t.Fatal(err)
	}
	root.End()

	tree := tr.Snapshot()
	if tree == nil {
		t.Fatal("no spans recorded")
	}
	workers := make(map[int32]bool)
	searched := make(map[int32]bool)
	chunkSubs := make(map[int32]bool)
	var prepSpans, chunkSpans int
	var workSubspaces, workSkipped, workCand, workHits, maxCand int64
	var workPruned, workTuples, workOffered int64
	for _, n := range tree.Nodes {
		switch n.Name {
		case "hsp.prep":
			prepSpans++
			if n.Subspace < 0 {
				t.Error("prep span without subspace tag")
			}
			if n.Worker < 0 {
				t.Error("prep span outside a worker lane")
			}
			workers[n.Worker] = true
			if n.Work == nil {
				t.Fatal("prep span without work delta")
			}
			workSubspaces += n.Work.Subspaces
			workSkipped += n.Work.SubspacesSkipped
			workCand += n.Work.Candidates
			workHits += n.Work.AttrSimMemoHits
			if n.Work.Subspaces == 1 {
				searched[n.Subspace] = true
			}
			if n.Work.Candidates != n.Work.SubspaceCandidatesMax {
				t.Errorf("per-subspace delta: candidates %d != own max %d",
					n.Work.Candidates, n.Work.SubspaceCandidatesMax)
			}
			if n.Work.SubspaceCandidatesMax > maxCand {
				maxCand = n.Work.SubspaceCandidatesMax
			}
		case "hsp.chunk":
			chunkSpans++
			if n.Subspace < 0 {
				t.Error("chunk span without subspace tag")
			}
			if n.Worker < 0 {
				t.Error("chunk span outside a worker lane")
			}
			workers[n.Worker] = true
			if n.Work == nil {
				t.Fatal("chunk span without work delta")
			}
			chunkSubs[n.Subspace] = true
			workPruned += n.Work.PrunedPrefixes
			workTuples += n.Work.Tuples
			workOffered += n.Work.Offered
		case "hsp.worker", "hsp.subspace":
			t.Errorf("parallel path recorded legacy %q span", n.Name)
		}
	}
	if len(workers) == 0 || len(workers) > 4 {
		t.Errorf("got %d worker lanes, want 1..4", len(workers))
	}
	snap := st.Snapshot()
	if prepSpans == 0 || workSubspaces+workSkipped != snap.Subspaces+snap.SubspacesSkipped {
		t.Errorf("prep deltas (%d searched + %d skipped over %d spans) disagree with counters (%d + %d)",
			workSubspaces, workSkipped, prepSpans, snap.Subspaces, snap.SubspacesSkipped)
	}
	if workCand != snap.Candidates {
		t.Errorf("prep candidate deltas sum to %d, counters say %d", workCand, snap.Candidates)
	}
	if workHits != snap.AttrSimMemoHits {
		t.Errorf("prep memo-hit deltas sum to %d, counters say %d", workHits, snap.AttrSimMemoHits)
	}
	if snap.SubspaceCandidatesMax != maxCand {
		t.Errorf("SubspaceCandidatesMax = %d, want the span-tree max %d", snap.SubspaceCandidatesMax, maxCand)
	}
	// Every searched subspace published at least one chunk, and every
	// chunk belongs to a searched subspace.
	if chunkSpans < len(searched) {
		t.Errorf("%d chunk spans for %d searched subspaces", chunkSpans, len(searched))
	}
	if len(chunkSubs) != len(searched) {
		t.Errorf("chunks cover %d subspaces, %d were searched", len(chunkSubs), len(searched))
	}
	for sub := range chunkSubs {
		if !searched[sub] {
			t.Errorf("chunk recorded for unsearched subspace %d", sub)
		}
	}
	if workPruned != snap.PrunedPrefixes || workTuples != snap.Tuples || workOffered != snap.Offered {
		t.Errorf("chunk deltas (pruned %d, tuples %d, offered %d) disagree with counters (%d, %d, %d)",
			workPruned, workTuples, workOffered, snap.PrunedPrefixes, snap.Tuples, snap.Offered)
	}
	if sk := tr.Skew(); sk == nil || sk.Workers != len(workers) {
		t.Errorf("skew report = %+v, want %d workers", sk, len(workers))
	}

	// The derived flat aggregate exposes leaf phases, not containers.
	for _, p := range tr.PhaseTimings() {
		if p.Name == "search" {
			t.Errorf("container span %q leaked into phase timings", p.Name)
		}
	}
}

// TestSpanSequentialLane: the sequential path still records a single
// worker-0 lane so timelines and skew reports have a uniform shape.
func TestSpanSequentialLane(t *testing.T) {
	rng := rand.New(rand.NewSource(212))
	ds := testutil.RandDataset(rng, 200, 3, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 4, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10}
	q := testutil.RandQuery(rng, ds, 3, 20, params)
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	tr := span.NewTracer()
	root := tr.Root("search")
	if _, err := Search(context.Background(), ds, ix, q, Options{Span: root}); err != nil {
		t.Fatal(err)
	}
	root.End()
	sk := tr.Skew()
	if sk == nil || sk.Workers != 1 || sk.Parallel {
		t.Errorf("sequential skew = %+v, want exactly one non-parallel lane", sk)
	}
	if sk != nil && sk.ImbalanceRatio != 1 {
		t.Errorf("single lane imbalance = %v, want 1", sk.ImbalanceRatio)
	}
}
