package hsp

import (
	"context"
	"math/rand"
	"testing"

	"spatialseq/internal/obs/span"
	"spatialseq/internal/query"
	"spatialseq/internal/stats"
	"spatialseq/internal/testutil"
)

// TestSpanTimeline verifies the worker/subspace span tree a parallel HSP
// search records: one lane per worker, every subspace span tagged and
// carrying its work delta, and the per-subspace candidate counts
// consistent with the query-wide counters.
func TestSpanTimeline(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	ds := testutil.RandDataset(rng, 300, 3, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10}
	q := testutil.RandQuery(rng, ds, 3, 20, params)
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	st := &stats.Stats{}
	tr := span.NewTracer()
	root := tr.Root("search")
	if _, err := Search(context.Background(), ds, ix, q, Options{
		Parallelism: 4, Stats: st, Span: root,
	}); err != nil {
		t.Fatal(err)
	}
	root.End()

	tree := tr.Snapshot()
	if tree == nil {
		t.Fatal("no spans recorded")
	}
	workers := make(map[int32]bool)
	var subspaceSpans int
	var workSubspaces, workSkipped, maxCand int64
	for _, n := range tree.Nodes {
		switch n.Name {
		case "hsp.worker":
			workers[n.Worker] = true
		case "hsp.subspace":
			subspaceSpans++
			if n.Subspace < 0 {
				t.Error("subspace span without subspace tag")
			}
			if n.Worker < 0 {
				t.Error("subspace span outside a worker lane")
			}
			if n.Work == nil {
				t.Fatal("subspace span without work delta")
			}
			workSubspaces += n.Work.Subspaces
			workSkipped += n.Work.SubspacesSkipped
			if n.Work.Candidates != n.Work.SubspaceCandidatesMax {
				t.Errorf("per-subspace delta: candidates %d != own max %d",
					n.Work.Candidates, n.Work.SubspaceCandidatesMax)
			}
			if n.Work.SubspaceCandidatesMax > maxCand {
				maxCand = n.Work.SubspaceCandidatesMax
			}
		}
	}
	if len(workers) == 0 || len(workers) > 4 {
		t.Errorf("got %d worker lanes, want 1..4", len(workers))
	}
	snap := st.Snapshot()
	if subspaceSpans == 0 || workSubspaces+workSkipped != snap.Subspaces+snap.SubspacesSkipped {
		t.Errorf("span work deltas (%d searched + %d skipped over %d spans) disagree with counters (%d + %d)",
			workSubspaces, workSkipped, subspaceSpans, snap.Subspaces, snap.SubspacesSkipped)
	}
	if snap.SubspaceCandidatesMax != maxCand {
		t.Errorf("SubspaceCandidatesMax = %d, want the span-tree max %d", snap.SubspaceCandidatesMax, maxCand)
	}
	if sk := tr.Skew(); sk == nil || sk.Workers != len(workers) {
		t.Errorf("skew report = %+v, want %d workers", sk, len(workers))
	}

	// The derived flat aggregate exposes leaf phases, not the lanes.
	for _, p := range tr.PhaseTimings() {
		if p.Name == "hsp.worker" || p.Name == "search" {
			t.Errorf("container span %q leaked into phase timings", p.Name)
		}
	}
}

// TestSpanSequentialLane: the sequential path still records a single
// worker-0 lane so timelines and skew reports have a uniform shape.
func TestSpanSequentialLane(t *testing.T) {
	rng := rand.New(rand.NewSource(212))
	ds := testutil.RandDataset(rng, 200, 3, 4, 100)
	ix := buildIndex(ds)
	params := query.Params{K: 4, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10}
	q := testutil.RandQuery(rng, ds, 3, 20, params)
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	tr := span.NewTracer()
	root := tr.Root("search")
	if _, err := Search(context.Background(), ds, ix, q, Options{Span: root}); err != nil {
		t.Fatal(err)
	}
	root.End()
	sk := tr.Skew()
	if sk == nil || sk.Workers != 1 || sk.Parallel {
		t.Errorf("sequential skew = %+v, want exactly one non-parallel lane", sk)
	}
	if sk != nil && sk.ImbalanceRatio != 1 {
		t.Errorf("single lane imbalance = %v, want 1", sk.ImbalanceRatio)
	}
}
