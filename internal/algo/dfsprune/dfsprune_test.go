package dfsprune

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"spatialseq/internal/algo/brute"
	"spatialseq/internal/query"
	"spatialseq/internal/testutil"
)

// simsOf is the shared helper from internal/testutil.
var simsOf = testutil.Sims

// The cross-algorithm equivalence suite lives in internal/algo/hsp; this
// file covers DFS-Prune-specific behaviours.

func TestSEQMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 5; trial++ {
		ds := testutil.RandDataset(rng, 70, 3, 4, 100)
		q := testutil.RandQuery(rng, ds, 3, 30, query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10})
		q.Variant = query.SEQ
		if err := q.Validate(ds); err != nil {
			t.Fatal(err)
		}
		want := simsOf(brute.Search(ds, q))
		got, err := Search(context.Background(), ds, q)
		if err != nil {
			t.Fatal(err)
		}
		gs := simsOf(got)
		if len(gs) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(gs), len(want))
		}
		for i := range gs {
			if math.Abs(gs[i]-want[i]) > 1e-9 {
				t.Errorf("trial %d rank %d: %g != %g", trial, i, gs[i], want[i])
			}
		}
	}
}

func TestNoDuplicateObjectsInResults(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	// a dataset with ONE category forces all dimensions to share candidates
	ds := testutil.RandDataset(rng, 40, 1, 4, 50)
	q := testutil.RandQuery(rng, ds, 3, 20, query.Params{K: 10, Alpha: 0.5, Beta: 9, GridD: 4, Xi: 10})
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	got, err := Search(context.Background(), ds, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("expected results")
	}
	for _, e := range got {
		for i := 0; i < len(e.Tuple); i++ {
			for j := i + 1; j < len(e.Tuple); j++ {
				if e.Tuple[i] == e.Tuple[j] {
					t.Errorf("tuple %v repeats an object", e.Tuple)
				}
			}
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	ds := testutil.RandDataset(rng, 80, 3, 4, 100)
	q := testutil.RandQuery(rng, ds, 3, 25, query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10})
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	a, err := Search(context.Background(), ds, q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(context.Background(), ds, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("result counts differ across runs")
	}
	for i := range a {
		if a[i].Sim != b[i].Sim {
			t.Errorf("rank %d sims differ", i)
		}
		for d := range a[i].Tuple {
			if a[i].Tuple[d] != b[i].Tuple[d] {
				t.Errorf("rank %d tuples differ", i)
			}
		}
	}
}

func TestCancellationMidSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	ds := testutil.RandDataset(rng, 4000, 2, 4, 100)
	q := testutil.RandQuery(rng, ds, 4, 80, query.Params{K: 5, Alpha: 0.5, Beta: 9, GridD: 4, Xi: 10})
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Search(ctx, ds, q); err == nil {
		t.Error("cancelled context should abort")
	}
}
