// Package dfsprune reimplements the state-of-the-art baseline of Luo et
// al. (CIKM 2017) that the paper compares against (Section II-C).
//
// DFS-Prune enumerates candidate tuples dimension by dimension over the
// whole dataset. Per dimension, candidates are sorted descending by
// attribute similarity to the respective example point. Each prefix is
// scored with two upper bounds — the loose attribute bound (unseen
// dimensions count 1) and the Cauchy–Schwarz spatial completion bound
// (paper Eq. 5) — and pruned against the current k-th best similarity.
//
// For CSEQ the beta-norm constraint is checked at the leaves only: the
// baseline predates the constraint and has no space pruning, which is
// exactly why HSP and LORA beat it.
package dfsprune

import (
	"context"

	"spatialseq/internal/dataset"
	"spatialseq/internal/obs"
	"spatialseq/internal/obs/span"
	"spatialseq/internal/query"
	"spatialseq/internal/simil"
	"spatialseq/internal/stats"
	"spatialseq/internal/topk"
)

// Search answers q exactly. The query must be validated. The context lets
// the evaluation harness cut off runs that would exceed its time budget
// (the paper reports ">24hours" cells for this baseline); on cancellation
// Search returns ctx.Err() and a nil result.
func Search(ctx context.Context, ds *dataset.Dataset, q *query.Query) ([]topk.Entry, error) {
	return SearchStats(ctx, ds, q, nil)
}

// SearchStats is Search with optional per-search counters.
func SearchStats(ctx context.Context, ds *dataset.Dataset, q *query.Query, st *stats.Stats) ([]topk.Entry, error) {
	return SearchTraced(ctx, ds, q, st, nil)
}

// SearchTraced is SearchStats with optional per-phase wall-time tracing
// (candidate enumeration, DFS, top-k merge). Both st and tr may be nil.
func SearchTraced(ctx context.Context, ds *dataset.Dataset, q *query.Query, st *stats.Stats, tr *obs.Trace) ([]topk.Entry, error) {
	return SearchObserved(ctx, ds, q, st, tr, span.Span{})
}

// SearchObserved is SearchTraced with hierarchical span tracing nested
// under parent: the baseline runs one worker over one whole-space
// "subspace", so its timeline is a single lane. The zero parent Span
// disables span tracing at no cost.
func SearchObserved(ctx context.Context, ds *dataset.Dataset, q *query.Query, st *stats.Stats, tr *obs.Trace, parent span.Span) ([]topk.Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sctx := simil.NewContext(ds, q)
	m := sctx.M
	ws := parent.Worker("dfs.worker", 0)
	sp := tr.Start("dfs.candidates")
	csp := ws.Child("dfs.candidates")
	cands := make([][]simil.Cand, m)
	var candTotal int64
	for d := 0; d < m; d++ {
		if fixed := q.Example.FixedDim(d); fixed >= 0 {
			cands[d] = []simil.Cand{{Pos: fixed, Sim: sctx.AttrSim(d, fixed)}}
		} else {
			cands[d] = sctx.Candidates(d, ds.CategoryObjects(q.Example.Categories[d]))
		}
		candTotal += int64(len(cands[d]))
	}
	st.AddCandidates(candTotal)
	st.RaiseSubspaceCandidates(candTotal)
	csp.End()
	sp.End()
	st.AddSubspaces(1) // the baseline searches the whole space as one
	heap := topk.New(q.Params.K)
	s := &searcher{
		ctx:     ctx,
		sctx:    sctx,
		cands:   cands,
		heap:    heap,
		tuple:   make([]int32, m),
		scratch: sctx.NewScratch(),
	}
	sp = tr.Start("dfs.search")
	sub := ws.Subspace("dfs.search", 0)
	err := s.dfs(0, 0)
	sub.EndWork(stats.Snapshot{
		Subspaces:             1,
		Candidates:            candTotal,
		PrunedPrefixes:        s.pruned,
		Tuples:                s.tuples,
		Offered:               s.offered,
		SubspaceCandidatesMax: candTotal,
	})
	sp.End()
	st.AddPrunedPrefixes(s.pruned)
	st.AddTuples(s.tuples)
	st.AddOffered(s.offered)
	ws.End()
	if err != nil {
		return nil, err
	}
	sp = tr.Start("topk.merge")
	msp := parent.Child("topk.merge")
	res := heap.Results()
	msp.End()
	sp.End()
	return res, nil
}

type searcher struct {
	ctx     context.Context
	sctx    *simil.Context
	cands   [][]simil.Cand
	heap    *topk.Heap
	tuple   []int32
	scratch *simil.Scratch
	steps   int

	pruned, tuples, offered int64
}

// checkEvery bounds how often the cancellation context is polled.
const checkEvery = 4096

//seq:hotpath
func (s *searcher) dfs(dim int, attrSum float64) error {
	c := s.sctx
	for _, cand := range s.cands[dim] {
		if s.steps++; s.steps%checkEvery == 0 {
			select {
			case <-s.ctx.Done():
				return s.ctx.Err()
			default:
			}
		}
		if s.used(cand.Pos, dim) {
			continue
		}
		sum := attrSum + cand.Sim
		// Faithful to the CIKM'17 baseline: a failing prefix prunes only
		// its own subtree; later candidates in the sorted list are still
		// scanned. (HSP/LORA offer a sorted-break extension; the baseline
		// deliberately does not.)
		attrBound := c.AttrBoundLoose(sum, dim+1)
		if !s.heap.WouldAccept(c.Combine(1, attrBound)) {
			s.pruned++
			continue
		}
		s.tuple[dim] = cand.Pos
		added := s.scratch.Push(c.DS.Loc(int(cand.Pos)), cand.Sim)
		if dim+1 == c.M {
			s.tuples++
			if c.NormOK(s.scratch.PrefixNorm()) {
				if s.heap.Offer(s.tuple, c.TupleSim(s.scratch.Y, s.scratch.AttrSims)) {
					s.offered++
				}
			}
		} else {
			spatialBound := c.SpatialBoundEq5(s.scratch.Y)
			if s.heap.WouldAccept(c.Combine(spatialBound, attrBound)) {
				if err := s.dfs(dim+1, sum); err != nil {
					return err
				}
			} else {
				s.pruned++
			}
		}
		s.scratch.Pop(added)
	}
	return nil
}

// used reports whether pos already occupies an earlier dimension of the
// current prefix (tuples may not repeat an object).
func (s *searcher) used(pos int32, dim int) bool {
	for d := 0; d < dim; d++ {
		if s.tuple[d] == pos {
			return true
		}
	}
	return false
}
