// Package brute is the reference CSEQ implementation: plain exhaustive
// enumeration of every category-compatible tuple with no pruning at all.
// It exists as the correctness oracle for tests and as the naive lower
// baseline in ablation benchmarks; it is exponential in the tuple size and
// must only run on small datasets.
package brute

import (
	"spatialseq/internal/dataset"
	"spatialseq/internal/query"
	"spatialseq/internal/simil"
	"spatialseq/internal/topk"
)

// Search enumerates all tuples and returns the exact top-k. The query must
// be validated.
func Search(ds *dataset.Dataset, q *query.Query) []topk.Entry {
	ctx := simil.NewContext(ds, q)
	m := ctx.M
	cands := make([][]int32, m)
	for d := 0; d < m; d++ {
		if fixed := q.Example.FixedDim(d); fixed >= 0 {
			cands[d] = []int32{fixed}
			continue
		}
		cands[d] = ds.CategoryObjects(q.Example.Categories[d])
	}
	heap := topk.New(q.Params.K)
	tuple := make([]int32, m)
	var rec func(d int)
	rec = func(d int) {
		if d == m {
			if sim, ok := ctx.SimOfPositions(tuple); ok {
				heap.Offer(tuple, sim)
			}
			return
		}
		for _, pos := range cands[d] {
			tuple[d] = pos
			rec(d + 1)
		}
	}
	rec(0)
	return heap.Results()
}
