// Package brute is the reference CSEQ implementation: plain exhaustive
// enumeration of every category-compatible tuple with no pruning at all.
// It exists as the correctness oracle for tests and as the naive lower
// baseline in ablation benchmarks; it is exponential in the tuple size and
// must only run on small datasets.
//
// Leaf scoring is blocked: complete tuples are staged and flushed
// through the batched distance/attribute kernels
// (simil.Context.DistVectorsOfPositions, AttrSimBatch) a block at a
// time. Brute is the one enumerator where batching leaves is profitable
// — there is no pruning bound between tuples, so every staged tuple is
// scored anyway (HSP/LORA check bounds per candidate, where computing
// distances ahead of the bound would be wasted work). Results are
// unchanged: offers happen in enumeration order with bit-identical
// scores, and the top-k tie-break is order-independent besides.
package brute

import (
	"spatialseq/internal/dataset"
	"spatialseq/internal/geo"
	"spatialseq/internal/query"
	"spatialseq/internal/simil"
	"spatialseq/internal/topk"
)

// bruteBlock is how many complete tuples are staged before a batched
// scoring flush.
const bruteBlock = 128

// Search enumerates all tuples and returns the exact top-k. The query must
// be validated.
func Search(ds *dataset.Dataset, q *query.Query) []topk.Entry {
	ctx := simil.NewContext(ds, q)
	m := ctx.M
	cands := make([][]int32, m)
	for d := 0; d < m; d++ {
		if fixed := q.Example.FixedDim(d); fixed >= 0 {
			cands[d] = []int32{fixed}
			continue
		}
		cands[d] = ds.CategoryObjects(q.Example.Categories[d])
	}
	heap := topk.New(q.Params.K)
	tuple := make([]int32, m)
	staged := make([]int32, 0, bruteBlock*m)
	dists := make([]float64, 0, bruteBlock*ctx.Pairs)
	posCol := make([]int32, bruteBlock)
	simCols := make([][]float64, m)
	for d := range simCols {
		simCols[d] = make([]float64, bruteBlock)
	}
	attr := make([]float64, m)

	flush := func() {
		rows := len(staged) / m
		if rows == 0 {
			return
		}
		dists = ctx.DistVectorsOfPositions(staged, m, dists)
		for d := 0; d < m; d++ {
			for r := 0; r < rows; r++ {
				posCol[r] = staged[r*m+d]
			}
			ctx.AttrSimBatch(d, posCol[:rows], simCols[d][:rows])
		}
		for r := 0; r < rows; r++ {
			y := dists[r*ctx.Pairs : (r+1)*ctx.Pairs]
			if !ctx.NormOK(geo.Norm(y)) {
				continue
			}
			for d := 0; d < m; d++ {
				attr[d] = simCols[d][r]
			}
			heap.Offer(staged[r*m:r*m+m], ctx.TupleSim(y, attr))
		}
		staged = staged[:0]
	}

	var rec func(d int)
	rec = func(d int) {
		if d == m {
			// duplicate-object tuples are invalid (SimOfPositions'
			// first check); skip them before staging
			for i := 0; i < m; i++ {
				for j := i + 1; j < m; j++ {
					if tuple[i] == tuple[j] {
						return
					}
				}
			}
			staged = append(staged, tuple...)
			if len(staged) == bruteBlock*m {
				flush()
			}
			return
		}
		for _, pos := range cands[d] {
			tuple[d] = pos
			rec(d + 1)
		}
	}
	rec(0)
	flush()
	return heap.Results()
}
