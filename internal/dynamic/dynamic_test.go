package dynamic

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"spatialseq/internal/core"
	"spatialseq/internal/dataset"
	"spatialseq/internal/geo"
	"spatialseq/internal/query"
	"spatialseq/internal/testutil"
)

func newStore(t *testing.T, n int, policy Policy) *Store {
	t.Helper()
	rng := rand.New(rand.NewSource(161))
	ds := testutil.RandDataset(rng, n, 3, 4, 100)
	return NewStore(ds, policy)
}

func obj(id int64, x, y float64) dataset.Object {
	return dataset.Object{
		ID:   id,
		Loc:  geo.Point{X: x, Y: y},
		Attr: []float64{0.5, 0.5, 0.5, 0.5},
		Name: "new",
	}
}

func TestAddVisibleAfterRefresh(t *testing.T) {
	s := newStore(t, 50, Policy{})
	before := s.Len()
	if err := s.Add("cat-0", obj(1000, 5, 5)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != before {
		t.Error("adds must not be visible before refresh")
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d", s.Pending())
	}
	if err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != before+1 {
		t.Errorf("Len after refresh = %d, want %d", s.Len(), before+1)
	}
	if s.Pending() != 0 {
		t.Errorf("Pending after refresh = %d", s.Pending())
	}
}

func TestAddRejectsDuplicateID(t *testing.T) {
	s := newStore(t, 20, Policy{})
	existing := s.Engine().Dataset().Object(0).ID
	if err := s.Add("cat-0", obj(existing, 1, 1)); err == nil {
		t.Error("duplicate live id should be rejected")
	}
	if err := s.Add("cat-0", obj(5000, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("cat-0", obj(5000, 2, 2)); err == nil {
		t.Error("duplicate pending id should be rejected")
	}
}

func TestRemove(t *testing.T) {
	s := newStore(t, 30, Policy{})
	id := s.Engine().Dataset().Object(3).ID
	if !s.Remove(id) {
		t.Fatal("removing a live id should succeed")
	}
	if s.Remove(id) {
		t.Error("double remove should report false")
	}
	if s.Remove(99999) {
		t.Error("removing an unknown id should report false")
	}
	before := s.Len()
	if err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != before-1 {
		t.Errorf("Len after refresh = %d, want %d", s.Len(), before-1)
	}
}

func TestRemovePendingAdd(t *testing.T) {
	s := newStore(t, 20, Policy{})
	if err := s.Add("cat-0", obj(7777, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if !s.Remove(7777) {
		t.Error("removing a pending add should succeed")
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d", s.Pending())
	}
	before := s.Len()
	if err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != before {
		t.Error("cancelled add must not appear")
	}
}

func TestNewCategoryOnRefresh(t *testing.T) {
	s := newStore(t, 20, Policy{})
	if err := s.Add("brand-new-category", obj(8888, 3, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	ds := s.Engine().Dataset()
	if _, ok := ds.CategoryByName("brand-new-category"); !ok {
		t.Error("new category should exist after refresh")
	}
	// existing category IDs preserved
	if name := ds.CategoryName(0); name != "cat-0" {
		t.Errorf("category 0 renamed to %q", name)
	}
}

func TestAutoRefreshPolicy(t *testing.T) {
	s := newStore(t, 20, Policy{MaxPending: 3})
	base := s.Len()
	for i := 0; i < 3; i++ {
		if err := s.Add("cat-0", obj(int64(2000+i), float64(i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Pending() != 0 {
		t.Errorf("auto refresh should have fired; pending = %d", s.Pending())
	}
	if s.Len() != base+3 {
		t.Errorf("Len = %d, want %d", s.Len(), base+3)
	}
}

func TestSearchReflectsRefresh(t *testing.T) {
	s := newStore(t, 100, Policy{})
	ds := s.Engine().Dataset()
	// add a perfect clone of an existing object pair far away so it ranks
	a, b := ds.Object(0), ds.Object(1)
	q := &query.Query{
		Variant: query.CSEQ,
		Example: query.Example{
			Categories: []dataset.CategoryID{a.Category, b.Category},
			Locations:  []geo.Point{a.Loc, b.Loc},
			Attrs:      [][]float64{a.Attr, b.Attr},
		},
		Params: query.Params{K: 3, Alpha: 0.5, Beta: 3, GridD: 4, Xi: 10},
	}
	res1, err := s.Search(context.Background(), q, core.HSP, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// remove the best result's first object; after refresh the old winner
	// cannot appear
	victim := res1.Tuples[0].Positions[0]
	victimID := ds.Object(int(victim)).ID
	if !s.Remove(victimID) {
		t.Fatal("remove failed")
	}
	if err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	q2 := *q
	res2, err := s.Search(context.Background(), &q2, core.HSP, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nds := s.Engine().Dataset()
	for _, tup := range res2.Tuples {
		for _, pos := range tup.Positions {
			if nds.Object(int(pos)).ID == victimID {
				t.Error("removed object still appears in results")
			}
		}
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s := newStore(t, 200, Policy{MaxPending: 10})
	ds := s.Engine().Dataset()
	a, b := ds.Object(0), ds.Object(1)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				q := &query.Query{
					Variant: query.CSEQ,
					Example: query.Example{
						Categories: []dataset.CategoryID{a.Category, b.Category},
						Locations:  []geo.Point{a.Loc, b.Loc},
						Attrs:      [][]float64{a.Attr, b.Attr},
					},
					Params: query.Params{K: 2, Alpha: 0.5, Beta: 3, GridD: 4, Xi: 10},
				}
				if _, err := s.Search(context.Background(), q, core.LORA, core.Options{}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = s.Add("cat-0", obj(int64(9000+i), float64(i%40), float64(i%40)))
		}
	}()
	wg.Wait()
	if err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 250 {
		t.Errorf("Len = %d, want 250", s.Len())
	}
}
