// Package dynamic maintains a searchable engine over a POI set that
// changes over time — openings, closures, edits — which the core library's
// immutable Dataset cannot absorb directly.
//
// The design is epoch-based, the standard recipe for read-heavy spatial
// serving: readers always search a stable snapshot engine while writers
// accumulate deltas; a Refresh (explicit, or automatic once the delta
// count crosses the policy threshold) builds the next snapshot from
// base + deltas and atomically swaps it in. Search results can therefore
// lag behind writes by at most one refresh — the same staleness contract
// production map indexes run with.
package dynamic

import (
	"context"
	"fmt"
	"sync"

	"spatialseq/internal/core"
	"spatialseq/internal/dataset"
	"spatialseq/internal/query"
)

// Policy controls automatic refreshes.
type Policy struct {
	// MaxPending triggers a synchronous rebuild once this many deltas
	// are queued. <= 0 disables automatic refreshes (call Refresh).
	MaxPending int
}

// Store is a mutable POI set with snapshot-consistent search.
type Store struct {
	policy Policy

	mu      sync.RWMutex
	eng     *core.Engine
	adds    []pendingAdd
	removes map[int64]bool
}

type pendingAdd struct {
	category string
	obj      dataset.Object
}

// NewStore starts from an initial dataset snapshot.
func NewStore(ds *dataset.Dataset, policy Policy) *Store {
	return &Store{
		policy:  policy,
		eng:     core.NewEngine(ds),
		removes: make(map[int64]bool),
	}
}

// Engine returns the current snapshot engine. The engine stays valid after
// later refreshes (snapshots are immutable); callers wanting fresher data
// simply call Engine again.
func (s *Store) Engine() *core.Engine {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng
}

// Search answers q against the current snapshot.
func (s *Store) Search(ctx context.Context, q *query.Query, algo core.Algorithm, opt core.Options) (*core.Result, error) {
	return s.Engine().Search(ctx, q, algo, opt)
}

// Add queues a new object under the given category name (created on the
// next refresh if new). obj.Category is ignored; obj.ID must be unique
// among live objects. The object becomes searchable after the next
// refresh.
func (s *Store) Add(category string, obj dataset.Object) error {
	due, err := s.queueAdd(category, obj)
	if err != nil {
		return err
	}
	if due {
		return s.Refresh()
	}
	return nil
}

// queueAdd stages the add under the lock; Refresh (which re-acquires
// s.mu) must happen after it returns, hence the two-phase shape.
func (s *Store) queueAdd(category string, obj dataset.Object) (due bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.liveIDLocked(s.eng.Dataset(), obj.ID) {
		return false, fmt.Errorf("dynamic: object id %d already live", obj.ID)
	}
	delete(s.removes, obj.ID) // re-adding a previously removed id
	s.adds = append(s.adds, pendingAdd{category: category, obj: obj})
	return s.dueLocked(), nil
}

// Remove queues the deletion of the object with this ID. It reports
// whether the ID was live (in the snapshot or the pending adds).
func (s *Store) Remove(id int64) bool {
	live, due := s.queueRemove(id)
	if due {
		_ = s.Refresh()
	}
	return live
}

// queueRemove stages the removal under the lock; like queueAdd, Refresh
// must run after the lock is released.
func (s *Store) queueRemove(id int64) (live, due bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// drop a matching pending add first
	for i, pa := range s.adds {
		if pa.obj.ID == id {
			s.adds = append(s.adds[:i], s.adds[i+1:]...)
			return true, false
		}
	}
	ds := s.eng.Dataset()
	found := false
	for i := 0; i < ds.Len(); i++ {
		if ds.Object(i).ID == id {
			found = true
			break
		}
	}
	if !found || s.removes[id] {
		return false, false
	}
	s.removes[id] = true
	return true, s.dueLocked()
}

// liveIDLocked reports whether id exists in the snapshot (and is not
// pending removal) or among the pending adds. Callers hold s.mu.
func (s *Store) liveIDLocked(ds *dataset.Dataset, id int64) bool {
	for _, pa := range s.adds {
		if pa.obj.ID == id {
			return true
		}
	}
	if s.removes[id] {
		return false
	}
	for i := 0; i < ds.Len(); i++ {
		if ds.Object(i).ID == id {
			return true
		}
	}
	return false
}

func (s *Store) dueLocked() bool {
	return s.policy.MaxPending > 0 && len(s.adds)+len(s.removes) >= s.policy.MaxPending
}

// Pending returns the queued delta count.
func (s *Store) Pending() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.adds) + len(s.removes)
}

// Refresh builds the next snapshot from base + deltas and swaps it in.
// The rebuild holds the write lock, briefly blocking new Engine() calls
// (searches already holding an engine snapshot are unaffected — snapshots
// are immutable). For the delta volumes the policy threshold allows, the
// rebuild is a bulk load plus one index build.
func (s *Store) Refresh() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.adds) == 0 && len(s.removes) == 0 {
		return nil
	}
	base := s.eng.Dataset()
	b := &dataset.Builder{}
	// preserve existing categories (and their IDs) by interning in order
	for c := 0; c < base.NumCategories(); c++ {
		b.Category(base.CategoryName(dataset.CategoryID(c)))
	}
	for i := 0; i < base.Len(); i++ {
		o := base.Object(i)
		if s.removes[o.ID] {
			continue
		}
		b.Add(*o)
	}
	for _, pa := range s.adds {
		obj := pa.obj
		obj.Category = b.Category(pa.category)
		b.Add(obj)
	}
	ds, err := b.Build()
	if err != nil {
		return fmt.Errorf("dynamic: rebuilding snapshot: %w", err)
	}
	s.eng = core.NewEngine(ds)
	s.adds = nil
	clear(s.removes)
	return nil
}

// Len returns the live object count of the current snapshot (queued adds
// and removes are not reflected until Refresh).
func (s *Store) Len() int {
	return s.Engine().Dataset().Len()
}
