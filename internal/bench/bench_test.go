package bench

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"spatialseq/internal/stats"
)

var update = flag.Bool("update", false, "rewrite the golden schema file")

// goldenFile builds a fully-populated session with fixed values: the
// golden test pins the JSON schema (field names, nesting, ordering), so
// adding/renaming/removing a field must show up as a diff here.
func goldenFile() *File {
	var st stats.Stats
	st.AddSubspaces(4)
	st.AddSubspacesSkipped(1)
	st.AddCandidates(1200)
	st.AddPrunedPrefixes(300)
	st.AddTuples(80)
	st.AddOffered(12)
	st.AddCellTuples(40)
	st.AddPrunedCellPrefixes(9)
	st.AddRankPops(25)
	st.AddSampledOut(110)
	st.AddAttrSimMemoHits(640)
	st.AddAttrSimMemoMisses(60)
	st.RaiseSubspaceCandidates(700)
	return &File{
		SchemaVersion: SchemaVersion,
		Env: Env{
			GoVersion: "go1.22.0",
			GOOS:      "linux",
			GOARCH:    "amd64",
			NumCPU:    8,
			GitSHA:    "deadbeef",
			CreatedAt: "2026-01-02T03:04:05Z",
			Seed:      1,
			Queries:   20,
			BudgetMS:  30000,
			Sizes:     []int{1000, 5000},
			M:         3,
		},
		Records: []Record{
			{
				Experiment: "table2",
				Family:     "Gaode",
				Size:       1000,
				Algorithm:  "lora",
				Queries:    20,
				Completed:  20,
				AvgSim:     0.912345,
				Errors:     &ErrorStats{MAE: 0.0012, STD: 0.0034, MAX: 0.02},
				Latency:    LatencyOf([]float64{1, 2, 3, 4, 100}),
				Work:       WorkMap(st.Snapshot()),
				Mem:        Mem{AllocBytes: 123456, Mallocs: 789, HeapDeltaBytes: -42},
			},
			{
				Experiment: "fig9-alpha",
				Family:     "Yelp",
				Label:      "alpha=0.5",
				Size:       5000,
				Algorithm:  "dfs-prune",
				Queries:    20,
				Completed:  3,
				TimedOut:   true,
				AvgSim:     0.77,
				Latency:    LatencyOf([]float64{9000, 9500, 11000}),
				Mem:        Mem{AllocBytes: 1 << 30, Mallocs: 1 << 20, HeapDeltaBytes: 1 << 10},
			},
			{
				Experiment: "table3",
				Family:     "Yelp",
				Size:       1000,
				Algorithm:  "hsp",
				Queries:    20,
				Error:      "query: k must be >= 1, got 0",
			},
		},
	}
}

func TestGoldenSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenFile().Write(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_bench.json")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("BENCH schema drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s\n(if intentional, bump SchemaVersion and rerun with -update)", buf.Bytes(), want)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	f := goldenFile()
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(f.Records) {
		t.Fatalf("round trip lost records: %d != %d", len(got.Records), len(f.Records))
	}
	if got.Records[0].Key() != f.Records[0].Key() {
		t.Errorf("key drift: %q != %q", got.Records[0].Key(), f.Records[0].Key())
	}
	if got.Records[0].Work["candidates"] != 1200 {
		t.Errorf("work counter lost: %v", got.Records[0].Work)
	}
	if got.Env.GitSHA != "deadbeef" {
		t.Errorf("env lost: %+v", got.Env)
	}
}

func TestReadRejectsWrongSchemaVersion(t *testing.T) {
	_, err := Read(strings.NewReader(`{"schema_version": 99, "env": {}, "records": []}`))
	if err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Errorf("want schema version error, got %v", err)
	}
}

func TestLatencyOf(t *testing.T) {
	l := LatencyOf([]float64{1, 2, 3, 4, 100})
	if l.P50MS != 3 || l.P90MS != 100 || l.P99MS != 100 || l.MaxMS != 100 {
		t.Errorf("percentiles: %+v", l)
	}
	if l.TotalMS != 110 || l.MeanMS != 22 {
		t.Errorf("mean/total: %+v", l)
	}
	if z := LatencyOf(nil); z != (Latency{}) {
		t.Errorf("empty sample: %+v", z)
	}
}

func TestWorkMapCoversEveryCounter(t *testing.T) {
	m := WorkMap(stats.Snapshot{})
	if len(m) != 13 {
		t.Errorf("WorkMap has %d keys, want 13 (schema stability: zero counters stay present)", len(m))
	}
	if _, ok := m["candidates"]; !ok {
		t.Error("WorkMap missing candidates")
	}
	if WorkTotal(map[string]int64{"a": 2, "b": 3}) != 5 {
		t.Error("WorkTotal broken")
	}
	// cache telemetry must not count as work: hits measure cosines avoided
	if got := WorkTotal(map[string]int64{"candidates": 10, "attr_sim_memo_hits": 500, "attr_sim_memo_misses": 50}); got != 10 {
		t.Errorf("WorkTotal with memo counters = %d, want 10", got)
	}
	// Max-semantics counters are not work either: the max is a subset of
	// the candidates sum and would double-count.
	if got := WorkTotal(map[string]int64{"candidates": 10, "subspace_candidates_max": 7}); got != 10 {
		t.Errorf("WorkTotal with subspace max = %d, want 10", got)
	}
}

func TestRecorderNilSafeAndConcurrent(t *testing.T) {
	var nilRec *Recorder
	nilRec.Add(Record{Experiment: "x"})
	if nilRec.Len() != 0 {
		t.Error("nil recorder should drop records")
	}
	if f := nilRec.File(); len(f.Records) != 0 || f.SchemaVersion != SchemaVersion {
		t.Errorf("nil recorder file: %+v", f)
	}

	rec := NewRecorder(Env{Seed: 7})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				rec.Add(Record{Experiment: "stress"})
			}
		}()
	}
	wg.Wait()
	if rec.Len() != 800 {
		t.Errorf("Len = %d, want 800", rec.Len())
	}
	f := rec.File()
	if f.Env.Seed != 7 || len(f.Records) != 800 {
		t.Errorf("File: env %+v, %d records", f.Env, len(f.Records))
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Experiment: "table2", Family: "Gaode", Size: 1000, Algorithm: "lora"}
	if got := r.String(); got != "table2/Gaode/1000/lora" {
		t.Errorf("String = %q", got)
	}
	r2 := Record{Experiment: "ablation-bounds", Label: "loose", Algorithm: "hsp"}
	if got := r2.String(); got != "ablation-bounds/loose/hsp" {
		t.Errorf("String = %q", got)
	}
}
