// Package bench defines the machine-readable benchmark record model the
// evaluation harness emits (`seqbench -json`) and `benchdiff` consumes.
//
// A File is one benchmark session: an Env header pinning the machine,
// toolchain, git revision and workload configuration, plus one Record per
// (experiment, family, label, size, algorithm) measurement. Records carry
// nearest-rank latency percentiles, the engine's cumulative work counters
// (named by stats.Snapshot.Each, the single source of counter names), and
// per-run allocation deltas — everything a later `benchdiff` needs to
// decide whether a change made the system faster, slower, or wronger.
//
// The JSON schema is pinned by a golden-file test; renaming or removing a
// field is a breaking change to every committed BENCH_*.json artifact.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"spatialseq/internal/stats"
	"spatialseq/internal/vectormath"
)

// SchemaVersion identifies the record layout. Bump it when a field
// changes meaning; benchdiff refuses to compare across versions.
// Version 2: the work map gained subspace_candidates_max (a max-semantics
// skew signal that WorkTotal excludes).
const SchemaVersion = 2

// Env pins the provenance of a benchmark session: where it ran and with
// which workload knobs. Two BENCH files are only meaningfully comparable
// when their Envs broadly agree; benchdiff prints both so a human can
// judge.
type Env struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// GitSHA is the vcs revision baked into the binary, when available
	// ("+dirty" suffix for a modified working tree).
	GitSHA string `json:"git_sha,omitempty"`
	// CreatedAt is the session start in RFC 3339 UTC.
	CreatedAt string `json:"created_at,omitempty"`
	// Workload knobs (mirrors eval.Config).
	Seed     int64   `json:"seed"`
	Queries  int     `json:"queries"`
	BudgetMS float64 `json:"budget_ms"`
	Sizes    []int   `json:"sizes,omitempty"`
	M        int     `json:"m,omitempty"`
}

// CaptureEnv fills the host and toolchain fields; the caller sets the
// workload fields (seed, queries, budget, sizes, m).
func CaptureEnv() Env {
	e := Env{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev string
		dirty := false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" && dirty {
			rev += "+dirty"
		}
		e.GitSHA = rev
	}
	return e
}

// Latency summarizes per-query wall time in milliseconds. The percentiles
// are nearest-rank (vectormath.Percentiles), so each is an actual sample
// value — a p99 of 12ms means some query really took 12ms.
type Latency struct {
	MeanMS  float64 `json:"mean_ms"`
	P50MS   float64 `json:"p50_ms"`
	P90MS   float64 `json:"p90_ms"`
	P99MS   float64 `json:"p99_ms"`
	MaxMS   float64 `json:"max_ms"`
	TotalMS float64 `json:"total_ms"`
}

// LatencyOf summarizes per-query latency samples (milliseconds) into the
// record's percentile fields. An empty sample yields a zero Latency.
func LatencyOf(samplesMS []float64) Latency {
	if len(samplesMS) == 0 {
		return Latency{}
	}
	p := vectormath.Percentiles(samplesMS, 50, 90, 99, 100)
	var total float64
	for _, s := range samplesMS {
		total += s
	}
	return Latency{
		MeanMS:  total / float64(len(samplesMS)),
		P50MS:   p[0],
		P90MS:   p[1],
		P99MS:   p[2],
		MaxMS:   p[3],
		TotalMS: total,
	}
}

// Mem holds per-run allocation deltas from runtime.ReadMemStats taken
// around the whole query loop (not per query — ReadMemStats stops the
// world). HeapDeltaBytes can be negative when a GC ran mid-measurement.
type Mem struct {
	AllocBytes     int64 `json:"alloc_bytes"`
	Mallocs        int64 `json:"mallocs"`
	HeapDeltaBytes int64 `json:"heap_delta_bytes"`
}

// ErrorStats mirrors the paper's LORA accuracy statistics (Tables II-III)
// for records where an exact reference run was available.
type ErrorStats struct {
	MAE float64 `json:"mae"`
	STD float64 `json:"std"`
	MAX float64 `json:"max"`
}

// Record is one measurement: one algorithm over one query set.
type Record struct {
	// Experiment is the driver id ("table2", "fig9-alpha", ...).
	Experiment string `json:"experiment"`
	// Family is the corpus family ("Yelp"/"Gaode"), when applicable.
	Family string `json:"family,omitempty"`
	// Label distinguishes rows within an experiment: a sweep point
	// ("alpha=0.5", "D=4"), an ablation variant ("whole-space"), or
	// empty for plain size-scaling rows.
	Label string `json:"label,omitempty"`
	// Size is the dataset size (#POIs), when applicable.
	Size int `json:"size,omitempty"`
	// Algorithm is the core.Algorithm name ("hsp", "lora", "dfs-prune").
	Algorithm string `json:"algorithm"`
	// Queries is the number of queries attempted; Completed how many
	// finished before the budget expired or an error aborted the run.
	Queries   int  `json:"queries"`
	Completed int  `json:"completed"`
	TimedOut  bool `json:"timed_out,omitempty"`
	// Error is set when the run aborted on an engine error — a distinct
	// condition from budget expiry (TimedOut).
	Error   string      `json:"error,omitempty"`
	AvgSim  float64     `json:"avg_sim"`
	Errors  *ErrorStats `json:"error_stats,omitempty"`
	Latency Latency     `json:"latency"`
	// Work holds the engine's cumulative counters over all completed
	// queries, keyed by the snake_case names of stats.Snapshot.Each.
	Work map[string]int64 `json:"work,omitempty"`
	// Gauges holds derived float metrics that are not work counters —
	// e.g. the skew experiment's worker imbalance ratios. Additive and
	// optional, so it needs no schema bump; benchdiff compares gauges
	// only when a series carries them on both sides.
	Gauges map[string]float64 `json:"gauges,omitempty"`
	Mem    Mem                `json:"mem"`
}

// Key identifies a record's series for cross-file matching.
func (r Record) Key() string {
	return fmt.Sprintf("%s|%s|%s|%d|%s", r.Experiment, r.Family, r.Label, r.Size, r.Algorithm)
}

// String renders the key for humans: experiment/family/label/size/algo
// with empty parts elided.
func (r Record) String() string {
	s := r.Experiment
	if r.Family != "" {
		s += "/" + r.Family
	}
	if r.Label != "" {
		s += "/" + r.Label
	}
	if r.Size > 0 {
		s += fmt.Sprintf("/%d", r.Size)
	}
	return s + "/" + r.Algorithm
}

// WorkMap converts a counter snapshot into the record's work map, using
// stats.Snapshot.Each as the single source of counter names.
func WorkMap(s stats.Snapshot) map[string]int64 {
	m := make(map[string]int64, 10)
	s.Each(func(name string, v int64) { m[name] = v })
	return m
}

// WorkTotal sums a record's work counters — the scalar benchdiff gates
// on. Counters are deterministic for a fixed seed, so any drift is a real
// behavior change, not noise. Cache-telemetry counters (the
// "attr_sim_memo_" prefix) are excluded: memo hits measure cosines
// *avoided*, not enumeration performed, and folding them in would report
// phantom work against baselines recorded before the memo existed.
// subspace_candidates_max is excluded for the same reason in a different
// shape: it is a max over subspaces, not a sum of work, and its value is
// already contained in the candidates counter.
func WorkTotal(m map[string]int64) int64 {
	var t int64
	for name, v := range m {
		if strings.HasPrefix(name, "attr_sim_memo_") || name == "subspace_candidates_max" {
			continue
		}
		t += v
	}
	return t
}

// File is one benchmark session: header plus records.
type File struct {
	SchemaVersion int      `json:"schema_version"`
	Env           Env      `json:"env"`
	Records       []Record `json:"records"`
}

// Write marshals the file as indented JSON with a trailing newline. Field
// order follows struct declaration and map keys marshal sorted, so output
// is byte-stable for equal inputs.
func (f *File) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// WriteFile writes the session to path (0644, truncating).
func WriteFile(path string, f *File) (err error) {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := out.Close(); err == nil {
			err = cerr
		}
	}()
	return f.Write(out)
}

// Read parses a session written by Write and checks the schema version.
func Read(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("bench: parse: %w", err)
	}
	if f.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("bench: schema version %d, this build reads %d", f.SchemaVersion, SchemaVersion)
	}
	return &f, nil
}

// ReadFile reads a session from path.
func ReadFile(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() {
		// read-path close: the decode already succeeded or failed
		_ = in.Close()
	}()
	f, err := Read(in)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// Recorder collects records during a benchmark session. The zero value
// is unusable; build one with NewRecorder. A nil *Recorder is a no-op
// sink, so drivers call Add unconditionally.
type Recorder struct {
	mu   sync.Mutex
	env  Env
	recs []Record
}

// NewRecorder starts a session with the given header.
func NewRecorder(env Env) *Recorder {
	return &Recorder{env: env}
}

// Add appends one record. Safe on a nil receiver and for concurrent use.
func (r *Recorder) Add(rec Record) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.recs = append(r.recs, rec)
	r.mu.Unlock()
}

// Len reports how many records were added. Nil-safe.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.recs)
}

// File snapshots the session for writing.
func (r *Recorder) File() *File {
	f := &File{SchemaVersion: SchemaVersion}
	if r == nil {
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f.Env = r.env
	f.Records = append([]Record(nil), r.recs...)
	return f
}
