package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	ds := buildSmall(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() || got.AttrDim() != ds.AttrDim() || got.NumCategories() != ds.NumCategories() {
		t.Fatalf("shape mismatch: %d/%d/%d", got.Len(), got.AttrDim(), got.NumCategories())
	}
	for i := 0; i < ds.Len(); i++ {
		a, b := ds.Object(i), got.Object(i)
		if a.ID != b.ID || a.Loc != b.Loc || a.Name != b.Name || a.Category != b.Category {
			t.Errorf("object %d diverged: %+v vs %+v", i, a, b)
		}
		for j := range a.Attr {
			if a.Attr[j] != b.Attr[j] {
				t.Errorf("object %d attr %d: %g vs %g", i, j, a.Attr[j], b.Attr[j])
			}
		}
	}
	if ds.CategoryName(0) != got.CategoryName(0) {
		t.Error("category names diverged")
	}
}

func TestBinaryEmptyDataset(t *testing.T) {
	b := &Builder{}
	b.Category("only")
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.NumCategories() != 1 {
		t.Errorf("empty round trip: %d objects, %d categories", got.Len(), got.NumCategories())
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC========================"),
		append(append([]byte{}, binaryMagic[:]...), 0xff, 0xff, 0xff, 0xff), // truncated header
	}
	for i, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestBinaryRejectsImplausibleHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(binaryMagic[:])
	// 2^31 categories
	buf.Write([]byte{0, 0, 0, 0x80})
	buf.Write([]byte{0, 0, 0, 0})
	buf.Write([]byte{0, 0, 0, 0})
	if _, err := ReadBinary(&buf); err == nil {
		t.Error("implausible header should be rejected")
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	ds := buildSmall(t)
	path := t.TempDir() + "/ds.bin"
	if err := WriteBinaryFile(path, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() {
		t.Errorf("Len = %d", got.Len())
	}
}

func TestReadAnyFileSniffsFormats(t *testing.T) {
	ds := buildSmall(t)
	dir := t.TempDir()

	binPath := dir + "/ds.bin"
	if err := WriteBinaryFile(binPath, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAnyFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() {
		t.Errorf("binary sniff Len = %d", got.Len())
	}

	csvPath := dir + "/ds.csv"
	if err := WriteFile(csvPath, ds); err != nil {
		t.Fatal(err)
	}
	got, err = ReadAnyFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() {
		t.Errorf("CSV sniff Len = %d", got.Len())
	}

	if _, err := ReadAnyFile(dir + "/missing"); err == nil {
		t.Error("missing file should error")
	}
}

func TestBinaryLongNameRejected(t *testing.T) {
	b := &Builder{}
	c := b.Category("c")
	b.Add(Object{ID: 1, Category: c, Attr: []float64{1}, Name: strings.Repeat("x", maxBinaryName+1)})
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err == nil {
		t.Error("oversized name should be rejected")
	}
}
