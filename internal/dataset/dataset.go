// Package dataset defines the POI data model of the example-based spatial
// search system: objects with a location, a category and an attribute
// vector, collected into an immutable Dataset with per-category indexes.
//
// A Dataset is built once (from a generator or a file) and then shared,
// read-only, by every query; all algorithm state is per-query, so a single
// Dataset is safe for concurrent searches.
package dataset

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"spatialseq/internal/geo"
)

// CategoryID identifies an object category ("restaurant", "gym", ...).
// IDs are dense indexes into the dataset's category table.
type CategoryID int32

// NoCategory is the invalid category sentinel.
const NoCategory CategoryID = -1

// Object is a point of interest. Attr is its attribute vector; within one
// dataset all objects carry vectors of the same length, with non-negative
// entries (the cosine attribute similarity of the paper assumes an
// all-positive orthant, which keeps SIMa in [0,1]).
type Object struct {
	ID       int64
	Loc      geo.Point
	Category CategoryID
	Attr     []float64
	Name     string
}

// Dataset is an immutable collection of objects plus derived indexes.
//
// Alongside the array-of-structs object slice, Build derives
// structure-of-arrays views of the hot fields (coordinates, categories,
// attribute norms, a flat attribute matrix): the similarity kernels scan
// those contiguous slices instead of chasing ~70-byte Object structs per
// candidate.
type Dataset struct {
	objects    []Object
	categories []string
	catIndex   map[string]CategoryID
	byCategory [][]int32 // object positions per category
	bounds     geo.Rect
	attrDim    int

	// SoA hot-path views, aligned with objects by position.
	xs, ys    []float64    // coordinates
	cats      []CategoryID // categories
	attrNorms []float64    // Euclidean norms of the attribute vectors
	catRank   []int32      // index of the position within byCategory[cat]
	attrFlat  []float64    // row-major attribute matrix, stride attrDim
}

// Builder accumulates objects and category names before freezing them into
// a Dataset. The zero value is ready to use.
type Builder struct {
	objects    []Object
	categories []string
	catIndex   map[string]CategoryID
	attrDim    int
	err        error
}

// Category interns name and returns its ID, creating it on first use.
func (b *Builder) Category(name string) CategoryID {
	if b.catIndex == nil {
		b.catIndex = make(map[string]CategoryID)
	}
	if id, ok := b.catIndex[name]; ok {
		return id
	}
	id := CategoryID(len(b.categories))
	b.categories = append(b.categories, name)
	b.catIndex[name] = id
	return id
}

// Add appends an object. The first object fixes the attribute
// dimensionality; later objects must match it. Invalid objects record an
// error that Build will return.
func (b *Builder) Add(obj Object) {
	if b.err != nil {
		return
	}
	if obj.Category < 0 || int(obj.Category) >= len(b.categories) {
		b.err = fmt.Errorf("dataset: object %d has unknown category %d", obj.ID, obj.Category)
		return
	}
	if len(b.objects) == 0 {
		b.attrDim = len(obj.Attr)
	} else if len(obj.Attr) != b.attrDim {
		b.err = fmt.Errorf("dataset: object %d has %d attributes, want %d", obj.ID, len(obj.Attr), b.attrDim)
		return
	}
	for _, a := range obj.Attr {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			b.err = fmt.Errorf("dataset: object %d has non-finite attribute", obj.ID)
			return
		}
		if a < 0 {
			b.err = fmt.Errorf("dataset: object %d has negative attribute %g", obj.ID, a)
			return
		}
	}
	if math.IsNaN(obj.Loc.X) || math.IsNaN(obj.Loc.Y) || math.IsInf(obj.Loc.X, 0) || math.IsInf(obj.Loc.Y, 0) {
		b.err = fmt.Errorf("dataset: object %d has non-finite location", obj.ID)
		return
	}
	b.objects = append(b.objects, obj)
}

// Build freezes the builder into a Dataset. The builder must not be used
// afterwards.
func (b *Builder) Build() (*Dataset, error) {
	if b.err != nil {
		return nil, b.err
	}
	ds := &Dataset{
		objects:    b.objects,
		categories: b.categories,
		catIndex:   b.catIndex,
		attrDim:    b.attrDim,
		bounds:     geo.EmptyRect(),
	}
	if ds.catIndex == nil {
		ds.catIndex = make(map[string]CategoryID)
	}
	ds.byCategory = make([][]int32, len(ds.categories))
	n := len(ds.objects)
	ds.xs = make([]float64, n)
	ds.ys = make([]float64, n)
	ds.cats = make([]CategoryID, n)
	ds.attrNorms = make([]float64, n)
	ds.catRank = make([]int32, n)
	ds.attrFlat = make([]float64, n*ds.attrDim)
	for i := range ds.objects {
		o := &ds.objects[i]
		ds.bounds = ds.bounds.ExtendPoint(o.Loc)
		ds.catRank[i] = int32(len(ds.byCategory[o.Category]))
		ds.byCategory[o.Category] = append(ds.byCategory[o.Category], int32(i))
		ds.xs[i], ds.ys[i] = o.Loc.X, o.Loc.Y
		ds.cats[i] = o.Category
		if ds.attrDim > 0 {
			// Repoint the object's attribute vector into the flat matrix:
			// one contiguous allocation for the whole dataset, and Attr(i)
			// stays aliased with Object(i).Attr.
			row := ds.attrFlat[i*ds.attrDim : (i+1)*ds.attrDim : (i+1)*ds.attrDim]
			copy(row, o.Attr)
			o.Attr = row
		}
		var sq float64
		for _, a := range o.Attr {
			sq += a * a
		}
		ds.attrNorms[i] = math.Sqrt(sq)
	}
	return ds, nil
}

// ErrEmpty is returned by operations that need at least one object.
var ErrEmpty = errors.New("dataset: empty dataset")

// Len returns the number of objects.
func (d *Dataset) Len() int { return len(d.objects) }

// AttrDim returns the attribute vector length shared by all objects
// (0 for an empty dataset).
func (d *Dataset) AttrDim() int { return d.attrDim }

// Object returns the object at position i (not by ID).
func (d *Dataset) Object(i int) *Object { return &d.objects[i] }

// Loc returns the location of the object at position i, read from the
// structure-of-arrays coordinate slices (no Object struct load).
func (d *Dataset) Loc(i int) geo.Point { return geo.Point{X: d.xs[i], Y: d.ys[i]} }

// Coords returns the parallel coordinate slices, aligned with object
// positions. Callers must not modify them; they feed the position-indexed
// distance kernels (geo.DistVectorAt).
func (d *Dataset) Coords() (xs, ys []float64) { return d.xs, d.ys }

// Category returns the category of the object at position i from the flat
// category slice — the hot-path form of Object(i).Category.
func (d *Dataset) Category(i int) CategoryID { return d.cats[i] }

// Attr returns the attribute vector of the object at position i as a row
// of the flat attribute matrix. Callers must not modify it.
func (d *Dataset) Attr(i int) []float64 {
	return d.attrFlat[i*d.attrDim : (i+1)*d.attrDim : (i+1)*d.attrDim]
}

// AttrsFlat returns the row-major flat attribute matrix and its row
// stride: object i's vector occupies rows[i*stride:(i+1)*stride]. It is
// the batch-kernel companion of Attr (vectormath.DotsAt reads many rows
// without per-row slicing). Callers must not modify the slice.
func (d *Dataset) AttrsFlat() (rows []float64, stride int) { return d.attrFlat, d.attrDim }

// AttrNorm returns the precomputed Euclidean norm of the attribute vector
// at position i. It equals vectormath.Norm(Object(i).Attr) bit-for-bit
// (same accumulation order), so cosine kernels can divide by it instead of
// re-deriving it per candidate.
func (d *Dataset) AttrNorm(i int) float64 { return d.attrNorms[i] }

// CategoryRank returns the index of position i within
// CategoryObjects(Category(i)) — a dense per-category numbering the
// query-scoped similarity memo uses to key its table by candidate rather
// than by raw position.
func (d *Dataset) CategoryRank(i int) int32 { return d.catRank[i] }

// Objects returns the backing object slice. Callers must not modify it.
func (d *Dataset) Objects() []Object { return d.objects }

// Bounds returns the minimal bounding rectangle of all object locations.
func (d *Dataset) Bounds() geo.Rect { return d.bounds }

// NumCategories returns the number of interned categories.
func (d *Dataset) NumCategories() int { return len(d.categories) }

// CategoryName returns the name for id, or "" if out of range.
func (d *Dataset) CategoryName(id CategoryID) string {
	if id < 0 || int(id) >= len(d.categories) {
		return ""
	}
	return d.categories[id]
}

// CategoryByName returns the ID for name.
func (d *Dataset) CategoryByName(name string) (CategoryID, bool) {
	id, ok := d.catIndex[name]
	return id, ok
}

// CategoryObjects returns the positions of all objects in category id,
// in insertion order. Callers must not modify the slice.
func (d *Dataset) CategoryObjects(id CategoryID) []int32 {
	if id < 0 || int(id) >= len(d.byCategory) {
		return nil
	}
	return d.byCategory[id]
}

// CategorySizes returns a copy of per-category object counts.
func (d *Dataset) CategorySizes() []int {
	out := make([]int, len(d.byCategory))
	for i, s := range d.byCategory {
		out[i] = len(s)
	}
	return out
}

// Sample returns a new Dataset containing the first n objects in a
// deterministic shuffled order derived from seed. It is how the evaluation
// harness derives the paper's "sampled datasets" of growing size from one
// master dataset; using a fixed seed makes smaller samples prefixes of
// larger ones, mirroring the paper's nested sampling.
func (d *Dataset) Sample(n int, seed int64) (*Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: sample size %d must be positive", n)
	}
	if n > len(d.objects) {
		return nil, fmt.Errorf("dataset: sample size %d exceeds dataset size %d", n, len(d.objects))
	}
	perm := make([]int32, len(d.objects))
	for i := range perm {
		perm[i] = int32(i)
	}
	rng := splitMix64(uint64(seed))
	for i := len(perm) - 1; i > 0; i-- {
		j := int(rng.next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	b := &Builder{}
	for _, name := range d.categories {
		b.Category(name)
	}
	idxs := perm[:n]
	sorted := make([]int32, n)
	copy(sorted, idxs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, i := range sorted {
		b.Add(d.objects[i])
	}
	return b.Build()
}

// splitMix64 is a tiny deterministic PRNG so Sample does not depend on
// math/rand's global state or version-specific stream.
type splitMix64 uint64

func (s *splitMix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
