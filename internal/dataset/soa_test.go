package dataset

import (
	"math"
	"math/rand"
	"testing"

	"spatialseq/internal/geo"
)

func buildRandom(t *testing.T, n int) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(53))
	b := &Builder{}
	for c := 0; c < 4; c++ {
		b.Category(string(rune('a' + c)))
	}
	for i := 0; i < n; i++ {
		b.Add(Object{
			ID:       int64(i),
			Loc:      geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			Category: CategoryID(rng.Intn(4)),
			Attr:     []float64{rng.Float64(), rng.Float64(), rng.Float64()},
		})
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// The SoA views must agree with the canonical Object records — they are the
// same data in a second layout, not a copy that can go stale.
func TestSoAViewsMatchObjects(t *testing.T) {
	ds := buildRandom(t, 150)
	xs, ys := ds.Coords()
	if len(xs) != ds.Len() || len(ys) != ds.Len() {
		t.Fatalf("Coords lengths %d/%d, want %d", len(xs), len(ys), ds.Len())
	}
	for i := 0; i < ds.Len(); i++ {
		o := ds.Object(i)
		if got := ds.Loc(i); got != o.Loc {
			t.Fatalf("Loc(%d) = %v, object has %v", i, got, o.Loc)
		}
		if xs[i] != o.Loc.X || ys[i] != o.Loc.Y {
			t.Fatalf("Coords[%d] = (%v,%v), object at %v", i, xs[i], ys[i], o.Loc)
		}
		if got := ds.Category(i); got != o.Category {
			t.Fatalf("Category(%d) = %d, object has %d", i, got, o.Category)
		}
		var sq float64
		for _, a := range o.Attr {
			sq += a * a
		}
		if got := ds.AttrNorm(i); got != math.Sqrt(sq) {
			t.Fatalf("AttrNorm(%d) = %v, want %v", i, got, math.Sqrt(sq))
		}
	}
}

// Attr(i) and Object(i).Attr must alias the same backing row: the builder
// repoints object attributes into the flat matrix rather than duplicating.
func TestAttrRowsAliasObjects(t *testing.T) {
	ds := buildRandom(t, 20)
	for i := 0; i < ds.Len(); i++ {
		row := ds.Attr(i)
		obj := ds.Object(i).Attr
		if len(row) != len(obj) {
			t.Fatalf("Attr(%d) len %d, object attr len %d", i, len(row), len(obj))
		}
		if len(row) > 0 && &row[0] != &obj[0] {
			t.Fatalf("Attr(%d) does not alias the object's attribute slice", i)
		}
	}
}

// CategoryRank must invert CategoryObjects: the r-th listed object of a
// category has rank r. The memo tables index by this rank.
func TestCategoryRankInvertsCategoryObjects(t *testing.T) {
	ds := buildRandom(t, 150)
	for c := 0; c < ds.NumCategories(); c++ {
		for r, pos := range ds.CategoryObjects(CategoryID(c)) {
			if got := ds.CategoryRank(int(pos)); int(got) != r {
				t.Fatalf("CategoryRank(%d) = %d, want %d (category %d)", pos, got, r, c)
			}
		}
	}
}

// Datasets without attributes keep nil Attr slices — the SoA repoint must
// not materialise empty non-nil rows.
func TestSoANoAttributes(t *testing.T) {
	b := &Builder{}
	b.Category("only")
	b.Add(Object{ID: 0, Loc: geo.Point{X: 1, Y: 1}, Category: 0})
	b.Add(Object{ID: 1, Loc: geo.Point{X: 2, Y: 2}, Category: 0})
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ds.AttrDim() != 0 {
		t.Fatalf("AttrDim = %d", ds.AttrDim())
	}
	for i := 0; i < ds.Len(); i++ {
		if len(ds.Attr(i)) != 0 {
			t.Errorf("Attr(%d) = %v, want empty", i, ds.Attr(i))
		}
		if ds.AttrNorm(i) != 0 {
			t.Errorf("AttrNorm(%d) = %v, want 0", i, ds.AttrNorm(i))
		}
	}
}
