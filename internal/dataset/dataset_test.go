package dataset

import (
	"math"
	"strings"
	"testing"

	"spatialseq/internal/geo"
)

func buildSmall(t *testing.T) *Dataset {
	t.Helper()
	b := &Builder{}
	ca := b.Category("restaurant")
	cb := b.Category("gym")
	objs := []Object{
		{ID: 0, Loc: geo.Point{X: 1, Y: 2}, Category: ca, Attr: []float64{0.5, 0.2}, Name: "r1"},
		{ID: 1, Loc: geo.Point{X: 3, Y: 4}, Category: cb, Attr: []float64{0.1, 0.9}, Name: "g1"},
		{ID: 2, Loc: geo.Point{X: 5, Y: 0}, Category: ca, Attr: []float64{0.7, 0.7}, Name: "r2"},
	}
	for _, o := range objs {
		b.Add(o)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBuilderBasics(t *testing.T) {
	ds := buildSmall(t)
	if ds.Len() != 3 {
		t.Errorf("Len = %d", ds.Len())
	}
	if ds.AttrDim() != 2 {
		t.Errorf("AttrDim = %d", ds.AttrDim())
	}
	if ds.NumCategories() != 2 {
		t.Errorf("NumCategories = %d", ds.NumCategories())
	}
	if name := ds.CategoryName(0); name != "restaurant" {
		t.Errorf("CategoryName(0) = %q", name)
	}
	if id, ok := ds.CategoryByName("gym"); !ok || id != 1 {
		t.Errorf("CategoryByName = %d, %v", id, ok)
	}
	if _, ok := ds.CategoryByName("nope"); ok {
		t.Error("unknown category should not resolve")
	}
	if got := ds.CategoryObjects(0); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("CategoryObjects(0) = %v", got)
	}
	if got := ds.CategoryObjects(-1); got != nil {
		t.Errorf("out-of-range CategoryObjects = %v", got)
	}
	want := geo.Rect{MinX: 1, MinY: 0, MaxX: 5, MaxY: 4}
	if ds.Bounds() != want {
		t.Errorf("Bounds = %v, want %v", ds.Bounds(), want)
	}
	sizes := ds.CategorySizes()
	if sizes[0] != 2 || sizes[1] != 1 {
		t.Errorf("CategorySizes = %v", sizes)
	}
}

func TestCategoryInterning(t *testing.T) {
	b := &Builder{}
	a1 := b.Category("x")
	a2 := b.Category("x")
	if a1 != a2 {
		t.Error("same name must intern to same ID")
	}
}

func TestBuilderRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		obj  func(b *Builder) Object
	}{
		{"unknown category", func(b *Builder) Object {
			return Object{Category: 99, Attr: []float64{1}}
		}},
		{"negative attr", func(b *Builder) Object {
			return Object{Category: b.Category("c"), Attr: []float64{-1}}
		}},
		{"NaN attr", func(b *Builder) Object {
			return Object{Category: b.Category("c"), Attr: []float64{math.NaN()}}
		}},
		{"Inf attr", func(b *Builder) Object {
			return Object{Category: b.Category("c"), Attr: []float64{math.Inf(1)}}
		}},
		{"NaN location", func(b *Builder) Object {
			return Object{Category: b.Category("c"), Loc: geo.Point{X: math.NaN()}, Attr: []float64{1}}
		}},
	}
	for _, c := range cases {
		b := &Builder{}
		b.Add(c.obj(b))
		if _, err := b.Build(); err == nil {
			t.Errorf("%s: Build should fail", c.name)
		}
	}
}

func TestBuilderRejectsDimMismatch(t *testing.T) {
	b := &Builder{}
	c := b.Category("c")
	b.Add(Object{ID: 0, Category: c, Attr: []float64{1, 2}})
	b.Add(Object{ID: 1, Category: c, Attr: []float64{1}})
	if _, err := b.Build(); err == nil {
		t.Error("attribute dimension mismatch should fail")
	}
}

func TestEmptyBuild(t *testing.T) {
	b := &Builder{}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 0 || !ds.Bounds().IsEmpty() {
		t.Error("empty dataset should have empty bounds")
	}
}

func TestSample(t *testing.T) {
	ds := buildSmall(t)
	s, err := ds.Sample(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Errorf("sample Len = %d", s.Len())
	}
	if s.NumCategories() != ds.NumCategories() {
		t.Error("sample must keep the category table")
	}
	// deterministic
	s2, err := ds.Sample(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Len(); i++ {
		if s.Object(i).ID != s2.Object(i).ID {
			t.Error("same seed must give same sample")
		}
	}
	if _, err := ds.Sample(0, 1); err == nil {
		t.Error("sample size 0 should fail")
	}
	if _, err := ds.Sample(4, 1); err == nil {
		t.Error("oversized sample should fail")
	}
}

func TestSampleNesting(t *testing.T) {
	// Same seed: a smaller sample's objects are a subset of a larger one's
	// (paper-style nested sampling).
	b := &Builder{}
	c := b.Category("c")
	for i := 0; i < 100; i++ {
		b.Add(Object{ID: int64(i), Loc: geo.Point{X: float64(i), Y: 0}, Category: c, Attr: []float64{1}})
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	small, _ := ds.Sample(20, 5)
	large, _ := ds.Sample(60, 5)
	inLarge := map[int64]bool{}
	for i := 0; i < large.Len(); i++ {
		inLarge[large.Object(i).ID] = true
	}
	for i := 0; i < small.Len(); i++ {
		if !inLarge[small.Object(i).ID] {
			t.Fatalf("object %d in small sample missing from large sample", small.Object(i).ID)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := buildSmall(t)
	var sb strings.Builder
	if err := WriteCSV(&sb, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() {
		t.Fatalf("round trip Len = %d", got.Len())
	}
	for i := 0; i < ds.Len(); i++ {
		a, b := ds.Object(i), got.Object(i)
		if a.ID != b.ID || a.Loc != b.Loc || a.Name != b.Name {
			t.Errorf("object %d diverged: %+v vs %+v", i, a, b)
		}
		if ds.CategoryName(a.Category) != got.CategoryName(b.Category) {
			t.Errorf("object %d category diverged", i)
		}
		for j := range a.Attr {
			if a.Attr[j] != b.Attr[j] {
				t.Errorf("object %d attr %d diverged", i, j)
			}
		}
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, csv string
	}{
		{"bad header", "nope,x\n"},
		{"bad id", "id,x,y,category,name,attr0\nzz,1,2,c,n,0.5\n"},
		{"bad x", "id,x,y,category,name,attr0\n1,zz,2,c,n,0.5\n"},
		{"bad attr", "id,x,y,category,name,attr0\n1,1,2,c,n,zz\n"},
		{"negative attr", "id,x,y,category,name,attr0\n1,1,2,c,n,-3\n"},
		{"empty", ""},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.csv)); err == nil {
			t.Errorf("%s: ReadCSV should fail", c.name)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	ds := buildSmall(t)
	path := t.TempDir() + "/ds.csv"
	if err := WriteFile(path, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() {
		t.Errorf("file round trip Len = %d", got.Len())
	}
	if _, err := ReadFile(path + ".missing"); err == nil {
		t.Error("missing file should error")
	}
}
