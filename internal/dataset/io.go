package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"spatialseq/internal/geo"
)

// CSV layout: one header row, then one row per object:
//
//	id,x,y,category,name,attr0,attr1,...
//
// The attribute dimensionality is inferred from the header (columns after
// "name"). WriteCSV and ReadCSV round-trip exactly in this layout.

// WriteCSV writes d to w in the library's CSV layout.
func WriteCSV(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	header := []string{"id", "x", "y", "category", "name"}
	for i := 0; i < d.AttrDim(); i++ {
		header = append(header, fmt.Sprintf("attr%d", i))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 0, len(header))
	for i := 0; i < d.Len(); i++ {
		o := d.Object(i)
		row = row[:0]
		row = append(row,
			strconv.FormatInt(o.ID, 10),
			strconv.FormatFloat(o.Loc.X, 'g', -1, 64),
			strconv.FormatFloat(o.Loc.Y, 'g', -1, 64),
			d.CategoryName(o.Category),
			o.Name,
		)
		for _, a := range o.Attr {
			row = append(row, strconv.FormatFloat(a, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses a dataset from the library's CSV layout.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if len(header) < 5 || header[0] != "id" {
		return nil, fmt.Errorf("dataset: unexpected CSV header %q", strings.Join(header, ","))
	}
	attrDim := len(header) - 5
	b := &Builder{}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line+1, err)
		}
		line++
		if len(rec) != 5+attrDim {
			return nil, fmt.Errorf("dataset: CSV line %d has %d fields, want %d", line, len(rec), 5+attrDim)
		}
		id, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: bad id %q", line, rec[0])
		}
		x, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: bad x %q", line, rec[1])
		}
		y, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: bad y %q", line, rec[2])
		}
		attrs := make([]float64, attrDim)
		for i := 0; i < attrDim; i++ {
			a, err := strconv.ParseFloat(rec[5+i], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d: bad attr%d %q", line, i, rec[5+i])
			}
			attrs[i] = a
		}
		obj := Object{
			ID:       id,
			Loc:      geo.Point{X: x, Y: y},
			Category: b.Category(rec[3]),
			Name:     rec[4],
			Attr:     attrs,
		}
		b.Add(obj)
	}
	ds, err := b.Build()
	if err != nil {
		return nil, err
	}
	return ds, nil
}

// WriteFile writes d as CSV to path.
func WriteFile(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, d); err != nil {
		_ = f.Close() // the write error takes precedence
		return err
	}
	return f.Close()
}

// ReadFile parses a CSV dataset from path.
func ReadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}
