package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"spatialseq/internal/geo"
)

func geoPoint(x, y float64) geo.Point { return geo.Point{X: x, Y: y} }

// Binary dataset format: a compact, versioned little-endian encoding for
// large corpora (the 10M-POI Gaode-scale datasets make CSV parsing the
// bottleneck; this format loads roughly an order of magnitude faster).
//
// Layout:
//
//	magic   [8]byte  "SSEQDS\x00\x01"   (includes the format version)
//	nCat    uint32
//	nObj    uint32
//	attrDim uint32
//	categories: nCat x { nameLen uint16, name []byte }
//	objects:    nObj x { id int64, x, y float64, cat uint32,
//	                     nameLen uint16, name []byte,
//	                     attrs [attrDim]float64 }
var binaryMagic = [8]byte{'S', 'S', 'E', 'Q', 'D', 'S', 0, 1}

// maxBinaryName caps stored name lengths (the encoding uses uint16).
const maxBinaryName = 65535

// WriteBinary writes d to w in the library's binary layout.
func WriteBinary(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var scratch [8]byte
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:], v)
		_, err := bw.Write(scratch[:])
		return err
	}
	writeStr := func(s string) error {
		if len(s) > maxBinaryName {
			return fmt.Errorf("dataset: name %q exceeds %d bytes", s[:32], maxBinaryName)
		}
		binary.LittleEndian.PutUint16(scratch[:2], uint16(len(s)))
		if _, err := bw.Write(scratch[:2]); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := writeU32(uint32(d.NumCategories())); err != nil {
		return err
	}
	if err := writeU32(uint32(d.Len())); err != nil {
		return err
	}
	if err := writeU32(uint32(d.AttrDim())); err != nil {
		return err
	}
	for c := 0; c < d.NumCategories(); c++ {
		if err := writeStr(d.CategoryName(CategoryID(c))); err != nil {
			return err
		}
	}
	for i := 0; i < d.Len(); i++ {
		o := d.Object(i)
		if err := writeU64(uint64(o.ID)); err != nil {
			return err
		}
		if err := writeU64(math.Float64bits(o.Loc.X)); err != nil {
			return err
		}
		if err := writeU64(math.Float64bits(o.Loc.Y)); err != nil {
			return err
		}
		if err := writeU32(uint32(o.Category)); err != nil {
			return err
		}
		if err := writeStr(o.Name); err != nil {
			return err
		}
		for _, a := range o.Attr {
			if err := writeU64(math.Float64bits(a)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses a dataset from the library's binary layout.
func ReadBinary(r io.Reader) (*Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("dataset: reading binary magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("dataset: not a spatialseq binary dataset (magic %x)", magic)
	}
	var scratch [8]byte
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:]), nil
	}
	readStr := func() (string, error) {
		if _, err := io.ReadFull(br, scratch[:2]); err != nil {
			return "", err
		}
		n := binary.LittleEndian.Uint16(scratch[:2])
		if n == 0 {
			return "", nil
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	nCat, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading category count: %w", err)
	}
	nObj, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading object count: %w", err)
	}
	attrDim, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading attribute dim: %w", err)
	}
	const sanity = 1 << 30
	if nCat > sanity || nObj > sanity || attrDim > 1<<16 {
		return nil, fmt.Errorf("dataset: implausible binary header (%d cats, %d objs, %d attrs)", nCat, nObj, attrDim)
	}
	b := &Builder{}
	for c := uint32(0); c < nCat; c++ {
		name, err := readStr()
		if err != nil {
			return nil, fmt.Errorf("dataset: reading category %d: %w", c, err)
		}
		b.Category(name)
	}
	// one backing array for all attribute vectors
	attrs := make([]float64, int(nObj)*int(attrDim))
	for i := uint32(0); i < nObj; i++ {
		id, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("dataset: reading object %d: %w", i, err)
		}
		xb, err := readU64()
		if err != nil {
			return nil, err
		}
		yb, err := readU64()
		if err != nil {
			return nil, err
		}
		cat, err := readU32()
		if err != nil {
			return nil, err
		}
		name, err := readStr()
		if err != nil {
			return nil, err
		}
		av := attrs[int(i)*int(attrDim) : (int(i)+1)*int(attrDim)]
		for j := range av {
			bits, err := readU64()
			if err != nil {
				return nil, err
			}
			av[j] = math.Float64frombits(bits)
		}
		b.Add(Object{
			ID:       int64(id),
			Loc:      geoPoint(math.Float64frombits(xb), math.Float64frombits(yb)),
			Category: CategoryID(cat),
			Name:     name,
			Attr:     av,
		})
	}
	return b.Build()
}

// WriteBinaryFile stores d at path in binary form.
func WriteBinaryFile(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, d); err != nil {
		_ = f.Close() // the write error takes precedence
		return err
	}
	return f.Close()
}

// ReadBinaryFile loads a binary dataset from path.
func ReadBinaryFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// ReadAnyFile loads a dataset from path, sniffing the format (binary magic
// first, CSV otherwise).
func ReadAnyFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [8]byte
	n, err := io.ReadFull(f, magic[:])
	if err != nil && n == 0 {
		return nil, fmt.Errorf("dataset: %s is empty", path)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if magic == binaryMagic {
		return ReadBinary(f)
	}
	return ReadCSV(f)
}
