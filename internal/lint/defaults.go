package lint

// DefaultFloatCmpAllow is the approved epsilon-helper allowlist for the
// floatcmp analyzer: functions whose whole job is classifying float
// equality, where an exact comparison is the intended semantics. Keys
// are "<package-rel>.<func>" (methods as "<package-rel>.<Type>.<func>").
var DefaultFloatCmpAllow = map[string]bool{
	// topk's tie-break: an exact similarity tie falls through to the
	// deterministic tuple-identity ordering; epsilon would make result
	// order depend on accumulation noise.
	"internal/topk.beats": true,
}

// Default returns the full seqlint analyzer suite for the module at
// modPath with the given layering policy.
func Default(modPath string, rules []LayerRule) []*Analyzer {
	return []*Analyzer{
		FloatCmp(DefaultFloatCmpAllow),
		SyncMisuse(),
		Layering(modPath, rules),
		PanicFree(),
		ErrDrop(),
		HotPathAlloc(),
		MapOrder(),
		GoroutineDiscipline(),
		StatsName(DefaultStatsNameConfig),
	}
}
