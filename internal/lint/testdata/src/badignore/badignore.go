// Package badignore is a seqlint fixture: a lint:ignore directive with
// no analyzer or reason is itself reported by the engine.
package badignore

//lint:ignore
func orphan() {}

var _ = []any{orphan}
