// Package errdrop is a seqlint golden-file fixture.
package errdrop

import (
	"errors"
	"fmt"
	"strings"
)

func fail() error { return errors.New("boom") }

func multi() (int, error) { return 0, errors.New("boom") }

func clean() int { return 1 }

func drop() {
	fail()  // want errdrop "silently discarded"
	multi() // want errdrop "silently discarded"
	clean() // no error result: fine
	_ = fail()
	if _, err := multi(); err != nil {
		_ = err
	}
	var sb strings.Builder
	sb.WriteString("builder writes never fail")
	fmt.Fprintf(&sb, "nor do Fprints into one: %d", 1)
	//lint:ignore errdrop fixture: justified drop
	fail()
}

var _ = []any{drop}
