// Package kernel is a seqlint golden-file fixture for hotpathalloc.
package kernel

import (
	"fmt"

	"spatialseq/internal/lint/testdata/src/hotpathalloc/helper"
)

// Score is a clean hot-path kernel: arithmetic over existing storage.
//
//seq:hotpath
func Score(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return s
}

//seq:hotpath
func BadMake(n int) []float64 {
	buf := make([]float64, n) // want hotpathalloc "make allocates"
	return buf
}

//seq:hotpath
func BadNew() *int {
	return new(int) // want hotpathalloc "new allocates"
}

//seq:hotpath
func BadAppend(dst []int, v int) []int {
	return append(dst, v) // want hotpathalloc "append may grow its backing array"
}

//seq:hotpath
func BadSliceLit() []int {
	return []int{1, 2, 3} // want hotpathalloc "slice literal allocates"
}

//seq:hotpath
func BadMapLit() map[string]int {
	return map[string]int{"a": 1} // want hotpathalloc "map literal allocates"
}

//seq:hotpath
func BadConcat(a, b string) string {
	return a + b // want hotpathalloc "string concatenation allocates"
}

//seq:hotpath
func BadConv(b []byte) string {
	return string(b) // want hotpathalloc "string conversion allocates"
}

//seq:hotpath
func BadFmt(x int) {
	fmt.Println(x) // want hotpathalloc "fmt call allocates"
}

//seq:hotpath
func BadBoxing(x int) any {
	return box(x) // want hotpathalloc "interface boxing of int value"
}

// goodPointerShaped passes pointer-shaped values to interface
// parameters: stored in the interface word directly, no allocation.
//
//seq:hotpath
func goodPointerShaped(p *int) any {
	return box(p)
}

func box(v any) any { return v }

//seq:hotpath
func BadClosure(n int) func() int {
	return func() int { return n } // want hotpathalloc "closure captures"
}

//seq:hotpath
func BadGo(done func()) {
	go done() // want hotpathalloc "go statement allocates a goroutine"
}

// Transitive reaches helper.Sum through the module call graph; the
// allocation is reported at its site in the helper package.
//
//seq:hotpath
func Transitive(xs []float64) float64 {
	return helper.Sum(xs)
}

// SuppressedGrow carries the justified suppression at the alloc site.
//
//seq:hotpath
func SuppressedGrow(dst []float64, n int) []float64 {
	if cap(dst) < n {
		//lint:ignore hotpathalloc fixture: grow-once scratch resize
		dst = make([]float64, n)
	}
	return dst[:n]
}

// SuppressedTransitive reaches helper.Grow, whose deliberate resize is
// suppressed in the helper file.
//
//seq:hotpath
func SuppressedTransitive(dst []float64, n int) []float64 {
	return helper.Grow(dst, n)
}

// notHot allocates freely: no annotation, not reachable from one.
func notHot(n int) []float64 {
	return make([]float64, n)
}
