// Package helper is reached from the kernel fixture's annotated roots;
// hotpathalloc follows the cross-package call graph into it.
package helper

// Sum allocates on the hot path of kernel.Transitive; the diagnostic
// names the annotated root.
func Sum(xs []float64) float64 {
	tmp := make([]float64, len(xs)) // want hotpathalloc "make allocates in //seq:hotpath code .on the hot path of .*Transitive"
	copy(tmp, xs)
	var s float64
	for _, x := range tmp {
		s += x
	}
	return s
}

// Grow is a deliberate grow-once resize; the suppression sits at the
// alloc site, where the diagnostic lands.
func Grow(dst []float64, n int) []float64 {
	if cap(dst) < n {
		//lint:ignore hotpathalloc fixture: grow-once scratch resize reached transitively
		dst = make([]float64, n)
	}
	return dst[:n]
}

// Unreached allocates but no annotated function calls it.
func Unreached() []int {
	return make([]int, 8)
}
