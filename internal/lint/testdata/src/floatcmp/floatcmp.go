// Package floatcmp is a seqlint golden-file fixture.
package floatcmp

func bad(a, b float64) bool {
	return a == b // want floatcmp "exact floating-point == comparison"
}

func badNeq(a, b float32) bool {
	return a != b // want floatcmp "exact floating-point != comparison"
}

func badMixed(xs []float64) int {
	for i, x := range xs {
		if x == xs[0] && i > 0 { // want floatcmp "exact floating-point == comparison"
			return i
		}
	}
	return -1
}

// zeroGuard is allowed: comparison against the constant zero is a
// sentinel or division guard, not a tolerance question.
func zeroGuard(a float64) bool {
	return a == 0 || 0.0 != a
}

// approxEq is on the test's allowlist, so its exact comparison passes.
func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// suppressed carries a justified //lint:ignore.
func suppressed(a, b float64) bool {
	//lint:ignore floatcmp fixture: exact comparison is intended here
	return a == b
}

var _ = []any{bad, badNeq, badMixed, zeroGuard, approxEq, suppressed}
