// Package statspkg mimics internal/stats for the statsname golden test:
// Snapshot.Each is the single source of counter names.
package statspkg

// Snapshot is the fixture's counter record.
type Snapshot struct {
	Tuples     int64
	Offered    int64
	MemoHits   int64
	MemoMisses int64
}

// Each visits every counter with its canonical name.
func (s Snapshot) Each(f func(name string, v int64)) {
	f("tuples", s.Tuples)
	f("offered", s.Offered)
	f("memo_hits", s.MemoHits)
	f("memo_misses", s.MemoMisses)
}
