// Package user consumes counter names; statsname checks every literal
// against the statspkg source.
package user

import "strings"

func goodRecord(w map[string]int64) {
	w["tuples"]++
	w["offered"]++
}

func badRecord(w map[string]int64) {
	w["offerd"]++ // want statsname "is not published by the stats name source"
}

func goodBuild(tuples int64) map[string]int64 {
	return map[string]int64{"tuples": tuples}
}

func badBuild(offered int64) map[string]int64 {
	return map[string]int64{
		"ofered": offered, // want statsname "is not published by the stats name source"
	}
}

// goodPrefix matches the memo_hits / memo_misses family.
func goodPrefix(w map[string]int64) int64 {
	var t int64
	for name, v := range w {
		if strings.HasPrefix(name, "memo_") {
			continue
		}
		t += v
	}
	return t
}

func badPrefix(w map[string]int64) int64 {
	var t int64
	for name, v := range w {
		if strings.HasPrefix(name, "cache_") { // want statsname "matches no counter published by the stats name source"
			continue
		}
		t += v
	}
	return t
}

// goodSentinel: a non-snake-case or letterless prefix is not a counter
// family check (obs label guards use "__").
func goodSentinel(name string) bool {
	return strings.HasPrefix(name, "__")
}

// goodOtherMap: only the map[string]int64 work-map shape is checked.
func goodOtherMap(m map[string]string) {
	m["anything"] = "goes"
}

func suppressed(w map[string]int64) {
	//lint:ignore statsname fixture: legacy dashboard counter kept for compatibility
	w["legacy_counter"]++
}
