// Package syncmisuse is a seqlint golden-file fixture.
package syncmisuse

import "sync"

func addInGoroutine(wg *sync.WaitGroup) {
	go func() {
		wg.Add(1) // want syncmisuse "WaitGroup.Add called inside the goroutine"
		defer wg.Done()
	}()
	wg.Add(1) // correct placement: before the go statement
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) leakyReturn(flag bool) int {
	c.mu.Lock()
	if flag {
		return c.n // want syncmisuse "return with c.mu held"
	}
	c.mu.Unlock()
	return 0
}

func (c *counter) neverReleased() {
	c.mu.Lock() // want syncmisuse "not released on every path"
	c.n++
}

func (c *counter) okDefer(flag bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if flag {
		return c.n
	}
	return 0
}

func (c *counter) okBranches(flag bool) int {
	c.mu.Lock()
	if flag {
		c.mu.Unlock()
		return c.n
	}
	c.mu.Unlock()
	return 0
}

func (c counter) valueReceiver() int { // want syncmisuse "copies sync state by value"
	return c.n
}

func byValueParam(c counter) int { // want syncmisuse "copies sync state by value"
	return c.n
}

func pointerParamOK(c *counter) int {
	return c.n
}

var _ = []any{addInGoroutine, (*counter).leakyReturn, (*counter).neverReleased,
	(*counter).okDefer, (*counter).okBranches, counter.valueReceiver, byValueParam, pointerParamOK}
