// Package maporder is a seqlint golden-file fixture for maporder.
package maporder

import (
	"fmt"
	"sort"
)

func badReturn(m map[string]int) (string, int) {
	for k, v := range m { // want maporder "map iteration order reaches a return value"
		return k, v
	}
	return "", 0
}

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want maporder "map iteration order reaches a slice append"
		keys = append(keys, k)
	}
	return keys
}

func badWriter(m map[string]int) {
	for k, v := range m { // want maporder "map iteration order reaches a writer/encoder"
		fmt.Println(k, v)
	}
}

type report struct {
	lines []string
}

func badFieldAppend(m map[string]int, r *report) {
	for k := range m { // want maporder "map iteration order reaches a slice append"
		r.lines = append(r.lines, k)
	}
}

// goodCollectThenSort is the canonical idiom: collect, then order.
func goodCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodFold is order-insensitive: addition commutes.
func goodFold(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// goodMapToMap writes into another map: no order leaks.
func goodMapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// goodUnbound binds no key or value, so order cannot leak.
func goodUnbound(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func suppressed(m map[string]int) []string {
	var keys []string
	//lint:ignore maporder fixture: caller sorts the returned slice
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
