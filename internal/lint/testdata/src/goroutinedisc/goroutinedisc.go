// Package goroutinedisc is a seqlint golden-file fixture for
// goroutinediscipline.
package goroutinedisc

import (
	"context"
	"sync"
)

func badFireAndForget(work func()) {
	go work() // want goroutinediscipline "fire-and-forget"
}

func goodWaitGroup(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func goodChannelSend(c chan int) {
	go func() {
		c <- 1
	}()
	<-c
}

func goodCtxLoop(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
	}()
}

func goodWaitAfter(run func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go run()
	wg.Wait()
}

func suppressedGo(daemon func()) {
	//lint:ignore goroutinediscipline fixture: process-lifetime daemon, joined by exit
	go daemon()
}

type store struct {
	mu sync.Mutex
	n  int
}

func (s *store) badManualUnlock(flag bool) int {
	s.mu.Lock() // want goroutinediscipline "released manually across 2 returns"
	if flag {
		v := s.n
		s.mu.Unlock()
		return v
	}
	s.n++
	v := s.n
	s.mu.Unlock()
	return v
}

func (s *store) goodDefer(flag bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if flag {
		return s.n
	}
	s.n++
	return s.n
}

// goodSingleReturn releases manually on a single straight-line path:
// acceptable (one return after the acquire).
func (s *store) goodSingleReturn() int {
	s.mu.Lock()
	v := s.n
	s.mu.Unlock()
	return v
}

func (s *store) suppressedManual(flag bool) int {
	//lint:ignore goroutinediscipline fixture: lock must drop before the blocking call on each path
	s.mu.Lock()
	if flag {
		s.mu.Unlock()
		return 0
	}
	s.mu.Unlock()
	return 1
}
