// Package panicfree is a seqlint golden-file fixture.
package panicfree

func explode(on bool) {
	if on {
		panic("boom") // want panicfree "panic in library code"
	}
}

func guarded(on bool) {
	if on {
		//lint:ignore panicfree fixture: justified invariant guard
		panic("invariant")
	}
}

var _ = []any{explode, guarded}
