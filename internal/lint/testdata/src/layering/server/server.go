// Package server is a seqlint layering fixture standing in for the
// serving layer, which the algorithm layer may not import.
package server

// Port is a dummy exported symbol.
const Port = 8080
