// Package geo is a seqlint layering fixture standing in for a leaf
// package.
package geo

// Origin is a dummy exported symbol.
const Origin = 0
