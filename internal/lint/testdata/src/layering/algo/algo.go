// Package algo is a seqlint layering fixture standing in for the
// algorithm layer: importing the leaf is fine, importing the serving
// layer above it is not.
package algo

import (
	_ "spatialseq/internal/lint/testdata/src/layering/geo"
	_ "spatialseq/internal/lint/testdata/src/layering/server" // want layering "may not import"
)
