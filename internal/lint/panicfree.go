package lint

import (
	"go/ast"
	"go/types"
)

// PanicFree returns the panicfree analyzer: library code (the module
// root and internal/) must not call panic. Binaries under cmd/ and
// example programs may crash; the search library, which the roadmap
// wants serving production traffic, must return errors instead. The
// rare deliberate invariant guard takes a //lint:ignore with its reason.
func PanicFree() *Analyzer {
	return &Analyzer{
		Name: "panicfree",
		Doc:  "forbid panic in library (non-cmd, non-test) code",
		Run: func(pkg *Package) []Diagnostic {
			if !isLibrary(pkg.Rel) {
				return nil
			}
			var diags []Diagnostic
			inspect(pkg, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if obj := pkg.Info.Uses[id]; obj != nil {
					if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
						return true
					}
				}
				diags = append(diags, Diagnostic{
					Pos:     position(pkg, call),
					Message: "panic in library code; return an error instead",
				})
				return true
			})
			return diags
		},
	}
}
