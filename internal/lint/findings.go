package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FindingsSchemaVersion versions the machine-readable findings document,
// mirroring the bench record schema: consumers hard-fail on a version
// they do not understand rather than misread fields.
const FindingsSchemaVersion = 1

// Finding is one diagnostic in the machine-readable findings format.
// File is module-root-relative with forward slashes, so documents
// produced on different checkouts (CI vs. local) compare equal.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Key is the baseline identity of the finding: file, analyzer, and
// message — deliberately not the line number, so unrelated edits that
// shift a justified finding up or down the file do not churn the
// baseline.
func (f Finding) Key() string {
	return f.File + "\x00" + f.Analyzer + "\x00" + f.Message
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
}

// Report is the top-level findings document emitted by `seqlint -json`
// and stored as LINT_baseline.json.
type Report struct {
	SchemaVersion int       `json:"schema_version"`
	Module        string    `json:"module"`
	Findings      []Finding `json:"findings"`
}

// NewReport converts diagnostics into a findings document, relativizing
// file paths against the module root.
func NewReport(module, modRoot string, diags []Diagnostic) Report {
	findings := make([]Finding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, Finding{
			File:     relPath(modRoot, d.Pos.Filename),
			Line:     d.Pos.Line,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return Report{SchemaVersion: FindingsSchemaVersion, Module: module, Findings: findings}
}

// relPath renders path relative to root with forward slashes, falling
// back to the input when it does not sit under root.
func relPath(root, path string) string {
	rel, err := filepath.Rel(root, path)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}

// WriteJSON emits the report as indented JSON with a trailing newline —
// the exact bytes committed as LINT_baseline.json, so regenerating an
// unchanged baseline is a no-op diff.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// LoadReport reads a findings document, rejecting unknown schema
// versions.
func LoadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("%s: %v", path, err)
	}
	if r.SchemaVersion != FindingsSchemaVersion {
		return Report{}, fmt.Errorf("%s: schema_version %d, want %d (regenerate with seqlint -write-baseline)",
			path, r.SchemaVersion, FindingsSchemaVersion)
	}
	return r, nil
}

// GateResult classifies current findings against a baseline. New is
// every current finding with no matching budget in the baseline — these
// block. Stale is every baseline entry no current finding consumed —
// fixed findings whose baseline lines should be deleted; they warn but
// never block, so fixing a finding cannot fail the gate.
type GateResult struct {
	New   []Finding
	Stale []Finding
}

// Gate compares current findings against the baseline as a multiset
// keyed by (file, analyzer, message): N baseline entries with one key
// absorb at most N current findings with that key. Line numbers are
// ignored (see Finding.Key).
func Gate(current, baseline Report) GateResult {
	budget := make(map[string]int)
	for _, f := range baseline.Findings {
		budget[f.Key()]++
	}
	var res GateResult
	for _, f := range current.Findings {
		if budget[f.Key()] > 0 {
			budget[f.Key()]--
			continue
		}
		res.New = append(res.New, f)
	}
	// Surviving budget = baseline entries nothing consumed. Report them
	// in baseline order, respecting multiplicity.
	for _, f := range baseline.Findings {
		key := f.Key()
		if budget[key] > 0 {
			budget[key]--
			res.Stale = append(res.Stale, f)
		}
	}
	return res
}

// Audit renders every //lint:ignore directive for review, sorted by
// file and line, with paths relative to the module root. The second
// return lists directives with an empty reason (Directives already
// reports these as malformed findings; audit re-checks so `seqlint
// -audit` stands alone).
func Audit(modRoot string, directives []IgnoreDirective) (lines []string, unjustified []IgnoreDirective) {
	sorted := make([]IgnoreDirective, len(directives))
	copy(sorted, directives)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].File != sorted[j].File {
			return sorted[i].File < sorted[j].File
		}
		return sorted[i].Line < sorted[j].Line
	})
	for _, d := range sorted {
		if d.Reason == "" {
			unjustified = append(unjustified, d)
		}
		lines = append(lines, fmt.Sprintf("%s:%d: [%s] %s", relPath(modRoot, d.File), d.Line, d.Analyzer, d.Reason))
	}
	return lines, unjustified
}
