package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// GoroutineDiscipline returns the goroutinediscipline analyzer, guarding
// the structured-concurrency rules the parallel subspace searches follow
// and the roadmap's work-stealing kernels will depend on:
//
//  1. every go statement must be joined — the spawned body signals a
//     sync.WaitGroup (Done), runs a context-cancelled loop (ctx.Done()),
//     or sends on a channel, or the spawning function calls Wait after
//     the go statement. A fire-and-forget goroutine can outlive the
//     search that spawned it and race a later query's state;
//  2. a function that acquires a mutex without a deferred release and
//     then returns from two or more places is one refactor away from a
//     leaked lock — syncmisuse proves today's paths balanced, this rule
//     flags the fragile shape itself.
func GoroutineDiscipline() *Analyzer {
	return &Analyzer{
		Name: "goroutinediscipline",
		Doc:  "require joined goroutines and defer-released locks on multi-return functions",
		Run: func(pkg *Package) []Diagnostic {
			var diags []Diagnostic
			diags = append(diags, unjoinedGoroutines(pkg)...)
			diags = append(diags, manualUnlockMultiReturn(pkg)...)
			return diags
		},
	}
}

// unjoinedGoroutines flags go statements with no visible join.
func unjoinedGoroutines(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	checkFn := func(body *ast.BlockStmt) {
		if body == nil {
			return
		}
		ast.Inspect(body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goroutineJoined(pkg, gs, body) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos: position(pkg, gs),
				Message: "goroutine is fire-and-forget: join it (WaitGroup/Wait), " +
					"loop on ctx.Done(), or send its result on a channel the spawner drains",
			})
			return true
		})
	}
	eachFunc(pkg, func(fd *ast.FuncDecl) { checkFn(fd.Body) })
	return diags
}

// goroutineJoined looks for join evidence: inside the spawned literal, a
// WaitGroup.Done call, a ctx.Done() receive, or a channel send; in the
// enclosing body, a WaitGroup.Wait call after the go statement.
func goroutineJoined(pkg *Package, gs *ast.GoStmt, enclosing *ast.BlockStmt) bool {
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		joined := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if joined {
				return false
			}
			switch v := n.(type) {
			case *ast.SendStmt:
				joined = true
			case *ast.CallExpr:
				if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
					switch sel.Sel.Name {
					case "Done":
						// Both joins spell "Done": wg.Done signals a join,
						// ctx.Done() drives a cancellation loop.
						joined = true
					}
				}
			}
			return true
		})
		if joined {
			return true
		}
	}
	// A Wait call after the go statement in the spawning function.
	waited := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if waited {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < gs.End() {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
			waited = true
		}
		return true
	})
	return waited
}

// manualUnlockMultiReturn flags a mutex acquired without a deferred
// release in a function that returns from two or more places after the
// acquisition.
func manualUnlockMultiReturn(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	check := func(body *ast.BlockStmt) {
		if body == nil {
			return
		}
		// Keys released by defer anywhere in the body.
		deferred := make(map[string]bool)
		ast.Inspect(body, func(n ast.Node) bool {
			if ds, ok := n.(*ast.DeferStmt); ok {
				if key, kind := lockCall(pkg.Info, ds.Call); kind == release {
					deferred[key] = true
				}
			}
			return true
		})
		type acq struct {
			call *ast.CallExpr
			key  string
		}
		var acquires []acq
		var returns []token.Pos
		ast.Inspect(body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncLit:
				return false // literals get their own pass
			case *ast.DeferStmt:
				return false
			case *ast.CallExpr:
				if key, kind := lockCall(pkg.Info, v); kind == acquire && !deferred[key] {
					acquires = append(acquires, acq{v, key})
				}
			case *ast.ReturnStmt:
				returns = append(returns, v.Pos())
			}
			return true
		})
		for _, a := range acquires {
			after := 0
			for _, r := range returns {
				if r > a.call.End() {
					after++
				}
			}
			if after >= 2 {
				diags = append(diags, Diagnostic{
					Pos: position(pkg, a.call),
					Message: fmt.Sprintf(
						"%s is released manually across %d returns; use defer so new return paths cannot leak the lock",
						a.key, after),
				})
			}
		}
	}
	inspect(pkg, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			check(fn.Body)
		case *ast.FuncLit:
			check(fn.Body)
		}
		return true
	})
	return diags
}
