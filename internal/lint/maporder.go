package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder returns the maporder analyzer: ranging over a map and letting
// the iteration order reach an ordered sink — a slice being appended to,
// a writer/encoder, or a return from inside the loop — is a determinism
// bug. The house rule is bit-for-bit exactness: two runs over the same
// data must emit identical bytes, and Go randomizes map iteration
// precisely to flush out this class of code.
//
// The collect-then-sort idiom is recognized: a loop that only appends
// keys (or values) into a slice which a later sort call in the same
// function orders is clean. Order-insensitive folds (sums, max, writes
// into another map) are never flagged. `for range m` without a bound
// key or value cannot leak order and is skipped.
func MapOrder() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc:  "flag map iteration whose order reaches a return, append, or encoder without a sort",
		Run:  runMapOrder,
	}
}

func runMapOrder(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	check := func(body *ast.BlockStmt) {
		if body == nil {
			return
		}
		sorted := sortCallPositions(pkg, body)
		ast.Inspect(body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := typeOf(pkg, rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if !bindsIdent(rs.Key) && !bindsIdent(rs.Value) {
				return true // order cannot leak without a bound key/value
			}
			sink, kind := orderedSink(pkg, rs)
			if sink == nil {
				return true
			}
			if kind == sinkAppend && sortedAfter(sorted, rs.End()) {
				return true // collect-then-sort idiom
			}
			diags = append(diags, Diagnostic{
				Pos: position(pkg, rs),
				Message: fmt.Sprintf(
					"map iteration order reaches %s; iterate a sorted key slice instead (exactness rule)", kind),
			})
			return true
		})
	}
	eachFunc(pkg, func(fd *ast.FuncDecl) { check(fd.Body) })
	return diags
}

type sinkKind string

const (
	sinkAppend  sinkKind = "a slice append"
	sinkWriter  sinkKind = "a writer/encoder"
	sinkReturn  sinkKind = "a return value"
	sinkNothing sinkKind = ""
)

// orderedSink finds the first order-sensitive sink inside the loop body,
// in source order.
func orderedSink(pkg *Package, rs *ast.RangeStmt) (ast.Node, sinkKind) {
	var node ast.Node
	kind := sinkNothing
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if node != nil {
			return false
		}
		switch v := n.(type) {
		case *ast.ReturnStmt:
			if len(v.Results) > 0 {
				node, kind = v, sinkReturn
			}
		case *ast.CallExpr:
			if isAppendToOuter(pkg, v, rs) {
				node, kind = v, sinkAppend
			} else if isWriterCall(pkg, v) {
				node, kind = v, sinkWriter
			}
		}
		return true
	})
	return node, kind
}

// isAppendToOuter reports whether call appends to a slice declared
// outside the range loop (appending to a loop-local accumulator cannot
// leak order beyond the iteration).
func isAppendToOuter(pkg *Package, call *ast.CallExpr, rs *ast.RangeStmt) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	if obj := pkg.Info.Uses[id]; obj != nil {
		if _, builtin := obj.(*types.Builtin); !builtin {
			return false
		}
	}
	switch dst := ast.Unparen(call.Args[0]).(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[dst]
		if obj == nil {
			return false
		}
		return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
	case *ast.SelectorExpr:
		return true // field of some outer struct
	}
	return false
}

// isWriterCall reports whether the call emits bytes in order: an Encode
// or Write* method, or an fmt print function.
func isWriterCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if obj := pkg.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
			strings.HasPrefix(name, "Sprint")
	}
	switch name {
	case "Encode", "Write", "WriteString", "WriteByte", "WriteRune":
		return true
	}
	return false
}

// sortCallPositions collects the positions of sort calls (sort.*,
// slices.Sort*, and the repo's own Sort* helpers) in the body.
func sortCallPositions(pkg *Package, body *ast.BlockStmt) []token.Pos {
	var out []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch f := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			if obj := pkg.Info.Uses[f.Sel]; obj != nil && obj.Pkg() != nil {
				switch obj.Pkg().Path() {
				case "sort":
					// Everything sort exports orders its argument
					// (Strings, Ints, Slice, SliceStable, Sort, Stable).
					out = append(out, call.Pos())
				case "slices":
					if strings.HasPrefix(f.Sel.Name, "Sort") {
						out = append(out, call.Pos())
					}
				}
			}
		case *ast.Ident:
			if strings.HasPrefix(f.Name, "Sort") || strings.HasPrefix(f.Name, "sort") {
				out = append(out, call.Pos())
			}
		}
		return true
	})
	return out
}

// sortedAfter reports whether any sort call sits after pos.
func sortedAfter(sorts []token.Pos, pos token.Pos) bool {
	for _, p := range sorts {
		if p > pos {
			return true
		}
	}
	return false
}

// bindsIdent reports whether the range clause binds e to a usable name.
func bindsIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name != "_"
}
