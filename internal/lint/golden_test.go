package lint

import (
	"os"
	"os/exec"
	"regexp"
	"strings"
	"testing"
)

// The golden-file harness: fixture packages under testdata/src carry
// "// want <analyzer> \"<regexp>\"" comments pinning each analyzer's
// diagnostics. Every reported diagnostic must match a want on its line,
// and every want must be reported.

var wantRe = regexp.MustCompile(`// want ([a-z]+) "([^"]+)"`)

type expectation struct {
	analyzer string
	re       *regexp.Regexp
	used     bool
}

func loadFixture(t *testing.T, pattern string) []*Package {
	t.Helper()
	pkgs, err := Load(".", pattern)
	if err != nil {
		t.Fatalf("Load(%q): %v", pattern, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("Load(%q): no packages", pattern)
	}
	return pkgs
}

func checkGolden(t *testing.T, pkgs []*Package, analyzers []*Analyzer) {
	t.Helper()
	type lineKey struct {
		file string
		line int
	}
	expects := make(map[lineKey][]*expectation)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			src, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(src), "\n") {
				for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
					k := lineKey{name, i + 1}
					expects[k] = append(expects[k], &expectation{analyzer: m[1], re: regexp.MustCompile(m[2])})
				}
			}
		}
	}
	for _, d := range Run(pkgs, analyzers) {
		matched := false
		for _, e := range expects[lineKey{d.Pos.Filename, d.Pos.Line}] {
			if !e.used && e.analyzer == d.Analyzer && e.re.MatchString(d.Message) {
				e.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, es := range expects {
		for _, e := range es {
			if !e.used {
				t.Errorf("%s:%d: expected [%s] diagnostic matching %q, got none", k.file, k.line, e.analyzer, e.re)
			}
		}
	}
}

func TestFloatCmpGolden(t *testing.T) {
	allow := map[string]bool{"internal/lint/testdata/src/floatcmp.approxEq": true}
	checkGolden(t, loadFixture(t, "./testdata/src/floatcmp"), []*Analyzer{FloatCmp(allow)})
}

func TestSyncMisuseGolden(t *testing.T) {
	checkGolden(t, loadFixture(t, "./testdata/src/syncmisuse"), []*Analyzer{SyncMisuse()})
}

func TestLayeringGolden(t *testing.T) {
	rules := []LayerRule{{
		Pkg: "internal/lint/testdata/src/layering/algo",
		Imp: "internal/lint/testdata/src/layering/server",
	}}
	checkGolden(t, loadFixture(t, "./testdata/src/layering/..."), []*Analyzer{Layering("spatialseq", rules)})
}

func TestPanicFreeGolden(t *testing.T) {
	checkGolden(t, loadFixture(t, "./testdata/src/panicfree"), []*Analyzer{PanicFree()})
}

func TestErrDropGolden(t *testing.T) {
	checkGolden(t, loadFixture(t, "./testdata/src/errdrop"), []*Analyzer{ErrDrop()})
}

func TestHotPathAllocGolden(t *testing.T) {
	checkGolden(t, loadFixture(t, "./testdata/src/hotpathalloc/..."), []*Analyzer{HotPathAlloc()})
}

func TestMapOrderGolden(t *testing.T) {
	checkGolden(t, loadFixture(t, "./testdata/src/maporder"), []*Analyzer{MapOrder()})
}

func TestGoroutineDisciplineGolden(t *testing.T) {
	checkGolden(t, loadFixture(t, "./testdata/src/goroutinedisc"), []*Analyzer{GoroutineDiscipline()})
}

func TestStatsNameGolden(t *testing.T) {
	cfg := StatsNameConfig{
		SourcePkg:    "internal/lint/testdata/src/statsname/statspkg",
		SourceType:   "Snapshot",
		SourceMethod: "Each",
	}
	checkGolden(t, loadFixture(t, "./testdata/src/statsname/..."), []*Analyzer{StatsName(cfg)})
}

// TestStatsNameSilentWithoutSource pins the subset-run behavior: when
// the name-source package is not part of the analyzed set, statsname
// reports nothing rather than flagging every literal as unknown.
func TestStatsNameSilentWithoutSource(t *testing.T) {
	cfg := StatsNameConfig{
		SourcePkg:    "internal/lint/testdata/src/statsname/statspkg",
		SourceType:   "Snapshot",
		SourceMethod: "Each",
	}
	pkgs := loadFixture(t, "./testdata/src/statsname/user")
	if diags := Run(pkgs, []*Analyzer{StatsName(cfg)}); len(diags) != 0 {
		t.Fatalf("statsname on a subset without the source reported %v", diags)
	}
}

// TestMalformedIgnore pins the engine's own diagnostic for a
// lint:ignore directive missing its analyzer and reason.
func TestMalformedIgnore(t *testing.T) {
	pkgs := loadFixture(t, "./testdata/src/badignore")
	diags := Run(pkgs, []*Analyzer{PanicFree()})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "lint" || !strings.Contains(d.Message, "malformed lint:ignore") {
		t.Fatalf("got %s, want a malformed lint:ignore report", d)
	}
}

func TestParseLayerPolicy(t *testing.T) {
	rules, err := ParseLayerPolicy("# comment\n\ndeny internal/geo internal/...\ndeny internal/... cmd/...\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].Pkg != "internal/geo" || rules[1].Imp != "cmd/..." {
		t.Fatalf("unexpected rules: %+v", rules)
	}
	if _, err := ParseLayerPolicy("allow internal/geo internal/..."); err == nil {
		t.Fatal("want error for non-deny rule")
	}
	if _, err := ParseLayerPolicy("deny internal/geo"); err == nil {
		t.Fatal("want error for short rule")
	}
}

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		pattern, rel string
		want         bool
	}{
		{"...", "anything/at/all", true},
		{"internal/geo", "internal/geo", true},
		{"internal/geo", "internal/geometry", false},
		{"internal/algo/...", "internal/algo", true},
		{"internal/algo/...", "internal/algo/hsp", true},
		{"internal/algo/...", "internal/algorithm", false},
		{"cmd/...", "internal/geo", false},
	}
	for _, c := range cases {
		if got := matchPattern(c.pattern, c.rel); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.pattern, c.rel, got, c.want)
		}
	}
}

// TestSeqlintExitsNonZero reintroduces a violation (the panicfree
// fixture) to the real binary and demands a non-zero exit, pinning the
// gate behavior end to end.
func TestSeqlintExitsNonZero(t *testing.T) {
	cmd := exec.Command("go", "run", "spatialseq/cmd/seqlint", "./testdata/src/panicfree")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("seqlint exited zero on a fixture violation; output:\n%s", out)
	}
	if !strings.Contains(string(out), "[panicfree]") {
		t.Fatalf("missing [panicfree] finding in output:\n%s", out)
	}
}
