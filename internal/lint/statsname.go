package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// StatsNameConfig locates the single source of truth for work-counter
// names: the method whose body enumerates every counter as a string
// literal (internal/stats.Snapshot.Each in this repo).
type StatsNameConfig struct {
	// SourcePkg is the module-relative package holding the name source.
	SourcePkg string
	// SourceType and SourceMethod name the enumerating method.
	SourceType, SourceMethod string
}

// DefaultStatsNameConfig points at internal/stats.Snapshot.Each, the
// name source the server's /metrics work counters, the /search
// include_stats payload, and bench.WorkMap all read from.
var DefaultStatsNameConfig = StatsNameConfig{
	SourcePkg:    "internal/stats",
	SourceType:   "Snapshot",
	SourceMethod: "Each",
}

// StatsName returns the statsname analyzer: every string literal that
// names a work counter must resolve to the canonical set enumerated by
// the configured source method, so /metrics, include_stats, and
// bench.WorkTotal can never drift apart when a counter is added or
// renamed. Checked contexts:
//
//   - indexing or key-ing a map[string]int64 (the bench work-map shape)
//     with a literal: the literal must be a canonical counter name;
//   - strings.HasPrefix(_, "foo_") with a snake_case literal ending in
//     an underscore: the literal must prefix at least one canonical
//     name (the benchdiff/WorkTotal cache-telemetry exclusion).
//
// When the source package is not part of the analyzed set (a subset
// run), the analyzer is silent; a present package whose source method is
// missing is itself a finding, because every downstream name would then
// be unverifiable.
func StatsName(cfg StatsNameConfig) *Analyzer {
	return &Analyzer{
		Name:   "statsname",
		Doc:    "require counter-name literals to resolve to the stats.Snapshot.Each name source",
		RunAll: func(pkgs []*Package) []Diagnostic { return runStatsName(pkgs, cfg) },
	}
}

func runStatsName(pkgs []*Package, cfg StatsNameConfig) []Diagnostic {
	var src *Package
	for _, pkg := range pkgs {
		if pkg.Rel == cfg.SourcePkg {
			src = pkg
			break
		}
	}
	if src == nil {
		return nil // subset run without the name source; nothing to check against
	}
	names := canonicalNames(src, cfg)
	if len(names) == 0 {
		var pos = src.Fset.Position(src.Files[0].Pos())
		return []Diagnostic{{
			Pos: pos,
			Message: fmt.Sprintf("name source %s.%s.%s not found or empty; counter names are unverifiable",
				cfg.SourcePkg, cfg.SourceType, cfg.SourceMethod),
		}}
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if pkg == src {
			continue
		}
		diags = append(diags, checkCounterLiterals(pkg, names)...)
	}
	return diags
}

// canonicalNames extracts the string literals from the source method's
// body — the definitive counter-name set.
func canonicalNames(src *Package, cfg StatsNameConfig) map[string]bool {
	names := make(map[string]bool)
	eachFunc(src, func(fd *ast.FuncDecl) {
		if fd.Name.Name != cfg.SourceMethod || fd.Recv == nil || len(fd.Recv.List) == 0 {
			return
		}
		if baseTypeName(fd.Recv.List[0].Type) != cfg.SourceType {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit := stringLit(n); lit != "" {
				names[lit] = true
			}
			return true
		})
	})
	return names
}

// checkCounterLiterals scans one package for counter-name literals in
// the checked contexts.
func checkCounterLiterals(pkg *Package, names map[string]bool) []Diagnostic {
	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{Pos: position(pkg, n), Message: fmt.Sprintf(format, args...)})
	}
	inspect(pkg, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.IndexExpr:
			lit := stringLit(v.Index)
			if lit == "" || !isWorkMap(typeOf(pkg, v.X)) {
				return true
			}
			if !names[lit] {
				report(v.Index, "counter name %q is not published by the stats name source%s",
					lit, closest(lit, names))
			}
		case *ast.CompositeLit:
			if !isWorkMap(typeOf(pkg, v)) {
				return true
			}
			for _, el := range v.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if lit := stringLit(kv.Key); lit != "" && !names[lit] {
					report(kv.Key, "counter name %q is not published by the stats name source%s",
						lit, closest(lit, names))
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "HasPrefix" || len(v.Args) != 2 {
				return true
			}
			if obj := pkg.Info.Uses[sel.Sel]; obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "strings" {
				return true
			}
			lit := stringLit(v.Args[1])
			if lit == "" || !strings.HasSuffix(lit, "_") || !isSnakeCase(lit) {
				return true
			}
			matched := false
			for name := range names {
				if strings.HasPrefix(name, lit) {
					matched = true
					break
				}
			}
			if !matched {
				report(v.Args[1], "prefix %q matches no counter published by the stats name source", lit)
			}
		}
		return true
	})
	return diags
}

// isWorkMap reports whether t is (or points at) map[string]int64, the
// work-counter map shape shared by bench records and benchdiff.
func isWorkMap(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	k, ok := m.Key().Underlying().(*types.Basic)
	if !ok || k.Kind() != types.String {
		return false
	}
	v, ok := m.Elem().Underlying().(*types.Basic)
	return ok && v.Kind() == types.Int64
}

// stringLit unquotes n when it is a string literal, else "".
func stringLit(n ast.Node) string {
	bl, ok := n.(*ast.BasicLit)
	if !ok || bl.Kind.String() != "STRING" {
		return ""
	}
	s, err := strconv.Unquote(bl.Value)
	if err != nil {
		return ""
	}
	return s
}

// isSnakeCase reports whether s is a lower-snake-case token with at
// least one letter (a bare "__" sentinel prefix is not a counter name).
func isSnakeCase(s string) bool {
	letter := false
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
			letter = true
		case r >= '0' && r <= '9' || r == '_':
		default:
			return false
		}
	}
	return letter
}

// closest renders a “did you mean” suffix naming the nearest canonical
// name by shared prefix length, for actionable messages.
func closest(lit string, names map[string]bool) string {
	best, bestLen := "", -1
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		l := commonPrefixLen(lit, n)
		if l > bestLen {
			best, bestLen = n, l
		}
	}
	if best == "" {
		return ""
	}
	return fmt.Sprintf(" (did you mean %q?)", best)
}

func commonPrefixLen(a, b string) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}
