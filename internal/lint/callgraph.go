package lint

import (
	"go/ast"
	"go/types"
)

// FuncNode is one function or method declared in the module: its
// declaration, the package holding it, and the module functions it calls
// directly. The graph is built from static call edges only — calls
// through interface values, function-typed variables, and the go/defer
// of method values are not resolved (an interface callee is checked by
// annotating its implementations instead).
type FuncNode struct {
	Pkg  *Package
	Decl *ast.FuncDecl
	Obj  *types.Func
	// Callees are the module-internal functions this one calls directly,
	// in source order (deduplicated).
	Callees []*FuncNode
}

// Name renders the node's package-relative function name
// ("internal/topk.Heap.Offer").
func (n *FuncNode) Name() string {
	return n.Pkg.Rel + "." + funcName(n.Decl)
}

// CallGraph indexes every declared function of the loaded packages and
// the static call edges between them.
type CallGraph struct {
	nodes map[*types.Func]*FuncNode
}

// BuildCallGraph constructs the module call graph over the loaded
// packages. Cross-package edges resolve because every module package is
// type-checked against the same shared dependency set, so a callee's
// *types.Func is pointer-identical in the caller's Uses map and the
// callee's Defs map.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: make(map[*types.Func]*FuncNode)}
	for _, pkg := range pkgs {
		eachFunc(pkg, func(fd *ast.FuncDecl) {
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				return
			}
			g.nodes[obj] = &FuncNode{Pkg: pkg, Decl: fd, Obj: obj}
		})
	}
	for _, n := range g.nodes {
		n.Callees = g.calleesOf(n)
	}
	return g
}

// NodeOf returns the graph node declaring fn, or nil when fn is not a
// module function (stdlib, interface method, or outside the loaded set).
func (g *CallGraph) NodeOf(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	// Generic instantiations use the origin declaration's body.
	if o := fn.Origin(); o != nil {
		fn = o
	}
	return g.nodes[fn]
}

// Each visits every node in the graph (iteration order is unspecified;
// callers sort their own output).
func (g *CallGraph) Each(f func(*FuncNode)) {
	for _, n := range g.nodes {
		f(n)
	}
}

// calleesOf resolves the static call edges out of n's body.
func (g *CallGraph) calleesOf(n *FuncNode) []*FuncNode {
	var out []*FuncNode
	seen := make(map[*FuncNode]bool)
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := g.NodeOf(calleeOf(n.Pkg.Info, call)); callee != nil && !seen[callee] {
			seen[callee] = true
			out = append(out, callee)
		}
		return true
	})
	return out
}

// calleeOf resolves the called function object of a call expression, or
// nil for built-ins, conversions, function values, and interface-method
// calls (a *types.Func whose receiver is an interface carries no body to
// analyze).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		obj = info.Uses[f.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if types.IsInterface(recv.Type()) {
			return nil
		}
	}
	return fn
}
