package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotPathMarker is the doc-comment annotation declaring a function part
// of a zero-allocation hot path:
//
//	//seq:hotpath
//	func (c *Context) AttrSim(dim int, pos int32) float64 { ... }
//
// The hotpathalloc analyzer checks the annotated function and everything
// it transitively calls inside the module.
const HotPathMarker = "seq:hotpath"

// HotPathAlloc returns the hotpathalloc analyzer: functions annotated
// //seq:hotpath — and every module function they reach through static
// calls — may not allocate. The PR 4 kernels earn their `SearchAllocs ==
// 0` benchmark by construction; this makes the property machine-checked
// at the source level, before a regression ever reaches a benchmark run.
//
// Flagged constructs: make/new, slice and map composite literals, append
// (the backing array may grow), string concatenation and string<->[]byte
// conversions, fmt calls (they format through interfaces), interface
// boxing of non-pointer concrete values at call sites, closures that
// capture local variables, and go statements. Deliberate cold branches
// (grow-once scratch buffers, the rare top-k insertion) take a
// //lint:ignore hotpathalloc with the reason.
//
// Calls through interfaces and function values are not followed — an
// interface callee is checked by annotating its implementations (the
// topk.Sink implementations carry their own markers).
func HotPathAlloc() *Analyzer {
	return &Analyzer{
		Name:   "hotpathalloc",
		Doc:    "forbid allocation in //seq:hotpath functions and their module-internal callees",
		RunAll: runHotPathAlloc,
	}
}

func runHotPathAlloc(pkgs []*Package) []Diagnostic {
	graph := BuildCallGraph(pkgs)
	var roots []*FuncNode
	graph.Each(func(n *FuncNode) {
		if isHotPath(n.Decl) {
			roots = append(roots, n)
		}
	})
	sort.Slice(roots, func(i, j int) bool { return roots[i].Name() < roots[j].Name() })

	// BFS from the annotated roots; the first root reaching a function is
	// named in its diagnostics (deterministic: roots are sorted, and an
	// annotated function is always its own root).
	rootOf := make(map[*FuncNode]*FuncNode)
	var queue []*FuncNode
	for _, r := range roots {
		if rootOf[r] == nil {
			rootOf[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, callee := range n.Callees {
			if rootOf[callee] == nil {
				rootOf[callee] = rootOf[n]
				queue = append(queue, callee)
			}
		}
	}

	checked := make([]*FuncNode, 0, len(rootOf))
	for n := range rootOf {
		checked = append(checked, n)
	}
	sort.Slice(checked, func(i, j int) bool { return checked[i].Name() < checked[j].Name() })

	var diags []Diagnostic
	for _, n := range checked {
		diags = append(diags, allocSites(n, rootOf[n])...)
	}
	return diags
}

// isHotPath reports whether the declaration carries the //seq:hotpath
// marker in its doc comment.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == HotPathMarker || strings.HasPrefix(text, HotPathMarker+" ") {
			return true
		}
	}
	return false
}

// allocSites scans one hot-path function body for allocating constructs.
func allocSites(n *FuncNode, root *FuncNode) []Diagnostic {
	pkg := n.Pkg
	var diags []Diagnostic
	where := ""
	if root != n {
		where = fmt.Sprintf(" (on the hot path of %s)", root.Name())
	}
	report := func(node ast.Node, what string) {
		diags = append(diags, Diagnostic{
			Pos:     position(pkg, node),
			Message: fmt.Sprintf("%s in //seq:hotpath code%s", what, where),
		})
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.GoStmt:
			report(v, "go statement allocates a goroutine")
		case *ast.FuncLit:
			if name := capturedVar(pkg, v); name != "" {
				report(v, fmt.Sprintf("closure captures %q by reference and escapes", name))
			}
		case *ast.CompositeLit:
			if t := typeOf(pkg, v); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					report(v, "slice literal allocates")
				case *types.Map:
					report(v, "map literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if v.Op == token.ADD && isString(typeOf(pkg, v.X)) && !isConstExpr(pkg, v) {
				report(v, "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if v.Tok == token.ADD_ASSIGN && len(v.Lhs) == 1 && isString(typeOf(pkg, v.Lhs[0])) {
				report(v, "string concatenation allocates")
			}
		case *ast.CallExpr:
			diags = append(diags, callAllocs(pkg, v, where)...)
		}
		return true
	})
	return diags
}

// callAllocs classifies one call expression's allocation hazards.
func callAllocs(pkg *Package, call *ast.CallExpr, where string) []Diagnostic {
	var diags []Diagnostic
	report := func(node ast.Node, what string) {
		diags = append(diags, Diagnostic{
			Pos:     position(pkg, node),
			Message: fmt.Sprintf("%s in //seq:hotpath code%s", what, where),
		})
	}
	fun := ast.Unparen(call.Fun)

	// Built-ins.
	if id, ok := fun.(*ast.Ident); ok {
		if obj := pkg.Info.Uses[id]; obj != nil {
			if _, builtin := obj.(*types.Builtin); builtin {
				switch id.Name {
				case "make":
					report(call, "make allocates")
				case "new":
					report(call, "new allocates")
				case "append":
					report(call, "append may grow its backing array")
				}
				return diags
			}
		}
	}

	// Conversions: string <-> []byte/[]rune copy their payload.
	if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, typeOf(pkg, call.Args[0])
		if isStringByteConv(to, from) {
			report(call, "string conversion allocates")
		}
		return diags
	}

	// fmt formats through interfaces and allocates on every call.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if obj := pkg.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			report(call, "fmt call allocates")
			return diags
		}
	}

	// Interface boxing: a non-pointer concrete argument passed to an
	// interface parameter heap-allocates the value.
	sig, ok := typeOf(pkg, fun).(*types.Signature)
	if !ok {
		return diags
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos && i == params.Len()-1 {
				pt = params.At(params.Len() - 1).Type() // s... passes the slice itself
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := typeOf(pkg, arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Pointer, *types.Signature, *types.Chan:
			continue // pointer-shaped: stored in the interface word directly
		}
		if bt, basic := at.Underlying().(*types.Basic); basic && bt.Kind() == types.UntypedNil {
			continue
		}
		report(arg, fmt.Sprintf("interface boxing of %s value", at))
	}
	return diags
}

// capturedVar returns the name of a local variable the literal captures
// from its enclosing function, or "" when it captures nothing (package-
// level state is not a capture). The first captured name in source order
// is returned for a deterministic message.
func capturedVar(pkg *Package, lit *ast.FuncLit) string {
	found := ""
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Pkg() == nil || obj.Parent() == obj.Pkg().Scope() {
			return true // package-level variable, not a capture
		}
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			found = id.Name
		}
		return true
	})
	return found
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConstExpr reports whether the expression folds to a constant (the
// compiler interns constant strings; no runtime allocation happens).
func isConstExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	return ok && tv.Value != nil
}

// isStringByteConv reports whether a conversion between to and from
// copies string payload ([]byte/[]rune <-> string).
func isStringByteConv(to, from types.Type) bool {
	return isString(to) && isByteOrRuneSlice(from) || isByteOrRuneSlice(to) && isString(from)
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}
