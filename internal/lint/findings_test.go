package lint

import (
	"go/token"
	"os"
	"strings"
	"testing"
)

func finding(file, analyzer, msg string, line int) Finding {
	return Finding{File: file, Line: line, Analyzer: analyzer, Message: msg}
}

func TestGateLineShiftInvariance(t *testing.T) {
	baseline := Report{SchemaVersion: FindingsSchemaVersion, Findings: []Finding{
		finding("a.go", "hotpathalloc", "make allocates", 10),
	}}
	current := Report{SchemaVersion: FindingsSchemaVersion, Findings: []Finding{
		finding("a.go", "hotpathalloc", "make allocates", 42), // moved by edits above it
	}}
	res := Gate(current, baseline)
	if len(res.New) != 0 || len(res.Stale) != 0 {
		t.Fatalf("line-shifted finding must match its baseline entry: %+v", res)
	}
}

func TestGateNewFinding(t *testing.T) {
	baseline := Report{SchemaVersion: FindingsSchemaVersion}
	current := Report{SchemaVersion: FindingsSchemaVersion, Findings: []Finding{
		finding("a.go", "maporder", "map iteration order reaches a return value", 3),
	}}
	res := Gate(current, baseline)
	if len(res.New) != 1 {
		t.Fatalf("unbaselined finding must be new: %+v", res)
	}
}

func TestGateStaleAdvisory(t *testing.T) {
	baseline := Report{SchemaVersion: FindingsSchemaVersion, Findings: []Finding{
		finding("a.go", "errdrop", "dropped error", 5),
		finding("b.go", "errdrop", "dropped error", 9),
	}}
	current := Report{SchemaVersion: FindingsSchemaVersion, Findings: []Finding{
		finding("a.go", "errdrop", "dropped error", 5),
	}}
	res := Gate(current, baseline)
	if len(res.New) != 0 {
		t.Fatalf("fixed finding must not create new findings: %+v", res.New)
	}
	if len(res.Stale) != 1 || res.Stale[0].File != "b.go" {
		t.Fatalf("the fixed b.go entry must be stale: %+v", res.Stale)
	}
}

func TestGateMultiset(t *testing.T) {
	// Two identical findings in the baseline absorb at most two current
	// ones; a third with the same key is new.
	b := finding("a.go", "hotpathalloc", "append may grow its backing array", 1)
	baseline := Report{SchemaVersion: FindingsSchemaVersion, Findings: []Finding{b, b}}
	current := Report{SchemaVersion: FindingsSchemaVersion, Findings: []Finding{
		finding("a.go", "hotpathalloc", "append may grow its backing array", 11),
		finding("a.go", "hotpathalloc", "append may grow its backing array", 22),
		finding("a.go", "hotpathalloc", "append may grow its backing array", 33),
	}}
	res := Gate(current, baseline)
	if len(res.New) != 1 || res.New[0].Line != 33 {
		t.Fatalf("third duplicate must be new: %+v", res.New)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := NewReport("spatialseq", "/mod", []Diagnostic{{
		Pos:      token.Position{Filename: "/mod/internal/x/x.go", Line: 7},
		Analyzer: "maporder",
		Message:  "map iteration order reaches a return value",
	}})
	if r.Findings[0].File != "internal/x/x.go" {
		t.Fatalf("file not relativized: %q", r.Findings[0].File)
	}
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"schema_version": 1`) || !strings.Contains(out, `"internal/x/x.go"`) {
		t.Fatalf("unexpected JSON: %s", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("JSON document must end with a newline (committed-file hygiene)")
	}
}

func TestLoadReportRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/baseline.json"
	if err := writeFile(path, `{"schema_version": 99, "module": "m", "findings": []}`); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(path); err == nil || !strings.Contains(err.Error(), "schema_version") {
		t.Fatalf("want schema_version error, got %v", err)
	}
}

func TestAuditFlagsEmptyReasons(t *testing.T) {
	directives := []IgnoreDirective{
		{File: "/mod/a.go", Line: 3, Analyzer: "floatcmp", Reason: "sentinel check"},
		{File: "/mod/b.go", Line: 8, Analyzer: "maporder", Reason: ""},
	}
	lines, unjustified := Audit("/mod", directives)
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "a.go:3:") {
		t.Fatalf("unexpected audit lines: %v", lines)
	}
	if len(unjustified) != 1 || unjustified[0].File != "/mod/b.go" {
		t.Fatalf("empty reason must be unjustified: %+v", unjustified)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
