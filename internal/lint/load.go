package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed, and type-checked package from the
// module under analysis.
type Package struct {
	ImportPath string // full import path, e.g. spatialseq/internal/topk
	Rel        string // module-relative path, e.g. internal/topk ("." for the root)
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	Export     string
	Module     *struct {
		Path string
		Dir  string
	}
}

// Load resolves the given `go list` patterns from dir, parses the
// matched module packages (non-test files), and type-checks them against
// compiled export data for their dependencies. It shells out to the go
// tool for package metadata only; no network access is required.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, patterns, false)
	if err != nil {
		return nil, err
	}
	wanted := make(map[string]bool, len(targets))
	for _, p := range targets {
		wanted[p.ImportPath] = true
	}
	all, err := goList(dir, patterns, true)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	exports := make(map[string]string) // import path -> export data file
	imp := &moduleImporter{loaded: make(map[string]*types.Package)}
	imp.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	// go list -deps emits dependencies before dependents, so a single
	// pass type-checks every module package after all of its imports.
	for _, lp := range all {
		if lp.Standard || lp.Module == nil {
			exports[lp.ImportPath] = lp.Export
			continue
		}
		pkg, err := typeCheck(fset, lp, imp)
		if err != nil {
			return nil, err
		}
		imp.loaded[lp.ImportPath] = pkg.Types
		if wanted[lp.ImportPath] {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// goList runs `go list -json` over the patterns, with -deps when deps is
// set (which also resolves export data for compiled dependencies).
func goList(dir string, patterns []string, deps bool) ([]listedPackage, error) {
	args := []string{"list", "-e", "-json=ImportPath,Dir,Name,GoFiles,Standard,Export,Module"}
	if deps {
		args = append(args, "-deps", "-export")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var out []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// typeCheck parses and checks one module package from source.
func typeCheck(fset *token.FileSet, lp listedPackage, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: imp,
		// Surface type errors but keep checking: fixture packages may be
		// deliberately odd, and analyzers degrade gracefully on nil types.
		Error: func(error) {},
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	rel := lp.ImportPath
	if lp.Module != nil {
		rel = strings.TrimPrefix(rel, lp.Module.Path)
		rel = strings.TrimPrefix(rel, "/")
		if rel == "" {
			rel = "."
		}
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Rel:        rel,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// Module reports the import path and root directory of the main module
// containing dir.
func Module(dir string) (path, root string, err error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Path}}\n{{.Dir}}")
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", "", fmt.Errorf("go list -m: %v\n%s", err, stderr.String())
	}
	lines := strings.SplitN(strings.TrimSpace(stdout.String()), "\n", 2)
	if len(lines) != 2 {
		return "", "", fmt.Errorf("go list -m: unexpected output %q", stdout.String())
	}
	return lines[0], lines[1], nil
}

// moduleImporter resolves module packages from the already type-checked
// set and everything else from compiled export data.
type moduleImporter struct {
	loaded map[string]*types.Package
	gc     types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := m.loaded[path]; ok {
		return p, nil
	}
	return m.gc.Import(path)
}
