package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmp returns the floatcmp analyzer: it forbids == and != between
// floating-point operands in library code. The β-norm constraint and the
// cosine pruning thresholds are accumulated in floating point, so exact
// equality is almost always a bug; use an epsilon helper instead.
//
// Comparison against the constant zero is permitted: in this codebase a
// zero float is a sentinel ("unset parameter", "empty rect", "zero
// norm") or a division guard, and both demand exactness — a value within
// epsilon of zero is still a perfectly valid divisor.
//
// allow lists approved epsilon helpers by "<package-rel>.<func>" (for
// methods, "<package-rel>.<Type>.<method>"); exact comparison inside
// those functions is the one place it is legitimate.
func FloatCmp(allow map[string]bool) *Analyzer {
	return &Analyzer{
		Name: "floatcmp",
		Doc:  "forbid exact ==/!= on floating-point values outside approved epsilon helpers",
		Run: func(pkg *Package) []Diagnostic {
			if !isLibrary(pkg.Rel) {
				return nil
			}
			var diags []Diagnostic
			eachFunc(pkg, func(fd *ast.FuncDecl) {
				if allow[pkg.Rel+"."+funcName(fd)] {
					return
				}
				ast.Inspect(fd, func(n ast.Node) bool {
					be, ok := n.(*ast.BinaryExpr)
					if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
						return true
					}
					if !isFloat(typeOf(pkg, be.X)) && !isFloat(typeOf(pkg, be.Y)) {
						return true
					}
					if isZeroConst(pkg, be.X) || isZeroConst(pkg, be.Y) {
						return true
					}
					diags = append(diags, Diagnostic{
						Pos: position(pkg, be),
						Message: fmt.Sprintf(
							"exact floating-point %s comparison; use an epsilon helper or //lint:ignore with justification",
							be.Op),
					})
					return true
				})
			})
			return diags
		},
	}
}

func typeOf(pkg *Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isZeroConst reports whether e is a numeric constant equal to zero.
func isZeroConst(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
