package lint

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// LayerRule is one deny edge of the package-DAG policy: packages
// matching Pkg must not import packages matching Imp. Patterns are
// module-relative paths; a trailing "/..." matches the whole subtree and
// a bare "..." matches every package.
type LayerRule struct {
	Pkg string
	Imp string
}

// ParseLayerPolicy reads deny rules from the checked-in policy table:
// one "deny <pkg-pattern> <import-pattern>" per line, with #-comments
// and blank lines ignored.
func ParseLayerPolicy(src string) ([]LayerRule, error) {
	var rules []LayerRule
	for i, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[0] != "deny" {
			return nil, fmt.Errorf("policy line %d: want \"deny <pkg-pattern> <import-pattern>\", got %q", i+1, line)
		}
		rules = append(rules, LayerRule{Pkg: fields[1], Imp: fields[2]})
	}
	return rules, nil
}

// LoadLayerPolicy reads and parses the policy table at path.
func LoadLayerPolicy(path string) ([]LayerRule, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseLayerPolicy(string(src))
}

// matchPattern reports whether the module-relative path rel matches a
// policy pattern.
func matchPattern(pattern, rel string) bool {
	if pattern == "..." {
		return true
	}
	if base, ok := strings.CutSuffix(pattern, "/..."); ok {
		return hasPathPrefix(rel, base)
	}
	return rel == pattern
}

// Layering returns the layering analyzer, enforcing the package DAG from
// the policy rules: leaf math packages import nothing internal, the
// algorithm layer never reaches up into the server or binaries, and
// nothing imports example programs. modPath is the module's import path,
// used to translate import specs to module-relative form.
func Layering(modPath string, rules []LayerRule) *Analyzer {
	return &Analyzer{
		Name: "layering",
		Doc:  "enforce the package DAG from the checked-in layer policy",
		Run: func(pkg *Package) []Diagnostic {
			var diags []Diagnostic
			for _, f := range pkg.Files {
				for _, spec := range f.Imports {
					path, err := strconv.Unquote(spec.Path.Value)
					if err != nil || !hasPathPrefix(path, modPath) {
						continue
					}
					impRel := strings.TrimPrefix(strings.TrimPrefix(path, modPath), "/")
					if impRel == "" {
						impRel = "."
					}
					for _, r := range rules {
						if matchPattern(r.Pkg, pkg.Rel) && matchPattern(r.Imp, impRel) {
							diags = append(diags, Diagnostic{
								Pos: position(pkg, spec),
								Message: fmt.Sprintf("package %s may not import %s (policy: deny %s %s)",
									pkg.Rel, impRel, r.Pkg, r.Imp),
							})
							break
						}
					}
				}
			}
			return diags
		},
	}
}
