// Package lint is seqlint's analyzer engine: a small, dependency-free
// static-analysis framework (go/ast + go/types only) encoding this
// repository's correctness invariants. The analyzers it ships guard
// exactly the properties the search core depends on — no exact float
// comparison where the paper's pruning bounds demand epsilon tolerance,
// no sync misuse around the lock-free top-k threshold, a frozen package
// DAG, no panics in library code, and no silently dropped errors.
//
// Findings print as
//
//	file:line: [analyzer] message
//
// and may be suppressed with an explanatory comment on (or immediately
// above) the offending line:
//
//	//lint:ignore <analyzer> <reason>
//
// A suppression without a reason is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: position, the analyzer that produced it, and
// a human-readable message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical file:line: [analyzer]
// message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Analyzer is one named check. Syntactic and single-package checks set
// Run, which is applied to each package independently; whole-program
// checks (the call-graph-powered hotpathalloc, the cross-package
// statsname) set RunAll, which sees every loaded package at once. An
// analyzer sets exactly one of the two.
type Analyzer struct {
	Name   string
	Doc    string
	Run    func(*Package) []Diagnostic
	RunAll func([]*Package) []Diagnostic
}

// Run applies every analyzer to every package (module-level analyzers see
// the whole package set at once), filters findings through //lint:ignore
// suppressions gathered across all files, and returns the surviving
// diagnostics sorted by file, line, and analyzer.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		if a.RunAll != nil {
			for _, d := range a.RunAll(pkgs) {
				d.Analyzer = a.Name
				raw = append(raw, d)
			}
			continue
		}
		for _, pkg := range pkgs {
			for _, d := range a.Run(pkg) {
				d.Analyzer = a.Name
				raw = append(raw, d)
			}
		}
	}
	directives, malformed := Directives(pkgs)
	diags := malformed
	for _, d := range raw {
		if !suppressed(d, directives) {
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// IgnoreDirective is one parsed //lint:ignore comment: where it sits,
// which analyzer it silences, and the stated justification. The audit
// mode (`seqlint -audit`) lists these; the suppression filter consumes
// them.
type IgnoreDirective struct {
	File     string
	Line     int // line the comment sits on
	Analyzer string
	Reason   string
}

// Directives collects every //lint:ignore directive across the loaded
// packages, plus engine diagnostics for malformed ones (missing analyzer
// or reason).
func Directives(pkgs []*Package) ([]IgnoreDirective, []Diagnostic) {
	var directives []IgnoreDirective
	var malformed []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "lint:ignore") {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
					if len(fields) < 2 {
						malformed = append(malformed, Diagnostic{
							Pos:      pos,
							Analyzer: "lint",
							Message:  "malformed lint:ignore directive: want //lint:ignore <analyzer> <reason>",
						})
						continue
					}
					directives = append(directives, IgnoreDirective{
						File:     pos.Filename,
						Line:     pos.Line,
						Analyzer: fields[0],
						Reason:   strings.Join(fields[1:], " "),
					})
				}
			}
		}
	}
	return directives, malformed
}

// suppressed reports whether some directive covers the diagnostic: same
// file, matching analyzer, and the directive sits on the diagnostic's
// line (trailing comment) or the line directly above (standalone
// comment).
func suppressed(d Diagnostic, directives []IgnoreDirective) bool {
	for _, dir := range directives {
		if dir.File != d.Pos.Filename || dir.Analyzer != d.Analyzer {
			continue
		}
		if dir.Line == d.Pos.Line || dir.Line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}

// inspect walks every file of the package, calling fn for each node; fn
// returning false prunes the subtree.
func inspect(pkg *Package, fn func(ast.Node) bool) {
	for _, f := range pkg.Files {
		ast.Inspect(f, fn)
	}
}
