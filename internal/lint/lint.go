// Package lint is seqlint's analyzer engine: a small, dependency-free
// static-analysis framework (go/ast + go/types only) encoding this
// repository's correctness invariants. The analyzers it ships guard
// exactly the properties the search core depends on — no exact float
// comparison where the paper's pruning bounds demand epsilon tolerance,
// no sync misuse around the lock-free top-k threshold, a frozen package
// DAG, no panics in library code, and no silently dropped errors.
//
// Findings print as
//
//	file:line: [analyzer] message
//
// and may be suppressed with an explanatory comment on (or immediately
// above) the offending line:
//
//	//lint:ignore <analyzer> <reason>
//
// A suppression without a reason is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: position, the analyzer that produced it, and
// a human-readable message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical file:line: [analyzer]
// message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Package) []Diagnostic
}

// Run applies every analyzer to every package, filters findings through
// //lint:ignore suppressions, and returns the surviving diagnostics
// sorted by file, line, and analyzer.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			for _, d := range a.Run(pkg) {
				d.Analyzer = a.Name
				pkgDiags = append(pkgDiags, d)
			}
		}
		diags = append(diags, suppress(pkg, pkgDiags)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file     string
	line     int // line the comment sits on
	analyzer string
	reason   string
}

// suppress drops diagnostics covered by a //lint:ignore directive on the
// same line or the line directly above, and reports malformed directives
// (missing analyzer or reason) as findings of the engine itself.
func suppress(pkg *Package, diags []Diagnostic) []Diagnostic {
	var directives []ignoreDirective
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
				if len(fields) < 2 {
					out = append(out, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "malformed lint:ignore directive: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				directives = append(directives, ignoreDirective{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
				})
			}
		}
	}
	for _, d := range diags {
		if !suppressed(d, directives) {
			out = append(out, d)
		}
	}
	return out
}

// suppressed reports whether some directive covers the diagnostic: same
// file, matching analyzer, and the directive sits on the diagnostic's
// line (trailing comment) or the line above (standalone comment).
func suppressed(d Diagnostic, directives []ignoreDirective) bool {
	for _, dir := range directives {
		if dir.file != d.Pos.Filename || dir.analyzer != d.Analyzer {
			continue
		}
		if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}

// inspect walks every file of the package, calling fn for each node; fn
// returning false prunes the subtree.
func inspect(pkg *Package, fn func(ast.Node) bool) {
	for _, f := range pkg.Files {
		ast.Inspect(f, fn)
	}
}
