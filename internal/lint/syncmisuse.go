package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// SyncMisuse returns the syncmisuse analyzer, which flags three
// concurrency hazards the parallel subspace searches and the lock-free
// top-k threshold are sensitive to:
//
//  1. sync.WaitGroup.Add called inside the goroutine it accounts for —
//     the spawner may reach Wait before the goroutine runs Add;
//  2. a mutex acquired in a function but not released on every return
//     path (and not covered by a defer);
//  3. sync-bearing state (Mutex, RWMutex, WaitGroup, Once, Cond, Map,
//     Pool) received or passed by value, which silently forks the lock.
func SyncMisuse() *Analyzer {
	return &Analyzer{
		Name: "syncmisuse",
		Doc:  "flag WaitGroup.Add inside goroutines, unbalanced lock paths, and sync state copied by value",
		Run: func(pkg *Package) []Diagnostic {
			var diags []Diagnostic
			diags = append(diags, wgAddInGoroutine(pkg)...)
			diags = append(diags, lockPaths(pkg)...)
			diags = append(diags, syncByValue(pkg)...)
			return diags
		},
	}
}

// wgAddInGoroutine flags sync.WaitGroup.Add calls lexically inside the
// function literal of a go statement.
func wgAddInGoroutine(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	inspect(pkg, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		fl, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Add" {
				return true
			}
			if syncTypeName(receiverOf(pkg.Info, sel)) != "WaitGroup" {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:     position(pkg, call),
				Message: "sync.WaitGroup.Add called inside the goroutine it accounts for; call Add before the go statement",
			})
			return true
		})
		return true
	})
	return diags
}

// lockKind classifies a mutex method call.
type lockKind int

const (
	notLock lockKind = iota
	acquire
	release
)

// lockCall classifies call as a Mutex/RWMutex (un)lock and returns the
// held-lock key ("mu" or "mu/R" for the read side).
func lockCall(info *types.Info, call *ast.CallExpr) (key string, kind lockKind) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", notLock
	}
	name := syncTypeName(receiverOf(info, sel))
	if name != "Mutex" && name != "RWMutex" {
		return "", notLock
	}
	key = types.ExprString(sel.X)
	switch sel.Sel.Name {
	case "Lock":
		return key, acquire
	case "RLock":
		return key + "/R", acquire
	case "Unlock":
		return key, release
	case "RUnlock":
		return key + "/R", release
	}
	return "", notLock
}

// lockPaths checks, per function body, that every acquired mutex is
// either deferred-released or released before each return path and the
// end of the function. Branch bodies are analyzed with a copy of the
// held set, so a conditional unlock-and-return is understood; locks that
// deliberately escape the function need a //lint:ignore.
func lockPaths(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	seen := make(map[token.Position]bool)
	report := func(pos token.Position, format string, args ...any) {
		if !seen[pos] {
			seen[pos] = true
			diags = append(diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
		}
	}
	var checkBody func(body *ast.BlockStmt)

	var walk func(stmts []ast.Stmt, held map[string]token.Position, deferred map[string]bool)
	walk = func(stmts []ast.Stmt, held map[string]token.Position, deferred map[string]bool) {
		branch := func(s ast.Stmt) {
			if s == nil {
				return
			}
			cp := make(map[string]token.Position, len(held))
			for k, v := range held {
				cp[k] = v
			}
			walk([]ast.Stmt{s}, cp, deferred)
		}
		for _, s := range stmts {
			switch st := s.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					if key, kind := lockCall(pkg.Info, call); kind == acquire {
						held[key] = position(pkg, call)
					} else if kind == release {
						delete(held, key)
					}
				}
			case *ast.DeferStmt:
				if key, kind := lockCall(pkg.Info, st.Call); kind == release {
					deferred[key] = true
				}
			case *ast.ReturnStmt:
				for key, pos := range held {
					if !deferred[key] {
						report(position(pkg, st),
							"return with %s held (acquired at line %d); release it or use defer", key, pos.Line)
					}
				}
			case *ast.BlockStmt:
				walk(st.List, held, deferred)
			case *ast.IfStmt:
				if st.Init != nil {
					walk([]ast.Stmt{st.Init}, held, deferred)
				}
				branch(st.Body)
				branch(st.Else)
			case *ast.ForStmt:
				branch(st.Body)
			case *ast.RangeStmt:
				branch(st.Body)
			case *ast.SwitchStmt:
				for _, c := range st.Body.List {
					branch(c)
				}
			case *ast.TypeSwitchStmt:
				for _, c := range st.Body.List {
					branch(c)
				}
			case *ast.SelectStmt:
				for _, c := range st.Body.List {
					branch(c)
				}
			case *ast.CaseClause:
				walk(st.Body, held, deferred)
			case *ast.CommClause:
				walk(st.Body, held, deferred)
			case *ast.LabeledStmt:
				walk([]ast.Stmt{st.Stmt}, held, deferred)
			}
		}
	}

	checkBody = func(body *ast.BlockStmt) {
		held := make(map[string]token.Position)
		deferred := make(map[string]bool)
		walk(body.List, held, deferred)
		for key, pos := range held {
			if !deferred[key] {
				report(pos, "%s acquired here is not released on every path", key)
			}
		}
	}

	// Analyze every function body; nested literals get their own pass
	// (a goroutine body has independent lock discipline).
	inspect(pkg, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				checkBody(fn.Body)
			}
		case *ast.FuncLit:
			checkBody(fn.Body)
		}
		return true
	})
	return diags
}

// syncByValue flags value receivers and value parameters whose type
// carries sync state, beyond the copylocks cases go vet reports.
func syncByValue(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	checkField := func(field *ast.Field, what string) {
		names := field.Names
		if len(names) == 0 {
			names = []*ast.Ident{{Name: "_"}}
		}
		for _, name := range names {
			obj := pkg.Info.Defs[name]
			var t types.Type
			if obj != nil {
				t = obj.Type()
			} else if tv, ok := pkg.Info.Types[field.Type]; ok {
				t = tv.Type
			}
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if containsSyncState(t, make(map[types.Type]bool)) {
				diags = append(diags, Diagnostic{
					Pos:     position(pkg, field),
					Message: fmt.Sprintf("%s %s copies sync state by value (type %s); use a pointer", what, name.Name, t),
				})
			}
		}
	}
	inspect(pkg, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Recv != nil {
				for _, f := range fn.Recv.List {
					checkField(f, "receiver")
				}
			}
			for _, f := range fn.Type.Params.List {
				checkField(f, "parameter")
			}
		case *ast.FuncLit:
			for _, f := range fn.Type.Params.List {
				checkField(f, "parameter")
			}
		}
		return true
	})
	return diags
}
