package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// syncTypeName returns the name of the sync package type t is (after
// stripping pointers), or "" when t is not a sync type.
func syncTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	return obj.Name()
}

// containsSyncState reports whether t holds sync-package state by value
// (directly, or via struct fields, embedded structs, or arrays). Pointers
// and reference types break containment: copying them is safe.
func containsSyncState(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if syncTypeName(t) != "" {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsSyncState(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsSyncState(u.Elem(), seen)
	}
	return false
}

// receiverOf returns the type of sel's receiver expression, or nil.
func receiverOf(info *types.Info, sel *ast.SelectorExpr) types.Type {
	if tv, ok := info.Types[sel.X]; ok {
		return tv.Type
	}
	return nil
}

// funcName returns a package-relative name for the function declaration,
// qualified by receiver type for methods ("Concurrent.Offer").
func funcName(fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if t := baseTypeName(fd.Recv.List[0].Type); t != "" {
			name = t + "." + name
		}
	}
	return name
}

// baseTypeName unwraps pointers and generic instantiations down to the
// receiver's type name.
func baseTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// eachFunc invokes fn for every function declaration with a body in the
// package.
func eachFunc(pkg *Package, fn func(*ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// position is shorthand for resolving a node's position.
func position(pkg *Package, n ast.Node) token.Position {
	return pkg.Fset.Position(n.Pos())
}

// isLibrary reports whether the package is library code: the module root
// or anything under internal/, but not cmd/, examples/, or test fixtures.
func isLibrary(rel string) bool {
	return rel == "." || rel == "internal" || hasPathPrefix(rel, "internal")
}

// hasPathPrefix reports whether rel equals prefix or sits below it.
func hasPathPrefix(rel, prefix string) bool {
	return rel == prefix || len(rel) > len(prefix) && rel[:len(prefix)] == prefix && rel[len(prefix)] == '/'
}
