package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop returns the errdrop analyzer: a call whose results include an
// error, used as a bare statement in internal/ code, silently discards
// that error. Assigning the error — even to _ — is an explicit,
// greppable decision; dropping it on the floor is not.
//
// Writes into strings.Builder and bytes.Buffer are exempt: their Write*
// methods are documented to always return a nil error (they grow the
// buffer or panic on overflow), and that extends to fmt.Fprint* calls
// whose destination is statically one of those types.
func ErrDrop() *Analyzer {
	return &Analyzer{
		Name: "errdrop",
		Doc:  "flag silently discarded error results in internal/ code",
		Run: func(pkg *Package) []Diagnostic {
			if !hasPathPrefix(pkg.Rel, "internal") {
				return nil
			}
			var diags []Diagnostic
			inspect(pkg, func(n ast.Node) bool {
				es, ok := n.(*ast.ExprStmt)
				if !ok {
					return true
				}
				call, ok := es.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				sig, ok := typeOf(pkg, call.Fun).(*types.Signature)
				if !ok {
					return true // conversion or built-in
				}
				if infallibleWrite(pkg, call, sig) {
					return true
				}
				res := sig.Results()
				for i := 0; i < res.Len(); i++ {
					if isErrorType(res.At(i).Type()) {
						diags = append(diags, Diagnostic{
							Pos: position(pkg, es),
							Message: fmt.Sprintf("result %d of %s is an error and is silently discarded; handle it or assign to _",
								i, callName(call)),
						})
						break
					}
				}
				return true
			})
			return diags
		},
	}
}

// infallibleWrite reports whether the call is a write into a
// strings.Builder or bytes.Buffer, whose error results are always nil:
// either a method on one of those types, or an fmt.Fprint* whose first
// argument statically is one.
func infallibleWrite(pkg *Package, call *ast.CallExpr, sig *types.Signature) bool {
	if recv := sig.Recv(); recv != nil && isMemBuffer(recv.Type()) {
		return true
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := pkg.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil &&
			obj.Pkg().Path() == "fmt" && strings.HasPrefix(obj.Name(), "Fprint") &&
			len(call.Args) > 0 && isMemBuffer(typeOf(pkg, call.Args[0])) {
			return true
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s, ok := pkg.Info.Selections[sel]; ok && isMemBuffer(s.Recv()) {
			return true
		}
	}
	return false
}

// isMemBuffer reports whether t (possibly behind a pointer) is
// strings.Builder or bytes.Buffer.
func isMemBuffer(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	path, name := n.Obj().Pkg().Path(), n.Obj().Name()
	return path == "strings" && name == "Builder" || path == "bytes" && name == "Buffer"
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// callName renders a short name for the called function.
func callName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}
