package rtree

import (
	"container/heap"

	"spatialseq/internal/geo"
)

// Neighbor is one k-nearest-neighbor result.
type Neighbor struct {
	Ref  int32
	Dist float64
}

// Nearest returns the k points closest to q in ascending distance order
// (ties broken by payload). filter, when non-nil, rejects candidates by
// payload — the snap-to-POI feature uses it to restrict by category.
// Fewer than k results are returned when the (filtered) tree is smaller.
//
// The search is the classic best-first traversal: a priority queue holds
// tree nodes keyed by the minimal distance from q to their bounding
// rectangle, so subtrees are opened lazily and only while they can still
// contain a closer point than the current k-th best.
func (t *Tree) Nearest(q geo.Point, k int, filter func(ref int32) bool) []Neighbor {
	if t.root < 0 || k <= 0 {
		return nil
	}
	pq := &knnQueue{}
	heap.Push(pq, knnItem{dist: t.nodes[t.root].bounds.MinDistPoint(q), node: t.root, isNode: true})
	var out []Neighbor
	for pq.Len() > 0 {
		it := heap.Pop(pq).(knnItem)
		if len(out) >= k && it.dist > out[len(out)-1].Dist {
			break
		}
		if !it.isNode {
			out = insertNeighbor(out, Neighbor{Ref: it.ref, Dist: it.dist}, k)
			continue
		}
		n := &t.nodes[it.node]
		if n.leaf {
			for _, e := range t.leaves[n.first : n.first+n.count] {
				if filter != nil && !filter(e.ref) {
					continue
				}
				heap.Push(pq, knnItem{dist: e.pt.Dist(q), ref: e.ref})
			}
			continue
		}
		for _, ci := range t.childIdx[n.first : n.first+n.count] {
			heap.Push(pq, knnItem{dist: t.nodes[ci].bounds.MinDistPoint(q), node: ci, isNode: true})
		}
	}
	return out
}

// insertNeighbor keeps out sorted ascending by (dist, ref), capped at k.
func insertNeighbor(out []Neighbor, nb Neighbor, k int) []Neighbor {
	pos := len(out)
	for pos > 0 {
		prev := out[pos-1]
		//lint:ignore floatcmp exact tie detection feeds the deterministic ref ordering
		if prev.Dist < nb.Dist || (prev.Dist == nb.Dist && prev.Ref <= nb.Ref) {
			break
		}
		pos--
	}
	if pos >= k {
		return out
	}
	out = append(out, Neighbor{})
	copy(out[pos+1:], out[pos:])
	out[pos] = nb
	if len(out) > k {
		out = out[:k]
	}
	return out
}

type knnItem struct {
	dist   float64
	node   int32
	ref    int32
	isNode bool
}

type knnQueue []knnItem

func (q knnQueue) Len() int { return len(q) }
func (q knnQueue) Less(i, j int) bool {
	//lint:ignore floatcmp exact tie detection; equal distances fall through to kind order
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	// visit leaf entries before nodes at equal distance so equal-distance
	// results resolve deterministically
	return !q[i].isNode && q[j].isNode
}
func (q knnQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *knnQueue) Push(x any)   { *q = append(*q, x.(knnItem)) }
func (q *knnQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
