package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"spatialseq/internal/geo"
)

func randPoints(rng *rand.Rand, n int, extent float64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	}
	return pts
}

func bruteSearch(pts []geo.Point, r geo.Rect) []int32 {
	var out []int32
	for i, p := range pts {
		if r.Contains(p) {
			out = append(out, int32(i))
		}
	}
	return out
}

func sorted(xs []int32) []int32 {
	out := make([]int32, len(xs))
	copy(out, xs)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	tr := New(nil, nil)
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if !tr.Bounds().IsEmpty() {
		t.Error("empty tree bounds should be empty")
	}
	if got := tr.Search(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, nil); len(got) != 0 {
		t.Errorf("Search on empty tree = %v", got)
	}
	if got := tr.Count(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}); got != 0 {
		t.Errorf("Count on empty tree = %d", got)
	}
}

func TestSinglePoint(t *testing.T) {
	tr := New([]geo.Point{{X: 5, Y: 5}}, nil)
	if got := tr.Search(geo.Rect{MinX: 4, MinY: 4, MaxX: 6, MaxY: 6}, nil); !equalIDs(got, []int32{0}) {
		t.Errorf("Search = %v", got)
	}
	if got := tr.Search(geo.Rect{MinX: 6, MinY: 6, MaxX: 7, MaxY: 7}, nil); len(got) != 0 {
		t.Errorf("miss Search = %v", got)
	}
	// closed-boundary inclusion
	if got := tr.Search(geo.Rect{MinX: 5, MinY: 5, MaxX: 5, MaxY: 5}, nil); !equalIDs(got, []int32{0}) {
		t.Errorf("degenerate rect Search = %v", got)
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 2, 15, 16, 17, 100, 1000, 5000} {
		pts := randPoints(rng, n, 100)
		tr := New(pts, nil)
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
		for trial := 0; trial < 30; trial++ {
			x1, x2 := rng.Float64()*100, rng.Float64()*100
			y1, y2 := rng.Float64()*100, rng.Float64()*100
			r := geo.Rect{MinX: minf(x1, x2), MinY: minf(y1, y2), MaxX: maxf(x1, x2), MaxY: maxf(y1, y2)}
			got := sorted(tr.Search(r, nil))
			want := sorted(bruteSearch(pts, r))
			if !equalIDs(got, want) {
				t.Fatalf("n=%d: Search(%v) = %d ids, brute = %d ids", n, r, len(got), len(want))
			}
			if c := tr.Count(r); c != len(want) {
				t.Fatalf("n=%d: Count(%v) = %d, want %d", n, r, c, len(want))
			}
		}
	}
}

func TestCustomRefs(t *testing.T) {
	pts := []geo.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}
	refs := []int32{100, 200}
	tr := New(pts, refs)
	got := sorted(tr.Search(geo.Rect{MinX: 0, MinY: 0, MaxX: 3, MaxY: 3}, nil))
	if !equalIDs(got, []int32{100, 200}) {
		t.Errorf("Search with refs = %v", got)
	}
}

func TestFullCoverageSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randPoints(rng, 777, 50)
	tr := New(pts, nil)
	all := tr.Search(tr.Bounds(), nil)
	if len(all) != len(pts) {
		t.Errorf("full-bounds search returned %d of %d", len(all), len(pts))
	}
	if tr.Count(tr.Bounds()) != len(pts) {
		t.Errorf("full-bounds count = %d", tr.Count(tr.Bounds()))
	}
}

func TestDuplicateLocations(t *testing.T) {
	pts := make([]geo.Point, 50)
	for i := range pts {
		pts[i] = geo.Point{X: 3, Y: 3}
	}
	tr := New(pts, nil)
	got := tr.Search(geo.Rect{MinX: 3, MinY: 3, MaxX: 3, MaxY: 3}, nil)
	if len(got) != 50 {
		t.Errorf("duplicate-location search returned %d, want 50", len(got))
	}
}

func TestAppendSemantics(t *testing.T) {
	pts := []geo.Point{{X: 1, Y: 1}, {X: 9, Y: 9}}
	tr := New(pts, nil)
	dst := []int32{42}
	dst = tr.Search(geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, dst)
	if len(dst) != 3 || dst[0] != 42 {
		t.Errorf("Search must append to dst, got %v", dst)
	}
}

func TestVariousFanouts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randPoints(rng, 500, 100)
	r := geo.Rect{MinX: 20, MinY: 20, MaxX: 60, MaxY: 60}
	want := sorted(bruteSearch(pts, r))
	for _, fanout := range []int{1, 2, 3, 8, 64, 1000} {
		tr := NewWithFanout(pts, nil, fanout)
		got := sorted(tr.Search(r, nil))
		if !equalIDs(got, want) {
			t.Errorf("fanout %d: got %d ids, want %d", fanout, len(got), len(want))
		}
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
