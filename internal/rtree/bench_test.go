package rtree

import (
	"math/rand"
	"testing"

	"spatialseq/internal/geo"
)

func benchPoints(n int) []geo.Point {
	rng := rand.New(rand.NewSource(1))
	return randPoints(rng, n, 1000)
}

func BenchmarkBuild100k(b *testing.B) {
	pts := benchPoints(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(pts, nil)
	}
}

func BenchmarkSearch100k(b *testing.B) {
	pts := benchPoints(100000)
	tr := New(pts, nil)
	rng := rand.New(rand.NewSource(2))
	var dst []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := rng.Float64()*950, rng.Float64()*950
		dst = tr.Search(geo.Rect{MinX: x, MinY: y, MaxX: x + 50, MaxY: y + 50}, dst[:0])
	}
}

func BenchmarkNearest100k(b *testing.B) {
	pts := benchPoints(100000)
	tr := New(pts, nil)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Nearest(geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}, 10, nil)
	}
}
