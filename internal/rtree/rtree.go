// Package rtree implements a static, bulk-loaded R-tree over 2-D points
// using Sort-Tile-Recursive (STR) packing. The partitioner uses it to
// gather the contents of each ac-subspace with one rectangle range query
// instead of scanning the whole dataset per subspace.
//
// The tree is immutable after New and safe for concurrent readers.
package rtree

import (
	"sort"

	"spatialseq/internal/geo"
)

// DefaultFanout is the node capacity used when NewWithFanout is not called.
const DefaultFanout = 16

// Tree is a static R-tree over a set of points. Each point carries an
// int32 payload (its position in the owning dataset).
type Tree struct {
	nodes    []node
	leaves   []entry
	childIdx []int32 // flattened child lists of internal nodes
	root     int32   // index into nodes; -1 when empty
	fanout   int
}

type entry struct {
	pt  geo.Point
	ref int32
}

type node struct {
	bounds geo.Rect
	// leaf nodes reference a slice of leaves[first:first+count];
	// internal nodes reference a slice of child node indexes.
	first, count int32
	leaf         bool
}

// New bulk-loads a tree with the default fanout. pts[i] carries payload
// refs[i]; refs may be nil, in which case the payload is the position i.
func New(pts []geo.Point, refs []int32) *Tree {
	return NewWithFanout(pts, refs, DefaultFanout)
}

// NewWithFanout bulk-loads a tree with the given node capacity (minimum 2).
func NewWithFanout(pts []geo.Point, refs []int32, fanout int) *Tree {
	if fanout < 2 {
		fanout = 2
	}
	t := &Tree{root: -1, fanout: fanout}
	if len(pts) == 0 {
		return t
	}
	t.leaves = make([]entry, len(pts))
	for i, p := range pts {
		ref := int32(i)
		if refs != nil {
			ref = refs[i]
		}
		t.leaves[i] = entry{pt: p, ref: ref}
	}
	strSort(t.leaves, fanout)

	// Build leaf nodes over runs of fanout entries, then pack upward.
	level := make([]int32, 0, (len(t.leaves)+fanout-1)/fanout)
	for first := 0; first < len(t.leaves); first += fanout {
		count := min(fanout, len(t.leaves)-first)
		b := geo.EmptyRect()
		for _, e := range t.leaves[first : first+count] {
			b = b.ExtendPoint(e.pt)
		}
		t.nodes = append(t.nodes, node{bounds: b, first: int32(first), count: int32(count), leaf: true})
		level = append(level, int32(len(t.nodes)-1))
	}
	for len(level) > 1 {
		next := make([]int32, 0, (len(level)+fanout-1)/fanout)
		for first := 0; first < len(level); first += fanout {
			count := min(fanout, len(level)-first)
			b := geo.EmptyRect()
			childFirst := int32(len(t.childIdx))
			for _, ci := range level[first : first+count] {
				b = b.Union(t.nodes[ci].bounds)
				t.childIdx = append(t.childIdx, ci)
			}
			t.nodes = append(t.nodes, node{bounds: b, first: childFirst, count: int32(count)})
			next = append(next, int32(len(t.nodes)-1))
		}
		level = next
	}
	t.root = level[0]
	return t
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.leaves) }

// Bounds returns the bounding rectangle of all points (empty when Len==0).
func (t *Tree) Bounds() geo.Rect {
	if t.root < 0 {
		return geo.EmptyRect()
	}
	return t.nodes[t.root].bounds
}

// Search appends to dst the payloads of all points inside rect (closed
// bounds) and returns dst.
func (t *Tree) Search(rect geo.Rect, dst []int32) []int32 {
	if t.root < 0 || rect.IsEmpty() {
		return dst
	}
	return t.search(t.root, rect, dst)
}

func (t *Tree) search(ni int32, rect geo.Rect, dst []int32) []int32 {
	n := &t.nodes[ni]
	if !rect.Intersects(n.bounds) {
		return dst
	}
	if n.leaf {
		covered := rect.ContainsRect(n.bounds)
		for _, e := range t.leaves[n.first : n.first+n.count] {
			if covered || rect.Contains(e.pt) {
				dst = append(dst, e.ref)
			}
		}
		return dst
	}
	if rect.ContainsRect(n.bounds) {
		return t.collect(ni, dst)
	}
	for _, ci := range t.childIdx[n.first : n.first+n.count] {
		dst = t.search(ci, rect, dst)
	}
	return dst
}

func (t *Tree) collect(ni int32, dst []int32) []int32 {
	n := &t.nodes[ni]
	if n.leaf {
		for _, e := range t.leaves[n.first : n.first+n.count] {
			dst = append(dst, e.ref)
		}
		return dst
	}
	for _, ci := range t.childIdx[n.first : n.first+n.count] {
		dst = t.collect(ci, dst)
	}
	return dst
}

// Count returns the number of points inside rect without materialising them.
func (t *Tree) Count(rect geo.Rect) int {
	if t.root < 0 || rect.IsEmpty() {
		return 0
	}
	return t.count(t.root, rect)
}

func (t *Tree) count(ni int32, rect geo.Rect) int {
	n := &t.nodes[ni]
	if !rect.Intersects(n.bounds) {
		return 0
	}
	if rect.ContainsRect(n.bounds) {
		return t.subtreeSize(ni)
	}
	if n.leaf {
		c := 0
		for _, e := range t.leaves[n.first : n.first+n.count] {
			if rect.Contains(e.pt) {
				c++
			}
		}
		return c
	}
	c := 0
	for _, ci := range t.childIdx[n.first : n.first+n.count] {
		c += t.count(ci, rect)
	}
	return c
}

func (t *Tree) subtreeSize(ni int32) int {
	n := &t.nodes[ni]
	if n.leaf {
		return int(n.count)
	}
	c := 0
	for _, ci := range t.childIdx[n.first : n.first+n.count] {
		c += t.subtreeSize(ci)
	}
	return c
}

// strSort arranges entries in Sort-Tile-Recursive order: sort by X, cut
// into vertical slabs of ~sqrt(n/fanout) leaf groups each, then sort each
// slab by Y. Consecutive runs of fanout entries then form well-shaped
// leaf rectangles.
func strSort(es []entry, fanout int) {
	n := len(es)
	sort.Slice(es, func(i, j int) bool {
		//lint:ignore floatcmp exact tie on X falls through to Y for a total sort order
		if es[i].pt.X != es[j].pt.X {
			return es[i].pt.X < es[j].pt.X
		}
		return es[i].pt.Y < es[j].pt.Y
	})
	leafCount := (n + fanout - 1) / fanout
	slabCount := isqrtCeil(leafCount)
	if slabCount == 0 {
		return
	}
	slabSize := ((leafCount+slabCount-1)/slabCount + 0) * fanout
	for start := 0; start < n; start += slabSize {
		end := min(start+slabSize, n)
		slab := es[start:end]
		sort.Slice(slab, func(i, j int) bool {
			//lint:ignore floatcmp exact tie on Y falls through to X for a total sort order
			if slab[i].pt.Y != slab[j].pt.Y {
				return slab[i].pt.Y < slab[j].pt.Y
			}
			return slab[i].pt.X < slab[j].pt.X
		})
	}
}

func isqrtCeil(n int) int {
	if n <= 0 {
		return 0
	}
	r := 1
	for r*r < n {
		r++
	}
	return r
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
