package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"spatialseq/internal/geo"
)

func bruteNearest(pts []geo.Point, q geo.Point, k int, filter func(int32) bool) []Neighbor {
	var all []Neighbor
	for i, p := range pts {
		if filter != nil && !filter(int32(i)) {
			continue
		}
		all = append(all, Neighbor{Ref: int32(i), Dist: p.Dist(q)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Ref < all[j].Ref
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, n := range []int{1, 5, 16, 100, 2000} {
		pts := randPoints(rng, n, 100)
		tr := New(pts, nil)
		for trial := 0; trial < 20; trial++ {
			q := geo.Point{X: rng.Float64() * 120, Y: rng.Float64() * 120}
			k := 1 + rng.Intn(10)
			got := tr.Nearest(q, k, nil)
			want := bruteNearest(pts, q, k, nil)
			if len(got) != len(want) {
				t.Fatalf("n=%d k=%d: got %d, want %d", n, k, len(got), len(want))
			}
			for i := range got {
				if got[i].Ref != want[i].Ref || got[i].Dist != want[i].Dist {
					t.Fatalf("n=%d k=%d rank %d: got %+v want %+v", n, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestNearestWithFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	pts := randPoints(rng, 500, 50)
	tr := New(pts, nil)
	evens := func(ref int32) bool { return ref%2 == 0 }
	q := geo.Point{X: 25, Y: 25}
	got := tr.Nearest(q, 7, evens)
	want := bruteNearest(pts, q, 7, evens)
	if len(got) != len(want) {
		t.Fatalf("got %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Ref != want[i].Ref {
			t.Fatalf("rank %d: got %d want %d", i, got[i].Ref, want[i].Ref)
		}
		if got[i].Ref%2 != 0 {
			t.Fatalf("filter violated: %d", got[i].Ref)
		}
	}
}

func TestNearestEdgeCases(t *testing.T) {
	tr := New(nil, nil)
	if got := tr.Nearest(geo.Point{}, 3, nil); got != nil {
		t.Errorf("empty tree returned %v", got)
	}
	tr = New([]geo.Point{{X: 1, Y: 1}}, nil)
	if got := tr.Nearest(geo.Point{}, 0, nil); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
	got := tr.Nearest(geo.Point{X: 1, Y: 1}, 5, nil)
	if len(got) != 1 || got[0].Dist != 0 {
		t.Errorf("single point tree: %v", got)
	}
	// filter everything out
	none := func(int32) bool { return false }
	if got := tr.Nearest(geo.Point{}, 3, none); len(got) != 0 {
		t.Errorf("all-filtered returned %v", got)
	}
}

func TestNearestKLargerThanTree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := randPoints(rng, 9, 10)
	tr := New(pts, nil)
	got := tr.Nearest(geo.Point{X: 5, Y: 5}, 50, nil)
	if len(got) != 9 {
		t.Errorf("got %d results, want all 9", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Error("results not ascending by distance")
		}
	}
}
