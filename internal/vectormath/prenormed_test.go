package vectormath

import (
	"math/rand"
	"testing"
)

func TestCosPrenormedZeroNormConventions(t *testing.T) {
	if got := CosPrenormed(0, 0, 0); got != 1 {
		t.Errorf("CosPrenormed(0,0,0) = %g, want 1", got)
	}
	if got := CosPrenormed(0, 0, 2.5); got != 0 {
		t.Errorf("CosPrenormed(0,0,2.5) = %g, want 0", got)
	}
	if got := CosPrenormed(0, 1.5, 0); got != 0 {
		t.Errorf("CosPrenormed(0,1.5,0) = %g, want 0", got)
	}
	// clamping against rounding excursions
	if got := CosPrenormed(1.0000001, 1, 1); got != 1 {
		t.Errorf("CosPrenormed above 1 should clamp, got %g", got)
	}
	if got := CosPrenormed(-1.0000001, 1, 1); got != -1 {
		t.Errorf("CosPrenormed below -1 should clamp, got %g", got)
	}
}

// The whole point of the decomposition: with dot == Dot(a,b), na == Norm(a)
// and nb == Norm(b), CosPrenormed must reproduce Cos bit-for-bit — the
// memoized attribute similarities must be indistinguishable from the
// unfactored kernel, or enumeration order (and thus results) could drift.
func TestCosPrenormedMatchesCosBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 5000; trial++ {
		n := 1 + rng.Intn(12)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.Float64() * 10
			b[i] = rng.Float64() * 10
		}
		// hit the zero-norm conventions from the same path
		switch trial % 50 {
		case 0:
			for i := range a {
				a[i] = 0
			}
		case 1:
			for i := range b {
				b[i] = 0
			}
		case 2:
			for i := range a {
				a[i], b[i] = 0, 0
			}
		}
		want := Cos(a, b)
		got := CosPrenormed(Dot(a, b), Norm(a), Norm(b))
		if got != want {
			t.Fatalf("trial %d: CosPrenormed = %v, Cos = %v (a=%v b=%v)", trial, got, want, a, b)
		}
	}
}

var benchSink float64

func benchVectors(n int) (a, b []float64) {
	rng := rand.New(rand.NewSource(7))
	a = make([]float64, n)
	b = make([]float64, n)
	for i := range a {
		a[i] = rng.Float64()
		b[i] = rng.Float64()
	}
	return a, b
}

func BenchmarkCos(b *testing.B) {
	x, y := benchVectors(16)
	b.ReportAllocs()
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s += Cos(x, y)
	}
	benchSink = s
}

// The hot-path replacement: norms amortised, one Dot per score.
func BenchmarkCosPrenormed(b *testing.B) {
	x, y := benchVectors(16)
	nx, ny := Norm(x), Norm(y)
	b.ReportAllocs()
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s += CosPrenormed(Dot(x, y), nx, ny)
	}
	benchSink = s
}
