package vectormath

import (
	"math/rand"
	"testing"
)

// DotsAt must be bit-identical to Dot over each gathered row — it is the
// blocked inner kernel of the batched attribute scorer, so any change in
// accumulation order would change similarity scores.
func TestDotsAtMatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const (
		rows   = 100
		stride = 24
	)
	flat := make([]float64, rows*stride)
	for i := range flat {
		flat[i] = rng.NormFloat64()
	}
	q := make([]float64, stride)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40)
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(rng.Intn(rows))
		}
		dst := make([]float64, n)
		DotsAt(dst, q, flat, stride, idx)
		for i, p := range idx {
			row := flat[int(p)*stride : (int(p)+1)*stride]
			if want := Dot(q, row); dst[i] != want {
				t.Fatalf("trial %d row %d: DotsAt = %v, Dot = %v", trial, p, dst[i], want)
			}
		}
	}
}

func TestDotsAtPanicsOnMismatch(t *testing.T) {
	flat := make([]float64, 8)
	for _, tc := range []struct {
		name   string
		dst    []float64
		q      []float64
		stride int
		idx    []int32
	}{
		{"dst-len", make([]float64, 1), []float64{1, 2}, 2, []int32{0, 1}},
		{"stride", make([]float64, 2), []float64{1, 2, 3}, 2, []int32{0, 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			DotsAt(tc.dst, tc.q, flat, tc.stride, tc.idx)
		})
	}
}

func TestDotsAtZeroAlloc(t *testing.T) {
	flat := make([]float64, 64*8)
	for i := range flat {
		flat[i] = float64(i)
	}
	q := make([]float64, 8)
	idx := make([]int32, 32)
	for i := range idx {
		idx[i] = int32(i * 2)
	}
	dst := make([]float64, len(idx))
	if allocs := testing.AllocsPerRun(20, func() {
		DotsAt(dst, q, flat, 8, idx)
	}); allocs != 0 {
		t.Errorf("DotsAt allocated %v per run", allocs)
	}
}

var benchDotsSink float64

func BenchmarkDotScalarLoop(b *testing.B) {
	rng := rand.New(rand.NewSource(72))
	const (
		rows   = 256
		stride = 24
	)
	flat := make([]float64, rows*stride)
	for i := range flat {
		flat[i] = rng.NormFloat64()
	}
	q := make([]float64, stride)
	idx := make([]int32, rows)
	for i := range idx {
		idx[i] = int32(i)
	}
	dst := make([]float64, rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, p := range idx {
			dst[j] = Dot(q, flat[int(p)*stride:(int(p)+1)*stride])
		}
	}
	benchDotsSink = dst[0]
}

func BenchmarkDotsAt(b *testing.B) {
	rng := rand.New(rand.NewSource(72))
	const (
		rows   = 256
		stride = 24
	)
	flat := make([]float64, rows*stride)
	for i := range flat {
		flat[i] = rng.NormFloat64()
	}
	q := make([]float64, stride)
	idx := make([]int32, rows)
	for i := range idx {
		idx[i] = int32(i)
	}
	dst := make([]float64, rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DotsAt(dst, q, flat, stride, idx)
	}
	benchDotsSink = dst[0]
}
