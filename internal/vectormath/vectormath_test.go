package vectormath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Errorf("Dot(nil,nil) = %g", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot should panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm(t *testing.T) {
	if got := Norm([]float64{3, 4}); !almostEq(got, 5, 1e-12) {
		t.Errorf("Norm = %g", got)
	}
}

func TestCosKnownValues(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{1, 0}, []float64{1, 0}, 1},
		{[]float64{1, 0}, []float64{0, 1}, 0},
		{[]float64{1, 1}, []float64{1, 1}, 1},
		{[]float64{1, 2, 3}, []float64{2, 4, 6}, 1}, // scale invariance
		{[]float64{1, 0}, []float64{-1, 0}, -1},
		{[]float64{0, 0}, []float64{1, 2}, 0}, // zero vs non-zero
		{[]float64{0, 0}, []float64{0, 0}, 1}, // both zero
		{[]float64{}, []float64{}, 1},         // empty
	}
	for _, c := range cases {
		if got := Cos(c.a, c.b); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Cos(%v,%v) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestCosChecked(t *testing.T) {
	if _, err := CosChecked([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Errorf("CosChecked error = %v, want ErrLengthMismatch", err)
	}
	if got, err := CosChecked([]float64{1, 0}, []float64{1, 0}); err != nil || got != 1 {
		t.Errorf("CosChecked = %g, %v", got, err)
	}
}

// Cosine of non-negative vectors is in [0,1] — the invariant the attribute
// similarity model depends on.
func TestCosNonNegativeRangeProperty(t *testing.T) {
	f := func(raw [6]float64) bool {
		a := make([]float64, 3)
		b := make([]float64, 3)
		for i := 0; i < 3; i++ {
			a[i] = bounded(raw[i])
			b[i] = bounded(raw[i+3])
		}
		c := Cos(a, b)
		return c >= 0 && c <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCosSymmetricProperty(t *testing.T) {
	f := func(raw [8]float64) bool {
		a := make([]float64, 4)
		b := make([]float64, 4)
		for i := 0; i < 4; i++ {
			a[i] = bounded(raw[i])
			b[i] = bounded(raw[i+4])
		}
		return Cos(a, b) == Cos(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// bounded maps an arbitrary quick-generated float into the non-negative,
// overflow-safe attribute domain this system validates its inputs into.
func bounded(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Abs(math.Mod(x, 1e6))
}

func TestCosScaleInvarianceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		b := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		s := rng.Float64()*10 + 0.1
		scaled := []float64{a[0] * s, a[1] * s, a[2] * s}
		if !almostEq(Cos(a, b), Cos(scaled, b), 1e-9) {
			t.Fatalf("cosine not scale invariant: %v vs %v", Cos(a, b), Cos(scaled, b))
		}
	}
}

func TestSummarize(t *testing.T) {
	st := Summarize([]float64{1, 2, 3, 4})
	if st.N != 4 {
		t.Errorf("N = %d", st.N)
	}
	if !almostEq(st.Mean, 2.5, 1e-12) {
		t.Errorf("Mean = %g", st.Mean)
	}
	if st.Min != 1 || st.Max != 4 {
		t.Errorf("Min/Max = %g/%g", st.Min, st.Max)
	}
	wantStd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 4)
	if !almostEq(st.Std, wantStd, 1e-12) {
		t.Errorf("Std = %g, want %g", st.Std, wantStd)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("Summarize(nil) = %+v", z)
	}
}

func TestSummarizeSingle(t *testing.T) {
	st := Summarize([]float64{7})
	if st.Mean != 7 || st.Std != 0 || st.Min != 7 || st.Max != 7 {
		t.Errorf("Summarize single = %+v", st)
	}
}

func TestMAE(t *testing.T) {
	got, err := MAE([]float64{1, 2, 3}, []float64{1.5, 1.5, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, (0.5+0.5+0)/3, 1e-12) {
		t.Errorf("MAE = %g", got)
	}
	if _, err := MAE([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Errorf("MAE mismatch error = %v", err)
	}
	if got, err := MAE(nil, nil); err != nil || got != 0 {
		t.Errorf("MAE(nil,nil) = %g, %v", got, err)
	}
}

func TestAbsErrors(t *testing.T) {
	es, err := AbsErrors([]float64{1, 5}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if es[0] != 1 || es[1] != 2 {
		t.Errorf("AbsErrors = %v", es)
	}
	if _, err := AbsErrors([]float64{1}, nil); err != ErrLengthMismatch {
		t.Errorf("AbsErrors mismatch error = %v", err)
	}
}
