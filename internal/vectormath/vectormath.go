// Package vectormath implements the dense-vector kernels behind the SEQ
// similarity model: dot products, norms, cosine similarity, and the
// summary statistics (MAE / STD / MAX) the evaluation harness reports.
//
// Attribute vectors in this system are non-negative, so cosine similarity
// is always in [0, 1]; Cos clamps tiny floating-point excursions so callers
// can rely on that range.
package vectormath

import (
	"errors"
	"math"
	"slices"
)

// ErrLengthMismatch is returned by checked entry points when two vectors
// have different lengths.
var ErrLengthMismatch = errors.New("vectormath: vector length mismatch")

// Dot returns the inner product of a and b. Panics if lengths differ.
//
//seq:hotpath
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		//lint:ignore panicfree hot-path invariant guard; length-checked callers use ErrLengthMismatch entry points
		panic("vectormath: Dot length mismatch")
	}
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// DotsAt computes the inner product of q against a batch of rows of a
// row-major flat matrix: dst[i] = q · flat[idx[i]*stride : +stride].
// It is the blocked companion of Dot for the SoA attribute layout — one
// tight two-level loop over contiguous float64 rows with the same
// accumulation order as Dot, so each dst[i] is bit-identical to the
// scalar call. Panics if dst and idx lengths differ or stride doesn't
// match len(q).
//
//seq:hotpath
func DotsAt(dst []float64, q, flat []float64, stride int, idx []int32) {
	if len(dst) != len(idx) || stride != len(q) {
		//lint:ignore panicfree hot-path invariant guard; length-checked callers use ErrLengthMismatch entry points
		panic("vectormath: DotsAt shape mismatch")
	}
	for i, p := range idx {
		// Hoisting the row base lets the compiler prove len(row) == len(q)
		// and drop the inner bounds checks; inlining the offset arithmetic
		// into the slice expression costs ~70% on this loop.
		base := int(p) * stride
		row := flat[base : base+stride]
		var s float64
		for j, x := range q {
			s += x * row[j]
		}
		dst[i] = s
	}
}

// Norm returns the Euclidean norm of a.
//
//seq:hotpath
func Norm(a []float64) float64 {
	var s float64
	for _, x := range a {
		s += x * x
	}
	return math.Sqrt(s)
}

// Cos returns the cosine similarity of a and b, clamped to [-1, 1].
// A zero vector has undefined direction; by convention Cos returns 0 when
// either argument has zero norm, and 1 when both do (two empty/zero tuples
// are maximally similar to each other). Panics if lengths differ.
//
//seq:hotpath
func Cos(a, b []float64) float64 {
	if len(a) != len(b) {
		//lint:ignore panicfree hot-path invariant guard; length-checked callers use ErrLengthMismatch entry points
		panic("vectormath: Cos length mismatch")
	}
	var dot, na, nb float64
	for i, x := range a {
		y := b[i]
		dot += x * y
		na += x * x
		nb += y * y
	}
	if na == 0 && nb == 0 {
		return 1
	}
	if na == 0 || nb == 0 {
		return 0
	}
	// sqrt(na)*sqrt(nb) instead of sqrt(na*nb): the product of the squared
	// norms overflows at half the exponent range the factors do.
	c := dot / (math.Sqrt(na) * math.Sqrt(nb))
	return clamp(c, -1, 1)
}

// CosPrenormed returns the cosine similarity given a precomputed dot
// product and the two (non-squared) vector norms, clamped to [-1, 1]. It is
// the hot-path companion of Cos for callers that amortise the norms — the
// dataset precomputes per-object attribute norms once at build time and the
// similarity context precomputes per-example-dimension norms once per
// query, so scoring a candidate degenerates to one Dot plus this division.
//
// The zero-norm conventions match Cos exactly: 1 when both norms are zero,
// 0 when exactly one is. Given na == Norm(a), nb == Norm(b) and
// dot == Dot(a, b), CosPrenormed(dot, na, nb) == Cos(a, b) bit-for-bit:
// Cos evaluates the same dot / (sqrt * sqrt) expression over identically
// ordered accumulations.
//
//seq:hotpath
func CosPrenormed(dot, na, nb float64) float64 {
	if na == 0 && nb == 0 {
		return 1
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return clamp(dot/(na*nb), -1, 1)
}

// CosChecked is Cos with an error instead of a panic on length mismatch.
func CosChecked(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrLengthMismatch
	}
	return Cos(a, b), nil
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Stats holds the summary statistics of a sample used by the evaluation
// harness (Table III reports STD and MAX of LORA's absolute errors;
// Table II reports the MAE).
type Stats struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// Summarize computes Stats over xs. The Std is the population standard
// deviation (the paper reports spread of per-query errors, not an estimator
// of a larger population). An empty sample yields a zero Stats.
func Summarize(xs []float64) Stats {
	if len(xs) == 0 {
		return Stats{}
	}
	st := Stats{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < st.Min {
			st.Min = x
		}
		if x > st.Max {
			st.Max = x
		}
	}
	st.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - st.Mean
		ss += d * d
	}
	st.Std = math.Sqrt(ss / float64(len(xs)))
	return st
}

// Percentiles returns the nearest-rank percentiles of xs, one per entry
// of ps (in percent). The nearest-rank definition picks the smallest
// sample value with at least ceil(p/100*N) of the sample at or below it,
// so every returned value is an actual sample member — no interpolation.
// p <= 0 yields the minimum and p >= 100 the maximum; an empty sample
// yields all zeros. Ties break deterministically: the sample is sorted
// ascending (NaNs first, per slices.Sort) and ranks index that order, so
// equal inputs always produce byte-identical outputs. xs is not modified.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	slices.Sort(sorted)
	for i, p := range ps {
		rank := int(math.Ceil(p / 100 * float64(len(sorted))))
		if rank < 1 {
			rank = 1
		}
		if rank > len(sorted) {
			rank = len(sorted)
		}
		out[i] = sorted[rank-1]
	}
	return out
}

// MAE returns the mean absolute difference between parallel samples a and b.
func MAE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrLengthMismatch
	}
	if len(a) == 0 {
		return 0, nil
	}
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / float64(len(a)), nil
}

// AbsErrors returns the element-wise absolute differences |a[i]-b[i]|.
func AbsErrors(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, ErrLengthMismatch
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = math.Abs(a[i] - b[i])
	}
	return out, nil
}
