package vectormath

import (
	"math"
	"testing"
)

func TestPercentilesEmpty(t *testing.T) {
	got := Percentiles(nil, 50, 99)
	if len(got) != 2 || got[0] != 0 || got[1] != 0 {
		t.Errorf("Percentiles(nil) = %v, want [0 0]", got)
	}
	if got := Percentiles([]float64{}, 90); got[0] != 0 {
		t.Errorf("Percentiles(empty) = %v, want [0]", got)
	}
}

func TestPercentilesSingleton(t *testing.T) {
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if got := Percentiles([]float64{7.5}, p)[0]; got != 7.5 {
			t.Errorf("Percentiles([7.5], %g) = %g, want 7.5", p, got)
		}
	}
}

func TestPercentilesNearestRank(t *testing.T) {
	// Classic nearest-rank example: 5 samples, p50 -> ceil(2.5)=3rd value.
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15},   // clamps to the minimum
		{-5, 15},  // negative clamps too
		{5, 15},   // ceil(0.25) = 1st
		{30, 20},  // ceil(1.5) = 2nd
		{40, 20},  // exactly 2.0 -> 2nd
		{50, 35},  // ceil(2.5) = 3rd
		{100, 50}, // maximum
		{250, 50}, // >100 clamps to the maximum
	}
	for _, c := range cases {
		if got := Percentiles(xs, c.p)[0]; got != c.want {
			t.Errorf("Percentiles(%v, %g) = %g, want %g", xs, c.p, got, c.want)
		}
	}
}

func TestPercentilesEvenLength(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	// n=4: p50 -> ceil(2)=2nd smallest = 2; p75 -> ceil(3)=3rd = 3.
	got := Percentiles(xs, 50, 75, 100)
	want := []float64{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Percentiles(%v) = %v, want %v", xs, got, want)
			break
		}
	}
	// input untouched
	if xs[0] != 4 || xs[1] != 1 {
		t.Errorf("Percentiles mutated its input: %v", xs)
	}
}

func TestPercentilesTiesDeterministic(t *testing.T) {
	xs := []float64{3, 3, 3, 1, 1}
	a := Percentiles(xs, 20, 40, 60, 80, 100)
	b := Percentiles(xs, 20, 40, 60, 80, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic percentiles: %v vs %v", a, b)
		}
	}
	if a[0] != 1 || a[4] != 3 {
		t.Errorf("tie handling wrong: %v", a)
	}
}

func TestPercentilesAreSampleMembers(t *testing.T) {
	xs := []float64{0.1, 0.9, 0.4, 0.7, 0.2, 0.5}
	for _, p := range []float64{10, 33, 50, 66, 90, 99} {
		v := Percentiles(xs, p)[0]
		found := false
		for _, x := range xs {
			if x == v {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("p%g = %g is not a sample member (nearest-rank must not interpolate)", p, v)
		}
	}
}

func TestPercentilesNaNsSortFirst(t *testing.T) {
	xs := []float64{2, math.NaN(), 1}
	// NaNs sort before numbers, so the minimum rank lands on NaN and the
	// maximum on the largest number — deterministically.
	got := Percentiles(xs, 0, 100)
	if !math.IsNaN(got[0]) {
		t.Errorf("p0 with NaN present = %g, want NaN", got[0])
	}
	if got[1] != 2 {
		t.Errorf("p100 = %g, want 2", got[1])
	}
}
