package vectormath

import "testing"

// The //seq:hotpath kernels must not allocate: seqlint's hotpathalloc
// analyzer proves it at the source level, these tests prove it against
// the compiler's actual escape analysis.

func TestDotZeroAlloc(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{4, 3, 2, 1}
	var sink float64
	if got := testing.AllocsPerRun(100, func() {
		sink = Dot(a, b)
	}); got != 0 {
		t.Errorf("Dot allocates %v times per call, want 0", got)
	}
	_ = sink
}

func TestCosZeroAlloc(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{4, 3, 2, 1}
	var sink float64
	if got := testing.AllocsPerRun(100, func() {
		sink = Cos(a, b)
	}); got != 0 {
		t.Errorf("Cos allocates %v times per call, want 0", got)
	}
	_ = sink
}

func TestCosPrenormedZeroAlloc(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{4, 3, 2, 1}
	na, nb := Norm(a), Norm(b)
	dot := Dot(a, b)
	var sink float64
	if got := testing.AllocsPerRun(100, func() {
		sink = CosPrenormed(dot, na, nb)
	}); got != 0 {
		t.Errorf("CosPrenormed allocates %v times per call, want 0", got)
	}
	_ = sink
}
