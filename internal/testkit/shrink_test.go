package testkit

import (
	"testing"

	"spatialseq/internal/dataset"
	"spatialseq/internal/query"
)

// TestShrinkReducesDataset drives Shrink with a synthetic failure
// predicate ("the dataset still contains objects X and Y and k >= 1") and
// checks the minimizer strips everything else away.
func TestShrinkReducesDataset(t *testing.T) {
	c := &Case{Seed: 314, Shape: DefaultShapes()[0], M: 3, Variant: query.CSEQ,
		Params: query.Params{K: 8, Alpha: 0.5, Beta: 3, GridD: 3, Xi: 5}}
	if err := c.Generate(); err != nil {
		t.Fatal(err)
	}
	// The "bug" depends on two specific objects, identified by ID so the
	// predicate survives position remapping.
	idA, idB := c.DS.Object(3).ID, c.DS.Object(17).ID
	fails := func(ds *dataset.Dataset, q *query.Query) bool {
		foundA, foundB := false, false
		for i := 0; i < ds.Len(); i++ {
			switch ds.Object(i).ID {
			case idA:
				foundA = true
			case idB:
				foundB = true
			}
		}
		return foundA && foundB
	}
	if !fails(c.DS, c.Q) {
		t.Fatal("predicate must hold on the original case")
	}
	sds, sq := Shrink(c.DS, c.Q, fails, 6)
	if !fails(sds, sq) {
		t.Fatal("shrunk case no longer fails")
	}
	if err := sq.Validate(sds); err != nil {
		t.Fatalf("shrunk query does not validate: %v", err)
	}
	if sds.Len() >= c.DS.Len() {
		t.Errorf("no objects removed: %d -> %d", c.DS.Len(), sds.Len())
	}
	// Minimal here: two culprit objects, the m-object floor aside.
	if sds.Len() > sq.Example.M() {
		t.Errorf("shrunk dataset keeps %d objects; the failure only needs 2 (floor %d)",
			sds.Len(), sq.Example.M())
	}
	if sq.Params.K != 1 {
		t.Errorf("k not minimized: %d", sq.Params.K)
	}
	if sq.Example.M() != 2 {
		t.Errorf("dimensions not minimized: %d", sq.Example.M())
	}
	// Shrink must not mutate its inputs.
	if c.DS.Len() != DefaultShapes()[0].Spec.N {
		t.Error("original dataset was mutated")
	}
	if c.Q.Params.K != 8 || c.Q.Example.M() != 3 {
		t.Error("original query was mutated")
	}
}

// TestShrinkKeepsPins: object removal must never strip a pinned object,
// and surviving pins must be remapped to their new positions.
func TestShrinkKeepsPins(t *testing.T) {
	var c *Case
	for seed := int64(0); ; seed++ {
		c = &Case{Seed: seed, Shape: DefaultShapes()[1], M: 3, Variant: query.CSEQFP,
			Params: query.Params{K: 5, Alpha: 0.5, Beta: 3, GridD: 3, Xi: 5}, PinCount: 1}
		if err := c.Generate(); err != nil {
			t.Fatal(err)
		}
		if c.Q.Variant == query.CSEQFP {
			break
		}
	}
	pinID := c.DS.Object(int(c.Q.Example.Fixed[0].Obj)).ID
	fails := func(ds *dataset.Dataset, q *query.Query) bool {
		// Any CSEQ-FP query "fails"; dropping the pin ends the failure.
		return q.Variant == query.CSEQFP
	}
	sds, sq := Shrink(c.DS, c.Q, fails, 6)
	if sq.Variant != query.CSEQFP || len(sq.Example.Fixed) == 0 {
		t.Fatal("shrunk case lost its fixed point")
	}
	got := sds.Object(int(sq.Example.Fixed[0].Obj)).ID
	if got != pinID {
		t.Errorf("pin now points at object %d, want %d", got, pinID)
	}
	if err := sq.Validate(sds); err != nil {
		t.Fatalf("shrunk query does not validate: %v", err)
	}
	if sds.Len() >= c.DS.Len() {
		t.Errorf("no objects removed: %d -> %d", c.DS.Len(), sds.Len())
	}
}

// TestShrinkRejectsVacuousPredicate: a predicate that never fails must
// leave the case untouched.
func TestShrinkNoProgressOnPassingCase(t *testing.T) {
	c := &Case{Seed: 21, Shape: DefaultShapes()[0], M: 2, Variant: query.CSEQ,
		Params: query.Params{K: 3, Alpha: 0.5, Beta: 1.5, GridD: 3, Xi: 5}}
	if err := c.Generate(); err != nil {
		t.Fatal(err)
	}
	never := func(ds *dataset.Dataset, q *query.Query) bool { return false }
	sds, sq := Shrink(c.DS, c.Q, never, 4)
	if sds.Len() != c.DS.Len() || sq.Params.K != c.Q.Params.K || sq.Example.M() != c.Q.Example.M() {
		t.Error("shrink made progress against a never-failing predicate")
	}
}

func TestDropDimRemapsSkipPairs(t *testing.T) {
	c := &Case{Seed: 8, Shape: DefaultShapes()[0], M: 3, Variant: query.CSEQ,
		Params: query.Params{K: 3, Alpha: 0.5, Beta: 3, GridD: 3, Xi: 5}}
	if err := c.Generate(); err != nil {
		t.Fatal(err)
	}
	c.Q.Example.SkipPairs = [][2]int{{0, 1}, {0, 2}, {1, 2}}
	out := dropDim(c.Q, 1)
	if out.Example.M() != 2 {
		t.Fatalf("M = %d, want 2", out.Example.M())
	}
	// {0,1} and {1,2} touch the dropped dim and vanish; {0,2} becomes {0,1}.
	if len(out.Example.SkipPairs) != 1 || out.Example.SkipPairs[0] != [2]int{0, 1} {
		t.Errorf("skip pairs remapped to %v, want [[0 1]]", out.Example.SkipPairs)
	}
	if len(c.Q.Example.SkipPairs) != 3 {
		t.Error("dropDim mutated its input")
	}
}
