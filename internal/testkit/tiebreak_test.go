package testkit

import (
	"context"
	"testing"

	"spatialseq/internal/algo/brute"
	"spatialseq/internal/dataset"
	"spatialseq/internal/geo"
	"spatialseq/internal/query"
)

// handCase wraps a hand-built dataset and query in a Case so the
// differential checker can run on it (the recipe fields are cosmetic).
func handCase(t *testing.T, ds *dataset.Dataset, q *query.Query) *Case {
	t.Helper()
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	return &Case{Shape: Shape{Name: "hand-built"}, M: q.Example.M(), Variant: q.Variant,
		Params: q.Params, DS: ds, Q: q}
}

func mustBuild(t *testing.T, b *dataset.Builder) *dataset.Dataset {
	t.Helper()
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestTieHeavySymmetricAgreement is the regression test for the strict
// WouldAccept bug: with every candidate tuple scoring an identical
// similarity, a bound equal to the heap threshold used to prune subtrees
// whose tied tuples would have displaced larger-key entries, so HSP's
// tuple set could diverge from brute force. The deterministic tie-break
// (higher sim, then lexicographically smaller tuple key) must now be
// reproduced by every exact algorithm, including parallel HSP.
func TestTieHeavySymmetricAgreement(t *testing.T) {
	b := &dataset.Builder{}
	ca, cb := b.Category("a"), b.Category("b")
	attr := []float64{1, 2}
	// One anchor and a ring of four "b" objects all at distance 10 from
	// it: every (a, b) tuple ties at the maximum similarity.
	b.Add(dataset.Object{ID: 10, Loc: geo.Point{X: 0, Y: 0}, Category: ca, Attr: attr})
	b.Add(dataset.Object{ID: 11, Loc: geo.Point{X: 10, Y: 0}, Category: cb, Attr: attr})
	b.Add(dataset.Object{ID: 12, Loc: geo.Point{X: -10, Y: 0}, Category: cb, Attr: attr})
	b.Add(dataset.Object{ID: 13, Loc: geo.Point{X: 0, Y: 10}, Category: cb, Attr: attr})
	b.Add(dataset.Object{ID: 14, Loc: geo.Point{X: 0, Y: -10}, Category: cb, Attr: attr})
	ds := mustBuild(t, b)
	q := &query.Query{
		Variant: query.CSEQ,
		Params:  query.Params{K: 2, Alpha: 0.5, Beta: 1.5, GridD: 3, Xi: 5},
		Example: query.Example{
			Categories: []dataset.CategoryID{ca, cb},
			Locations:  []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}},
			Attrs:      [][]float64{attr, attr},
		},
	}
	c := handCase(t, ds, q)
	want := brute.Search(ds, q)
	if len(want) != 2 {
		t.Fatalf("oracle returned %d results, want 2", len(want))
	}
	for i, e := range want {
		// All ring tuples share the identical distance vector, so the tie
		// is bitwise (the rounded cosine may sit a ulp under 1).
		if e.Sim != want[0].Sim || e.Sim < 0.999 {
			t.Fatalf("rank %d: sim %.17g, want a full tie near 1", i, e.Sim)
		}
	}
	// Tie-break: positions (0,1) then (0,2) — the smallest tuple keys.
	if want[0].Tuple[1] != 1 || want[1].Tuple[1] != 2 {
		t.Fatalf("oracle tie-break picked %v / %v, want positions 1 then 2", want[0].Tuple, want[1].Tuple)
	}
	// Parallel HSP shares the tie-break contract; repeat to shake races.
	for round := 0; round < 10; round++ {
		ms, err := CheckCase(context.Background(), c, true, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ms {
			t.Errorf("round %d: %s", round, m)
		}
	}
}

// TestZeroNormAttributeAgreement: objects with all-zero attribute vectors
// score SIMa = 0 against any non-zero example attribute (by the documented
// cosine convention), producing clusters of exactly tied similarities.
// All exact algorithms must agree tuple-for-tuple.
func TestZeroNormAttributeAgreement(t *testing.T) {
	b := &dataset.Builder{}
	ca, cb := b.Category("a"), b.Category("b")
	zero := []float64{0, 0}
	some := []float64{3, 1}
	b.Add(dataset.Object{ID: 20, Loc: geo.Point{X: 0, Y: 0}, Category: ca, Attr: some})
	b.Add(dataset.Object{ID: 21, Loc: geo.Point{X: 0, Y: 0}, Category: ca, Attr: zero})
	// Symmetric ring: spatially tied pairs whose attribute halves are
	// zero-vs-zero (SIMa ties at 0) and zero-vs-some.
	b.Add(dataset.Object{ID: 22, Loc: geo.Point{X: 8, Y: 0}, Category: cb, Attr: zero})
	b.Add(dataset.Object{ID: 23, Loc: geo.Point{X: -8, Y: 0}, Category: cb, Attr: zero})
	b.Add(dataset.Object{ID: 24, Loc: geo.Point{X: 0, Y: 8}, Category: cb, Attr: some})
	b.Add(dataset.Object{ID: 25, Loc: geo.Point{X: 0, Y: -8}, Category: cb, Attr: zero})
	ds := mustBuild(t, b)
	q := &query.Query{
		Variant: query.CSEQ,
		Params:  query.Params{K: 4, Alpha: 0.5, Beta: 2, GridD: 3, Xi: 5},
		Example: query.Example{
			Categories: []dataset.CategoryID{ca, cb},
			Locations:  []geo.Point{{X: 0, Y: 0}, {X: 8, Y: 0}},
			Attrs:      [][]float64{some, some},
		},
	}
	c := handCase(t, ds, q)
	ms, err := CheckCase(context.Background(), c, true, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		t.Errorf("%s", m)
	}
}

// TestDegenerateExampleAgreement: an example whose locations all coincide
// has a zero-norm distance vector, which makes Eq. 5 vacuous (regression:
// the raw formula returned 0, a false bound that let HSP prune the only
// feasible tuples). With finite beta only coincident tuples are feasible;
// every exact algorithm must return exactly them.
func TestDegenerateExampleAgreement(t *testing.T) {
	b := &dataset.Builder{}
	ca, cb := b.Category("a"), b.Category("b")
	attr := []float64{1}
	// Three coincident (a, b) pairs at different spots, plus decoys that
	// break the norm constraint.
	b.Add(dataset.Object{ID: 30, Loc: geo.Point{X: 1, Y: 1}, Category: ca, Attr: attr})
	b.Add(dataset.Object{ID: 31, Loc: geo.Point{X: 1, Y: 1}, Category: cb, Attr: attr})
	b.Add(dataset.Object{ID: 32, Loc: geo.Point{X: 4, Y: 4}, Category: ca, Attr: attr})
	b.Add(dataset.Object{ID: 33, Loc: geo.Point{X: 4, Y: 4}, Category: cb, Attr: attr})
	b.Add(dataset.Object{ID: 34, Loc: geo.Point{X: 7, Y: 7}, Category: ca, Attr: attr})
	b.Add(dataset.Object{ID: 35, Loc: geo.Point{X: 7, Y: 7}, Category: cb, Attr: attr})
	b.Add(dataset.Object{ID: 36, Loc: geo.Point{X: 50, Y: 50}, Category: cb, Attr: attr})
	ds := mustBuild(t, b)
	q := &query.Query{
		Variant: query.CSEQ,
		Params:  query.Params{K: 2, Alpha: 0.5, Beta: 1.5, GridD: 3, Xi: 5},
		Example: query.Example{
			Categories: []dataset.CategoryID{ca, cb},
			Locations:  []geo.Point{{X: 5, Y: 5}, {X: 5, Y: 5}},
			Attrs:      [][]float64{attr, attr},
		},
	}
	c := handCase(t, ds, q)
	want := brute.Search(ds, q)
	// 3 coincident pairs tie at sim 1; K=2 keeps the two smallest keys.
	if len(want) != 2 || want[0].Sim != 1 || want[1].Sim != 1 {
		t.Fatalf("oracle = %v, want two sim-1 results", want)
	}
	ms, err := CheckCase(context.Background(), c, true, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		t.Errorf("%s", m)
	}
}
