package testkit

import (
	"context"
	"math"
	"testing"

	"spatialseq/internal/query"
)

// FuzzSearch drives the differential oracle from fuzzer-chosen recipes:
// the fuzzer picks a generator seed, a selector word (shape, tuple size,
// k, variant, parallelism) and the two model weights, and every exact
// algorithm must agree with brute force on the resulting query. The raw
// floats are folded into their valid ranges rather than skipped —
// parameter validation has its own fuzz target at the server boundary
// (FuzzServerDecode); this one exists to explore the search space.
func FuzzSearch(f *testing.F) {
	f.Add(int64(1), uint64(0), 0.5, 1.5)
	f.Add(int64(2), uint64(7), 0.3, 3.0)
	f.Add(int64(-77), uint64(42), 1.0, 1.2)
	f.Add(int64(991), uint64(255), 0.9, 2.0)
	f.Add(int64(20250805), uint64(1)<<33, 0.0, 1.0)
	f.Fuzz(func(t *testing.T, seed int64, sel uint64, alpha, beta float64) {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.IsNaN(beta) || math.IsInf(beta, 0) {
			t.Skip("non-finite weights are rejected at the validation boundary")
		}
		// Fold into the valid parameter ranges. Alpha 0 would select the
		// paper default through Normalize, so keep it off exact zero.
		alpha = math.Mod(math.Abs(alpha), 1)
		if alpha == 0 {
			alpha = 0.5
		}
		beta = 1 + math.Mod(math.Abs(beta), 8)
		shapes := DefaultShapes()
		c := &Case{
			Seed:  seed,
			Shape: shapes[int(sel%uint64(len(shapes)))],
			M:     2 + int(sel>>2&1),
			Params: query.Params{
				K:     1 + int(sel>>3&7),
				Alpha: alpha,
				Beta:  beta,
				GridD: 2 + int(sel>>6&3),
				Xi:    5 + int(sel>>8&1)*5,
			},
			PinCount: 1 + int(sel>>9&1),
		}
		switch sel >> 10 & 3 {
		case 0:
			c.Variant = query.SEQ
		case 1:
			c.Variant = query.CSEQFP
		default:
			c.Variant = query.CSEQ
		}
		if err := c.Generate(); err != nil {
			t.Fatalf("a folded recipe must always validate: %v", err)
		}
		parallel := sel>>12&1 == 1
		ms, err := CheckCase(context.Background(), c, parallel, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ms {
			t.Errorf("%s", m)
		}
		if t.Failed() {
			t.Logf("full case:\n%s", FormatCase(c.DS, c.Q))
		}
	})
}
