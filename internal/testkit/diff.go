package testkit

import (
	"context"
	"fmt"
	"math"

	"spatialseq/internal/algo/brute"
	"spatialseq/internal/algo/dfsprune"
	"spatialseq/internal/algo/hsp"
	"spatialseq/internal/algo/lora"
	"spatialseq/internal/algo/sched"
	"spatialseq/internal/dataset"
	"spatialseq/internal/query"
	"spatialseq/internal/simil"
	"spatialseq/internal/testutil"
	"spatialseq/internal/topk"
)

// Tol is the similarity tolerance of the differential comparisons. The
// exact algorithms share every kernel with brute force (same accumulation
// orders, documented bit-for-bit), so scores are expected to match far
// tighter than this; the tolerance only guards against a future kernel
// reordering turning into a wall of spurious reports.
const Tol = 1e-9

// Mismatch is one differential disagreement.
type Mismatch struct {
	// Case is the generating recipe (nil for ad-hoc CheckCase calls on
	// hand-built data).
	Case *Case
	// Algo names the implementation that disagreed with the oracle
	// ("hsp", "hsp-parallel", "dfs-prune", "lora").
	Algo string
	// Kind classifies the disagreement: "count", "score", "tuple" for the
	// exact algorithms; "extra", "infeasible", "category", "pin", "score",
	// "dominated", "order" for LORA.
	Kind string
	// Detail is human-readable context, including the shrunk
	// counterexample when shrinking was enabled.
	Detail string
}

// String implements fmt.Stringer.
func (m Mismatch) String() string {
	repro := ""
	if m.Case != nil {
		repro = " case=" + m.Case.String()
	}
	return fmt.Sprintf("[%s/%s]%s %s", m.Algo, m.Kind, repro, m.Detail)
}

// DiffConfig parameterizes RunDiff. Zero slices fall back to the listed
// defaults.
type DiffConfig struct {
	// Seed derives every case seed (mix64(Seed, i)).
	Seed int64
	// Queries is how many seeded queries to run (default 510).
	Queries int
	// Shapes are the dataset families to cycle through (default
	// DefaultShapes).
	Shapes []Shape
	// Ms cycles the tuple sizes (default [2,2,3] — two cheap sizes per
	// expensive one keeps the oracle affordable).
	Ms []int
	// Ks cycles the result counts (default [1,3,5,8]).
	Ks []int
	// Alphas cycles the spatial/attribute weights (default
	// [0.3,0.5,0.9,1]).
	Alphas []float64
	// Betas cycles the norm constraints (default [1.2,1.5,3]).
	Betas []float64
	// FixedPointEvery makes every n-th query CSEQ-FP (0 disables).
	FixedPointEvery int
	// SEQEvery makes every n-th query SEQ (0 disables; takes precedence
	// over FixedPointEvery on collisions).
	SEQEvery int
	// ParallelEvery additionally runs HSP with Parallelism=4 on every
	// n-th query (0 disables) — the concurrent top-k must stay
	// tuple-deterministic.
	ParallelEvery int
	// StealChunkSizes additionally forces the work-stealing scheduler's
	// chunk size to each listed value on the ParallelEvery queries
	// (sched.Tuning.ChunkSize semantics: 1 is the adversarial
	// per-candidate split, -1 disables splitting). HSP must stay exact
	// at every granularity; LORA (when CheckLORA) must stay valid.
	StealChunkSizes []int
	// CheckLORA also validates LORA results (feasibility + domination).
	CheckLORA bool
	// Shrink reduces the first failing case to a minimal counterexample
	// and attaches it to the mismatch detail.
	Shrink bool
	// MaxMismatches stops the run after this many disagreements
	// (default 5).
	MaxMismatches int
}

func (cfg *DiffConfig) fillDefaults() {
	if cfg.Queries <= 0 {
		cfg.Queries = 510
	}
	if len(cfg.Shapes) == 0 {
		cfg.Shapes = DefaultShapes()
	}
	if len(cfg.Ms) == 0 {
		cfg.Ms = []int{2, 2, 3}
	}
	if len(cfg.Ks) == 0 {
		cfg.Ks = []int{1, 3, 5, 8}
	}
	if len(cfg.Alphas) == 0 {
		cfg.Alphas = []float64{0.3, 0.5, 0.9, 1}
	}
	if len(cfg.Betas) == 0 {
		cfg.Betas = []float64{1.2, 1.5, 3}
	}
	if cfg.MaxMismatches <= 0 {
		cfg.MaxMismatches = 5
	}
}

// DiffReport summarises a RunDiff sweep.
type DiffReport struct {
	// Queries is how many cases actually ran.
	Queries int
	// ByVariant counts cases per query variant name.
	ByVariant map[string]int
	// Mismatches are the disagreements found (empty on a clean run).
	Mismatches []Mismatch
}

// CaseAt derives the i-th seeded recipe of the sweep (before
// materialization — call Generate on the result). It is the single
// source of the suite's case schedule: RunDiff iterates it, and external
// differential suites (the sharded coordinator's) replay the exact same
// recipes by iterating it themselves.
func (cfg DiffConfig) CaseAt(i int) *Case {
	cfg.fillDefaults()
	c := &Case{
		Seed:    mix64(cfg.Seed, i),
		Shape:   cfg.Shapes[i%len(cfg.Shapes)],
		M:       cfg.Ms[(i/len(cfg.Shapes))%len(cfg.Ms)],
		Variant: query.CSEQ,
		Params: query.Params{
			K:     cfg.Ks[i%len(cfg.Ks)],
			Alpha: cfg.Alphas[(i/2)%len(cfg.Alphas)],
			Beta:  cfg.Betas[(i/3)%len(cfg.Betas)],
			GridD: 3 + i%4,
			Xi:    5 + i%2*5,
		},
		PinCount: 1 + i%2,
	}
	switch {
	case cfg.SEQEvery > 0 && i%cfg.SEQEvery == 0:
		c.Variant = query.SEQ
	case cfg.FixedPointEvery > 0 && i%cfg.FixedPointEvery == 1:
		c.Variant = query.CSEQFP
	}
	return c
}

// RunDiff executes the differential sweep: for each seeded case it runs
// brute force as the oracle, compares HSP and DFS-Prune tuple-for-tuple,
// and (optionally) validates LORA. It stops early on context cancellation
// or after MaxMismatches disagreements.
func RunDiff(ctx context.Context, cfg DiffConfig) (*DiffReport, error) {
	cfg.fillDefaults()
	rep := &DiffReport{ByVariant: make(map[string]int)}
	for i := 0; i < cfg.Queries; i++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		c := cfg.CaseAt(i)
		if err := c.Generate(); err != nil {
			return rep, err
		}
		rep.Queries++
		rep.ByVariant[c.Q.Variant.String()]++
		parallel := cfg.ParallelEvery > 0 && i%cfg.ParallelEvery == 0
		found, err := CheckCase(ctx, c, parallel, cfg.CheckLORA)
		if err != nil {
			return rep, fmt.Errorf("testkit: case %s: %w", c, err)
		}
		if parallel && len(cfg.StealChunkSizes) > 0 {
			steal, err := CheckCaseSteal(ctx, c, cfg.StealChunkSizes, cfg.CheckLORA)
			if err != nil {
				return rep, fmt.Errorf("testkit: case %s (steal): %w", c, err)
			}
			found = append(found, steal...)
		}
		if len(found) > 0 && cfg.Shrink {
			shrinkFirst(ctx, c, found)
		}
		rep.Mismatches = append(rep.Mismatches, found...)
		if len(rep.Mismatches) >= cfg.MaxMismatches {
			break
		}
	}
	return rep, nil
}

// CheckCase runs the differential oracle over one generated case. The
// exact algorithms are compared tuple-for-tuple; LORA (when checkLORA) is
// validated for feasibility and score domination.
func CheckCase(ctx context.Context, c *Case, parallel, checkLORA bool) ([]Mismatch, error) {
	ix := testutil.BuildIndex(c.DS)
	want := brute.Search(c.DS, c.Q)
	var out []Mismatch

	got, err := hsp.Search(ctx, c.DS, ix, c.Q, hsp.Options{})
	if err != nil {
		return out, fmt.Errorf("hsp: %w", err)
	}
	out = append(out, CompareExact(c, "hsp", want, got)...)

	if parallel {
		got, err = hsp.Search(ctx, c.DS, ix, c.Q, hsp.Options{Parallelism: 4})
		if err != nil {
			return out, fmt.Errorf("hsp parallel: %w", err)
		}
		out = append(out, CompareExact(c, "hsp-parallel", want, got)...)
	}

	got, err = dfsprune.Search(ctx, c.DS, c.Q)
	if err != nil {
		return out, fmt.Errorf("dfs-prune: %w", err)
	}
	out = append(out, CompareExact(c, "dfs-prune", want, got)...)

	if checkLORA {
		approx, err := lora.Search(ctx, c.DS, ix, c.Q, lora.Options{})
		if err != nil {
			return out, fmt.Errorf("lora: %w", err)
		}
		out = append(out, CheckApprox(c, want, approx)...)
	}
	return out, nil
}

// CheckCaseSteal re-runs one case through the parallel paths with the
// work-stealing scheduler forced to each chunk size: HSP compared
// tuple-for-tuple against the brute oracle (exactness must hold at any
// steal granularity, including chunk=1), LORA re-validated for
// feasibility and domination.
func CheckCaseSteal(ctx context.Context, c *Case, chunkSizes []int, checkLORA bool) ([]Mismatch, error) {
	ix := testutil.BuildIndex(c.DS)
	want := brute.Search(c.DS, c.Q)
	var out []Mismatch
	for _, cs := range chunkSizes {
		tun := sched.Tuning{ChunkSize: cs}
		got, err := hsp.Search(ctx, c.DS, ix, c.Q, hsp.Options{Parallelism: 4, Steal: tun})
		if err != nil {
			return out, fmt.Errorf("hsp steal chunk=%d: %w", cs, err)
		}
		out = append(out, CompareExact(c, fmt.Sprintf("hsp-steal-%d", cs), want, got)...)

		if checkLORA {
			approx, err := lora.Search(ctx, c.DS, ix, c.Q, lora.Options{Parallelism: 4, Steal: tun})
			if err != nil {
				return out, fmt.Errorf("lora steal chunk=%d: %w", cs, err)
			}
			out = append(out, CheckApprox(c, want, approx)...)
		}
	}
	return out, nil
}

// SearchFunc is an injected search implementation: a higher tier (the
// sharded scatter-gather coordinator, a future remote serving path) hands
// its whole pipeline in as a closure returning ranked entries. testkit
// sits below internal/core in the layer graph, so this is the only shape
// in which those tiers can plug into the differential oracle.
type SearchFunc func(ctx context.Context, ds *dataset.Dataset, q *query.Query) ([]topk.Entry, error)

// CheckCaseAgainst runs one generated case through fn and compares the
// answer tuple-for-tuple against the brute-force oracle — the injection
// point that extends the CheckCase family beyond the in-package
// algorithms. algo labels any mismatches.
func CheckCaseAgainst(ctx context.Context, c *Case, algo string, fn SearchFunc) ([]Mismatch, error) {
	want := brute.Search(c.DS, c.Q)
	got, err := fn(ctx, c.DS, c.Q)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", algo, err)
	}
	return CompareExact(c, algo, want, got), nil
}

// CheckApproxAgainst is CheckCaseAgainst for approximate implementations:
// fn's answer is validated against the LORA contract (feasibility,
// correct scores, rank-by-rank domination by the exact top-k) instead of
// tuple equality.
func CheckApproxAgainst(ctx context.Context, c *Case, algo string, fn SearchFunc) ([]Mismatch, error) {
	want := brute.Search(c.DS, c.Q)
	got, err := fn(ctx, c.DS, c.Q)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", algo, err)
	}
	out := CheckApprox(c, want, got)
	for i := range out {
		out[i].Algo = algo
	}
	return out, nil
}

// CompareExact asserts that an exact algorithm's results agree with the
// brute-force oracle tuple-for-tuple. With the deterministic tie-break
// (topk.beats) and the tie-aware WouldAccept, agreement is positional, not
// just score-level.
func CompareExact(c *Case, algo string, want, got []topk.Entry) []Mismatch {
	if len(want) != len(got) {
		return []Mismatch{{Case: c, Algo: algo, Kind: "count",
			Detail: fmt.Sprintf("oracle has %d results, %s has %d", len(want), algo, len(got))}}
	}
	var out []Mismatch
	for i := range want {
		if math.Abs(want[i].Sim-got[i].Sim) > Tol {
			out = append(out, Mismatch{Case: c, Algo: algo, Kind: "score",
				Detail: fmt.Sprintf("rank %d: oracle sim %.17g, got %.17g", i, want[i].Sim, got[i].Sim)})
			continue
		}
		if !tuplesEqual(want[i].Tuple, got[i].Tuple) {
			out = append(out, Mismatch{Case: c, Algo: algo, Kind: "tuple",
				Detail: fmt.Sprintf("rank %d: oracle tuple %v (sim %.17g), got %v (sim %.17g)",
					i, want[i].Tuple, want[i].Sim, got[i].Tuple, got[i].Sim)})
		}
	}
	return out
}

// CheckApprox validates LORA's results against the exact oracle: every
// returned tuple must be category-correct, pin-honouring, duplicate-free
// and β-feasible with a correctly computed score; the score series must be
// non-increasing and dominated rank-by-rank by the exact top-k; and LORA
// cannot return more results than feasible tuples exist.
func CheckApprox(c *Case, want, got []topk.Entry) []Mismatch {
	var out []Mismatch
	if len(got) > len(want) {
		out = append(out, Mismatch{Case: c, Algo: "lora", Kind: "extra",
			Detail: fmt.Sprintf("lora returned %d results but only %d feasible tuples rank in the exact top-k", len(got), len(want))})
		return out
	}
	sctx := simil.NewContext(c.DS, c.Q)
	for i, e := range got {
		for d, pos := range e.Tuple {
			if c.DS.Category(int(pos)) != c.Q.Example.Categories[d] {
				out = append(out, Mismatch{Case: c, Algo: "lora", Kind: "category",
					Detail: fmt.Sprintf("rank %d: tuple %v has wrong category at dim %d", i, e.Tuple, d)})
			}
		}
		for _, f := range c.Q.Example.Fixed {
			if e.Tuple[f.Dim] != f.Obj {
				out = append(out, Mismatch{Case: c, Algo: "lora", Kind: "pin",
					Detail: fmt.Sprintf("rank %d: tuple %v ignores pin %+v", i, e.Tuple, f)})
			}
		}
		sim, ok := sctx.SimOfPositions(e.Tuple)
		if !ok {
			out = append(out, Mismatch{Case: c, Algo: "lora", Kind: "infeasible",
				Detail: fmt.Sprintf("rank %d: tuple %v violates the beta-norm constraint or repeats an object", i, e.Tuple)})
			continue
		}
		if math.Abs(sim-e.Sim) > Tol {
			out = append(out, Mismatch{Case: c, Algo: "lora", Kind: "score",
				Detail: fmt.Sprintf("rank %d: tuple %v reported sim %.17g, recomputed %.17g", i, e.Tuple, e.Sim, sim)})
		}
		if e.Sim > want[i].Sim+Tol {
			out = append(out, Mismatch{Case: c, Algo: "lora", Kind: "dominated",
				Detail: fmt.Sprintf("rank %d: approximate sim %.17g exceeds the exact optimum %.17g", i, e.Sim, want[i].Sim)})
		}
		if i > 0 && e.Sim > got[i-1].Sim+Tol {
			out = append(out, Mismatch{Case: c, Algo: "lora", Kind: "order",
				Detail: fmt.Sprintf("rank %d: sim %.17g exceeds rank %d's %.17g", i, e.Sim, i-1, got[i-1].Sim)})
		}
	}
	return out
}

// shrinkFirst reduces the first mismatch's case to a minimal
// counterexample and attaches it (plus the recipe) to the mismatch detail.
func shrinkFirst(ctx context.Context, c *Case, found []Mismatch) {
	first := &found[0]
	fails := func(ds *dataset.Dataset, q *query.Query) bool {
		cand := &Case{Seed: c.Seed, Shape: c.Shape, M: q.Example.M(),
			Variant: q.Variant, Params: q.Params, DS: ds, Q: q}
		ms, err := CheckCase(ctx, cand, false, first.Algo == "lora")
		if err != nil {
			return false
		}
		for _, m := range ms {
			if m.Algo == first.Algo && m.Kind == first.Kind {
				return true
			}
		}
		return false
	}
	sds, sq := Shrink(c.DS, c.Q, fails, 4)
	first.Detail += "\nshrunk counterexample:\n" + FormatCase(sds, sq)
}

func tuplesEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
