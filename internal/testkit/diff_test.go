package testkit

import (
	"context"
	"strings"
	"testing"

	"spatialseq/internal/algo/brute"
	"spatialseq/internal/query"
	"spatialseq/internal/topk"
)

// TestDifferentialSuite is the acceptance gate of the differential tier:
// 510 seeded CSEQ/CSEQ-FP/SEQ queries across the three default dataset
// shapes, brute force as oracle, with zero disagreements from HSP
// (sequential and parallel), DFS-Prune, or LORA's approximation
// contract. It runs in full in -short mode — the shapes are sized so the
// oracle stays affordable.
func TestDifferentialSuite(t *testing.T) {
	rep, err := RunDiff(context.Background(), DiffConfig{
		Seed:            20250805,
		Queries:         510,
		FixedPointEvery: 3,
		SEQEvery:        7,
		ParallelEvery:   5,
		CheckLORA:       true,
		Shrink:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != 510 {
		t.Fatalf("ran %d queries, want 510", rep.Queries)
	}
	for _, v := range []string{query.CSEQ.String(), query.CSEQFP.String(), query.SEQ.String()} {
		if rep.ByVariant[v] == 0 {
			t.Errorf("variant %s never exercised: %v", v, rep.ByVariant)
		}
	}
	for _, m := range rep.Mismatches {
		t.Errorf("differential mismatch: %s", m)
	}
}

// TestRunDiffDeterministic pins the suite's reproducibility contract: the
// same config must regenerate the same cases (checked through the
// per-variant counts and a spot-checked case recipe).
func TestRunDiffDeterministic(t *testing.T) {
	cfg := DiffConfig{Seed: 7, Queries: 30, FixedPointEvery: 3, CheckLORA: true}
	a, err := RunDiff(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDiff(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.ByVariant) != len(b.ByVariant) {
		t.Fatalf("variant maps differ: %v vs %v", a.ByVariant, b.ByVariant)
	}
	for k, v := range a.ByVariant {
		if b.ByVariant[k] != v {
			t.Errorf("variant %s: %d vs %d runs", k, v, b.ByVariant[k])
		}
	}
}

func TestRunDiffCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunDiff(ctx, DiffConfig{Seed: 1, Queries: 50})
	if err == nil {
		t.Fatal("cancelled context should surface an error")
	}
	if rep.Queries != 0 {
		t.Errorf("ran %d queries after cancellation", rep.Queries)
	}
}

// TestCaseGenerateReproducible asserts the Case contract: the same recipe
// materializes the same dataset and query.
func TestCaseGenerateReproducible(t *testing.T) {
	mk := func() *Case {
		c := &Case{Seed: 99, Shape: DefaultShapes()[1], M: 3, Variant: query.CSEQFP,
			Params: query.Params{K: 4, Alpha: 0.6, Beta: 2, GridD: 3, Xi: 5}, PinCount: 2}
		if err := c.Generate(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(), mk()
	if a.DS.Len() != b.DS.Len() || a.Q.Variant != b.Q.Variant {
		t.Fatal("recipes materialized differently")
	}
	for i := 0; i < a.DS.Len(); i++ {
		if a.DS.Loc(i) != b.DS.Loc(i) || a.DS.Category(i) != b.DS.Category(i) {
			t.Fatalf("object %d differs between regenerations", i)
		}
	}
	ra := brute.Search(a.DS, a.Q)
	rb := brute.Search(b.DS, b.Q)
	if len(ra) != len(rb) {
		t.Fatal("regenerated case ranks differently")
	}
	for i := range ra {
		if !tuplesEqual(ra[i].Tuple, rb[i].Tuple) {
			t.Fatalf("rank %d tuple differs between regenerations", i)
		}
	}
}

// TestCompareExactDetects exercises the checker itself: a doctored result
// list must be flagged with the right mismatch kind.
func TestCompareExactDetects(t *testing.T) {
	c := &Case{Seed: 5, Shape: DefaultShapes()[0], M: 2, Variant: query.CSEQ,
		Params: query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 3, Xi: 5}}
	if err := c.Generate(); err != nil {
		t.Fatal(err)
	}
	want := brute.Search(c.DS, c.Q)
	if len(want) < 2 {
		t.Fatalf("need at least 2 results, got %d", len(want))
	}
	clone := func() []topk.Entry {
		out := make([]topk.Entry, len(want))
		for i, e := range want {
			out[i] = topk.Entry{Tuple: append([]int32(nil), e.Tuple...), Sim: e.Sim}
		}
		return out
	}

	if ms := CompareExact(c, "x", want, clone()); len(ms) != 0 {
		t.Fatalf("identical results flagged: %v", ms)
	}
	short := clone()[:len(want)-1]
	if ms := CompareExact(c, "x", want, short); len(ms) != 1 || ms[0].Kind != "count" {
		t.Fatalf("truncated results: got %v, want one count mismatch", ms)
	}
	scored := clone()
	scored[1].Sim -= 0.25
	if ms := CompareExact(c, "x", want, scored); len(ms) != 1 || ms[0].Kind != "score" {
		t.Fatalf("perturbed score: got %v, want one score mismatch", ms)
	}
	swapped := clone()
	swapped[0].Tuple[0], swapped[0].Tuple[1] = swapped[0].Tuple[1], swapped[0].Tuple[0]
	ms := CompareExact(c, "x", want, swapped)
	if len(ms) != 1 || ms[0].Kind != "tuple" {
		t.Fatalf("swapped tuple: got %v, want one tuple mismatch", ms)
	}
	if !strings.Contains(ms[0].String(), "case=") {
		t.Errorf("mismatch string lacks the reproduction recipe: %s", ms[0])
	}
}

// TestCheckApproxDetects doctors LORA-style results and checks the
// approximation contract is actually enforced.
func TestCheckApproxDetects(t *testing.T) {
	c := &Case{Seed: 11, Shape: DefaultShapes()[0], M: 2, Variant: query.CSEQ,
		Params: query.Params{K: 4, Alpha: 0.5, Beta: 3, GridD: 3, Xi: 5}}
	if err := c.Generate(); err != nil {
		t.Fatal(err)
	}
	want := brute.Search(c.DS, c.Q)
	if len(want) < 2 {
		t.Fatalf("need at least 2 results, got %d", len(want))
	}
	if ms := CheckApprox(c, want, want); len(ms) != 0 {
		t.Fatalf("exact results flagged: %v", ms)
	}
	// A tuple that repeats an object is infeasible.
	bad := []topk.Entry{{Tuple: []int32{want[0].Tuple[0], want[0].Tuple[0]}, Sim: want[0].Sim}}
	found := false
	for _, m := range CheckApprox(c, want, bad) {
		if m.Kind == "infeasible" {
			found = true
		}
	}
	if !found {
		t.Error("duplicate-object tuple not flagged as infeasible")
	}
	// A score above the exact optimum violates domination.
	lied := []topk.Entry{{Tuple: append([]int32(nil), want[1].Tuple...), Sim: want[0].Sim + 0.5}}
	kinds := map[string]bool{}
	for _, m := range CheckApprox(c, want, lied) {
		kinds[m.Kind] = true
	}
	if !kinds["score"] || !kinds["dominated"] {
		t.Errorf("inflated score: got kinds %v, want score+dominated", kinds)
	}
}
