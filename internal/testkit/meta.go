package testkit

import (
	"context"
	"fmt"
	"math"

	"spatialseq/internal/algo/brute"
	"spatialseq/internal/algo/hsp"
	"spatialseq/internal/dataset"
	"spatialseq/internal/geo"
	"spatialseq/internal/query"
	"spatialseq/internal/simil"
	"spatialseq/internal/testutil"
)

// MetaTol is the similarity tolerance of the metamorphic checks. Unlike
// the differential comparisons (same kernels, bit-identical), transformed
// coordinates genuinely re-derive every distance, so a few ulps of float
// drift are expected.
const MetaTol = 1e-9

// Transform is a similarity transform of the plane: rotate by Angle
// (radians), scale uniformly by Scale, then translate by (DX, DY). The
// paper's SIMs is a cosine over distance vectors, so it is invariant under
// any such transform applied to both the dataset and the example — and so
// is the β-norm ratio.
type Transform struct {
	Angle  float64
	Scale  float64
	DX, DY float64
}

// Point applies the transform.
func (tf Transform) Point(p geo.Point) geo.Point {
	s, c := math.Sincos(tf.Angle)
	x := p.X*c - p.Y*s
	y := p.X*s + p.Y*c
	return geo.Point{X: x*tf.Scale + tf.DX, Y: y*tf.Scale + tf.DY}
}

// TransformCase applies tf to every dataset object location and every
// example location, returning a rebuilt dataset and a cloned query.
// Categories, attributes, pins and parameters are unchanged; object
// positions are preserved, so result tuples are directly comparable.
func TransformCase(c *Case, tf Transform) (*dataset.Dataset, *query.Query, error) {
	b := &dataset.Builder{}
	for cat := 0; cat < c.DS.NumCategories(); cat++ {
		b.Category(c.DS.CategoryName(dataset.CategoryID(cat)))
	}
	for i := 0; i < c.DS.Len(); i++ {
		o := c.DS.Object(i)
		b.Add(dataset.Object{ID: o.ID, Loc: tf.Point(o.Loc), Category: o.Category, Attr: o.Attr, Name: o.Name})
	}
	tds, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	tq := CloneQuery(c.Q)
	for d := range tq.Example.Locations {
		tq.Example.Locations[d] = tf.Point(tq.Example.Locations[d])
	}
	if err := tq.Validate(tds); err != nil {
		return nil, nil, err
	}
	return tds, tq, nil
}

// CheckTransformInvariance asserts the paper's core model property: the
// result similarities are invariant under a similarity transform of the
// whole scene, and HSP stays brute-exact on the transformed scene. Tuple
// identities are compared only through the score series — an exact tie in
// the original scene can split by a few ulps after transforming, which
// legitimately reorders tied tuples.
func CheckTransformInvariance(ctx context.Context, c *Case, tf Transform) []Mismatch {
	name := fmt.Sprintf("meta-transform(angle=%g,scale=%g)", tf.Angle, tf.Scale)
	base := brute.Search(c.DS, c.Q)
	tds, tq, err := TransformCase(c, tf)
	if err != nil {
		return []Mismatch{{Case: c, Algo: name, Kind: "setup", Detail: err.Error()}}
	}
	tbase := brute.Search(tds, tq)
	var out []Mismatch
	if len(base) != len(tbase) {
		return []Mismatch{{Case: c, Algo: name, Kind: "count",
			Detail: fmt.Sprintf("original has %d results, transformed %d", len(base), len(tbase))}}
	}
	for i := range base {
		if math.Abs(base[i].Sim-tbase[i].Sim) > MetaTol {
			out = append(out, Mismatch{Case: c, Algo: name, Kind: "score",
				Detail: fmt.Sprintf("rank %d: original sim %.17g, transformed %.17g", i, base[i].Sim, tbase[i].Sim)})
		}
	}
	// The exact pipeline must also survive the transformed geometry.
	got, err := hsp.Search(ctx, tds, testutil.BuildIndex(tds), tq, hsp.Options{})
	if err != nil {
		return append(out, Mismatch{Case: c, Algo: name, Kind: "hsp-error", Detail: err.Error()})
	}
	for _, m := range CompareExact(c, name+"/hsp", tbase, got) {
		out = append(out, m)
	}
	return out
}

// CheckPermutationConsistency asserts distance-vector permutation
// consistency: reordering the example dimensions by perm (and remapping
// pins and skip pairs accordingly) must produce the same similarity
// series, and every returned tuple, mapped back to the original dimension
// order, must score identically under the original query. perm[d] names
// the original dimension that becomes dimension d.
func CheckPermutationConsistency(c *Case, perm []int) []Mismatch {
	const name = "meta-permutation"
	m := c.Q.Example.M()
	if len(perm) != m {
		return []Mismatch{{Case: c, Algo: name, Kind: "setup",
			Detail: fmt.Sprintf("perm has %d entries for tuple size %d", len(perm), m)}}
	}
	inv := make([]int, m)
	for d, od := range perm {
		inv[od] = d
	}
	pq := CloneQuery(c.Q)
	ex, oex := &pq.Example, &c.Q.Example
	for d := 0; d < m; d++ {
		ex.Categories[d] = oex.Categories[perm[d]]
		ex.Locations[d] = oex.Locations[perm[d]]
		ex.Attrs[d] = oex.Attrs[perm[d]]
	}
	for i, f := range oex.Fixed {
		ex.Fixed[i] = query.FixedPoint{Dim: inv[f.Dim], Obj: f.Obj}
	}
	for i, sp := range oex.SkipPairs {
		ex.SkipPairs[i] = [2]int{inv[sp[0]], inv[sp[1]]}
	}
	if err := pq.Validate(c.DS); err != nil {
		return []Mismatch{{Case: c, Algo: name, Kind: "setup", Detail: err.Error()}}
	}
	base := brute.Search(c.DS, c.Q)
	got := brute.Search(c.DS, pq)
	if len(base) != len(got) {
		return []Mismatch{{Case: c, Algo: name, Kind: "count",
			Detail: fmt.Sprintf("original has %d results, permuted %d", len(base), len(got))}}
	}
	var out []Mismatch
	sctx := simil.NewContext(c.DS, c.Q)
	mapped := make([]int32, m)
	for i := range base {
		if math.Abs(base[i].Sim-got[i].Sim) > MetaTol {
			out = append(out, Mismatch{Case: c, Algo: name, Kind: "score",
				Detail: fmt.Sprintf("rank %d: original sim %.17g, permuted %.17g", i, base[i].Sim, got[i].Sim)})
			continue
		}
		// The permuted tuple, mapped back to original dimension order,
		// must be feasible and score the same under the original query.
		for d := 0; d < m; d++ {
			mapped[perm[d]] = got[i].Tuple[d]
		}
		sim, ok := sctx.SimOfPositions(mapped)
		if !ok || math.Abs(sim-got[i].Sim) > MetaTol {
			out = append(out, Mismatch{Case: c, Algo: name, Kind: "tuple",
				Detail: fmt.Sprintf("rank %d: permuted tuple %v maps to %v which scores (%.17g, ok=%v) under the original query, reported %.17g",
					i, got[i].Tuple, mapped, sim, ok, got[i].Sim)})
		}
	}
	return out
}

// CheckKMonotonic asserts monotonicity in k: with the deterministic total
// order (similarity desc, tuple key asc), the top-k results must be an
// exact prefix of the top-k2 results for any k2 > k.
func CheckKMonotonic(ctx context.Context, c *Case, k2 int) []Mismatch {
	const name = "meta-k-monotonic"
	if k2 <= c.Q.Params.K {
		return []Mismatch{{Case: c, Algo: name, Kind: "setup",
			Detail: fmt.Sprintf("k2=%d must exceed k=%d", k2, c.Q.Params.K)}}
	}
	small := brute.Search(c.DS, c.Q)
	bigQ := CloneQuery(c.Q)
	bigQ.Params.K = k2
	big := brute.Search(c.DS, bigQ)
	if len(big) < len(small) {
		return []Mismatch{{Case: c, Algo: name, Kind: "count",
			Detail: fmt.Sprintf("k=%d returned %d results but k2=%d returned %d", c.Q.Params.K, len(small), k2, len(big))}}
	}
	var out []Mismatch
	for i := range small {
		// Identical computation on identical data: the prefix must match
		// bit-for-bit, so compare exactly (via Float64bits).
		if math.Float64bits(small[i].Sim) != math.Float64bits(big[i].Sim) || !tuplesEqual(small[i].Tuple, big[i].Tuple) {
			out = append(out, Mismatch{Case: c, Algo: name, Kind: "prefix",
				Detail: fmt.Sprintf("rank %d: top-%d has (%v, %.17g), top-%d has (%v, %.17g)",
					i, c.Q.Params.K, small[i].Tuple, small[i].Sim, k2, big[i].Tuple, big[i].Sim)})
		}
	}
	// HSP must satisfy the same prefix property.
	ix := testutil.BuildIndex(c.DS)
	hs, err := hsp.Search(ctx, c.DS, ix, c.Q, hsp.Options{})
	if err != nil {
		return append(out, Mismatch{Case: c, Algo: name, Kind: "hsp-error", Detail: err.Error()})
	}
	hb, err := hsp.Search(ctx, c.DS, ix, bigQ, hsp.Options{})
	if err != nil {
		return append(out, Mismatch{Case: c, Algo: name, Kind: "hsp-error", Detail: err.Error()})
	}
	for i := range hs {
		if i >= len(hb) || math.Float64bits(hs[i].Sim) != math.Float64bits(hb[i].Sim) || !tuplesEqual(hs[i].Tuple, hb[i].Tuple) {
			out = append(out, Mismatch{Case: c, Algo: name, Kind: "hsp-prefix",
				Detail: fmt.Sprintf("rank %d: HSP top-%d is not a prefix of top-%d", i, c.Q.Params.K, k2)})
			break
		}
	}
	return out
}

// CheckAlphaEndpoints asserts the α-interpolation endpoints: at α = 0 the
// similarity reduces to the mean attribute cosine (pure attribute
// ranking), at α = 1 to the spatial cosine (pure spatial ranking) — and
// HSP stays brute-exact at both extremes, where one of its two bound
// families goes vacuous.
//
// α = 0 is not expressible through Params.Normalize (a zero Alpha selects
// the paper default, by the documented zero-value contract), so the check
// validates the query first and then overrides Params.Alpha — exactly what
// the algorithms see, since they never re-normalize a validated query.
func CheckAlphaEndpoints(ctx context.Context, c *Case) []Mismatch {
	var out []Mismatch
	ix := testutil.BuildIndex(c.DS)
	for _, alpha := range []float64{0, 1} {
		name := fmt.Sprintf("meta-alpha-%g", alpha)
		q := CloneQuery(c.Q)
		if err := q.Validate(c.DS); err != nil {
			return append(out, Mismatch{Case: c, Algo: name, Kind: "setup", Detail: err.Error()})
		}
		q.Params.Alpha = alpha
		want := brute.Search(c.DS, q)
		sctx := simil.NewContext(c.DS, q)
		for i, e := range want {
			var pure float64
			if alpha == 0 {
				var sum float64
				for d, pos := range e.Tuple {
					sum += sctx.AttrSim(d, pos)
				}
				pure = sum / float64(len(e.Tuple))
			} else {
				pure = sctx.SpatialSim(sctx.DistVectorOfPositions(e.Tuple, nil))
			}
			if math.Abs(pure-e.Sim) > MetaTol {
				out = append(out, Mismatch{Case: c, Algo: name, Kind: "endpoint",
					Detail: fmt.Sprintf("rank %d: sim %.17g != pure component %.17g", i, e.Sim, pure)})
			}
		}
		got, err := hsp.Search(ctx, c.DS, ix, q, hsp.Options{})
		if err != nil {
			return append(out, Mismatch{Case: c, Algo: name, Kind: "hsp-error", Detail: err.Error()})
		}
		for _, m := range CompareExact(c, name+"/hsp", want, got) {
			out = append(out, m)
		}
	}
	return out
}

// CheckFixedPointPostFilter asserts that a CSEQ-FP query agrees with the
// post-filtered full CSEQ ranking: rank every feasible tuple of the
// unpinned query, keep those honouring the pins, truncate to k — the
// result must equal the CSEQ-FP search tuple-for-tuple. The full ranking
// needs an unbounded k, which Normalize caps, so (as in
// CheckAlphaEndpoints) the clone is validated first and K overridden
// after.
func CheckFixedPointPostFilter(c *Case) []Mismatch {
	const name = "meta-fixed-point"
	if c.Q.Variant != query.CSEQFP {
		return []Mismatch{{Case: c, Algo: name, Kind: "setup", Detail: "case is not CSEQ-FP"}}
	}
	pinned := brute.Search(c.DS, c.Q)
	full := CloneQuery(c.Q)
	full.Variant = query.CSEQ
	full.Example.Fixed = nil
	if err := full.Validate(c.DS); err != nil {
		return []Mismatch{{Case: c, Algo: name, Kind: "setup", Detail: err.Error()}}
	}
	full.Params.K = math.MaxInt32 // rank everything; see doc comment
	ranking := brute.Search(c.DS, full)
	var filtered []int
	for i, e := range ranking {
		ok := true
		for _, f := range c.Q.Example.Fixed {
			if e.Tuple[f.Dim] != f.Obj {
				ok = false
				break
			}
		}
		if ok {
			filtered = append(filtered, i)
			if len(filtered) == c.Q.Params.K {
				break
			}
		}
	}
	if len(filtered) != len(pinned) {
		return []Mismatch{{Case: c, Algo: name, Kind: "count",
			Detail: fmt.Sprintf("post-filter keeps %d tuples, CSEQ-FP returned %d", len(filtered), len(pinned))}}
	}
	var out []Mismatch
	for i, ri := range filtered {
		// Same kernels, same data: exact (bit-level) agreement is the contract.
		if math.Float64bits(ranking[ri].Sim) != math.Float64bits(pinned[i].Sim) || !tuplesEqual(ranking[ri].Tuple, pinned[i].Tuple) {
			out = append(out, Mismatch{Case: c, Algo: name, Kind: "tuple",
				Detail: fmt.Sprintf("rank %d: post-filtered (%v, %.17g) != CSEQ-FP (%v, %.17g)",
					i, ranking[ri].Tuple, ranking[ri].Sim, pinned[i].Tuple, pinned[i].Sim)})
		}
	}
	return out
}
