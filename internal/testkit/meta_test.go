package testkit

import (
	"context"
	"math"
	"testing"

	"spatialseq/internal/query"
)

// metaCases generates a spread of seeded cases across the default shapes
// and both tuple sizes for the metamorphic checks.
func metaCases(t *testing.T, n int, variant query.Variant) []*Case {
	t.Helper()
	shapes := DefaultShapes()
	out := make([]*Case, 0, n)
	for i := 0; i < n; i++ {
		c := &Case{
			Seed:    mix64(424242, i),
			Shape:   shapes[i%len(shapes)],
			M:       2 + i%2,
			Variant: variant,
			Params: query.Params{
				K:     2 + i%4,
				Alpha: []float64{0.3, 0.5, 1}[i%3],
				Beta:  []float64{1.5, 3}[i%2],
				GridD: 3,
				Xi:    5,
			},
			PinCount: 1,
		}
		if err := c.Generate(); err != nil {
			t.Fatal(err)
		}
		out = append(out, c)
	}
	return out
}

func TestTransformInvariance(t *testing.T) {
	transforms := []Transform{
		{Angle: 0, Scale: 1, DX: 1234.5, DY: -987.25}, // pure translation
		{Angle: math.Pi / 3, Scale: 1},                // pure rotation
		{Angle: 0, Scale: 2.75},                       // pure uniform scaling
		{Angle: -1.1, Scale: 0.35, DX: -50, DY: 300},  // composite
		{Angle: math.Pi, Scale: 17, DX: 1e6, DY: 1e6}, // large offsets
	}
	ctx := context.Background()
	for _, c := range metaCases(t, 9, query.CSEQ) {
		tf := transforms[int(uint64(c.Seed)%uint64(len(transforms)))]
		for _, m := range CheckTransformInvariance(ctx, c, tf) {
			t.Errorf("%s", m)
		}
	}
}

func TestPermutationConsistency(t *testing.T) {
	for i, c := range metaCases(t, 8, query.CSEQ) {
		m := c.Q.Example.M()
		// Exercise every rotation of the dimensions, not just one swap.
		perm := make([]int, m)
		for d := 0; d < m; d++ {
			perm[d] = (d + 1 + i%m) % m
		}
		for _, ms := range CheckPermutationConsistency(c, perm) {
			t.Errorf("%s", ms)
		}
	}
}

func TestPermutationConsistencyFixedPoint(t *testing.T) {
	for _, c := range metaCases(t, 6, query.CSEQFP) {
		if c.Q.Variant != query.CSEQFP {
			continue // pin category was empty; recipe degraded to CSEQ
		}
		m := c.Q.Example.M()
		perm := make([]int, m)
		for d := 0; d < m; d++ {
			perm[d] = m - 1 - d // full reversal moves every pin
		}
		for _, ms := range CheckPermutationConsistency(c, perm) {
			t.Errorf("%s", ms)
		}
	}
}

func TestKMonotonic(t *testing.T) {
	ctx := context.Background()
	for _, c := range metaCases(t, 8, query.CSEQ) {
		for _, ms := range CheckKMonotonic(ctx, c, 2*c.Q.Params.K+3) {
			t.Errorf("%s", ms)
		}
	}
}

func TestAlphaEndpoints(t *testing.T) {
	ctx := context.Background()
	for _, c := range metaCases(t, 8, query.CSEQ) {
		for _, ms := range CheckAlphaEndpoints(ctx, c) {
			t.Errorf("%s", ms)
		}
	}
}

func TestFixedPointPostFilter(t *testing.T) {
	ran := 0
	for _, c := range metaCases(t, 9, query.CSEQFP) {
		if c.Q.Variant != query.CSEQFP {
			continue
		}
		ran++
		for _, ms := range CheckFixedPointPostFilter(c) {
			t.Errorf("%s", ms)
		}
	}
	if ran == 0 {
		t.Fatal("no CSEQ-FP case survived generation; widen the recipe spread")
	}
}

// TestTransformCaseRejectsNothing double-checks the transform plumbing
// itself: positions, categories and pins must be preserved verbatim.
func TestTransformCasePreservesStructure(t *testing.T) {
	c := metaCases(t, 3, query.CSEQFP)[0]
	tf := Transform{Angle: 0.7, Scale: 1.3, DX: 10, DY: -4}
	tds, tq, err := TransformCase(c, tf)
	if err != nil {
		t.Fatal(err)
	}
	if tds.Len() != c.DS.Len() {
		t.Fatalf("object count changed: %d -> %d", c.DS.Len(), tds.Len())
	}
	for i := 0; i < tds.Len(); i++ {
		if tds.Category(i) != c.DS.Category(i) {
			t.Fatalf("object %d changed category", i)
		}
		want := tf.Point(c.DS.Loc(i))
		if got := tds.Loc(i); got != want {
			t.Fatalf("object %d at %v, want %v", i, got, want)
		}
	}
	if len(tq.Example.Fixed) != len(c.Q.Example.Fixed) {
		t.Fatal("pins changed")
	}
}
