package testkit

import (
	"context"
	"testing"

	"spatialseq/internal/query"
)

// TestStealDifferentialSuite is the differential gate for the
// work-stealing scheduler: every fifth query additionally re-runs the
// parallel HSP and LORA paths with the chunk size forced to 1 (each
// dim-0 candidate its own steal unit), a small odd size, and -1
// (whole-subspace units). HSP must match the brute oracle
// tuple-for-tuple at every granularity; LORA must keep its
// approximation contract.
func TestStealDifferentialSuite(t *testing.T) {
	rep, err := RunDiff(context.Background(), DiffConfig{
		Seed:            20260808,
		Queries:         120,
		FixedPointEvery: 3,
		SEQEvery:        7,
		ParallelEvery:   5,
		StealChunkSizes: []int{1, 3, -1},
		CheckLORA:       true,
		Shrink:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != 120 {
		t.Fatalf("ran %d queries, want 120", rep.Queries)
	}
	for _, v := range []string{query.CSEQ.String(), query.CSEQFP.String(), query.SEQ.String()} {
		if rep.ByVariant[v] == 0 {
			t.Errorf("variant %s never exercised: %v", v, rep.ByVariant)
		}
	}
	for _, m := range rep.Mismatches {
		t.Errorf("steal differential mismatch: %s", m)
	}
}
