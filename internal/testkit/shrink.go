package testkit

import (
	"spatialseq/internal/dataset"
	"spatialseq/internal/query"
)

// FailFunc reports whether a concrete (dataset, query) pair still exhibits
// the failure being minimized. Shrink only adopts reductions for which the
// query validates against the reduced dataset AND FailFunc stays true, so
// implementations may assume a validated input.
type FailFunc func(ds *dataset.Dataset, q *query.Query) bool

// Shrink reduces a failing (dataset, query) pair to a (locally) minimal
// counterexample, ddmin-style. Per round it tries, in order: halving k,
// dropping example dimensions (down to 2), and removing dataset objects in
// geometrically shrinking chunks (down to single objects, remapping pinned
// positions). It stops after maxRounds rounds or when a round makes no
// progress. The inputs are never mutated; the returned pair is independent
// of them.
func Shrink(ds *dataset.Dataset, q *query.Query, fails FailFunc, maxRounds int) (*dataset.Dataset, *query.Query) {
	cur, curQ := ds, CloneQuery(q)
	if maxRounds <= 0 {
		maxRounds = 4
	}
	for round := 0; round < maxRounds; round++ {
		progress := false
		if nq, ok := shrinkK(cur, curQ, fails); ok {
			curQ, progress = nq, true
		}
		if nq, ok := shrinkDims(cur, curQ, fails); ok {
			curQ, progress = nq, true
		}
		if nds, nq, ok := shrinkObjects(cur, curQ, fails); ok {
			cur, curQ, progress = nds, nq, true
		}
		if !progress {
			break
		}
	}
	return cur, curQ
}

// adopt validates the candidate and re-checks the failure. Validate
// normalizes parameters in place, which is fine: candidates are clones.
func adopt(ds *dataset.Dataset, q *query.Query, fails FailFunc) bool {
	if err := q.Validate(ds); err != nil {
		return false
	}
	return fails(ds, q)
}

// shrinkK repeatedly halves the result count toward 1.
func shrinkK(ds *dataset.Dataset, q *query.Query, fails FailFunc) (*query.Query, bool) {
	cur, ok := q, false
	for cur.Params.K > 1 {
		cand := CloneQuery(cur)
		cand.Params.K = cur.Params.K / 2
		if !adopt(ds, cand, fails) {
			break
		}
		cur, ok = cand, true
	}
	return cur, ok
}

// shrinkDims tries dropping each example dimension while at least 2
// remain, remapping fixed points and skip pairs.
func shrinkDims(ds *dataset.Dataset, q *query.Query, fails FailFunc) (*query.Query, bool) {
	cur, ok := q, false
	for cur.Example.M() > 2 {
		dropped := false
		for d := 0; d < cur.Example.M(); d++ {
			cand := dropDim(cur, d)
			if adopt(ds, cand, fails) {
				cur, ok, dropped = cand, true, true
				break
			}
		}
		if !dropped {
			break
		}
	}
	return cur, ok
}

// dropDim returns a clone of q without example dimension d: fixed points
// and skip pairs referencing d are dropped, higher dimensions shift down.
func dropDim(q *query.Query, d int) *query.Query {
	out := CloneQuery(q)
	ex := &out.Example
	ex.Categories = append(ex.Categories[:d], ex.Categories[d+1:]...)
	ex.Locations = append(ex.Locations[:d], ex.Locations[d+1:]...)
	ex.Attrs = append(ex.Attrs[:d], ex.Attrs[d+1:]...)
	var fixed []query.FixedPoint
	for _, f := range ex.Fixed {
		switch {
		case f.Dim == d:
		case f.Dim > d:
			fixed = append(fixed, query.FixedPoint{Dim: f.Dim - 1, Obj: f.Obj})
		default:
			fixed = append(fixed, f)
		}
	}
	ex.Fixed = fixed
	var pairs [][2]int
	for _, sp := range ex.SkipPairs {
		if sp[0] == d || sp[1] == d {
			continue
		}
		a, b := sp[0], sp[1]
		if a > d {
			a--
		}
		if b > d {
			b--
		}
		pairs = append(pairs, [2]int{a, b})
	}
	ex.SkipPairs = pairs
	if out.Variant == query.CSEQFP && len(ex.Fixed) == 0 {
		out.Variant = query.CSEQ
	}
	return out
}

// shrinkObjects removes dataset objects ddmin-style: chunks of halving
// size, then single objects. Pinned objects are remapped to their new
// positions; a chunk containing a pinned object is skipped.
func shrinkObjects(ds *dataset.Dataset, q *query.Query, fails FailFunc) (*dataset.Dataset, *query.Query, bool) {
	cur, curQ, ok := ds, q, false
	for chunk := cur.Len() / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start < cur.Len(); {
			end := start + chunk
			if end > cur.Len() {
				end = cur.Len()
			}
			nds, nq, valid := removeRange(cur, curQ, start, end)
			if valid && adopt(nds, nq, fails) {
				cur, curQ, ok = nds, nq, true
				// positions shifted; retry the same start against the
				// reduced dataset
				continue
			}
			start = end
		}
	}
	return cur, curQ, ok
}

// removeRange rebuilds ds without positions [start,end) and remaps the
// query's pinned positions. valid is false when a pinned object falls in
// the removed range or the dataset would become smaller than the tuple
// size.
func removeRange(ds *dataset.Dataset, q *query.Query, start, end int) (*dataset.Dataset, *query.Query, bool) {
	n := ds.Len()
	removed := end - start
	if n-removed < q.Example.M() {
		return nil, nil, false
	}
	for _, f := range q.Example.Fixed {
		if int(f.Obj) >= start && int(f.Obj) < end {
			return nil, nil, false
		}
	}
	b := &dataset.Builder{}
	for c := 0; c < ds.NumCategories(); c++ {
		b.Category(ds.CategoryName(dataset.CategoryID(c)))
	}
	for i := 0; i < n; i++ {
		if i >= start && i < end {
			continue
		}
		o := ds.Object(i)
		b.Add(dataset.Object{ID: o.ID, Loc: o.Loc, Category: o.Category, Attr: o.Attr, Name: o.Name})
	}
	nds, err := b.Build()
	if err != nil {
		return nil, nil, false
	}
	nq := CloneQuery(q)
	for i, f := range nq.Example.Fixed {
		if int(f.Obj) >= end {
			nq.Example.Fixed[i].Obj = f.Obj - int32(removed)
		}
	}
	return nds, nq, true
}
