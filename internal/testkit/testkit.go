// Package testkit is the repo's reusable property-testing subsystem: the
// correctness substrate every optimisation PR is validated against.
//
// It provides three tiers of checks over the whole query stack:
//
//   - differential: brute force is the oracle; HSP (sequential and
//     parallel) and DFS-Prune must agree tuple-for-tuple, and LORA's
//     results must be feasible, β-constraint-valid and score-dominated by
//     the exact top-k (RunDiff / CheckCase);
//   - metamorphic: invariants derived from the paper's similarity model —
//     SIMs invariance under translation/rotation/uniform scaling,
//     dimension-permutation consistency, monotonicity in k, the α = 0/1
//     interpolation endpoints, and fixed-point queries agreeing with
//     post-filtered CSEQ (meta.go);
//   - fuzzing: FuzzSearch drives the differential checker from
//     fuzzer-chosen seeds and parameters (fuzz_test.go), alongside
//     FuzzDistVector (internal/geo) and FuzzServerDecode
//     (internal/server).
//
// Every scenario is a seeded Case: the same (Seed, Shape, M, Params,
// Variant) always regenerates the same dataset and query, so a failure
// report is a reproduction recipe. Shrink reduces a failing case to a
// minimal counterexample (fewer objects, fewer dimensions, smaller k).
package testkit

import (
	"fmt"
	"math/rand"
	"strings"

	"spatialseq/internal/dataset"
	"spatialseq/internal/geo"
	"spatialseq/internal/query"
	"spatialseq/internal/testutil"
)

// Shape names one dataset family the differential suite sweeps.
type Shape struct {
	Name string
	Spec testutil.DatasetSpec
}

// DefaultShapes returns the three dataset shapes the differential suite
// runs against: uniform categories, Zipf-skewed categories (one dominant
// category stresses dense candidate lists), and a zero-attribute mix (the
// zero-norm cosine conventions and heavy score ties).
func DefaultShapes() []Shape {
	return []Shape{
		{Name: "uniform", Spec: testutil.DatasetSpec{N: 42, Categories: 3, AttrDim: 4, Extent: 100}},
		{Name: "skewed", Spec: testutil.DatasetSpec{N: 60, Categories: 5, AttrDim: 3, Extent: 100, CategorySkew: 1.2}},
		{Name: "zero-attr", Spec: testutil.DatasetSpec{N: 48, Categories: 2, AttrDim: 4, Extent: 60, ZeroAttrFrac: 0.3}},
	}
}

// Case is one reproducible differential scenario: the generation recipe
// plus, after Generate, the materialized dataset and query.
type Case struct {
	Seed    int64
	Shape   Shape
	M       int
	Variant query.Variant
	Params  query.Params
	// PinCount is how many dimensions Generate pins to dataset objects
	// when Variant is CSEQFP (0 means 1).
	PinCount int

	DS *dataset.Dataset
	Q  *query.Query
}

// Generate materializes the dataset and query from the recipe. A CSEQ-FP
// case whose pinned categories turn out empty degrades to plain CSEQ (the
// recipe stays reproducible either way). The returned query is validated.
func (c *Case) Generate() error {
	rng := rand.New(rand.NewSource(c.Seed))
	c.DS = testutil.RandDatasetSpec(rng, c.Shape.Spec)
	scale := c.Shape.Spec.Extent * 0.3
	c.Q = testutil.RandQuery(rng, c.DS, c.M, scale, c.Params)
	c.Q.Variant = c.Variant
	if c.Variant == query.CSEQFP {
		pins := c.PinCount
		if pins < 1 {
			pins = 1
		}
		if pins > c.M {
			pins = c.M
		}
		dims := rng.Perm(c.M)[:pins]
		if !testutil.PinDims(rng, c.DS, c.Q, dims...) {
			c.Variant = query.CSEQ
			c.Q.Variant = query.CSEQ
		}
	}
	if err := c.Q.Validate(c.DS); err != nil {
		return fmt.Errorf("testkit: case %s generated an invalid query: %w", c, err)
	}
	return nil
}

// String renders the reproduction recipe (not the materialized data).
func (c *Case) String() string {
	return fmt.Sprintf("{Seed: %d, Shape: %s, M: %d, Variant: %s, Params: %+v, PinCount: %d}",
		c.Seed, c.Shape.Name, c.M, c.Variant, c.Params, c.PinCount)
}

// FormatCase renders a concrete (dataset, query) pair as text — the
// payload attached to a shrunk counterexample so it can be reconstructed
// in a regression test without re-running the generator.
func FormatCase(ds *dataset.Dataset, q *query.Query) string {
	var b strings.Builder
	fmt.Fprintf(&b, "dataset: %d objects, %d categories, attrDim %d\n",
		ds.Len(), ds.NumCategories(), ds.AttrDim())
	for i := 0; i < ds.Len(); i++ {
		loc := ds.Loc(i)
		fmt.Fprintf(&b, "  obj %d: cat=%s loc=(%.17g,%.17g) attr=%v\n",
			i, ds.CategoryName(ds.Category(i)), loc.X, loc.Y, ds.Attr(i))
	}
	fmt.Fprintf(&b, "query: variant=%s params=%+v\n", q.Variant, q.Params)
	for d := 0; d < q.Example.M(); d++ {
		fmt.Fprintf(&b, "  dim %d: cat=%s loc=(%.17g,%.17g) attr=%v\n",
			d, ds.CategoryName(q.Example.Categories[d]),
			q.Example.Locations[d].X, q.Example.Locations[d].Y, q.Example.Attrs[d])
	}
	if len(q.Example.Fixed) > 0 {
		fmt.Fprintf(&b, "  fixed: %v\n", q.Example.Fixed)
	}
	if len(q.Example.SkipPairs) > 0 {
		fmt.Fprintf(&b, "  skip-pairs: %v\n", q.Example.SkipPairs)
	}
	return b.String()
}

// mix64 derives a per-case seed from a suite seed and an index with a
// SplitMix64 round, so neighbouring indices land in unrelated rng streams.
func mix64(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// CloneQuery returns a deep copy of q: the metamorphic transforms mutate
// examples and parameters without touching the caller's query.
func CloneQuery(q *query.Query) *query.Query {
	out := &query.Query{Variant: q.Variant, Params: q.Params}
	ex := &q.Example
	out.Example = query.Example{
		Categories: append([]dataset.CategoryID(nil), ex.Categories...),
		Locations:  append([]geo.Point(nil), ex.Locations...),
		Metric:     ex.Metric,
	}
	out.Example.Attrs = make([][]float64, len(ex.Attrs))
	for i, a := range ex.Attrs {
		out.Example.Attrs[i] = append([]float64(nil), a...)
	}
	if ex.Fixed != nil {
		out.Example.Fixed = append([]query.FixedPoint(nil), ex.Fixed...)
	}
	if ex.SkipPairs != nil {
		out.Example.SkipPairs = append([][2]int(nil), ex.SkipPairs...)
	}
	return out
}
