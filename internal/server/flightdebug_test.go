package server

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"spatialseq/internal/core"
	"spatialseq/internal/dataset"
	"spatialseq/internal/obs/flight"
	"spatialseq/internal/testutil"
)

// newFlightTestServer builds a server whose recorder retains everything
// (1ns floor: every query is slow and carries a capture).
func newFlightTestServer(t *testing.T) (*httptest.Server, *dataset.Dataset, *flight.Recorder) {
	t.Helper()
	rng := rand.New(rand.NewSource(73))
	ds := testutil.RandDataset(rng, 400, 3, 4, 100)
	rec := flight.New(flight.Config{
		Floor:       time.Nanosecond,
		KeepSlowest: 8,
		Dataset:     flight.DatasetInfo{Kind: "synth", Family: "gaode", N: 400, Seed: 73},
	})
	srv := NewWith(core.NewEngine(ds), Config{Flight: rec})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, ds, rec
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestXRequestIDHonored(t *testing.T) {
	ts, _ := newTestServer(t)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "upstream-id_1.2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "upstream-id_1.2" {
		t.Errorf("valid client request ID replaced: got %q", got)
	}
}

func TestXRequestIDRejected(t *testing.T) {
	ts, _ := newTestServer(t)
	minted := regexp.MustCompile(`^[0-9a-f]{16}$`)
	for _, bad := range []string{
		"has spaces",
		"semi;colon",
		strings.Repeat("x", 65),
		"quote\"break",
	} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		req.Header.Set("X-Request-ID", bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		got := resp.Header.Get("X-Request-ID")
		if got == bad || !minted.MatchString(got) {
			t.Errorf("invalid client ID %q produced response ID %q, want a minted 16-hex ID", bad, got)
		}
	}
}

func TestDebugQueriesJSON(t *testing.T) {
	ts, ds, _ := newFlightTestServer(t)
	// One engine run (miss), then the identical query again (hit).
	for i := 0; i < 2; i++ {
		resp, body := postSearch(t, ts, searchReq(ds))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search %d status = %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, body := getBody(t, ts.URL+"/debug/queries")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q", ct)
	}
	var dq debugQueriesResponse
	if err := json.Unmarshal(body, &dq); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	if dq.Observed != 2 {
		t.Errorf("observed = %d, want 2 (one miss, one hit)", dq.Observed)
	}
	if !dq.ThresholdActive || dq.ThresholdMS <= 0 {
		t.Errorf("threshold = (%v, %v), want an active floor", dq.ThresholdActive, dq.ThresholdMS)
	}
	hits, misses := 0, 0
	for _, r := range dq.Recent {
		if r.CacheHit {
			hits++
		} else {
			misses++
		}
	}
	if hits != 1 || misses != 1 {
		t.Errorf("recent records: %d hits, %d misses, want 1/1", hits, misses)
	}
	for _, r := range dq.Recent {
		if !r.CacheHit && len(r.Phases) == 0 {
			t.Error("engine-run record carries no phase timings")
		}
		if r.RequestID == "" {
			t.Error("record has no request ID")
		}
	}

	// ?n= limits both lists.
	_, body = getBody(t, ts.URL+"/debug/queries?n=1")
	var limited debugQueriesResponse
	if err := json.Unmarshal(body, &limited); err != nil {
		t.Fatal(err)
	}
	if len(limited.Recent) != 1 || len(limited.Slowest) != 1 {
		t.Errorf("n=1 returned %d recent, %d slowest", len(limited.Recent), len(limited.Slowest))
	}
	if resp, _ := getBody(t, ts.URL+"/debug/queries?n=zero"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n status = %d", resp.StatusCode)
	}
}

func TestDebugQueriesHTML(t *testing.T) {
	ts, ds, _ := newFlightTestServer(t)
	if resp, body := postSearch(t, ts, searchReq(ds)); resp.StatusCode != http.StatusOK {
		t.Fatalf("search status = %d: %s", resp.StatusCode, body)
	}
	resp, body := getBody(t, ts.URL+"/debug/queries?format=html")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("Content-Type = %q", ct)
	}
	page := string(body)
	for _, want := range []string{"query flight recorder", "<table>", "hsp"} {
		if !strings.Contains(page, want) {
			t.Errorf("HTML page missing %q", want)
		}
	}
	if resp, _ := getBody(t, ts.URL+"/debug/queries?format=xml"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format status = %d", resp.StatusCode)
	}
}

func TestDebugCaptureEndpoint(t *testing.T) {
	ts, ds, _ := newFlightTestServer(t)
	if resp, body := postSearch(t, ts, searchReq(ds)); resp.StatusCode != http.StatusOK {
		t.Fatalf("search status = %d: %s", resp.StatusCode, body)
	}
	resp, body := getBody(t, ts.URL+"/debug/queries/capture")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var cf flight.CaptureFile
	if err := json.Unmarshal(body, &cf); err != nil {
		t.Fatalf("capture not JSON: %v", err)
	}
	if cf.Schema != flight.CaptureSchemaVersion {
		t.Errorf("schema = %d", cf.Schema)
	}
	if cf.Dataset.Kind != "synth" || cf.Dataset.Family != "gaode" {
		t.Errorf("dataset provenance = %+v", cf.Dataset)
	}
	if len(cf.Records) == 0 {
		t.Fatal("capture holds no records although every query is slow")
	}
	for _, r := range cf.Records {
		if r.Capture == nil {
			t.Error("exported record has no capture payload")
		}
	}
}

func TestFlightAndProcessMetricsExposed(t *testing.T) {
	ts, ds, _ := newFlightTestServer(t)
	if resp, body := postSearch(t, ts, searchReq(ds)); resp.StatusCode != http.StatusOK {
		t.Fatalf("search status = %d: %s", resp.StatusCode, body)
	}
	_, body := getBody(t, ts.URL+"/metrics")
	text := string(body)
	for _, want := range []string{
		"spatialseq_build_info{revision=",
		"spatialseq_uptime_seconds ",
		"spatialseq_goroutines ",
		"spatialseq_trace_phases_dropped_total 0",
		"spatialseq_slow_query_threshold_seconds ",
		"spatialseq_query_latency_p99_seconds ",
		"spatialseq_flight_observed 1",
		"spatialseq_flight_slow 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestDebugQueriesConcurrent(t *testing.T) {
	ts, ds, _ := newFlightTestServer(t)
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 10; j++ {
				resp, body := postSearch(t, ts, searchReq(ds))
				if resp.StatusCode != http.StatusOK {
					t.Errorf("search status = %d: %s", resp.StatusCode, body)
					return
				}
			}
		}()
	}
	for i := 0; i < 2; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 20; j++ {
				if resp, _ := getBody(t, ts.URL+"/debug/queries"); resp.StatusCode != http.StatusOK {
					t.Errorf("debug status = %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	for i := 0; i < 6; i++ {
		<-done
	}
	_, body := getBody(t, ts.URL+"/debug/queries")
	var dq debugQueriesResponse
	if err := json.Unmarshal(body, &dq); err != nil {
		t.Fatal(err)
	}
	if dq.Observed != 40 {
		t.Errorf("observed = %d, want 40", dq.Observed)
	}
}
