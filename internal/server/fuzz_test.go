package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"spatialseq/internal/core"
	"spatialseq/internal/testutil"
)

// The fuzz server is shared across iterations (the engine is stateless
// between requests apart from the query cache, which is itself
// concurrency-safe); building a dataset per input would drown the fuzzer.
var (
	fuzzOnce sync.Once
	fuzzTS   *httptest.Server
)

func fuzzServer() *httptest.Server {
	fuzzOnce.Do(func() {
		rng := rand.New(rand.NewSource(7))
		ds := testutil.RandDataset(rng, 60, 3, 4, 100)
		srv := NewWith(core.NewEngine(ds), Config{Timeout: 250 * time.Millisecond})
		fuzzTS = httptest.NewServer(srv)
	})
	return fuzzTS
}

// FuzzServerDecode throws arbitrary request bodies at the two POST
// endpoints. The contract under fuzzing: the server never panics (a panic
// kills the shared httptest server and every later request fails), always
// answers 200, 400 or 504, and always produces a JSON body — malformed
// input must come back as a structured error, never as a raw stack trace
// or an empty reply.
func FuzzServerDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"algorithm":"hsp","k":3,"beta":5,"example":[{"x":1,"y":2,"category":"c0"},{"x":3,"y":4,"category":"c1"}]}`))
	f.Add([]byte(`{"algorithm":"zzz","example":[{"category":"c0"},{"category":"c0"}]}`))
	f.Add([]byte(`{"k":-5,"alpha":7,"beta":0.01,"example":[{"category":"c0"},{"category":"c1"}]}`))
	f.Add([]byte(`{"k":1000000000,"grid_d":1000000000,"example":[{"category":"c0"},{"category":"c1"}]}`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`{"x":1e999}`))
	f.Add([]byte(`{"category":"c0","k":3}`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, body []byte) {
		ts := fuzzServer()
		for _, path := range []string{"/search", "/snap"} {
			resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatalf("%s: transport error (did a previous input kill the server?): %v", path, err)
			}
			var buf bytes.Buffer
			_, rerr := buf.ReadFrom(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				t.Fatalf("%s: reading response: %v", path, rerr)
			}
			switch resp.StatusCode {
			case http.StatusOK, http.StatusBadRequest, http.StatusGatewayTimeout:
			default:
				t.Fatalf("%s: status %d for body %q", path, resp.StatusCode, body)
			}
			if !json.Valid(buf.Bytes()) {
				t.Fatalf("%s: non-JSON response %q for body %q", path, buf.Bytes(), body)
			}
		}
	})
}
