package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"spatialseq/internal/core"
	"spatialseq/internal/dataset"
	"spatialseq/internal/obs"
	"spatialseq/internal/testutil"
)

func searchReq(ds *dataset.Dataset) SearchRequest {
	o1, o2 := ds.Object(0), ds.Object(1)
	return SearchRequest{
		Algorithm: "hsp",
		K:         3,
		Beta:      5,
		Example: []ExampleObject{
			{X: o1.Loc.X, Y: o1.Loc.Y, Category: ds.CategoryName(o1.Category)},
			{X: o2.Loc.X, Y: o2.Loc.Y, Category: ds.CategoryName(o2.Category)},
		},
	}
}

// expositionLine matches one valid Prometheus text-format line (comment
// or sample).
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9+\-.eEInf]+)$`)

func TestMetricsEndpoint(t *testing.T) {
	ts, ds := newTestServer(t)
	resp, body := postSearch(t, ts, searchReq(ds))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status = %d: %s", resp.StatusCode, body)
	}
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	if mr.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", mr.StatusCode)
	}
	if ct := mr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mr.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
	wantLines := []string{
		// the /metrics request itself is in flight while rendering
		`spatialseq_http_in_flight_requests 1`,
		`spatialseq_http_requests_total{endpoint="/search",code="200"} 1`,
		`spatialseq_search_duration_seconds_bucket{algorithm="hsp",le="+Inf"} 1`,
		`spatialseq_search_duration_seconds_count{algorithm="hsp"} 1`,
		`spatialseq_qcache_misses 1`,
		`spatialseq_qcache_hits 0`,
		`spatialseq_qcache_evictions 0`,
		`spatialseq_qcache_entries 1`,
	}
	for _, want := range wantLines {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// the engine ran once, so work counters must be populated
	for _, counter := range []string{"subspaces", "candidates", "tuples"} {
		if !strings.Contains(text, `spatialseq_search_work_total{counter="`+counter+`"}`) {
			t.Errorf("metrics output missing work counter %q", counter)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, path := range []string{"/healthz", "/stats", "/categories", "/metrics"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		var er errorResponse
		err = json.NewDecoder(resp.Body).Decode(&er)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status = %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
			t.Errorf("POST %s: Allow = %q, want GET", path, allow)
		}
		if err != nil || er.Error == "" {
			t.Errorf("POST %s: expected JSON error body, got err=%v", path, err)
		}
	}
	for _, path := range []string{"/search", "/snap"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status = %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
			t.Errorf("GET %s: Allow = %q, want POST", path, allow)
		}
	}
}

func TestSearchIncludeStats(t *testing.T) {
	ts, ds := newTestServer(t)
	req := searchReq(ds)
	req.IncludeStats = true
	for round := 0; round < 2; round++ {
		resp, body := postSearch(t, ts, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d: %s", resp.StatusCode, body)
		}
		// include_stats must always describe this execution, so even a
		// repeat request bypasses the cache
		if got := resp.Header.Get("X-Cache"); got != "bypass" {
			t.Errorf("round %d: X-Cache = %q, want bypass", round, got)
		}
		var sr SearchResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Stats == nil {
			t.Fatal("stats missing from response")
		}
		if len(sr.Stats.Phases) == 0 {
			t.Fatal("phases missing from response")
		}
		var sum float64
		for _, p := range sr.Stats.Phases {
			if p.DurationMS < 0 {
				t.Errorf("phase %s: negative duration %g", p.Name, p.DurationMS)
			}
			if p.Count <= 0 {
				t.Errorf("phase %s: count = %d", p.Name, p.Count)
			}
			sum += p.DurationMS
		}
		if sum <= 0 {
			t.Error("phase durations sum to zero")
		}
		if sum > sr.ElapsedMS+0.05 {
			t.Errorf("phase sum %.4fms exceeds elapsed %.4fms", sum, sr.ElapsedMS)
		}
		if sr.Stats.Work.Tuples == 0 {
			t.Error("work counters all zero")
		}
	}

	// without include_stats the field stays absent
	req.IncludeStats = false
	_, body := postSearch(t, ts, req)
	if bytes.Contains(body, []byte(`"stats"`)) {
		t.Errorf("stats present without include_stats: %s", body)
	}
}

func TestRequestIDHeader(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Errorf("X-Request-ID = %q", id)
	}
}

func TestRequestLog(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ds := testutil.RandDataset(rng, 200, 3, 4, 100)
	var buf bytes.Buffer
	srv := NewWith(core.NewEngine(ds), Config{Logger: obs.NewLogger(&buf, slog.LevelInfo)})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var rec struct {
		Msg        string  `json:"msg"`
		ID         string  `json:"id"`
		Method     string  `json:"method"`
		Path       string  `json:"path"`
		Status     int     `json:"status"`
		Bytes      int64   `json:"bytes"`
		DurationMS float64 `json:"duration_ms"`
	}
	found := false
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q", line)
		}
		if rec.Msg == "request" && rec.Path == "/healthz" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no request log record for /healthz in %q", buf.String())
	}
	if rec.Method != http.MethodGet || rec.Status != http.StatusOK {
		t.Errorf("log record = %+v", rec)
	}
	if rec.ID != resp.Header.Get("X-Request-ID") {
		t.Errorf("log id %q != header id %q", rec.ID, resp.Header.Get("X-Request-ID"))
	}
	if rec.Bytes == 0 || rec.DurationMS < 0 {
		t.Errorf("log record = %+v", rec)
	}
}

func TestPprofGate(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ds := testutil.RandDataset(rng, 100, 3, 4, 100)
	eng := core.NewEngine(ds)

	off := httptest.NewServer(New(eng))
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status = %d, want 404", resp.StatusCode)
	}

	on := httptest.NewServer(NewWith(eng, Config{EnablePprof: true}))
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: status = %d, want 200", resp.StatusCode)
	}
}
