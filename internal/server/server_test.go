package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"spatialseq/internal/core"
	"spatialseq/internal/dataset"
	"spatialseq/internal/testutil"
)

func newTestServer(t *testing.T) (*httptest.Server, *dataset.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(71))
	ds := testutil.RandDataset(rng, 400, 3, 4, 100)
	srv := New(core.NewEngine(ds))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, ds
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestStats(t *testing.T) {
	ts, ds := newTestServer(t)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Objects != ds.Len() || st.Categories != ds.NumCategories() || st.AttrDim != ds.AttrDim() {
		t.Errorf("stats = %+v", st)
	}
}

func postSearch(t *testing.T, ts *httptest.Server, req SearchRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestSearchHappyPath(t *testing.T) {
	ts, ds := newTestServer(t)
	o1 := ds.Object(0)
	o2 := ds.Object(1)
	req := SearchRequest{
		Algorithm: "hsp",
		K:         3,
		Beta:      5,
		Example: []ExampleObject{
			{X: o1.Loc.X, Y: o1.Loc.Y, Category: ds.CategoryName(o1.Category)},
			{X: o2.Loc.X, Y: o2.Loc.Y, Category: ds.CategoryName(o2.Category)},
		},
	}
	resp, body := postSearch(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
	}
	var sr SearchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Algorithm != "hsp" || sr.Variant != "CSEQ" {
		t.Errorf("response meta = %+v", sr)
	}
	if len(sr.Results) == 0 {
		t.Fatal("expected results")
	}
	for _, r := range sr.Results {
		if len(r.Objects) != 2 {
			t.Errorf("result has %d objects", len(r.Objects))
		}
		if r.Sim <= 0 || r.Sim > 1 {
			t.Errorf("sim = %g", r.Sim)
		}
	}
	// results ordered best-first
	for i := 1; i < len(sr.Results); i++ {
		if sr.Results[i].Sim > sr.Results[i-1].Sim {
			t.Error("results not ordered by similarity")
		}
	}
}

func TestSearchFixedPoint(t *testing.T) {
	ts, ds := newTestServer(t)
	o1 := ds.Object(0)
	o2 := ds.Object(1)
	id := o1.ID
	req := SearchRequest{
		Variant: "cseq-fp",
		K:       3,
		Beta:    5,
		Example: []ExampleObject{
			{X: o1.Loc.X, Y: o1.Loc.Y, Category: ds.CategoryName(o1.Category), FixedID: &id},
			{X: o2.Loc.X, Y: o2.Loc.Y, Category: ds.CategoryName(o2.Category)},
		},
	}
	resp, body := postSearch(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
	}
	var sr SearchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	for _, r := range sr.Results {
		if r.Objects[0].ID != id {
			t.Errorf("result does not honour fixed_id: %+v", r.Objects[0])
		}
	}
}

func TestSearchRejectsBadRequests(t *testing.T) {
	ts, ds := newTestServer(t)
	o1 := ds.Object(0)
	cases := []struct {
		name string
		req  SearchRequest
	}{
		{"too few example objects", SearchRequest{Example: []ExampleObject{{Category: ds.CategoryName(o1.Category)}}}},
		{"unknown category", SearchRequest{Example: []ExampleObject{
			{Category: "nope"}, {Category: "nope"},
		}}},
		{"unknown variant", SearchRequest{Variant: "zzz", Example: []ExampleObject{
			{Category: ds.CategoryName(o1.Category)}, {Category: ds.CategoryName(o1.Category)},
		}}},
		{"unknown algorithm", SearchRequest{Algorithm: "zzz", Example: []ExampleObject{
			{X: 1, Y: 1, Category: ds.CategoryName(o1.Category)}, {X: 2, Y: 2, Category: ds.CategoryName(o1.Category)},
		}}},
		{"bad beta", SearchRequest{Beta: 0.1, Example: []ExampleObject{
			{X: 1, Y: 1, Category: ds.CategoryName(o1.Category)}, {X: 2, Y: 2, Category: ds.CategoryName(o1.Category)},
		}}},
	}
	for _, c := range cases {
		resp, body := postSearch(t, ts, c.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, body = %s", c.name, resp.StatusCode, body)
		}
	}
}

func TestCategories(t *testing.T) {
	ts, ds := newTestServer(t)
	resp, err := http.Get(ts.URL + "/categories")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cats []CategoryInfo
	if err := json.NewDecoder(resp.Body).Decode(&cats); err != nil {
		t.Fatal(err)
	}
	if len(cats) != ds.NumCategories() {
		t.Fatalf("got %d categories, want %d", len(cats), ds.NumCategories())
	}
	total := 0
	for _, c := range cats {
		if c.Name == "" {
			t.Error("category name missing")
		}
		total += c.Count
	}
	if total != ds.Len() {
		t.Errorf("counts sum to %d, want %d", total, ds.Len())
	}
}

func TestSearchGeoJSONFormat(t *testing.T) {
	ts, ds := newTestServer(t)
	o1, o2 := ds.Object(0), ds.Object(1)
	req := SearchRequest{
		Format: "geojson",
		K:      2,
		Beta:   5,
		Example: []ExampleObject{
			{X: o1.Loc.X, Y: o1.Loc.Y, Category: ds.CategoryName(o1.Category)},
			{X: o2.Loc.X, Y: o2.Loc.Y, Category: ds.CategoryName(o2.Category)},
		},
	}
	resp, body := postSearch(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/geo+json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var fc struct {
		Type     string `json:"type"`
		Features []any  `json:"features"`
	}
	if err := json.Unmarshal(body, &fc); err != nil {
		t.Fatal(err)
	}
	if fc.Type != "FeatureCollection" || len(fc.Features) == 0 {
		t.Errorf("unexpected GeoJSON: %s", body)
	}

	req.Format = "zzz"
	resp, _ = postSearch(t, ts, req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format status = %d", resp.StatusCode)
	}
}

func TestSearchCacheHit(t *testing.T) {
	ts, ds := newTestServer(t)
	o1, o2 := ds.Object(0), ds.Object(1)
	req := SearchRequest{
		Algorithm: "hsp",
		K:         3,
		Beta:      5,
		Example: []ExampleObject{
			{X: o1.Loc.X, Y: o1.Loc.Y, Category: ds.CategoryName(o1.Category)},
			{X: o2.Loc.X, Y: o2.Loc.Y, Category: ds.CategoryName(o2.Category)},
		},
	}
	body, _ := json.Marshal(req)
	first, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	first.Body.Close()
	if got := first.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first request X-Cache = %q, want miss", got)
	}
	second, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	second.Body.Close()
	if got := second.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second request X-Cache = %q, want hit", got)
	}
}

func TestSnap(t *testing.T) {
	ts, ds := newTestServer(t)
	o := ds.Object(3)
	body, _ := json.Marshal(SnapRequest{X: o.Loc.X, Y: o.Loc.Y, K: 3})
	resp, err := http.Post(ts.URL+"/snap", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var sr SnapResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != 3 {
		t.Fatalf("got %d results", len(sr.Results))
	}
	if sr.Results[0].Dist != 0 || sr.Results[0].Object.ID != o.ID {
		t.Errorf("closest snap should be the clicked object itself: %+v", sr.Results[0])
	}
}

func TestSnapCategoryFilter(t *testing.T) {
	ts, ds := newTestServer(t)
	o := ds.Object(3)
	cat := ds.CategoryName(o.Category)
	body, _ := json.Marshal(SnapRequest{X: o.Loc.X, Y: o.Loc.Y, Category: cat, K: 4})
	resp, err := http.Post(ts.URL+"/snap", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SnapResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	for _, r := range sr.Results {
		if r.Object.Category != cat {
			t.Errorf("filter violated: %+v", r.Object)
		}
	}
}

func TestSnapRejectsBadInput(t *testing.T) {
	ts, _ := newTestServer(t)
	// unknown category
	body, _ := json.Marshal(SnapRequest{Category: "zzz"})
	resp, err := http.Post(ts.URL+"/snap", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown category status = %d", resp.StatusCode)
	}
	// GET not allowed
	resp, err = http.Get(ts.URL + "/snap")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", resp.StatusCode)
	}
}

func TestSearchRejectsGet(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestSearchRejectsMalformedJSON(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestSearchRejectsUnknownFields(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/search", "application/json",
		bytes.NewReader([]byte(`{"bogus_field": 1, "example": []}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", resp.StatusCode)
	}
}
