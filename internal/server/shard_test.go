package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"spatialseq/internal/core"
	"spatialseq/internal/dataset"
	"spatialseq/internal/obs/flight"
	"spatialseq/internal/shard"
	"spatialseq/internal/testutil"
)

func newShardedServer(t *testing.T, cfg Config) (*httptest.Server, *dataset.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(71)) // same corpus as newTestServer
	ds := testutil.RandDataset(rng, 400, 3, 4, 100)
	ts := httptest.NewServer(NewWith(core.NewEngine(ds), cfg))
	t.Cleanup(ts.Close)
	return ts, ds
}

// TestShardedSearchMatchesSingleEngine drives the same query through an
// unsharded server and a -shards 4 server over the same corpus: the
// /search payloads must agree result-for-result (the HTTP-level face of
// the differential guarantee).
func TestShardedSearchMatchesSingleEngine(t *testing.T) {
	single, ds := newTestServer(t)
	sharded, _ := newShardedServer(t, Config{Shards: 4})
	for _, algo := range []string{"hsp", "auto", "brute", "dfs"} {
		req := searchReq(ds)
		req.Algorithm = algo
		req.K = 5
		resp1, body1 := postSearch(t, single, req)
		resp2, body2 := postSearch(t, sharded, req)
		if resp1.StatusCode != http.StatusOK || resp2.StatusCode != http.StatusOK {
			t.Fatalf("algo %s: status %d vs %d: %s / %s", algo, resp1.StatusCode, resp2.StatusCode, body1, body2)
		}
		var a, b SearchResponse
		if err := json.Unmarshal(body1, &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(body2, &b); err != nil {
			t.Fatal(err)
		}
		if len(a.Results) == 0 {
			t.Fatalf("algo %s: single engine returned no results", algo)
		}
		if !reflect.DeepEqual(a.Results, b.Results) {
			t.Errorf("algo %s: sharded results diverge:\nsingle:  %+v\nsharded: %+v", algo, a.Results, b.Results)
		}
	}
}

// erroringBackend fails every leg.
type erroringBackend struct{ err error }

func (e *erroringBackend) Search(context.Context, *shard.Request) (*shard.Response, error) {
	return nil, e.err
}

// stallingBackend holds the leg open until the request budget expires.
type stallingBackend struct{}

func (*stallingBackend) Search(ctx context.Context, _ *shard.Request) (*shard.Response, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestShardFailureReturns502 is the fault-injection contract at the
// HTTP boundary: a broken shard backend yields 502 Bad Gateway (never a
// silently truncated 200) and the failure is visible in
// http_requests_total under its own code label.
func TestShardFailureReturns502(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ds := testutil.RandDataset(rng, 400, 3, 4, 100)
	coord := shard.New(ds, shard.Config{Backends: []shard.Backend{
		shard.NewLocal(core.NewEngine(ds), nil, 0),
		&erroringBackend{err: fmt.Errorf("replica lost")},
	}})
	ts := httptest.NewServer(NewWith(core.NewEngine(ds), Config{Coordinator: coord}))
	t.Cleanup(ts.Close)

	resp, body := postSearch(t, ts, searchReq(ds))
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502; body = %s", resp.StatusCode, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "shard 1") || !strings.Contains(er.Error, "replica lost") {
		t.Errorf("error body %q does not name the failed shard and cause", er.Error)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mr.Body); err != nil {
		t.Fatal(err)
	}
	want := `spatialseq_http_requests_total{endpoint="/search",code="502"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("metrics output missing %q", want)
	}
}

// TestShardStallReturns504 pins the budget path: a shard that never
// answers exhausts the request timeout and maps to 504 Gateway Timeout,
// distinct from the 502 of a broken shard.
func TestShardStallReturns504(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ds := testutil.RandDataset(rng, 400, 3, 4, 100)
	coord := shard.New(ds, shard.Config{Backends: []shard.Backend{
		shard.NewLocal(core.NewEngine(ds), nil, 0),
		&stallingBackend{},
	}})
	ts := httptest.NewServer(NewWith(core.NewEngine(ds), Config{
		Coordinator: coord,
		Timeout:     100 * time.Millisecond,
	}))
	t.Cleanup(ts.Close)

	resp, body := postSearch(t, ts, searchReq(ds))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body = %s", resp.StatusCode, body)
	}
}

// TestShardedFlightRecords populates the flight recorder's reserved
// shard ID end-to-end: a sharded /search leaves one record per shard
// leg, each stamped with its shard ID, none carrying a replay capture
// (shard-partial work counters must never masquerade as a replayable
// whole-query record), and /debug/queries renders the shard column.
func TestShardedFlightRecords(t *testing.T) {
	rec := flight.New(flight.Config{})
	ts, ds := newShardedServer(t, Config{Shards: 3, Flight: rec})
	resp, body := postSearch(t, ts, searchReq(ds))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}

	recs := rec.Recent(16)
	if len(recs) != 3 {
		t.Fatalf("flight recorder holds %d records after one 3-shard query, want 3", len(recs))
	}
	seen := map[int32]bool{}
	for _, r := range recs {
		if r.ShardID == flight.NoShard {
			t.Errorf("record seq=%d carries NoShard; shard engines must stamp their ID", r.Seq)
			continue
		}
		if r.ShardID < 0 || r.ShardID >= 3 {
			t.Errorf("record seq=%d carries shard ID %d, want 0..2", r.Seq, r.ShardID)
		}
		if seen[r.ShardID] {
			t.Errorf("shard %d emitted two records for one query", r.ShardID)
		}
		seen[r.ShardID] = true
		if r.Capture != nil {
			t.Errorf("shard %d record carries a replay capture; shard-partial records must not", r.ShardID)
		}
	}

	dr, err := http.Get(ts.URL + "/debug/queries?format=html")
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(dr.Body); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	if !strings.Contains(page, "<th>shard</th>") {
		t.Error("/debug/queries lacks the shard column header")
	}
	// Each leg row renders its numeric shard ID (NoShard renders blank).
	for id := 0; id < 3; id++ {
		if !strings.Contains(page, fmt.Sprintf("<td>%d</td>", id)) {
			t.Errorf("/debug/queries does not render shard %d's row", id)
		}
	}
}

// TestUnshardedFlightRecordsKeepNoShard is the control: without
// sharding the single record keeps the NoShard sentinel and retains its
// capture eligibility.
func TestUnshardedFlightRecordsKeepNoShard(t *testing.T) {
	rec := flight.New(flight.Config{})
	ts, ds := newShardedServer(t, Config{Shards: 1, Flight: rec})
	resp, body := postSearch(t, ts, searchReq(ds))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	recs := rec.Recent(16)
	if len(recs) != 1 {
		t.Fatalf("flight recorder holds %d records, want 1", len(recs))
	}
	if recs[0].ShardID != flight.NoShard {
		t.Errorf("unsharded record carries shard ID %d, want NoShard", recs[0].ShardID)
	}
}
