package server

import (
	"fmt"
	"html/template"
	"net/http"
	"strings"

	"spatialseq/internal/obs"
	"spatialseq/internal/obs/flight"
)

// handleDebugTrace serves the retained span tree of one slow query. The
// default (and "json"/"chrome") format is Chrome trace-event JSON that
// chrome://tracing and Perfetto load directly; ?format=html renders a
// dependency-free timeline for a quick look without leaving the browser.
// Only queries the flight recorder retained as slow carry a span tree, so
// unknown or fast request IDs 404.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
	if !obs.ValidRequestID(id) {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("invalid request id %q", id)})
		return
	}
	rec, ok := s.flight.Find(id)
	if !ok || rec.Spans == nil {
		s.writeJSON(w, http.StatusNotFound,
			errorResponse{Error: fmt.Sprintf("no retained span tree for request %q (only slow queries keep one)", id)})
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "json", "chrome":
		data, err := rec.Spans.ChromeTrace()
		if err != nil {
			s.logWriteErr(r.Context(), err)
			s.writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "trace encoding failed"})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		if _, err := w.Write(data); err != nil {
			s.logWriteErr(r.Context(), err)
		}
	case "html":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := tracePage.Execute(w, buildTracePage(&rec)); err != nil {
			s.logWriteErr(r.Context(), err)
		}
	default:
		s.writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("unknown format %q", r.URL.Query().Get("format"))})
	}
}

// traceRow is one span flattened for the HTML timeline, in depth-first
// order so nesting reads top to bottom.
type traceRow struct {
	Indent   int
	Name     string
	Worker   int32 // -1 for coordinator spans
	Subspace int32 // -1 when the span is not subspace-tagged
	StartMS  float64
	DurMS    float64
	// LeftPct/WidthPct place the bar on a 0-100% track spanning the
	// whole query.
	LeftPct  float64
	WidthPct float64
}

// tracePageData feeds the tracePage template.
type tracePageData struct {
	RequestID string
	Algorithm string
	LatencyMS float64
	Dropped   int64
	Skew      *spanSkew
	Rows      []traceRow
}

// spanSkew mirrors span.SkewReport for the template with pre-formatted
// fields (html/template printf on float64 works, but keeping the shaping
// in Go keeps the template readable).
type spanSkew struct {
	Workers           int
	ImbalanceRatio    float64
	StragglerWorker   int32
	StragglerSubspace int32
	CriticalPathMS    float64
}

// buildTracePage flattens rec.Spans depth-first into timeline rows.
func buildTracePage(rec *flight.Record) tracePageData {
	tr := rec.Spans
	d := tracePageData{
		RequestID: rec.RequestID,
		Algorithm: rec.Algorithm,
		LatencyMS: rec.LatencyMS(),
		Dropped:   tr.Dropped,
	}
	if rec.Skew != nil {
		d.Skew = &spanSkew{
			Workers:           rec.Skew.Workers,
			ImbalanceRatio:    rec.Skew.ImbalanceRatio,
			StragglerWorker:   rec.Skew.StragglerWorker,
			StragglerSubspace: rec.Skew.StragglerSubspace,
			CriticalPathMS:    rec.Skew.CriticalPathMS,
		}
	}
	// Children in arena order are already in open order; parent links
	// rebuild the tree shape.
	children := make([][]int, len(tr.Nodes))
	var roots []int
	minStart, maxEnd := int64(0), int64(0)
	for i := range tr.Nodes {
		n := &tr.Nodes[i]
		if n.Parent < 0 {
			roots = append(roots, i)
		} else {
			children[n.Parent] = append(children[n.Parent], i)
		}
		if i == 0 || n.StartNS < minStart {
			minStart = n.StartNS
		}
		if n.EndNS > maxEnd {
			maxEnd = n.EndNS
		}
	}
	extent := maxEnd - minStart
	if extent <= 0 {
		extent = 1
	}
	var walk func(idx, depth int)
	walk = func(idx, depth int) {
		n := &tr.Nodes[idx]
		width := 100 * float64(n.EndNS-n.StartNS) / float64(extent)
		if width < 0.1 {
			width = 0.1 // keep sub-pixel spans visible
		}
		d.Rows = append(d.Rows, traceRow{
			Indent:   depth,
			Name:     n.Name,
			Worker:   n.Worker,
			Subspace: n.Subspace,
			StartMS:  float64(n.StartNS-minStart) / 1e6,
			DurMS:    float64(n.EndNS-n.StartNS) / 1e6,
			LeftPct:  100 * float64(n.StartNS-minStart) / float64(extent),
			WidthPct: width,
		})
		for _, c := range children[idx] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return d
}

// tracePage renders /debug/trace/{id}?format=html: an indented span list
// with a proportional timeline bar per span.
var tracePage = template.Must(template.New("trace").Funcs(template.FuncMap{
	"indent": func(n int) string { return strings.Repeat("· ", n) },
}).Parse(`<!doctype html>
<html><head><title>spatialseq trace {{.RequestID}}</title>
<style>
body{font-family:ui-monospace,monospace;margin:1.5em}
table{border-collapse:collapse;margin:0.5em 0;width:100%}
td,th{border:1px solid #bbb;padding:2px 8px;text-align:right;white-space:nowrap}
td.l,th.l{text-align:left}
th{background:#eee}
td.track{width:50%;position:relative;padding:2px 0}
div.bar{height:0.9em;background:#4a90d9;border-radius:2px}
span.pad{color:#bbb}
</style></head><body>
<h1>trace {{.RequestID}}</h1>
<p>algorithm {{.Algorithm}} &middot; latency {{printf "%.3f" .LatencyMS}} ms{{if .Skew}} &middot; workers {{.Skew.Workers}} &middot; imbalance {{printf "%.2f" .Skew.ImbalanceRatio}} &middot; straggler worker {{.Skew.StragglerWorker}}{{if ge .Skew.StragglerSubspace 0}} (subspace {{.Skew.StragglerSubspace}}){{end}} &middot; critical path {{printf "%.3f" .Skew.CriticalPathMS}} ms{{end}}{{if .Dropped}} &middot; {{.Dropped}} spans dropped{{end}}</p>
<p><a href="/debug/trace/{{.RequestID}}">chrome trace JSON</a> (load in chrome://tracing or <a href="https://ui.perfetto.dev">Perfetto</a>) &middot; <a href="/debug/queries?format=html">flight recorder</a></p>
<table>
<tr><th class=l>span</th><th>worker</th><th>subspace</th><th>start ms</th><th>dur ms</th><th class=l>timeline</th></tr>
{{range .Rows}}<tr><td class=l><span class=pad>{{indent .Indent}}</span>{{.Name}}</td><td>{{if ge .Worker 0}}{{.Worker}}{{end}}</td><td>{{if ge .Subspace 0}}{{.Subspace}}{{end}}</td><td>{{printf "%.3f" .StartMS}}</td><td>{{printf "%.3f" .DurMS}}</td><td class=track><div class=bar style="margin-left:{{printf "%.2f" .LeftPct}}%;width:{{printf "%.2f" .WidthPct}}%"></div></td></tr>
{{end}}</table>
</body></html>
`))
