// Package server exposes the example-based search engine as a JSON HTTP
// API — the "map service" surface of the paper's Figure 2. The handler is
// stateless beyond the immutable engine, so it is safe for concurrent use.
//
// Endpoints:
//
//	GET  /healthz   liveness probe
//	GET  /stats     dataset summary (size, categories, bounds)
//	POST /search    run a query; see SearchRequest / SearchResponse
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"spatialseq/internal/core"
	"spatialseq/internal/dataset"
	"spatialseq/internal/export"
	"spatialseq/internal/geo"
	"spatialseq/internal/qcache"
	"spatialseq/internal/query"
)

// Server handles the HTTP API for one engine.
type Server struct {
	eng *core.Engine
	// Timeout bounds each search request (default 30s).
	Timeout time.Duration
	cache   *qcache.Cache
	mux     *http.ServeMux
}

// New builds a Server around eng with a default-sized result cache.
func New(eng *core.Engine) *Server {
	s := &Server{
		eng:     eng,
		Timeout: 30 * time.Second,
		cache:   qcache.New(0),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/categories", s.handleCategories)
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.HandleFunc("/snap", s.handleSnap)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// ExampleObject is one dimension of the request example.
type ExampleObject struct {
	X        float64   `json:"x"`
	Y        float64   `json:"y"`
	Category string    `json:"category"`
	Attrs    []float64 `json:"attrs,omitempty"`
	// FixedID pins this dimension to the dataset object with this ID
	// (CSEQ-FP). Nil leaves the dimension free.
	FixedID *int64 `json:"fixed_id,omitempty"`
}

// SearchRequest is the /search request body.
type SearchRequest struct {
	Variant   string `json:"variant,omitempty"` // "cseq" (default), "seq", "cseq-fp"
	Algorithm string `json:"algorithm,omitempty"`
	// Format selects the response encoding: "" / "json" for
	// SearchResponse, "geojson" for an RFC 7946 FeatureCollection that a
	// map UI can render directly.
	Format  string          `json:"format,omitempty"`
	K       int             `json:"k,omitempty"`
	Alpha   float64         `json:"alpha,omitempty"`
	Beta    float64         `json:"beta,omitempty"`
	GridD   int             `json:"grid_d,omitempty"`
	Xi      int             `json:"xi,omitempty"`
	Example []ExampleObject `json:"example"`
}

// ResultObject is one matched object.
type ResultObject struct {
	ID       int64     `json:"id"`
	Name     string    `json:"name"`
	X        float64   `json:"x"`
	Y        float64   `json:"y"`
	Category string    `json:"category"`
	Attrs    []float64 `json:"attrs"`
}

// ResultTuple is one ranked answer.
type ResultTuple struct {
	Sim     float64        `json:"sim"`
	Objects []ResultObject `json:"objects"`
}

// SearchResponse is the /search response body.
type SearchResponse struct {
	Algorithm string        `json:"algorithm"`
	Variant   string        `json:"variant"`
	ElapsedMS float64       `json:"elapsed_ms"`
	Results   []ResultTuple `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	// A write error here means the client went away; nothing to do.
	_, _ = fmt.Fprintln(w, `{"status":"ok"}`)
}

type statsResponse struct {
	Objects    int        `json:"objects"`
	Categories int        `json:"categories"`
	AttrDim    int        `json:"attr_dim"`
	Bounds     [4]float64 `json:"bounds"` // minx, miny, maxx, maxy
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ds := s.eng.Dataset()
	b := ds.Bounds()
	writeJSON(w, http.StatusOK, statsResponse{
		Objects:    ds.Len(),
		Categories: ds.NumCategories(),
		AttrDim:    ds.AttrDim(),
		Bounds:     [4]float64{b.MinX, b.MinY, b.MaxX, b.MaxY},
	})
}

// CategoryInfo describes one category for example-building clients.
type CategoryInfo struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

func (s *Server) handleCategories(w http.ResponseWriter, r *http.Request) {
	ds := s.eng.Dataset()
	out := make([]CategoryInfo, 0, ds.NumCategories())
	for c, size := range ds.CategorySizes() {
		out = append(out, CategoryInfo{Name: ds.CategoryName(dataset.CategoryID(c)), Count: size})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var req SearchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON: " + err.Error()})
		return
	}
	switch req.Format {
	case "", "json", "geojson":
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown format %q", req.Format)})
		return
	}
	q, err := s.buildQuery(&req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	algo, err := core.ParseAlgorithm(req.Algorithm)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.Timeout)
	defer cancel()
	res, cached, err := s.cache.Search(ctx, s.eng, q, algo, core.Options{})
	if err != nil {
		status := http.StatusBadRequest
		if ctx.Err() != nil {
			status = http.StatusGatewayTimeout
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	if cached {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	if req.Format == "geojson" {
		w.Header().Set("Content-Type", "application/geo+json")
		w.WriteHeader(http.StatusOK)
		_ = export.Results(w, s.eng.Dataset(), q, res)
		return
	}
	writeJSON(w, http.StatusOK, s.buildResponse(q, res))
}

// SnapRequest is the /snap request body: a map click to resolve to the
// nearest real objects (the example-selection interaction of Fig. 2).
type SnapRequest struct {
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Category string  `json:"category,omitempty"` // empty = any category
	K        int     `json:"k,omitempty"`        // default 5
}

// SnapResponse is the /snap response body.
type SnapResponse struct {
	Results []SnapResult `json:"results"`
}

// SnapResult is one nearest object.
type SnapResult struct {
	Object ResultObject `json:"object"`
	Dist   float64      `json:"dist"`
}

func (s *Server) handleSnap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var req SnapRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON: " + err.Error()})
		return
	}
	ds := s.eng.Dataset()
	cat := dataset.NoCategory
	if req.Category != "" {
		var ok bool
		cat, ok = ds.CategoryByName(req.Category)
		if !ok {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown category %q", req.Category)})
			return
		}
	}
	k := req.K
	if k <= 0 {
		k = 5
	}
	var resp SnapResponse
	for _, sr := range s.eng.Snap(geo.Point{X: req.X, Y: req.Y}, cat, k) {
		o := ds.Object(int(sr.Position))
		resp.Results = append(resp.Results, SnapResult{
			Dist: sr.Dist,
			Object: ResultObject{
				ID: o.ID, Name: o.Name, X: o.Loc.X, Y: o.Loc.Y,
				Category: ds.CategoryName(o.Category), Attrs: o.Attr,
			},
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) buildQuery(req *SearchRequest) (*query.Query, error) {
	ds := s.eng.Dataset()
	if len(req.Example) < 2 {
		return nil, fmt.Errorf("example needs at least 2 objects, got %d", len(req.Example))
	}
	q := &query.Query{
		Params: query.Params{K: req.K, Alpha: req.Alpha, Beta: req.Beta, GridD: req.GridD, Xi: req.Xi},
	}
	switch req.Variant {
	case "", "cseq":
		q.Variant = query.CSEQ
	case "seq":
		q.Variant = query.SEQ
	case "cseq-fp":
		q.Variant = query.CSEQFP
	default:
		return nil, fmt.Errorf("unknown variant %q", req.Variant)
	}
	idIndex := make(map[int64]int32)
	for dim, eo := range req.Example {
		cat, ok := ds.CategoryByName(eo.Category)
		if !ok {
			return nil, fmt.Errorf("example[%d]: unknown category %q", dim, eo.Category)
		}
		attrs := eo.Attrs
		if attrs == nil {
			attrs = categoryCentroid(ds, cat)
			if attrs == nil {
				return nil, fmt.Errorf("example[%d]: category %q is empty; supply attrs", dim, eo.Category)
			}
		}
		q.Example.Categories = append(q.Example.Categories, cat)
		q.Example.Locations = append(q.Example.Locations, geo.Point{X: eo.X, Y: eo.Y})
		q.Example.Attrs = append(q.Example.Attrs, attrs)
		if eo.FixedID != nil {
			if len(idIndex) == 0 {
				for i := 0; i < ds.Len(); i++ {
					idIndex[ds.Object(i).ID] = int32(i)
				}
			}
			pos, ok := idIndex[*eo.FixedID]
			if !ok {
				return nil, fmt.Errorf("example[%d]: fixed_id %d not in dataset", dim, *eo.FixedID)
			}
			q.Example.Fixed = append(q.Example.Fixed, query.FixedPoint{Dim: dim, Obj: pos})
		}
	}
	return q, nil
}

func (s *Server) buildResponse(q *query.Query, res *core.Result) SearchResponse {
	ds := s.eng.Dataset()
	out := SearchResponse{
		Algorithm: res.Algorithm.String(),
		Variant:   q.Variant.String(),
		ElapsedMS: float64(res.Elapsed) / float64(time.Millisecond),
	}
	for _, t := range res.Tuples {
		rt := ResultTuple{Sim: t.Sim}
		for _, pos := range t.Positions {
			o := ds.Object(int(pos))
			rt.Objects = append(rt.Objects, ResultObject{
				ID:       o.ID,
				Name:     o.Name,
				X:        o.Loc.X,
				Y:        o.Loc.Y,
				Category: ds.CategoryName(o.Category),
				Attrs:    o.Attr,
			})
		}
		out.Results = append(out.Results, rt)
	}
	return out
}

func categoryCentroid(ds *dataset.Dataset, cat dataset.CategoryID) []float64 {
	objs := ds.CategoryObjects(cat)
	if len(objs) == 0 {
		return nil
	}
	centroid := make([]float64, ds.AttrDim())
	for _, pos := range objs {
		for j, a := range ds.Object(int(pos)).Attr {
			centroid[j] += a
		}
	}
	for j := range centroid {
		centroid[j] /= float64(len(objs))
	}
	return centroid
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
