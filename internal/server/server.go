// Package server exposes the example-based search engine as a JSON HTTP
// API — the "map service" surface of the paper's Figure 2. The handler is
// stateless beyond the immutable engine, so it is safe for concurrent use.
//
// Endpoints:
//
//	GET  /healthz        liveness probe
//	GET  /stats          dataset summary (size, categories, bounds)
//	GET  /categories     category names and sizes
//	GET  /metrics        Prometheus text exposition of the server metrics
//	POST /search         run a query; see SearchRequest / SearchResponse
//	POST /snap           snap a map click to nearby objects
//	GET  /debug/queries  flight recorder: recent + slowest queries
//	                     (?format=html for a browsable page)
//	GET  /debug/queries/capture  replayable capture of retained slow
//	                     queries (feed to `seqbench -exp replay`)
//	GET  /debug/trace/{requestID}  retained span tree of a slow query as
//	                     Chrome trace-event JSON (chrome://tracing /
//	                     Perfetto loadable; ?format=html for a timeline)
//	GET  /debug/pprof/*  runtime profiles (only with Config.EnablePprof)
//
// Every request gets an X-Request-ID (a valid client-supplied one is
// honored, so records correlate with upstream logs) and a structured
// JSON log line (configure Config.Logger; the default discards logs).
// Metrics cover per-endpoint request/status counts, in-flight requests,
// per-algorithm search latency, cumulative engine work counters,
// query-cache state, process health, and the flight recorder's adaptive
// slow-query threshold.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"spatialseq/internal/core"
	"spatialseq/internal/dataset"
	"spatialseq/internal/export"
	"spatialseq/internal/geo"
	"spatialseq/internal/obs"
	"spatialseq/internal/obs/flight"
	"spatialseq/internal/obs/span"
	"spatialseq/internal/qcache"
	"spatialseq/internal/query"
	"spatialseq/internal/shard"
	"spatialseq/internal/stats"
)

// Config tunes a Server. The zero value gives the defaults of New.
type Config struct {
	// Timeout bounds each search request (default 30s).
	Timeout time.Duration
	// CacheSize is the query-cache capacity in entries (<= 0 uses
	// qcache.DefaultSize).
	CacheSize int
	// Logger receives one structured record per request plus warnings.
	// Nil discards logs.
	Logger *slog.Logger
	// Metrics is the registry the server's metrics are registered in and
	// that GET /metrics renders. Nil creates a private registry.
	Metrics *obs.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Flight is the query flight recorder backing /debug/queries. Nil
	// builds a default recorder (256-slot ring, 1m window, slowest 16,
	// adaptive threshold) logging slow queries through Logger. The
	// recorder is attached to the engine, so engine-side emissions and
	// the server's cache-hit records land in one place.
	Flight *flight.Recorder
	// Shards > 1 serves /search through an in-process scatter-gather
	// coordinator: the dataset and partition index are shared across N
	// shard engines, answers stay tuple-for-tuple identical to the
	// single engine, per-shard flight records carry their shard ID, and
	// per-shard work/busy counters land in Metrics.
	Shards int
	// Coordinator, when non-nil, overrides Shards with a pre-built
	// scatter-gather coordinator (the hook for custom shard backends —
	// fault-injection tests today, remote transports later). Pass the
	// same recorder as Flight when its backends should share
	// /debug/queries.
	Coordinator *shard.Coordinator
}

// Server handles the HTTP API for one engine.
type Server struct {
	eng *core.Engine
	// searcher answers /search: the engine itself, or the scatter-gather
	// coordinator when sharding is configured. eng stays the metadata
	// surface (dataset, snap, cache-hit records) either way.
	searcher core.Searcher
	// Timeout bounds each search request (default 30s).
	Timeout time.Duration
	cache   *qcache.Cache
	mux     *http.ServeMux
	logger  *slog.Logger
	reg     *obs.Registry
	flight  *flight.Recorder

	inflight      obs.Gauge
	requests      *obs.CounterVec
	latency       *obs.HistogramVec
	work          *obs.CounterVec
	phasesDropped obs.Counter
	spansDropped  obs.Counter
	imbalance     *obs.HistogramVec
	critPath      *obs.HistogramVec

	// idOnce guards the lazy one-time build of idIndex, the dataset's
	// id -> position map used to resolve CSEQ-FP fixed_id references.
	idOnce  sync.Once
	idIndex map[int64]int32
}

// New builds a Server around eng with the default configuration.
func New(eng *core.Engine) *Server {
	return NewWith(eng, Config{})
}

// NewWith builds a Server around eng with cfg.
func NewWith(eng *core.Engine, cfg Config) *Server {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Flight == nil {
		cfg.Flight = flight.New(flight.Config{Logger: cfg.Logger})
	}
	s := &Server{
		eng:     eng,
		Timeout: cfg.Timeout,
		cache:   qcache.New(cfg.CacheSize),
		mux:     http.NewServeMux(),
		logger:  cfg.Logger,
		reg:     cfg.Metrics,
		flight:  cfg.Flight,
	}
	// The engine emits the per-query flight records (outcome, phases,
	// work); the server adds the cache-hit records the engine never
	// sees. Attaching here means the last server built around an engine
	// owns its record stream.
	eng.SetFlightRecorder(cfg.Flight)
	s.searcher = eng
	switch {
	case cfg.Coordinator != nil:
		s.searcher = cfg.Coordinator
	case cfg.Shards > 1:
		s.searcher = shard.New(eng.Dataset(), shard.Config{
			Shards:  cfg.Shards,
			Index:   eng.PartitionIndex(),
			Flight:  cfg.Flight,
			Metrics: cfg.Metrics,
		})
	}
	obs.RegisterProcessMetrics(cfg.Metrics)
	s.inflight = cfg.Metrics.Gauge("spatialseq_http_in_flight_requests",
		"Requests currently being served.").With()
	s.requests = cfg.Metrics.Counter("spatialseq_http_requests_total",
		"Completed HTTP requests.", "endpoint", "code")
	s.latency = cfg.Metrics.Histogram("spatialseq_search_duration_seconds",
		"Engine search latency (cache hits excluded).", nil, "algorithm")
	s.work = cfg.Metrics.Counter("spatialseq_search_work_total",
		"Cumulative engine work counters, by stats.Snapshot field.", "counter")
	s.phasesDropped = cfg.Metrics.Counter("spatialseq_trace_phases_dropped_total",
		"Phase-trace additions discarded by the per-query phase bound (obs.Trace overflow).").With()
	s.spansDropped = cfg.Metrics.Counter("spatialseq_spans_dropped_total",
		"Spans discarded by the per-query span-tree bounds (node count or depth).").With()
	s.imbalance = cfg.Metrics.Histogram("spatialseq_subspace_imbalance_ratio",
		"Per-query worker imbalance: max worker busy time over mean (1.0 is perfectly balanced).",
		[]float64{1, 1.1, 1.25, 1.5, 2, 3, 5, 10}, "algorithm")
	s.critPath = cfg.Metrics.Histogram("spatialseq_span_critical_path_seconds",
		"Per-query critical-path length from the span tree: the floor more parallelism cannot beat.",
		nil, "algorithm")
	rec := s.flight
	cfg.Metrics.GaugeFunc("spatialseq_slow_query_threshold_seconds",
		"Effective flight-recorder slow-query threshold (+Inf while the adaptive tracker warms up with no floor set).",
		func() float64 {
			thr, ok := rec.Threshold()
			if !ok {
				return math.Inf(1)
			}
			return thr.Seconds()
		})
	cfg.Metrics.GaugeFunc("spatialseq_query_latency_p99_seconds",
		"Streaming p99 query-latency estimate from the flight recorder.",
		func() float64 {
			p, ok := rec.P99()
			if !ok {
				return 0
			}
			return p.Seconds()
		})
	cfg.Metrics.GaugeFunc("spatialseq_flight_observed",
		"Queries recorded by the flight recorder since start.",
		func() float64 { return float64(rec.Observed()) })
	cfg.Metrics.GaugeFunc("spatialseq_flight_slow",
		"Queries that crossed the slow-query threshold since start.",
		func() float64 { return float64(rec.SlowCount()) })
	cache := s.cache
	cfg.Metrics.GaugeFunc("spatialseq_qcache_hits",
		"Query-cache hits since start.",
		func() float64 { return float64(cache.Metrics().Hits) })
	cfg.Metrics.GaugeFunc("spatialseq_qcache_misses",
		"Query-cache misses since start.",
		func() float64 { return float64(cache.Metrics().Misses) })
	cfg.Metrics.GaugeFunc("spatialseq_qcache_evictions",
		"Query-cache LRU evictions since start.",
		func() float64 { return float64(cache.Metrics().Evictions) })
	cfg.Metrics.GaugeFunc("spatialseq_qcache_entries",
		"Query-cache resident entries.",
		func() float64 { return float64(cache.Metrics().Len) })

	s.handle("/healthz", http.MethodGet, s.handleHealthz)
	s.handle("/stats", http.MethodGet, s.handleStats)
	s.handle("/categories", http.MethodGet, s.handleCategories)
	s.handle("/metrics", http.MethodGet, s.handleMetrics)
	s.handle("/search", http.MethodPost, s.handleSearch)
	s.handle("/snap", http.MethodPost, s.handleSnap)
	s.handle("/debug/queries", http.MethodGet, s.handleDebugQueries)
	s.handle("/debug/queries/capture", http.MethodGet, s.handleDebugCapture)
	s.handle("/debug/trace/", http.MethodGet, s.handleDebugTrace)
	if cfg.EnablePprof {
		// pprof handlers manage their own content types and streaming
		// (the CPU profile blocks for its sampling window), so they mount
		// raw rather than through the instrumentation wrapper.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// handle mounts h at pattern with the shared instrumentation: method
// enforcement (405 with an Allow header), request IDs, the in-flight
// gauge, per-endpoint status counters and the access log. A wellformed
// client-supplied X-Request-ID is propagated instead of minting one, so
// flight-recorder records and request logs correlate with the caller's
// own logs; malformed or oversized values are replaced, never echoed.
func (s *Server) handle(pattern, method string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if !obs.ValidRequestID(id) {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		rec := &obs.ResponseRecorder{ResponseWriter: w, Status: http.StatusOK}
		s.inflight.Inc()
		if r.Method != method {
			w.Header().Set("Allow", method)
			s.writeJSON(rec, http.StatusMethodNotAllowed,
				errorResponse{Error: method + " required"})
		} else {
			h(rec, r.WithContext(obs.WithRequestID(r.Context(), id)))
		}
		s.inflight.Dec()
		s.requests.With(pattern, strconv.Itoa(rec.Status)).Inc()
		s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("id", id),
			slog.String("method", r.Method),
			slog.String("path", pattern),
			slog.Int("status", rec.Status),
			slog.Int64("bytes", rec.Bytes),
			slog.Float64("duration_ms", float64(time.Since(start))/float64(time.Millisecond)))
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// ExampleObject is one dimension of the request example.
type ExampleObject struct {
	X        float64   `json:"x"`
	Y        float64   `json:"y"`
	Category string    `json:"category"`
	Attrs    []float64 `json:"attrs,omitempty"`
	// FixedID pins this dimension to the dataset object with this ID
	// (CSEQ-FP). Nil leaves the dimension free.
	FixedID *int64 `json:"fixed_id,omitempty"`
}

// SearchRequest is the /search request body.
type SearchRequest struct {
	Variant   string `json:"variant,omitempty"` // "cseq" (default), "seq", "cseq-fp"
	Algorithm string `json:"algorithm,omitempty"`
	// Format selects the response encoding: "" / "json" for
	// SearchResponse, "geojson" for an RFC 7946 FeatureCollection that a
	// map UI can render directly.
	Format string `json:"format,omitempty"`
	// IncludeStats attaches engine work counters and per-phase wall
	// times to the response (SearchResponse.Stats). Such requests bypass
	// the query cache so the timings describe this execution.
	IncludeStats bool            `json:"include_stats,omitempty"`
	K            int             `json:"k,omitempty"`
	Alpha        float64         `json:"alpha,omitempty"`
	Beta         float64         `json:"beta,omitempty"`
	GridD        int             `json:"grid_d,omitempty"`
	Xi           int             `json:"xi,omitempty"`
	Example      []ExampleObject `json:"example"`
}

// ResultObject is one matched object.
type ResultObject struct {
	ID       int64     `json:"id"`
	Name     string    `json:"name"`
	X        float64   `json:"x"`
	Y        float64   `json:"y"`
	Category string    `json:"category"`
	Attrs    []float64 `json:"attrs"`
}

// ResultTuple is one ranked answer.
type ResultTuple struct {
	Sim     float64        `json:"sim"`
	Objects []ResultObject `json:"objects"`
}

// SearchStats carries the optional observability payload of a response.
type SearchStats struct {
	// Work is the engine's per-search counter snapshot.
	Work stats.Snapshot `json:"work"`
	// Phases is the wall time spent per search phase, derived from the
	// span tree: phases whose spans overlapped across parallel workers
	// carry parallel=true (their durations sum CPU time, not wall
	// time); unmarked phases are disjoint wall-clock slices.
	Phases []obs.PhaseTiming `json:"phases"`
	// Skew is the per-query imbalance attribution from the span tree;
	// absent when the query recorded no worker spans.
	Skew *span.SkewReport `json:"skew,omitempty"`
}

// SearchResponse is the /search response body.
type SearchResponse struct {
	Algorithm string        `json:"algorithm"`
	Variant   string        `json:"variant"`
	ElapsedMS float64       `json:"elapsed_ms"`
	Results   []ResultTuple `json:"results"`
	// Stats is present when the request set include_stats.
	Stats *SearchStats `json:"stats,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if _, err := fmt.Fprintln(w, `{"status":"ok"}`); err != nil {
		s.logWriteErr(r.Context(), err)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WriteText(w); err != nil {
		s.logWriteErr(r.Context(), err)
	}
}

type statsResponse struct {
	Objects    int        `json:"objects"`
	Categories int        `json:"categories"`
	AttrDim    int        `json:"attr_dim"`
	Bounds     [4]float64 `json:"bounds"` // minx, miny, maxx, maxy
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ds := s.eng.Dataset()
	b := ds.Bounds()
	s.writeJSON(w, http.StatusOK, statsResponse{
		Objects:    ds.Len(),
		Categories: ds.NumCategories(),
		AttrDim:    ds.AttrDim(),
		Bounds:     [4]float64{b.MinX, b.MinY, b.MaxX, b.MaxY},
	})
}

// CategoryInfo describes one category for example-building clients.
type CategoryInfo struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

func (s *Server) handleCategories(w http.ResponseWriter, r *http.Request) {
	ds := s.eng.Dataset()
	out := make([]CategoryInfo, 0, ds.NumCategories())
	for c, size := range ds.CategorySizes() {
		out = append(out, CategoryInfo{Name: ds.CategoryName(dataset.CategoryID(c)), Count: size})
	}
	s.writeJSON(w, http.StatusOK, out)
}

// decodeStrict decodes a request body into dst, rejecting unknown fields
// and trailing data after the first JSON value (json.Decoder.Decode alone
// would silently ignore the latter).
func decodeStrict(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	if dec.Decode(&struct{}{}) != io.EOF {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if err := decodeStrict(r, &req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON: " + err.Error()})
		return
	}
	switch req.Format {
	case "", "json", "geojson":
	default:
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown format %q", req.Format)})
		return
	}
	q, err := s.buildQuery(&req)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	algo, err := core.ParseAlgorithm(req.Algorithm)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.Timeout)
	defer cancel()
	// A trace and a span tracer are always attached so flight-recorder
	// records carry the phase breakdown and slow queries retain their
	// span tree; on cache hits the engine never runs and both stay
	// empty.
	opt := core.Options{CollectStats: true, Trace: obs.NewTrace(), Spans: span.NewTracer()}
	var (
		res    *core.Result
		cached bool
	)
	searchStart := time.Now()
	if req.IncludeStats {
		// Bypass the cache: the phase timings must describe this
		// execution, not a stored one.
		res, err = s.searcher.Search(ctx, q, algo, opt)
	} else {
		res, cached, err = s.cache.Search(ctx, s.searcher, q, algo, opt)
	}
	s.phasesDropped.Add(float64(opt.Trace.Dropped()))
	s.spansDropped.Add(float64(opt.Spans.Dropped()))
	if err != nil {
		status := http.StatusBadRequest
		var shardErr *shard.Error
		switch {
		case ctx.Err() != nil:
			status = http.StatusGatewayTimeout
		case errors.As(err, &shardErr):
			// A shard leg failed for a non-budget reason: the query was
			// valid but a backend broke, which is a gateway-style 502 —
			// never a silently truncated 200.
			status = http.StatusBadGateway
		}
		s.writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	switch {
	case req.IncludeStats:
		w.Header().Set("X-Cache", "bypass")
	case cached:
		w.Header().Set("X-Cache", "hit")
	default:
		w.Header().Set("X-Cache", "miss")
	}
	if !cached {
		// The engine actually ran: record latency and work. Cache hits
		// are excluded so the histogram measures search cost, not map
		// lookups, and work counters are not double-counted.
		s.latency.With(res.Algorithm.String()).Observe(res.Elapsed.Seconds())
		res.Stats.Each(func(name string, value int64) {
			s.work.With(name).Add(float64(value))
		})
		if sk := opt.Spans.Skew(); sk != nil {
			s.imbalance.With(res.Algorithm.String()).Observe(sk.ImbalanceRatio)
			s.critPath.With(res.Algorithm.String()).Observe(sk.CriticalPathMS / 1e3)
		}
	} else {
		// The engine emits flight records for its own runs; cache hits
		// never reach it, so the server records them here.
		s.emitHitRecord(r.Context(), q, res, time.Since(searchStart))
	}
	if req.Format == "geojson" {
		w.Header().Set("Content-Type", "application/geo+json")
		w.WriteHeader(http.StatusOK)
		if err := export.Results(w, s.eng.Dataset(), q, res); err != nil {
			s.logWriteErr(r.Context(), err)
		}
		return
	}
	resp := s.buildResponse(q, res)
	if req.IncludeStats {
		phases := opt.Trace.Snapshot()
		// Span-derived timings supersede the flat trace: same phase
		// names, with cross-worker overlap marked parallel instead of
		// silently summed past wall time.
		if p := opt.Spans.PhaseTimings(); p != nil {
			phases = p
		}
		resp.Stats = &SearchStats{Work: res.Stats, Phases: phases, Skew: opt.Spans.Skew()}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// emitHitRecord records a cache-hit query in the flight recorder. The
// latency is the cache-lookup wall time; Work carries the counters of
// the execution that originally produced the cached result, so a replay
// of the capture still has exact counters to match against.
func (s *Server) emitHitRecord(ctx context.Context, q *query.Query, res *core.Result, elapsed time.Duration) {
	rec := flight.Record{
		RequestID: obs.RequestID(ctx),
		ShardID:   flight.NoShard,
		Start:     time.Now().Add(-elapsed).UnixNano(),
		LatencyNS: int64(elapsed),
		Algorithm: res.Algorithm.String(),
		Variant:   q.Variant.String(),
		M:         int32(q.Example.M()),
		Dims:      int32(s.eng.Dataset().AttrDim()),
		Pins:      int32(len(q.Example.Fixed)),
		K:         int32(q.Params.K),
		CacheHit:  true,
		Outcome:   flight.OutcomeOK,
		Work:      res.Stats,
	}
	if s.flight.WouldRetain(elapsed) {
		rec.Capture = core.CaptureQuery(s.eng.Dataset(), q, res.Algorithm)
	}
	s.flight.ObserveAndLog(&rec)
}

// debugQueriesResponse is the GET /debug/queries body: recorder state
// plus the tail-sampled slowest and ring-buffered recent records.
type debugQueriesResponse struct {
	Observed uint64 `json:"observed"`
	Slow     uint64 `json:"slow"`
	// ThresholdActive is false while the adaptive tracker is still
	// warming up and no floor is configured (nothing counts as slow).
	ThresholdActive bool            `json:"threshold_active"`
	ThresholdMS     float64         `json:"threshold_ms,omitempty"`
	P99MS           float64         `json:"p99_ms,omitempty"`
	Slowest         []flight.Record `json:"slowest"`
	Recent          []flight.Record `json:"recent"`
}

func (s *Server) debugQueriesState(n int) debugQueriesResponse {
	resp := debugQueriesResponse{
		Observed: s.flight.Observed(),
		Slow:     s.flight.SlowCount(),
		Slowest:  s.flight.Slowest(),
		Recent:   s.flight.Recent(n),
	}
	if thr, ok := s.flight.Threshold(); ok {
		resp.ThresholdActive = true
		resp.ThresholdMS = float64(thr) / float64(time.Millisecond)
	}
	if p, ok := s.flight.P99(); ok {
		resp.P99MS = float64(p) / float64(time.Millisecond)
	}
	if len(resp.Slowest) > n {
		resp.Slowest = resp.Slowest[:n]
	}
	return resp
}

// debugPage renders /debug/queries?format=html — a dependency-free
// one-page view for a browser next to a misbehaving deployment.
var debugPage = template.Must(template.New("queries").Parse(`<!doctype html>
<html><head><title>spatialseq query flight recorder</title>
<style>
body{font-family:ui-monospace,monospace;margin:1.5em}
table{border-collapse:collapse;margin:0.5em 0}
td,th{border:1px solid #bbb;padding:2px 8px;text-align:right}
td.l,th.l{text-align:left}
th{background:#eee}
</style></head><body>
<h1>query flight recorder</h1>
<p>observed {{.Observed}} &middot; slow {{.Slow}}{{if .ThresholdActive}} &middot; threshold {{printf "%.3f" .ThresholdMS}} ms{{end}}{{if .P99MS}} &middot; p99 {{printf "%.3f" .P99MS}} ms{{end}}</p>
<h2>slowest (tail-sampled)</h2>
{{template "tbl" .Slowest}}
<h2>recent</h2>
{{template "tbl" .Recent}}
{{define "tbl"}}{{if .}}<table>
<tr><th class=l>request</th><th>seq</th><th>shard</th><th>latency ms</th><th class=l>algorithm</th><th class=l>variant</th><th>m</th><th>pins</th><th>k</th><th class=l>cache</th><th class=l>outcome</th><th class=l>capture</th><th>imbalance</th><th class=l>trace</th></tr>
{{range .}}<tr><td class=l>{{.RequestID}}</td><td>{{.Seq}}</td><td>{{if ge .ShardID 0}}{{.ShardID}}{{end}}</td><td>{{printf "%.3f" .LatencyMS}}</td><td class=l>{{.Algorithm}}</td><td class=l>{{.Variant}}</td><td>{{.M}}</td><td>{{.Pins}}</td><td>{{.K}}</td><td class=l>{{if .CacheHit}}hit{{else}}miss{{end}}</td><td class=l>{{.Outcome}}</td><td class=l>{{if .Capture}}yes{{end}}</td><td>{{if .Skew}}{{printf "%.2f" .Skew.ImbalanceRatio}}{{end}}</td><td class=l>{{if and .Spans .RequestID}}<a href="/debug/trace/{{.RequestID}}?format=html">trace</a>{{end}}</td></tr>
{{end}}</table>{{else}}<p>(none)</p>{{end}}{{end}}
</body></html>
`))

func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	n := 50
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("invalid n %q", v)})
			return
		}
		n = parsed
	}
	resp := s.debugQueriesState(n)
	switch r.URL.Query().Get("format") {
	case "", "json":
		s.writeJSON(w, http.StatusOK, resp)
	case "html":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := debugPage.Execute(w, resp); err != nil {
			s.logWriteErr(r.Context(), err)
		}
	default:
		s.writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("unknown format %q", r.URL.Query().Get("format"))})
	}
}

// handleDebugCapture exports the retained slow queries in the replayable
// capture format `seqbench -exp replay` consumes.
func (s *Server) handleDebugCapture(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.flight.CaptureFile())
}

// SnapRequest is the /snap request body: a map click to resolve to the
// nearest real objects (the example-selection interaction of Fig. 2).
type SnapRequest struct {
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Category string  `json:"category,omitempty"` // empty = any category
	K        int     `json:"k,omitempty"`        // default 5
}

// SnapResponse is the /snap response body.
type SnapResponse struct {
	Results []SnapResult `json:"results"`
}

// SnapResult is one nearest object.
type SnapResult struct {
	Object ResultObject `json:"object"`
	Dist   float64      `json:"dist"`
}

func (s *Server) handleSnap(w http.ResponseWriter, r *http.Request) {
	var req SnapRequest
	if err := decodeStrict(r, &req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON: " + err.Error()})
		return
	}
	ds := s.eng.Dataset()
	cat := dataset.NoCategory
	if req.Category != "" {
		var ok bool
		cat, ok = ds.CategoryByName(req.Category)
		if !ok {
			s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown category %q", req.Category)})
			return
		}
	}
	k := req.K
	if k <= 0 {
		k = 5
	}
	var resp SnapResponse
	for _, sr := range s.eng.Snap(geo.Point{X: req.X, Y: req.Y}, cat, k) {
		o := ds.Object(int(sr.Position))
		resp.Results = append(resp.Results, SnapResult{
			Dist: sr.Dist,
			Object: ResultObject{
				ID: o.ID, Name: o.Name, X: o.Loc.X, Y: o.Loc.Y,
				Category: ds.CategoryName(o.Category), Attrs: o.Attr,
			},
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// lookupID resolves a dataset object ID to its position, building the
// index once on first use (the dataset is immutable, so the index never
// goes stale).
func (s *Server) lookupID(id int64) (int32, bool) {
	s.idOnce.Do(func() {
		ds := s.eng.Dataset()
		s.idIndex = make(map[int64]int32, ds.Len())
		for i := 0; i < ds.Len(); i++ {
			s.idIndex[ds.Object(i).ID] = int32(i)
		}
	})
	pos, ok := s.idIndex[id]
	return pos, ok
}

func (s *Server) buildQuery(req *SearchRequest) (*query.Query, error) {
	ds := s.eng.Dataset()
	if len(req.Example) < 2 {
		return nil, fmt.Errorf("example needs at least 2 objects, got %d", len(req.Example))
	}
	q := &query.Query{
		Params: query.Params{K: req.K, Alpha: req.Alpha, Beta: req.Beta, GridD: req.GridD, Xi: req.Xi},
	}
	switch req.Variant {
	case "", "cseq":
		q.Variant = query.CSEQ
	case "seq":
		q.Variant = query.SEQ
	case "cseq-fp":
		q.Variant = query.CSEQFP
	default:
		return nil, fmt.Errorf("unknown variant %q", req.Variant)
	}
	for dim, eo := range req.Example {
		cat, ok := ds.CategoryByName(eo.Category)
		if !ok {
			return nil, fmt.Errorf("example[%d]: unknown category %q", dim, eo.Category)
		}
		attrs := eo.Attrs
		if attrs == nil {
			attrs = categoryCentroid(ds, cat)
			if attrs == nil {
				return nil, fmt.Errorf("example[%d]: category %q is empty; supply attrs", dim, eo.Category)
			}
		}
		q.Example.Categories = append(q.Example.Categories, cat)
		q.Example.Locations = append(q.Example.Locations, geo.Point{X: eo.X, Y: eo.Y})
		q.Example.Attrs = append(q.Example.Attrs, attrs)
		if eo.FixedID != nil {
			pos, ok := s.lookupID(*eo.FixedID)
			if !ok {
				return nil, fmt.Errorf("example[%d]: fixed_id %d not in dataset", dim, *eo.FixedID)
			}
			q.Example.Fixed = append(q.Example.Fixed, query.FixedPoint{Dim: dim, Obj: pos})
		}
	}
	return q, nil
}

func (s *Server) buildResponse(q *query.Query, res *core.Result) SearchResponse {
	ds := s.eng.Dataset()
	out := SearchResponse{
		Algorithm: res.Algorithm.String(),
		Variant:   q.Variant.String(),
		ElapsedMS: float64(res.Elapsed) / float64(time.Millisecond),
	}
	for _, t := range res.Tuples {
		rt := ResultTuple{Sim: t.Sim}
		for _, pos := range t.Positions {
			o := ds.Object(int(pos))
			rt.Objects = append(rt.Objects, ResultObject{
				ID:       o.ID,
				Name:     o.Name,
				X:        o.Loc.X,
				Y:        o.Loc.Y,
				Category: ds.CategoryName(o.Category),
				Attrs:    o.Attr,
			})
		}
		out.Results = append(out.Results, rt)
	}
	return out
}

func categoryCentroid(ds *dataset.Dataset, cat dataset.CategoryID) []float64 {
	objs := ds.CategoryObjects(cat)
	if len(objs) == 0 {
		return nil
	}
	centroid := make([]float64, ds.AttrDim())
	for _, pos := range objs {
		for j, a := range ds.Object(int(pos)).Attr {
			centroid[j] += a
		}
	}
	for j := range centroid {
		centroid[j] /= float64(len(objs))
	}
	return centroid
}

// writeJSON writes v as the response body. Encode errors (a client gone
// mid-body, or an unencodable value) are logged rather than silently
// dropped — the status line is already on the wire, so logging is all
// that is left to do.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logWriteErr(context.Background(), err)
	}
}

// logWriteErr records a response-encoding failure at warn level.
func (s *Server) logWriteErr(ctx context.Context, err error) {
	s.logger.LogAttrs(ctx, slog.LevelWarn, "response write failed",
		slog.String("id", obs.RequestID(ctx)),
		slog.String("error", err.Error()))
}
