// Package server exposes the example-based search engine as a JSON HTTP
// API — the "map service" surface of the paper's Figure 2. The handler is
// stateless beyond the immutable engine, so it is safe for concurrent use.
//
// Endpoints:
//
//	GET  /healthz        liveness probe
//	GET  /stats          dataset summary (size, categories, bounds)
//	GET  /categories     category names and sizes
//	GET  /metrics        Prometheus text exposition of the server metrics
//	POST /search         run a query; see SearchRequest / SearchResponse
//	POST /snap           snap a map click to nearby objects
//	GET  /debug/pprof/*  runtime profiles (only with Config.EnablePprof)
//
// Every request gets an X-Request-ID and a structured JSON log line
// (configure Config.Logger; the default discards logs). Metrics cover
// per-endpoint request/status counts, in-flight requests, per-algorithm
// search latency, cumulative engine work counters and query-cache state.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"spatialseq/internal/core"
	"spatialseq/internal/dataset"
	"spatialseq/internal/export"
	"spatialseq/internal/geo"
	"spatialseq/internal/obs"
	"spatialseq/internal/qcache"
	"spatialseq/internal/query"
	"spatialseq/internal/stats"
)

// Config tunes a Server. The zero value gives the defaults of New.
type Config struct {
	// Timeout bounds each search request (default 30s).
	Timeout time.Duration
	// CacheSize is the query-cache capacity in entries (<= 0 uses
	// qcache.DefaultSize).
	CacheSize int
	// Logger receives one structured record per request plus warnings.
	// Nil discards logs.
	Logger *slog.Logger
	// Metrics is the registry the server's metrics are registered in and
	// that GET /metrics renders. Nil creates a private registry.
	Metrics *obs.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

// Server handles the HTTP API for one engine.
type Server struct {
	eng *core.Engine
	// Timeout bounds each search request (default 30s).
	Timeout time.Duration
	cache   *qcache.Cache
	mux     *http.ServeMux
	logger  *slog.Logger
	reg     *obs.Registry

	inflight obs.Gauge
	requests *obs.CounterVec
	latency  *obs.HistogramVec
	work     *obs.CounterVec

	// idOnce guards the lazy one-time build of idIndex, the dataset's
	// id -> position map used to resolve CSEQ-FP fixed_id references.
	idOnce  sync.Once
	idIndex map[int64]int32
}

// New builds a Server around eng with the default configuration.
func New(eng *core.Engine) *Server {
	return NewWith(eng, Config{})
}

// NewWith builds a Server around eng with cfg.
func NewWith(eng *core.Engine, cfg Config) *Server {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	s := &Server{
		eng:     eng,
		Timeout: cfg.Timeout,
		cache:   qcache.New(cfg.CacheSize),
		mux:     http.NewServeMux(),
		logger:  cfg.Logger,
		reg:     cfg.Metrics,
	}
	s.inflight = cfg.Metrics.Gauge("spatialseq_http_in_flight_requests",
		"Requests currently being served.").With()
	s.requests = cfg.Metrics.Counter("spatialseq_http_requests_total",
		"Completed HTTP requests.", "endpoint", "code")
	s.latency = cfg.Metrics.Histogram("spatialseq_search_duration_seconds",
		"Engine search latency (cache hits excluded).", nil, "algorithm")
	s.work = cfg.Metrics.Counter("spatialseq_search_work_total",
		"Cumulative engine work counters, by stats.Snapshot field.", "counter")
	cache := s.cache
	cfg.Metrics.GaugeFunc("spatialseq_qcache_hits",
		"Query-cache hits since start.",
		func() float64 { return float64(cache.Metrics().Hits) })
	cfg.Metrics.GaugeFunc("spatialseq_qcache_misses",
		"Query-cache misses since start.",
		func() float64 { return float64(cache.Metrics().Misses) })
	cfg.Metrics.GaugeFunc("spatialseq_qcache_evictions",
		"Query-cache LRU evictions since start.",
		func() float64 { return float64(cache.Metrics().Evictions) })
	cfg.Metrics.GaugeFunc("spatialseq_qcache_entries",
		"Query-cache resident entries.",
		func() float64 { return float64(cache.Metrics().Len) })

	s.handle("/healthz", http.MethodGet, s.handleHealthz)
	s.handle("/stats", http.MethodGet, s.handleStats)
	s.handle("/categories", http.MethodGet, s.handleCategories)
	s.handle("/metrics", http.MethodGet, s.handleMetrics)
	s.handle("/search", http.MethodPost, s.handleSearch)
	s.handle("/snap", http.MethodPost, s.handleSnap)
	if cfg.EnablePprof {
		// pprof handlers manage their own content types and streaming
		// (the CPU profile blocks for its sampling window), so they mount
		// raw rather than through the instrumentation wrapper.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// handle mounts h at pattern with the shared instrumentation: method
// enforcement (405 with an Allow header), request IDs, the in-flight
// gauge, per-endpoint status counters and the access log.
func (s *Server) handle(pattern, method string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := obs.NewRequestID()
		w.Header().Set("X-Request-ID", id)
		rec := &obs.ResponseRecorder{ResponseWriter: w, Status: http.StatusOK}
		s.inflight.Inc()
		if r.Method != method {
			w.Header().Set("Allow", method)
			s.writeJSON(rec, http.StatusMethodNotAllowed,
				errorResponse{Error: method + " required"})
		} else {
			h(rec, r.WithContext(obs.WithRequestID(r.Context(), id)))
		}
		s.inflight.Dec()
		s.requests.With(pattern, strconv.Itoa(rec.Status)).Inc()
		s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("id", id),
			slog.String("method", r.Method),
			slog.String("path", pattern),
			slog.Int("status", rec.Status),
			slog.Int64("bytes", rec.Bytes),
			slog.Float64("duration_ms", float64(time.Since(start))/float64(time.Millisecond)))
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// ExampleObject is one dimension of the request example.
type ExampleObject struct {
	X        float64   `json:"x"`
	Y        float64   `json:"y"`
	Category string    `json:"category"`
	Attrs    []float64 `json:"attrs,omitempty"`
	// FixedID pins this dimension to the dataset object with this ID
	// (CSEQ-FP). Nil leaves the dimension free.
	FixedID *int64 `json:"fixed_id,omitempty"`
}

// SearchRequest is the /search request body.
type SearchRequest struct {
	Variant   string `json:"variant,omitempty"` // "cseq" (default), "seq", "cseq-fp"
	Algorithm string `json:"algorithm,omitempty"`
	// Format selects the response encoding: "" / "json" for
	// SearchResponse, "geojson" for an RFC 7946 FeatureCollection that a
	// map UI can render directly.
	Format string `json:"format,omitempty"`
	// IncludeStats attaches engine work counters and per-phase wall
	// times to the response (SearchResponse.Stats). Such requests bypass
	// the query cache so the timings describe this execution.
	IncludeStats bool            `json:"include_stats,omitempty"`
	K            int             `json:"k,omitempty"`
	Alpha        float64         `json:"alpha,omitempty"`
	Beta         float64         `json:"beta,omitempty"`
	GridD        int             `json:"grid_d,omitempty"`
	Xi           int             `json:"xi,omitempty"`
	Example      []ExampleObject `json:"example"`
}

// ResultObject is one matched object.
type ResultObject struct {
	ID       int64     `json:"id"`
	Name     string    `json:"name"`
	X        float64   `json:"x"`
	Y        float64   `json:"y"`
	Category string    `json:"category"`
	Attrs    []float64 `json:"attrs"`
}

// ResultTuple is one ranked answer.
type ResultTuple struct {
	Sim     float64        `json:"sim"`
	Objects []ResultObject `json:"objects"`
}

// SearchStats carries the optional observability payload of a response.
type SearchStats struct {
	// Work is the engine's per-search counter snapshot.
	Work stats.Snapshot `json:"work"`
	// Phases is the wall time spent per search phase; on the sequential
	// path the durations are disjoint, so they sum to at most
	// elapsed_ms.
	Phases []obs.PhaseTiming `json:"phases"`
}

// SearchResponse is the /search response body.
type SearchResponse struct {
	Algorithm string        `json:"algorithm"`
	Variant   string        `json:"variant"`
	ElapsedMS float64       `json:"elapsed_ms"`
	Results   []ResultTuple `json:"results"`
	// Stats is present when the request set include_stats.
	Stats *SearchStats `json:"stats,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if _, err := fmt.Fprintln(w, `{"status":"ok"}`); err != nil {
		s.logWriteErr(r.Context(), err)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WriteText(w); err != nil {
		s.logWriteErr(r.Context(), err)
	}
}

type statsResponse struct {
	Objects    int        `json:"objects"`
	Categories int        `json:"categories"`
	AttrDim    int        `json:"attr_dim"`
	Bounds     [4]float64 `json:"bounds"` // minx, miny, maxx, maxy
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ds := s.eng.Dataset()
	b := ds.Bounds()
	s.writeJSON(w, http.StatusOK, statsResponse{
		Objects:    ds.Len(),
		Categories: ds.NumCategories(),
		AttrDim:    ds.AttrDim(),
		Bounds:     [4]float64{b.MinX, b.MinY, b.MaxX, b.MaxY},
	})
}

// CategoryInfo describes one category for example-building clients.
type CategoryInfo struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

func (s *Server) handleCategories(w http.ResponseWriter, r *http.Request) {
	ds := s.eng.Dataset()
	out := make([]CategoryInfo, 0, ds.NumCategories())
	for c, size := range ds.CategorySizes() {
		out = append(out, CategoryInfo{Name: ds.CategoryName(dataset.CategoryID(c)), Count: size})
	}
	s.writeJSON(w, http.StatusOK, out)
}

// decodeStrict decodes a request body into dst, rejecting unknown fields
// and trailing data after the first JSON value (json.Decoder.Decode alone
// would silently ignore the latter).
func decodeStrict(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	if dec.Decode(&struct{}{}) != io.EOF {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if err := decodeStrict(r, &req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON: " + err.Error()})
		return
	}
	switch req.Format {
	case "", "json", "geojson":
	default:
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown format %q", req.Format)})
		return
	}
	q, err := s.buildQuery(&req)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	algo, err := core.ParseAlgorithm(req.Algorithm)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.Timeout)
	defer cancel()
	opt := core.Options{CollectStats: true}
	var (
		res    *core.Result
		cached bool
	)
	if req.IncludeStats {
		// Bypass the cache: the phase timings must describe this
		// execution, not a stored one.
		opt.Trace = obs.NewTrace()
		res, err = s.eng.Search(ctx, q, algo, opt)
	} else {
		res, cached, err = s.cache.Search(ctx, s.eng, q, algo, opt)
	}
	if err != nil {
		status := http.StatusBadRequest
		if ctx.Err() != nil {
			status = http.StatusGatewayTimeout
		}
		s.writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	switch {
	case req.IncludeStats:
		w.Header().Set("X-Cache", "bypass")
	case cached:
		w.Header().Set("X-Cache", "hit")
	default:
		w.Header().Set("X-Cache", "miss")
	}
	if !cached {
		// The engine actually ran: record latency and work. Cache hits
		// are excluded so the histogram measures search cost, not map
		// lookups, and work counters are not double-counted.
		s.latency.With(res.Algorithm.String()).Observe(res.Elapsed.Seconds())
		res.Stats.Each(func(name string, value int64) {
			s.work.With(name).Add(float64(value))
		})
	}
	if req.Format == "geojson" {
		w.Header().Set("Content-Type", "application/geo+json")
		w.WriteHeader(http.StatusOK)
		if err := export.Results(w, s.eng.Dataset(), q, res); err != nil {
			s.logWriteErr(r.Context(), err)
		}
		return
	}
	resp := s.buildResponse(q, res)
	if req.IncludeStats {
		resp.Stats = &SearchStats{Work: res.Stats, Phases: opt.Trace.Snapshot()}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// SnapRequest is the /snap request body: a map click to resolve to the
// nearest real objects (the example-selection interaction of Fig. 2).
type SnapRequest struct {
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Category string  `json:"category,omitempty"` // empty = any category
	K        int     `json:"k,omitempty"`        // default 5
}

// SnapResponse is the /snap response body.
type SnapResponse struct {
	Results []SnapResult `json:"results"`
}

// SnapResult is one nearest object.
type SnapResult struct {
	Object ResultObject `json:"object"`
	Dist   float64      `json:"dist"`
}

func (s *Server) handleSnap(w http.ResponseWriter, r *http.Request) {
	var req SnapRequest
	if err := decodeStrict(r, &req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON: " + err.Error()})
		return
	}
	ds := s.eng.Dataset()
	cat := dataset.NoCategory
	if req.Category != "" {
		var ok bool
		cat, ok = ds.CategoryByName(req.Category)
		if !ok {
			s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown category %q", req.Category)})
			return
		}
	}
	k := req.K
	if k <= 0 {
		k = 5
	}
	var resp SnapResponse
	for _, sr := range s.eng.Snap(geo.Point{X: req.X, Y: req.Y}, cat, k) {
		o := ds.Object(int(sr.Position))
		resp.Results = append(resp.Results, SnapResult{
			Dist: sr.Dist,
			Object: ResultObject{
				ID: o.ID, Name: o.Name, X: o.Loc.X, Y: o.Loc.Y,
				Category: ds.CategoryName(o.Category), Attrs: o.Attr,
			},
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// lookupID resolves a dataset object ID to its position, building the
// index once on first use (the dataset is immutable, so the index never
// goes stale).
func (s *Server) lookupID(id int64) (int32, bool) {
	s.idOnce.Do(func() {
		ds := s.eng.Dataset()
		s.idIndex = make(map[int64]int32, ds.Len())
		for i := 0; i < ds.Len(); i++ {
			s.idIndex[ds.Object(i).ID] = int32(i)
		}
	})
	pos, ok := s.idIndex[id]
	return pos, ok
}

func (s *Server) buildQuery(req *SearchRequest) (*query.Query, error) {
	ds := s.eng.Dataset()
	if len(req.Example) < 2 {
		return nil, fmt.Errorf("example needs at least 2 objects, got %d", len(req.Example))
	}
	q := &query.Query{
		Params: query.Params{K: req.K, Alpha: req.Alpha, Beta: req.Beta, GridD: req.GridD, Xi: req.Xi},
	}
	switch req.Variant {
	case "", "cseq":
		q.Variant = query.CSEQ
	case "seq":
		q.Variant = query.SEQ
	case "cseq-fp":
		q.Variant = query.CSEQFP
	default:
		return nil, fmt.Errorf("unknown variant %q", req.Variant)
	}
	for dim, eo := range req.Example {
		cat, ok := ds.CategoryByName(eo.Category)
		if !ok {
			return nil, fmt.Errorf("example[%d]: unknown category %q", dim, eo.Category)
		}
		attrs := eo.Attrs
		if attrs == nil {
			attrs = categoryCentroid(ds, cat)
			if attrs == nil {
				return nil, fmt.Errorf("example[%d]: category %q is empty; supply attrs", dim, eo.Category)
			}
		}
		q.Example.Categories = append(q.Example.Categories, cat)
		q.Example.Locations = append(q.Example.Locations, geo.Point{X: eo.X, Y: eo.Y})
		q.Example.Attrs = append(q.Example.Attrs, attrs)
		if eo.FixedID != nil {
			pos, ok := s.lookupID(*eo.FixedID)
			if !ok {
				return nil, fmt.Errorf("example[%d]: fixed_id %d not in dataset", dim, *eo.FixedID)
			}
			q.Example.Fixed = append(q.Example.Fixed, query.FixedPoint{Dim: dim, Obj: pos})
		}
	}
	return q, nil
}

func (s *Server) buildResponse(q *query.Query, res *core.Result) SearchResponse {
	ds := s.eng.Dataset()
	out := SearchResponse{
		Algorithm: res.Algorithm.String(),
		Variant:   q.Variant.String(),
		ElapsedMS: float64(res.Elapsed) / float64(time.Millisecond),
	}
	for _, t := range res.Tuples {
		rt := ResultTuple{Sim: t.Sim}
		for _, pos := range t.Positions {
			o := ds.Object(int(pos))
			rt.Objects = append(rt.Objects, ResultObject{
				ID:       o.ID,
				Name:     o.Name,
				X:        o.Loc.X,
				Y:        o.Loc.Y,
				Category: ds.CategoryName(o.Category),
				Attrs:    o.Attr,
			})
		}
		out.Results = append(out.Results, rt)
	}
	return out
}

func categoryCentroid(ds *dataset.Dataset, cat dataset.CategoryID) []float64 {
	objs := ds.CategoryObjects(cat)
	if len(objs) == 0 {
		return nil
	}
	centroid := make([]float64, ds.AttrDim())
	for _, pos := range objs {
		for j, a := range ds.Object(int(pos)).Attr {
			centroid[j] += a
		}
	}
	for j := range centroid {
		centroid[j] /= float64(len(objs))
	}
	return centroid
}

// writeJSON writes v as the response body. Encode errors (a client gone
// mid-body, or an unencodable value) are logged rather than silently
// dropped — the status line is already on the wire, so logging is all
// that is left to do.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logWriteErr(context.Background(), err)
	}
}

// logWriteErr records a response-encoding failure at warn level.
func (s *Server) logWriteErr(ctx context.Context, err error) {
	s.logger.LogAttrs(ctx, slog.LevelWarn, "response write failed",
		slog.String("id", obs.RequestID(ctx)),
		slog.String("error", err.Error()))
}
