package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"spatialseq/internal/core"
	"spatialseq/internal/obs"
	"spatialseq/internal/testutil"
)

// TestSearchErrorPaths walks every /search rejection class — malformed
// body, unknown algorithm, out-of-range alpha/beta/k/grid — and asserts
// both halves of the error contract: a 400 with a structured JSON error
// body, and the per-endpoint error counter advancing once per rejection.
func TestSearchErrorPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ds := testutil.RandDataset(rng, 100, 3, 4, 100)
	reg := obs.NewRegistry()
	srv := NewWith(core.NewEngine(ds), Config{Metrics: reg})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cat := ds.CategoryName(ds.Category(0))
	ex := fmt.Sprintf(`[{"x":1,"y":2,"category":%q},{"x":3,"y":4,"category":%q}]`, cat, cat)
	cases := []struct {
		name, body string
	}{
		{"malformed body", `{"algorithm":`},
		{"trailing garbage", `{"example":` + ex + `} extra`},
		{"unknown field", `{"zzz":1,"example":` + ex + `}`},
		{"unknown algorithm", `{"algorithm":"quantum","example":` + ex + `}`},
		{"unknown variant", `{"variant":"zzz","example":` + ex + `}`},
		{"unknown format", `{"format":"xml","example":` + ex + `}`},
		{"alpha above range", `{"alpha":7,"example":` + ex + `}`},
		{"alpha NaN-ish", `{"alpha":-0.5,"example":` + ex + `}`},
		{"beta below one", `{"beta":0.2,"example":` + ex + `}`},
		{"negative k", `{"k":-3,"example":` + ex + `}`},
		{"k above ceiling", `{"k":10001,"example":` + ex + `}`},
		{"grid above ceiling", `{"grid_d":2000,"example":` + ex + `}`},
		{"single example object", `{"example":[{"x":1,"y":2,"category":` + fmt.Sprintf("%q", cat) + `}]}`},
		{"unknown category", `{"example":[{"category":"nope"},{"category":"nope"}]}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/search", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var er errorResponse
		derr := json.NewDecoder(resp.Body).Decode(&er)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
		if derr != nil || er.Error == "" {
			t.Errorf("%s: expected structured JSON error body, decode err=%v", tc.name, derr)
		}
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mr.Body); err != nil {
		t.Fatal(err)
	}
	mr.Body.Close()
	text := buf.String()
	want := fmt.Sprintf(`spatialseq_http_requests_total{endpoint="/search",code="400"} %d`, len(cases))
	if !strings.Contains(text, want+"\n") {
		t.Errorf("metrics output missing %q", want)
	}
	if strings.Contains(text, `spatialseq_http_requests_total{endpoint="/search",code="200"}`) {
		t.Error("no search succeeded, yet a 200 counter exists")
	}
}

// TestSearchParamCeilings pins the request-size ceilings at the HTTP
// boundary: the largest accepted k and grid resolution pass validation,
// one past them is rejected. (The ceilings exist so untrusted requests
// cannot make the engine materialise a billion-bucket grid or a
// billion-entry heap.)
func TestSearchParamCeilings(t *testing.T) {
	ts, ds := newTestServer(t)
	o1, o2 := ds.Object(0), ds.Object(1)
	mk := func(k, gridD int) SearchRequest {
		return SearchRequest{
			Algorithm: "hsp",
			K:         k,
			Beta:      5,
			GridD:     gridD,
			Example: []ExampleObject{
				{X: o1.Loc.X, Y: o1.Loc.Y, Category: ds.CategoryName(o1.Category)},
				{X: o2.Loc.X, Y: o2.Loc.Y, Category: ds.CategoryName(o2.Category)},
			},
		}
	}
	if resp, body := postSearch(t, ts, mk(10000, 1024)); resp.StatusCode != http.StatusOK {
		t.Errorf("max in-range params rejected: status %d, body %s", resp.StatusCode, body)
	}
	if resp, _ := postSearch(t, ts, mk(10001, 4)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("k above ceiling: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postSearch(t, ts, mk(3, 1025)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("grid above ceiling: status %d, want 400", resp.StatusCode)
	}
}
