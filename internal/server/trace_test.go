package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// searchWithID posts a search stamped with a caller-chosen request ID, so
// the test can address the retained trace afterwards.
func searchWithID(t *testing.T, url, id string, req SearchRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, url+"/search", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set("X-Request-ID", id)
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestDebugTraceChromeJSON(t *testing.T) {
	ts, ds, _ := newFlightTestServer(t)
	const id = "trace-test-1"
	if resp := searchWithID(t, ts.URL, id, searchReq(ds)); resp.StatusCode != http.StatusOK {
		t.Fatalf("search status = %d", resp.StatusCode)
	}
	resp, body := getBody(t, ts.URL+"/debug/trace/"+id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q", ct)
	}
	var tracef struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(body, &tracef); err != nil {
		t.Fatalf("not Chrome trace JSON: %v", err)
	}
	if len(tracef.TraceEvents) == 0 || tracef.DisplayTimeUnit != "ms" {
		t.Fatalf("malformed trace: %d events, unit %q", len(tracef.TraceEvents), tracef.DisplayTimeUnit)
	}
	names := make(map[string]bool)
	for _, ev := range tracef.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name] = true
		}
	}
	for _, want := range []string{"search", "hsp.worker", "hsp.subspace"} {
		if !names[want] {
			t.Errorf("trace has no %q span (got %v)", want, names)
		}
	}
}

func TestDebugTraceHTMLTimeline(t *testing.T) {
	ts, ds, _ := newFlightTestServer(t)
	const id = "trace-test-html"
	if resp := searchWithID(t, ts.URL, id, searchReq(ds)); resp.StatusCode != http.StatusOK {
		t.Fatalf("search status = %d", resp.StatusCode)
	}
	resp, body := getBody(t, ts.URL+"/debug/trace/"+id+"?format=html")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("Content-Type = %q", ct)
	}
	page := string(body)
	for _, want := range []string{"trace " + id, "hsp.subspace", "timeline", "class=bar"} {
		if !strings.Contains(page, want) {
			t.Errorf("timeline page missing %q", want)
		}
	}
}

func TestDebugTraceErrors(t *testing.T) {
	ts, _, _ := newFlightTestServer(t)
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/debug/trace/unknown-but-valid", http.StatusNotFound},
		{"/debug/trace/", http.StatusBadRequest},
		{"/debug/trace/bad!id", http.StatusBadRequest},
		{"/debug/trace/unknown-but-valid?format=xml", http.StatusNotFound},
	} {
		if resp, body := getBody(t, ts.URL+tc.path); resp.StatusCode != tc.want {
			t.Errorf("GET %s: status = %d, want %d: %s", tc.path, resp.StatusCode, tc.want, body)
		}
	}
	// Unknown format on an existing trace is the caller's error, not ours.
	ts2, ds, _ := newFlightTestServer(t)
	const id = "trace-test-fmt"
	searchWithID(t, ts2.URL, id, searchReq(ds))
	if resp, _ := getBody(t, ts2.URL+"/debug/trace/"+id+"?format=xml"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format status = %d, want 400", resp.StatusCode)
	}
}

// TestDebugQueriesLinksTraces pins the /debug/queries HTML integration:
// rows of span-retaining records link to their trace page and show the
// imbalance ratio column.
func TestDebugQueriesLinksTraces(t *testing.T) {
	ts, ds, _ := newFlightTestServer(t)
	const id = "trace-test-link"
	if resp := searchWithID(t, ts.URL, id, searchReq(ds)); resp.StatusCode != http.StatusOK {
		t.Fatalf("search status = %d", resp.StatusCode)
	}
	_, body := getBody(t, ts.URL+"/debug/queries?format=html")
	page := string(body)
	for _, want := range []string{
		"<th>imbalance</th>",
		`<a href="/debug/trace/` + id + `?format=html">trace</a>`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("debug page missing %q", want)
		}
	}
}

// TestSkewInStatsAndMetrics checks the skew surface: include_stats
// responses carry the report and /metrics exposes the histograms.
func TestSkewInStatsAndMetrics(t *testing.T) {
	ts, ds, _ := newFlightTestServer(t)
	req := searchReq(ds)
	req.IncludeStats = true
	resp, body := postSearch(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status = %d: %s", resp.StatusCode, body)
	}
	var sr SearchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Stats == nil || sr.Stats.Skew == nil {
		t.Fatalf("skew report missing from include_stats response: %s", body)
	}
	if sr.Stats.Skew.Workers < 1 || sr.Stats.Skew.ImbalanceRatio < 1 {
		t.Errorf("implausible skew report: %+v", sr.Stats.Skew)
	}
	_, body = getBody(t, ts.URL+"/metrics")
	text := string(body)
	for _, want := range []string{
		"spatialseq_spans_dropped_total 0",
		`spatialseq_subspace_imbalance_ratio_count{algorithm="hsp"} 1`,
		`spatialseq_span_critical_path_seconds_count{algorithm="hsp"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
