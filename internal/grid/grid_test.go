package grid

import (
	"math"
	"math/rand"
	"testing"

	"spatialseq/internal/geo"
)

func mustGrid(t *testing.T, b geo.Rect, d int) *Grid {
	t.Helper()
	g, err := New(b, d)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 0); err == nil {
		t.Error("d=0 should fail")
	}
	if _, err := New(geo.EmptyRect(), 3); err == nil {
		t.Error("empty bounds should fail")
	}
}

func TestCellAssignment(t *testing.T) {
	g := mustGrid(t, geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 5)
	if g.NumCells() != 25 || g.D() != 5 {
		t.Fatalf("NumCells = %d, D = %d", g.NumCells(), g.D())
	}
	cases := []struct {
		p    geo.Point
		want int
	}{
		{geo.Point{X: 0.5, Y: 0.5}, 0},
		{geo.Point{X: 9.5, Y: 0.5}, 4},
		{geo.Point{X: 0.5, Y: 9.5}, 20},
		{geo.Point{X: 9.5, Y: 9.5}, 24},
		{geo.Point{X: 5, Y: 5}, 12},   // boundary lands in the upper cell
		{geo.Point{X: 10, Y: 10}, 24}, // max corner clamped into last cell
		{geo.Point{X: -1, Y: -1}, 0},  // outside clamps
		{geo.Point{X: 11, Y: 11}, 24},
	}
	for _, c := range cases {
		if got := g.Cell(c.p); got != c.want {
			t.Errorf("Cell(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestCellRectRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := mustGrid(t, geo.Rect{MinX: -5, MinY: 3, MaxX: 15, MaxY: 13}, 7)
	for c := 0; c < g.NumCells(); c++ {
		r := g.CellRect(c)
		if got := g.Cell(r.Center()); got != c {
			t.Errorf("Cell(center of cell %d) = %d", c, got)
		}
		// random interior points map back
		for i := 0; i < 5; i++ {
			p := geo.Point{
				X: r.MinX + rng.Float64()*r.Width(),
				Y: r.MinY + rng.Float64()*r.Height(),
			}
			got := g.Cell(p)
			// boundary points may land in a neighbour; use strictly interior
			if p.X > r.MinX && p.X < r.MaxX && p.Y > r.MinY && p.Y < r.MaxY && got != c {
				t.Errorf("interior point %v of cell %d mapped to %d", p, c, got)
			}
		}
	}
}

func TestCellRectsTileBounds(t *testing.T) {
	g := mustGrid(t, geo.Rect{MinX: 0, MinY: 0, MaxX: 9, MaxY: 9}, 3)
	var area float64
	union := geo.EmptyRect()
	for c := 0; c < g.NumCells(); c++ {
		r := g.CellRect(c)
		area += r.Area()
		union = union.Union(r)
	}
	if math.Abs(area-81) > 1e-9 {
		t.Errorf("total cell area = %g, want 81", area)
	}
	if union != g.Bounds() {
		t.Errorf("cells union = %v, bounds %v", union, g.Bounds())
	}
}

func TestCellSize(t *testing.T) {
	g := mustGrid(t, geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 4}, 4)
	w, h := g.CellSize()
	if w != 2.5 || h != 1 {
		t.Errorf("CellSize = %g,%g", w, h)
	}
	if g.MaxCellSide() != 2.5 {
		t.Errorf("MaxCellSide = %g", g.MaxCellSide())
	}
}

func TestMinMaxDist(t *testing.T) {
	g := mustGrid(t, geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 5) // 2x2 cells
	if got := g.MinDist(0, 0); got != 0 {
		t.Errorf("MinDist self = %g", got)
	}
	if got := g.MinDist(0, 1); got != 0 {
		t.Errorf("adjacent MinDist = %g", got)
	}
	if got := g.MinDist(0, 2); got != 2 {
		t.Errorf("one-apart MinDist = %g, want 2", got)
	}
	wantMax := math.Sqrt(4*4 + 2*2)
	if got := g.MaxDist(0, 1); math.Abs(got-wantMax) > 1e-9 {
		t.Errorf("MaxDist(0,1) = %g, want %g", got, wantMax)
	}
}

func TestMinMaxDistSandwichProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := mustGrid(t, geo.Rect{MinX: 0, MinY: 0, MaxX: 20, MaxY: 20}, 4)
	for trial := 0; trial < 200; trial++ {
		a := rng.Intn(g.NumCells())
		b := rng.Intn(g.NumCells())
		ra, rb := g.CellRect(a), g.CellRect(b)
		lo, hi := g.MinDist(a, b), g.MaxDist(a, b)
		p := geo.Point{X: ra.MinX + rng.Float64()*ra.Width(), Y: ra.MinY + rng.Float64()*ra.Height()}
		q := geo.Point{X: rb.MinX + rng.Float64()*rb.Width(), Y: rb.MinY + rng.Float64()*rb.Height()}
		d := p.Dist(q)
		if d < lo-1e-9 || d > hi+1e-9 {
			t.Fatalf("distance %g outside [%g,%g] for cells %d,%d", d, lo, hi, a, b)
		}
	}
}

func TestDegenerateOneCell(t *testing.T) {
	g := mustGrid(t, geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 1)
	if g.NumCells() != 1 {
		t.Fatalf("NumCells = %d", g.NumCells())
	}
	if g.Cell(geo.Point{X: 0.5, Y: 0.5}) != 0 {
		t.Error("everything maps to cell 0")
	}
	if g.CellRect(0) != g.Bounds() {
		t.Error("single cell covers bounds")
	}
}
