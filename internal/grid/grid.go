// Package grid provides the uniform D x D cell decomposition that LORA
// imposes on each ac-subspace. A Grid maps points to cells and exposes the
// per-cell geometry (rects, min/max inter-cell distances) that the
// cell-tuple bounds need.
package grid

import (
	"fmt"

	"spatialseq/internal/geo"
)

// Grid is a D x D decomposition of a rectangle. Cells are indexed
// 0..D*D-1 in row-major order (cell = row*D + col).
type Grid struct {
	bounds geo.Rect
	d      int
	cw, ch float64 // cell width / height
}

// New builds a grid with d cells per side over bounds. d must be >= 1 and
// bounds must be non-empty.
func New(bounds geo.Rect, d int) (*Grid, error) {
	if d < 1 {
		return nil, fmt.Errorf("grid: cells per side must be >= 1, got %d", d)
	}
	if bounds.IsEmpty() {
		return nil, fmt.Errorf("grid: empty bounds")
	}
	return &Grid{
		bounds: bounds,
		d:      d,
		cw:     bounds.Width() / float64(d),
		ch:     bounds.Height() / float64(d),
	}, nil
}

// D returns the number of cells per side.
func (g *Grid) D() int { return g.d }

// NumCells returns D*D.
func (g *Grid) NumCells() int { return g.d * g.d }

// Bounds returns the gridded rectangle.
func (g *Grid) Bounds() geo.Rect { return g.bounds }

// CellSize returns the (width, height) of one cell. The paper's theory
// works with square cells of side d; our grids follow the subspace aspect
// ratio, so Theorem 3 style bounds use the cell diagonal via MaxCellSide.
func (g *Grid) CellSize() (w, h float64) { return g.cw, g.ch }

// MaxCellSide returns max(cell width, cell height) — the "d" in the
// accuracy analysis of Theorem 3.
func (g *Grid) MaxCellSide() float64 {
	if g.cw > g.ch {
		return g.cw
	}
	return g.ch
}

// Cell returns the cell index containing p. Points outside the bounds are
// clamped to the nearest boundary cell (the partitioner only feeds points
// inside the subspace, but degenerate boundary arithmetic must not panic).
func (g *Grid) Cell(p geo.Point) int {
	col := g.axisCell(p.X-g.bounds.MinX, g.cw)
	row := g.axisCell(p.Y-g.bounds.MinY, g.ch)
	return row*g.d + col
}

func (g *Grid) axisCell(off, size float64) int {
	if size <= 0 {
		return 0
	}
	c := int(off / size)
	if c < 0 {
		c = 0
	}
	if c >= g.d {
		c = g.d - 1
	}
	return c
}

// CellRect returns the rectangle of cell c.
func (g *Grid) CellRect(c int) geo.Rect {
	row, col := c/g.d, c%g.d
	return geo.Rect{
		MinX: g.bounds.MinX + float64(col)*g.cw,
		MinY: g.bounds.MinY + float64(row)*g.ch,
		MaxX: g.bounds.MinX + float64(col+1)*g.cw,
		MaxY: g.bounds.MinY + float64(row+1)*g.ch,
	}
}

// MinDist returns the minimal distance between any point of cell a and any
// point of cell b (0 for the same or adjacent cells).
func (g *Grid) MinDist(a, b int) float64 {
	return g.CellRect(a).MinDist(g.CellRect(b))
}

// MaxDist returns the maximal distance between any point of cell a and any
// point of cell b.
func (g *Grid) MaxDist(a, b int) float64 {
	return g.CellRect(a).MaxDist(g.CellRect(b))
}
