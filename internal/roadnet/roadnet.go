// Package roadnet provides a road-network travel-distance substrate for
// the similarity model's pluggable metric (paper Section II-A: "applying
// other metrics such as traveling distances is possible").
//
// A Network is an undirected weighted graph embedded in the plane. Travel
// distance between two arbitrary locations is access leg (straight line to
// the nearest road node) + shortest path + egress leg; because every edge
// weight is at least its straight-line length, travel distance dominates
// the Euclidean distance, which keeps HSP's and LORA's Euclidean space
// partitioning sound under this metric (see query.Metric).
//
// Shortest-path trees are computed with Dijkstra's algorithm and cached
// per source node with an LRU policy, since example-based queries evaluate
// many distances from the same few example locations.
package roadnet

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"spatialseq/internal/geo"
	"spatialseq/internal/rtree"
)

// Network is an immutable embedded road graph. Build one with NewNetwork
// or the Grid generator; concurrent readers are safe (the metric cache is
// internally locked).
type Network struct {
	nodes []geo.Point
	adj   [][]halfEdge
	snap  *rtree.Tree
}

type halfEdge struct {
	to int32
	w  float64
}

// NewNetwork builds a network from node locations and undirected edges.
// Edge weights must be >= the straight-line distance between their
// endpoints; a weight of 0 means "use the straight-line distance".
func NewNetwork(nodes []geo.Point, edges [][2]int32, weights []float64) (*Network, error) {
	if len(weights) != 0 && len(weights) != len(edges) {
		return nil, fmt.Errorf("roadnet: %d weights for %d edges", len(weights), len(edges))
	}
	n := &Network{
		nodes: append([]geo.Point(nil), nodes...),
		adj:   make([][]halfEdge, len(nodes)),
	}
	for i, e := range edges {
		a, b := e[0], e[1]
		if a < 0 || int(a) >= len(nodes) || b < 0 || int(b) >= len(nodes) {
			return nil, fmt.Errorf("roadnet: edge %d references node out of range", i)
		}
		if a == b {
			return nil, fmt.Errorf("roadnet: edge %d is a self loop", i)
		}
		straight := nodes[a].Dist(nodes[b])
		w := straight
		if len(weights) != 0 && weights[i] != 0 {
			w = weights[i]
			if w < straight {
				return nil, fmt.Errorf("roadnet: edge %d weight %g below straight-line distance %g", i, w, straight)
			}
		}
		n.adj[a] = append(n.adj[a], halfEdge{to: b, w: w})
		n.adj[b] = append(n.adj[b], halfEdge{to: a, w: w})
	}
	n.snap = rtree.New(n.nodes, nil)
	return n, nil
}

// NumNodes returns the number of road nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }

// Node returns the location of node i.
func (n *Network) Node(i int32) geo.Point { return n.nodes[i] }

// SnapNode returns the road node nearest to p (-1 for an empty network).
func (n *Network) SnapNode(p geo.Point) int32 {
	nb := n.snap.Nearest(p, 1, nil)
	if len(nb) == 0 {
		return -1
	}
	return nb[0].Ref
}

// ShortestPaths runs Dijkstra from src and returns the distance to every
// node (+Inf where unreachable).
func (n *Network) ShortestPaths(src int32) []float64 {
	dist := make([]float64, len(n.nodes))
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if src < 0 || int(src) >= len(n.nodes) {
		return dist
	}
	dist[src] = 0
	pq := &distQueue{{node: src, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.dist > dist[it.node] {
			continue // stale entry
		}
		for _, e := range n.adj[it.node] {
			if nd := it.dist + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(pq, distItem{node: e.to, dist: nd})
			}
		}
	}
	return dist
}

type distItem struct {
	node int32
	dist float64
}

type distQueue []distItem

func (q distQueue) Len() int           { return len(q) }
func (q distQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q distQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *distQueue) Push(x any)        { *q = append(*q, x.(distItem)) }
func (q *distQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Metric adapts a Network to query.Metric with an LRU cache of
// shortest-path trees keyed by snapped source node. It is safe for
// concurrent use.
type Metric struct {
	net *Network

	mu    sync.Mutex
	cache map[int32][]float64
	order []int32 // LRU order, oldest first
	cap   int
}

// DefaultCacheSize is the number of shortest-path trees a Metric retains.
const DefaultCacheSize = 64

// NewMetric wraps net as a query metric. cacheSize <= 0 selects
// DefaultCacheSize.
func (n *Network) NewMetric(cacheSize int) *Metric {
	if cacheSize <= 0 {
		cacheSize = DefaultCacheSize
	}
	return &Metric{net: n, cache: make(map[int32][]float64), cap: cacheSize}
}

// Dist implements query.Metric: access leg + shortest path + egress leg.
// Unreachable pairs fall back to a large multiple of the straight-line
// distance so the similarity model stays finite.
func (m *Metric) Dist(a, b geo.Point) float64 {
	if a == b {
		return 0
	}
	sa := m.net.SnapNode(a)
	sb := m.net.SnapNode(b)
	if sa < 0 || sb < 0 {
		return a.Dist(b)
	}
	// travel both directions of the symmetric graph are equal; cache by
	// the smaller node id for a better hit rate
	src, dst := sa, sb
	if dst < src {
		src, dst = dst, src
		a, b = b, a
	}
	dist := m.paths(src)
	d := dist[dst]
	if math.IsInf(d, 1) {
		// disconnected components: dominate Euclidean with a penalty
		return 10 * a.Dist(b) * unreachablePenalty
	}
	access := a.Dist(m.net.Node(src))
	egress := b.Dist(m.net.Node(dst))
	return access + d + egress
}

// unreachablePenalty scales the fallback for disconnected pairs.
const unreachablePenalty = 10

// DominatesEuclidean implements query.Metric: access + path + egress >=
// the straight line by the triangle inequality and w >= straight-line per
// edge.
func (m *Metric) DominatesEuclidean() bool { return true }

func (m *Metric) paths(src int32) []float64 {
	m.mu.Lock()
	if d, ok := m.cache[src]; ok {
		m.touch(src)
		m.mu.Unlock()
		return d
	}
	m.mu.Unlock()
	d := m.net.ShortestPaths(src) // compute outside the lock
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.cache[src]; !ok {
		if len(m.order) >= m.cap {
			oldest := m.order[0]
			m.order = m.order[1:]
			delete(m.cache, oldest)
		}
		m.cache[src] = d
		m.order = append(m.order, src)
	}
	return m.cache[src]
}

// touch moves src to the back of the LRU order.
func (m *Metric) touch(src int32) {
	for i, s := range m.order {
		if s == src {
			copy(m.order[i:], m.order[i+1:])
			m.order[len(m.order)-1] = src
			return
		}
	}
}

// CacheLen reports the number of cached shortest-path trees (for tests).
func (m *Metric) CacheLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.cache)
}

// GridConfig describes a synthetic street grid.
type GridConfig struct {
	// Bounds is the covered area.
	Bounds geo.Rect
	// NX, NY are the number of grid nodes per axis (>= 2).
	NX, NY int
	// DropFrac removes this fraction of street segments at random,
	// creating detours (and, at high values, possibly disconnected
	// blocks — the metric handles those with a penalty fallback).
	DropFrac float64
	// Meander multiplies each kept segment's weight by 1 + U(0, Meander),
	// modelling curvature and congestion. Weights never drop below the
	// straight-line length, preserving Euclidean domination.
	Meander float64
	// Seed drives the generator.
	Seed int64
}

// Grid generates a Manhattan-style street network.
func Grid(cfg GridConfig) (*Network, error) {
	if cfg.NX < 2 || cfg.NY < 2 {
		return nil, fmt.Errorf("roadnet: grid needs NX, NY >= 2, got %d x %d", cfg.NX, cfg.NY)
	}
	if cfg.Bounds.IsEmpty() || cfg.Bounds.Width() == 0 || cfg.Bounds.Height() == 0 {
		return nil, fmt.Errorf("roadnet: grid bounds must have positive area, got %v", cfg.Bounds)
	}
	if cfg.DropFrac < 0 || cfg.DropFrac >= 1 {
		return nil, fmt.Errorf("roadnet: DropFrac must be in [0,1), got %g", cfg.DropFrac)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nodes := make([]geo.Point, 0, cfg.NX*cfg.NY)
	for y := 0; y < cfg.NY; y++ {
		for x := 0; x < cfg.NX; x++ {
			nodes = append(nodes, geo.Point{
				X: cfg.Bounds.MinX + cfg.Bounds.Width()*float64(x)/float64(cfg.NX-1),
				Y: cfg.Bounds.MinY + cfg.Bounds.Height()*float64(y)/float64(cfg.NY-1),
			})
		}
	}
	var edges [][2]int32
	var weights []float64
	addEdge := func(a, b int32) {
		if rng.Float64() < cfg.DropFrac {
			return
		}
		w := nodes[a].Dist(nodes[b])
		if cfg.Meander > 0 {
			w *= 1 + rng.Float64()*cfg.Meander
		}
		edges = append(edges, [2]int32{a, b})
		weights = append(weights, w)
	}
	id := func(x, y int) int32 { return int32(y*cfg.NX + x) }
	for y := 0; y < cfg.NY; y++ {
		for x := 0; x < cfg.NX; x++ {
			if x+1 < cfg.NX {
				addEdge(id(x, y), id(x+1, y))
			}
			if y+1 < cfg.NY {
				addEdge(id(x, y), id(x, y+1))
			}
		}
	}
	return NewNetwork(nodes, edges, weights)
}
