package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"spatialseq/internal/geo"
)

func testGrid(t *testing.T, drop, meander float64) *Network {
	t.Helper()
	net, err := Grid(GridConfig{
		Bounds: geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10},
		NX:     11, NY: 11,
		DropFrac: drop,
		Meander:  meander,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestGridShape(t *testing.T) {
	net := testGrid(t, 0, 0)
	if net.NumNodes() != 121 {
		t.Fatalf("NumNodes = %d", net.NumNodes())
	}
}

func TestGridValidation(t *testing.T) {
	bad := []GridConfig{
		{NX: 1, NY: 5, Bounds: geo.Rect{MaxX: 1, MaxY: 1}},
		{NX: 5, NY: 5}, // empty bounds
		{NX: 5, NY: 5, DropFrac: 1.5, Bounds: geo.Rect{MaxX: 1, MaxY: 1}},
	}
	for i, cfg := range bad {
		if _, err := Grid(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestNewNetworkValidation(t *testing.T) {
	nodes := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	if _, err := NewNetwork(nodes, [][2]int32{{0, 5}}, nil); err == nil {
		t.Error("out-of-range edge should fail")
	}
	if _, err := NewNetwork(nodes, [][2]int32{{0, 0}}, nil); err == nil {
		t.Error("self loop should fail")
	}
	if _, err := NewNetwork(nodes, [][2]int32{{0, 1}}, []float64{0.5}); err == nil {
		t.Error("sub-Euclidean weight should fail")
	}
	if _, err := NewNetwork(nodes, [][2]int32{{0, 1}}, []float64{1, 2}); err == nil {
		t.Error("weight count mismatch should fail")
	}
}

func TestManhattanDistanceOnPerfectGrid(t *testing.T) {
	net := testGrid(t, 0, 0)
	// node (0,0) to node (10,10): Manhattan distance = 20 on a unit grid
	src := net.SnapNode(geo.Point{X: 0, Y: 0})
	dst := net.SnapNode(geo.Point{X: 10, Y: 10})
	d := net.ShortestPaths(src)[dst]
	if math.Abs(d-20) > 1e-9 {
		t.Errorf("corner-to-corner = %g, want 20", d)
	}
}

func TestShortestPathsAgainstBellmanFord(t *testing.T) {
	net := testGrid(t, 0.2, 0.5)
	// reference: Bellman-Ford
	n := net.NumNodes()
	const inf = math.MaxFloat64
	ref := make([]float64, n)
	for i := range ref {
		ref[i] = inf
	}
	src := int32(0)
	ref[src] = 0
	type edge struct {
		a, b int32
		w    float64
	}
	var edges []edge
	for a := int32(0); int(a) < n; a++ {
		for _, he := range net.adj[a] {
			edges = append(edges, edge{a: a, b: he.to, w: he.w})
		}
	}
	for iter := 0; iter < n; iter++ {
		changed := false
		for _, e := range edges {
			if ref[e.a] != inf && ref[e.a]+e.w < ref[e.b] {
				ref[e.b] = ref[e.a] + e.w
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	got := net.ShortestPaths(src)
	for i := 0; i < n; i++ {
		want := ref[i]
		if want == inf {
			if !math.IsInf(got[i], 1) {
				t.Fatalf("node %d: got %g, want +Inf", i, got[i])
			}
			continue
		}
		if math.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("node %d: Dijkstra %g, Bellman-Ford %g", i, got[i], want)
		}
	}
}

func TestMetricProperties(t *testing.T) {
	net := testGrid(t, 0.15, 0.4)
	m := net.NewMetric(16)
	if !m.DominatesEuclidean() {
		t.Fatal("road metric must dominate Euclidean")
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		a := geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		b := geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		d := m.Dist(a, b)
		if d < a.Dist(b)-1e-9 {
			t.Fatalf("metric %g below Euclidean %g for %v %v", d, a.Dist(b), a, b)
		}
		if back := m.Dist(b, a); math.Abs(back-d) > 1e-9 {
			t.Fatalf("metric not symmetric: %g vs %g", d, back)
		}
	}
	if m.Dist(geo.Point{X: 3, Y: 3}, geo.Point{X: 3, Y: 3}) != 0 {
		t.Error("d(x,x) must be 0")
	}
}

func TestMetricCacheLRU(t *testing.T) {
	net := testGrid(t, 0, 0)
	m := net.NewMetric(2)
	pts := []geo.Point{{X: 0, Y: 0}, {X: 5, Y: 5}, {X: 10, Y: 10}, {X: 0, Y: 10}}
	for _, p := range pts {
		m.Dist(p, geo.Point{X: 9, Y: 9})
	}
	if got := m.CacheLen(); got > 2 {
		t.Errorf("cache grew to %d, cap 2", got)
	}
	// determinism: cached vs fresh distances agree
	d1 := m.Dist(pts[0], pts[2])
	d2 := m.Dist(pts[0], pts[2])
	if d1 != d2 {
		t.Errorf("cached distance differs: %g vs %g", d1, d2)
	}
}

func TestDisconnectedFallback(t *testing.T) {
	// two disconnected segments
	nodes := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 10, Y: 0}, {X: 11, Y: 0}}
	net, err := NewNetwork(nodes, [][2]int32{{0, 1}, {2, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := net.NewMetric(0)
	a := geo.Point{X: 0.5, Y: 0}
	b := geo.Point{X: 10.5, Y: 0}
	d := m.Dist(a, b)
	if math.IsInf(d, 1) || math.IsNaN(d) {
		t.Fatalf("disconnected distance must be finite, got %g", d)
	}
	if d < a.Dist(b) {
		t.Errorf("fallback %g must still dominate Euclidean %g", d, a.Dist(b))
	}
}

func TestEmptyNetworkSnap(t *testing.T) {
	net, err := NewNetwork(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.SnapNode(geo.Point{}); got != -1 {
		t.Errorf("SnapNode on empty network = %d", got)
	}
	m := net.NewMetric(0)
	a, b := geo.Point{X: 1, Y: 1}, geo.Point{X: 4, Y: 5}
	if d := m.Dist(a, b); d != 5 {
		t.Errorf("empty network falls back to Euclidean; got %g", d)
	}
}
