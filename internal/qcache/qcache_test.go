package qcache

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"spatialseq/internal/core"
	"spatialseq/internal/geo"
	"spatialseq/internal/query"
	"spatialseq/internal/testutil"
)

func setup(t *testing.T) (*core.Engine, *query.Query) {
	t.Helper()
	rng := rand.New(rand.NewSource(141))
	ds := testutil.RandDataset(rng, 200, 3, 4, 100)
	q := testutil.RandQuery(rng, ds, 3, 25, query.Params{K: 3, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10})
	return core.NewEngine(ds), q
}

func TestKeyStability(t *testing.T) {
	_, q := setup(t)
	k1, ok1 := Key(q, core.HSP)
	k2, ok2 := Key(q, core.HSP)
	if !ok1 || !ok2 || k1 != k2 {
		t.Fatal("identical queries must share a key")
	}
	if k3, _ := Key(q, core.LORA); k3 == k1 {
		t.Error("different algorithms must not share a key")
	}
	q2 := *q
	q2.Params.K = 7
	if k4, _ := Key(&q2, core.HSP); k4 == k1 {
		t.Error("different parameters must not share a key")
	}
	q3 := *q
	q3.Example.SkipPairs = [][2]int{{0, 1}}
	if k5, _ := Key(&q3, core.HSP); k5 == k1 {
		t.Error("skip pairs must change the key")
	}
	// skip-pair order must not matter
	q4 := *q
	q4.Example.SkipPairs = [][2]int{{1, 0}}
	k5a, _ := Key(&q3, core.HSP)
	k5b, _ := Key(&q4, core.HSP)
	if k5a != k5b {
		t.Error("skip pair orientation must not change the key")
	}
}

type fakeMetric struct{}

func (fakeMetric) Dist(a, b geo.Point) float64 { return a.Dist(b) }
func (fakeMetric) DominatesEuclidean() bool    { return true }

func TestMetricQueriesNotCacheable(t *testing.T) {
	_, q := setup(t)
	q.Example.Metric = fakeMetric{}
	if _, ok := Key(q, core.HSP); ok {
		t.Error("metric queries must not be cacheable")
	}
}

func TestGetPutLRU(t *testing.T) {
	c := New(2)
	r1, r2, r3 := &core.Result{}, &core.Result{}, &core.Result{}
	c.Put("a", r1)
	c.Put("b", r2)
	if got, ok := c.Get("a"); !ok || got != r1 {
		t.Fatal("a should be cached")
	}
	c.Put("c", r3) // evicts b (a was just used)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should survive")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
}

func TestMetricsEvictions(t *testing.T) {
	c := New(2)
	c.Put("a", &core.Result{})
	c.Put("b", &core.Result{})
	c.Put("c", &core.Result{}) // evicts a
	c.Put("d", &core.Result{}) // evicts b
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be cached")
	}
	if _, ok := c.Get("a"); ok {
		t.Error("a should have been evicted")
	}
	m := c.Metrics()
	if m.Evictions != 2 {
		t.Errorf("Evictions = %d, want 2", m.Evictions)
	}
	if m.Len != 2 {
		t.Errorf("Len = %d, want 2", m.Len)
	}
	if m.Hits != 1 || m.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", m.Hits, m.Misses)
	}
}

func TestPutOverwrite(t *testing.T) {
	c := New(2)
	r1, r2 := &core.Result{}, &core.Result{}
	c.Put("a", r1)
	c.Put("a", r2)
	if got, _ := c.Get("a"); got != r2 {
		t.Error("Put must overwrite")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestSearchThroughCache(t *testing.T) {
	eng, q := setup(t)
	c := New(16)
	ctx := context.Background()

	q1 := *q
	res1, cached, err := c.Search(ctx, eng, &q1, core.HSP, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first search cannot be a cache hit")
	}
	q2 := *q
	res2, cached, err := c.Search(ctx, eng, &q2, core.HSP, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("second identical search should hit the cache")
	}
	if len(res1.Tuples) != len(res2.Tuples) {
		t.Fatal("cached result diverges")
	}
	for i := range res1.Tuples {
		if res1.Tuples[i].Sim != res2.Tuples[i].Sim {
			t.Error("cached similarities diverge")
		}
	}
}

func TestSearchNormalizesBeforeKeying(t *testing.T) {
	eng, q := setup(t)
	c := New(16)
	ctx := context.Background()

	// explicit defaults vs zero-value defaults must share an entry
	q1 := *q
	q1.Params = query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 5, Xi: 10}
	if _, _, err := c.Search(ctx, eng, &q1, core.HSP, core.Options{}); err != nil {
		t.Fatal(err)
	}
	q2 := *q
	q2.Params = query.Params{} // normalizes to the same defaults
	_, cached, err := c.Search(ctx, eng, &q2, core.HSP, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("normalized-equal queries should share a cache entry")
	}
}

func TestSearchValidationError(t *testing.T) {
	eng, q := setup(t)
	c := New(4)
	bad := *q
	bad.Params.Alpha = 9
	if _, _, err := c.Search(context.Background(), eng, &bad, core.HSP, core.Options{}); err == nil {
		t.Error("invalid query should fail through the cache too")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(8)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				key := string(rune('a' + (i+w)%12))
				if i%2 == 0 {
					c.Put(key, &core.Result{})
				} else {
					c.Get(key)
				}
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}

// TestConcurrentEvictionAccounting hammers a small cache from many
// goroutines with unique keys and checks the counter bookkeeping stays
// consistent under eviction races: every unique-key Put either still
// resides in the cache or was evicted exactly once, and every Get is
// either a hit or a miss. Run with -race this also stress-tests the
// get/evict interleaving itself.
func TestConcurrentEvictionAccounting(t *testing.T) {
	const (
		workers   = 16
		perWorker = 1500
		size      = 32
	)
	c := New(size)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Put(fmt.Sprintf("w%d-%d", w, i), &core.Result{})
				if i%2 == 0 {
					// A just-put key is the cache's most recent entry, and
					// the at most workers-1 concurrent puts that can land
					// before this Get cannot evict it (size > workers), so
					// this is a guaranteed hit.
					c.Get(fmt.Sprintf("w%d-%d", w, i))
				} else {
					// A key this worker overwrote size*4 own-puts ago is
					// guaranteed evicted (negative rounds never existed):
					// a guaranteed miss.
					c.Get(fmt.Sprintf("w%d-%d", w, i-size*4))
				}
			}
		}(w)
	}
	wg.Wait()
	m := c.Metrics()
	if m.Len > size {
		t.Errorf("Len = %d exceeds capacity %d", m.Len, size)
	}
	if c.Len() != m.Len {
		t.Errorf("Len() = %d disagrees with Metrics().Len = %d", c.Len(), m.Len)
	}
	const puts = workers * perWorker
	if uint64(m.Len)+m.Evictions != puts {
		t.Errorf("Len %d + Evictions %d != unique-key Puts %d", m.Len, m.Evictions, puts)
	}
	const gets = workers * perWorker
	if m.Hits+m.Misses != gets {
		t.Errorf("Hits %d + Misses %d != Gets %d", m.Hits, m.Misses, gets)
	}
	if m.Hits == 0 {
		t.Error("stress pattern produced no hits; probe keys are miscalibrated")
	}
	if m.Misses == 0 {
		t.Error("stress pattern produced no misses; probe keys are miscalibrated")
	}
}
