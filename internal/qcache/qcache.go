// Package qcache provides a thread-safe LRU cache of query results for
// the search service: map services see the same example queries repeatedly
// (shared links, back navigation, tile reloads), and an engine search is
// many orders of magnitude more expensive than a cache probe.
//
// Keys canonically encode the query (variant, parameters, algorithm and
// the full example); queries carrying a custom Metric are not cacheable
// (metrics have no canonical encoding) and bypass the cache.
package qcache

import (
	"container/list"
	"context"
	"encoding/binary"
	"math"
	"sync"

	"spatialseq/internal/core"
	"spatialseq/internal/query"
)

// Cache is an LRU over query results. The zero value is unusable; call New.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	cap     int

	hits, misses, evictions uint64
}

type entry struct {
	key string
	res *core.Result
}

// DefaultSize is the entry capacity used when New gets size <= 0.
const DefaultSize = 1024

// New returns a Cache holding up to size results.
func New(size int) *Cache {
	if size <= 0 {
		size = DefaultSize
	}
	return &Cache{
		entries: make(map[string]*list.Element),
		order:   list.New(),
		cap:     size,
	}
}

// Key canonically encodes a (query, algorithm) pair, or ok=false when the
// query cannot be cached (custom metric).
func Key(q *query.Query, algo core.Algorithm) (string, bool) {
	if q.Example.Metric != nil {
		return "", false
	}
	var buf []byte
	u32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf = append(buf, b[:]...)
	}
	f64 := func(v float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		buf = append(buf, b[:]...)
	}
	u32(uint32(q.Variant))
	u32(uint32(algo))
	u32(uint32(q.Params.K))
	f64(q.Params.Alpha)
	f64(q.Params.Beta)
	u32(uint32(q.Params.GridD))
	u32(uint32(int32(q.Params.Xi)))
	ex := &q.Example
	u32(uint32(ex.M()))
	for d := 0; d < ex.M(); d++ {
		u32(uint32(ex.Categories[d]))
		f64(ex.Locations[d].X)
		f64(ex.Locations[d].Y)
		u32(uint32(len(ex.Attrs[d])))
		for _, a := range ex.Attrs[d] {
			f64(a)
		}
	}
	u32(uint32(len(ex.Fixed)))
	for _, f := range ex.Fixed {
		u32(uint32(f.Dim))
		u32(uint32(f.Obj))
	}
	u32(uint32(len(ex.SkipPairs)))
	for _, sp := range ex.SkipPairs {
		a, b := sp[0], sp[1]
		if a > b {
			a, b = b, a
		}
		u32(uint32(a))
		u32(uint32(b))
	}
	return string(buf), true
}

// Get returns the cached result for key, if any.
func (c *Cache) Get(key string) (*core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return el.Value.(*entry).res, true
}

// Put stores res under key, evicting the least recently used entry when
// full.
func (c *Cache) Put(key string, res *core.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).res = res
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*entry).key)
			c.evictions++
		}
	}
	c.entries[key] = c.order.PushFront(&entry{key: key, res: res})
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns hit/miss counters.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Metrics is a consistent snapshot of the cache counters, shaped for
// metrics exporters.
type Metrics struct {
	Hits, Misses, Evictions uint64
	Len                     int
}

// Metrics returns all counters and the current size in one locked read.
func (c *Cache) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Metrics{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Len: c.order.Len()}
}

// Search answers q through the cache: probe, else run s.Search and store
// the result. s is any core.Searcher — a single engine or the sharded
// coordinator; both validate identically against the shared dataset.
// Queries with a custom metric bypass the cache entirely. The query is
// validated (and its params normalized) before the key is built, so
// equivalent queries written with and without default values share an
// entry.
func (c *Cache) Search(ctx context.Context, s core.Searcher, q *query.Query, algo core.Algorithm, opt core.Options) (*core.Result, bool, error) {
	if err := q.Validate(s.Dataset()); err != nil {
		return nil, false, err
	}
	key, cacheable := Key(q, algo)
	if cacheable {
		if res, ok := c.Get(key); ok {
			return res, true, nil
		}
	}
	res, err := s.Search(ctx, q, algo, opt)
	if err != nil {
		return nil, false, err
	}
	if cacheable {
		c.Put(key, res)
	}
	return res, false, nil
}
