package geo

import (
	"math/rand"
	"testing"
)

// DistVectorsAt must produce, per row, exactly what DistVectorAt
// produces for that row's tuple — same Sqrt expression, bit-for-bit.
func TestDistVectorsAtMatchesDistVectorAt(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	const n = 150
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
		ys[i] = rng.Float64() * 1000
	}
	for trial := 0; trial < 100; trial++ {
		m := 2 + rng.Intn(4)
		rows := rng.Intn(30)
		tuples := make([]int32, rows*m)
		for i := range tuples {
			tuples[i] = int32(rng.Intn(n))
		}
		got := DistVectorsAt(xs, ys, tuples, m, nil)
		pairs := PairCount(m)
		if len(got) != rows*pairs {
			t.Fatalf("trial %d: got %d distances, want %d rows x %d pairs", trial, len(got), rows, pairs)
		}
		var ref []float64
		for r := 0; r < rows; r++ {
			ref = DistVectorAt(xs, ys, tuples[r*m:r*m+m], ref[:0])
			row := got[r*pairs : (r+1)*pairs]
			for k := range ref {
				if row[k] != ref[k] {
					t.Fatalf("trial %d row %d pair %d: %v != %v", trial, r, k, row[k], ref[k])
				}
			}
		}
	}
}

func TestDistVectorsAtDegenerate(t *testing.T) {
	xs := []float64{0, 3}
	ys := []float64{0, 4}
	if out := DistVectorsAt(xs, ys, nil, 2, nil); len(out) != 0 {
		t.Errorf("no rows = %v", out)
	}
	if out := DistVectorsAt(xs, ys, []int32{0, 1}, 0, nil); len(out) != 0 {
		t.Errorf("m=0 = %v", out)
	}
	if out := DistVectorsAt(xs, ys, []int32{0, 1}, 1, nil); len(out) != 0 {
		t.Errorf("single-dim rows = %v", out)
	}
	if out := DistVectorsAt(xs, ys, []int32{0, 1}, 2, nil); len(out) != 1 || out[0] != 5 {
		t.Errorf("one row = %v, want [5]", out)
	}
}

func TestDistVectorsAtZeroAllocWarm(t *testing.T) {
	xs := make([]float64, 32)
	ys := make([]float64, 32)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i * 3)
	}
	const m = 3
	tuples := make([]int32, 16*m)
	for i := range tuples {
		tuples[i] = int32(i % 32)
	}
	dst := DistVectorsAt(xs, ys, tuples, m, nil) // warm
	if allocs := testing.AllocsPerRun(20, func() {
		dst = DistVectorsAt(xs, ys, tuples, m, dst)
	}); allocs != 0 {
		t.Errorf("warm DistVectorsAt allocated %v per run", allocs)
	}
}

func BenchmarkDistVectorsAt(b *testing.B) {
	xs, ys, _ := benchCoords(64)
	const (
		rows = 128
		m    = 5
	)
	tuples := make([]int32, rows*m)
	for i := range tuples {
		tuples[i] = int32((i * 7) % len(xs))
	}
	dst := DistVectorsAt(xs, ys, tuples, m, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = DistVectorsAt(xs, ys, tuples, m, dst)
	}
	benchDistSink = dst
}
