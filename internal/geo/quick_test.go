package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// boundedCoord maps arbitrary quick-generated floats into a finite
// coordinate range so the geometric identities are not drowned by
// overflow artifacts.
func boundedCoord(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func TestQuickRectUnionContainsBoth(t *testing.T) {
	f := func(raw [8]float64) bool {
		a := Rect{
			MinX: math.Min(boundedCoord(raw[0]), boundedCoord(raw[1])),
			MinY: math.Min(boundedCoord(raw[2]), boundedCoord(raw[3])),
			MaxX: math.Max(boundedCoord(raw[0]), boundedCoord(raw[1])),
			MaxY: math.Max(boundedCoord(raw[2]), boundedCoord(raw[3])),
		}
		b := Rect{
			MinX: math.Min(boundedCoord(raw[4]), boundedCoord(raw[5])),
			MinY: math.Min(boundedCoord(raw[6]), boundedCoord(raw[7])),
			MaxX: math.Max(boundedCoord(raw[4]), boundedCoord(raw[5])),
			MaxY: math.Max(boundedCoord(raw[6]), boundedCoord(raw[7])),
		}
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectInsideBoth(t *testing.T) {
	f := func(raw [8]float64) bool {
		a := Rect{
			MinX: math.Min(boundedCoord(raw[0]), boundedCoord(raw[1])),
			MinY: math.Min(boundedCoord(raw[2]), boundedCoord(raw[3])),
			MaxX: math.Max(boundedCoord(raw[0]), boundedCoord(raw[1])),
			MaxY: math.Max(boundedCoord(raw[2]), boundedCoord(raw[3])),
		}
		b := Rect{
			MinX: math.Min(boundedCoord(raw[4]), boundedCoord(raw[5])),
			MinY: math.Min(boundedCoord(raw[6]), boundedCoord(raw[7])),
			MaxX: math.Max(boundedCoord(raw[4]), boundedCoord(raw[5])),
			MaxY: math.Max(boundedCoord(raw[6]), boundedCoord(raw[7])),
		}
		x := a.Intersect(b)
		if x.IsEmpty() {
			return true
		}
		return a.ContainsRect(x) && b.ContainsRect(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickInflateMonotone(t *testing.T) {
	f := func(raw [5]float64) bool {
		r := Rect{
			MinX: math.Min(boundedCoord(raw[0]), boundedCoord(raw[1])),
			MinY: math.Min(boundedCoord(raw[2]), boundedCoord(raw[3])),
			MaxX: math.Max(boundedCoord(raw[0]), boundedCoord(raw[1])),
			MaxY: math.Max(boundedCoord(raw[2]), boundedCoord(raw[3])),
		}
		w := math.Abs(boundedCoord(raw[4]))
		return r.Inflate(w).ContainsRect(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickNormOKSymmetricInBeta(t *testing.T) {
	// 1/beta <= n/ref <= beta is symmetric under swapping n and ref.
	f := func(rawN, rawRef, rawBeta float64) bool {
		n := math.Abs(boundedCoord(rawN))
		ref := math.Abs(boundedCoord(rawRef))
		beta := 1 + math.Abs(boundedCoord(rawBeta))/1e5
		return NormOK(n, ref, beta) == NormOK(ref, n, beta)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickPairIndexInverse(t *testing.T) {
	f := func(rawI, rawJ uint8) bool {
		i, j := int(rawI%32), int(rawJ%32)
		if i == j {
			return true
		}
		idx := PairIndex(i, j)
		lo, hi := i, j
		if lo > hi {
			lo, hi = hi, lo
		}
		// the index must sit inside the block belonging to hi
		return idx >= hi*(hi-1)/2 && idx < hi*(hi+1)/2 && idx-hi*(hi-1)/2 == lo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
