// Package geo provides the planar geometry primitives used throughout the
// library: points, axis-aligned rectangles, and the pairwise distance
// vectors that the SEQ/CSEQ similarity model is built on.
//
// All coordinates are float64 in an arbitrary Euclidean unit (the synthetic
// generators use kilometres). The package is allocation-conscious: hot-path
// helpers accept destination slices so callers can reuse buffers.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// DistSq returns the squared Euclidean distance between p and q. It avoids
// the square root on paths that only compare distances.
func (p Point) DistSq(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns the translation of p by (dx, dy).
func (p Point) Add(dx, dy float64) Point {
	return Point{p.X + dx, p.Y + dy}
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y)
}
