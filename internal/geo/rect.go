package geo

import (
	"fmt"
	"math"
)

// Rect is a closed axis-aligned rectangle [MinX, MaxX] x [MinY, MaxY].
// The zero Rect is the degenerate rectangle at the origin; use EmptyRect
// to start an accumulation with Extend.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyRect returns the identity element for Extend/Union: a rectangle that
// contains nothing and extends to the first point or rect merged into it.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// RectFromPoints returns the minimal bounding rectangle of pts. It returns
// EmptyRect when pts is empty.
func RectFromPoints(pts []Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.ExtendPoint(p)
	}
	return r
}

// IsEmpty reports whether the rectangle contains no points (inverted bounds).
func (r Rect) IsEmpty() bool {
	return r.MinX > r.MaxX || r.MinY > r.MaxY
}

// Width returns the horizontal extent, 0 for empty rectangles.
func (r Rect) Width() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxX - r.MinX
}

// Height returns the vertical extent, 0 for empty rectangles.
func (r Rect) Height() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxY - r.MinY
}

// Diagonal returns the length of the rectangle's diagonal, which the
// partitioner compares against the core-subspace threshold beta*||V_t*||.
func (r Rect) Diagonal() float64 {
	w, h := r.Width(), r.Height()
	return math.Sqrt(w*w + h*h)
}

// Area returns the rectangle's area.
func (r Rect) Area() float64 {
	return r.Width() * r.Height()
}

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Contains reports whether p lies inside the closed rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely inside r. An empty s is
// contained in everything.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether the closed rectangles share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Intersect returns the common region of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// Union returns the minimal rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// ExtendPoint returns the minimal rectangle covering r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	return Rect{
		MinX: math.Min(r.MinX, p.X),
		MinY: math.Min(r.MinY, p.Y),
		MaxX: math.Max(r.MaxX, p.X),
		MaxY: math.Max(r.MaxY, p.Y),
	}
}

// Inflate grows the rectangle by w on every side. This is how an auxiliary
// band of width w is attached to a core subspace. Negative w shrinks; a
// rectangle shrunk past its center becomes empty.
func (r Rect) Inflate(w float64) Rect {
	if r.IsEmpty() {
		return r
	}
	out := Rect{r.MinX - w, r.MinY - w, r.MaxX + w, r.MaxY + w}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// MinDist returns the minimal Euclidean distance between any point of r and
// any point of s; 0 when they intersect. Used by LORA's optional cell-level
// norm feasibility filter.
func (r Rect) MinDist(s Rect) float64 {
	dx := axisGap(r.MinX, r.MaxX, s.MinX, s.MaxX)
	dy := axisGap(r.MinY, r.MaxY, s.MinY, s.MaxY)
	return math.Sqrt(dx*dx + dy*dy)
}

// MaxDist returns the maximal Euclidean distance between any point of r and
// any point of s (the diameter of the pair).
func (r Rect) MaxDist(s Rect) float64 {
	dx := math.Max(math.Abs(s.MaxX-r.MinX), math.Abs(r.MaxX-s.MinX))
	dy := math.Max(math.Abs(s.MaxY-r.MinY), math.Abs(r.MaxY-s.MinY))
	return math.Sqrt(dx*dx + dy*dy)
}

// MinDistPoint returns the minimal distance from p to the rectangle
// (0 when p is inside).
func (r Rect) MinDistPoint(p Point) float64 {
	dx := axisGap(r.MinX, r.MaxX, p.X, p.X)
	dy := axisGap(r.MinY, r.MaxY, p.Y, p.Y)
	return math.Sqrt(dx*dx + dy*dy)
}

func axisGap(aMin, aMax, bMin, bMax float64) float64 {
	if aMax < bMin {
		return bMin - aMax
	}
	if bMax < aMin {
		return aMin - bMax
	}
	return 0
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	if r.IsEmpty() {
		return "Rect(empty)"
	}
	return fmt.Sprintf("Rect[%.6g,%.6g → %.6g,%.6g]", r.MinX, r.MinY, r.MaxX, r.MaxY)
}
