package geo

import (
	"math"
	"testing"
)

// FuzzDistVector checks the distance-vector kernels against each other on
// arbitrary coordinates: the AoS path (DistVector over Points), the SoA
// path (DistVectorAt over flat arrays — documented bit-identical), the
// PairIndex addressing scheme and the two norm implementations.
func FuzzDistVector(f *testing.F) {
	f.Add(0.0, 0.0, 3.0, 4.0, 1.0, 1.0, -5.0, 2.0, uint64(0))
	f.Add(1.5, -2.5, 1.5, -2.5, 0.0, 0.0, 8.0, 8.0, uint64(1))
	f.Add(1e154, 1e154, -1e154, -1e154, 0.0, 1.0, 2.0, 3.0, uint64(2))
	f.Add(0.1, 0.2, 0.30000000000000004, 0.4, 1e-300, -1e-300, 7.0, 7.0, uint64(5))
	f.Fuzz(func(t *testing.T, x0, y0, x1, y1, x2, y2, x3, y3 float64, n uint64) {
		coords := []float64{x0, y0, x1, y1, x2, y2, x3, y3}
		for _, c := range coords {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				t.Skip("datasets only hold finite coordinates (Builder rejects the rest)")
			}
		}
		m := 2 + int(n%3)
		pts := make([]Point, m)
		xs := make([]float64, m)
		ys := make([]float64, m)
		idx := make([]int32, m)
		for i := 0; i < m; i++ {
			pts[i] = Point{X: coords[2*i], Y: coords[2*i+1]}
			xs[i], ys[i] = pts[i].X, pts[i].Y
			idx[i] = int32(i)
		}

		dv := DistVector(pts, nil)
		if len(dv) != PairCount(m) {
			t.Fatalf("len(DistVector) = %d, want PairCount(%d) = %d", len(dv), m, PairCount(m))
		}
		soa := DistVectorAt(xs, ys, idx, nil)
		if len(soa) != len(dv) {
			t.Fatalf("SoA length %d != AoS length %d", len(soa), len(dv))
		}
		for k := range dv {
			if math.Float64bits(dv[k]) != math.Float64bits(soa[k]) {
				t.Fatalf("entry %d: DistVector %.17g, DistVectorAt %.17g (documented bit-identical)", k, dv[k], soa[k])
			}
			if !(dv[k] >= 0) {
				t.Fatalf("entry %d: negative or NaN distance %g from finite coordinates", k, dv[k])
			}
		}

		// PairIndex must bijectively address the vector, and each slot must
		// hold exactly the distance of its pair.
		seen := make([]bool, len(dv))
		for j := 1; j < m; j++ {
			for i := 0; i < j; i++ {
				k := PairIndex(i, j)
				if k < 0 || k >= len(dv) || seen[k] {
					t.Fatalf("PairIndex(%d,%d) = %d is out of range or duplicated", i, j, k)
				}
				seen[k] = true
				if want := pts[i].Dist(pts[j]); math.Float64bits(dv[k]) != math.Float64bits(want) {
					t.Fatalf("dv[PairIndex(%d,%d)] = %.17g, want Dist = %.17g", i, j, dv[k], want)
				}
				if ki := PairIndex(j, i); ki != k {
					t.Fatalf("PairIndex must be symmetric: (%d,%d)=%d but (%d,%d)=%d", i, j, k, j, i, ki)
				}
			}
		}

		// The two norms accumulate differently (sum of DistSq vs squared
		// sqrt of DistSq), so allow relative drift; overflow must agree.
		nv, nt := Norm(dv), TupleNorm(pts)
		switch {
		case math.IsInf(nv, 1) || math.IsInf(nt, 1):
			if nv != nt {
				t.Fatalf("norm overflow disagreement: Norm(dv) = %g, TupleNorm = %g", nv, nt)
			}
		case nv < 1e-140 || nt < 1e-140:
			// Squared distances sit in (or near) the subnormal range, where
			// re-squaring dv's entries can lose most of the mantissa — only
			// demand order-of-magnitude agreement.
			if nv > 2*nt+1e-140 || nt > 2*nv+1e-140 {
				t.Fatalf("tiny-norm disagreement: Norm(dv) = %g, TupleNorm = %g", nv, nt)
			}
		default:
			if rel := math.Abs(nv-nt) / math.Max(nv, nt); rel > 1e-12 {
				t.Fatalf("Norm(dv) = %.17g, TupleNorm = %.17g (rel %g)", nv, nt, rel)
			}
		}
	})
}
