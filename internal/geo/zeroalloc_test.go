package geo

import "testing"

// DistVectorAt is the SoA distance kernel on every search's inner loop;
// with a capacity-sufficient dst it must not allocate (the grow-once
// resize branch carries its own justified lint:ignore).

func TestDistVectorAtZeroAlloc(t *testing.T) {
	xs := []float64{0, 3, 0, 7, 2}
	ys := []float64{0, 4, 8, 1, 2}
	idx := []int32{0, 1, 2, 4}
	dst := make([]float64, PairCount(len(idx)))
	if got := testing.AllocsPerRun(100, func() {
		dst = DistVectorAt(xs, ys, idx, dst)
	}); got != 0 {
		t.Errorf("DistVectorAt with presized dst allocates %v times per call, want 0", got)
	}
}

func TestDistVectorZeroAlloc(t *testing.T) {
	pts := []Point{{X: 0, Y: 0}, {X: 3, Y: 4}, {X: 0, Y: 8}, {X: 2, Y: 2}}
	dst := make([]float64, PairCount(len(pts)))
	if got := testing.AllocsPerRun(100, func() {
		dst = DistVector(pts, dst)
	}); got != 0 {
		t.Errorf("DistVector with presized dst allocates %v times per call, want 0", got)
	}
}

func TestTupleNormZeroAlloc(t *testing.T) {
	pts := []Point{{X: 0, Y: 0}, {X: 3, Y: 4}, {X: 0, Y: 8}}
	var sink float64
	if got := testing.AllocsPerRun(100, func() {
		sink = TupleNorm(pts)
	}); got != 0 {
		t.Errorf("TupleNorm allocates %v times per call, want 0", got)
	}
	_ = sink
}
