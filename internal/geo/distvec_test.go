package geo

import (
	"math/rand"
	"testing"
)

// DistVectorAt must be bit-identical to DistVector over the gathered points
// — the SoA kernel replaces the AoS one on the hot path, so any drift would
// change tuple scores.
func TestDistVectorAtMatchesDistVector(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	const n = 200
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
		ys[i] = rng.Float64() * 1000
	}
	for trial := 0; trial < 300; trial++ {
		m := 2 + rng.Intn(5)
		idx := make([]int32, m)
		pts := make([]Point, m)
		for i := range idx {
			idx[i] = int32(rng.Intn(n))
			pts[i] = Point{X: xs[idx[i]], Y: ys[idx[i]]}
		}
		want := DistVector(pts, nil)
		got := DistVectorAt(xs, ys, idx, nil)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d != %d", trial, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("trial %d entry %d: DistVectorAt = %v, DistVector = %v", trial, k, got[k], want[k])
			}
		}
	}
}

func TestDistVectorAtResizesDst(t *testing.T) {
	xs := []float64{0, 3, 0}
	ys := []float64{0, 4, 8}
	idx := []int32{0, 1, 2}
	// too small: reallocated
	got := DistVectorAt(xs, ys, idx, make([]float64, 0, 1))
	if len(got) != 3 || got[0] != 5 {
		t.Errorf("DistVectorAt = %v", got)
	}
	// big enough: reused in place
	dst := make([]float64, 0, 8)
	got = DistVectorAt(xs, ys, idx, dst)
	if &got[0] != &dst[:1][0] {
		t.Error("DistVectorAt should reuse a sufficient dst")
	}
	// degenerate tuples
	if out := DistVectorAt(xs, ys, nil, nil); len(out) != 0 {
		t.Errorf("empty tuple = %v", out)
	}
	if out := DistVectorAt(xs, ys, idx[:1], nil); len(out) != 0 {
		t.Errorf("single tuple = %v", out)
	}
}

var benchDistSink []float64

func benchCoords(n int) (xs, ys []float64, pts []Point) {
	rng := rand.New(rand.NewSource(8))
	xs = make([]float64, n)
	ys = make([]float64, n)
	pts = make([]Point, n)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
		ys[i] = rng.Float64() * 1000
		pts[i] = Point{X: xs[i], Y: ys[i]}
	}
	return xs, ys, pts
}

func BenchmarkDistVector(b *testing.B) {
	_, _, pts := benchCoords(64)
	tuple := make([]Point, 5)
	dst := make([]float64, 0, PairCount(len(tuple)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d := range tuple {
			tuple[d] = pts[(i+d*7)%len(pts)]
		}
		dst = DistVector(tuple, dst)
	}
	benchDistSink = dst
}

func BenchmarkDistVectorAt(b *testing.B) {
	xs, ys, _ := benchCoords(64)
	idx := make([]int32, 5)
	dst := make([]float64, 0, PairCount(len(idx)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d := range idx {
			idx[d] = int32((i + d*7) % len(xs))
		}
		dst = DistVectorAt(xs, ys, idx, dst)
	}
	benchDistSink = dst
}
