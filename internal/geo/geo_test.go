package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestPointDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-2, 0}, Point{2, 0}, 4},
		{Point{0, -3}, Point{0, 3}, 6},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Dist(%v,%v) = %g, want %g", c.p, c.q, got, c.want)
		}
		if got := c.p.DistSq(c.q); !almostEq(got, c.want*c.want, 1e-9) {
			t.Errorf("DistSq(%v,%v) = %g, want %g", c.p, c.q, got, c.want*c.want)
		}
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Point{ax, ay}, Point{bx, by}
		return a.Dist(b) == b.Dist(a) && a.Dist(b) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := Point{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		b := Point{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		c := Point{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		if a.Dist(c) > a.Dist(b)+b.Dist(c)+1e-9 {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{0, 0, 4, 3}
	if got := r.Width(); got != 4 {
		t.Errorf("Width = %g, want 4", got)
	}
	if got := r.Height(); got != 3 {
		t.Errorf("Height = %g, want 3", got)
	}
	if got := r.Diagonal(); !almostEq(got, 5, 1e-12) {
		t.Errorf("Diagonal = %g, want 5", got)
	}
	if got := r.Area(); got != 12 {
		t.Errorf("Area = %g, want 12", got)
	}
	if c := r.Center(); c != (Point{2, 1.5}) {
		t.Errorf("Center = %v", c)
	}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{4, 3}) {
		t.Error("Rect must contain its closed corners")
	}
	if r.Contains(Point{4.001, 3}) {
		t.Error("Rect must not contain outside points")
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect should be empty")
	}
	if e.Width() != 0 || e.Height() != 0 || e.Diagonal() != 0 {
		t.Error("empty rect extents should be zero")
	}
	if e.Contains(Point{0, 0}) {
		t.Error("empty rect contains nothing")
	}
	got := e.ExtendPoint(Point{2, 5})
	want := Rect{2, 5, 2, 5}
	if got != want {
		t.Errorf("ExtendPoint = %v, want %v", got, want)
	}
	if u := e.Union(Rect{0, 0, 1, 1}); u != (Rect{0, 0, 1, 1}) {
		t.Errorf("Union with empty = %v", u)
	}
}

func TestRectFromPoints(t *testing.T) {
	pts := []Point{{1, 2}, {-1, 5}, {3, 0}}
	r := RectFromPoints(pts)
	want := Rect{-1, 0, 3, 5}
	if r != want {
		t.Errorf("RectFromPoints = %v, want %v", r, want)
	}
	if !RectFromPoints(nil).IsEmpty() {
		t.Error("RectFromPoints(nil) should be empty")
	}
}

func TestIntersects(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{1, 1, 3, 3}, true},
		{Rect{2, 2, 3, 3}, true}, // corner touch, closed rects
		{Rect{2.1, 2.1, 3, 3}, false},
		{Rect{-1, -1, -0.1, -0.1}, false},
		{Rect{0.5, 0.5, 1.5, 1.5}, true}, // containment
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("Intersects(%v) = %v, want %v", c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("Intersects not symmetric for %v", c.b)
		}
	}
	if a.Intersects(EmptyRect()) || EmptyRect().Intersects(a) {
		t.Error("nothing intersects the empty rect")
	}
}

func TestIntersectUnion(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{1, 1, 3, 3}
	if got := a.Intersect(b); got != (Rect{1, 1, 2, 2}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b); got != (Rect{0, 0, 3, 3}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(Rect{5, 5, 6, 6}); !got.IsEmpty() {
		t.Errorf("disjoint Intersect = %v, want empty", got)
	}
}

func TestInflate(t *testing.T) {
	r := Rect{1, 1, 2, 2}
	if got := r.Inflate(0.5); got != (Rect{0.5, 0.5, 2.5, 2.5}) {
		t.Errorf("Inflate(0.5) = %v", got)
	}
	if got := r.Inflate(-1); !got.IsEmpty() {
		t.Errorf("over-shrunk rect should be empty, got %v", got)
	}
	if got := EmptyRect().Inflate(3); !got.IsEmpty() {
		t.Errorf("inflating empty stays empty, got %v", got)
	}
}

func TestMinMaxDist(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{4, 0, 5, 1} // 3 apart horizontally
	if got := a.MinDist(b); !almostEq(got, 3, 1e-12) {
		t.Errorf("MinDist = %g, want 3", got)
	}
	maxWant := math.Sqrt(25 + 1) // corner (0,0)..(5,1) or (0,1)..(5,0)
	if got := a.MaxDist(b); !almostEq(got, maxWant, 1e-12) {
		t.Errorf("MaxDist = %g, want %g", got, maxWant)
	}
	if got := a.MinDist(a); got != 0 {
		t.Errorf("MinDist with self = %g", got)
	}
	diag := Rect{3, 4, 5, 6}
	if got := a.MinDist(diag); !almostEq(got, math.Sqrt(4+9), 1e-12) {
		t.Errorf("diagonal MinDist = %g", got)
	}
}

func TestMinDistPoint(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	if got := r.MinDistPoint(Point{1, 1}); got != 0 {
		t.Errorf("inside point MinDist = %g", got)
	}
	if got := r.MinDistPoint(Point{5, 2}); !almostEq(got, 3, 1e-12) {
		t.Errorf("MinDistPoint = %g, want 3", got)
	}
	if got := r.MinDistPoint(Point{5, 6}); !almostEq(got, 5, 1e-12) {
		t.Errorf("MinDistPoint = %g, want 5", got)
	}
}

func TestMinMaxDistProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		a := randRect(rng)
		b := randRect(rng)
		// sample points inside each rect; distances must respect bounds
		lo, hi := a.MinDist(b), a.MaxDist(b)
		for s := 0; s < 20; s++ {
			p := Point{a.MinX + rng.Float64()*a.Width(), a.MinY + rng.Float64()*a.Height()}
			q := Point{b.MinX + rng.Float64()*b.Width(), b.MinY + rng.Float64()*b.Height()}
			d := p.Dist(q)
			if d < lo-1e-9 || d > hi+1e-9 {
				t.Fatalf("distance %g outside [%g,%g] for rects %v %v", d, lo, hi, a, b)
			}
		}
	}
}

func randRect(rng *rand.Rand) Rect {
	x1, x2 := rng.Float64()*10, rng.Float64()*10
	y1, y2 := rng.Float64()*10, rng.Float64()*10
	return Rect{math.Min(x1, x2), math.Min(y1, y2), math.Max(x1, x2), math.Max(y1, y2)}
}

func TestPairIndexOrdering(t *testing.T) {
	// Prefix-friendliness: for tuple size m, the pairs among the first i
	// points must occupy exactly the first i*(i-1)/2 slots.
	for m := 2; m <= 7; m++ {
		for i := 2; i <= m; i++ {
			limit := PairCount(i)
			for a := 0; a < i; a++ {
				for b := a + 1; b < i; b++ {
					if idx := PairIndex(a, b); idx >= limit {
						t.Fatalf("PairIndex(%d,%d) = %d, not within prefix of %d points (limit %d)", a, b, idx, i, limit)
					}
				}
			}
		}
	}
	// Bijectivity over the full range.
	m := 7
	seen := make(map[int]bool)
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			idx := PairIndex(a, b)
			if seen[idx] {
				t.Fatalf("PairIndex collision at %d", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != PairCount(m) {
		t.Fatalf("PairIndex covered %d slots, want %d", len(seen), PairCount(m))
	}
	if PairIndex(3, 1) != PairIndex(1, 3) {
		t.Error("PairIndex must be symmetric in its arguments")
	}
}

func TestPairCount(t *testing.T) {
	want := map[int]int{0: 0, 1: 0, 2: 1, 3: 3, 4: 6, 5: 10, 6: 15}
	for m, w := range want {
		if got := PairCount(m); got != w {
			t.Errorf("PairCount(%d) = %d, want %d", m, got, w)
		}
	}
}

func TestDistVector(t *testing.T) {
	pts := []Point{{0, 0}, {3, 4}, {0, 8}}
	v := DistVector(pts, nil)
	if len(v) != 3 {
		t.Fatalf("len = %d", len(v))
	}
	// order: d01, d02, d12
	if !almostEq(v[0], 5, 1e-12) || !almostEq(v[1], 8, 1e-12) || !almostEq(v[2], 5, 1e-12) {
		t.Errorf("DistVector = %v", v)
	}
	// reuse path
	buf := make([]float64, 0, 8)
	v2 := DistVector(pts, buf)
	for i := range v {
		if v[i] != v2[i] {
			t.Fatal("reused-buffer DistVector disagrees")
		}
	}
	if len(DistVector(pts[:1], nil)) != 0 {
		t.Error("single point has empty distance vector")
	}
}

func TestDistVectorMatchesPairIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		m := 2 + rng.Intn(5)
		pts := make([]Point, m)
		for i := range pts {
			pts[i] = Point{rng.Float64() * 100, rng.Float64() * 100}
		}
		v := DistVector(pts, nil)
		for a := 0; a < m; a++ {
			for b := a + 1; b < m; b++ {
				if got := v[PairIndex(a, b)]; !almostEq(got, pts[a].Dist(pts[b]), 1e-9) {
					t.Fatalf("v[PairIndex(%d,%d)] = %g, want %g", a, b, got, pts[a].Dist(pts[b]))
				}
			}
		}
	}
}

func TestTupleNormMatchesDistVector(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		m := 2 + rng.Intn(5)
		pts := make([]Point, m)
		for i := range pts {
			pts[i] = Point{rng.Float64() * 100, rng.Float64() * 100}
		}
		if got, want := TupleNorm(pts), Norm(DistVector(pts, nil)); !almostEq(got, want, 1e-9) {
			t.Fatalf("TupleNorm = %g, Norm(DistVector) = %g", got, want)
		}
	}
}

func TestNormOK(t *testing.T) {
	cases := []struct {
		n, ref, beta float64
		want         bool
	}{
		{1, 1, 1.5, true},
		{1.5, 1, 1.5, true},
		{1.51, 1, 1.5, false},
		{1 / 1.5, 1, 1.5, true},
		{0.5, 1, 1.5, false},
		{100, 1, math.Inf(1), true},
		{0, 0, 1.5, true},
		{0.1, 0, 1.5, false},
		{5, 1, 5, true},
	}
	for _, c := range cases {
		if got := NormOK(c.n, c.ref, c.beta); got != c.want {
			t.Errorf("NormOK(%g,%g,%g) = %v, want %v", c.n, c.ref, c.beta, got, c.want)
		}
	}
}

func TestNorm(t *testing.T) {
	if got := Norm([]float64{3, 4}); !almostEq(got, 5, 1e-12) {
		t.Errorf("Norm = %g", got)
	}
	if got := Norm(nil); got != 0 {
		t.Errorf("Norm(nil) = %g", got)
	}
}
