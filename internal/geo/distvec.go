package geo

import "math"

// PairCount returns the number of pairwise distances in a size-m tuple,
// m*(m-1)/2. It returns 0 for m < 2.
//
//seq:hotpath
func PairCount(m int) int {
	if m < 2 {
		return 0
	}
	return m * (m - 1) / 2
}

// PairIndex returns the position of the distance d(p_i, p_j), i < j, inside
// a distance vector laid out in the prefix-friendly order used throughout
// this library:
//
//	for j = 1..m-1: for i = 0..j-1: d(p_i, p_j)
//
// i.e. d01, d02, d12, d03, d13, d23, ... (0-based point indices). With this
// ordering the first i selected points of a tuple determine exactly the
// first i*(i-1)/2 entries of the vector, which is what the prefix-based
// pruning bounds of DFS-Prune, HSP and LORA require. Cosine similarity is
// invariant under any permutation applied consistently to both vectors, so
// this is equivalent to the paper's row-major listing.
//
//seq:hotpath
func PairIndex(i, j int) int {
	if i > j {
		i, j = j, i
	}
	return j*(j-1)/2 + i
}

// DistVector writes the distance vector of the tuple pts into dst (resized
// as needed) and returns it. Layout follows PairIndex.
//
//seq:hotpath
func DistVector(pts []Point, dst []float64) []float64 {
	n := PairCount(len(pts))
	if cap(dst) < n {
		//lint:ignore hotpathalloc grow-once scratch resize; steady-state calls reuse dst at full capacity
		dst = make([]float64, n)
	}
	dst = dst[:n]
	idx := 0
	for j := 1; j < len(pts); j++ {
		for i := 0; i < j; i++ {
			dst[idx] = pts[i].Dist(pts[j])
			idx++
		}
	}
	return dst
}

// DistVectorAt writes the distance vector of the tuple whose i-th point is
// (xs[idx[i]], ys[idx[i]]) into dst (resized as needed) and returns it.
// Layout follows PairIndex. It is the structure-of-arrays companion of
// DistVector: callers that keep coordinates in flat parallel slices (the
// dataset's hot-path layout) avoid gathering geo.Points first, so the
// pairwise loop reads contiguous float64 arrays. The arithmetic matches
// Point.Dist expression-for-expression, so results are bit-identical to
// DistVector over the gathered points.
//
//seq:hotpath
func DistVectorAt(xs, ys []float64, idx []int32, dst []float64) []float64 {
	n := PairCount(len(idx))
	if cap(dst) < n {
		//lint:ignore hotpathalloc grow-once scratch resize; steady-state calls reuse dst at full capacity
		dst = make([]float64, n)
	}
	dst = dst[:n]
	k := 0
	for j := 1; j < len(idx); j++ {
		xj, yj := xs[idx[j]], ys[idx[j]]
		for i := 0; i < j; i++ {
			dx := xs[idx[i]] - xj
			dy := ys[idx[i]] - yj
			dst[k] = math.Sqrt(dx*dx + dy*dy)
			k++
		}
	}
	return dst
}

// DistVectorsAt is the blocked companion of DistVectorAt: tuples holds
// rows*m point indices (row-major, m per tuple) and the result holds
// rows*PairCount(m) distances — row r's vector at
// dst[r*PairCount(m):(r+1)*PairCount(m)], each laid out per PairIndex.
// The inner arithmetic is the same expression as DistVectorAt, so every
// row is bit-identical to a scalar call on that tuple. dst is resized
// as needed and returned.
//
//seq:hotpath
func DistVectorsAt(xs, ys []float64, tuples []int32, m int, dst []float64) []float64 {
	if m <= 0 {
		return dst[:0]
	}
	rows := len(tuples) / m
	pairs := PairCount(m)
	n := rows * pairs
	if cap(dst) < n {
		//lint:ignore hotpathalloc grow-once scratch resize; steady-state calls reuse dst at full capacity
		dst = make([]float64, n)
	}
	dst = dst[:n]
	k := 0
	for r := 0; r < rows; r++ {
		idx := tuples[r*m : r*m+m]
		for j := 1; j < m; j++ {
			xj, yj := xs[idx[j]], ys[idx[j]]
			for i := 0; i < j; i++ {
				dx := xs[idx[i]] - xj
				dy := ys[idx[i]] - yj
				dst[k] = math.Sqrt(dx*dx + dy*dy)
				k++
			}
		}
	}
	return dst
}

// Norm returns the 2-norm of v.
//
//seq:hotpath
func Norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// TupleNorm returns ||V_t|| for the tuple pts without materialising the
// distance vector.
//
//seq:hotpath
func TupleNorm(pts []Point) float64 {
	var s float64
	for j := 1; j < len(pts); j++ {
		for i := 0; i < j; i++ {
			d := pts[i].DistSq(pts[j])
			s += d
		}
	}
	return math.Sqrt(s)
}

// NormOK reports whether the beta-norm constraint 1/beta <= n/ref <= beta
// holds for a tuple norm n against the example norm ref. beta must be >= 1;
// an infinite beta accepts everything (the SEQ relaxation). A zero ref with
// finite beta is only satisfied by a zero n.
//
//seq:hotpath
func NormOK(n, ref, beta float64) bool {
	if math.IsInf(beta, 1) {
		return true
	}
	if ref == 0 {
		return n == 0
	}
	ratio := n / ref
	return ratio >= 1/beta && ratio <= beta
}
