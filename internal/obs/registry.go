package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"slices"
	"strconv"
	"strings"
	"sync"
)

// metricType discriminates the exposition TYPE of a family.
type metricType int

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	default:
		return "histogram"
	}
}

// nameRe is the Prometheus metric- and label-name grammar.
var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Registry is a concurrent collection of metric families that renders
// the Prometheus text exposition format (version 0.0.4). The zero value
// is unusable; call NewRegistry. All methods are safe for concurrent
// use; metric updates (Add, Set, Observe) never block a concurrent
// render for more than a map lookup.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with a fixed label schema. Children (one
// per distinct label-value combination) are created on demand.
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64 // histogram upper bounds, ascending, no +Inf

	mu       sync.Mutex
	children map[string]*child
	fn       func() float64 // callback gauges; nil otherwise
}

// register returns the family for name, creating it on first use. A
// re-registration must agree on type and label schema.
func (r *Registry) register(name, help string, typ metricType, buckets []float64, labels []string) *family {
	if !nameRe.MatchString(name) {
		//lint:ignore panicfree metric registration happens at process start-up; a malformed name is a programmer error that must not silently produce an unscrapable endpoint
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !nameRe.MatchString(l) || strings.HasPrefix(l, "__") {
			//lint:ignore panicfree metric registration happens at process start-up; a malformed label is a programmer error that must not silently produce an unscrapable endpoint
			panic("obs: invalid label name " + strconv.Quote(l) + " on metric " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !slices.Equal(f.labels, labels) {
			//lint:ignore panicfree conflicting re-registration would silently split one metric into two incompatible series; fail loudly at start-up instead
			panic("obs: metric " + name + " re-registered with a different type or label schema")
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   slices.Clone(labels),
		buckets:  slices.Clone(buckets),
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// Counter registers (or fetches) a counter family with the given label
// names and returns its vector.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, counterType, nil, labels)}
}

// Gauge registers (or fetches) a gauge family with the given label
// names and returns its vector.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, gaugeType, nil, labels)}
}

// Histogram registers (or fetches) a histogram family with fixed bucket
// upper bounds (ascending; the +Inf overflow bucket is implicit) and
// returns its vector. Nil buckets use DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	if !slices.IsSorted(buckets) {
		//lint:ignore panicfree unsorted buckets would mis-count every observation; this is a start-up programmer error
		panic("obs: histogram " + name + " buckets must be ascending")
	}
	return &HistogramVec{f: r.register(name, help, histogramType, buckets, labels)}
}

// GaugeFunc registers a label-less gauge whose value is sampled from fn
// at render time — the fit for counters owned elsewhere (e.g. cache
// hit totals) that the registry only mirrors.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, gaugeType, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// with returns the child for the given label values, creating it on
// first use.
func (f *family) with(values []string) *child {
	if len(values) != len(f.labels) {
		//lint:ignore panicfree a label-arity mismatch is a programmer error that would otherwise corrupt the series key space
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = newChild(f, values)
		f.children[key] = c
	}
	return c
}

// labelKey encodes label values into one collision-free map key.
func labelKey(values []string) string {
	if len(values) == 0 {
		return ""
	}
	var b strings.Builder
	for _, v := range values {
		b.WriteString(strconv.Quote(v))
		b.WriteByte(',')
	}
	return b.String()
}

// WriteText renders every family in the Prometheus text exposition
// format, families and series in lexicographic order so output is
// deterministic and diff-friendly.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	slices.Sort(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.writeText(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeText renders one family into b.
func (f *family) writeText(b *strings.Builder) {
	if f.help != "" {
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteByte('\n')
	}
	b.WriteString("# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(f.typ.String())
	b.WriteByte('\n')

	f.mu.Lock()
	fn := f.fn
	children := make([]*child, 0, len(f.children))
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.Unlock()

	if fn != nil {
		writeSample(b, f.name, "", nil, nil, fn())
		return
	}
	for _, c := range children {
		c.writeText(b, f)
	}
}

// writeSample renders one "<name><suffix>{labels...} <value>" line. The
// extra pair (used for histogram "le") is appended after the family
// labels when extraKey is non-empty.
func writeSample(b *strings.Builder, name, suffix string, labels []labelPair, extra *labelPair, v float64) {
	b.WriteString(name)
	b.WriteString(suffix)
	if len(labels) > 0 || extra != nil {
		b.WriteByte('{')
		first := true
		for _, lp := range labels {
			if !first {
				b.WriteByte(',')
			}
			first = false
			b.WriteString(lp.name)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(lp.value))
			b.WriteByte('"')
		}
		if extra != nil {
			if !first {
				b.WriteByte(',')
			}
			b.WriteString(extra.name)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(extra.value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

// labelPair is one rendered name="value" element.
type labelPair struct {
	name, value string
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslashes, quotes and newlines in label values.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
