// Package obs is the repository's stdlib-only telemetry subsystem: the
// operational companion to the per-search work counters of
// internal/stats. It provides three independent facilities that together
// answer "why was this query slow" in production:
//
//   - a concurrent metrics Registry (counters, gauges, fixed-bucket
//     histograms, all with label support) that renders the Prometheus
//     text exposition format for a /metrics endpoint;
//   - per-query phase tracing: a lightweight, nil-safe Trace/Span API on
//     monotonic clocks that the engine and the algorithm packages use to
//     attribute wall time to search phases (validate, partitioning,
//     candidate enumeration, DFS, rank-graph pops, top-k merge);
//   - structured JSON request logging helpers over log/slog, with
//     generated request IDs carried through contexts.
//
// Like internal/stats, obs is a leaf package: it imports nothing from
// this module (enforced by the seqlint layering policy), so the
// algorithm layer can depend on the trace interface without ever seeing
// the server.
package obs
