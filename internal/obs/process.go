package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// processStart approximates process start (package initialization) for
// the uptime gauge.
var processStart = time.Now()

// BuildRevision returns the VCS revision baked into the binary by the go
// toolchain, with a "+dirty" suffix for a modified working tree, or
// "unknown" when the binary was built without VCS stamping (go test,
// plain `go build` outside a repository).
func BuildRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}

// RegisterProcessMetrics registers the process-health gauges every
// serving binary should expose:
//
//	spatialseq_build_info{revision=...} 1   — which build is running
//	spatialseq_uptime_seconds               — seconds since process start
//	spatialseq_goroutines                   — live goroutine count
//
// Registering twice on the same registry is safe (the families are
// reused); the uptime clock is process-wide, not per-call.
func RegisterProcessMetrics(r *Registry) {
	r.Gauge("spatialseq_build_info",
		"Build metadata; the value is always 1, the revision label carries the git SHA.",
		"revision").With(BuildRevision()).Set(1)
	r.GaugeFunc("spatialseq_uptime_seconds",
		"Seconds since process start.",
		func() float64 { return time.Since(processStart).Seconds() })
	r.GaugeFunc("spatialseq_goroutines",
		"Current number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
}
