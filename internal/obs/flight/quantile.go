package flight

// quantile is the P² streaming quantile estimator of Jain & Chlamtac
// (CACM 1985): five markers tracking the p-quantile of a stream in O(1)
// time and O(1) space per observation, with no allocation after
// construction — exactly the budget an always-on per-query threshold can
// afford. The estimate converges to the true quantile as the stream
// grows; the recorder additionally gates the threshold on a warm-up
// sample count before trusting it.
//
// The implementation keeps the five marker invariants of the paper:
// heights q[0..4] ascending, positions pos[0..4] strictly increasing
// integers stored as float64, desired positions want[0..4] advanced by
// dwant per observation.
//
// Not safe for concurrent use; the recorder serializes access under its
// mutex.
type quantile struct {
	p     float64
	n     int
	q     [5]float64
	pos   [5]float64
	want  [5]float64
	dwant [5]float64
	// init holds the first five observations, kept sorted so the cold
	// estimate is an allocation-free nearest-rank lookup.
	init [5]float64
}

// newQuantile returns an estimator for the p-quantile (0 < p < 1).
func newQuantile(p float64) quantile {
	return quantile{
		p:     p,
		dwant: [5]float64{0, p / 2, p, (1 + p) / 2, 1},
	}
}

// add feeds one observation.
//
//seq:hotpath
func (e *quantile) add(x float64) {
	if e.n < 5 {
		// Insertion sort into the seed buffer.
		i := e.n
		for i > 0 && e.init[i-1] > x {
			e.init[i] = e.init[i-1]
			i--
		}
		e.init[i] = x
		e.n++
		if e.n == 5 {
			e.q = e.init
			e.pos = [5]float64{1, 2, 3, 4, 5}
			e.want = [5]float64{1, 1 + 2*e.p, 1 + 4*e.p, 3 + 2*e.p, 5}
		}
		return
	}
	e.n++

	// Locate the cell k with q[k] <= x < q[k+1], widening the extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.want[i] += e.dwant[i]
	}

	// Nudge the three interior markers toward their desired positions,
	// preferring the parabolic (P²) height update and falling back to
	// linear interpolation when the parabola would break monotonicity.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			qp := e.parabolic(i, s)
			if e.q[i-1] < qp && qp < e.q[i+1] {
				e.q[i] = qp
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

// parabolic is the piecewise-parabolic height prediction for marker i
// moved by d (±1).
func (e *quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback height prediction for marker i moved by d (±1).
func (e *quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// estimate returns the current quantile estimate and whether any
// observations were seen. Below five observations it falls back to a
// nearest-rank lookup over the sorted seed buffer.
//
//seq:hotpath
func (e *quantile) estimate() (float64, bool) {
	if e.n == 0 {
		return 0, false
	}
	if e.n < 5 {
		// Nearest-rank on the sorted seed: rank ceil(p*n), 1-based.
		rank := int(e.p*float64(e.n) + 0.9999999)
		if rank < 1 {
			rank = 1
		}
		if rank > e.n {
			rank = e.n
		}
		return e.init[rank-1], true
	}
	return e.q[2], true
}

// samples returns the number of observations fed so far.
func (e *quantile) samples() int { return e.n }
