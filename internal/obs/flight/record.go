// Package flight is the query flight recorder: always-on, bounded-
// overhead per-query forensics for the search service. Where the metrics
// registry answers "how is the fleet doing" in aggregate, the flight
// recorder answers "which query was slow and why" after the fact — the
// database-style query log of a serving system.
//
// One structured Record is captured per completed query: the request ID,
// the CSEQ shape fingerprint (m, dims, pins, k, algorithm), cache
// hit/miss, outcome, total latency, the full per-phase wall times from
// obs.Trace, and the work-counter snapshot from internal/stats. Records
// land in a fixed-size lock-cheap ring buffer ("everything recent") and
// in a tail-sampler that always retains the slowest N per time window
// ("everything worth keeping"). A streaming-quantile p99 tracker drives
// the adaptive slow-query threshold; queries crossing it additionally
// emit one structured slow-query log line.
//
// Slow queries optionally carry a Capture: the full query specification
// in a dataset-independent encoding (category names, object IDs) that,
// together with the dataset provenance stamped into a CaptureFile, turns
// a production slow query into a deterministic offline reproduction
// (`seqbench -exp replay`) whose work counters must match the recorded
// ones exactly.
//
// Like obs and stats, flight sits on the leaf band of the layer policy:
// it imports only those, plus the sibling obs/span leaf (retained span
// trees), so the engine and the server can both feed it and a capture
// file stays loadable without either.
package flight

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"spatialseq/internal/obs"
	"spatialseq/internal/obs/span"
	"spatialseq/internal/stats"
)

// Outcome classifies how a query finished.
const (
	// OutcomeOK is a successful search.
	OutcomeOK = "ok"
	// OutcomeError is an engine failure (validation, unsupported
	// algorithm, internal error).
	OutcomeError = "error"
	// OutcomeTimeout is a context expiry (deadline or cancellation).
	OutcomeTimeout = "timeout"
)

// NoShard marks a record emitted by an unsharded engine. The field is
// reserved for the scatter-gather serving tier: a coordinator stamps the
// owning shard here so per-shard latency attribution survives the merge.
const NoShard int32 = -1

// Record is one completed query, as retained by the recorder. All
// fields are plain values so a Record can be copied into and out of the
// ring buffer without allocation.
type Record struct {
	// Seq is the recorder-assigned emission sequence number (1-based).
	Seq uint64 `json:"seq"`
	// RequestID correlates the record with request logs ("" for
	// non-HTTP callers such as benchmarks).
	RequestID string `json:"request_id,omitempty"`
	// ShardID is the owning shard, or NoShard for a single engine.
	ShardID int32 `json:"shard_id"`
	// Start is the query start time in Unix nanoseconds.
	Start int64 `json:"start_unix_ns"`
	// LatencyNS is the total query latency in nanoseconds.
	LatencyNS int64 `json:"latency_ns"`

	// The CSEQ shape fingerprint: enough to see what kind of query this
	// was without the full capture payload.
	Algorithm string `json:"algorithm"`
	Variant   string `json:"variant"`
	// M is the example tuple size.
	M int32 `json:"m"`
	// Dims is the attribute dimensionality.
	Dims int32 `json:"dims"`
	// Pins is the number of CSEQ-FP fixed points.
	Pins int32 `json:"pins"`
	K    int32 `json:"k"`

	// CacheHit marks a query answered from the result cache (the engine
	// did not run; Work then describes the original execution).
	CacheHit bool `json:"cache_hit"`
	// Outcome is OutcomeOK, OutcomeError or OutcomeTimeout.
	Outcome string `json:"outcome"`

	// Work is the engine's per-search counter snapshot.
	Work stats.Snapshot `json:"work"`
	// Phases is the per-phase wall-time breakdown (nil on cache hits:
	// no engine ran).
	Phases []obs.PhaseTiming `json:"phases,omitempty"`
	// Capture is the replayable query payload, attached only to queries
	// the recorder decided to retain as slow (nil otherwise).
	Capture *Capture `json:"capture,omitempty"`
	// Spans is the hierarchical span tree of the execution, attached —
	// like Capture — only to queries retained as slow (WouldRetain gates
	// the snapshot allocation). It backs GET /debug/trace/{requestID}.
	Spans *span.Tree `json:"spans,omitempty"`
	// Skew is the per-query imbalance attribution derived from the span
	// tree; nil when the query recorded no worker spans.
	Skew *span.SkewReport `json:"skew,omitempty"`
}

// End returns the query end time in Unix nanoseconds — the instant the
// recorder's tail-sampling windows rotate on.
func (r *Record) End() int64 { return r.Start + r.LatencyNS }

// LatencyMS returns the latency in milliseconds (for human-facing
// rendering; the canonical field is LatencyNS).
func (r *Record) LatencyMS() float64 { return float64(r.LatencyNS) / 1e6 }

// Capture is the dataset-independent encoding of one query — everything
// a replay needs to rebuild a query.Query against a dataset loaded from
// the same provenance. Categories are referenced by name and pinned
// objects by their stable dataset ID, never by position, so the payload
// survives serialization across processes.
type Capture struct {
	Variant   string  `json:"variant"`
	Algorithm string  `json:"algorithm"`
	K         int     `json:"k"`
	Alpha     float64 `json:"alpha"`
	Beta      float64 `json:"beta"`
	GridD     int     `json:"grid_d"`
	Xi        int     `json:"xi"`
	// Dims is the example tuple, one entry per dimension.
	Dims []CapturedDim `json:"dims"`
	// SkipPairs lists distance pairs excluded from the similarity.
	SkipPairs [][2]int `json:"skip_pairs,omitempty"`
}

// CapturedDim is one example dimension of a captured query.
type CapturedDim struct {
	X        float64   `json:"x"`
	Y        float64   `json:"y"`
	Category string    `json:"category"`
	Attrs    []float64 `json:"attrs"`
	// FixedID pins this dimension to the dataset object with this ID
	// (CSEQ-FP); nil leaves it free.
	FixedID *int64 `json:"fixed_id,omitempty"`
}

// DatasetInfo records where the dataset a query ran against came from,
// so a replay can rebuild it bit-for-bit.
type DatasetInfo struct {
	// Kind is "synth" (regenerate from family, n and seed) or "file"
	// (reload from Path).
	Kind string `json:"kind"`
	// Family is the synthetic family ("yelp" or "gaode") when Kind is
	// "synth".
	Family string `json:"family,omitempty"`
	// N is the synthetic dataset size when Kind is "synth".
	N int `json:"n,omitempty"`
	// Seed is the synthetic dataset seed when Kind is "synth".
	Seed int64 `json:"seed,omitempty"`
	// Path is the dataset file when Kind is "file".
	Path string `json:"path,omitempty"`
}

// CaptureSchemaVersion identifies the capture-file layout. Bump it when
// a field changes meaning; replay refuses other versions. Version 2:
// Record.Work gained the max-semantics subspace_candidates_max counter,
// which participates in replay's exact work equality.
const CaptureSchemaVersion = 2

// CaptureFile is the export format of the flight recorder: dataset
// provenance plus the retained records. Records without a Capture are
// context only; replay skips them.
type CaptureFile struct {
	Schema  int         `json:"schema"`
	Dataset DatasetInfo `json:"dataset"`
	Records []Record    `json:"records"`
}

// WriteCaptureFile writes cf as indented JSON to path.
func WriteCaptureFile(path string, cf CaptureFile) error {
	data, err := json.MarshalIndent(cf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadCaptureFile loads and validates a capture file.
func ReadCaptureFile(path string) (CaptureFile, error) {
	var cf CaptureFile
	data, err := os.ReadFile(path)
	if err != nil {
		return cf, err
	}
	if err := json.Unmarshal(data, &cf); err != nil {
		return cf, fmt.Errorf("flight: parsing capture file %s: %w", path, err)
	}
	if cf.Schema != CaptureSchemaVersion {
		return cf, fmt.Errorf("flight: capture file %s has schema %d, want %d", path, cf.Schema, CaptureSchemaVersion)
	}
	switch cf.Dataset.Kind {
	case "synth":
		if cf.Dataset.Family == "" || cf.Dataset.N <= 0 {
			return cf, errors.New("flight: synth dataset provenance needs family and n")
		}
	case "file":
		if cf.Dataset.Path == "" {
			return cf, errors.New("flight: file dataset provenance needs path")
		}
	default:
		return cf, fmt.Errorf("flight: unknown dataset kind %q", cf.Dataset.Kind)
	}
	return cf, nil
}
