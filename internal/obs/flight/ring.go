package flight

import (
	"sort"
	"sync"
	"sync/atomic"
)

// ring is the fixed-size record buffer holding the most recent emissions.
// Writers claim a slot with one atomic increment and copy the record in
// under that slot's own mutex, so concurrent emissions only contend when
// they land on the same slot (i.e. the buffer has wrapped a full lap in
// the meantime) and a reader only ever blocks one writer for the
// duration of a struct copy — the "lock-cheap" discipline the always-on
// hot path requires.
type ring struct {
	seq   atomic.Uint64
	slots []ringSlot
}

type ringSlot struct {
	mu  sync.Mutex
	ok  bool
	rec Record
}

func newRing(size int) ring {
	return ring{slots: make([]ringSlot, size)}
}

// put assigns rec the next sequence number and stores it in its slot.
//
//seq:hotpath
func (r *ring) put(rec *Record) {
	seq := r.seq.Add(1)
	rec.Seq = seq
	if len(r.slots) == 0 {
		return
	}
	s := &r.slots[int((seq-1)%uint64(len(r.slots)))]
	s.mu.Lock()
	s.rec = *rec
	s.ok = true
	s.mu.Unlock()
}

// recent copies out up to max retained records, newest first.
func (r *ring) recent(max int) []Record {
	if max <= 0 || len(r.slots) == 0 {
		return nil
	}
	out := make([]Record, 0, min(max, len(r.slots)))
	for i := range r.slots {
		s := &r.slots[i]
		s.mu.Lock()
		if s.ok {
			out = append(out, s.rec)
		}
		s.mu.Unlock()
	}
	// Newest first. Slots are visited in index order, not emission
	// order, so sort by the global sequence number.
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	if len(out) > max {
		out = out[:max]
	}
	return out
}
