package flight

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"spatialseq/internal/obs/span"
	"spatialseq/internal/stats"
	"spatialseq/internal/vectormath"
)

// rec builds a record ending at start+lat (both in arbitrary ns).
func mkRec(seqHint int, start, lat int64) Record {
	return Record{
		RequestID: "req",
		ShardID:   NoShard,
		Start:     start,
		LatencyNS: lat,
		Algorithm: "hsp",
		Variant:   "CSEQ",
		M:         3,
		K:         int32(seqHint),
		Outcome:   OutcomeOK,
	}
}

func TestFind(t *testing.T) {
	r := New(Config{Floor: time.Nanosecond})
	a := mkRec(1, 10, 100)
	a.RequestID = "alpha"
	r.Observe(&a)

	tr := span.NewTracer()
	root := tr.Root("search")
	root.End()
	b := mkRec(2, 20, 50)
	b.RequestID = "dup"
	b.Spans = tr.Snapshot()
	r.Observe(&b)
	c := mkRec(3, 30, 60) // reused ID, newer, but no span tree
	c.RequestID = "dup"
	r.Observe(&c)

	got, ok := r.Find("alpha")
	if !ok || got.RequestID != "alpha" {
		t.Errorf("Find(alpha) = %+v, %v", got, ok)
	}
	got, ok = r.Find("dup")
	if !ok || got.Spans == nil {
		t.Errorf("Find(dup) should prefer the span-carrying record, got Spans=%v", got.Spans)
	}
	if _, ok := r.Find("missing"); ok {
		t.Error("Find(missing) returned a record")
	}
	if _, ok := r.Find(""); ok {
		t.Error("Find of empty ID returned a record")
	}

	// Same ID, neither with spans: the most recent record wins.
	d := mkRec(4, 40, 10)
	d.RequestID = "twice"
	r.Observe(&d)
	e := mkRec(5, 50, 10)
	e.RequestID = "twice"
	r.Observe(&e)
	if got, ok := r.Find("twice"); !ok || got.Seq != e.Seq {
		t.Errorf("Find(twice) = seq %d, want the newer %d", got.Seq, e.Seq)
	}
}

func TestRingWraparound(t *testing.T) {
	r := newRing(4)
	for i := 1; i <= 10; i++ {
		rec := mkRec(i, int64(i), 1)
		r.put(&rec)
	}
	got := r.recent(10)
	if len(got) != 4 {
		t.Fatalf("recent returned %d records, want 4", len(got))
	}
	for i, rec := range got {
		wantSeq := uint64(10 - i) // newest first
		if rec.Seq != wantSeq {
			t.Errorf("recent[%d].Seq = %d, want %d", i, rec.Seq, wantSeq)
		}
	}
	if got := r.recent(2); len(got) != 2 || got[0].Seq != 10 || got[1].Seq != 9 {
		t.Errorf("recent(2) = %v", got)
	}
}

func TestRingDisabled(t *testing.T) {
	r := New(Config{RingSize: -1})
	rec := mkRec(1, 0, 1)
	r.Observe(&rec)
	if got := r.Recent(10); len(got) != 0 {
		t.Errorf("disabled ring returned %d records", len(got))
	}
	if r.Observed() != 1 {
		t.Errorf("Observed = %d, want 1 (tail sampling still runs)", r.Observed())
	}
}

func TestTailSamplingRetention(t *testing.T) {
	r := New(Config{KeepSlowest: 3, Window: time.Minute})
	for i := 1; i <= 10; i++ {
		rec := mkRec(i, int64(i), int64(i)*int64(time.Millisecond))
		r.Observe(&rec)
	}
	slow := r.Slowest()
	if len(slow) != 3 {
		t.Fatalf("Slowest returned %d records, want 3", len(slow))
	}
	for i, want := range []int64{10, 9, 8} {
		if got := slow[i].LatencyNS / int64(time.Millisecond); got != want {
			t.Errorf("Slowest[%d] latency = %dms, want %dms", i, got, want)
		}
	}
}

func TestWindowRotation(t *testing.T) {
	w := int64(time.Minute)
	r := New(Config{KeepSlowest: 4, Window: time.Minute})
	// Window 1: two records.
	r1 := mkRec(1, 0, 100)
	r2 := mkRec(2, 50, 100)
	r.Observe(&r1)
	r.Observe(&r2)
	// Just past the window end: normal rotation, window 1 becomes "prev".
	r3 := mkRec(3, w+100, 200)
	r.Observe(&r3)
	if got := len(r.Slowest()); got != 3 {
		t.Fatalf("after one rotation Slowest holds %d records, want 3 (cur+prev)", got)
	}
	// An idle gap of several windows: everything retained is stale.
	r4 := mkRec(4, 10*w, 300)
	r.Observe(&r4)
	slow := r.Slowest()
	if len(slow) != 1 || slow[0].LatencyNS != 300 {
		t.Fatalf("after idle gap Slowest = %+v, want just the new record", slow)
	}
}

func TestThresholdColdAndFloor(t *testing.T) {
	r := New(Config{})
	if _, ok := r.Threshold(); ok {
		t.Error("cold recorder with no floor reports an engaged threshold")
	}
	rec := mkRec(1, 0, int64(time.Second))
	if r.Observe(&rec) {
		t.Error("record counted slow while no threshold is engaged")
	}

	rf := New(Config{Floor: 10 * time.Millisecond})
	thr, ok := rf.Threshold()
	if !ok || thr != 10*time.Millisecond {
		t.Errorf("floor threshold = (%v, %v), want (10ms, true)", thr, ok)
	}
	fast := mkRec(1, 0, int64(5*time.Millisecond))
	slow := mkRec(2, 100, int64(20*time.Millisecond))
	if rf.Observe(&fast) {
		t.Error("5ms counted slow against a 10ms floor")
	}
	if !rf.Observe(&slow) {
		t.Error("20ms not counted slow against a 10ms floor")
	}
	if rf.SlowCount() != 1 {
		t.Errorf("SlowCount = %d, want 1", rf.SlowCount())
	}
}

func TestAdaptiveThresholdEngages(t *testing.T) {
	r := New(Config{Warmup: 64})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		rec := mkRec(i, int64(i)*1000, int64(1+rng.Intn(1000))*int64(time.Microsecond))
		r.Observe(&rec)
	}
	thr, ok := r.Threshold()
	if !ok {
		t.Fatal("threshold not engaged after 200 observations with warmup 64")
	}
	p99, ok := r.P99()
	if !ok {
		t.Fatal("no p99 estimate after 200 observations")
	}
	if thr != p99 {
		t.Errorf("with no floor, threshold %v should equal the p99 estimate %v", thr, p99)
	}
	if p99 < 500*time.Microsecond || p99 > 1100*time.Microsecond {
		t.Errorf("p99 estimate %v implausible for latencies uniform in [1us, 1000us]", p99)
	}
}

// TestQuantileConvergence checks the streaming p99 against the exact
// nearest-rank percentile (vectormath.Percentiles) on a seeded sample.
func TestQuantileConvergence(t *testing.T) {
	for _, tc := range []struct {
		name string
		gen  func(*rand.Rand) float64
		tol  float64 // relative error bound
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() * 1e6 }, 0.05},
		{"exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() * 1e5 }, 0.15},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			q := newQuantile(0.99)
			xs := make([]float64, 0, 5000)
			for i := 0; i < 5000; i++ {
				x := tc.gen(rng)
				xs = append(xs, x)
				q.add(x)
			}
			want := vectormath.Percentiles(xs, 99)[0]
			got, ok := q.estimate()
			if !ok {
				t.Fatal("no estimate after 5000 samples")
			}
			if rel := (got - want) / want; rel > tc.tol || rel < -tc.tol {
				t.Errorf("streaming p99 = %g, exact = %g (relative error %.3f > %.2f)", got, want, rel, tc.tol)
			}
		})
	}
}

func TestQuantileSmallSample(t *testing.T) {
	q := newQuantile(0.99)
	if _, ok := q.estimate(); ok {
		t.Error("estimate reported ok with no samples")
	}
	q.add(30)
	q.add(10)
	q.add(20)
	got, ok := q.estimate()
	if !ok {
		t.Fatal("no estimate with 3 samples")
	}
	// Nearest-rank p99 of {10,20,30} is the maximum.
	if got != 30 {
		t.Errorf("small-sample p99 = %g, want 30", got)
	}
}

func TestObserveZeroAlloc(t *testing.T) {
	r := New(Config{})
	rec := mkRec(1, 0, int64(time.Millisecond))
	allocs := testing.AllocsPerRun(1000, func() {
		r.Observe(&rec)
	})
	if allocs != 0 {
		t.Errorf("Observe allocates %v times per call, want 0", allocs)
	}
}

func TestObserveAndLogZeroAllocWhenFast(t *testing.T) {
	// The always-on emission path for unremarkable queries (the cache-hit
	// fast path) must not allocate even through the logging wrapper: the
	// record stays under the floor, so the logging branch is never taken.
	var buf bytes.Buffer
	r := New(Config{Floor: time.Second, Logger: slog.New(slog.NewJSONHandler(&buf, nil))})
	rec := mkRec(1, 0, int64(time.Millisecond))
	allocs := testing.AllocsPerRun(1000, func() {
		r.ObserveAndLog(&rec)
	})
	if allocs != 0 {
		t.Errorf("ObserveAndLog allocates %v times per fast call, want 0", allocs)
	}
	if buf.Len() != 0 {
		t.Errorf("unexpected slow-query log output: %s", buf.String())
	}
}

func TestSlowQueryLogLine(t *testing.T) {
	var buf bytes.Buffer
	r := New(Config{Floor: time.Millisecond, Logger: slog.New(slog.NewJSONHandler(&buf, nil))})
	rec := mkRec(1, 0, int64(50*time.Millisecond))
	if !r.ObserveAndLog(&rec) {
		t.Fatal("50ms record not slow against a 1ms floor")
	}
	line := buf.String()
	if !strings.Contains(line, "slow query") {
		t.Fatalf("no slow-query line emitted: %q", line)
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(line), &parsed); err != nil {
		t.Fatalf("slow-query line is not one JSON object: %v", err)
	}
	for _, key := range []string{"id", "latency_ms", "threshold_ms", "algorithm", "outcome"} {
		if _, ok := parsed[key]; !ok {
			t.Errorf("slow-query line missing %q: %s", key, line)
		}
	}
}

func TestWouldRetain(t *testing.T) {
	r := New(Config{KeepSlowest: 2, Window: time.Minute})
	if !r.WouldRetain(time.Microsecond) {
		t.Error("empty heap should accept anything")
	}
	a := mkRec(1, 0, int64(100*time.Millisecond))
	b := mkRec(2, 10, int64(200*time.Millisecond))
	r.Observe(&a)
	r.Observe(&b)
	if r.WouldRetain(time.Millisecond) {
		t.Error("1ms retained although the full heap's minimum is 100ms and no threshold is engaged")
	}
	if !r.WouldRetain(150 * time.Millisecond) {
		t.Error("150ms not retained although it beats the heap minimum")
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := New(Config{RingSize: 32, KeepSlowest: 8, Window: time.Minute, Floor: time.Millisecond})
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers exercise every read path against the writers.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					r.Recent(16)
					r.Slowest()
					r.Threshold()
					r.P99()
				}
			}
		}()
	}
	var writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				rec := mkRec(i, int64(i)*100, int64(rng.Intn(1_000_000)))
				r.Observe(&rec)
			}
		}(w)
	}
	writerWg.Wait()
	close(stop)
	wg.Wait()
	if got := r.Observed(); got != writers*perWriter {
		t.Errorf("Observed = %d, want %d", got, writers*perWriter)
	}
	if got := len(r.Recent(64)); got != 32 {
		t.Errorf("Recent returned %d records from a full 32-slot ring", got)
	}
}

func TestCaptureFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "capture.json")
	id := int64(99)
	cf := CaptureFile{
		Schema:  CaptureSchemaVersion,
		Dataset: DatasetInfo{Kind: "synth", Family: "gaode", N: 2000, Seed: 1},
		Records: []Record{
			{
				Seq: 7, RequestID: "abc", ShardID: NoShard,
				LatencyNS: 123456, Algorithm: "hsp", Variant: "CSEQ",
				M: 2, K: 3, Outcome: OutcomeOK,
				Work: stats.Snapshot{},
				Capture: &Capture{
					Variant: "CSEQ", Algorithm: "hsp", K: 3, Alpha: 0.5, Beta: 5,
					Dims: []CapturedDim{
						{X: 1, Y: 2, Category: "cafe", Attrs: []float64{0.1}},
						{X: 3, Y: 4, Category: "gym", Attrs: []float64{0.2}, FixedID: &id},
					},
				},
			},
		},
	}
	if err := WriteCaptureFile(path, cf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCaptureFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dataset != cf.Dataset {
		t.Errorf("dataset round-trip: got %+v, want %+v", got.Dataset, cf.Dataset)
	}
	if len(got.Records) != 1 || got.Records[0].Capture == nil {
		t.Fatalf("records round-trip: %+v", got.Records)
	}
	rc := got.Records[0].Capture
	if rc.Dims[1].FixedID == nil || *rc.Dims[1].FixedID != 99 {
		t.Errorf("FixedID round-trip: %+v", rc.Dims[1])
	}
}

func TestReadCaptureFileRejects(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, cf CaptureFile) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := WriteCaptureFile(p, cf); err != nil {
			t.Fatal(err)
		}
		return p
	}
	badSchema := write("schema.json", CaptureFile{Schema: CaptureSchemaVersion + 1, Dataset: DatasetInfo{Kind: "file", Path: "x"}})
	if _, err := ReadCaptureFile(badSchema); err == nil {
		t.Error("foreign schema version accepted")
	}
	badKind := write("kind.json", CaptureFile{Schema: CaptureSchemaVersion, Dataset: DatasetInfo{Kind: "cloud"}})
	if _, err := ReadCaptureFile(badKind); err == nil {
		t.Error("unknown dataset kind accepted")
	}
	badSynth := write("synth.json", CaptureFile{Schema: CaptureSchemaVersion, Dataset: DatasetInfo{Kind: "synth", Family: "gaode"}})
	if _, err := ReadCaptureFile(badSynth); err == nil {
		t.Error("synth provenance without n accepted")
	}
}

func TestRecorderCaptureFile(t *testing.T) {
	info := DatasetInfo{Kind: "synth", Family: "yelp", N: 500, Seed: 3}
	r := New(Config{KeepSlowest: 4, Window: time.Minute, Dataset: info})
	withCap := mkRec(1, 0, int64(100*time.Millisecond))
	withCap.Capture = &Capture{Variant: "CSEQ", Algorithm: "hsp", K: 3}
	without := mkRec(2, 10, int64(200*time.Millisecond))
	r.Observe(&withCap)
	r.Observe(&without)
	cf := r.CaptureFile()
	if cf.Schema != CaptureSchemaVersion || cf.Dataset != info {
		t.Errorf("capture header = %+v", cf)
	}
	if len(cf.Records) != 1 || cf.Records[0].Capture == nil {
		t.Fatalf("CaptureFile kept %d records, want exactly the one with a payload", len(cf.Records))
	}
}
