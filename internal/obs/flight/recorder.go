package flight

import (
	"context"
	"log/slog"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes a Recorder. The zero value gives the defaults of New.
type Config struct {
	// RingSize is the recent-record buffer capacity (default 256;
	// negative disables the ring).
	RingSize int
	// Window is the tail-sampling rotation period (default 1m): the
	// recorder always retains the KeepSlowest slowest queries of the
	// current and the previous window, however fast they were.
	Window time.Duration
	// KeepSlowest is the per-window retention count N (default 16;
	// negative disables tail sampling).
	KeepSlowest int
	// Floor is the fixed slow-query threshold floor. A query is slow
	// when its latency reaches max(Floor, adaptive p99); with Floor 0
	// only the adaptive threshold applies, and nothing is slow until
	// the tracker has Warmup samples.
	Floor time.Duration
	// Warmup is the number of observations the p99 tracker needs before
	// the adaptive threshold engages (default 64).
	Warmup int
	// Logger receives one structured slow-query line per threshold
	// crossing (via ObserveAndLog). Nil disables slow-query logging.
	Logger *slog.Logger
	// Dataset is the provenance stamped into capture exports.
	Dataset DatasetInfo
}

// Recorder is the always-on flight recorder. All methods are safe for
// concurrent use; Observe is allocation-free.
type Recorder struct {
	ringSize    int
	window      int64 // ns
	keepSlowest int
	floor       int64 // ns
	warmup      int
	logger      *slog.Logger
	dataset     DatasetInfo

	ring ring

	// mu guards the quantile tracker and the tail-sampling windows. The
	// critical section is pure arithmetic plus at most one bounded heap
	// sift — no allocation, no I/O.
	mu        sync.Mutex
	q         quantile
	cur, prev windowHeap
	windowEnd int64 // Unix ns at which the current window rotates

	observed atomic.Uint64
	slow     atomic.Uint64
}

// New builds a Recorder from cfg, applying defaults for zero fields.
func New(cfg Config) *Recorder {
	if cfg.RingSize == 0 {
		cfg.RingSize = 256
	}
	if cfg.RingSize < 0 {
		cfg.RingSize = 0
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Minute
	}
	if cfg.KeepSlowest == 0 {
		cfg.KeepSlowest = 16
	}
	if cfg.KeepSlowest < 0 {
		cfg.KeepSlowest = 0
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 64
	}
	return &Recorder{
		ringSize:    cfg.RingSize,
		window:      int64(cfg.Window),
		keepSlowest: cfg.KeepSlowest,
		floor:       int64(cfg.Floor),
		warmup:      cfg.Warmup,
		logger:      cfg.Logger,
		dataset:     cfg.Dataset,
		ring:        newRing(cfg.RingSize),
		q:           newQuantile(0.99),
		cur:         newWindowHeap(cfg.KeepSlowest),
		prev:        newWindowHeap(cfg.KeepSlowest),
	}
}

// Dataset returns the provenance the recorder stamps into captures.
func (r *Recorder) Dataset() DatasetInfo { return r.dataset }

// Observe records one completed query and reports whether it crossed the
// slow-query threshold. The record is copied; the caller keeps ownership
// of rec. Observe never allocates — the always-on contract that lets it
// sit on the cache-hit fast path.
//
//seq:hotpath
func (r *Recorder) Observe(rec *Record) bool {
	r.ring.put(rec)
	lat := rec.LatencyNS
	r.mu.Lock()
	r.rotate(rec.End())
	r.q.add(float64(lat))
	slow := lat >= r.thresholdLocked()
	r.cur.offer(rec)
	r.mu.Unlock()
	r.observed.Add(1)
	if slow {
		r.slow.Add(1)
	}
	return slow
}

// ObserveAndLog is Observe plus one structured slow-query log line (with
// the phase breakdown) when the record crosses the threshold. The
// logging branch allocates; the fast path does not.
func (r *Recorder) ObserveAndLog(rec *Record) bool {
	slow := r.Observe(rec)
	if slow && r.logger != nil {
		r.logSlow(rec)
	}
	return slow
}

// logSlow emits the slow-query line. Phase timings are flattened into
// one attr group so the line stays a single JSON object.
func (r *Recorder) logSlow(rec *Record) {
	attrs := make([]slog.Attr, 0, 12+len(rec.Phases))
	attrs = append(attrs,
		slog.String("id", rec.RequestID),
		slog.Uint64("seq", rec.Seq),
		slog.Float64("latency_ms", rec.LatencyMS()),
		slog.Float64("threshold_ms", float64(r.thresholdNS())/1e6),
		slog.String("algorithm", rec.Algorithm),
		slog.String("variant", rec.Variant),
		slog.Int("m", int(rec.M)),
		slog.Int("dims", int(rec.Dims)),
		slog.Int("pins", int(rec.Pins)),
		slog.Int("k", int(rec.K)),
		slog.Bool("cache_hit", rec.CacheHit),
		slog.String("outcome", rec.Outcome),
	)
	phases := make([]any, 0, len(rec.Phases))
	for _, p := range rec.Phases {
		phases = append(phases, slog.Float64(p.Name, p.DurationMS))
	}
	attrs = append(attrs, slog.Group("phases", phases...))
	r.logger.LogAttrs(context.Background(), slog.LevelWarn, "slow query", attrs...)
}

// rotate advances the tail-sampling windows to cover the instant end
// (Unix ns). Called with mu held.
//
//seq:hotpath
func (r *Recorder) rotate(end int64) {
	if end < r.windowEnd {
		return
	}
	if r.windowEnd != 0 && end-r.windowEnd < r.window {
		// Normal rotation: the finished window becomes "previous".
		r.cur, r.prev = r.prev, r.cur
		r.cur.reset()
	} else {
		// First observation, or an idle gap longer than a full window:
		// both retained windows are stale.
		r.cur.reset()
		r.prev.reset()
	}
	r.windowEnd = end + r.window
}

// thresholdLocked returns the effective slow threshold in nanoseconds
// (MaxInt64 while the adaptive tracker is cold and no floor is set).
// Called with mu held.
//
//seq:hotpath
func (r *Recorder) thresholdLocked() int64 {
	if r.q.samples() < r.warmup {
		if r.floor > 0 {
			return r.floor
		}
		return math.MaxInt64
	}
	est, ok := r.q.estimate()
	if !ok {
		if r.floor > 0 {
			return r.floor
		}
		return math.MaxInt64
	}
	thr := int64(est)
	if thr < r.floor {
		thr = r.floor
	}
	return thr
}

func (r *Recorder) thresholdNS() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.thresholdLocked()
}

// Threshold returns the effective slow-query threshold, and false while
// no threshold is engaged (adaptive tracker cold, no floor configured).
func (r *Recorder) Threshold() (time.Duration, bool) {
	ns := r.thresholdNS()
	if ns == math.MaxInt64 {
		return 0, false
	}
	return time.Duration(ns), true
}

// P99 returns the streaming p99 latency estimate, and false before any
// observation.
func (r *Recorder) P99() (time.Duration, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	est, ok := r.q.estimate()
	if !ok {
		return 0, false
	}
	return time.Duration(est), true
}

// Observed returns the total number of records observed.
func (r *Recorder) Observed() uint64 { return r.observed.Load() }

// SlowCount returns how many records crossed the slow threshold.
func (r *Recorder) SlowCount() uint64 { return r.slow.Load() }

// WouldRetain reports whether a query with this latency would currently
// be kept by the recorder beyond the ring — because it crosses the slow
// threshold or would enter the current window's slowest-N heap. Callers
// use it to decide whether building the (allocating) Capture payload is
// worth it before emitting; a race against a concurrent Observe can only
// cost one capture, never a lost record.
func (r *Recorder) WouldRetain(latency time.Duration) bool {
	lat := int64(latency)
	r.mu.Lock()
	defer r.mu.Unlock()
	if lat >= r.thresholdLocked() {
		return true
	}
	return r.cur.wouldAccept(lat)
}

// Recent returns up to max records from the ring buffer, newest first.
func (r *Recorder) Recent(max int) []Record {
	return r.ring.recent(max)
}

// Find returns the retained record with the given request ID, searching
// the tail-sampled slow queries first and the recent ring second. When
// several records share the ID (a client reusing X-Request-ID), records
// carrying a span tree win, then the most recent one — the record the
// trace endpoint wants.
func (r *Recorder) Find(requestID string) (Record, bool) {
	if requestID == "" {
		return Record{}, false
	}
	var best Record
	found := false
	better := func(rec *Record) bool {
		if !found {
			return true
		}
		if (rec.Spans != nil) != (best.Spans != nil) {
			return rec.Spans != nil
		}
		return rec.Seq > best.Seq
	}
	for _, recs := range [][]Record{r.Slowest(), r.Recent(r.ringSize)} {
		for i := range recs {
			if recs[i].RequestID == requestID && better(&recs[i]) {
				best = recs[i]
				found = true
			}
		}
	}
	return best, found
}

// Slowest returns the tail-sampled records — the slowest KeepSlowest of
// the current and previous windows — slowest first.
func (r *Recorder) Slowest() []Record {
	r.mu.Lock()
	out := make([]Record, 0, len(r.cur.items)+len(r.prev.items))
	out = append(out, r.cur.items...)
	out = append(out, r.prev.items...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].LatencyNS != out[j].LatencyNS {
			return out[i].LatencyNS > out[j].LatencyNS
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// CaptureFile exports the retained slow queries that carry a replayable
// capture, stamped with the recorder's dataset provenance.
func (r *Recorder) CaptureFile() CaptureFile {
	slowest := r.Slowest()
	records := make([]Record, 0, len(slowest))
	for _, rec := range slowest {
		if rec.Capture != nil {
			records = append(records, rec)
		}
	}
	return CaptureFile{
		Schema:  CaptureSchemaVersion,
		Dataset: r.dataset,
		Records: records,
	}
}

// windowHeap retains the N largest-latency records of one window as a
// min-heap over a fixed backing array: offering is O(log N) with zero
// allocation, and a record below the full heap's minimum is rejected
// with one comparison.
type windowHeap struct {
	items []Record // min-heap by LatencyNS; len <= cap == N
}

func newWindowHeap(n int) windowHeap {
	return windowHeap{items: make([]Record, 0, n)}
}

func (h *windowHeap) reset() { h.items = h.items[:0] }

// wouldAccept reports whether a record with this latency would enter.
//
//seq:hotpath
func (h *windowHeap) wouldAccept(lat int64) bool {
	if cap(h.items) == 0 {
		return false
	}
	return len(h.items) < cap(h.items) || lat > h.items[0].LatencyNS
}

// offer inserts rec if it belongs among the window's slowest.
//
//seq:hotpath
func (h *windowHeap) offer(rec *Record) {
	if cap(h.items) == 0 {
		return
	}
	if n := len(h.items); n < cap(h.items) {
		h.items = h.items[:n+1]
		h.items[n] = *rec
		h.up(n)
		return
	}
	if rec.LatencyNS <= h.items[0].LatencyNS {
		return
	}
	h.items[0] = *rec
	h.down(0)
}

//seq:hotpath
func (h *windowHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].LatencyNS <= h.items[i].LatencyNS {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

//seq:hotpath
func (h *windowHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.items[l].LatencyNS < h.items[small].LatencyNS {
			small = l
		}
		if r < n && h.items[r].LatencyNS < h.items[small].LatencyNS {
			small = r
		}
		if small == i {
			return
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
}
