package obs

import (
	"math"
	"regexp"
	"strings"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	reqs := r.Counter("http_requests_total", "Total requests.", "endpoint", "code")
	reqs.With("/search", "200").Add(3)
	reqs.With("/search", "400").Inc()
	reqs.With("/healthz", "200").Inc()
	r.Gauge("in_flight", "In-flight requests.").With().Set(2)
	r.GaugeFunc("cache_entries", "Cached results.", func() float64 { return 7 })

	got := render(t, r)
	want := `# HELP cache_entries Cached results.
# TYPE cache_entries gauge
cache_entries 7
# HELP http_requests_total Total requests.
# TYPE http_requests_total counter
http_requests_total{endpoint="/healthz",code="200"} 1
http_requests_total{endpoint="/search",code="200"} 3
http_requests_total{endpoint="/search",code="400"} 1
# HELP in_flight In-flight requests.
# TYPE in_flight gauge
in_flight 2
`
	if got != want {
		t.Errorf("render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "").With()
	c.Add(2)
	c.Add(-5)
	if got := c.Value(); got != 2 {
		t.Errorf("counter = %g after negative add, want 2", got)
	}
}

func TestHistogramRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1}, "algo")
	hsp := h.With("hsp")
	hsp.Observe(0.05) // le 0.1
	hsp.Observe(0.1)  // le 0.1 (boundary is inclusive)
	hsp.Observe(0.5)  // le 1
	hsp.Observe(3)    // +Inf

	got := render(t, r)
	want := `# HELP latency_seconds Latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{algo="hsp",le="0.1"} 2
latency_seconds_bucket{algo="hsp",le="1"} 3
latency_seconds_bucket{algo="hsp",le="+Inf"} 4
latency_seconds_sum{algo="hsp"} 3.65
latency_seconds_count{algo="hsp"} 4
`
	if got != want {
		t.Errorf("render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if hsp.Count() != 4 {
		t.Errorf("Count = %d", hsp.Count())
	}
}

func TestLabelAndHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird_total", "line1\nline2 \\ done", "q").With("a\"b\\c\nd").Inc()
	got := render(t, r)
	if !strings.Contains(got, `# HELP weird_total line1\nline2 \\ done`) {
		t.Errorf("help not escaped: %s", got)
	}
	if !strings.Contains(got, `weird_total{q="a\"b\\c\nd"} 1`) {
		t.Errorf("label not escaped: %s", got)
	}
}

// expositionLine matches a valid sample line of the text format.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[0-9eE.+-]+)$`)

func TestRenderIsValidExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a", "l").With("v").Inc()
	r.Gauge("b", "b").With().Set(math.Inf(1))
	r.Histogram("c_seconds", "c", []float64{0.5}).With().Observe(0.2)
	for _, line := range strings.Split(strings.TrimSuffix(render(t, r), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("invalid exposition line %q", line)
		}
	}
}

func TestReRegistrationReturnsSameSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x", "l").With("v").Add(2)
	r.Counter("dup_total", "x", "l").With("v").Inc()
	if got := r.Counter("dup_total", "x", "l").With("v").Value(); got != 3 {
		t.Errorf("re-registered counter = %g, want 3", got)
	}
}

func TestConflictingRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("conflicting re-registration should panic")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestInvalidMetricNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name should panic")
		}
	}()
	r.Counter("0bad name", "x")
}
