package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func TestNewLoggerEmitsJSON(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, nil)
	log.Info("request", "request_id", "abc", "status", 200)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v (%s)", err, buf.String())
	}
	if rec["msg"] != "request" || rec["request_id"] != "abc" || rec["status"] != float64(200) {
		t.Errorf("unexpected record %v", rec)
	}
}

func TestNopLoggerDiscards(t *testing.T) {
	log := NopLogger()
	log.Error("nothing should happen", "k", "v")
	log.With("a", 1).WithGroup("g").Info("still nothing")
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if got := RequestID(ctx); got != "" {
		t.Errorf("empty context id = %q", got)
	}
	ctx = WithRequestID(ctx, "deadbeef")
	if got := RequestID(ctx); got != "deadbeef" {
		t.Errorf("round-tripped id = %q", got)
	}
}

func TestResponseRecorder(t *testing.T) {
	rr := httptest.NewRecorder()
	rec := &ResponseRecorder{ResponseWriter: rr, Status: 200}
	rec.WriteHeader(418)
	rec.WriteHeader(500) // only the first status sticks
	if _, err := rec.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if rec.Status != 418 || rec.Bytes != 5 {
		t.Errorf("recorded status=%d bytes=%d", rec.Status, rec.Bytes)
	}

	// implicit 200 when the handler writes without WriteHeader
	rec2 := &ResponseRecorder{ResponseWriter: httptest.NewRecorder(), Status: 200}
	if _, err := rec2.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	rec2.WriteHeader(500) // too late; body already started
	if rec2.Status != 200 {
		t.Errorf("implicit status = %d, want 200", rec2.Status)
	}
}
