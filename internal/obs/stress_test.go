package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrentObserveAndRender hammers one registry from
// writer goroutines (counters, gauges, histograms, new series) while
// renderers run concurrently — the race-detector gate for the /metrics
// path, where scrapes overlap live traffic.
func TestRegistryConcurrentObserveAndRender(t *testing.T) {
	r := NewRegistry()
	reqs := r.Counter("req_total", "requests", "endpoint", "code")
	lat := r.Histogram("lat_seconds", "latency", []float64{0.001, 0.01, 0.1, 1}, "algo")
	inflight := r.Gauge("in_flight", "in flight").With()
	r.GaugeFunc("sampled", "sampled", func() float64 { return float64(time.Now().Nanosecond()) })

	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			algo := fmt.Sprintf("algo%d", w%3)
			for i := 0; i < perWriter; i++ {
				inflight.Inc()
				reqs.With("/search", "200").Inc()
				reqs.With(fmt.Sprintf("/ep%d", i%5), "404").Add(1)
				lat.With(algo).Observe(float64(i%100) / 1000)
				inflight.Dec()
			}
		}(w)
	}
	stop := make(chan struct{})
	var renderWG sync.WaitGroup
	for g := 0; g < 2; g++ {
		renderWG.Add(1)
		go func() {
			defer renderWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := r.WriteText(io.Discard); err != nil {
					t.Errorf("render during writes: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	renderWG.Wait()

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(`req_total{endpoint="/search",code="200"} %d`, writers*perWriter)
	if !strings.Contains(b.String(), want) {
		t.Errorf("final render missing %q:\n%s", want, b.String())
	}
	if got := inflight.Value(); got != 0 {
		t.Errorf("in-flight gauge = %g after balanced inc/dec", got)
	}
}

// TestTraceConcurrentAdd exercises one Trace from parallel workers, the
// shape of HSP/LORA's parallel subspace search.
func TestTraceConcurrentAdd(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Add("dfs", time.Microsecond)
				sp := tr.Start(fmt.Sprintf("phase%d", w%4))
				sp.End()
				_ = tr.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	for _, p := range tr.Snapshot() {
		if p.Name == "dfs" {
			if p.Count != 8000 {
				t.Errorf("dfs count = %d, want 8000", p.Count)
			}
			return
		}
	}
	t.Error("dfs phase missing from snapshot")
}
