package obs

import (
	"sync"
	"time"
)

// maxPhases bounds the distinct phase names one Trace will hold, so a
// buggy caller generating unbounded names cannot grow a request's trace
// without limit. Additions beyond the bound are counted in Dropped.
const maxPhases = 64

// Trace aggregates wall time per named search phase. One Trace covers
// one query execution; phases recorded under the same name accumulate
// (the per-subspace enumeration of HSP/LORA records one addition per
// subspace). Durations come from time.Since, i.e. the monotonic clock.
//
// A nil *Trace is a safe no-op on every method — like *stats.Stats, the
// hot paths thread it through unconditionally and pay only a nil check
// when tracing is off.
//
// Trace is safe for concurrent use. Note that when an algorithm runs
// its subspace workers in parallel, the recorded per-phase times sum
// CPU time across workers and can exceed the query's wall time; on the
// default sequential path the phase times are disjoint slices of the
// wall clock and their sum is a lower bound on it. When hierarchical
// span tracing is enabled (internal/obs/span), the engine derives the
// flat aggregate from the span tree instead — overlapping same-named
// spans then carry PhaseTiming.Parallel=true so a cross-worker CPU sum
// is never mistaken for wall time.
type Trace struct {
	mu      sync.Mutex
	phases  []phase
	index   map[string]int
	dropped int64
}

type phase struct {
	name  string
	dur   time.Duration
	count int64
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{index: make(map[string]int)}
}

// Add accumulates d under the phase name.
func (t *Trace) Add(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if i, ok := t.index[name]; ok {
		t.phases[i].dur += d
		t.phases[i].count++
		return
	}
	if len(t.phases) >= maxPhases {
		t.dropped++
		return
	}
	t.index[name] = len(t.phases)
	t.phases = append(t.phases, phase{name: name, dur: d, count: 1})
}

// Span is an in-progress phase measurement; End records it. The zero
// Span (from a nil Trace) ends as a no-op.
type Span struct {
	t     *Trace
	name  string
	start time.Time
}

// Start begins measuring a phase; call End on the returned span.
func (t *Trace) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: time.Now()}
}

// End records the span's elapsed time into its trace.
func (s Span) End() {
	if s.t != nil {
		s.t.Add(s.name, time.Since(s.start))
	}
}

// PhaseTiming is one phase's aggregate, in the shape the search API
// returns to clients.
type PhaseTiming struct {
	// Name identifies the phase (e.g. "validate", "hsp.dfs").
	Name string `json:"name"`
	// DurationMS is the accumulated wall time in milliseconds.
	DurationMS float64 `json:"duration_ms"`
	// Count is how many measurements were accumulated.
	Count int64 `json:"count"`
	// Parallel marks a phase whose measurements overlapped in time
	// (parallel subspace workers): DurationMS then sums CPU time across
	// workers and may exceed the query's wall time. Only span-derived
	// timings can set it; a flat Trace cannot tell overlap from
	// sequence.
	Parallel bool `json:"parallel,omitempty"`
}

// Snapshot copies the per-phase aggregates in first-recorded order. A
// nil trace yields nil.
func (t *Trace) Snapshot() []PhaseTiming {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PhaseTiming, len(t.phases))
	for i, p := range t.phases {
		out[i] = PhaseTiming{
			Name:       p.name,
			DurationMS: float64(p.dur) / float64(time.Millisecond),
			Count:      p.count,
		}
	}
	return out
}

// Dropped reports how many additions were discarded by the phase bound.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
