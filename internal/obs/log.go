package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"io"
	"log/slog"
	"net/http"
	"sync/atomic"
)

// NewLogger returns a structured JSON logger writing to w at the given
// level — the request-log format the server emits (one object per
// line, machine-parseable).
func NewLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// NopLogger returns a logger that discards everything — the default for
// callers that did not configure logging.
func NopLogger() *slog.Logger {
	return slog.New(nopHandler{})
}

// nopHandler drops all records without formatting them.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// reqIDFallback numbers request IDs if the system randomness source is
// ever unavailable (it is not on any supported platform, but a request
// must never go unidentified).
var reqIDFallback atomic.Uint64

// NewRequestID returns a 16-hex-character identifier for one request.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		binary.BigEndian.PutUint64(b[:], reqIDFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// MaxRequestIDLen bounds client-supplied X-Request-ID values; anything
// longer is replaced with a minted ID rather than propagated into logs
// and flight records.
const MaxRequestIDLen = 64

// ValidRequestID reports whether a client-supplied request ID is safe to
// propagate: 1 to MaxRequestIDLen characters drawn from [A-Za-z0-9._-].
// The charset keeps IDs log-greppable and excludes anything that could
// break JSON log lines, header echoes, or HTML debug pages.
func ValidRequestID(s string) bool {
	if len(s) == 0 || len(s) > MaxRequestIDLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// ctxKey keys the request ID in a context.
type ctxKey struct{}

// WithRequestID stores a request ID in the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// RequestID returns the request ID stored by WithRequestID, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}

// ResponseRecorder wraps a ResponseWriter to capture the status code
// and body size for request logs and status-code counters.
type ResponseRecorder struct {
	http.ResponseWriter
	// Status is the response code; initialize to http.StatusOK to
	// cover handlers that never call WriteHeader.
	Status int
	// Bytes is the body size written so far.
	Bytes int64

	wroteHeader bool
}

// WriteHeader records the first status code and forwards it.
func (r *ResponseRecorder) WriteHeader(code int) {
	if !r.wroteHeader {
		r.Status = code
		r.wroteHeader = true
	}
	r.ResponseWriter.WriteHeader(code)
}

// Write forwards the body bytes and counts them.
func (r *ResponseRecorder) Write(p []byte) (int, error) {
	r.wroteHeader = true
	n, err := r.ResponseWriter.Write(p)
	r.Bytes += int64(n)
	return n, err
}
