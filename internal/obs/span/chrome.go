package span

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// chrome://tracing and Perfetto load): "X" complete events carry a
// start timestamp and duration in microseconds; "M" metadata events
// name the threads. Timestamps are integer microseconds since the Unix
// epoch — int64 keeps them exact where float64 nanoseconds would not.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

// coordinatorTid is the track for spans outside any worker lane; worker
// w maps to tid w+1.
const coordinatorTid = 0

// ChromeTrace renders the tree as Chrome trace-event JSON. Every span
// becomes an "X" complete event on its worker's track (tid = worker+1,
// untagged spans on the coordinator track), tagged with its subspace
// index and work counters in args.
func (tr *Tree) ChromeTrace() ([]byte, error) {
	if tr == nil || len(tr.Nodes) == 0 {
		return nil, fmt.Errorf("span: empty tree has no trace")
	}
	events := make([]chromeEvent, 0, len(tr.Nodes)+4)
	seenTid := make(map[int]bool)
	var tids []int
	for _, n := range tr.Nodes {
		tid := coordinatorTid
		if n.Worker >= 0 {
			tid = int(n.Worker) + 1
		}
		if !seenTid[tid] {
			seenTid[tid] = true
			tids = append(tids, tid)
		}
		ev := chromeEvent{
			Name: n.Name,
			Ph:   "X",
			Ts:   (tr.StartUnixNS + n.StartNS) / 1000,
			Dur:  float64(n.DurNS()) / 1000,
			Pid:  1,
			Tid:  tid,
		}
		if n.Subspace >= 0 || n.Work != nil {
			ev.Args = make(map[string]any, 2)
			if n.Subspace >= 0 {
				ev.Args["subspace"] = n.Subspace
			}
			if n.Work != nil {
				ev.Args["work"] = n.Work
			}
		}
		events = append(events, ev)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		name := "coordinator"
		if tid != coordinatorTid {
			name = fmt.Sprintf("worker %d", tid-1)
		}
		events = append(events, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  1,
			Tid:  tid,
			Args: map[string]any{"name": name},
		})
	}
	out := chromeTrace{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		Metadata:        map[string]any{"spans": len(tr.Nodes), "dropped": tr.Dropped},
	}
	return json.Marshal(out)
}

// WriteChromeTrace writes the Chrome trace-event JSON to w.
func (tr *Tree) WriteChromeTrace(w io.Writer) error {
	b, err := tr.ChromeTrace()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
