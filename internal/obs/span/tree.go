package span

import (
	"sort"
	"time"

	"spatialseq/internal/obs"
	"spatialseq/internal/stats"
)

// Node is one span in a snapshotted tree. Offsets are nanoseconds since
// the tree's wall-clock anchor; open spans are clamped to the snapshot
// time so every exported interval has a finite extent.
type Node struct {
	Name     string `json:"name"`
	Parent   int32  `json:"parent"`   // index into Nodes; -1 for roots
	Worker   int32  `json:"worker"`   // worker lane; -1 when untagged
	Subspace int32  `json:"subspace"` // subspace index; -1 when untagged
	StartNS  int64  `json:"start_ns"`
	EndNS    int64  `json:"end_ns"`
	// Work is the counter delta attributed to this span (per-subspace
	// work, not running totals); nil when none was attached.
	Work *stats.Snapshot `json:"work,omitempty"`
}

// DurNS is the node's extent in nanoseconds.
func (n Node) DurNS() int64 { return n.EndNS - n.StartNS }

// Tree is an immutable snapshot of a tracer's arena, the shape the
// flight recorder retains for slow queries and the server renders as a
// Chrome trace export.
type Tree struct {
	// StartUnixNS anchors offset 0 on the wall clock, so exports carry
	// absolute timestamps.
	StartUnixNS int64 `json:"start_unix_ns"`
	// Dropped counts spans discarded by the tree bounds at capture time.
	Dropped int64  `json:"dropped,omitempty"`
	Nodes   []Node `json:"nodes"`
}

// Snapshot copies the arena into an immutable Tree, clamping still-open
// spans to now. It returns nil when no spans were recorded (nil tracer,
// tracing off, or a cache hit that never reached the engine) — callers
// gate retention on that, keeping the allocation off the fast path.
func (t *Tracer) Snapshot() *Tree {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.nodes) == 0 {
		return nil
	}
	now := int64(time.Since(t.epoch))
	tree := &Tree{StartUnixNS: t.wallNS, Dropped: t.dropped, Nodes: make([]Node, len(t.nodes))}
	for i, n := range t.nodes {
		end := n.endNS
		if end < 0 {
			end = now
		}
		nd := Node{
			Name:     n.name,
			Parent:   n.parent,
			Worker:   n.worker,
			Subspace: n.subspace,
			StartNS:  n.startNS,
			EndNS:    end,
		}
		if n.hasWork {
			w := n.work
			nd.Work = &w
		}
		tree.Nodes[i] = nd
	}
	return tree
}

// PhaseTimings derives the flat per-phase aggregate from the span tree:
// leaf spans grouped by name in first-recorded order, durations summed.
// This keeps the include_stats phase surface stable while fixing the
// documented obs.Trace caveat — when same-named leaves overlap in time
// (parallel workers), the phase is marked Parallel instead of letting
// the sum silently exceed the query's wall time. Returns nil when no
// spans were recorded, so callers can fall back to a flat obs.Trace.
func (t *Tracer) PhaseTimings() []obs.PhaseTiming {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.nodes) == 0 {
		return nil
	}
	now := int64(time.Since(t.epoch))
	// A name is a container when any span carrying it has children: an
	// idle worker lane (no subspaces pulled) must not surface as a phase
	// just because its siblings got all the work.
	hasChild := make([]bool, len(t.nodes))
	for _, n := range t.nodes {
		if n.parent >= 0 {
			hasChild[n.parent] = true
		}
	}
	container := make(map[string]bool)
	for i, n := range t.nodes {
		if hasChild[i] {
			container[n.name] = true
		}
	}
	type interval struct{ start, end int64 }
	type agg struct {
		name      string
		total     int64
		count     int64
		intervals []interval
	}
	var order []*agg
	index := make(map[string]*agg)
	for i, n := range t.nodes {
		if hasChild[i] || container[n.name] {
			continue // containers (search root, worker lanes) are not phases
		}
		end := n.endNS
		if end < 0 {
			end = now
		}
		a := index[n.name]
		if a == nil {
			a = &agg{name: n.name}
			index[n.name] = a
			order = append(order, a)
		}
		a.total += end - n.startNS
		a.count++
		a.intervals = append(a.intervals, interval{n.startNS, end})
	}
	out := make([]obs.PhaseTiming, len(order))
	for i, a := range order {
		sort.Slice(a.intervals, func(x, y int) bool { return a.intervals[x].start < a.intervals[y].start })
		parallel := false
		maxEnd := int64(0)
		for j, iv := range a.intervals {
			if j > 0 && iv.start < maxEnd {
				parallel = true
				break
			}
			if iv.end > maxEnd {
				maxEnd = iv.end
			}
		}
		out[i] = obs.PhaseTiming{
			Name:       a.name,
			DurationMS: float64(a.total) / float64(time.Millisecond),
			Count:      a.count,
			Parallel:   parallel,
		}
	}
	return out
}

// SkewReport attributes a query's parallel imbalance: how unevenly the
// worker lanes were loaded and which subspace stalled the tail. It is
// the per-query signal behind spatialseq_subspace_imbalance_ratio and
// the baseline `seqbench -exp skew` reports — the number a future
// work-stealing scheduler must beat.
type SkewReport struct {
	// Workers is the number of distinct worker lanes that recorded spans.
	Workers int `json:"workers"`
	// ImbalanceRatio is max worker busy time / mean worker busy time;
	// 1.0 is a perfectly balanced query.
	ImbalanceRatio float64 `json:"imbalance_ratio"`
	MaxWorkerMS    float64 `json:"max_worker_ms"`
	MeanWorkerMS   float64 `json:"mean_worker_ms"`
	// StragglerWorker is the lane with the largest busy time.
	StragglerWorker int32 `json:"straggler_worker"`
	// StragglerSubspace identifies the single longest subspace span, the
	// natural first target for work stealing; -1 when none was tagged.
	StragglerSubspace int32   `json:"straggler_subspace"`
	StragglerMS       float64 `json:"straggler_ms"`
	// CriticalPathMS is the length of the dependency-ordered chain the
	// query cannot go below with more parallelism.
	CriticalPathMS float64 `json:"critical_path_ms"`
	// SpanMS is the wall extent of the whole trace.
	SpanMS float64 `json:"span_ms"`
	// Parallel reports whether more than one worker lane ran.
	Parallel bool `json:"parallel"`
}

// Skew computes the skew report from the current arena. It returns nil
// when the trace holds no worker spans (brute force, cache hits, or
// tracing off) — callers observe skew metrics only when a report exists.
func (t *Tracer) Skew() *SkewReport {
	if t == nil {
		return nil
	}
	return t.Snapshot().Skew()
}

// Skew computes the skew report from a snapshotted tree; see
// Tracer.Skew. A nil tree yields nil.
func (tr *Tree) Skew() *SkewReport {
	if tr == nil || len(tr.Nodes) == 0 {
		return nil
	}
	// Worker busy time: sum the top worker spans of each lane (a worker
	// span whose parent is not itself on a worker lane).
	var laneOrder []int32
	busy := make(map[int32]int64)
	for _, n := range tr.Nodes {
		if n.Worker < 0 {
			continue
		}
		if n.Parent >= 0 && tr.Nodes[n.Parent].Worker >= 0 {
			continue // nested inside the lane; already covered by the top span
		}
		if _, ok := busy[n.Worker]; !ok {
			laneOrder = append(laneOrder, n.Worker)
		}
		busy[n.Worker] += n.DurNS()
	}
	if len(laneOrder) == 0 {
		return nil
	}
	rep := &SkewReport{Workers: len(laneOrder), StragglerSubspace: -1}
	var total, max int64
	for _, w := range laneOrder {
		b := busy[w]
		total += b
		if b > max {
			max = b
			rep.StragglerWorker = w
		}
	}
	mean := float64(total) / float64(len(laneOrder))
	rep.MaxWorkerMS = float64(max) / float64(time.Millisecond)
	rep.MeanWorkerMS = mean / float64(time.Millisecond)
	if mean > 0 {
		rep.ImbalanceRatio = float64(max) / mean
	}
	rep.Parallel = len(laneOrder) > 1

	var stragglerDur int64
	for _, n := range tr.Nodes {
		if n.Subspace >= 0 && n.DurNS() > stragglerDur {
			stragglerDur = n.DurNS()
			rep.StragglerSubspace = n.Subspace
		}
	}
	rep.StragglerMS = float64(stragglerDur) / float64(time.Millisecond)

	minStart, maxEnd := tr.Nodes[0].StartNS, tr.Nodes[0].EndNS
	for _, n := range tr.Nodes[1:] {
		if n.StartNS < minStart {
			minStart = n.StartNS
		}
		if n.EndNS > maxEnd {
			maxEnd = n.EndNS
		}
	}
	rep.SpanMS = float64(maxEnd-minStart) / float64(time.Millisecond)
	rep.CriticalPathMS = float64(tr.criticalPathNS()) / float64(time.Millisecond)
	return rep
}

// criticalPathNS computes the length of the longest dependency chain:
// for each span, its exclusive time (extent not covered by children)
// plus, for every cluster of time-overlapping children, the largest
// critical path inside the cluster — overlapping children ran in
// parallel, sequential children chain.
func (tr *Tree) criticalPathNS() int64 {
	children := make([][]int32, len(tr.Nodes))
	var roots []int32
	for i, n := range tr.Nodes {
		if n.Parent >= 0 {
			children[n.Parent] = append(children[n.Parent], int32(i))
		} else {
			roots = append(roots, int32(i))
		}
	}
	var cp func(i int32) int64
	cp = func(i int32) int64 {
		n := tr.Nodes[i]
		kids := children[i]
		if len(kids) == 0 {
			return n.DurNS()
		}
		covered, chained := clusterPath(tr, kids, cp)
		exclusive := n.DurNS() - covered
		if exclusive < 0 {
			exclusive = 0
		}
		return exclusive + chained
	}
	if len(roots) == 1 {
		return cp(roots[0])
	}
	_, chained := clusterPath(tr, roots, cp)
	return chained
}

// clusterPath sorts the sibling spans by start, merges time-overlapping
// ones into clusters, and returns (total covered extent, sum over
// clusters of the largest member critical path).
func clusterPath(tr *Tree, sibs []int32, cp func(int32) int64) (covered, chained int64) {
	sort.Slice(sibs, func(a, b int) bool { return tr.Nodes[sibs[a]].StartNS < tr.Nodes[sibs[b]].StartNS })
	clusterEnd := int64(0)
	clusterStart := int64(0)
	clusterMax := int64(0)
	flush := func() {
		covered += clusterEnd - clusterStart
		chained += clusterMax
	}
	for j, id := range sibs {
		n := tr.Nodes[id]
		if j == 0 || n.StartNS >= clusterEnd {
			if j > 0 {
				flush()
			}
			clusterStart, clusterEnd, clusterMax = n.StartNS, n.EndNS, 0
		}
		if n.EndNS > clusterEnd {
			clusterEnd = n.EndNS
		}
		if c := cp(id); c > clusterMax {
			clusterMax = c
		}
	}
	flush()
	return covered, chained
}
