package span

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"spatialseq/internal/stats"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	root := tr.Root("search")
	sub := root.Worker("w", 0).Subspace("s", 1).Child("c")
	sub.End()
	sub.EndWork(stats.Snapshot{Candidates: 5})
	if tr.Snapshot() != nil {
		t.Error("nil tracer snapshot should be nil")
	}
	if tr.PhaseTimings() != nil {
		t.Error("nil tracer phase timings should be nil")
	}
	if tr.Skew() != nil {
		t.Error("nil tracer skew should be nil")
	}
	if tr.Dropped() != 0 {
		t.Error("nil tracer dropped should be 0")
	}
	var nilTree *Tree
	if nilTree.Skew() != nil {
		t.Error("nil tree skew should be nil")
	}
}

// TestZeroAllocWhenOff pins the cost of disabled tracing: the zero Span
// threaded through every algorithm hot path must emit nothing.
func TestZeroAllocWhenOff(t *testing.T) {
	var tr *Tracer
	delta := stats.Snapshot{Candidates: 1}
	allocs := testing.AllocsPerRun(100, func() {
		root := tr.Root("search")
		ws := root.Worker("w", 3)
		sub := ws.Subspace("s", 7)
		c := sub.Child("leaf")
		c.End()
		sub.EndWork(delta)
		ws.End()
		root.End()
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %v times per emission, want 0", allocs)
	}
}

func TestSpanTreeShape(t *testing.T) {
	tr := NewTracer()
	root := tr.Root("search")
	ws := root.Worker("worker", 2)
	sub := ws.Subspace("subspace", 5)
	sub.EndWork(stats.Snapshot{Candidates: 42, Subspaces: 1})
	ws.End()
	root.End()

	tree := tr.Snapshot()
	if tree == nil || len(tree.Nodes) != 3 {
		t.Fatalf("want 3 nodes, got %+v", tree)
	}
	r, w, s := tree.Nodes[0], tree.Nodes[1], tree.Nodes[2]
	if r.Parent != -1 || w.Parent != 0 || s.Parent != 1 {
		t.Errorf("parent links wrong: %d %d %d", r.Parent, w.Parent, s.Parent)
	}
	if r.Worker != -1 || w.Worker != 2 || s.Worker != 2 {
		t.Errorf("worker lanes wrong (children must inherit): %d %d %d", r.Worker, w.Worker, s.Worker)
	}
	if s.Subspace != 5 || r.Subspace != -1 {
		t.Errorf("subspace tags wrong: %d %d", s.Subspace, r.Subspace)
	}
	if s.Work == nil || s.Work.Candidates != 42 {
		t.Errorf("work delta lost: %+v", s.Work)
	}
	if r.Work != nil {
		t.Errorf("plain End attached work: %+v", r.Work)
	}
	// Nesting: each child starts no earlier than its parent and — parents
	// ended after children here — ends no later.
	for _, pair := range [][2]Node{{r, w}, {w, s}} {
		p, c := pair[0], pair[1]
		if c.StartNS < p.StartNS || c.EndNS > p.EndNS {
			t.Errorf("child [%d,%d] escapes parent [%d,%d]", c.StartNS, c.EndNS, p.StartNS, p.EndNS)
		}
	}
}

// TestConcurrentWorkersNest exercises the arena under -race: parallel
// worker goroutines each record a lane of nested spans; afterwards every
// worker's spans must nest inside its lane and, per worker, start times
// must be monotone in emission order.
func TestConcurrentWorkersNest(t *testing.T) {
	const workers, subspacesPer = 8, 10
	tr := NewTracer()
	root := tr.Root("search")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := root.Worker("worker", w)
			defer ws.End()
			for i := 0; i < subspacesPer; i++ {
				sub := ws.Subspace("subspace", w*subspacesPer+i)
				sub.EndWork(stats.Snapshot{Subspaces: 1})
			}
		}(w)
	}
	wg.Wait()
	root.End()

	tree := tr.Snapshot()
	if want := 1 + workers*(1+subspacesPer); len(tree.Nodes) != want {
		t.Fatalf("want %d nodes, got %d (dropped %d)", want, len(tree.Nodes), tree.Dropped)
	}
	lastStart := make(map[int32]int64)
	for i, n := range tree.Nodes {
		if n.EndNS < n.StartNS {
			t.Errorf("node %d %q ends before it starts: [%d,%d]", i, n.Name, n.StartNS, n.EndNS)
		}
		if n.Parent >= 0 {
			p := tree.Nodes[n.Parent]
			if n.StartNS < p.StartNS || n.EndNS > p.EndNS {
				t.Errorf("node %d %q [%d,%d] escapes parent %q [%d,%d]",
					i, n.Name, n.StartNS, n.EndNS, p.Name, p.StartNS, p.EndNS)
			}
		}
		if n.Worker >= 0 {
			// Arena order preserves each goroutine's emission order, so a
			// lane's start offsets never go backwards.
			if s, ok := lastStart[n.Worker]; ok && n.StartNS < s {
				t.Errorf("worker %d start went backwards: %d after %d", n.Worker, n.StartNS, s)
			}
			lastStart[n.Worker] = n.StartNS
		}
	}
	if got := len(lastStart); got != workers {
		t.Errorf("want %d worker lanes, got %d", workers, got)
	}
	if sk := tr.Skew(); sk == nil || sk.Workers != workers || !sk.Parallel {
		t.Errorf("skew report wrong: %+v", sk)
	}
}

func TestTreeBounds(t *testing.T) {
	tr := NewTracerLimits(3, 2)
	root := tr.Root("search") // depth 0, kept
	a := root.Child("a")      // depth 1, kept
	b := a.Child("b")         // depth 2 >= maxDepth, dropped
	c := b.Child("c")         // child of dropped, dropped
	c.End()
	b.End()
	d := root.Child("d") // depth 1, kept: arena full now
	e := root.Child("e") // node bound reached, dropped
	e.End()
	d.End()
	a.End()
	root.End()
	if got := tr.Dropped(); got != 3 {
		t.Errorf("dropped %d spans, want 3 (depth, child-of-dropped, node cap)", got)
	}
	tree := tr.Snapshot()
	if len(tree.Nodes) != 3 || tree.Dropped != 3 {
		t.Errorf("snapshot has %d nodes, dropped %d; want 3 and 3", len(tree.Nodes), tree.Dropped)
	}
}

func TestSnapshotClampsOpenSpans(t *testing.T) {
	tr := NewTracer()
	root := tr.Root("search")
	_ = root.Child("open") // never ended
	tree := tr.Snapshot()
	for _, n := range tree.Nodes {
		if n.EndNS < n.StartNS {
			t.Errorf("open span %q not clamped: [%d,%d]", n.Name, n.StartNS, n.EndNS)
		}
	}
}

func TestEndKeepsFirst(t *testing.T) {
	tr := NewTracer()
	root := tr.Root("search")
	root.End()
	first := tr.Snapshot().Nodes[0].EndNS
	time.Sleep(time.Millisecond)
	root.End()
	root.EndWork(stats.Snapshot{Candidates: 9})
	n := tr.Snapshot().Nodes[0]
	if n.EndNS != first {
		t.Errorf("second End moved the timestamp: %d != %d", n.EndNS, first)
	}
	if n.Work != nil {
		t.Error("EndWork after End attached work")
	}
}

// TestPhaseTimingsParallelMarker is the satellite fix for the obs.Trace
// caveat: overlapping same-named leaves get Parallel=true, disjoint ones
// stay unmarked, and container spans do not become phases.
func TestPhaseTimingsParallelMarker(t *testing.T) {
	tr := NewTracer()
	root := tr.Root("search")
	// Two overlapping "dfs" leaves on different lanes: the second opens
	// before the first ends, so the intervals must overlap.
	w0 := root.Worker("worker", 0)
	w1 := root.Worker("worker", 1)
	d0 := w0.Subspace("dfs", 0)
	d1 := w1.Subspace("dfs", 1)
	d0.End()
	d1.End()
	w0.End()
	w1.End()
	// A sequential phase: open and close before the next starts.
	m := root.Child("merge")
	m.End()
	root.End()

	phases := tr.PhaseTimings()
	if len(phases) != 2 {
		t.Fatalf("want 2 phases (dfs, merge), got %+v", phases)
	}
	if phases[0].Name != "dfs" || !phases[0].Parallel || phases[0].Count != 2 {
		t.Errorf("dfs phase wrong: %+v", phases[0])
	}
	if phases[1].Name != "merge" || phases[1].Parallel || phases[1].Count != 1 {
		t.Errorf("merge phase wrong: %+v", phases[1])
	}
	for _, p := range phases {
		if p.Name == "search" || p.Name == "worker" {
			t.Errorf("container span %q leaked into phases", p.Name)
		}
	}
}

func TestSkewAttribution(t *testing.T) {
	tr := NewTracer()
	root := tr.Root("search")
	w0 := root.Worker("worker", 0)
	s0 := w0.Subspace("subspace", 3)
	time.Sleep(20 * time.Millisecond) // the straggler lane
	s0.End()
	w0.End()
	w1 := root.Worker("worker", 1)
	s1 := w1.Subspace("subspace", 4)
	time.Sleep(time.Millisecond)
	s1.End()
	w1.End()
	root.End()

	sk := tr.Skew()
	if sk == nil {
		t.Fatal("no skew report")
	}
	if sk.Workers != 2 || !sk.Parallel {
		t.Errorf("workers: %+v", sk)
	}
	if sk.ImbalanceRatio <= 1.2 {
		t.Errorf("imbalance %.2f, want > 1.2 for a 20ms-vs-1ms split", sk.ImbalanceRatio)
	}
	if sk.StragglerWorker != 0 || sk.StragglerSubspace != 3 {
		t.Errorf("straggler attribution wrong: worker %d subspace %d", sk.StragglerWorker, sk.StragglerSubspace)
	}
	if sk.MaxWorkerMS < sk.MeanWorkerMS {
		t.Errorf("max %.3f < mean %.3f", sk.MaxWorkerMS, sk.MeanWorkerMS)
	}
	if sk.CriticalPathMS <= 0 || sk.CriticalPathMS > sk.SpanMS+0.001 {
		t.Errorf("critical path %.3f outside (0, span %.3f]", sk.CriticalPathMS, sk.SpanMS)
	}
	// No worker spans -> no report.
	plain := NewTracer()
	r := plain.Root("search")
	c := r.Child("validate")
	c.End()
	r.End()
	if plain.Skew() != nil {
		t.Error("skew report without worker spans")
	}
}

func TestChromeTraceWellFormed(t *testing.T) {
	tr := NewTracer()
	root := tr.Root("search")
	ws := root.Worker("worker", 0)
	sub := ws.Subspace("subspace", 2)
	sub.EndWork(stats.Snapshot{Candidates: 7})
	ws.End()
	root.End()

	data, err := tr.Snapshot().ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q", out.DisplayTimeUnit)
	}
	var x, m int
	subspaceTagged := false
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "X":
			x++
			if ev.Pid != 1 || ev.Ts <= 0 {
				t.Errorf("bad X event: %+v", ev)
			}
			if ev.Name == "subspace" {
				if ev.Tid != 1 {
					t.Errorf("subspace span on tid %d, want worker 0 = tid 1", ev.Tid)
				}
				if _, ok := ev.Args["subspace"]; ok {
					subspaceTagged = true
				}
			}
		case "M":
			m++
			if ev.Name != "thread_name" {
				t.Errorf("unexpected metadata event %q", ev.Name)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if x != 3 || m != 2 {
		t.Errorf("got %d X and %d M events, want 3 and 2", x, m)
	}
	if !subspaceTagged {
		t.Error("subspace span lost its subspace arg")
	}

	if _, err := (&Tree{}).ChromeTrace(); err == nil {
		t.Error("empty tree produced a trace")
	}
	var nilTree *Tree
	if _, err := nilTree.ChromeTrace(); err == nil {
		t.Error("nil tree produced a trace")
	}
}
