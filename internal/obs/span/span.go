// Package span implements hierarchical span tracing for one query
// execution: a bounded tree of named time intervals, where each parallel
// subspace worker records its own timeline instead of folding into the
// flat per-phase sums of obs.Trace. A span may carry a stats.Snapshot
// work delta, so a retained trace explains both *where* the time went
// and *what* was done there.
//
// The package sits in the observability leaf band next to
// internal/obs/flight: it may import only internal/obs (phase-timing
// shape) and internal/stats (work counters). The flight recorder
// references *Tree values in retained records; the server renders them
// as Chrome trace-event JSON.
//
// Emission is allocation-free apart from the bounded arena append: a
// nil *Tracer (tracing off) and the zero Span are safe no-ops on every
// method, so the algorithms thread spans through unconditionally — the
// same discipline as *stats.Stats and *obs.Trace.
package span

import (
	"sync"
	"time"

	"spatialseq/internal/stats"
)

// Tree-size bounds, mirroring obs.Trace's maxPhases discipline: a buggy
// caller cannot grow a request's span tree without limit. Spans beyond
// either bound are dropped (counted, with their whole subtree).
const (
	DefaultMaxNodes = 512
	DefaultMaxDepth = 8
)

// noID marks a span handle whose node was dropped by the tree bounds;
// children of a dropped span are dropped (and counted) too.
const noID = int32(-1)

// node is one span in the arena. Offsets are nanoseconds since the
// tracer's epoch, from the monotonic clock; endNS < 0 means still open.
type node struct {
	name     string
	parent   int32 // arena index; -1 for roots
	worker   int32 // worker lane; -1 when inherited from no worker span
	subspace int32 // subspace index; -1 unless tagged by Subspace
	depth    int16
	hasWork  bool
	startNS  int64
	endNS    int64
	work     stats.Snapshot
}

// Tracer owns one query's span arena. One Tracer covers one query
// execution and is safe for concurrent use by parallel workers. A nil
// *Tracer is a no-op everywhere; allocate one per query only when span
// tracing is wanted.
type Tracer struct {
	mu       sync.Mutex
	epoch    time.Time // monotonic anchor for all offsets
	wallNS   int64     // wall-clock time of offset 0 (for absolute export)
	maxNodes int
	maxDepth int
	dropped  int64
	nodes    []node
}

// NewTracer returns a tracer with the default tree bounds.
func NewTracer() *Tracer {
	return NewTracerLimits(DefaultMaxNodes, DefaultMaxDepth)
}

// NewTracerLimits returns a tracer bounded to maxNodes spans and
// maxDepth nesting levels; non-positive arguments take the defaults.
func NewTracerLimits(maxNodes, maxDepth int) *Tracer {
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	capHint := 64
	if capHint > maxNodes {
		capHint = maxNodes
	}
	now := time.Now()
	return &Tracer{
		epoch:    now,
		wallNS:   now.UnixNano(),
		maxNodes: maxNodes,
		maxDepth: maxDepth,
		nodes:    make([]node, 0, capHint),
	}
}

// Span is a handle on one node of a tracer's arena. The zero Span (from
// a nil Tracer) is a no-op on every method and yields no-op children, so
// callers never branch on whether tracing is enabled.
type Span struct {
	t      *Tracer
	id     int32
	depth  int16
	worker int32
}

// Root opens a top-level span. A nil tracer yields the no-op zero Span.
//
//seq:hotpath
func (t *Tracer) Root(name string) Span {
	if t == nil {
		return Span{}
	}
	return t.add(name, noID, 0, noID, noID)
}

// Child opens a sub-span of s, inheriting s's worker lane.
//
//seq:hotpath
func (s Span) Child(name string) Span {
	return s.open(name, s.worker, noID)
}

// Worker opens a sub-span tagged with a worker lane: one goroutine's
// timeline in a parallel subspace search. Descendant spans inherit the
// lane, so every interval lands on the right track of the export.
//
//seq:hotpath
func (s Span) Worker(name string, w int) Span {
	return s.open(name, int32(w), noID)
}

// Subspace opens a sub-span tagged with the subspace index it searches.
//
//seq:hotpath
func (s Span) Subspace(name string, idx int) Span {
	return s.open(name, s.worker, int32(idx))
}

// Unit opens a sub-span tagged with both a worker lane and a subspace
// index: one stolen work unit (a subspace prep, or a chunk of a
// subspace's root candidates) executed by worker w. The stealing paths
// emit these directly under the algorithm root — there is no long-lived
// per-goroutine container span, because a worker parked on the
// scheduler is idle and must not count as busy in Tree.Skew's
// imbalance accounting.
//
//seq:hotpath
func (s Span) Unit(name string, w, idx int) Span {
	return s.open(name, int32(w), int32(idx))
}

//seq:hotpath
func (s Span) open(name string, worker, subspace int32) Span {
	if s.t == nil {
		return Span{}
	}
	if s.id == noID {
		// Child of a dropped span: the subtree is truncated, and every
		// suppressed node counts toward Dropped.
		s.t.drop()
		return Span{t: s.t, id: noID, depth: s.depth + 1, worker: worker}
	}
	return s.t.add(name, s.id, s.depth+1, worker, subspace)
}

//seq:hotpath
func (t *Tracer) add(name string, parent int32, depth int16, worker, subspace int32) Span {
	start := int64(time.Since(t.epoch))
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(depth) >= t.maxDepth || len(t.nodes) >= t.maxNodes {
		t.dropped++
		return Span{t: t, id: noID, depth: depth, worker: worker}
	}
	id := int32(len(t.nodes))
	//lint:ignore hotpathalloc arena append is bounded by maxNodes; growth beyond the initial capacity amortises across the query
	t.nodes = append(t.nodes, node{
		name:     name,
		parent:   parent,
		worker:   worker,
		subspace: subspace,
		depth:    depth,
		startNS:  start,
		endNS:    -1,
	})
	return Span{t: t, id: id, depth: depth, worker: worker}
}

//seq:hotpath
func (t *Tracer) drop() {
	t.mu.Lock()
	t.dropped++
	t.mu.Unlock()
}

// End closes the span at the current time. Ending twice keeps the first
// end; ending the zero Span is a no-op.
//
//seq:hotpath
func (s Span) End() {
	if s.t == nil || s.id == noID {
		return
	}
	end := int64(time.Since(s.t.epoch))
	s.t.mu.Lock()
	if n := &s.t.nodes[s.id]; n.endNS < 0 {
		n.endNS = end
	}
	s.t.mu.Unlock()
}

// EndWork closes the span and attaches the work-counter delta performed
// inside it (per-subspace counters, not the query-wide running totals).
//
//seq:hotpath
func (s Span) EndWork(delta stats.Snapshot) {
	if s.t == nil || s.id == noID {
		return
	}
	end := int64(time.Since(s.t.epoch))
	s.t.mu.Lock()
	if n := &s.t.nodes[s.id]; n.endNS < 0 {
		n.endNS = end
		n.work = delta
		n.hasWork = true
	}
	s.t.mu.Unlock()
}

// Dropped reports how many spans the tree bounds discarded — the span
// counterpart of obs.Trace.Dropped, feeding the same truncation metric
// discipline (spatialseq_spans_dropped_total).
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
