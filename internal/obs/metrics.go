package obs

import (
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// atomicFloat is a lock-free float64 accumulator (CAS over the bit
// pattern), so metric updates never contend with renders.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// child is one (family, label values) series. Counters and gauges use
// val; histograms use buckets/sum/count.
type child struct {
	values []string
	val    atomicFloat
	// buckets[i] counts observations <= family.buckets[i]; the last
	// element is the +Inf overflow bucket.
	buckets []atomic.Uint64
	sum     atomicFloat
	count   atomic.Uint64
}

func newChild(f *family, values []string) *child {
	c := &child{values: append([]string(nil), values...)}
	if f.typ == histogramType {
		c.buckets = make([]atomic.Uint64, len(f.buckets)+1)
	}
	return c
}

// writeText renders this series under its family f.
func (c *child) writeText(b *strings.Builder, f *family) {
	labels := make([]labelPair, len(f.labels))
	for i, name := range f.labels {
		labels[i] = labelPair{name: name, value: c.values[i]}
	}
	if f.typ != histogramType {
		writeSample(b, f.name, "", labels, nil, c.val.Load())
		return
	}
	var cum uint64
	for i, bound := range f.buckets {
		cum += c.buckets[i].Load()
		le := labelPair{name: "le", value: formatValue(bound)}
		writeSample(b, f.name, "_bucket", labels, &le, float64(cum))
	}
	cum += c.buckets[len(f.buckets)].Load()
	le := labelPair{name: "le", value: "+Inf"}
	writeSample(b, f.name, "_bucket", labels, &le, float64(cum))
	writeSample(b, f.name, "_sum", labels, nil, c.sum.Load())
	writeSample(b, f.name, "_count", labels, nil, float64(c.count.Load()))
}

// CounterVec is a counter family; With picks one series by label values.
type CounterVec struct {
	f *family
}

// With returns the counter for the given label values (one per label
// name, in registration order), creating the series on first use.
func (v *CounterVec) With(values ...string) Counter {
	return Counter{c: v.f.with(values)}
}

// Counter is one monotonically increasing series.
type Counter struct {
	c *child
}

// Add increments the counter by v; negative deltas are ignored so the
// series stays monotone.
func (c Counter) Add(v float64) {
	if v > 0 {
		c.c.val.Add(v)
	}
}

// Inc adds one.
func (c Counter) Inc() { c.c.val.Add(1) }

// Value returns the current count (for tests and introspection).
func (c Counter) Value() float64 { return c.c.val.Load() }

// GaugeVec is a gauge family; With picks one series by label values.
type GaugeVec struct {
	f *family
}

// With returns the gauge for the given label values, creating the
// series on first use.
func (v *GaugeVec) With(values ...string) Gauge {
	return Gauge{c: v.f.with(values)}
}

// Gauge is one series that can go up and down.
type Gauge struct {
	c *child
}

// Set replaces the gauge value.
func (g Gauge) Set(v float64) { g.c.val.Store(v) }

// Add shifts the gauge by v (negative is fine).
func (g Gauge) Add(v float64) { g.c.val.Add(v) }

// Inc adds one.
func (g Gauge) Inc() { g.c.val.Add(1) }

// Dec subtracts one.
func (g Gauge) Dec() { g.c.val.Add(-1) }

// Value returns the current value (for tests and introspection).
func (g Gauge) Value() float64 { return g.c.val.Load() }

// HistogramVec is a histogram family; With picks one series by label
// values.
type HistogramVec struct {
	f *family
}

// With returns the histogram for the given label values, creating the
// series on first use.
func (v *HistogramVec) With(values ...string) Histogram {
	return Histogram{c: v.f.with(values), bounds: v.f.buckets}
}

// Histogram is one fixed-bucket series.
type Histogram struct {
	c      *child
	bounds []float64
}

// Observe records v into its bucket and the sum/count aggregates.
func (h Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. the "le" bucket
	h.c.buckets[i].Add(1)
	h.c.sum.Add(v)
	h.c.count.Add(1)
}

// Count returns the total number of observations (for tests).
func (h Histogram) Count() uint64 { return h.c.count.Load() }

// DefBuckets are the default latency buckets in seconds, spanning
// sub-millisecond cache hits to the server's 30s timeout.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}
