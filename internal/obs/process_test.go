package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestValidRequestID(t *testing.T) {
	valid := []string{"a", "abc123", "trace-id_1.2", strings.Repeat("x", 64), "UPPER-lower-09"}
	for _, id := range valid {
		if !ValidRequestID(id) {
			t.Errorf("ValidRequestID(%q) = false, want true", id)
		}
	}
	invalid := []string{"", strings.Repeat("x", 65), "has space", "semi;colon",
		"new\nline", "quote\"", "slash/", "unicode-é", "{brace}"}
	for _, id := range invalid {
		if ValidRequestID(id) {
			t.Errorf("ValidRequestID(%q) = true, want false", id)
		}
	}
}

func TestBuildRevision(t *testing.T) {
	if BuildRevision() == "" {
		t.Error("BuildRevision returned an empty string (want a SHA or \"unknown\")")
	}
}

func TestRegisterProcessMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterProcessMetrics(r)
	RegisterProcessMetrics(r) // must be re-entrant
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"spatialseq_build_info{revision=",
		"spatialseq_uptime_seconds ",
		"spatialseq_goroutines ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}
