package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Add("x", time.Second)
	tr.Start("y").End()
	if s := tr.Snapshot(); s != nil {
		t.Errorf("nil trace snapshot = %v", s)
	}
	if d := tr.Dropped(); d != 0 {
		t.Errorf("nil trace dropped = %d", d)
	}
}

func TestTraceAggregatesByName(t *testing.T) {
	tr := NewTrace()
	tr.Add("dfs", 2*time.Millisecond)
	tr.Add("validate", time.Millisecond)
	tr.Add("dfs", 3*time.Millisecond)
	snap := tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("got %d phases, want 2", len(snap))
	}
	// first-recorded order
	if snap[0].Name != "dfs" || snap[1].Name != "validate" {
		t.Errorf("order = %s, %s", snap[0].Name, snap[1].Name)
	}
	if snap[0].DurationMS != 5 || snap[0].Count != 2 {
		t.Errorf("dfs aggregate = %+v", snap[0])
	}
	if snap[1].DurationMS != 1 || snap[1].Count != 1 {
		t.Errorf("validate aggregate = %+v", snap[1])
	}
}

func TestTraceSpanMeasuresElapsed(t *testing.T) {
	tr := NewTrace()
	sp := tr.Start("sleep")
	time.Sleep(5 * time.Millisecond)
	sp.End()
	snap := tr.Snapshot()
	if len(snap) != 1 || snap[0].DurationMS < 4 {
		t.Errorf("span recorded %+v, want >= ~5ms", snap)
	}
}

func TestTraceBoundsPhaseCount(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < maxPhases+10; i++ {
		tr.Add(fmt.Sprintf("phase-%03d", i), time.Microsecond)
	}
	if got := len(tr.Snapshot()); got != maxPhases {
		t.Errorf("kept %d phases, want %d", got, maxPhases)
	}
	if got := tr.Dropped(); got != 10 {
		t.Errorf("dropped = %d, want 10", got)
	}
	// existing names still accumulate past the bound
	tr.Add("phase-000", time.Microsecond)
	if tr.Snapshot()[0].Count != 2 {
		t.Error("existing phase stopped accumulating at the bound")
	}
}

func TestRequestIDs(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if len(id) != 16 || strings.ToLower(id) != id {
			t.Fatalf("malformed request id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate request id %q", id)
		}
		seen[id] = true
	}
}
