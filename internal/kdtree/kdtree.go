// Package kdtree provides a static, median-balanced k-d tree over 2-D
// points with rectangle range queries and k-nearest-neighbor search.
//
// It is the alternative point index to the STR R-tree (internal/rtree):
// the engine defaults to the R-tree, but the k-d tree is plugged into the
// same call sites by benchmarks comparing index behaviour under the
// partitioner's workload (many overlapping rectangle queries), and offers
// better worst-case guarantees for skewed point sets.
//
// The tree is immutable after New and safe for concurrent readers.
package kdtree

import (
	"sort"

	"spatialseq/internal/geo"
)

// Tree is a static k-d tree. Each point carries an int32 payload.
type Tree struct {
	pts    []geo.Point // permuted into tree order
	refs   []int32     // payloads, parallel to pts
	bounds geo.Rect
}

// New bulk-builds a balanced tree. pts[i] carries payload refs[i]; refs
// may be nil, in which case the payload is the original position i.
func New(pts []geo.Point, refs []int32) *Tree {
	t := &Tree{bounds: geo.EmptyRect()}
	if len(pts) == 0 {
		return t
	}
	t.pts = make([]geo.Point, len(pts))
	copy(t.pts, pts)
	t.refs = make([]int32, len(pts))
	if refs != nil {
		copy(t.refs, refs)
	} else {
		for i := range t.refs {
			t.refs[i] = int32(i)
		}
	}
	for _, p := range pts {
		t.bounds = t.bounds.ExtendPoint(p)
	}
	t.build(0, len(t.pts), 0)
	return t
}

// build arranges pts[lo:hi] into k-d order: the median (by the level's
// axis) sits at mid, smaller coordinates left, larger right.
func (t *Tree) build(lo, hi, axis int) {
	if hi-lo <= 1 {
		return
	}
	mid := (lo + hi) / 2
	t.selectMedian(lo, hi, mid, axis)
	t.build(lo, mid, 1-axis)
	t.build(mid+1, hi, 1-axis)
}

// selectMedian partially sorts pts[lo:hi] so the element at mid is the
// axis-median (nth_element). Payloads move with their points.
func (t *Tree) selectMedian(lo, hi, mid, axis int) {
	for hi-lo > 1 {
		p := t.coord(lo+(hi-lo)/2, axis) // middle-element pivot
		i, j := lo, hi-1
		for i <= j {
			for t.coord(i, axis) < p {
				i++
			}
			for t.coord(j, axis) > p {
				j--
			}
			if i <= j {
				t.swap(i, j)
				i++
				j--
			}
		}
		switch {
		case mid <= j:
			hi = j + 1
		case mid >= i:
			lo = i
		default:
			return
		}
	}
}

func (t *Tree) coord(i, axis int) float64 {
	if axis == 0 {
		return t.pts[i].X
	}
	return t.pts[i].Y
}

func (t *Tree) swap(i, j int) {
	t.pts[i], t.pts[j] = t.pts[j], t.pts[i]
	t.refs[i], t.refs[j] = t.refs[j], t.refs[i]
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.pts) }

// Bounds returns the bounding rectangle of all points.
func (t *Tree) Bounds() geo.Rect { return t.bounds }

// Search appends the payloads of all points inside rect (closed bounds)
// to dst and returns dst.
func (t *Tree) Search(rect geo.Rect, dst []int32) []int32 {
	if len(t.pts) == 0 || rect.IsEmpty() {
		return dst
	}
	return t.search(0, len(t.pts), 0, rect, dst)
}

func (t *Tree) search(lo, hi, axis int, rect geo.Rect, dst []int32) []int32 {
	if hi <= lo {
		return dst
	}
	mid := (lo + hi) / 2
	p := t.pts[mid]
	if rect.Contains(p) {
		dst = append(dst, t.refs[mid])
	}
	var c, min, max float64
	if axis == 0 {
		c, min, max = p.X, rect.MinX, rect.MaxX
	} else {
		c, min, max = p.Y, rect.MinY, rect.MaxY
	}
	if min <= c {
		dst = t.search(lo, mid, 1-axis, rect, dst)
	}
	if max >= c {
		dst = t.search(mid+1, hi, 1-axis, rect, dst)
	}
	return dst
}

// Count returns the number of points inside rect.
func (t *Tree) Count(rect geo.Rect) int {
	return len(t.Search(rect, nil)) // small trees; exactness over speed
}

// Neighbor is one k-nearest-neighbor result.
type Neighbor struct {
	Ref  int32
	Dist float64
}

// Nearest returns the k points closest to q in ascending (dist, ref)
// order. filter, when non-nil, rejects candidates by payload.
func (t *Tree) Nearest(q geo.Point, k int, filter func(ref int32) bool) []Neighbor {
	if len(t.pts) == 0 || k <= 0 {
		return nil
	}
	s := &knnState{q: q, k: k, filter: filter}
	s.visit(t, 0, len(t.pts), 0)
	sort.Slice(s.best, func(i, j int) bool {
		//lint:ignore floatcmp exact tie detection feeds the deterministic ref ordering
		if s.best[i].Dist != s.best[j].Dist {
			return s.best[i].Dist < s.best[j].Dist
		}
		return s.best[i].Ref < s.best[j].Ref
	})
	return s.best
}

type knnState struct {
	q      geo.Point
	k      int
	filter func(int32) bool
	best   []Neighbor // unordered; worst tracked separately
	worst  float64
}

func (s *knnState) visit(t *Tree, lo, hi, axis int) {
	if hi <= lo {
		return
	}
	mid := (lo + hi) / 2
	p := t.pts[mid]
	if s.filter == nil || s.filter(t.refs[mid]) {
		s.offer(Neighbor{Ref: t.refs[mid], Dist: p.Dist(s.q)})
	}
	var delta float64
	if axis == 0 {
		delta = s.q.X - p.X
	} else {
		delta = s.q.Y - p.Y
	}
	near, far := [2]int{lo, mid}, [2]int{mid + 1, hi}
	if delta > 0 {
		near, far = far, near
	}
	s.visit(t, near[0], near[1], 1-axis)
	// the far side can only matter if the splitting plane is within the
	// current k-th best distance (or we do not have k yet); <= keeps
	// equal-distance ties reachable for deterministic resolution
	if len(s.best) < s.k || abs(delta) <= s.worst {
		s.visit(t, far[0], far[1], 1-axis)
	}
}

func (s *knnState) offer(nb Neighbor) {
	if len(s.best) < s.k {
		s.best = append(s.best, nb)
		if len(s.best) == s.k {
			s.recomputeWorst()
		}
		return
	}
	if nb.Dist > s.worst {
		return
	}
	//lint:ignore floatcmp exact tie detection; epsilon would make results order-dependent
	if nb.Dist == s.worst {
		// deterministic tie handling: prefer the smaller ref
		wi := s.worstIndex()
		if nb.Ref >= s.best[wi].Ref {
			return
		}
		s.best[wi] = nb
		s.recomputeWorst()
		return
	}
	s.best[s.worstIndex()] = nb
	s.recomputeWorst()
}

func (s *knnState) worstIndex() int {
	wi := 0
	for i, nb := range s.best {
		w := s.best[wi]
		//lint:ignore floatcmp exact tie detection feeds the deterministic ref ordering
		if nb.Dist > w.Dist || (nb.Dist == w.Dist && nb.Ref > w.Ref) {
			wi = i
		}
	}
	return wi
}

func (s *knnState) recomputeWorst() {
	s.worst = 0
	for _, nb := range s.best {
		if nb.Dist > s.worst {
			s.worst = nb.Dist
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
