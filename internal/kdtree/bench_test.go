package kdtree

import (
	"math/rand"
	"testing"

	"spatialseq/internal/geo"
	"spatialseq/internal/rtree"
)

func benchPoints(n int) []geo.Point {
	rng := rand.New(rand.NewSource(1))
	return randPoints(rng, n, 1000)
}

// The kd-tree vs R-tree comparison under the partitioner's workload
// profile (many mid-size rectangle queries).

func BenchmarkBuild100k(b *testing.B) {
	pts := benchPoints(100000)
	b.Run("kdtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			New(pts, nil)
		}
	})
	b.Run("rtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rtree.New(pts, nil)
		}
	})
}

func BenchmarkSearch100k(b *testing.B) {
	pts := benchPoints(100000)
	kd := New(pts, nil)
	rt := rtree.New(pts, nil)
	mkRect := func(rng *rand.Rand) geo.Rect {
		x, y := rng.Float64()*950, rng.Float64()*950
		return geo.Rect{MinX: x, MinY: y, MaxX: x + 50, MaxY: y + 50}
	}
	b.Run("kdtree", func(b *testing.B) {
		rng := rand.New(rand.NewSource(2))
		var dst []int32
		for i := 0; i < b.N; i++ {
			dst = kd.Search(mkRect(rng), dst[:0])
		}
	})
	b.Run("rtree", func(b *testing.B) {
		rng := rand.New(rand.NewSource(2))
		var dst []int32
		for i := 0; i < b.N; i++ {
			dst = rt.Search(mkRect(rng), dst[:0])
		}
	})
}

func BenchmarkNearest100k(b *testing.B) {
	pts := benchPoints(100000)
	kd := New(pts, nil)
	rt := rtree.New(pts, nil)
	b.Run("kdtree", func(b *testing.B) {
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < b.N; i++ {
			kd.Nearest(geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}, 10, nil)
		}
	})
	b.Run("rtree", func(b *testing.B) {
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < b.N; i++ {
			rt.Nearest(geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}, 10, nil)
		}
	})
}
