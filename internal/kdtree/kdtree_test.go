package kdtree

import (
	"math/rand"
	"sort"
	"testing"

	"spatialseq/internal/geo"
	"spatialseq/internal/rtree"
)

func randPoints(rng *rand.Rand, n int, extent float64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	}
	return pts
}

func sorted(xs []int32) []int32 {
	out := make([]int32, len(xs))
	copy(out, xs)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	tr := New(nil, nil)
	if tr.Len() != 0 || !tr.Bounds().IsEmpty() {
		t.Error("empty tree shape wrong")
	}
	if got := tr.Search(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, nil); len(got) != 0 {
		t.Errorf("Search = %v", got)
	}
	if got := tr.Nearest(geo.Point{}, 3, nil); got != nil {
		t.Errorf("Nearest = %v", got)
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, n := range []int{1, 2, 7, 64, 1000} {
		pts := randPoints(rng, n, 100)
		tr := New(pts, nil)
		for trial := 0; trial < 25; trial++ {
			x1, x2 := rng.Float64()*100, rng.Float64()*100
			y1, y2 := rng.Float64()*100, rng.Float64()*100
			r := geo.Rect{MinX: min(x1, x2), MinY: min(y1, y2), MaxX: max(x1, x2), MaxY: max(y1, y2)}
			var want []int32
			for i, p := range pts {
				if r.Contains(p) {
					want = append(want, int32(i))
				}
			}
			got := sorted(tr.Search(r, nil))
			if !equalIDs(got, sorted(want)) {
				t.Fatalf("n=%d: Search(%v) got %d, want %d", n, r, len(got), len(want))
			}
			if c := tr.Count(r); c != len(want) {
				t.Fatalf("Count = %d, want %d", c, len(want))
			}
		}
	}
}

func TestSearchAgreesWithRTree(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	pts := randPoints(rng, 3000, 200)
	kd := New(pts, nil)
	rt := rtree.New(pts, nil)
	for trial := 0; trial < 40; trial++ {
		x, y := rng.Float64()*180, rng.Float64()*180
		r := geo.Rect{MinX: x, MinY: y, MaxX: x + 20, MaxY: y + 20}
		a := sorted(kd.Search(r, nil))
		b := sorted(rt.Search(r, nil))
		if !equalIDs(a, b) {
			t.Fatalf("kd-tree and R-tree disagree on %v: %d vs %d", r, len(a), len(b))
		}
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 3, 17, 250, 1500} {
		pts := randPoints(rng, n, 100)
		tr := New(pts, nil)
		for trial := 0; trial < 20; trial++ {
			q := geo.Point{X: rng.Float64() * 120, Y: rng.Float64() * 120}
			k := 1 + rng.Intn(8)
			got := tr.Nearest(q, k, nil)
			var all []Neighbor
			for i, p := range pts {
				all = append(all, Neighbor{Ref: int32(i), Dist: p.Dist(q)})
			}
			sort.Slice(all, func(i, j int) bool {
				if all[i].Dist != all[j].Dist {
					return all[i].Dist < all[j].Dist
				}
				return all[i].Ref < all[j].Ref
			})
			if len(all) > k {
				all = all[:k]
			}
			if len(got) != len(all) {
				t.Fatalf("n=%d k=%d: got %d, want %d", n, k, len(got), len(all))
			}
			for i := range got {
				if got[i].Ref != all[i].Ref {
					t.Fatalf("n=%d k=%d rank %d: got %+v want %+v", n, k, i, got[i], all[i])
				}
			}
		}
	}
}

func TestNearestFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pts := randPoints(rng, 400, 50)
	tr := New(pts, nil)
	odd := func(ref int32) bool { return ref%2 == 1 }
	got := tr.Nearest(geo.Point{X: 25, Y: 25}, 5, odd)
	if len(got) != 5 {
		t.Fatalf("got %d", len(got))
	}
	for _, nb := range got {
		if nb.Ref%2 != 1 {
			t.Errorf("filter violated: %d", nb.Ref)
		}
	}
}

func TestCustomRefs(t *testing.T) {
	pts := []geo.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}
	tr := New(pts, []int32{10, 20})
	got := sorted(tr.Search(geo.Rect{MinX: 0, MinY: 0, MaxX: 3, MaxY: 3}, nil))
	if !equalIDs(got, []int32{10, 20}) {
		t.Errorf("Search = %v", got)
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := make([]geo.Point, 40)
	for i := range pts {
		pts[i] = geo.Point{X: 7, Y: 7}
	}
	tr := New(pts, nil)
	if got := tr.Search(geo.Rect{MinX: 7, MinY: 7, MaxX: 7, MaxY: 7}, nil); len(got) != 40 {
		t.Errorf("duplicate search = %d", len(got))
	}
	nb := tr.Nearest(geo.Point{X: 7, Y: 7}, 3, nil)
	if len(nb) != 3 || nb[0].Dist != 0 {
		t.Errorf("duplicate nearest = %v", nb)
	}
}

func TestNewDoesNotMutateInput(t *testing.T) {
	pts := []geo.Point{{X: 3, Y: 1}, {X: 1, Y: 2}, {X: 2, Y: 0}}
	orig := make([]geo.Point, len(pts))
	copy(orig, pts)
	New(pts, nil)
	for i := range pts {
		if pts[i] != orig[i] {
			t.Fatal("New must not reorder the caller's slice")
		}
	}
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
