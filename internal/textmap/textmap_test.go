package textmap

import (
	"strings"
	"testing"

	"spatialseq/internal/geo"
)

func TestNewValidation(t *testing.T) {
	ok := geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	if _, err := New(geo.EmptyRect(), 40, 10); err == nil {
		t.Error("empty view should fail")
	}
	if _, err := New(geo.Rect{MinX: 1, MinY: 1, MaxX: 1, MaxY: 1}, 40, 10); err == nil {
		t.Error("zero-area view should fail")
	}
	if _, err := New(ok, 4, 10); err == nil {
		t.Error("too-narrow canvas should fail")
	}
	if _, err := New(ok, 40, 2); err == nil {
		t.Error("too-short canvas should fail")
	}
	if _, err := New(ok, 40, 10); err != nil {
		t.Errorf("valid canvas rejected: %v", err)
	}
}

func TestRenderPlacesPoints(t *testing.T) {
	c, err := New(geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := c.Render([]Layer{
		{Label: "a", Rune: 'A', Points: []geo.Point{{X: 0.5, Y: 0.5}}}, // bottom-left
		{Label: "b", Rune: 'B', Points: []geo.Point{{X: 9.5, Y: 9.5}}}, // top-right
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// frame: line 0 border, lines 1..10 rows top-down, line 11 border, legend after
	if len(lines) < 12 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	topRow := lines[1]
	bottomRow := lines[10]
	if !strings.Contains(topRow, "B") {
		t.Errorf("B should render in the top row, got %q", topRow)
	}
	if !strings.Contains(bottomRow, "A") {
		t.Errorf("A should render in the bottom row, got %q", bottomRow)
	}
	if !strings.Contains(out, "A  a") || !strings.Contains(out, "B  b") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestLaterLayersWin(t *testing.T) {
	c, _ := New(geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 10, 10)
	p := []geo.Point{{X: 5, Y: 5}}
	out := c.Render([]Layer{
		{Rune: 'X', Points: p},
		{Rune: 'Y', Points: p},
	})
	if strings.Contains(out, "X") {
		t.Error("earlier layer should be overdrawn")
	}
	if !strings.Contains(out, "Y") {
		t.Error("later layer should win")
	}
}

func TestOutOfViewSkipped(t *testing.T) {
	c, _ := New(geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 10, 10)
	out := c.Render([]Layer{{Rune: 'Z', Points: []geo.Point{{X: 50, Y: 50}}}})
	if strings.Contains(out, "Z") {
		t.Error("out-of-view point must be skipped")
	}
}

func TestFitView(t *testing.T) {
	layers := []Layer{
		{Points: []geo.Point{{X: 1, Y: 2}, {X: 9, Y: 4}}},
		{Points: []geo.Point{{X: 5, Y: 8}}},
	}
	v := FitView(layers)
	for _, l := range layers {
		for _, p := range l.Points {
			if !v.Contains(p) {
				t.Errorf("FitView %v misses %v", v, p)
			}
		}
	}
	if v.Width() <= 8 {
		t.Error("FitView should pad the bounds")
	}
	if !FitView(nil).IsEmpty() {
		t.Error("FitView of nothing is empty")
	}
	// degenerate: all points identical still yields a usable viewport
	same := FitView([]Layer{{Points: []geo.Point{{X: 3, Y: 3}, {X: 3, Y: 3}}}})
	if same.IsEmpty() || same.Width() == 0 {
		t.Errorf("degenerate FitView = %v", same)
	}
}

func TestEmptyLegendLabelHidden(t *testing.T) {
	c, _ := New(geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 10, 10)
	out := c.Render([]Layer{{Rune: 'Q', Points: []geo.Point{{X: 5, Y: 5}}}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 12 { // 2 borders + 10 rows, no legend
		t.Errorf("unexpected legend lines: %d\n%s", len(lines), out)
	}
}
