// Package textmap renders point sets onto a character grid for terminal
// output — the closest a CLI gets to the paper's map panels. seqcli uses
// it to show the example and each result tuple in place.
//
// The renderer maps a world-coordinate viewport onto a WxH rune canvas,
// draws layers in order (later layers win contested cells) and emits an
// optional legend. It has no terminal-control dependencies; the output is
// plain text.
package textmap

import (
	"fmt"
	"strings"

	"spatialseq/internal/geo"
)

// Layer is one set of points drawn with a single rune.
type Layer struct {
	// Label describes the layer in the legend ("" hides it).
	Label string
	// Rune marks the layer's points on the canvas.
	Rune rune
	// Points are the world-coordinate locations.
	Points []geo.Point
}

// Canvas renders layers over a world viewport.
type Canvas struct {
	view geo.Rect
	w, h int
}

// New creates a canvas of w x h cells covering the world rectangle view.
// Minimum size is 8x4; the view must be non-empty.
func New(view geo.Rect, w, h int) (*Canvas, error) {
	if view.IsEmpty() || view.Width() == 0 || view.Height() == 0 {
		return nil, fmt.Errorf("textmap: viewport must have positive area, got %v", view)
	}
	if w < 8 || h < 4 {
		return nil, fmt.Errorf("textmap: canvas must be at least 8x4, got %dx%d", w, h)
	}
	return &Canvas{view: view, w: w, h: h}, nil
}

// FitView returns the minimal viewport covering all layer points, inflated
// by 5%% so border points stay off the frame.
func FitView(layers []Layer) geo.Rect {
	r := geo.EmptyRect()
	for _, l := range layers {
		for _, p := range l.Points {
			r = r.ExtendPoint(p)
		}
	}
	if r.IsEmpty() {
		return r
	}
	pad := 0.05 * maxf(r.Width(), r.Height())
	if pad == 0 {
		pad = 1
	}
	return r.Inflate(pad)
}

// Render draws the layers and returns the framed text. Later layers
// overdraw earlier ones in contested cells. Points outside the viewport
// are skipped.
func (c *Canvas) Render(layers []Layer) string {
	cells := make([]rune, c.w*c.h)
	for i := range cells {
		cells[i] = '·'
	}
	for _, l := range layers {
		for _, p := range l.Points {
			col, row, ok := c.cell(p)
			if !ok {
				continue
			}
			cells[row*c.w+col] = l.Rune
		}
	}
	var sb strings.Builder
	sb.Grow((c.w + 3) * (c.h + 4))
	border := "+" + strings.Repeat("-", c.w) + "+\n"
	sb.WriteString(border)
	// rows render top-down: world max-Y first
	for row := c.h - 1; row >= 0; row-- {
		sb.WriteByte('|')
		for col := 0; col < c.w; col++ {
			sb.WriteRune(cells[row*c.w+col])
		}
		sb.WriteString("|\n")
	}
	sb.WriteString(border)
	for _, l := range layers {
		if l.Label == "" {
			continue
		}
		fmt.Fprintf(&sb, "  %c  %s\n", l.Rune, l.Label)
	}
	return sb.String()
}

// cell maps a world point to canvas coordinates.
func (c *Canvas) cell(p geo.Point) (col, row int, ok bool) {
	if !c.view.Contains(p) {
		return 0, 0, false
	}
	fx := (p.X - c.view.MinX) / c.view.Width()
	fy := (p.Y - c.view.MinY) / c.view.Height()
	col = int(fx * float64(c.w))
	row = int(fy * float64(c.h))
	if col >= c.w {
		col = c.w - 1
	}
	if row >= c.h {
		row = c.h - 1
	}
	return col, row, true
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
