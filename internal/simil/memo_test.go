package simil

import (
	"math/rand"
	"sync"
	"testing"

	"spatialseq/internal/dataset"
	"spatialseq/internal/geo"
	"spatialseq/internal/query"
	"spatialseq/internal/testutil"
	"spatialseq/internal/vectormath"
)

// attrSimOracle is the unfactored reference: the full cosine over the
// example dimension's attributes and the object's attributes.
func attrSimOracle(c *Context, dim int, pos int32) float64 {
	return vectormath.Cos(c.Ex.Attrs[dim], c.DS.Object(int(pos)).Attr)
}

// AttrSim without any memo must already match the full cosine bit-for-bit:
// the prenormed decomposition may not perturb a single result.
func TestAttrSimMatchesCosOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	c, _ := newCtx(t, rng, 3, 1.5)
	for d := 0; d < c.M; d++ {
		for pos := int32(0); pos < int32(c.DS.Len()); pos++ {
			if got, want := c.AttrSim(d, pos), attrSimOracle(c, d, pos); got != want {
				t.Fatalf("dim %d pos %d: AttrSim = %v, Cos = %v", d, pos, got, want)
			}
		}
	}
}

func TestMemoLazyExactAndCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	c, _ := newCtx(t, rng, 3, 1.5)
	c.EnableMemo()
	var universe int64
	for d := 0; d < c.M; d++ {
		universe += int64(len(c.DS.CategoryObjects(c.Ex.Categories[d])))
	}
	for pass := 0; pass < 2; pass++ {
		for d := 0; d < c.M; d++ {
			for _, pos := range c.DS.CategoryObjects(c.Ex.Categories[d]) {
				if got, want := c.AttrSim(d, pos), attrSimOracle(c, d, pos); got != want {
					t.Fatalf("pass %d dim %d pos %d: memoized AttrSim = %v, Cos = %v", pass, d, pos, got, want)
				}
			}
		}
	}
	hits, misses := c.MemoCounters()
	if misses != universe {
		t.Errorf("misses = %d, want %d (one per distinct dim/candidate)", misses, universe)
	}
	if hits != universe {
		t.Errorf("hits = %d, want %d (the whole second pass)", hits, universe)
	}
	// positions outside the dimension's category bypass the memo but still
	// answer exactly
	for d := 0; d < c.M; d++ {
		for pos := int32(0); pos < int32(c.DS.Len()); pos++ {
			if c.DS.Category(int(pos)) == c.Ex.Categories[d] {
				continue
			}
			if got, want := c.AttrSim(d, pos), attrSimOracle(c, d, pos); got != want {
				t.Fatalf("off-category dim %d pos %d: %v != %v", d, pos, got, want)
			}
		}
	}
}

func TestPrepareMemoShared(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	c, _ := newCtx(t, rng, 3, 1.5)
	var universe int64
	for d := 0; d < c.M; d++ {
		universe += int64(len(c.DS.CategoryObjects(c.Ex.Categories[d])))
	}
	if got := c.PrepareMemoShared(); got != universe {
		t.Errorf("PrepareMemoShared computed %d cosines, want %d", got, universe)
	}
	if !c.MemoShared() {
		t.Error("MemoShared should report true after PrepareMemoShared")
	}
	if got := c.PrepareMemoShared(); got != 0 {
		t.Errorf("second PrepareMemoShared = %d, want 0", got)
	}
	for d := 0; d < c.M; d++ {
		for pos := int32(0); pos < int32(c.DS.Len()); pos++ {
			if got, want := c.AttrSim(d, pos), attrSimOracle(c, d, pos); got != want {
				t.Fatalf("dim %d pos %d: shared-memo AttrSim = %v, Cos = %v", d, pos, got, want)
			}
		}
	}
	// shared mode leaves the Context-side lazy counters untouched
	if h, mi := c.MemoCounters(); h != 0 || mi != 0 {
		t.Errorf("shared-mode MemoCounters = %d/%d, want 0/0", h, mi)
	}
}

func TestPrepareMemoSharedFixedDim(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	ds := testutil.RandDataset(rng, 120, 3, 4, 100)
	params := query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10}
	q := testutil.RandQuery(rng, ds, 3, 30, params)
	cands := ds.CategoryObjects(q.Example.Categories[0])
	if len(cands) == 0 {
		t.Skip("no candidates in dimension 0's category")
	}
	q.Example.Fixed = []query.FixedPoint{{Dim: 0, Obj: cands[0]}}
	q.Variant = query.CSEQFP
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	c := NewContext(ds, q)
	want := int64(1) // the pinned entry only for dim 0
	for d := 1; d < c.M; d++ {
		want += int64(len(ds.CategoryObjects(q.Example.Categories[d])))
	}
	if got := c.PrepareMemoShared(); got != want {
		t.Errorf("PrepareMemoShared with fixed dim computed %d, want %d", got, want)
	}
	// pinned entry answers from the table; unpinned same-category entries
	// fall through to the direct kernel — both must match the oracle
	for _, pos := range cands {
		if got, wantv := c.AttrSim(0, pos), attrSimOracle(c, 0, pos); got != wantv {
			t.Fatalf("fixed dim pos %d: %v != %v", pos, got, wantv)
		}
	}
}

// The shared memo is read-only after PrepareMemoShared; concurrent lookups
// from many goroutines must be race-free (the suite runs under -race) and
// still exact.
func TestMemoSharedConcurrentReads(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	c, _ := newCtx(t, rng, 3, 1.5)
	c.PrepareMemoShared()
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := 0; d < c.M; d++ {
				for pos := int32(0); pos < int32(c.DS.Len()); pos++ {
					if c.AttrSim(d, pos) != attrSimOracle(c, d, pos) {
						select {
						case errCh <- errMismatch:
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

var errMismatch = errText("concurrent AttrSim diverged from oracle")

type errText string

func (e errText) Error() string { return string(e) }

// A dataset object with an all-zero attribute vector exercises the
// zero-norm convention (cosine 0 against any non-zero example) through the
// memoized path.
func TestMemoZeroNormConvention(t *testing.T) {
	b := &dataset.Builder{}
	cat := b.Category("only")
	rng := rand.New(rand.NewSource(59))
	for i := 0; i < 6; i++ {
		attr := []float64{rng.Float64() + 0.1, rng.Float64() + 0.1}
		if i == 2 {
			attr = []float64{0, 0}
		}
		b.Add(dataset.Object{
			ID:       int64(i),
			Loc:      geo.Point{X: float64(i) * 3, Y: float64(i % 2)},
			Category: cat,
			Attr:     attr,
		})
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	params := query.Params{K: 2, Alpha: 0.5, Beta: 5, GridD: 2, Xi: 4}
	q := testutil.RandQuery(rng, ds, 2, 10, params)
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	c := NewContext(ds, q)
	c.EnableMemo()
	for pass := 0; pass < 2; pass++ {
		for d := 0; d < c.M; d++ {
			if got, want := c.AttrSim(d, 2), attrSimOracle(c, d, 2); got != want {
				t.Fatalf("pass %d dim %d: zero-attr AttrSim = %v, want %v", pass, d, got, want)
			}
			if got := c.AttrSim(d, 2); got != 0 {
				t.Fatalf("zero-attr cosine against non-zero example = %v, want 0", got)
			}
		}
	}
}

func TestCandidatesIntoMatchesCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	c, _ := newCtx(t, rng, 3, 1.5)
	all := make([]int32, c.DS.Len())
	for i := range all {
		all[i] = int32(i)
	}
	dst := make([]Cand, 0, c.DS.Len())
	for d := 0; d < c.M; d++ {
		want := c.Candidates(d, all)
		got := c.CandidatesInto(dst[:0], d, all)
		if len(got) != len(want) {
			t.Fatalf("dim %d: CandidatesInto len %d, Candidates len %d", d, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("dim %d entry %d: %+v != %+v", d, i, got[i], want[i])
			}
		}
	}
}

// With a sufficient reused buffer, steady-state candidate enumeration must
// not allocate.
func TestCandidatesIntoZeroAllocsSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	c, _ := newCtx(t, rng, 3, 1.5)
	all := make([]int32, c.DS.Len())
	for i := range all {
		all[i] = int32(i)
	}
	dst := make([]Cand, 0, c.DS.Len())
	dst = c.CandidatesInto(dst, 0, all) // warm the buffer
	allocs := testing.AllocsPerRun(20, func() {
		dst = c.CandidatesInto(dst[:0], 0, all)
	})
	if allocs != 0 {
		t.Errorf("CandidatesInto allocated %v per run with a reused buffer", allocs)
	}
}

func benchContext(b *testing.B) *Context {
	b.Helper()
	rng := rand.New(rand.NewSource(62))
	ds := testutil.RandDataset(rng, 2000, 3, 8, 100)
	params := query.Params{K: 5, Alpha: 0.5, Beta: 1.5, GridD: 4, Xi: 10}
	q := testutil.RandQuery(rng, ds, 3, 30, params)
	if err := q.Validate(ds); err != nil {
		b.Fatal(err)
	}
	return NewContext(ds, q)
}

var benchSimSink float64

func BenchmarkAttrSimDirect(b *testing.B) {
	c := benchContext(b)
	cands := c.DS.CategoryObjects(c.Ex.Categories[0])
	b.ReportAllocs()
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s += c.AttrSim(0, cands[i%len(cands)])
	}
	benchSimSink = s
}

func BenchmarkAttrSimMemo(b *testing.B) {
	c := benchContext(b)
	c.PrepareMemoShared()
	cands := c.DS.CategoryObjects(c.Ex.Categories[0])
	b.ReportAllocs()
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s += c.AttrSim(0, cands[i%len(cands)])
	}
	benchSimSink = s
}

var benchCandSink []Cand

func BenchmarkCandidates(b *testing.B) {
	c := benchContext(b)
	all := make([]int32, c.DS.Len())
	for i := range all {
		all[i] = int32(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var out []Cand
	for i := 0; i < b.N; i++ {
		out = c.Candidates(0, all)
	}
	benchCandSink = out
}

func BenchmarkCandidatesInto(b *testing.B) {
	c := benchContext(b)
	all := make([]int32, c.DS.Len())
	for i := range all {
		all[i] = int32(i)
	}
	dst := make([]Cand, 0, c.DS.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = c.CandidatesInto(dst[:0], 0, all)
	}
	benchCandSink = dst
}
