package simil

import (
	"math"
	"math/rand"
	"testing"

	"spatialseq/internal/geo"
	"spatialseq/internal/query"
	"spatialseq/internal/testutil"
)

func maskedCtx(t *testing.T, rng *rand.Rand, skip [][2]int, metric query.Metric) (*Context, *query.Query) {
	t.Helper()
	ds := testutil.RandDataset(rng, 80, 3, 4, 100)
	params := query.Params{K: 5, Alpha: 0.5, Beta: 2, GridD: 4, Xi: 10}
	q := testutil.RandQuery(rng, ds, 3, 30, params)
	q.Example.SkipPairs = skip
	q.Example.Metric = metric
	if err := q.Validate(ds); err != nil {
		t.Fatal(err)
	}
	return NewContext(ds, q), q
}

func TestContextWithSkipPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	c, q := maskedCtx(t, rng, [][2]int{{0, 2}}, nil)
	if c.Pairs != 2 {
		t.Errorf("Pairs = %d, want 2 active", c.Pairs)
	}
	if c.GraphDiam != 2 {
		t.Errorf("GraphDiam = %d, want 2", c.GraphDiam)
	}
	if len(c.X) != 2 || len(c.Active) != 3 {
		t.Errorf("X len %d, Active len %d", len(c.X), len(c.Active))
	}
	// partition radius widened by the graph diameter
	want := 2 * c.Beta * c.Norm
	if math.Abs(c.PartitionRadius()-want) > 1e-9 {
		t.Errorf("PartitionRadius = %g, want %g", c.PartitionRadius(), want)
	}
	_ = q
}

func TestScratchHonorsMask(t *testing.T) {
	rng := rand.New(rand.NewSource(172))
	c, _ := maskedCtx(t, rng, [][2]int{{0, 1}}, nil)
	s := c.NewScratch()
	s.Push(geo.Point{X: 0, Y: 0}, 1)
	n2 := s.Push(geo.Point{X: 3, Y: 4}, 1) // pair (0,1) masked
	if n2 != 0 || len(s.Y) != 0 {
		t.Fatalf("masked pair added %d distances: %v", n2, s.Y)
	}
	n3 := s.Push(geo.Point{X: 6, Y: 8}, 1) // pairs (0,2) and (1,2) active
	if n3 != 2 || len(s.Y) != 2 {
		t.Fatalf("third push added %d distances: %v", n3, s.Y)
	}
	if got := s.PrefixNorm(); math.Abs(got-geo.Norm(s.Y)) > 1e-12 {
		t.Errorf("PrefixNorm = %g", got)
	}
}

func TestDistVectorOfMaskedMatchesExample(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	c, q := maskedCtx(t, rng, [][2]int{{1, 2}}, nil)
	got := c.DistVectorOf(q.Example.Locations, nil)
	want := q.Example.DistVector()
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("entry %d: %g vs %g", i, got[i], want[i])
		}
	}
}

type scaledMetric struct{ f float64 }

func (m scaledMetric) Dist(a, b geo.Point) float64 { return m.f * a.Dist(b) }
func (m scaledMetric) DominatesEuclidean() bool    { return m.f >= 1 }

func TestContextWithMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(174))
	c, q := maskedCtx(t, rng, nil, scaledMetric{f: 3})
	if c.Dist(geo.Point{X: 0, Y: 0}, geo.Point{X: 1, Y: 0}) != 3 {
		t.Error("Context.Dist must use the metric")
	}
	// the example norm is measured under the metric
	if math.Abs(c.Norm-q.Example.Norm()) > 1e-9 {
		t.Errorf("Norm = %g, example = %g", c.Norm, q.Example.Norm())
	}
	// scratch distances use the metric
	s := c.NewScratch()
	s.Push(geo.Point{X: 0, Y: 0}, 1)
	s.Push(geo.Point{X: 1, Y: 0}, 1)
	if s.Y[0] != 3 {
		t.Errorf("scratch distance = %g, want 3", s.Y[0])
	}
	// a dominating metric keeps a finite partition radius
	if math.IsInf(c.PartitionRadius(), 1) {
		t.Error("dominating metric should keep a finite radius")
	}
}

func TestNonDominatingMetricRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(175))
	c, _ := maskedCtx(t, rng, nil, scaledMetric{f: 0.5})
	if !math.IsInf(c.PartitionRadius(), 1) {
		t.Error("non-dominating metric must force the whole-space radius")
	}
}

func TestSimOfPositionsWithMask(t *testing.T) {
	rng := rand.New(rand.NewSource(176))
	c, q := maskedCtx(t, rng, [][2]int{{0, 1}}, nil)
	// brute-assemble a tuple and verify SimOfPositions agrees with a
	// manual masked computation
	tuple := make([]int32, 3)
	for d := 0; d < 3; d++ {
		objs := c.DS.CategoryObjects(q.Example.Categories[d])
		if len(objs) == 0 {
			t.Skip("no candidates")
		}
		tuple[d] = objs[d%len(objs)]
	}
	if tuple[0] == tuple[1] || tuple[1] == tuple[2] || tuple[0] == tuple[2] {
		t.Skip("degenerate tuple")
	}
	sim, ok := c.SimOfPositions(tuple)
	if !ok {
		t.Skip("tuple infeasible under beta")
	}
	locs := make([]geo.Point, 3)
	attrs := make([]float64, 3)
	for d, pos := range tuple {
		locs[d] = c.DS.Object(int(pos)).Loc
		attrs[d] = c.AttrSim(d, pos)
	}
	y := c.DistVectorOf(locs, nil)
	want := c.TupleSim(y, attrs)
	if math.Abs(sim-want) > 1e-12 {
		t.Errorf("SimOfPositions = %g, manual = %g", sim, want)
	}
}
