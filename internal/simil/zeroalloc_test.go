package simil

import (
	"math/rand"
	"testing"
)

// The per-candidate scoring kernels must not allocate once scratch
// capacity is warm: DistVectorOfPositions on the common (no mask,
// Euclidean) SoA path, and AttrSim's prenormed dot product.

func TestDistVectorOfPositionsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c, _ := newCtx(t, rng, 3, 1.5)
	if c.Active != nil || c.Metric != nil {
		t.Fatal("fixture must exercise the common SoA path (no mask, Euclidean)")
	}
	tuple := []int32{0, 1, 2}
	dst := c.DistVectorOfPositions(tuple, nil) // warm the buffer
	if got := testing.AllocsPerRun(100, func() {
		dst = c.DistVectorOfPositions(tuple, dst)
	}); got != 0 {
		t.Errorf("DistVectorOfPositions with warm dst allocates %v times per call, want 0", got)
	}
}

func TestDistVectorOfPositionsMaskedZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c, _ := newCtx(t, rng, 3, 1.5)
	// Force the masked fallback with every pair active: same output,
	// element-wise loop instead of the SoA kernel.
	c.Active = []bool{true, true, true}
	tuple := []int32{0, 1, 2}
	dst := c.DistVectorOfPositions(tuple, nil)
	if got := testing.AllocsPerRun(100, func() {
		dst = c.DistVectorOfPositions(tuple, dst)
	}); got != 0 {
		t.Errorf("masked DistVectorOfPositions with warm dst allocates %v times per call, want 0", got)
	}
}

func TestAttrSimZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c, _ := newCtx(t, rng, 3, 1.5)
	var sink float64
	if got := testing.AllocsPerRun(100, func() {
		sink = c.AttrSim(0, 1)
	}); got != 0 {
		t.Errorf("AttrSim allocates %v times per call, want 0", got)
	}
	_ = sink
}

func TestScratchPushPopZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c, _ := newCtx(t, rng, 3, 1.5)
	s := c.NewScratch()
	if got := testing.AllocsPerRun(100, func() {
		n1 := s.Push(c.DS.Loc(0), 0.9)
		n2 := s.Push(c.DS.Loc(1), 0.8)
		n3 := s.Push(c.DS.Loc(2), 0.7)
		s.Pop(n3)
		s.Pop(n2)
		s.Pop(n1)
	}); got != 0 {
		t.Errorf("Scratch Push/Pop allocates %v times per call, want 0", got)
	}
}
