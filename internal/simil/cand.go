package simil

import "slices"

// Cand is a candidate object for one example dimension: its dataset
// position and its attribute similarity to that dimension's example point.
// Candidate lists travel with their sims so the hot enumeration loops never
// re-derive them.
type Cand struct {
	Pos int32
	Sim float64
}

// Candidates filters positions down to the objects matching dimension dim's
// category and returns them sorted by attribute similarity descending
// (ties broken by position ascending, for deterministic enumeration). The
// result is sized exactly (one counting pass over the flat category slice),
// so a single allocation serves any selectivity. Hot loops that run once
// per subspace should prefer CandidatesInto with a reused buffer.
func (c *Context) Candidates(dim int, positions []int32) []Cand {
	cat := c.Ex.Categories[dim]
	n := 0
	for _, pos := range positions {
		if c.DS.Category(int(pos)) == cat {
			n++
		}
	}
	return c.CandidatesInto(make([]Cand, 0, n), dim, positions)
}

// CandidatesInto is Candidates with a caller-supplied destination: matches
// are appended to dst (pass a length-zero slice — dst[:0] to reuse a
// backing array) and the result is sorted as a whole. Per-subspace
// searchers thread per-worker buffers through it so steady-state candidate
// enumeration allocates nothing.
func (c *Context) CandidatesInto(dst []Cand, dim int, positions []int32) []Cand {
	cat := c.Ex.Categories[dim]
	for _, pos := range positions {
		if c.DS.Category(int(pos)) != cat {
			continue
		}
		dst = append(dst, Cand{Pos: pos, Sim: c.AttrSim(dim, pos)})
	}
	SortCandidates(dst)
	return dst
}

// SortCandidates orders cands by similarity descending, position ascending.
func SortCandidates(cands []Cand) {
	slices.SortFunc(cands, func(a, b Cand) int {
		switch {
		case a.Sim > b.Sim:
			return -1
		case a.Sim < b.Sim:
			return 1
		case a.Pos < b.Pos:
			return -1
		case a.Pos > b.Pos:
			return 1
		default:
			return 0
		}
	})
}

// MaxSim returns the best similarity in a sorted candidate list, or 0 for
// an empty list.
func MaxSim(cands []Cand) float64 {
	if len(cands) == 0 {
		return 0
	}
	return cands[0].Sim
}
