package simil

import "slices"

// Cand is a candidate object for one example dimension: its dataset
// position and its attribute similarity to that dimension's example point.
// Candidate lists travel with their sims so the hot enumeration loops never
// re-derive them.
type Cand struct {
	Pos int32
	Sim float64
}

// Candidates filters positions down to the objects matching dimension dim's
// category and returns them sorted by attribute similarity descending
// (ties broken by position ascending, for deterministic enumeration).
func (c *Context) Candidates(dim int, positions []int32) []Cand {
	cat := c.Ex.Categories[dim]
	out := make([]Cand, 0, len(positions)/4+1)
	for _, pos := range positions {
		if c.DS.Object(int(pos)).Category != cat {
			continue
		}
		out = append(out, Cand{Pos: pos, Sim: c.AttrSim(dim, pos)})
	}
	SortCandidates(out)
	return out
}

// SortCandidates orders cands by similarity descending, position ascending.
func SortCandidates(cands []Cand) {
	slices.SortFunc(cands, func(a, b Cand) int {
		switch {
		case a.Sim > b.Sim:
			return -1
		case a.Sim < b.Sim:
			return 1
		case a.Pos < b.Pos:
			return -1
		case a.Pos > b.Pos:
			return 1
		default:
			return 0
		}
	})
}

// MaxSim returns the best similarity in a sorted candidate list, or 0 for
// an empty list.
func MaxSim(cands []Cand) float64 {
	if len(cands) == 0 {
		return 0
	}
	return cands[0].Sim
}
