package simil

import (
	"math/rand"
	"testing"
)

// memoModes applies each memo configuration to a freshly built context:
// the batched kernels must be bit-for-bit against the scalar path in
// all three.
var memoModes = []struct {
	name  string
	setup func(c *Context)
}{
	{"direct", func(c *Context) {}},
	{"lazy", func(c *Context) { c.EnableMemo() }},
	{"shared", func(c *Context) { c.PrepareMemoShared() }},
}

func TestAttrSimBatchMatchesScalar(t *testing.T) {
	for _, mode := range memoModes {
		t.Run(mode.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(63))
			// Two independent contexts over the same dataset/query so the
			// scalar reference cannot share memo state with the batch.
			cb, _ := newCtx(t, rng, 3, 1.5)
			rng = rand.New(rand.NewSource(63))
			cs, _ := newCtx(t, rng, 3, 1.5)
			mode.setup(cb)
			mode.setup(cs)
			// Mixed-category positions with repeats: the batch must handle
			// off-category entries (memo bypass) and memoised rereads.
			n := cb.DS.Len()
			positions := make([]int32, 0, 2*n)
			for i := 0; i < n; i++ {
				positions = append(positions, int32(i))
			}
			for i := 0; i < n; i++ {
				positions = append(positions, int32(rng.Intn(n)))
			}
			dst := make([]float64, len(positions))
			for d := 0; d < cb.M; d++ {
				cb.AttrSimBatch(d, positions, dst)
				for i, pos := range positions {
					if want := cs.AttrSim(d, pos); dst[i] != want {
						t.Fatalf("dim %d pos %d: batch %v, scalar %v", d, pos, dst[i], want)
					}
				}
			}
			// In lazy mode the batch must also replay the scalar hit/miss
			// sequence exactly; the other modes never touch the counters.
			bh, bm := cb.MemoCounters()
			sh, sm := cs.MemoCounters()
			if bh != sh || bm != sm {
				t.Errorf("memo counters diverge: batch %d/%d, scalar %d/%d", bh, bm, sh, sm)
			}
		})
	}
}

func TestCandidatesBatchIntoMatchesCandidatesInto(t *testing.T) {
	for _, mode := range memoModes {
		t.Run(mode.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(64))
			cb, _ := newCtx(t, rng, 3, 1.5)
			rng = rand.New(rand.NewSource(64))
			cs, _ := newCtx(t, rng, 3, 1.5)
			mode.setup(cb)
			mode.setup(cs)
			all := make([]int32, cb.DS.Len())
			for i := range all {
				all[i] = int32(i)
			}
			var bs BatchScratch
			dst := make([]Cand, 0, cb.DS.Len())
			ref := make([]Cand, 0, cb.DS.Len())
			for d := 0; d < cb.M; d++ {
				got := cb.CandidatesBatchInto(dst[:0], d, all, &bs)
				want := cs.CandidatesInto(ref[:0], d, all)
				if len(got) != len(want) {
					t.Fatalf("dim %d: batch len %d, scalar len %d", d, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("dim %d entry %d: batch %+v, scalar %+v", d, i, got[i], want[i])
					}
				}
			}
		})
	}
}

func TestDistVectorsOfPositionsMatchesScalar(t *testing.T) {
	cases := []struct {
		name string
		ctx  func(t *testing.T, rng *rand.Rand) *Context
	}{
		{"euclidean", func(t *testing.T, rng *rand.Rand) *Context {
			c, _ := newCtx(t, rng, 3, 1.5)
			return c
		}},
		{"masked", func(t *testing.T, rng *rand.Rand) *Context {
			c, _ := maskedCtx(t, rng, [][2]int{{0, 2}}, nil)
			return c
		}},
		{"metric", func(t *testing.T, rng *rand.Rand) *Context {
			c, _ := maskedCtx(t, rng, nil, scaledMetric{f: 3})
			return c
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(65))
			c := tc.ctx(t, rng)
			m := c.M
			const rows = 37 // not a multiple of any block size
			tuples := make([]int32, rows*m)
			for i := range tuples {
				tuples[i] = int32(rng.Intn(c.DS.Len()))
			}
			got := c.DistVectorsOfPositions(tuples, m, nil)
			if len(got) != rows*c.Pairs {
				t.Fatalf("got %d distances, want %d rows x %d pairs", len(got), rows, c.Pairs)
			}
			var ref []float64
			for r := 0; r < rows; r++ {
				ref = c.DistVectorOfPositions(tuples[r*m:r*m+m], ref[:0])
				row := got[r*c.Pairs : (r+1)*c.Pairs]
				for i := range ref {
					if row[i] != ref[i] {
						t.Fatalf("row %d pair %d: batch %v, scalar %v", r, i, row[i], ref[i])
					}
				}
			}
		})
	}
}

// The batched kernels must not allocate in steady state with warm
// buffers, in the uncached and shared-memo modes the parallel hot paths
// use.
func TestBatchKernelsZeroAlloc(t *testing.T) {
	for _, shared := range []bool{false, true} {
		rng := rand.New(rand.NewSource(66))
		c, _ := newCtx(t, rng, 3, 1.5)
		if shared {
			c.PrepareMemoShared()
		}
		all := make([]int32, c.DS.Len())
		for i := range all {
			all[i] = int32(i)
		}
		dst := make([]float64, len(all))
		if allocs := testing.AllocsPerRun(20, func() {
			c.AttrSimBatch(0, all, dst)
		}); allocs != 0 {
			t.Errorf("shared=%v: AttrSimBatch allocated %v per run", shared, allocs)
		}

		var bs BatchScratch
		cands := make([]Cand, 0, c.DS.Len())
		cands = c.CandidatesBatchInto(cands, 0, all, &bs) // warm buffers
		if allocs := testing.AllocsPerRun(20, func() {
			cands = c.CandidatesBatchInto(cands[:0], 0, all, &bs)
		}); allocs != 0 {
			t.Errorf("shared=%v: CandidatesBatchInto allocated %v per run", shared, allocs)
		}

		const rows = 32
		tuples := make([]int32, rows*c.M)
		for i := range tuples {
			tuples[i] = int32(rng.Intn(c.DS.Len()))
		}
		dists := c.DistVectorsOfPositions(tuples, c.M, nil) // warm
		if allocs := testing.AllocsPerRun(20, func() {
			dists = c.DistVectorsOfPositions(tuples, c.M, dists)
		}); allocs != 0 {
			t.Errorf("shared=%v: DistVectorsOfPositions allocated %v per run", shared, allocs)
		}
	}
}

func BenchmarkAttrSimScalarLoop(b *testing.B) {
	c := benchContext(b)
	cands := c.DS.CategoryObjects(c.Ex.Categories[0])
	dst := make([]float64, len(cands))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, pos := range cands {
			dst[j] = c.AttrSim(0, pos)
		}
	}
	benchSimSink = dst[0]
}

func BenchmarkAttrSimBatch(b *testing.B) {
	c := benchContext(b)
	cands := c.DS.CategoryObjects(c.Ex.Categories[0])
	dst := make([]float64, len(cands))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.AttrSimBatch(0, cands, dst)
	}
	benchSimSink = dst[0]
}

func BenchmarkCandidatesBatchInto(b *testing.B) {
	c := benchContext(b)
	all := make([]int32, c.DS.Len())
	for i := range all {
		all[i] = int32(i)
	}
	var bs BatchScratch
	dst := make([]Cand, 0, c.DS.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = c.CandidatesBatchInto(dst[:0], 0, all, &bs)
	}
	benchCandSink = dst
}

var benchDistSink []float64

func BenchmarkDistVectorsOfPositions(b *testing.B) {
	c := benchContext(b)
	rng := rand.New(rand.NewSource(67))
	const rows = 256
	tuples := make([]int32, rows*c.M)
	for i := range tuples {
		tuples[i] = int32(rng.Intn(c.DS.Len()))
	}
	dst := c.DistVectorsOfPositions(tuples, c.M, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = c.DistVectorsOfPositions(tuples, c.M, dst)
	}
	benchDistSink = dst
}

func BenchmarkDistVectorOfPositionsScalarLoop(b *testing.B) {
	c := benchContext(b)
	rng := rand.New(rand.NewSource(67))
	const rows = 256
	tuples := make([]int32, rows*c.M)
	for i := range tuples {
		tuples[i] = int32(rng.Intn(c.DS.Len()))
	}
	dst := make([]float64, 0, c.Pairs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < rows; r++ {
			dst = c.DistVectorOfPositions(tuples[r*c.M:r*c.M+c.M], dst[:0])
		}
	}
	benchDistSink = dst
}
